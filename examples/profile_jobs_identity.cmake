# Byte-identity gate for `sweep --profile` across job counts: the profile
# document must not depend on how the batch was scheduled. Run with
#   cmake -DSWEEP=<path-to-sweep> -P profile_jobs_identity.cmake
if(NOT DEFINED SWEEP)
  message(FATAL_ERROR "pass -DSWEEP=<path to the sweep binary>")
endif()

foreach(mode "--json" "")
  set(outputs "")
  foreach(jobs 1 2 8)
    if(mode STREQUAL "")
      execute_process(COMMAND ${SWEEP} --profile --jobs ${jobs}
        OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_QUIET)
    else()
      execute_process(COMMAND ${SWEEP} --profile ${mode} --jobs ${jobs}
        OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_QUIET)
    endif()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "sweep --profile ${mode} --jobs ${jobs} exited with ${rc}")
    endif()
    list(APPEND outputs "${out}")
  endforeach()
  list(GET outputs 0 first)
  foreach(idx 1 2)
    list(GET outputs ${idx} other)
    if(NOT first STREQUAL other)
      message(FATAL_ERROR
        "sweep --profile ${mode} output differs across --jobs values")
    endif()
  endforeach()
endforeach()
message(STATUS "sweep --profile output is byte-identical at --jobs 1/2/8")

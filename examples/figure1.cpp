//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1 of the paper: the fragment
///
///     integer A[5..10]
///     C1: if (not (2*N >= 5))   TRAP
///     C2: if (not (2*N <= 10))  TRAP
///     S1: A[2*N]   = 0
///     C3: if (not (2*N-1 >= 5)) TRAP
///     C4: if (not (2*N-1 <= 10))TRAP
///     S2: A[2*N-1] = 1
///
/// Plain redundancy elimination (NI) removes C4, because C2 is as strong
/// (Figure 1b). Check strengthening (CS) additionally replaces C1 by the
/// stronger C3, leaving two checks (Figure 1c).
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace nascent;

namespace {

unsigned staticChecks(const Module &M) {
  return static_cast<unsigned>(countStatic(M).Checks);
}

} // namespace

int main() {
  const char *Source = R"(
program figure1
  integer a(5:10)
  integer n
  n = 4
  a(2 * n) = 0
  a(2 * n - 1) = 1
  print a(8)
end program
)";

  PipelineOptions Naive;
  Naive.Optimize = false;
  CompileResult Base = compileSource(Source, Naive);
  std::printf("Figure 1(a) -- naive: %u static checks\n%s\n",
              staticChecks(*Base.M), printFunction(*Base.M->entry()).c_str());

  PipelineOptions NI;
  NI.Opt.Scheme = PlacementScheme::NI;
  CompileResult RNI = compileSource(Source, NI);
  std::printf("Figure 1(b) -- redundancy elimination (NI): %u checks\n",
              staticChecks(*RNI.M));

  PipelineOptions CS;
  CS.Opt.Scheme = PlacementScheme::CS;
  CompileResult RCS = compileSource(Source, CS);
  std::printf("Figure 1(c) -- check strengthening (CS):    %u checks\n%s\n",
              staticChecks(*RCS.M), printFunction(*RCS.M->entry()).c_str());

  // The behaviour is identical in all three versions.
  ExecResult E0 = interpret(*Base.M);
  ExecResult E1 = interpret(*RNI.M);
  ExecResult E2 = interpret(*RCS.M);
  std::printf("outputs agree: %s; dynamic checks: %llu -> %llu -> %llu\n",
              (E0.Output == E1.Output && E1.Output == E2.Output) ? "yes"
                                                                 : "NO",
              (unsigned long long)E0.DynChecks,
              (unsigned long long)E1.DynChecks,
              (unsigned long long)E2.DynChecks);
  return 0;
}

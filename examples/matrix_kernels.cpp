//===----------------------------------------------------------------------===//
///
/// \file
/// Compares every placement scheme on classic dense linear-algebra
/// kernels (daxpy, matrix-vector, matrix-matrix) — the workloads the
/// paper's introduction motivates range checking for.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace nascent;

int main() {
  const char *Source = R"(
program kernels
  integer n, i, j, k
  real a(32, 32), b(32, 32), c(32, 32), x(32), y(32)
  real t
  n = 28
  do i = 1, n
    x(i) = real(i) * 0.1
    y(i) = 0.0
    do j = 1, n
      a(i, j) = real(mod(i + j, 9)) * 0.2
      b(i, j) = real(mod(i * j, 7)) * 0.3
      c(i, j) = 0.0
    end do
  end do
  ! daxpy
  do i = 1, n
    y(i) = y(i) + 2.5 * x(i)
  end do
  ! matvec
  do i = 1, n
    t = 0.0
    do j = 1, n
      t = t + a(i, j) * x(j)
    end do
    y(i) = y(i) + t
  end do
  ! matmul
  do i = 1, n
    do j = 1, n
      t = 0.0
      do k = 1, n
        t = t + a(i, k) * b(k, j)
      end do
      c(i, j) = t
    end do
  end do
  t = 0.0
  do i = 1, n
    t = t + y(i) + c(i, i)
  end do
  print t
end program
)";

  PipelineOptions Naive;
  Naive.Optimize = false;
  CompileResult Base = compileSource(Source, Naive);
  if (!Base.Success) {
    std::fprintf(stderr, "compile failed:\n%s", Base.Diags.render().c_str());
    return 1;
  }
  ExecResult BaseRun = interpret(*Base.M);

  TextTable T({"scheme", "dynamic checks", "% eliminated", "output ok"});
  T.addRow({"naive", std::to_string(BaseRun.DynChecks), "-", "-"});

  for (PlacementScheme Scheme :
       {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
        PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
        PlacementScheme::ALL}) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    CompileResult R = compileSource(Source, PO);
    ExecResult E = interpret(*R.M);
    T.addRow({placementSchemeName(Scheme), std::to_string(E.DynChecks),
              formatString("%.2f",
                           100.0 * double(BaseRun.DynChecks - E.DynChecks) /
                               double(BaseRun.DynChecks)),
              E.Output == BaseRun.Output ? "yes" : "NO"});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}

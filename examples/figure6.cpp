//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 6 of the paper: preheader insertion with loop-limit
/// substitution. In
///
///     do j = 1, 2*n
///        ... A(k) ...     ! loop-invariant check
///        ... A(j) ...     ! linear check
///     enddo
///
/// the invariant check hoists as Cond-check((1 <= 2*n), k <= 10) and the
/// linear check, after substituting the loop limit for j, as
/// Cond-check((1 <= 2*n), 2*n <= 10); both per-iteration checks in the
/// loop body disappear.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace nascent;

int main() {
  const char *Source = R"(
program figure6
  integer a(10)
  integer n, j, k
  n = 4
  k = 2
  do j = 1, 2 * n
    a(k) = a(k) + 1
    a(j) = a(j) * 2
  end do
  print a(2)
end program
)";

  PipelineOptions Naive;
  Naive.Optimize = false;
  CompileResult Base = compileSource(Source, Naive);
  ExecResult BaseRun = interpret(*Base.M);

  PipelineOptions LLS;
  LLS.Opt.Scheme = PlacementScheme::LLS;
  CompileResult RLLS = compileSource(Source, LLS);
  ExecResult LLSRun = interpret(*RLLS.M);

  std::printf("After preheader insertion with loop-limit substitution:\n%s\n",
              printFunction(*RLLS.M->entry()).c_str());
  std::printf("dynamic checks: naive %llu, LLS %llu (%.1f%% eliminated)\n",
              (unsigned long long)BaseRun.DynChecks,
              (unsigned long long)LLSRun.DynChecks,
              100.0 * double(BaseRun.DynChecks - LLSRun.DynChecks) /
                  double(BaseRun.DynChecks));
  std::printf("behaviour preserved: %s\n",
              BaseRun.Output == LLSRun.Output ? "yes" : "NO (bug!)");
  return 0;
}

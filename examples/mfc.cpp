//===----------------------------------------------------------------------===//
///
/// \file
/// mfc: the mini-Fortran compiler driver. Compiles a source file with a
/// selectable check-placement scheme, optionally dumps the IR, runs the
/// program in the interpreter, and reports dynamic instruction and check
/// counts — a command-line face for the whole library.
///
///   mfc [options] file.mf
///     -scheme=NAME                      placement scheme (default LLS):
///                                       NI|CS|LNI|SE|LI|LLS|ALL|MCM|AI
///     -impl=all|cross|none              implication mode (default all)
///     -inx                              use induction-expression checks
///     -audit                            run the trap-safety auditor over
///                                       the (original, optimized) pair
///     -no-opt                           naive checking only
///     -no-checks                        do not insert range checks
///     -dump-ir                          print the optimized IR
///     -emit-c                           print instrumented C instead of
///                                       running the program
///     -quiet                            suppress program output
///     -cache[=off]                      reuse frontend/analysis artifacts
///                                       from the process-global content-
///                                       addressed cache (docs/caching.md)
///     -stats-json                       print optimizer stats, phase
///                                       timings, the global stat registry,
///                                       and (with -cache) cacheStats as
///                                       JSON on stdout
///     -trace-out=PATH                   write a Chrome trace_event JSON
///                                       of the pipeline/optimizer phases
///                                       (open in Perfetto)
///     -remarks[=REGEX]                  print one remark per optimizer
///                                       decision to stderr, optionally
///                                       filtered by family/array regex;
///                                       residual checks are annotated
///                                       with their dynamic hit counts
///     -provenance-json                  print the stats envelope with the
///                                       full check-lifecycle provenance
///                                       record (implies -stats-json)
///     -provenance-dot=PATH              write the subsumption /
///                                       justification graph as DOT
///     -explain=SITE                     print the full decision chain of
///                                       every check originating at SITE
///                                       ([file:]line[:col]) or of one
///                                       check by lifecycle tag (tag:N —
///                                       the form profdiff reports)
///     -profile                          print a human-readable execution
///                                       profile (hot check sites, loop
///                                       trip counts, densities) to stderr
///     -profile-json[=PATH]              write the versioned execution-
///                                       profile envelope to PATH (or
///                                       stdout); with -emit-c, emit the
///                                       profile counter table into the C
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "cbackend/CEmitter.h"
#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/StatRegistry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace nascent;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: mfc [-scheme=NAME] [-impl=all|cross|none] [-inx] [-audit]\n"
      "           [-no-opt] [-no-checks] [-dump-ir] [-emit-c] [-quiet]\n"
      "           [-cache[=off]] [-stats-json] [-trace-out=PATH] "
      "[-remarks[=REGEX]]\n"
      "           [-provenance-json] [-provenance-dot=PATH] "
      "[-explain=SITE|tag:N]\n"
      "           [-profile] [-profile-json[=PATH]] file.mf\n");
}

/// Parses an -explain site spec of the form [file:]line[:col]: the
/// trailing one or two ':'-separated numeric components are the line (and
/// column); any leading file path is ignored (mfc compiles one file).
bool parseExplainSite(const std::string &Spec, unsigned &Line,
                      unsigned &Col) {
  auto Numeric = [](const std::string &S) {
    if (S.empty())
      return false;
    for (char C : S)
      if (C < '0' || C > '9')
        return false;
    return true;
  };
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Colon = Spec.find(':', Start);
    Parts.push_back(Spec.substr(Start, Colon - Start));
    if (Colon == std::string::npos)
      break;
    Start = Colon + 1;
  }
  Line = Col = 0;
  size_t N = Parts.size();
  if (N >= 2 && Numeric(Parts[N - 2]) && Numeric(Parts[N - 1])) {
    Line = static_cast<unsigned>(std::stoul(Parts[N - 2]));
    Col = static_cast<unsigned>(std::stoul(Parts[N - 1]));
    return true;
  }
  if (Numeric(Parts[N - 1])) {
    Line = static_cast<unsigned>(std::stoul(Parts[N - 1]));
    return true;
  }
  return false;
}

} // namespace

int main(int argc, char **argv) {
  PipelineOptions PO;
  bool DumpIR = false;
  bool EmitC = false;
  bool Quiet = false;
  bool StatsJson = false;
  bool ProvJson = false;
  bool ProfileText = false;
  bool ProfileJson = false;
  std::string ProfileJsonPath;
  std::string ProvDotPath;
  std::string ExplainSpec;
  const char *Path = nullptr;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "-scheme=", 8) == 0) {
      if (!parsePlacementScheme(Arg + 8, PO.Opt.Scheme)) {
        std::fprintf(stderr, "mfc: unknown scheme '%s' (valid: %s)\n",
                     Arg + 8, placementSchemeNames());
        return 2;
      }
    } else if (std::strcmp(Arg, "-impl=all") == 0) {
      PO.Opt.Implications = ImplicationMode::All;
    } else if (std::strcmp(Arg, "-impl=cross") == 0) {
      PO.Opt.Implications = ImplicationMode::CrossFamilyOnly;
    } else if (std::strcmp(Arg, "-impl=none") == 0) {
      PO.Opt.Implications = ImplicationMode::None;
    } else if (std::strcmp(Arg, "-inx") == 0) {
      PO.Source = CheckSource::INX;
    } else if (std::strcmp(Arg, "-audit") == 0) {
      PO.Audit = true;
    } else if (std::strcmp(Arg, "-no-opt") == 0) {
      PO.Optimize = false;
    } else if (std::strcmp(Arg, "-no-checks") == 0) {
      PO.Lowering.InsertChecks = false;
    } else if (std::strcmp(Arg, "-dump-ir") == 0) {
      DumpIR = true;
    } else if (std::strcmp(Arg, "-emit-c") == 0) {
      EmitC = true;
    } else if (std::strcmp(Arg, "-quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "-cache") == 0) {
      PO.Cache.Enabled = true;
    } else if (std::strcmp(Arg, "-cache=off") == 0) {
      PO.Cache.Enabled = false;
    } else if (std::strcmp(Arg, "-stats-json") == 0) {
      StatsJson = true;
    } else if (std::strncmp(Arg, "-trace-out=", 11) == 0) {
      PO.Telemetry.Trace = true;
      PO.Telemetry.TracePath = Arg + 11;
    } else if (std::strcmp(Arg, "-remarks") == 0) {
      PO.Telemetry.Remarks = true;
    } else if (std::strncmp(Arg, "-remarks=", 9) == 0) {
      PO.Telemetry.Remarks = true;
      PO.Telemetry.RemarkFilter = Arg + 9;
    } else if (std::strcmp(Arg, "-provenance-json") == 0) {
      ProvJson = true;
      StatsJson = true;
      PO.Telemetry.Provenance = true;
    } else if (std::strncmp(Arg, "-provenance-dot=", 16) == 0) {
      ProvDotPath = Arg + 16;
      PO.Telemetry.Provenance = true;
    } else if (std::strncmp(Arg, "-explain=", 9) == 0) {
      ExplainSpec = Arg + 9;
      PO.Telemetry.Provenance = true;
    } else if (std::strcmp(Arg, "-profile") == 0) {
      ProfileText = true;
      PO.Telemetry.Profile = true;
    } else if (std::strcmp(Arg, "-profile-json") == 0) {
      ProfileJson = true;
      PO.Telemetry.Profile = true;
    } else if (std::strncmp(Arg, "-profile-json=", 14) == 0) {
      ProfileJson = true;
      ProfileJsonPath = Arg + 14;
      PO.Telemetry.Profile = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "mfc: unknown option '%s'\n", Arg);
      usage();
      return 2;
    } else if (Path) {
      usage();
      return 2;
    } else {
      Path = Arg;
    }
  }
  if (!Path) {
    usage();
    return 2;
  }
  unsigned ExplainLine = 0, ExplainCol = 0;
  CheckTag ExplainTag = NoCheckTag;
  if (!ExplainSpec.empty()) {
    if (ExplainSpec.rfind("tag:", 0) == 0) {
      std::string Num = ExplainSpec.substr(4);
      bool Numeric = !Num.empty();
      for (char C : Num)
        if (C < '0' || C > '9')
          Numeric = false;
      if (!Numeric) {
        std::fprintf(stderr, "mfc: bad -explain tag '%s' (expected tag:N)\n",
                     ExplainSpec.c_str());
        return 2;
      }
      ExplainTag = static_cast<CheckTag>(std::stoul(Num));
    } else if (!parseExplainSite(ExplainSpec, ExplainLine, ExplainCol)) {
      std::fprintf(
          stderr,
          "mfc: bad -explain site '%s' (expected [file:]line[:col] or "
          "tag:N)\n",
          ExplainSpec.c_str());
      return 2;
    }
  }
  if (StatsJson && ProfileJson && ProfileJsonPath.empty()) {
    std::fprintf(stderr,
                 "mfc: -stats-json and -profile-json both write to stdout; "
                 "use -profile-json=PATH\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "mfc: cannot open '%s'\n", Path);
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  // The interpreter phase below wants to appear in the trace, so the
  // pipeline must not write the file yet; mfc writes it after the run.
  std::string TracePath = PO.Telemetry.TracePath;
  PO.Telemetry.TracePath.clear();

  CompileResult R = compileSource(SS.str(), PO);
  std::string Diags = R.Diags.render();
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.c_str());
  if (!R.Success)
    return 1;
  if (PO.Audit) {
    if (!PO.Optimize) {
      std::fprintf(stderr, "audit: skipped (-no-opt leaves nothing to audit)\n");
    } else {
      std::fprintf(stderr, "%s\n", R.Audit.summaryLine().c_str());
      if (!R.Audit.clean())
        return 5;
    }
  }

  // Provenance is complete once compilation finished (the pipeline records
  // the terminal Residualized events), so these can precede the run.
  if (!ExplainSpec.empty()) {
    std::string Chain = ExplainTag != NoCheckTag
                            ? R.Provenance.explainTag(ExplainTag)
                            : R.Provenance.explainSite(ExplainLine,
                                                       ExplainCol);
    if (Chain.empty())
      std::printf("explain: no check recorded at %s\n", ExplainSpec.c_str());
    else
      std::printf("%s", Chain.c_str());
  }
  if (!ProvDotPath.empty()) {
    std::ofstream Dot(ProvDotPath, std::ios::binary);
    if (!Dot) {
      std::fprintf(stderr, "mfc: cannot open dot output file '%s'\n",
                   ProvDotPath.c_str());
      return 2;
    }
    Dot << R.Provenance.toDot();
  }

  if (DumpIR)
    std::printf("%s", printModule(*R.M).c_str());
  if (EmitC) {
    CEmitOptions CO;
    CO.Profile = PO.Telemetry.Profile;
    std::printf("%s", emitModuleToC(*R.M, CO).c_str());
    return 0;
  }

  ExecResult E;
  {
    obs::TraceScope Scope(&R.Trace, "interpret");
    InterpOptions IO;
    // Joining dynamic counts onto residual-check remarks needs per-site
    // counters.
    IO.CountCheckSites = PO.Telemetry.Remarks;
    if (PO.Telemetry.Profile)
      IO.Profile = &R.Profile;
    E = interpret(*R.M, IO);
  }
  if (!Quiet)
    for (const std::string &Line : E.Output)
      std::printf("%s\n", Line.c_str());

  if (PO.Telemetry.Remarks) {
    emitResidualCheckRemarks(*R.M, E.CheckSites, R.Remarks);
    R.Remarks.renderText(std::cerr);
  }

  if (ProfileJson) {
    std::string Envelope = R.Profile.toEnvelopeJson();
    if (ProfileJsonPath.empty()) {
      std::printf("%s\n", Envelope.c_str());
    } else {
      std::ofstream Out(ProfileJsonPath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "mfc: cannot open profile output file '%s'\n",
                     ProfileJsonPath.c_str());
        return 2;
      }
      Out << Envelope << "\n";
    }
  }
  if (ProfileText) {
    const obs::ExecutionProfile &P = R.Profile;
    std::fprintf(stderr,
                 "[profile] runs=%llu trapped=%llu dynChecks=%llu "
                 "dynTraps=%llu accesses=%llu checksPerAccess=%.4f "
                 "residualSites=%llu\n",
                 (unsigned long long)P.runs(),
                 (unsigned long long)P.trappedRuns(),
                 (unsigned long long)P.dynChecks(),
                 (unsigned long long)P.dynTraps(),
                 (unsigned long long)P.arrayAccesses(), P.checksPerAccess(),
                 (unsigned long long)P.residualSites());
    struct HotSite {
      const obs::CheckSiteProfile *S;
      const obs::FunctionProfile *F;
    };
    std::vector<HotSite> Hot;
    for (const obs::FunctionProfile &FP : P.functions())
      for (const obs::CheckSiteProfile &S : FP.Sites)
        Hot.push_back({&S, &FP});
    std::stable_sort(Hot.begin(), Hot.end(),
                     [](const HotSite &A, const HotSite &B) {
                       return A.S->Hits > B.S->Hits;
                     });
    size_t Shown = 0;
    for (const HotSite &H : Hot) {
      if (Shown++ == 10)
        break;
      std::fprintf(stderr,
                   "[profile]   t%u %s bb%u#%u %s hits=%llu traps=%llu\n",
                   H.S->Tag, H.F->Name.c_str(), H.S->Block, H.S->Index,
                   H.S->CheckStr.c_str(), (unsigned long long)H.S->Hits,
                   (unsigned long long)H.S->Traps);
    }
    for (const obs::FunctionProfile &FP : P.functions())
      for (const obs::LoopProfile &L : FP.Loops)
        std::fprintf(
            stderr,
            "[profile]   loop %s bb%u entries=%llu iterations=%llu "
            "partial=%llu\n",
            FP.Name.c_str(), L.Header, (unsigned long long)L.Entries,
            (unsigned long long)L.Iterations,
            (unsigned long long)L.PartialEntries);
  }

  if (!TracePath.empty()) {
    std::string Err;
    if (!R.Trace.writeFile(TracePath, &Err)) {
      std::fprintf(stderr, "mfc: cannot write trace file: %s\n", Err.c_str());
      return 2;
    }
  }

  if (StatsJson) {
    obs::JsonWriter W;
    W.beginObject();
    W.kv("schemaVersion", obs::BenchSchemaVersion);
    W.key("optimizer");
    R.Stats.writeJson(W);
    W.key("phases");
    W.beginArray();
    for (const obs::PhaseTiming &P : R.Phases.Phases) {
      W.beginObject();
      W.kv("name", P.Name);
      W.kv("wallStart", P.WallStart);
      W.kv("wallSeconds", P.WallSeconds);
      W.kv("cpuSeconds", P.CpuSeconds);
      W.endObject();
    }
    W.endArray();
    W.key("interp");
    W.beginObject();
    W.kv("dynInstrs", E.DynInstrs);
    W.kv("dynChecks", E.DynChecks);
    W.kv("dynCondChecks", E.DynCondChecks);
    W.endObject();
    W.key("registry");
    obs::StatRegistry::global().writeJson(W);
    if (PO.Cache.Enabled) {
      W.key("cacheStats");
      cache::ArtifactCache::global().writeStatsJson(W);
    }
    if (PO.Telemetry.Remarks) {
      W.key("remarks");
      R.Remarks.writeJson(W);
    }
    if (ProvJson) {
      W.key("provenance");
      R.Provenance.writeJson(W);
    }
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  }

  switch (E.St) {
  case ExecResult::Status::Ok:
    break;
  case ExecResult::Status::Trapped:
    std::fprintf(stderr, "mfc: program trapped: %s\n",
                 E.FaultMessage.c_str());
    break;
  default:
    std::fprintf(stderr, "mfc: runtime fault: %s\n", E.FaultMessage.c_str());
    return 3;
  }

  std::fprintf(stderr,
               "[mfc] %llu instructions, %llu range checks executed "
               "(%llu conditional); optimize %.3fs wall / %.3fs cpu\n",
               (unsigned long long)E.DynInstrs,
               (unsigned long long)E.DynChecks,
               (unsigned long long)E.DynCondChecks, R.optimizeWallSeconds(),
               R.optimizeCpuSeconds());
  return E.St == ExecResult::Status::Trapped ? 4 : 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a mini-Fortran program, optimize its range checks
/// with the paper's best scheme (LLS: preheader insertion with loop-limit
/// substitution), and measure the dynamic checks actually executed.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace nascent;

int main() {
  // A small kernel: every a(i)/b(i+1) subscript needs a lower and an
  // upper range check per access in the naive translation.
  const char *Source = R"(
program quickstart
  integer n, i
  real a(100), b(101)
  n = 90
  do i = 1, n
    b(i + 1) = real(i) * 0.5
    a(i) = b(i + 1) + a(i) * 2.0
  end do
  print a(10)
end program
)";

  // 1. The naive baseline: checks inserted, nothing optimized.
  PipelineOptions Naive;
  Naive.Optimize = false;
  CompileResult Base = compileSource(Source, Naive);
  if (!Base.Success) {
    std::fprintf(stderr, "compile failed:\n%s", Base.Diags.render().c_str());
    return 1;
  }
  ExecResult BaseRun = interpret(*Base.M);

  // 2. The optimized build: loop-limit substitution hoists every check
  //    out of the loop as a conditional check in the preheader.
  PipelineOptions Optimized;
  Optimized.Opt.Scheme = PlacementScheme::LLS;
  CompileResult Opt = compileSource(Source, Optimized);
  ExecResult OptRun = interpret(*Opt.M);

  std::printf("naive:     %llu dynamic checks, %llu other instructions\n",
              (unsigned long long)BaseRun.DynChecks,
              (unsigned long long)BaseRun.DynInstrs);
  std::printf("LLS:       %llu dynamic checks (%.2f%% eliminated)\n",
              (unsigned long long)OptRun.DynChecks,
              100.0 * double(BaseRun.DynChecks - OptRun.DynChecks) /
                  double(BaseRun.DynChecks));
  std::printf("output unchanged: %s\n\n",
              BaseRun.Output == OptRun.Output ? "yes" : "NO (bug!)");

  std::printf("optimized IR (note the Cond-checks in the loop preheader):\n%s",
              printFunction(*Opt.M->entry()).c_str());
  return 0;
}

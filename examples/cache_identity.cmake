# Byte-identity gate for the artifact cache (docs/caching.md): a cached
# sweep must produce exactly the bytes an uncached sweep produces, at any
# job count and in both output modes. --profile drops the timing columns,
# so the whole document is comparable byte for byte. Run with
#   cmake -DSWEEP=<path-to-sweep> -P cache_identity.cmake
if(NOT DEFINED SWEEP)
  message(FATAL_ERROR "pass -DSWEEP=<path to the sweep binary>")
endif()

foreach(mode "--json" "")
  # The reference: an uncached serial sweep.
  if(mode STREQUAL "")
    execute_process(COMMAND ${SWEEP} --profile
      OUTPUT_VARIABLE reference RESULT_VARIABLE rc ERROR_QUIET)
  else()
    execute_process(COMMAND ${SWEEP} --profile ${mode}
      OUTPUT_VARIABLE reference RESULT_VARIABLE rc ERROR_QUIET)
  endif()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep --profile ${mode} exited with ${rc}")
  endif()

  foreach(jobs 1 2 8)
    if(mode STREQUAL "")
      execute_process(COMMAND ${SWEEP} --profile --cache --jobs ${jobs}
        OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_QUIET)
    else()
      execute_process(COMMAND ${SWEEP} --profile ${mode} --cache --jobs ${jobs}
        OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_QUIET)
    endif()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "sweep --profile ${mode} --cache --jobs ${jobs} exited with ${rc}")
    endif()
    if(NOT reference STREQUAL out)
      message(FATAL_ERROR
        "sweep --profile ${mode} --cache --jobs ${jobs} output differs "
        "from the uncached run")
    endif()
  endforeach()
endforeach()
message(STATUS
  "sweep --profile --cache output is byte-identical to the uncached sweep "
  "at --jobs 1/2/8")

//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5 of the paper: safe-earliest placement is not
/// always profitable. In
///
///     if (...) then   ... A(i)   ...   ! needs Check(i <= 10)
///     else            ... A(i+4) ...   ! needs Check(i <= 6)
///
/// the check (i <= 10) is anticipatable before the branch (the else side
/// performs the stronger i <= 6), so SE hoists it above the branch -- and
/// the else path then executes one more check than before. The paper uses
/// this to explain why the conservative check-strengthening scheme exists.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace nascent;

int main() {
  // The branch lives inside a loop so that the conditional is evaluated
  // in its own block with i transparent through it: safe-earliest then
  // hoists Check(i <= 10) above the branch, exactly as in Figure 5(b).
  const char *Source = R"(
program figure5
  integer a(10)
  integer i, t, x
  i = 3
  x = 0
  do t = 1, 2
    if (i < 3) then
      x = x + a(i)
    else
      x = x + a(i + 4)
    end if
  end do
  print x
end program
)";

  PipelineOptions Naive;
  Naive.Optimize = false;
  CompileResult Base = compileSource(Source, Naive);
  ExecResult BaseRun = interpret(*Base.M);

  PipelineOptions SE;
  SE.Opt.Scheme = PlacementScheme::SE;
  CompileResult RSE = compileSource(Source, SE);
  ExecResult SERun = interpret(*RSE.M);

  std::printf("After safe-earliest placement:\n%s\n",
              printFunction(*RSE.M->entry()).c_str());
  std::printf("dynamic checks on the executed (else) path: naive %llu, "
              "SE %llu\n",
              (unsigned long long)BaseRun.DynChecks,
              (unsigned long long)SERun.DynChecks);
  if (SERun.DynChecks > BaseRun.DynChecks)
    std::printf("SE executed MORE checks than the naive program on this "
                "path -- the paper's Figure 5 pathology.\n");
  std::printf("behaviour preserved: %s\n",
              (BaseRun.Output == SERun.Output &&
               BaseRun.St == SERun.St)
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}

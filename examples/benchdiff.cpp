//===----------------------------------------------------------------------===//
///
/// \file
/// benchdiff: persistent perf baselines and the noise-aware regression
/// gate. Runs a bench harness (or reads a saved document), compares it
/// against a committed `BENCH_<harness>.json` baseline with the
/// obs/BenchDiff.h rules — deterministic work-proxy counters exactly,
/// CPU-time medians only outside their bootstrap confidence intervals —
/// and prints a markdown trajectory report. Nonzero exit on regression,
/// which is what makes the `bench-gate` CTest label a real gate.
///
///   # refresh (or create) a baseline
///   benchdiff --update BENCH_table2_schemes.json -- \
///       ./bench/table2_schemes --json --tiny --reps 5 --warmup 1
///
///   # gate a fresh run against it
///   benchdiff --check --baseline BENCH_table2_schemes.json -- \
///       ./bench/table2_schemes --json --tiny --reps 5 --warmup 1
///
///   # or diff two saved documents
///   benchdiff --check --baseline old.json --current new.json
///
/// Exit codes: 0 ok / baseline written, 1 regression detected, 2 usage or
/// I/O error.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace nascent;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: benchdiff --update BASELINE -- CMD [ARGS...]\n"
      "       benchdiff --check --baseline BASELINE [--current FILE]\n"
      "                 [--report PATH] [--time-margin F] [--min-time S]\n"
      "                 [-- CMD [ARGS...]]\n");
}

bool readFile(const std::string &Path, std::string &Out, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool runCommand(const std::vector<std::string> &Cmd, std::string &Out,
                std::string *Err) {
  std::string Joined;
  for (const std::string &Arg : Cmd) {
    if (!Joined.empty())
      Joined += ' ';
    Joined += Arg;
  }
  FILE *P = popen(Joined.c_str(), "r");
  if (!P) {
    if (Err)
      *Err = "cannot run '" + Joined + "'";
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  if (int Status = pclose(P); Status != 0) {
    if (Err)
      *Err = "'" + Joined + "' exited with status " + std::to_string(Status);
    return false;
  }
  return true;
}

bool parseAndValidate(const std::string &Text, const char *What,
                      obs::JsonValue &Out) {
  std::string Err;
  if (!obs::parseJson(Text, Out, &Err)) {
    std::fprintf(stderr, "benchdiff: %s is not valid JSON: %s\n", What,
                 Err.c_str());
    return false;
  }
  if (!obs::validateBenchDocument(Out, &Err)) {
    std::fprintf(stderr, "benchdiff: %s fails schema validation: %s\n", What,
                 Err.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  std::string UpdatePath;
  std::string BaselinePath;
  std::string CurrentPath;
  std::string ReportPath;
  obs::BenchDiffOptions Opts;
  std::vector<std::string> Cmd;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--check") == 0) {
      Check = true;
    } else if (std::strcmp(Arg, "--update") == 0 && I + 1 < argc) {
      UpdatePath = argv[++I];
    } else if (std::strcmp(Arg, "--baseline") == 0 && I + 1 < argc) {
      BaselinePath = argv[++I];
    } else if (std::strcmp(Arg, "--current") == 0 && I + 1 < argc) {
      CurrentPath = argv[++I];
    } else if (std::strcmp(Arg, "--report") == 0 && I + 1 < argc) {
      ReportPath = argv[++I];
    } else if (std::strcmp(Arg, "--time-margin") == 0 && I + 1 < argc) {
      Opts.TimeMargin = std::atof(argv[++I]);
    } else if (std::strcmp(Arg, "--min-time") == 0 && I + 1 < argc) {
      Opts.MinTimeSeconds = std::atof(argv[++I]);
    } else if (std::strcmp(Arg, "--") == 0) {
      for (int J = I + 1; J < argc; ++J)
        Cmd.push_back(argv[J]);
      break;
    } else {
      std::fprintf(stderr, "benchdiff: unknown argument '%s'\n", Arg);
      usage();
      return 2;
    }
  }

  if (Check == !UpdatePath.empty() || (Check && BaselinePath.empty())) {
    usage();
    return 2;
  }

  // Obtain the current document: a saved file or a fresh harness run.
  std::string CurrentText;
  std::string Err;
  if (!CurrentPath.empty()) {
    if (!readFile(CurrentPath, CurrentText, &Err)) {
      std::fprintf(stderr, "benchdiff: %s\n", Err.c_str());
      return 2;
    }
  } else if (!Cmd.empty()) {
    if (!runCommand(Cmd, CurrentText, &Err)) {
      std::fprintf(stderr, "benchdiff: %s\n", Err.c_str());
      return 2;
    }
  } else {
    std::fprintf(stderr,
                 "benchdiff: need --current FILE or a command after --\n");
    usage();
    return 2;
  }

  obs::JsonValue Current;
  if (!parseAndValidate(CurrentText, "current run", Current))
    return 2;

  if (!UpdatePath.empty()) {
    std::ofstream Out(UpdatePath, std::ios::binary | std::ios::trunc);
    if (!Out || !(Out << CurrentText)) {
      std::fprintf(stderr, "benchdiff: cannot write '%s'\n",
                   UpdatePath.c_str());
      return 2;
    }
    std::printf("benchdiff: wrote baseline %s (%zu bytes)\n",
                UpdatePath.c_str(), CurrentText.size());
    return 0;
  }

  std::string BaselineText;
  if (!readFile(BaselinePath, BaselineText, &Err)) {
    std::fprintf(stderr,
                 "benchdiff: %s\nbenchdiff: no baseline — create one with "
                 "--update\n",
                 Err.c_str());
    return 2;
  }
  obs::JsonValue Baseline;
  if (!parseAndValidate(BaselineText, "baseline", Baseline))
    return 2;

  obs::BenchDiffResult R = obs::diffBenchDocuments(Baseline, Current, Opts);
  std::string Report = obs::renderMarkdownReport(R, BaselinePath);
  std::printf("%s", Report.c_str());
  if (!ReportPath.empty()) {
    std::ofstream Out(ReportPath, std::ios::binary | std::ios::trunc);
    if (!Out || !(Out << Report)) {
      std::fprintf(stderr, "benchdiff: cannot write report '%s'\n",
                   ReportPath.c_str());
      return 2;
    }
  }
  return R.hasRegression() ? 1 : 0;
}

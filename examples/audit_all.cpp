//===----------------------------------------------------------------------===//
///
/// \file
/// audit_all: compiles every benchmark-suite program under every placement
/// scheme (and every implication mode) with the trap-safety auditor
/// enabled, and exits nonzero on any finding. This is the CI gate behind
/// the `audit-all` target / `check-audit` test label: a change to the
/// optimizer that silently weakens trap safety fails here even when no
/// hand-written test exercises the broken placement.
///
/// The sweep summary reports the optimizer phase cost per configuration
/// (both clocks, summed over the suite); `--json` emits the whole sweep
/// as one machine-readable document instead.
///
/// `--jobs N` fans the (program, scheme, mode) matrix across N worker
/// threads via BatchCompiler (0 = one per hardware thread). Results are
/// consumed in submission order and the job count is deliberately not
/// echoed into the output, so findings, counters, and JSON are
/// bit-identical across job counts (timing values aside). `--cache`
/// shares frontend and analysis artifacts across the matrix
/// (docs/caching.md) without changing a byte of the audit output; file
/// arguments sweep the given programs instead of the built-in suite.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "driver/BatchCompiler.h"
#include "driver/Pipeline.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "suite/Suite.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

using namespace nascent;

namespace {

const char *implicationModeName(ImplicationMode M) {
  switch (M) {
  case ImplicationMode::All:
    return "all";
  case ImplicationMode::CrossFamilyOnly:
    return "cross";
  case ImplicationMode::None:
    return "none";
  }
  return "?";
}

/// Accumulated optimizer phase cost of one (scheme, mode) configuration.
struct ConfigTiming {
  double OptimizeWall = 0;
  double OptimizeCpu = 0;
  double TotalWall = 0;
  double TotalCpu = 0;
  unsigned Runs = 0;
};

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  bool Provenance = false;
  bool UseCache = false;
  std::vector<std::string> Files;
  unsigned Jobs = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--provenance") == 0)
      Provenance = true;
    else if (std::strcmp(argv[I], "--cache") == 0)
      UseCache = true;
    else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      unsigned Requested = 0;
      if (!parseJobCount(argv[++I], Requested)) {
        std::fprintf(stderr,
                     "audit_all: invalid --jobs value '%s' (expected a "
                     "non-negative integer; 0 = one worker per hardware "
                     "thread)\n",
                     argv[I]);
        return 2;
      }
      Jobs = resolveJobCount(Requested);
    } else if (argv[I][0] != '-')
      Files.push_back(argv[I]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--provenance] [--cache] [--jobs N] "
                   "[FILE.mf ...]\n",
                   argv[0]);
      return 2;
    }
  }

  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const ImplicationMode Modes[] = {ImplicationMode::All,
                                   ImplicationMode::CrossFamilyOnly,
                                   ImplicationMode::None};

  obs::JsonWriter W;
  if (Json) {
    W.beginObject();
    W.kv("schemaVersion", obs::BenchSchemaVersion);
    W.kv("tool", "audit_all");
    W.key("runs");
    W.beginArray();
  }

  // Each program's text is materialised once (suite sources wrapped in a
  // shared buffer, file arguments read exactly once) and shared across
  // every grid cell via BatchJob's shared_ptr.
  struct ProgramEntry {
    std::string Name;
    std::shared_ptr<const std::string> Source;
  };
  std::vector<ProgramEntry> Programs;
  if (Files.empty()) {
    for (const SuiteProgram &P : benchmarkSuite())
      Programs.push_back(
          {P.Name, std::make_shared<const std::string>(P.Source)});
  } else {
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "audit_all: cannot open %s\n", Path.c_str());
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Programs.push_back(
          {Path, std::make_shared<const std::string>(Buf.str())});
    }
  }

  // Build the job matrix in the canonical (program, scheme, mode) order;
  // Keys[I] identifies Batch[I] when results come back in the same order.
  struct RunKey {
    std::string Program;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  std::vector<BatchJob> Batch;
  std::vector<RunKey> Keys;
  for (const ProgramEntry &P : Programs) {
    for (PlacementScheme Scheme : Schemes) {
      for (ImplicationMode Mode : Modes) {
        PipelineOptions PO;
        PO.Opt.Scheme = Scheme;
        PO.Opt.Implications = Mode;
        PO.Audit = true;
        PO.Cache.Enabled = UseCache;
        PO.Telemetry.Provenance = Provenance;
        Batch.push_back({P.Source, PO});
        Keys.push_back({P.Name, Scheme, Mode});
      }
    }
  }

  if (UseCache)
    cache::ArtifactCache::global().resetStats();
  std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);
  // Stats go to stderr so stdout stays byte-identical cache-on vs off.
  if (UseCache)
    std::fprintf(stderr, "audit_all: %s\n",
                 cache::ArtifactCache::global().summaryLine().c_str());

  unsigned Runs = 0, Failures = 0;
  AuditStats Total;
  std::map<std::pair<std::string, std::string>, ConfigTiming> Timings;
  for (size_t I = 0; I != Results.size(); ++I) {
    const RunKey &K = Keys[I];
    const CompileResult &R = Results[I].Result;
    ++Runs;
    if (!R.Success) {
      std::fprintf(stderr, "audit_all: %s/%s: compile failed:\n%s\n",
                   K.Program.c_str(), placementSchemeName(K.Scheme),
                   R.Diags.render().c_str());
      ++Failures;
      continue;
    }
    ConfigTiming &CT = Timings[{placementSchemeName(K.Scheme),
                                implicationModeName(K.Mode)}];
    CT.OptimizeWall += R.optimizeWallSeconds();
    CT.OptimizeCpu += R.optimizeCpuSeconds();
    CT.TotalWall += R.totalWallSeconds();
    CT.TotalCpu += R.totalCpuSeconds();
    ++CT.Runs;
    if (Json) {
      W.beginObject();
      W.kv("program", K.Program);
      W.kv("scheme", placementSchemeName(K.Scheme));
      W.kv("impl", implicationModeName(K.Mode));
      W.kv("clean", R.Audit.clean());
      W.key("stats");
      R.Stats.writeJson(W);
      W.key("phases");
      W.beginArray();
      for (const obs::PhaseTiming &Ph : R.Phases.Phases) {
        W.beginObject();
        W.kv("name", Ph.Name);
        W.kv("wallSeconds", Ph.WallSeconds);
        W.kv("cpuSeconds", Ph.CpuSeconds);
        W.endObject();
      }
      W.endArray();
      if (Provenance) {
        W.key("provenance");
        R.Provenance.writeJson(W);
      }
      W.endObject();
    }
    if (Provenance) {
      // The provenance record must reconcile with the optimizer stats for
      // every configuration; a mismatch is a finding like any other.
      std::vector<std::string> Problems =
          reconcileCheckProvenance(R.Provenance, R.Stats);
      if (!Problems.empty()) {
        std::fprintf(stderr, "audit_all: %s scheme=%s impl=%s provenance "
                             "FAILED\n",
                     K.Program.c_str(), placementSchemeName(K.Scheme),
                     implicationModeName(K.Mode));
        for (const std::string &P : Problems)
          std::fprintf(stderr, "  %s\n", P.c_str());
        ++Failures;
      }
    }
    Total += R.Audit.stats();
    if (!R.Audit.clean()) {
      std::fprintf(stderr, "audit_all: %s scheme=%s impl=%d FAILED\n%s",
                   K.Program.c_str(), placementSchemeName(K.Scheme),
                   static_cast<int>(K.Mode), R.Audit.render().c_str());
      ++Failures;
    }
  }

  if (Json) {
    W.endArray();
    W.kv("runs", Runs);
    W.kv("failures", Failures);
    W.key("configTimings");
    W.beginArray();
    for (const auto &[Key, CT] : Timings) {
      W.beginObject();
      W.kv("scheme", Key.first);
      W.kv("impl", Key.second);
      W.kv("optimizeWallSeconds", CT.OptimizeWall);
      W.kv("optimizeCpuSeconds", CT.OptimizeCpu);
      W.kv("totalWallSeconds", CT.TotalWall);
      W.kv("totalCpuSeconds", CT.TotalCpu);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return Failures ? 1 : 0;
  }

  std::printf("audit_all: %u runs, %u failures; checks=%u condchecks=%u "
              "traps=%u covered=%u facts=%u\n",
              Runs, Failures, Total.ChecksAudited, Total.CondChecksAudited,
              Total.TrapsAudited, Total.OriginalChecksCovered,
              Total.FactsValidated);

  std::printf("\noptimizer phase cost per configuration (seconds over the "
              "suite):\n");
  TextTable T({"scheme", "impl", "opt wall", "opt cpu", "total wall",
               "total cpu"});
  for (const auto &[Key, CT] : Timings)
    T.addRow({Key.first, Key.second, formatString("%.3f", CT.OptimizeWall),
              formatString("%.3f", CT.OptimizeCpu),
              formatString("%.3f", CT.TotalWall),
              formatString("%.3f", CT.TotalCpu)});
  std::printf("%s", T.render().c_str());
  return Failures ? 1 : 0;
}

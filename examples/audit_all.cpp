//===----------------------------------------------------------------------===//
///
/// \file
/// audit_all: compiles every benchmark-suite program under every placement
/// scheme (and every implication mode) with the trap-safety auditor
/// enabled, and exits nonzero on any finding. This is the CI gate behind
/// the `audit-all` target / `check-audit` test label: a change to the
/// optimizer that silently weakens trap safety fails here even when no
/// hand-written test exercises the broken placement.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "suite/Suite.h"

#include <cstdio>

using namespace nascent;

int main() {
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const ImplicationMode Modes[] = {ImplicationMode::All,
                                   ImplicationMode::CrossFamilyOnly,
                                   ImplicationMode::None};

  unsigned Runs = 0, Failures = 0;
  AuditStats Total;
  for (const SuiteProgram &P : benchmarkSuite()) {
    for (PlacementScheme Scheme : Schemes) {
      for (ImplicationMode Mode : Modes) {
        PipelineOptions PO;
        PO.Opt.Scheme = Scheme;
        PO.Opt.Implications = Mode;
        PO.Audit = true;
        CompileResult R = compileSource(P.Source, PO);
        ++Runs;
        if (!R.Success) {
          std::fprintf(stderr, "audit_all: %s/%s: compile failed:\n%s\n",
                       P.Name, placementSchemeName(Scheme),
                       R.Diags.render().c_str());
          ++Failures;
          continue;
        }
        Total += R.Audit.stats();
        if (!R.Audit.clean()) {
          std::fprintf(stderr, "audit_all: %s scheme=%s impl=%d FAILED\n%s",
                       P.Name, placementSchemeName(Scheme),
                       static_cast<int>(Mode), R.Audit.render().c_str());
          ++Failures;
        }
      }
    }
  }

  std::printf("audit_all: %u runs, %u failures; checks=%u condchecks=%u "
              "traps=%u covered=%u facts=%u\n",
              Runs, Failures, Total.ChecksAudited, Total.CondChecksAudited,
              Total.TrapsAudited, Total.OriginalChecksCovered,
              Total.FactsValidated);
  return Failures ? 1 : 0;
}

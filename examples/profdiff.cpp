//===----------------------------------------------------------------------===//
///
/// \file
/// profdiff: cross-scheme dynamic check-cost comparison. For every suite
/// program it compiles the naive baseline (every check in place) plus all
/// nine placement schemes with an execution profile attached, runs each
/// module once, and reports
///
///   - the hot check sites of the naive baseline, ranked by dynamic hit
///     count, with the share of array accesses each site costs and the
///     list of schemes that eliminate the site statically (joined by the
///     stable lifecycle tag, which lowering assigns before any optimizer
///     runs — paste it into `mfc -explain=tag:N` for the decision chain)
///   - per-scheme residual-check density (dynamic checks per dynamic
///     array access, the paper's Table 1 characteristic), per program and
///     aggregated over the whole suite
///
///   profdiff [--json] [--top N] [--jobs N] [program ...]
///
/// Compilation fans out through BatchCompiler; results are consumed in
/// submission order and runs are serial, so the report is byte-identical
/// for every --jobs value.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchCompiler.h"
#include "interp/Interpreter.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "suite/Suite.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace nascent;

namespace {

const PlacementScheme Schemes[] = {
    PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
    PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
    PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};

/// Everything profdiff needs from one (program, config) run.
struct RunProfile {
  bool Ok = false;
  uint64_t DynChecks = 0;
  uint64_t DynTraps = 0;
  uint64_t Accesses = 0;
  uint64_t ResidualSites = 0;
  std::set<CheckTag> ResidualTags; ///< static residual sites, by tag
};

/// One naive check site, ready for ranking.
struct HotSite {
  CheckTag Tag = NoCheckTag;
  std::string Site; ///< "func bbN#idx Check(...) (array a dim d side)"
  uint64_t Hits = 0;
  std::vector<std::string> EliminatedBy; ///< schemes lacking the tag
};

RunProfile summarise(const obs::ExecutionProfile &P) {
  RunProfile R;
  R.Ok = true;
  R.DynChecks = P.dynChecks();
  R.DynTraps = P.dynTraps();
  R.Accesses = P.arrayAccesses();
  R.ResidualSites = P.residualSites();
  for (const obs::FunctionProfile &FP : P.functions())
    for (const obs::CheckSiteProfile &S : FP.Sites)
      if (S.Tag != NoCheckTag)
        R.ResidualTags.insert(S.Tag);
  return R;
}

std::string siteLabel(const obs::FunctionProfile &FP,
                      const obs::CheckSiteProfile &S) {
  std::string L = FP.Name + " bb" + std::to_string(S.Block) + "#" +
                  std::to_string(S.Index) + " " + S.CheckStr;
  if (!S.Origin.ArrayName.empty())
    L += " (array " + S.Origin.ArrayName + " dim " +
         std::to_string(S.Origin.Dim + 1) +
         (S.Origin.IsUpper ? " upper" : " lower") + " @" +
         S.Origin.Loc.str() + ")";
  return L;
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  size_t Top = 10;
  unsigned Jobs = 1;
  std::vector<const SuiteProgram *> Programs;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--top") == 0 && I + 1 < argc)
      Top = std::strtoul(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc)
      Jobs = resolveJobCount(
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10)));
    else if (argv[I][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--json] [--top N] [--jobs N] [program ...]\n",
                   argv[0]);
      return 2;
    } else {
      const SuiteProgram *P = findSuiteProgram(argv[I]);
      if (!P) {
        std::fprintf(stderr, "profdiff: unknown suite program '%s'\n",
                     argv[I]);
        return 2;
      }
      Programs.push_back(P);
    }
  }
  if (Programs.empty())
    for (const SuiteProgram &P : benchmarkSuite())
      Programs.push_back(&P);

  // One naive job plus one per scheme, per program, in a fixed order the
  // result loop below relies on.
  std::vector<BatchJob> Batch;
  for (const SuiteProgram *P : Programs) {
    PipelineOptions Naive;
    Naive.Optimize = false;
    Naive.Telemetry.Profile = true;
    Batch.push_back({P->Source, Naive});
    for (PlacementScheme S : Schemes) {
      PipelineOptions PO;
      PO.Opt.Scheme = S;
      PO.Telemetry.Profile = true;
      Batch.push_back({P->Source, PO});
    }
  }
  std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);

  const size_t PerProgram = 1 + std::size(Schemes);
  unsigned Failures = 0;

  obs::JsonWriter W;
  if (Json) {
    W.beginObject();
    W.kv("schemaVersion", obs::BenchSchemaVersion);
    W.kv("profileVersion", obs::ProfileVersion);
    W.kv("tool", "profdiff");
    W.key("programs").beginArray();
  }

  // Suite-wide aggregates per scheme (plus the naive baseline).
  std::map<std::string, RunProfile> Aggregate;

  for (size_t PI = 0; PI != Programs.size(); ++PI) {
    const SuiteProgram &Prog = *Programs[PI];
    BatchJobResult *Runs = &Results[PI * PerProgram];

    // Interpret serially, submission order: deterministic under --jobs N.
    std::vector<RunProfile> Summaries(PerProgram);
    for (size_t C = 0; C != PerProgram; ++C) {
      CompileResult &R = Runs[C].Result;
      if (!R.Success) {
        std::fprintf(stderr, "profdiff: %s: compile failed:\n%s\n",
                     Prog.Name, R.Diags.render().c_str());
        ++Failures;
        continue;
      }
      InterpOptions IO;
      IO.Profile = &R.Profile;
      ExecResult E = interpret(*R.M, IO);
      if (E.St == ExecResult::Status::HardFault) {
        std::fprintf(stderr, "profdiff: %s: runtime fault: %s\n", Prog.Name,
                     E.FaultMessage.c_str());
        ++Failures;
        continue;
      }
      Summaries[C] = summarise(R.Profile);
    }
    if (!Summaries[0].Ok)
      continue;

    const obs::ExecutionProfile &NaiveP = Runs[0].Result.Profile;
    uint64_t NaiveAccesses = Summaries[0].Accesses;

    // Rank the naive sites by dynamic hits; ties keep (function, block,
    // index) order so the report is deterministic.
    std::vector<HotSite> Hot;
    for (const obs::FunctionProfile &FP : NaiveP.functions())
      for (const obs::CheckSiteProfile &S : FP.Sites) {
        HotSite H;
        H.Tag = S.Tag;
        H.Site = siteLabel(FP, S);
        H.Hits = S.Hits;
        for (size_t SC = 0; SC != std::size(Schemes); ++SC)
          if (Summaries[1 + SC].Ok &&
              !Summaries[1 + SC].ResidualTags.count(S.Tag))
            H.EliminatedBy.push_back(placementSchemeName(Schemes[SC]));
        Hot.push_back(std::move(H));
      }
    std::stable_sort(Hot.begin(), Hot.end(),
                     [](const HotSite &A, const HotSite &B) {
                       return A.Hits > B.Hits;
                     });
    if (Hot.size() > Top)
      Hot.resize(Top);

    auto Pct = [&](uint64_t Hits) {
      return NaiveAccesses ? 100.0 * static_cast<double>(Hits) /
                                 static_cast<double>(NaiveAccesses)
                           : 0.0;
    };
    auto Density = [](const RunProfile &S) {
      return S.Accesses ? static_cast<double>(S.DynChecks) /
                              static_cast<double>(S.Accesses)
                        : 0.0;
    };
    auto Accumulate = [&](const std::string &Name, const RunProfile &S) {
      RunProfile &A = Aggregate[Name];
      A.Ok = true;
      A.DynChecks += S.DynChecks;
      A.DynTraps += S.DynTraps;
      A.Accesses += S.Accesses;
      A.ResidualSites += S.ResidualSites;
    };
    Accumulate("naive", Summaries[0]);
    for (size_t SC = 0; SC != std::size(Schemes); ++SC)
      if (Summaries[1 + SC].Ok)
        Accumulate(placementSchemeName(Schemes[SC]), Summaries[1 + SC]);

    if (Json) {
      W.beginObject();
      W.kv("name", Prog.Name);
      W.key("schemes").beginArray();
      auto SchemeRow = [&](const std::string &Name, const RunProfile &S) {
        W.beginObject();
        W.kv("scheme", Name);
        W.kv("dynChecks", S.DynChecks);
        W.kv("dynTraps", S.DynTraps);
        W.kv("arrayAccesses", S.Accesses);
        W.kv("residualSites", S.ResidualSites);
        W.kv("checksPerAccess", Density(S));
        W.endObject();
      };
      SchemeRow("naive", Summaries[0]);
      for (size_t SC = 0; SC != std::size(Schemes); ++SC)
        if (Summaries[1 + SC].Ok)
          SchemeRow(placementSchemeName(Schemes[SC]), Summaries[1 + SC]);
      W.endArray();
      W.key("hotSites").beginArray();
      for (const HotSite &H : Hot) {
        W.beginObject();
        W.kv("site", H.Site);
        W.kv("tag", H.Tag);
        W.kv("dynCount", H.Hits);
        W.kv("pctOfAccesses", Pct(H.Hits));
        W.key("eliminatedBy").beginArray();
        for (const std::string &S : H.EliminatedBy)
          W.value(S);
        W.endArray();
        W.endObject();
      }
      W.endArray();
      W.endObject();
    } else {
      std::printf("== %s ==\n", Prog.Name);
      TextTable DT({"scheme", "dyn checks", "accesses", "chk/acc",
                    "residual sites"});
      auto DensityRow = [&](const std::string &Name, const RunProfile &S) {
        DT.addRow({Name,
                   formatString("%llu",
                                static_cast<unsigned long long>(S.DynChecks)),
                   formatString("%llu",
                                static_cast<unsigned long long>(S.Accesses)),
                   formatString("%.4f", Density(S)),
                   formatString("%llu", static_cast<unsigned long long>(
                                            S.ResidualSites))});
      };
      DensityRow("naive", Summaries[0]);
      for (size_t SC = 0; SC != std::size(Schemes); ++SC)
        if (Summaries[1 + SC].Ok)
          DensityRow(placementSchemeName(Schemes[SC]), Summaries[1 + SC]);
      std::printf("%s\n", DT.render().c_str());

      TextTable HT({"site", "tag", "dyn count", "% of accesses",
                    "eliminated by"});
      for (const HotSite &H : Hot) {
        std::string Elim;
        for (const std::string &S : H.EliminatedBy)
          Elim += (Elim.empty() ? "" : " ") + S;
        HT.addRow({H.Site, "t" + std::to_string(H.Tag),
                   formatString("%llu",
                                static_cast<unsigned long long>(H.Hits)),
                   formatString("%.2f", Pct(H.Hits)),
                   Elim.empty() ? "-" : Elim});
      }
      std::printf("%s\n", HT.render().c_str());
    }
  }

  if (Json) {
    W.endArray();
    W.key("suite").beginArray();
    for (const auto &[Name, S] : Aggregate) {
      W.beginObject();
      W.kv("scheme", Name);
      W.kv("dynChecks", S.DynChecks);
      W.kv("dynTraps", S.DynTraps);
      W.kv("arrayAccesses", S.Accesses);
      W.kv("residualSites", S.ResidualSites);
      W.kv("checksPerAccess",
           S.Accesses ? static_cast<double>(S.DynChecks) /
                            static_cast<double>(S.Accesses)
                      : 0.0);
      W.endObject();
    }
    W.endArray();
    W.kv("failures", Failures);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  } else {
    std::printf("== suite (%zu programs) ==\n", Programs.size());
    TextTable AT({"scheme", "dyn checks", "accesses", "chk/acc",
                  "residual sites"});
    for (const auto &[Name, S] : Aggregate)
      AT.addRow(
          {Name,
           formatString("%llu", static_cast<unsigned long long>(S.DynChecks)),
           formatString("%llu", static_cast<unsigned long long>(S.Accesses)),
           formatString("%.4f",
                        S.Accesses ? static_cast<double>(S.DynChecks) /
                                         static_cast<double>(S.Accesses)
                                   : 0.0),
           formatString("%llu",
                        static_cast<unsigned long long>(S.ResidualSites))});
    std::printf("%s", AT.render().c_str());
  }
  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// sweep: batch-compiles the whole (program, scheme, implication-mode)
/// matrix through BatchCompiler and summarises what each configuration
/// did — static checks left in the IR, checks eliminated/hoisted, and the
/// per-job work-proxy counters the batch engine captures (bit-vector word
/// ops, dataflow block visits, CIG edges). It is the smallest driver that
/// exercises the parallel compilation path end to end:
///
///   sweep --jobs 8          # fan the matrix across 8 workers
///   sweep --jobs 0          # one worker per hardware thread
///   sweep --json            # machine-readable document on stdout
///   sweep --remarks[=RE]    # per-decision remarks, submission order
///   sweep --provenance      # per-run lifecycle record (+ reconcile gate)
///   sweep --profile         # interpret every compiled result and report
///                           # dynamic check density per configuration
///   sweep --cache           # share frontend/analysis artifacts across
///                           # cells (docs/caching.md); stats on stderr
///   sweep -trace-out=PATH   # one merged Chrome trace, one lane per
///                           # worker thread
///   sweep prog.mf ...       # sweep the given files instead of the
///                           # built-in suite (each read exactly once)
///
/// Results are consumed in submission order and no job count is echoed
/// into the document, so the output is bit-identical for every --jobs
/// value (timing columns aside; --profile drops them so its whole output
/// is byte-identical across job counts) — the same determinism contract
/// audit_all relies on (docs/parallelism.md). The remark and provenance
/// streams inherit the contract: each job buffers into its own
/// collectors, and sweep flushes the buffers in submission order, so
/// `--jobs N` output matches a serial run byte for byte.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "driver/BatchCompiler.h"
#include "interp/Interpreter.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "suite/Suite.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace nascent;

namespace {

const char *implicationModeName(ImplicationMode M) {
  switch (M) {
  case ImplicationMode::All:
    return "all";
  case ImplicationMode::CrossFamilyOnly:
    return "cross";
  case ImplicationMode::None:
    return "none";
  }
  return "?";
}

/// Accumulated results of one (scheme, mode) configuration over the suite.
struct ConfigSummary {
  uint64_t StaticChecks = 0;
  uint64_t Deleted = 0;
  uint64_t Inserted = 0;
  uint64_t WordOps = 0;
  double OptimizeWall = 0;
  double OptimizeCpu = 0;
  unsigned Runs = 0;
  // --profile aggregates (dynamic, from interpreting each result).
  uint64_t DynChecks = 0;
  uint64_t DynTraps = 0;
  uint64_t Accesses = 0;
  uint64_t TrappedRuns = 0;
};

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  bool Remarks = false;
  bool Provenance = false;
  bool Profile = false;
  bool UseCache = false;
  std::string RemarkFilter;
  std::string TracePath;
  std::vector<std::string> Files;
  unsigned Jobs = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--remarks") == 0)
      Remarks = true;
    else if (std::strncmp(argv[I], "--remarks=", 10) == 0) {
      Remarks = true;
      RemarkFilter = argv[I] + 10;
    } else if (std::strcmp(argv[I], "--provenance") == 0)
      Provenance = true;
    else if (std::strcmp(argv[I], "--profile") == 0)
      Profile = true;
    else if (std::strcmp(argv[I], "--cache") == 0)
      UseCache = true;
    else if (std::strncmp(argv[I], "-trace-out=", 11) == 0)
      TracePath = argv[I] + 11;
    else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      unsigned Requested = 0;
      if (!parseJobCount(argv[++I], Requested)) {
        std::fprintf(stderr,
                     "sweep: invalid --jobs value '%s' (expected a "
                     "non-negative integer; 0 = one worker per hardware "
                     "thread)\n",
                     argv[I]);
        return 2;
      }
      Jobs = resolveJobCount(Requested);
    } else if (argv[I][0] != '-')
      Files.push_back(argv[I]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--remarks[=REGEX]] [--provenance] "
                   "[--profile] [--cache] [-trace-out=PATH] [--jobs N] "
                   "[FILE.mf ...]\n",
                   argv[0]);
      return 2;
    }
  }

  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const ImplicationMode Modes[] = {ImplicationMode::All,
                                   ImplicationMode::CrossFamilyOnly,
                                   ImplicationMode::None};

  // Every program's text is materialised exactly once — suite sources are
  // wrapped in one shared buffer each, file arguments are read once here —
  // and every grid cell over that program shares the same buffer through
  // BatchJob's shared_ptr, instead of re-reading or copying per cell.
  struct ProgramEntry {
    std::string Name;
    std::shared_ptr<const std::string> Source;
  };
  std::vector<ProgramEntry> Programs;
  if (Files.empty()) {
    for (const SuiteProgram &P : benchmarkSuite())
      Programs.push_back(
          {P.Name, std::make_shared<const std::string>(P.Source)});
  } else {
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "sweep: cannot open %s\n", Path.c_str());
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Programs.push_back(
          {Path, std::make_shared<const std::string>(Buf.str())});
    }
  }

  struct RunKey {
    std::string Program;
    PlacementScheme Scheme;
    ImplicationMode Mode;
  };
  std::vector<BatchJob> Batch;
  std::vector<RunKey> Keys;
  for (const ProgramEntry &P : Programs) {
    for (PlacementScheme Scheme : Schemes) {
      for (ImplicationMode Mode : Modes) {
        PipelineOptions PO;
        PO.Opt.Scheme = Scheme;
        PO.Opt.Implications = Mode;
        PO.Cache.Enabled = UseCache;
        PO.Telemetry.Trace = !TracePath.empty();
        PO.Telemetry.Remarks = Remarks;
        PO.Telemetry.RemarkFilter = RemarkFilter;
        PO.Telemetry.Provenance = Provenance;
        PO.Telemetry.Profile = Profile;
        Batch.push_back({P.Source, PO});
        Keys.push_back({P.Name, Scheme, Mode});
      }
    }
  }

  if (UseCache)
    cache::ArtifactCache::global().resetStats();
  std::vector<BatchJobResult> Results = BatchCompiler(Jobs).run(Batch);
  // Stats go to stderr so stdout stays byte-identical cache-on vs off.
  if (UseCache)
    std::fprintf(stderr, "sweep: %s\n",
                 cache::ArtifactCache::global().summaryLine().c_str());

  // --profile: run every compiled module once, streaming dynamic counts
  // into its attached profile. Serial and in submission order, so the
  // profile documents are byte-identical for every --jobs value.
  if (Profile) {
    for (BatchJobResult &BR : Results) {
      CompileResult &R = BR.Result;
      if (!R.Success)
        continue;
      InterpOptions IO;
      IO.Profile = &R.Profile;
      interpret(*R.M, IO);
    }
  }

  // Each job buffered its remarks in its own collector; flushing in
  // submission order makes the stream byte-identical to a serial run no
  // matter how the pool interleaved the jobs.
  if (Remarks) {
    for (size_t I = 0; I != Results.size(); ++I) {
      const RunKey &K = Keys[I];
      const CompileResult &R = Results[I].Result;
      if (!R.Success || R.Remarks.remarks().empty())
        continue;
      std::cerr << "== " << K.Program << " scheme="
                << placementSchemeName(K.Scheme)
                << " impl=" << implicationModeName(K.Mode) << "\n";
      R.Remarks.renderText(std::cerr);
    }
  }

  // One coherent Chrome trace: every compile's spans on its worker's
  // lane, timestamps rebased onto the earliest collector epoch.
  if (!TracePath.empty()) {
    std::vector<obs::TraceMergeInput> Lanes;
    std::set<uint32_t> Named;
    for (const BatchJobResult &BR : Results) {
      obs::TraceMergeInput In;
      In.Collector = &BR.Result.Trace;
      uint32_t Tid = BR.Result.Trace.threadTag();
      if (Named.insert(Tid).second)
        In.Label = "worker " + std::to_string(Tid);
      Lanes.push_back(std::move(In));
    }
    std::string Err;
    if (!obs::writeMergedTraceFile(Lanes, TracePath, &Err)) {
      std::fprintf(stderr, "sweep: cannot write trace file: %s\n",
                   Err.c_str());
      return 2;
    }
  }

  obs::JsonWriter W;
  if (Json) {
    W.beginObject();
    W.kv("schemaVersion", obs::BenchSchemaVersion);
    W.kv("tool", "sweep");
    W.key("runs");
    W.beginArray();
  }

  unsigned Failures = 0;
  std::map<std::pair<std::string, std::string>, ConfigSummary> Summaries;
  for (size_t I = 0; I != Results.size(); ++I) {
    const RunKey &K = Keys[I];
    const CompileResult &R = Results[I].Result;
    if (!R.Success) {
      std::fprintf(stderr, "sweep: %s/%s: compile failed:\n%s\n",
                   K.Program.c_str(), placementSchemeName(K.Scheme),
                   R.Diags.render().c_str());
      ++Failures;
      continue;
    }
    ConfigSummary &S = Summaries[{placementSchemeName(K.Scheme),
                                  implicationModeName(K.Mode)}];
    StaticCounts SC = countStatic(*R.M);
    S.StaticChecks += SC.Checks;
    S.Deleted += R.Stats.ChecksDeleted;
    S.Inserted += R.Stats.ChecksInserted;
    auto WordOps = Results[I].Work.find("support.bitvector.word_ops");
    if (WordOps != Results[I].Work.end())
      S.WordOps += WordOps->second;
    S.OptimizeWall += R.optimizeWallSeconds();
    S.OptimizeCpu += R.optimizeCpuSeconds();
    ++S.Runs;
    if (Profile) {
      S.DynChecks += R.Profile.dynChecks();
      S.DynTraps += R.Profile.dynTraps();
      S.Accesses += R.Profile.arrayAccesses();
      S.TrappedRuns += R.Profile.trappedRuns();
    }
    if (Json) {
      W.beginObject();
      W.kv("program", K.Program);
      W.kv("scheme", placementSchemeName(K.Scheme));
      W.kv("impl", implicationModeName(K.Mode));
      W.kv("staticChecks", SC.Checks);
      W.key("stats");
      R.Stats.writeJson(W);
      W.key("work");
      W.beginObject();
      for (const auto &[Name, V] : Results[I].Work)
        W.kv(Name, V);
      W.endObject();
      if (Provenance) {
        W.key("provenance");
        R.Provenance.writeJson(W);
      }
      if (Profile) {
        W.kv("profileVersion", obs::ProfileVersion);
        W.key("profile");
        R.Profile.writeJson(W);
      }
      W.endObject();
    }
    if (Provenance) {
      std::vector<std::string> Problems =
          reconcileCheckProvenance(R.Provenance, R.Stats);
      if (!Problems.empty()) {
        std::fprintf(stderr, "sweep: %s scheme=%s impl=%s provenance "
                             "FAILED\n",
                     K.Program.c_str(), placementSchemeName(K.Scheme),
                     implicationModeName(K.Mode));
        for (const std::string &P : Problems)
          std::fprintf(stderr, "  %s\n", P.c_str());
        ++Failures;
      }
    }
  }

  if (Json) {
    W.endArray();
    W.kv("runs", static_cast<uint64_t>(Results.size()));
    W.kv("failures", Failures);
    W.key("configs");
    W.beginArray();
    for (const auto &[Key, S] : Summaries) {
      W.beginObject();
      W.kv("scheme", Key.first);
      W.kv("impl", Key.second);
      W.kv("staticChecks", S.StaticChecks);
      W.kv("deleted", S.Deleted);
      W.kv("inserted", S.Inserted);
      W.kv("wordOps", S.WordOps);
      if (Profile) {
        // Dynamic density instead of timings: everything here is
        // deterministic, keeping --profile output byte-identical across
        // --jobs values.
        W.kv("dynChecks", S.DynChecks);
        W.kv("dynTraps", S.DynTraps);
        W.kv("arrayAccesses", S.Accesses);
        W.kv("checksPerAccess",
             S.Accesses ? static_cast<double>(S.DynChecks) /
                              static_cast<double>(S.Accesses)
                        : 0.0);
        W.kv("trappedRuns", S.TrappedRuns);
      } else {
        W.kv("optimizeWallSeconds", S.OptimizeWall);
        W.kv("optimizeCpuSeconds", S.OptimizeCpu);
      }
      W.endObject();
    }
    W.endArray();
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return Failures ? 1 : 0;
  }

  std::printf("sweep: %zu compilations, %u failures\n\n", Results.size(),
              Failures);
  std::vector<std::string> Cols = {"scheme",   "impl",     "static",
                                   "deleted",  "inserted", "word ops"};
  if (Profile) {
    Cols.push_back("dyn checks");
    Cols.push_back("accesses");
    Cols.push_back("chk/acc");
    Cols.push_back("trapped");
  } else {
    Cols.push_back("opt wall");
    Cols.push_back("opt cpu");
  }
  TextTable T(Cols);
  for (const auto &[Key, S] : Summaries) {
    std::vector<std::string> Row = {
        Key.first, Key.second,
        formatString("%llu", static_cast<unsigned long long>(S.StaticChecks)),
        formatString("%llu", static_cast<unsigned long long>(S.Deleted)),
        formatString("%llu", static_cast<unsigned long long>(S.Inserted)),
        formatString("%llu", static_cast<unsigned long long>(S.WordOps))};
    if (Profile) {
      Row.push_back(
          formatString("%llu", static_cast<unsigned long long>(S.DynChecks)));
      Row.push_back(
          formatString("%llu", static_cast<unsigned long long>(S.Accesses)));
      Row.push_back(formatString(
          "%.4f", S.Accesses ? static_cast<double>(S.DynChecks) /
                                   static_cast<double>(S.Accesses)
                             : 0.0));
      Row.push_back(formatString(
          "%llu", static_cast<unsigned long long>(S.TrappedRuns)));
    } else {
      Row.push_back(formatString("%.3f", S.OptimizeWall));
      Row.push_back(formatString("%.3f", S.OptimizeCpu));
    }
    T.addRow(Row);
  }
  std::printf("%s", T.render().c_str());
  return Failures ? 1 : 0;
}

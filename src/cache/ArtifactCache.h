//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed compilation cache shared across a BatchCompiler
/// batch (docs/caching.md). Two artifact tiers:
///
///  * Frontend: a verified post-lowering Module snapshot keyed by
///    (source bytes, lowering options, check source). On a hit the
///    pipeline clones the snapshot and skips parse/sema/lower/verify.
///  * Analysis: per-function, keyed by the content hash of the
///    (critical-edge-split) IR — a CheckContext seed (universe, transfer
///    sets, closures) keyed additionally by the implication mode, and the
///    dominator-tree/loop-forest pair, which is mode-independent.
///
/// Thread safety: the maps are sharded by key with one mutex per shard;
/// the hot path (one lookup per tier per compile) never takes a global
/// lock. Entries are immutable once stored and handed out as
/// shared_ptr<const>, so readers on other workers are safe even while a
/// shard evicts. Eviction is per-shard FIFO against a byte budget.
///
/// Hit/miss/byte counters are plain atomics on the cache itself, NOT
/// StatRegistry stats: the registry's snapshot deltas are the byte-exact
/// work maps the determinism gates compare, and cache counters would make
/// a cache-on run's work maps differ from cache-off (and differ per job
/// schedule). See docs/caching.md.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CACHE_ARTIFACTCACHE_H
#define NASCENT_CACHE_ARTIFACTCACHE_H

#include "analysis/Dataflow.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "checks/CheckUniverse.h"
#include "frontend/Lowering.h"
#include "ir/Function.h"
#include "support/DenseBitVector.h"
#include "support/Hash.h"

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace nascent {

namespace obs {
class JsonWriter;
}

namespace cache {

/// A cached frontend result: the verified post-lowering module (before
/// INX synthesis and before optimization), ready to clone.
struct FrontendArtifact {
  std::unique_ptr<const Module> Snapshot;
  uint64_t Bytes = 0;
};

/// Write-once memo for the two global data-flow solves a CheckContext can
/// answer (availability, anticipatability). The box is shared by every
/// context built from one seed — the organic build that produced the seed
/// included — so each problem is solved once per (function, mode) and
/// every later consumer (strengthening, LCM, preheader insertion,
/// elimination, across all grid cells sharing the seed) replays the first
/// solve's exact telemetry (visit counts, bit-vector word ops) instead of
/// re-iterating to the same fixpoint.
struct SolveMemo {
  std::mutex Mu;
  /// Release-published after the result below is fully written; readers
  /// acquire-load them and on true read the result without the mutex.
  std::atomic<bool> AvailReady{false};
  std::atomic<bool> AnticReady{false};
  DataflowResult Avail;
  DataflowResult Antic;
  /// Bit-vector word ops the first solve performed, credited back to the
  /// replaying thread on a memo hit (docs/caching.md).
  uint64_t AvailWordOps = 0;
  uint64_t AnticWordOps = 0;
};

/// The immutable heart of a built CheckContext: per-instruction check
/// ids, representative origins, entry facts, block transfer sets, and
/// the (eagerly completed) weaker-closure caches. Shared by reference
/// between a seed and every context built from it — none of these
/// tables changes after construction, so a seeded context binds to the
/// shared instance instead of copying a few hundred heap blocks per hit.
struct ContextCore {
  std::vector<std::vector<CheckID>> InstCheck;
  std::vector<CheckOrigin> RepOrigin;
  std::vector<DenseBitVector> GenIn;
  std::vector<DenseBitVector> Kill;
  std::vector<DenseBitVector> AvailGen; // includes GenIn survivors
  std::vector<DenseBitVector> AnticGen;
  bool ClosuresBuilt = false;
  std::vector<DenseBitVector> ClosureCache;
  std::vector<DenseBitVector> FamClosureCache;
};

/// A cached CheckContext build for one function at one implication mode:
/// every member the constructor computes, in post-constructor state, plus
/// the bit-vector word-op count the organic build performed so a seeded
/// rebuild can replay the exact work-proxy delta (docs/caching.md).
struct ContextSeed {
  /// Shared immutable universe: every context built from this seed reads
  /// the same instance instead of copying the intern maps per hit.
  std::shared_ptr<const CheckUniverse> U;
  /// Shared immutable tables (see ContextCore).
  std::shared_ptr<const ContextCore> Core;
  /// Word-parallel bit-vector ops the organic build spent constructing
  /// the core tables (credited back on a seeded build).
  uint64_t BuildWordOps = 0;
  uint64_t Bytes = 0;
  /// Shared solve memo (see SolveMemo); populated lazily by whichever
  /// context sharing this seed solves each problem first.
  std::shared_ptr<SolveMemo> Solves;
};

/// A cached dominator-tree + loop-forest pair. Both structures are pure
/// BlockID tables with no back-reference to the Function they were built
/// from, so one build serves every identical clone of that function.
struct LoopArtifacts {
  explicit LoopArtifacts(const Function &F) : DT(F), LI(F, DT) {}

  DominatorTree DT;
  LoopInfo LI;
};

/// The thread-safe, content-addressed artifact cache.
class ArtifactCache {
public:
  /// Hit/miss/size counters. "Analysis" aggregates the context-seed and
  /// loop-artifact tiers when surfaced (cacheStats JSON, --cache summary).
  struct Stats {
    uint64_t FrontendHits = 0;
    uint64_t FrontendMisses = 0;
    uint64_t ContextHits = 0;
    uint64_t ContextMisses = 0;
    uint64_t LoopHits = 0;
    uint64_t LoopMisses = 0;
    uint64_t Bytes = 0;
    uint64_t Evictions = 0;

    uint64_t analysisHits() const { return ContextHits + LoopHits; }
    uint64_t analysisMisses() const { return ContextMisses + LoopMisses; }
  };

  /// \p MaxBytes caps the evictable tiers (frontend snapshots, context
  /// seeds, loop artifacts), enforced per shard FIFO-oldest-first.
  explicit ArtifactCache(uint64_t MaxBytes = DefaultMaxBytes);

  /// The process-global cache, shared by every pipeline that enables
  /// caching without supplying its own instance.
  static ArtifactCache &global();

  // Frontend tier.
  std::shared_ptr<const FrontendArtifact>
  findFrontend(const support::Hash128 &Key);
  void storeFrontend(const support::Hash128 &Key,
                     std::unique_ptr<const Module> Snapshot);

  // Analysis tier: CheckContext seeds (key = mix(function key, mode)).
  std::shared_ptr<const ContextSeed>
  findContextSeed(const support::Hash128 &Key);
  void storeContextSeed(const support::Hash128 &Key, ContextSeed Seed);

  // Analysis tier: dominators + loops (key = function key).
  std::shared_ptr<const LoopArtifacts>
  findLoopArtifacts(const support::Hash128 &Key);
  std::shared_ptr<const LoopArtifacts>
  storeLoopArtifacts(const support::Hash128 &Key,
                     std::shared_ptr<const LoopArtifacts> LA);

  /// The content key of \p F's current IR, memoised under
  /// mix(ModuleKey, name): every compile of the same frontend snapshot
  /// reaches the identical IR for each function (cloning and critical-edge
  /// splitting are deterministic), so the IR walk happens once per
  /// (module, function) rather than once per grid cell.
  support::Hash128 functionKey(const support::Hash128 &ModuleKey,
                               const Function &F);

  Stats stats() const;
  void resetStats();

  /// Drops every entry (the memoised function keys included) and zeroes
  /// the byte gauge. Counters are left to resetStats().
  void clear();

  uint64_t maxBytes() const { return MaxBytes; }

  /// {"frontend":{"hits":..,"misses":..},"analysis":{...},
  ///  "bytes":..,"maxBytes":..,"evictions":..}
  void writeStatsJson(obs::JsonWriter &W) const;

  /// One human-readable summary line (no trailing newline), e.g.
  /// "cache: frontend 260/270 hits, analysis 508/568 hits, 1.2 MB".
  std::string summaryLine() const;

private:
  static constexpr uint64_t DefaultMaxBytes = 256ull << 20;
  static constexpr size_t NumShards = 16;

  template <typename T> struct Shard {
    std::mutex Mu;
    std::unordered_map<support::Hash128, std::shared_ptr<const T>,
                       support::Hash128Hasher>
        Map;
    /// Insertion order for FIFO eviction, with each entry's byte estimate.
    std::deque<std::pair<support::Hash128, uint64_t>> Order;
    uint64_t Bytes = 0;
  };

  template <typename T> struct ShardedMap {
    std::array<Shard<T>, NumShards> Shards;

    Shard<T> &shardFor(const support::Hash128 &Key) {
      return Shards[Key.Lo % NumShards];
    }
  };

  template <typename T>
  std::shared_ptr<const T> find(ShardedMap<T> &M,
                                const support::Hash128 &Key);
  template <typename T>
  std::shared_ptr<const T> store(ShardedMap<T> &M,
                                 const support::Hash128 &Key,
                                 std::shared_ptr<const T> V, uint64_t Bytes);

  uint64_t MaxBytes;

  ShardedMap<FrontendArtifact> Frontends;
  ShardedMap<ContextSeed> Seeds;
  ShardedMap<LoopArtifacts> Loops;

  std::mutex FnKeyMu;
  std::unordered_map<support::Hash128, support::Hash128,
                     support::Hash128Hasher>
      FnKeys;

  std::atomic<uint64_t> FrontendHits{0}, FrontendMisses{0};
  std::atomic<uint64_t> ContextHits{0}, ContextMisses{0};
  std::atomic<uint64_t> LoopHits{0}, LoopMisses{0};
  std::atomic<uint64_t> TotalBytes{0};
  std::atomic<uint64_t> Evictions{0};
};

/// Key of the frontend tier: the source bytes, the lowering options, and
/// the check-source kind. The check source does not change the snapshot
/// itself (INX synthesis runs on the clone), but it is part of the key so
/// downstream function-content memoisation never aliases PRX and INX
/// compiles of one source.
support::Hash128 hashFrontendKey(const std::string &Source,
                                 const LoweringOptions &Lowering,
                                 unsigned CheckSourceKind);

/// Content hash of one function's current IR: blocks, instructions (all
/// semantic fields, check payloads, tags, origins, locations), the symbol
/// table, parameters, and do-loop metadata. Two functions with equal
/// hashes optimize identically.
support::Hash128 hashFunctionContent(const Function &F);

/// Rough retained-size estimates for the byte budget.
uint64_t approxModuleBytes(const Module &M);
uint64_t approxContextSeedBytes(const ContextSeed &S);
uint64_t approxLoopArtifactBytes(const LoopArtifacts &LA);

} // namespace cache
} // namespace nascent

#endif // NASCENT_CACHE_ARTIFACTCACHE_H

#include "cache/ArtifactCache.h"

#include "obs/Json.h"
#include "support/StringUtils.h"

using namespace nascent;
using namespace nascent::cache;
using support::Hash128;
using support::StableHasher;

ArtifactCache::ArtifactCache(uint64_t MaxBytes) : MaxBytes(MaxBytes) {}

ArtifactCache &ArtifactCache::global() {
  // Leaked, like the stat registry: worker threads may still hold entry
  // references while the process shuts down.
  static ArtifactCache *C = new ArtifactCache();
  return *C;
}

template <typename T>
std::shared_ptr<const T> ArtifactCache::find(ShardedMap<T> &M,
                                             const Hash128 &Key) {
  Shard<T> &S = M.shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Map.find(Key);
  return It == S.Map.end() ? nullptr : It->second;
}

template <typename T>
std::shared_ptr<const T> ArtifactCache::store(ShardedMap<T> &M,
                                              const Hash128 &Key,
                                              std::shared_ptr<const T> V,
                                              uint64_t Bytes) {
  Shard<T> &S = M.shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto [It, Inserted] = S.Map.emplace(Key, std::move(V));
  if (!Inserted)
    return It->second; // concurrent duplicate build: first store wins
  S.Order.emplace_back(Key, Bytes);
  S.Bytes += Bytes;
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
  // FIFO eviction against this shard's slice of the budget. Evicted
  // entries stay alive through any shared_ptr a reader already holds.
  uint64_t ShardBudget = MaxBytes / NumShards;
  while (S.Bytes > ShardBudget && S.Order.size() > 1 &&
         !(S.Order.front().first == Key)) {
    auto [Oldest, OldBytes] = S.Order.front();
    S.Order.pop_front();
    S.Map.erase(Oldest);
    S.Bytes -= OldBytes < S.Bytes ? OldBytes : S.Bytes;
    TotalBytes.fetch_sub(OldBytes, std::memory_order_relaxed);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
  return It->second;
}

std::shared_ptr<const FrontendArtifact>
ArtifactCache::findFrontend(const Hash128 &Key) {
  std::shared_ptr<const FrontendArtifact> A = find(Frontends, Key);
  (A ? FrontendHits : FrontendMisses).fetch_add(1, std::memory_order_relaxed);
  return A;
}

void ArtifactCache::storeFrontend(const Hash128 &Key,
                                  std::unique_ptr<const Module> Snapshot) {
  auto A = std::make_shared<FrontendArtifact>();
  A->Bytes = approxModuleBytes(*Snapshot);
  A->Snapshot = std::move(Snapshot);
  uint64_t Bytes = A->Bytes;
  store<FrontendArtifact>(Frontends, Key, std::move(A), Bytes);
}

std::shared_ptr<const ContextSeed>
ArtifactCache::findContextSeed(const Hash128 &Key) {
  std::shared_ptr<const ContextSeed> S = find(Seeds, Key);
  (S ? ContextHits : ContextMisses).fetch_add(1, std::memory_order_relaxed);
  return S;
}

void ArtifactCache::storeContextSeed(const Hash128 &Key, ContextSeed Seed) {
  Seed.Bytes = approxContextSeedBytes(Seed);
  uint64_t Bytes = Seed.Bytes;
  store<ContextSeed>(Seeds, Key,
                     std::make_shared<const ContextSeed>(std::move(Seed)),
                     Bytes);
}

std::shared_ptr<const LoopArtifacts>
ArtifactCache::findLoopArtifacts(const Hash128 &Key) {
  std::shared_ptr<const LoopArtifacts> LA = find(Loops, Key);
  (LA ? LoopHits : LoopMisses).fetch_add(1, std::memory_order_relaxed);
  return LA;
}

std::shared_ptr<const LoopArtifacts>
ArtifactCache::storeLoopArtifacts(const Hash128 &Key,
                                  std::shared_ptr<const LoopArtifacts> LA) {
  uint64_t Bytes = approxLoopArtifactBytes(*LA);
  return store<LoopArtifacts>(Loops, Key, std::move(LA), Bytes);
}

Hash128 ArtifactCache::functionKey(const Hash128 &ModuleKey,
                                   const Function &F) {
  StableHasher NameMix;
  NameMix.u64(ModuleKey.Lo);
  NameMix.u64(ModuleKey.Hi);
  NameMix.str(F.name());
  Hash128 MemoKey = NameMix.digest();

  {
    std::lock_guard<std::mutex> L(FnKeyMu);
    auto It = FnKeys.find(MemoKey);
    if (It != FnKeys.end())
      return It->second;
  }
  Hash128 Content = hashFunctionContent(F);
  std::lock_guard<std::mutex> L(FnKeyMu);
  FnKeys.emplace(MemoKey, Content);
  return Content;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats S;
  S.FrontendHits = FrontendHits.load(std::memory_order_relaxed);
  S.FrontendMisses = FrontendMisses.load(std::memory_order_relaxed);
  S.ContextHits = ContextHits.load(std::memory_order_relaxed);
  S.ContextMisses = ContextMisses.load(std::memory_order_relaxed);
  S.LoopHits = LoopHits.load(std::memory_order_relaxed);
  S.LoopMisses = LoopMisses.load(std::memory_order_relaxed);
  S.Bytes = TotalBytes.load(std::memory_order_relaxed);
  S.Evictions = Evictions.load(std::memory_order_relaxed);
  return S;
}

void ArtifactCache::resetStats() {
  FrontendHits = FrontendMisses = 0;
  ContextHits = ContextMisses = 0;
  LoopHits = LoopMisses = 0;
  Evictions = 0;
}

void ArtifactCache::clear() {
  auto ClearMap = [this](auto &M) {
    for (auto &S : M.Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      S.Map.clear();
      S.Order.clear();
      S.Bytes = 0;
    }
  };
  ClearMap(Frontends);
  ClearMap(Seeds);
  ClearMap(Loops);
  {
    std::lock_guard<std::mutex> L(FnKeyMu);
    FnKeys.clear();
  }
  TotalBytes = 0;
}

void ArtifactCache::writeStatsJson(obs::JsonWriter &W) const {
  Stats S = stats();
  W.beginObject();
  W.key("frontend").beginObject();
  W.kv("hits", S.FrontendHits);
  W.kv("misses", S.FrontendMisses);
  W.endObject();
  W.key("analysis").beginObject();
  W.kv("hits", S.analysisHits());
  W.kv("misses", S.analysisMisses());
  W.endObject();
  W.kv("bytes", S.Bytes);
  W.kv("maxBytes", MaxBytes);
  W.kv("evictions", S.Evictions);
  W.endObject();
}

std::string ArtifactCache::summaryLine() const {
  Stats S = stats();
  return formatString(
      "cache: frontend %llu/%llu hits, analysis %llu/%llu hits, "
      "%.1f KB, %llu evictions",
      static_cast<unsigned long long>(S.FrontendHits),
      static_cast<unsigned long long>(S.FrontendHits + S.FrontendMisses),
      static_cast<unsigned long long>(S.analysisHits()),
      static_cast<unsigned long long>(S.analysisHits() + S.analysisMisses()),
      static_cast<double>(S.Bytes) / 1024.0,
      static_cast<unsigned long long>(S.Evictions));
}

Hash128 nascent::cache::hashFrontendKey(const std::string &Source,
                                        const LoweringOptions &Lowering,
                                        unsigned CheckSourceKind) {
  StableHasher H;
  H.str(Source);
  H.boolean(Lowering.InsertChecks);
  H.boolean(Lowering.SyntacticAtoms);
  H.u64(CheckSourceKind);
  return H.digest();
}

namespace {

void hashValue(StableHasher &H, const Value &V) {
  H.u64(static_cast<uint64_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::None:
    break;
  case Value::Kind::Sym:
    H.u32(V.symbol());
    break;
  case Value::Kind::IntConst:
  case Value::Kind::BoolConst:
    H.i64(V.intValue());
    break;
  case Value::Kind::RealConst:
    H.f64(V.realValue());
    break;
  }
}

void hashLinearExpr(StableHasher &H, const LinearExpr &E) {
  H.u64(E.terms().size());
  for (const auto &[Sym, Coeff] : E.terms()) {
    H.u32(Sym);
    H.i64(Coeff);
  }
  H.i64(E.constantPart());
}

void hashCheckExpr(StableHasher &H, const CheckExpr &C) {
  hashLinearExpr(H, C.expr());
  H.i64(C.bound());
}

void hashInstruction(StableHasher &H, const Instruction &I) {
  H.u64(static_cast<uint64_t>(I.Op));
  H.u32(I.Dest);
  H.u64(I.Operands.size());
  for (const Value &V : I.Operands)
    hashValue(H, V);
  H.u32(I.Array);
  H.u64(I.Indices.size());
  for (const Value &V : I.Indices)
    hashValue(H, V);
  hashCheckExpr(H, I.Check);
  H.u64(I.Guards.size());
  for (const CheckExpr &G : I.Guards)
    hashCheckExpr(H, G);
  H.str(I.Origin.ArrayName);
  H.i64(I.Origin.Dim);
  H.boolean(I.Origin.IsUpper);
  H.u32(I.Origin.Loc.Line);
  H.u32(I.Origin.Loc.Column);
  H.u32(I.Tag);
  H.str(I.Callee);
  H.u32(I.TrueTarget);
  H.u32(I.FalseTarget);
  H.u32(I.Loc.Line);
  H.u32(I.Loc.Column);
}

} // namespace

Hash128 nascent::cache::hashFunctionContent(const Function &F) {
  StableHasher H;
  H.str(F.name());

  // Symbol table: identity of every SymbolID the instructions reference.
  H.u64(F.symbols().size());
  for (const Symbol &S : F.symbols().symbols()) {
    H.u64(static_cast<uint64_t>(S.Kind));
    H.str(S.Name);
    H.u64(static_cast<uint64_t>(S.Type));
    H.boolean(S.IsParam);
    H.u64(static_cast<uint64_t>(S.Shape.Element));
    H.u64(S.Shape.Dims.size());
    for (const ArrayDim &D : S.Shape.Dims) {
      H.i64(D.Lower);
      H.i64(D.Upper);
    }
  }
  H.u64(F.params().size());
  for (SymbolID P : F.params())
    H.u32(P);

  // CFG and instructions.
  H.u64(F.numBlocks());
  for (const auto &BB : F) {
    H.u32(BB->id());
    H.u64(BB->size());
    for (const Instruction &I : BB->instructions())
      hashInstruction(H, I);
  }

  // Do-loop metadata: LoopInfo::attachDoLoopMetadata and the preheader
  // schemes read it, so it is part of the analysed content.
  H.u64(F.doLoops().size());
  for (const DoLoopInfo &DL : F.doLoops()) {
    H.u32(DL.Preheader);
    H.u32(DL.Header);
    H.u32(DL.BodyEntry);
    H.u32(DL.Latch);
    H.u32(DL.Exit);
    H.u32(DL.IndexVar);
    hashLinearExpr(H, DL.LowerBound);
    hashLinearExpr(H, DL.UpperBound);
    H.i64(DL.Step);
    H.u32(DL.BasicVar);
  }

  // The tag counter: two content-equal functions with different next-tag
  // state would replay optimizer insertions with different tags.
  H.u32(F.lastCheckTag());
  return H.digest();
}

namespace {

uint64_t approxBitVectorsBytes(const std::vector<DenseBitVector> &Vs) {
  uint64_t B = sizeof(Vs);
  for (const DenseBitVector &V : Vs)
    B += sizeof(DenseBitVector) + (V.size() + 7) / 8;
  return B;
}

} // namespace

uint64_t nascent::cache::approxModuleBytes(const Module &M) {
  uint64_t B = sizeof(Module);
  for (const Function *F : M.functions()) {
    B += sizeof(Function) + F->name().size();
    B += F->symbols().size() * (sizeof(Symbol) + 16);
    B += F->doLoops().size() * sizeof(DoLoopInfo);
    for (const auto &BB : *F) {
      B += sizeof(BasicBlock) + BB->name().size();
      for (const Instruction &I : BB->instructions()) {
        B += sizeof(Instruction);
        B += (I.Operands.size() + I.Indices.size()) * sizeof(Value);
        B += I.Guards.size() * sizeof(CheckExpr);
        B += (I.Check.expr().terms().size() + 2) * 16;
        B += I.Origin.ArrayName.size() + I.Callee.size();
      }
    }
  }
  return B;
}

uint64_t nascent::cache::approxContextSeedBytes(const ContextSeed &S) {
  uint64_t B = sizeof(ContextSeed);
  if (S.U)
    B += S.U->size() * 48; // checks + family/symbol indices
  if (!S.Core)
    return B;
  const ContextCore &C = *S.Core;
  B += sizeof(ContextCore);
  for (const auto &Ids : C.InstCheck)
    B += sizeof(Ids) + Ids.size() * sizeof(CheckID);
  for (const CheckOrigin &O : C.RepOrigin)
    B += sizeof(CheckOrigin) + O.ArrayName.size();
  B += approxBitVectorsBytes(C.GenIn);
  B += approxBitVectorsBytes(C.Kill);
  B += approxBitVectorsBytes(C.AvailGen);
  B += approxBitVectorsBytes(C.AnticGen);
  B += approxBitVectorsBytes(C.ClosureCache);
  B += approxBitVectorsBytes(C.FamClosureCache);
  return B;
}

uint64_t nascent::cache::approxLoopArtifactBytes(const LoopArtifacts &LA) {
  uint64_t B = sizeof(LoopArtifacts);
  B += LA.DT.rpo().size() * 48; // idom/rpo/children/frontier rows
  B += LA.LI.numLoops() * (sizeof(Loop) + 64);
  return B;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm, plus
/// dominance frontiers (needed for SSA phi placement).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_DOMINATORS_H
#define NASCENT_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace nascent {

/// Immediate-dominator tree for the reachable part of a function's CFG.
///
/// The function's predecessor lists must be current (call recomputePreds
/// before constructing). Unreachable blocks have no idom and dominate
/// nothing.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p B; InvalidBlock for the entry and for
  /// unreachable blocks.
  BlockID idom(BlockID B) const { return IDom[B]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(BlockID A, BlockID B) const;

  /// True when \p B is reachable from the entry.
  bool isReachable(BlockID B) const { return RPONumber[B] >= 0; }

  /// Children of \p B in the dominator tree.
  const std::vector<BlockID> &children(BlockID B) const {
    return Children[B];
  }

  /// Dominance frontier of \p B.
  const std::vector<BlockID> &frontier(BlockID B) const {
    return Frontier[B];
  }

  /// Blocks in reverse post-order (reachable only).
  const std::vector<BlockID> &rpo() const { return RPO; }

private:
  BlockID intersect(BlockID A, BlockID B) const;
  void computeFrontiers(const Function &F);

  std::vector<BlockID> IDom;
  std::vector<int> RPONumber; ///< -1 for unreachable blocks
  std::vector<BlockID> RPO;
  std::vector<std::vector<BlockID>> Children;
  std::vector<std::vector<BlockID>> Frontier;
};

} // namespace nascent

#endif // NASCENT_ANALYSIS_DOMINATORS_H

#include "analysis/SSA.h"

#include <algorithm>
#include <set>

using namespace nascent;

void SSA::forEachSymbolUse(const Instruction &I, const SymbolTable &Syms,
                           const std::function<void(SymbolID)> &Fn) {
  for (const Value &V : I.Operands)
    if (V.isSym() && !Syms.get(V.symbol()).isArray())
      Fn(V.symbol());
  for (const Value &V : I.Indices)
    if (V.isSym() && !Syms.get(V.symbol()).isArray())
      Fn(V.symbol());
  for (const auto &[Sym, Coeff] : I.Check.expr().terms()) {
    (void)Coeff;
    Fn(Sym);
  }
  for (const CheckExpr &G : I.Guards)
    for (const auto &[Sym, Coeff] : G.expr().terms()) {
      (void)Coeff;
      Fn(Sym);
    }
}

SSA::SSA(const Function &F, const DominatorTree &DT) : F(F) {
  size_t NumBlocks = F.numBlocks();
  BlockPhis.assign(NumBlocks, {});
  InstUses.assign(NumBlocks, {});
  InstDefs.assign(NumBlocks, {});
  for (size_t B = 0; B != NumBlocks; ++B) {
    InstUses[B].assign(F.block(static_cast<BlockID>(B))->size(), {});
    InstDefs[B].assign(F.block(static_cast<BlockID>(B))->size(),
                       InvalidSSAValue);
  }

  // Entry values for every scalar symbol.
  EntryValues.assign(F.symbols().size(), InvalidSSAValue);
  for (SymbolID S = 0; S != F.symbols().size(); ++S) {
    if (F.symbols().get(S).isArray())
      continue;
    SSADef D;
    D.K = SSADef::Kind::Entry;
    D.Sym = S;
    EntryValues[S] = static_cast<SSAValueID>(Defs.size());
    Defs.push_back(D);
  }

  placePhis(DT);
  rename(DT);
}

void SSA::placePhis(const DominatorTree &DT) {
  size_t NumSyms = F.symbols().size();

  // Def blocks per symbol; the entry block implicitly defines everything.
  std::vector<std::set<BlockID>> DefBlocks(NumSyms);
  for (BlockID B : DT.rpo()) {
    for (const Instruction &I : F.block(B)->instructions())
      if (I.Dest != InvalidSymbol && !F.symbols().get(I.Dest).isArray())
        DefBlocks[I.Dest].insert(B);
  }
  for (SymbolID S = 0; S != NumSyms; ++S) {
    if (F.symbols().get(S).isArray())
      continue;
    DefBlocks[S].insert(F.entryBlock());
  }

  // Iterated dominance frontier per symbol.
  for (SymbolID S = 0; S != NumSyms; ++S) {
    if (F.symbols().get(S).isArray())
      continue;
    std::vector<BlockID> Work(DefBlocks[S].begin(), DefBlocks[S].end());
    std::set<BlockID> HasPhi;
    while (!Work.empty()) {
      BlockID B = Work.back();
      Work.pop_back();
      for (BlockID FB : DT.frontier(B)) {
        if (HasPhi.count(FB))
          continue;
        HasPhi.insert(FB);
        SSAPhi P;
        P.Sym = S;
        P.Incoming.assign(F.block(FB)->preds().size(), InvalidSSAValue);
        SSADef D;
        D.K = SSADef::Kind::Phi;
        D.Sym = S;
        D.Block = FB;
        D.InstIdx = static_cast<uint32_t>(BlockPhis[FB].size());
        P.Result = static_cast<SSAValueID>(Defs.size());
        Defs.push_back(D);
        BlockPhis[FB].push_back(std::move(P));
        if (!DefBlocks[S].count(FB))
          Work.push_back(FB);
      }
    }
  }
}

void SSA::rename(const DominatorTree &DT) {
  size_t NumSyms = F.symbols().size();
  std::vector<std::vector<SSAValueID>> Stacks(NumSyms);
  for (SymbolID S = 0; S != NumSyms; ++S)
    if (EntryValues[S] != InvalidSSAValue)
      Stacks[S].push_back(EntryValues[S]);

  // Pre-compute, for each block, the index of each predecessor so phi
  // operands can be filled from the predecessor side.
  auto PredIndex = [&](BlockID Succ, BlockID Pred) -> int {
    const auto &Preds = F.block(Succ)->preds();
    for (size_t K = 0; K != Preds.size(); ++K)
      if (Preds[K] == Pred)
        return static_cast<int>(K);
    return -1;
  };

  // Iterative DFS over the dominator tree with explicit "undo" frames.
  struct Frame {
    BlockID B;
    size_t NextChild = 0;
    std::vector<SymbolID> Pushed; ///< symbols to pop when leaving
    bool Entered = false;
  };
  std::vector<Frame> Stack;
  Stack.push_back({F.entryBlock(), 0, {}, false});

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    BlockID B = Top.B;

    if (!Top.Entered) {
      Top.Entered = true;
      // Phi results become current definitions.
      for (SSAPhi &P : BlockPhis[B]) {
        Stacks[P.Sym].push_back(P.Result);
        Top.Pushed.push_back(P.Sym);
      }
      // Instructions: record uses at the pre-def point, then push defs.
      auto &BBInsts = F.block(B)->instructions();
      for (size_t Idx = 0; Idx != BBInsts.size(); ++Idx) {
        const Instruction &I = BBInsts[Idx];
        auto &Uses = InstUses[B][Idx];
        forEachSymbolUse(I, F.symbols(), [&](SymbolID S) {
          assert(!Stacks[S].empty() && "symbol has no reaching definition");
          Uses.push_back(Stacks[S].back());
        });
        if (I.Dest != InvalidSymbol && !F.symbols().get(I.Dest).isArray()) {
          SSADef D;
          D.K = SSADef::Kind::Inst;
          D.Sym = I.Dest;
          D.Block = B;
          D.InstIdx = static_cast<uint32_t>(Idx);
          SSAValueID V = static_cast<SSAValueID>(Defs.size());
          Defs.push_back(D);
          InstDefs[B][Idx] = V;
          Stacks[I.Dest].push_back(V);
          Top.Pushed.push_back(I.Dest);
        }
      }
      // Fill phi operands of CFG successors.
      for (BlockID S : F.block(B)->successors()) {
        int PI = PredIndex(S, B);
        if (PI < 0)
          continue;
        for (SSAPhi &P : BlockPhis[S]) {
          assert(!Stacks[P.Sym].empty() && "phi operand has no definition");
          P.Incoming[static_cast<size_t>(PI)] = Stacks[P.Sym].back();
        }
      }
    }

    if (Top.NextChild < DT.children(B).size()) {
      BlockID Child = DT.children(B)[Top.NextChild++];
      Stack.push_back({Child, 0, {}, false});
      continue;
    }

    // Leaving: pop this block's definitions.
    for (auto It = Top.Pushed.rbegin(); It != Top.Pushed.rend(); ++It)
      Stacks[*It].pop_back();
    Stack.pop_back();
  }
}

SSAValueID SSA::useOfSymbol(BlockID B, size_t InstIdx, SymbolID Sym) const {
  const Instruction &I = F.block(B)->instructions()[InstIdx];
  const auto &Uses = InstUses[B][InstIdx];
  size_t K = 0;
  SSAValueID Found = InvalidSSAValue;
  forEachSymbolUse(I, F.symbols(), [&](SymbolID S) {
    if (S == Sym && Found == InvalidSSAValue)
      Found = Uses[K];
    ++K;
  });
  return Found;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// SSA construction (Cytron et al.) as a side-table overlay: the IR itself
/// stays in non-SSA three-address form (the check data-flow problems of
/// the paper operate on that form), while induction-variable analysis
/// reads this overlay to reason about value flow. Each scalar symbol use
/// in each instruction is resolved to an SSA value; phi nodes live in
/// per-block side lists.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_SSA_H
#define NASCENT_ANALYSIS_SSA_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <functional>
#include <vector>

namespace nascent {

using SSAValueID = uint32_t;
constexpr SSAValueID InvalidSSAValue = ~SSAValueID(0);

/// Where an SSA value is defined.
struct SSADef {
  enum class Kind {
    Entry, ///< value of the symbol on function entry (param or undefined)
    Inst,  ///< destination of the instruction at (Block, InstIdx)
    Phi,   ///< phi number PhiIdx of Block
  };
  Kind K = Kind::Entry;
  SymbolID Sym = InvalidSymbol;
  BlockID Block = InvalidBlock;
  uint32_t InstIdx = 0; ///< instruction index (Inst) or phi index (Phi)
};

/// One phi node in the overlay.
struct SSAPhi {
  SymbolID Sym = InvalidSymbol;
  SSAValueID Result = InvalidSSAValue;
  /// Incoming values aligned with the block's predecessor list.
  std::vector<SSAValueID> Incoming;
};

/// The SSA overlay for one function. Construction requires current
/// predecessor lists and a dominator tree. The overlay is invalidated by
/// any IR mutation.
class SSA {
public:
  SSA(const Function &F, const DominatorTree &DT);

  /// SSA values of the scalar-symbol uses of instruction (B, InstIdx), in
  /// the canonical order produced by forEachSymbolUse.
  const std::vector<SSAValueID> &usesOf(BlockID B, size_t InstIdx) const {
    return InstUses[B][InstIdx];
  }

  /// The SSA value defined by instruction (B, InstIdx); InvalidSSAValue
  /// when the instruction has no scalar destination.
  SSAValueID defOf(BlockID B, size_t InstIdx) const {
    return InstDefs[B][InstIdx];
  }

  const SSADef &def(SSAValueID V) const { return Defs[V]; }

  const std::vector<SSAPhi> &phisIn(BlockID B) const { return BlockPhis[B]; }

  size_t numValues() const { return Defs.size(); }

  /// The function the overlay was built for.
  const Function &function() const { return F; }

  /// Enumerates the scalar-symbol uses of \p I in the canonical order:
  /// operands, then subscripts, then check-expression terms, then guard
  /// terms. Array symbols (e.g. whole-array call arguments) are skipped.
  static void forEachSymbolUse(const Instruction &I, const SymbolTable &Syms,
                               const std::function<void(SymbolID)> &Fn);

  /// Resolves the SSA value of symbol \p Sym at the *use position* of
  /// instruction (B, InstIdx). Returns InvalidSSAValue when \p Sym is not
  /// used by the instruction.
  SSAValueID useOfSymbol(BlockID B, size_t InstIdx, SymbolID Sym) const;

private:
  void placePhis(const DominatorTree &DT);
  void rename(const DominatorTree &DT);

  const Function &F;
  std::vector<SSADef> Defs;
  std::vector<std::vector<SSAPhi>> BlockPhis;
  std::vector<std::vector<std::vector<SSAValueID>>> InstUses;
  std::vector<std::vector<SSAValueID>> InstDefs;
  std::vector<SSAValueID> EntryValues; ///< per-symbol entry value
};

} // namespace nascent

#endif // NASCENT_ANALYSIS_SSA_H

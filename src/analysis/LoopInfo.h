//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and the loop nesting forest. The preheader
/// insertion schemes walk loops inner-to-outer so checks hoist to the
/// outermost loop possible (paper section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_LOOPINFO_H
#define NASCENT_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <memory>
#include <vector>

namespace nascent {

/// One natural loop: the union of all back-edge natural loops sharing a
/// header.
struct Loop {
  BlockID Header = InvalidBlock;
  /// Latches: sources of back edges into the header.
  std::vector<BlockID> Latches;
  /// All member blocks (header included), in discovery order.
  std::vector<BlockID> Blocks;
  /// Parent loop in the nesting forest; null for top-level loops.
  Loop *Parent = nullptr;
  /// Directly nested loops.
  std::vector<Loop *> SubLoops;
  /// Nesting depth (1 = outermost).
  unsigned Depth = 1;
  /// Unique predecessor of the header from outside the loop, when there is
  /// exactly one and it has the header as its only successor; otherwise
  /// InvalidBlock. The front end guarantees a preheader for do/while loops.
  BlockID Preheader = InvalidBlock;
  /// Index into Function::doLoops() when this loop carries front-end
  /// do-loop metadata; -1 otherwise (e.g. while loops).
  int DoLoopIndex = -1;

  bool contains(BlockID B) const;
};

/// Loop forest for one function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// All loops, innermost first (safe order for inner-to-outer hoisting).
  const std::vector<Loop *> &loopsInnermostFirst() const {
    return InnerFirst;
  }

  /// Top-level loops.
  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// Innermost loop containing \p B; null when B is not in any loop.
  Loop *loopFor(BlockID B) const {
    return B < BlockLoop.size() ? BlockLoop[B] : nullptr;
  }

  size_t numLoops() const { return Loops.size(); }

private:
  void discoverLoop(const Function &F, const DominatorTree &DT,
                    BlockID Header, const std::vector<BlockID> &Latches);
  void buildForest();
  void findPreheaders(const Function &F);
  void attachDoLoopMetadata(const Function &F);

  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> InnerFirst;
  std::vector<Loop *> BlockLoop; ///< innermost loop per block
};

} // namespace nascent

#endif // NASCENT_ANALYSIS_LOOPINFO_H

//===----------------------------------------------------------------------===//
///
/// \file
/// CFG traversal utilities: reverse post-order (the iteration order of the
/// forward data-flow solver) and reachability.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_CFGUTILS_H
#define NASCENT_ANALYSIS_CFGUTILS_H

#include "ir/Function.h"

#include <vector>

namespace nascent {

/// Blocks reachable from the entry, in reverse post-order.
std::vector<BlockID> reversePostOrder(const Function &F);

/// Per-block reachability from the entry (indexed by BlockID).
std::vector<bool> reachableBlocks(const Function &F);

} // namespace nascent

#endif // NASCENT_ANALYSIS_CFGUTILS_H

#include "analysis/CFGUtils.h"

#include <algorithm>

using namespace nascent;

namespace {

void postOrderVisit(const Function &F, BlockID B, std::vector<bool> &Seen,
                    std::vector<BlockID> &Out) {
  // Iterative DFS to avoid deep recursion on long CFGs.
  struct Frame {
    BlockID B;
    std::vector<BlockID> Succs;
    size_t NextSucc = 0;
  };
  std::vector<Frame> Stack;
  Seen[B] = true;
  Stack.push_back({B, F.block(B)->successors(), 0});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextSucc < Top.Succs.size()) {
      BlockID S = Top.Succs[Top.NextSucc++];
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back({S, F.block(S)->successors(), 0});
      }
      continue;
    }
    Out.push_back(Top.B);
    Stack.pop_back();
  }
}

} // namespace

std::vector<BlockID> nascent::reversePostOrder(const Function &F) {
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<BlockID> Post;
  postOrderVisit(F, F.entryBlock(), Seen, Post);
  std::reverse(Post.begin(), Post.end());
  return Post;
}

std::vector<bool> nascent::reachableBlocks(const Function &F) {
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<BlockID> Post;
  postOrderVisit(F, F.entryBlock(), Seen, Post);
  return Seen;
}

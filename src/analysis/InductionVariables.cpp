#include "analysis/InductionVariables.h"

using namespace nascent;

namespace {
constexpr unsigned MaxWalkDepth = 64;
} // namespace

const char *IVExpr::kindName() const {
  switch (K) {
  case Kind::Unknown:
    return "Unknown";
  case Kind::Invariant:
    return "Invariant";
  case Kind::Linear:
    return "Linear";
  case Kind::Polynomial:
    return "Polynomial";
  }
  return "?";
}

bool InductionAnalysis::definedOutside(SSAValueID V, const Loop *L) const {
  const SSADef &D = S.def(V);
  if (D.K == SSADef::Kind::Entry)
    return true;
  return !L->contains(D.Block);
}

IVExpr InductionAnalysis::normalize(IVExpr E) {
  // Drop zero coefficients and demote a coefficient-less Linear.
  for (auto It = E.Base.begin(); It != E.Base.end();) {
    if (It->second == 0)
      It = E.Base.erase(It);
    else
      ++It;
  }
  if (E.K == IVExpr::Kind::Linear && E.Coeff == 0)
    E.K = IVExpr::Kind::Invariant;
  return E;
}

IVExpr InductionAnalysis::add(const IVExpr &A, const IVExpr &B) {
  using Kind = IVExpr::Kind;
  if (A.K == Kind::Unknown || B.K == Kind::Unknown)
    return IVExpr::unknown();
  if (A.K == Kind::Polynomial || B.K == Kind::Polynomial) {
    IVExpr E;
    E.K = Kind::Polynomial;
    E.L = A.L ? A.L : B.L;
    return E;
  }
  IVExpr E;
  E.K = (A.K == Kind::Linear || B.K == Kind::Linear) ? Kind::Linear
                                                     : Kind::Invariant;
  E.L = A.L ? A.L : B.L;
  E.Coeff = A.Coeff + B.Coeff;
  E.Base = A.Base;
  for (const auto &[V, C] : B.Base)
    E.Base[V] += C;
  E.BaseConst = A.BaseConst + B.BaseConst;
  return normalize(E);
}

IVExpr InductionAnalysis::scale(const IVExpr &A, int64_t Factor) {
  using Kind = IVExpr::Kind;
  if (A.K == Kind::Unknown)
    return IVExpr::unknown();
  if (Factor == 0)
    return IVExpr::constant(0, A.L);
  if (A.K == Kind::Polynomial)
    return A;
  IVExpr E = A;
  E.Coeff *= Factor;
  E.BaseConst *= Factor;
  for (auto &[V, C] : E.Base)
    C *= Factor;
  return normalize(E);
}

std::optional<int64_t> InductionAnalysis::constantValue(SSAValueID V) {
  auto It = ConstMemo.find(V);
  if (It != ConstMemo.end())
    return It->second;
  ConstMemo[V] = std::nullopt; // cycle breaker

  const SSADef &D = S.def(V);
  std::optional<int64_t> Result;
  if (D.K == SSADef::Kind::Inst) {
    const Instruction &I =
        S.function().block(D.Block)->instructions()[D.InstIdx];
    auto OperandConst = [&](size_t OpIdx) -> std::optional<int64_t> {
      const Value &Op = I.Operands[OpIdx];
      if (Op.isIntConst() || Op.isBoolConst())
        return Op.intValue();
      if (!Op.isSym())
        return std::nullopt;
      SSAValueID UseV = S.useOfSymbol(D.Block, D.InstIdx, Op.symbol());
      if (UseV == InvalidSSAValue)
        return std::nullopt;
      return constantValue(UseV);
    };
    switch (I.Op) {
    case Opcode::Copy: {
      Result = OperandConst(0);
      break;
    }
    case Opcode::Add:
      if (auto A = OperandConst(0))
        if (auto B = OperandConst(1))
          Result = *A + *B;
      break;
    case Opcode::Sub:
      if (auto A = OperandConst(0))
        if (auto B = OperandConst(1))
          Result = *A - *B;
      break;
    case Opcode::Mul:
      if (auto A = OperandConst(0))
        if (auto B = OperandConst(1))
          Result = *A * *B;
      break;
    case Opcode::Neg:
      if (auto A = OperandConst(0))
        Result = -*A;
      break;
    default:
      break;
    }
  }
  ConstMemo[V] = Result;
  return Result;
}

IVExpr InductionAnalysis::classify(SSAValueID V, const Loop *L) {
  assert(L && "classification requires a loop");
  auto Key = std::make_pair(V, L);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  if (InProgress[Key])
    return IVExpr::unknown(); // cyclic dependence outside a basic-IV shape
  InProgress[Key] = true;
  IVExpr E = classifyImpl(V, L);
  InProgress[Key] = false;
  Memo[Key] = E;
  return E;
}

IVExpr InductionAnalysis::classifyUse(BlockID B, size_t InstIdx, SymbolID Sym,
                                      const Loop *L) {
  SSAValueID V = S.useOfSymbol(B, InstIdx, Sym);
  if (V == InvalidSSAValue)
    return IVExpr::unknown();
  return classify(V, L);
}

IVExpr InductionAnalysis::classifyOperand(const Value &Op, BlockID B,
                                          size_t InstIdx, const Loop *L) {
  if (Op.isIntConst() || Op.isBoolConst())
    return IVExpr::constant(Op.intValue(), L);
  if (!Op.isSym())
    return IVExpr::unknown();
  SSAValueID V = S.useOfSymbol(B, InstIdx, Op.symbol());
  if (V == InvalidSSAValue)
    return IVExpr::unknown();
  return classify(V, L);
}

IVExpr InductionAnalysis::classifyImpl(SSAValueID V, const Loop *L) {
  const SSADef &D = S.def(V);

  if (definedOutside(V, L)) {
    // Region constant. Fold to a literal when possible so that symbolic
    // steps like "m = 5; ... k = k + m" classify with constant steps, as
    // in the paper's Figure 2.
    if (auto C = constantValue(V))
      return IVExpr::constant(*C, L);
    IVExpr E;
    E.K = IVExpr::Kind::Invariant;
    E.L = L;
    E.Base[V] = 1;
    return E;
  }

  if (D.K == SSADef::Kind::Phi) {
    if (D.Block != L->Header) {
      // A join phi inside the loop, or an inner-loop header phi: the value
      // varies unpredictably relative to L.
      return IVExpr::unknown();
    }
    // Candidate basic induction variable: phi(init from outside,
    // next from inside) with next = phi + step, step invariant.
    const SSAPhi &P = S.phisIn(D.Block)[D.InstIdx];
    const auto &Preds = S.function().block(D.Block)->preds();
    SSAValueID Init = InvalidSSAValue;
    SSAValueID Next = InvalidSSAValue;
    for (size_t K = 0; K != Preds.size(); ++K) {
      if (L->contains(Preds[K])) {
        if (Next != InvalidSSAValue && Next != P.Incoming[K])
          return IVExpr::unknown(); // differing values from multiple latches
        Next = P.Incoming[K];
      } else {
        if (Init != InvalidSSAValue && Init != P.Incoming[K])
          return IVExpr::unknown();
        Init = P.Incoming[K];
      }
    }
    if (Init == InvalidSSAValue || Next == InvalidSSAValue)
      return IVExpr::unknown();

    AroundPhi A = affineAroundPhi(Next, V, L, 0);
    if (A.St == AroundPhi::Status::Polynomial) {
      // phi accumulates a linear value: polynomial in h (Figure 2's j).
      IVExpr E;
      E.K = IVExpr::Kind::Polynomial;
      E.L = L;
      return E;
    }
    if (A.St != AroundPhi::Status::Affine || A.CoeffPhi != 1)
      return IVExpr::unknown(); // geometric or irregular recurrence
    if (!A.Rest.isConstant())
      return IVExpr::unknown(); // symbolic step: sign unknown, unusable

    int64_t Step = A.Rest.BaseConst;
    if (Step == 0) {
      // Degenerate: phi = phi each iteration; value is simply Init.
      IVExpr InitE = classify(Init, L);
      return InitE;
    }
    // Value at iteration h (h = 0, 1, ...) is Init + Step*h.
    IVExpr InitE = classify(Init, L);
    if (!InitE.isInvariant())
      return IVExpr::unknown();
    IVExpr E = InitE;
    E.K = IVExpr::Kind::Linear;
    E.L = L;
    E.Coeff = Step;
    return normalize(E);
  }

  // Instruction-defined value inside the loop.
  const Instruction &I =
      S.function().block(D.Block)->instructions()[D.InstIdx];
  auto Cls = [&](size_t OpIdx) {
    return classifyOperand(I.Operands[OpIdx], D.Block, D.InstIdx, L);
  };
  switch (I.Op) {
  case Opcode::Copy:
    return Cls(0);
  case Opcode::Add:
    return add(Cls(0), Cls(1));
  case Opcode::Sub:
    return add(Cls(0), scale(Cls(1), -1));
  case Opcode::Neg:
    return scale(Cls(0), -1);
  case Opcode::Mul: {
    IVExpr A = Cls(0);
    IVExpr B = Cls(1);
    if (A.isConstant())
      return scale(B, A.BaseConst);
    if (B.isConstant())
      return scale(A, B.BaseConst);
    return IVExpr::unknown();
  }
  default:
    return IVExpr::unknown();
  }
}

InductionAnalysis::AroundPhi
InductionAnalysis::affineAroundPhi(SSAValueID V, SSAValueID PhiV,
                                   const Loop *L, unsigned Depth) {
  AroundPhi R;
  if (Depth > MaxWalkDepth)
    return R;
  if (V == PhiV) {
    R.St = AroundPhi::Status::Affine;
    R.CoeffPhi = 1;
    R.Rest = IVExpr::constant(0, L);
    return R;
  }
  if (definedOutside(V, L)) {
    R.St = AroundPhi::Status::Affine;
    R.CoeffPhi = 0;
    if (auto C = constantValue(V)) {
      R.Rest = IVExpr::constant(*C, L);
    } else {
      R.Rest = IVExpr();
      R.Rest.K = IVExpr::Kind::Invariant;
      R.Rest.L = L;
      R.Rest.Base[V] = 1;
    }
    return R;
  }

  const SSADef &D = S.def(V);
  if (D.K == SSADef::Kind::Phi) {
    // Another in-loop phi. If it classifies as linear, the candidate phi
    // accumulates a linear sequence: a polynomial (Figure 2's j = j + i).
    IVExpr C = classify(V, L);
    if (C.isInvariant()) {
      R.St = AroundPhi::Status::Affine;
      R.CoeffPhi = 0;
      R.Rest = C;
      return R;
    }
    if (C.isLinear() || C.K == IVExpr::Kind::Polynomial) {
      R.St = AroundPhi::Status::Polynomial;
      return R;
    }
    return R; // Unknown
  }

  const Instruction &I =
      S.function().block(D.Block)->instructions()[D.InstIdx];
  auto Walk = [&](size_t OpIdx) {
    return affineAroundPhiOperand(I.Operands[OpIdx], D.Block, D.InstIdx, PhiV,
                                  L, Depth + 1);
  };
  auto Combine = [&](const AroundPhi &A, const AroundPhi &B,
                     int64_t SignB) -> AroundPhi {
    AroundPhi Out;
    if (A.St == AroundPhi::Status::Polynomial ||
        B.St == AroundPhi::Status::Polynomial) {
      Out.St = AroundPhi::Status::Polynomial;
      return Out;
    }
    if (A.St != AroundPhi::Status::Affine ||
        B.St != AroundPhi::Status::Affine)
      return Out; // Unknown
    Out.St = AroundPhi::Status::Affine;
    Out.CoeffPhi = A.CoeffPhi + SignB * B.CoeffPhi;
    Out.Rest = add(A.Rest, scale(B.Rest, SignB));
    return Out;
  };

  switch (I.Op) {
  case Opcode::Copy:
    return Walk(0);
  case Opcode::Add:
    return Combine(Walk(0), Walk(1), 1);
  case Opcode::Sub:
    return Combine(Walk(0), Walk(1), -1);
  case Opcode::Neg: {
    AroundPhi A = Walk(0);
    if (A.St == AroundPhi::Status::Affine) {
      A.CoeffPhi = -A.CoeffPhi;
      A.Rest = scale(A.Rest, -1);
    }
    return A;
  }
  case Opcode::Mul: {
    AroundPhi A = Walk(0);
    AroundPhi B = Walk(1);
    if (A.St != AroundPhi::Status::Affine ||
        B.St != AroundPhi::Status::Affine)
      return R;
    // Only constant scaling keeps the recurrence affine in the phi.
    if (A.CoeffPhi == 0 && A.Rest.isConstant()) {
      B.CoeffPhi *= A.Rest.BaseConst;
      B.Rest = scale(B.Rest, A.Rest.BaseConst);
      return B;
    }
    if (B.CoeffPhi == 0 && B.Rest.isConstant()) {
      A.CoeffPhi *= B.Rest.BaseConst;
      A.Rest = scale(A.Rest, B.Rest.BaseConst);
      return A;
    }
    return R;
  }
  default: {
    // Any other defining instruction ends the affine walk; if the value is
    // loop-invariant by classification it still contributes to the step.
    IVExpr C = classify(V, L);
    if (C.isInvariant()) {
      R.St = AroundPhi::Status::Affine;
      R.CoeffPhi = 0;
      R.Rest = C;
      return R;
    }
    if (C.isLinear() || C.K == IVExpr::Kind::Polynomial)
      R.St = AroundPhi::Status::Polynomial;
    return R;
  }
  }
}

InductionAnalysis::AroundPhi InductionAnalysis::affineAroundPhiOperand(
    const Value &Op, BlockID B, size_t InstIdx, SSAValueID PhiV, const Loop *L,
    unsigned Depth) {
  AroundPhi R;
  if (Op.isIntConst() || Op.isBoolConst()) {
    R.St = AroundPhi::Status::Affine;
    R.CoeffPhi = 0;
    R.Rest = IVExpr::constant(Op.intValue(), L);
    return R;
  }
  if (!Op.isSym())
    return R;
  SSAValueID V = S.useOfSymbol(B, InstIdx, Op.symbol());
  if (V == InvalidSSAValue)
    return R;
  return affineAroundPhi(V, PhiV, L, Depth);
}

bool InductionAnalysis::isBasicIV(SSAValueID PhiValue, const Loop *L,
                                  int64_t &Step) {
  IVExpr E = classify(PhiValue, L);
  const SSADef &D = S.def(PhiValue);
  if (!E.isLinear() || D.K != SSADef::Kind::Phi || D.Block != L->Header)
    return false;
  Step = E.Coeff;
  return true;
}

#include "analysis/Dominators.h"

#include "analysis/CFGUtils.h"

#include <algorithm>

using namespace nascent;

DominatorTree::DominatorTree(const Function &F) {
  size_t N = F.numBlocks();
  IDom.assign(N, InvalidBlock);
  RPONumber.assign(N, -1);
  Children.assign(N, {});
  Frontier.assign(N, {});

  RPO = reversePostOrder(F);
  for (size_t I = 0; I != RPO.size(); ++I)
    RPONumber[RPO[I]] = static_cast<int>(I);

  BlockID Entry = F.entryBlock();
  IDom[Entry] = Entry;

  // Cooper-Harvey-Kennedy: iterate until the idom assignment stabilises.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockID B : RPO) {
      if (B == Entry)
        continue;
      BlockID NewIDom = InvalidBlock;
      for (BlockID P : F.block(B)->preds()) {
        if (RPONumber[P] < 0 || IDom[P] == InvalidBlock)
          continue; // unreachable or unprocessed predecessor
        NewIDom = (NewIDom == InvalidBlock) ? P : intersect(P, NewIDom);
      }
      if (NewIDom != InvalidBlock && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }

  // The entry's idom is conventionally itself during the fixpoint; expose
  // it as "none" and build the child lists.
  for (BlockID B : RPO) {
    if (B == Entry)
      continue;
    if (IDom[B] != InvalidBlock)
      Children[IDom[B]].push_back(B);
  }
  IDom[Entry] = InvalidBlock;

  computeFrontiers(F);
}

BlockID DominatorTree::intersect(BlockID A, BlockID B) const {
  while (A != B) {
    while (RPONumber[A] > RPONumber[B])
      A = IDom[A];
    while (RPONumber[B] > RPONumber[A])
      B = IDom[B];
  }
  return A;
}

bool DominatorTree::dominates(BlockID A, BlockID B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk up from B; dominator chains are short in structured CFGs.
  BlockID Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    BlockID Up = IDom[Cur];
    if (Up == InvalidBlock)
      return false;
    Cur = Up;
  }
}

void DominatorTree::computeFrontiers(const Function &F) {
  // Cytron et al. frontier computation via the "two or more preds" rule.
  for (BlockID B : RPO) {
    const std::vector<BlockID> &Preds = F.block(B)->preds();
    if (Preds.size() < 2)
      continue;
    for (BlockID P : Preds) {
      if (!isReachable(P))
        continue;
      BlockID Runner = P;
      while (Runner != InvalidBlock && Runner != IDom[B]) {
        auto &Fr = Frontier[Runner];
        if (std::find(Fr.begin(), Fr.end(), B) == Fr.end())
          Fr.push_back(B);
        Runner = IDom[Runner];
      }
    }
  }
}

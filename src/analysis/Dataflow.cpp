#include "analysis/Dataflow.h"

#include "analysis/CFGUtils.h"
#include "obs/StatRegistry.h"

#include <algorithm>
#include <cassert>

using namespace nascent;

NASCENT_STAT(NumSolves, "dataflow.solves", "data-flow problems solved");
NASCENT_STAT(NumBlockVisits, "dataflow.block_visits",
             "work-list block recomputations across all solves");
NASCENT_STAT_HISTOGRAM(VisitsPerSolve, "dataflow.visits_per_solve",
                       "block recomputations to reach the fixpoint, per solve");

DataflowResult nascent::solveDataflow(const Function &F,
                                      const DataflowProblem &P) {
  size_t NumBlocks = F.numBlocks();
  size_t N = P.UniverseSize;
  assert(P.Gen.size() == NumBlocks && P.Kill.size() == NumBlocks &&
         "problem sets not sized to the CFG");

  const bool Intersect = P.MeetOp == DataflowProblem::Meet::Intersect;
  const bool Forward = P.Dir == DataflowProblem::Direction::Forward;
  DenseBitVector Top(N, /*InitialValue=*/Intersect);
  DenseBitVector Bottom(N);

  DenseBitVector Boundary = P.Boundary;
  if (Boundary.size() != N)
    Boundary = DenseBitVector(N);

  // Every value (including unreachable blocks, which the work list never
  // holds) starts at top so the first meet is exact and an unreachable
  // predecessor is the meet's identity element rather than poisoning the
  // In set of a reachable successor. assign() makes exactly one copy per
  // block side.
  DataflowResult R;
  R.In.assign(NumBlocks, Top);
  R.Out.assign(NumBlocks, Top);

  // Visit reachable blocks in reverse post order along the problem
  // direction: with an acyclic CFG the first sweep is already the
  // fixpoint, and with loops only the blocks downstream of a change are
  // recomputed (the round-robin solver this replaces re-scanned the whole
  // CFG per pass).
  std::vector<BlockID> Order = reversePostOrder(F);
  if (!Forward)
    std::reverse(Order.begin(), Order.end());

  // Block -> position in Order; npos marks unreachable blocks, which stay
  // top and are never enqueued.
  constexpr size_t NoPos = static_cast<size_t>(-1);
  std::vector<size_t> PosOf(NumBlocks, NoPos);
  for (size_t I = 0, E = Order.size(); I != E; ++I)
    PosOf[Order[I]] = I;

  // The work list is a bit set over positions drained by a wraparound
  // cursor: blocks re-run in deterministic Order-relative order, and a
  // block enqueued many times before its turn is still recomputed once.
  DenseBitVector Pending(Order.size());
  Pending.setAll();
  size_t NumPending = Order.size();

  // One scratch pair reused for every recomputation; the copy assignments
  // below reuse its capacity, so the solve loop allocates nothing.
  DenseBitVector NewIn(N);
  DenseBitVector NewOut(N);

  uint64_t Visits = 0;
  size_t Cursor = 0;
  while (NumPending != 0) {
    size_t Pos = Pending.findNext(Cursor);
    if (Pos == DenseBitVector::npos) {
      Cursor = 0;
      continue;
    }
    Pending.reset(Pos);
    --NumPending;
    Cursor = Pos + 1;

    BlockID B = Order[Pos];
    const BasicBlock *BB = F.block(B);
    ++Visits;

    if (Forward) {
      // In[B] = meet over preds' Out (boundary at the entry block).
      if (B == F.entryBlock()) {
        NewIn = Boundary;
      } else {
        bool First = true;
        for (BlockID Pred : BB->preds()) {
          if (First) {
            NewIn = R.Out[Pred];
            First = false;
          } else if (Intersect) {
            NewIn &= R.Out[Pred];
          } else {
            NewIn |= R.Out[Pred];
          }
        }
        if (First)
          NewIn = Intersect ? Top : Bottom;
      }
      NewOut = NewIn;
      NewOut.andNot(P.Kill[B]);
      NewOut |= P.Gen[B];
      if (NewIn != R.In[B] || NewOut != R.Out[B]) {
        std::swap(R.In[B], NewIn);
        std::swap(R.Out[B], NewOut);
        for (BlockID S : BB->successors()) {
          size_t SP = PosOf[S];
          if (SP != NoPos && !Pending.test(SP)) {
            Pending.set(SP);
            ++NumPending;
          }
        }
      }
    } else {
      // Out[B] = meet over succs' In (boundary at exit blocks).
      std::vector<BlockID> Succs = BB->successors();
      if (Succs.empty()) {
        NewOut = Boundary;
      } else {
        bool First = true;
        for (BlockID S : Succs) {
          if (First) {
            NewOut = R.In[S];
            First = false;
          } else if (Intersect) {
            NewOut &= R.In[S];
          } else {
            NewOut |= R.In[S];
          }
        }
      }
      NewIn = NewOut;
      NewIn.andNot(P.Kill[B]);
      NewIn |= P.Gen[B];
      if (NewIn != R.In[B] || NewOut != R.Out[B]) {
        std::swap(R.In[B], NewIn);
        std::swap(R.Out[B], NewOut);
        for (BlockID Pred : BB->preds()) {
          size_t PP = PosOf[Pred];
          if (PP != NoPos && !Pending.test(PP)) {
            Pending.set(PP);
            ++NumPending;
          }
        }
      }
    }
  }

  ++NumSolves;
  NumBlockVisits += Visits;
  VisitsPerSolve.record(Visits);
  R.Visits = Visits;
  return R;
}

void nascent::creditDataflowSolve(uint64_t Visits) {
  ++NumSolves;
  NumBlockVisits += Visits;
  VisitsPerSolve.record(Visits);
}

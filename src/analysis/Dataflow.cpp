#include "analysis/Dataflow.h"

#include "analysis/CFGUtils.h"
#include "obs/StatRegistry.h"

#include <algorithm>
#include <cassert>

using namespace nascent;

NASCENT_STAT(NumSolves, "dataflow.solves", "data-flow problems solved");
NASCENT_STAT(NumIterations, "dataflow.iterations",
             "total round-robin passes over the CFG");
NASCENT_STAT_HISTOGRAM(IterationsPerSolve, "dataflow.iterations_per_solve",
                       "passes to reach the fixpoint, per solve");

DataflowResult nascent::solveDataflow(const Function &F,
                                      const DataflowProblem &P) {
  size_t NumBlocks = F.numBlocks();
  size_t N = P.UniverseSize;
  assert(P.Gen.size() == NumBlocks && P.Kill.size() == NumBlocks &&
         "problem sets not sized to the CFG");

  DataflowResult R;
  R.In.assign(NumBlocks, DenseBitVector(N));
  R.Out.assign(NumBlocks, DenseBitVector(N));

  DenseBitVector Boundary = P.Boundary;
  if (Boundary.size() != N)
    Boundary = DenseBitVector(N);

  const bool Intersect = P.MeetOp == DataflowProblem::Meet::Intersect;
  DenseBitVector Top(N, /*InitialValue=*/Intersect);

  std::vector<BlockID> Order = reversePostOrder(F);
  if (P.Dir == DataflowProblem::Direction::Backward)
    std::reverse(Order.begin(), Order.end());

  // Initialise every value (including unreachable blocks, which the
  // iteration order never visits) to top so the first meet is exact and an
  // unreachable predecessor is the meet's identity element rather than
  // poisoning the In set of a reachable successor.
  for (size_t B = 0; B != NumBlocks; ++B) {
    R.In[B] = Top;
    R.Out[B] = Top;
  }

  uint64_t Passes = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (BlockID B : Order) {
      const BasicBlock *BB = F.block(B);
      if (P.Dir == DataflowProblem::Direction::Forward) {
        // In[B] = meet over preds' Out (boundary at the entry block).
        DenseBitVector NewIn(N);
        if (B == F.entryBlock()) {
          NewIn = Boundary;
        } else {
          bool First = true;
          for (BlockID Pred : BB->preds()) {
            if (First) {
              NewIn = R.Out[Pred];
              First = false;
            } else if (Intersect) {
              NewIn &= R.Out[Pred];
            } else {
              NewIn |= R.Out[Pred];
            }
          }
          if (First)
            NewIn = Intersect ? Top : DenseBitVector(N);
        }
        DenseBitVector NewOut = NewIn;
        NewOut.andNot(P.Kill[B]);
        NewOut |= P.Gen[B];
        if (NewIn != R.In[B] || NewOut != R.Out[B]) {
          R.In[B] = std::move(NewIn);
          R.Out[B] = std::move(NewOut);
          Changed = true;
        }
      } else {
        // Out[B] = meet over succs' In (boundary at exit blocks).
        std::vector<BlockID> Succs = BB->successors();
        DenseBitVector NewOut(N);
        if (Succs.empty()) {
          NewOut = Boundary;
        } else {
          bool First = true;
          for (BlockID S : Succs) {
            if (First) {
              NewOut = R.In[S];
              First = false;
            } else if (Intersect) {
              NewOut &= R.In[S];
            } else {
              NewOut |= R.In[S];
            }
          }
        }
        DenseBitVector NewIn = NewOut;
        NewIn.andNot(P.Kill[B]);
        NewIn |= P.Gen[B];
        if (NewIn != R.In[B] || NewOut != R.Out[B]) {
          R.In[B] = std::move(NewIn);
          R.Out[B] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }
  ++NumSolves;
  NumIterations += Passes;
  IterationsPerSolve.record(Passes);
  return R;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// SSA-based induction-variable analysis in the style the paper inherits
/// from Gerlek, Stoltz, and Wolfe: every value is classified relative to a
/// loop as invariant, linear (c*h + base, with h the basic loop variable
/// 0,1,2,...), polynomial (e.g. sums of linear sequences), or unknown.
/// The INX check synthesis uses the linear/invariant classifications to
/// re-express range checks over induction expressions.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_INDUCTIONVARIABLES_H
#define NASCENT_ANALYSIS_INDUCTIONVARIABLES_H

#include "analysis/LoopInfo.h"
#include "analysis/SSA.h"

#include <cstdint>
#include <map>
#include <optional>

namespace nascent {

/// Classification of one SSA value relative to a loop.
struct IVExpr {
  enum class Kind {
    Unknown,
    Invariant,  ///< constant within the loop:   Base + BaseConst
    Linear,     ///< Coeff * h + Base + BaseConst, Coeff a nonzero constant
    Polynomial, ///< e.g. running sums of linear values (h*(h+1)/2 shapes)
  };

  Kind K = Kind::Unknown;
  const Loop *L = nullptr; ///< loop of classification (null for Unknown)
  int64_t Coeff = 0;       ///< coefficient of the basic loop variable h

  /// Affine symbolic part: region-constant SSA values (defined outside L)
  /// with integer coefficients, plus a constant.
  std::map<SSAValueID, int64_t> Base;
  int64_t BaseConst = 0;

  bool isInvariant() const { return K == Kind::Invariant; }
  bool isLinear() const { return K == Kind::Linear; }

  /// True when the value is a compile-time constant.
  bool isConstant() const { return K == Kind::Invariant && Base.empty(); }

  static IVExpr unknown() { return IVExpr(); }
  static IVExpr constant(int64_t C, const Loop *L) {
    IVExpr E;
    E.K = Kind::Invariant;
    E.L = L;
    E.BaseConst = C;
    return E;
  }

  /// Printable classification name matching the paper's Figure 2 table.
  const char *kindName() const;
};

/// Memoized induction-variable classifier over one SSA overlay.
class InductionAnalysis {
public:
  InductionAnalysis(const SSA &S, const LoopInfo &LI,
                    const DominatorTree &DT)
      : S(S), LI(LI), DT(DT) {}

  /// Classifies SSA value \p V relative to loop \p L (which must be
  /// non-null). Results are memoized.
  IVExpr classify(SSAValueID V, const Loop *L);

  /// Classifies the use of symbol \p Sym by the instruction at
  /// (B, InstIdx) relative to loop \p L.
  IVExpr classifyUse(BlockID B, size_t InstIdx, SymbolID Sym, const Loop *L);

  /// Transitive compile-time constant value of \p V, when resolvable
  /// through copies and arithmetic on constants.
  std::optional<int64_t> constantValue(SSAValueID V);

  /// True when phi \p PhiValue (a header phi of \p L) is a basic induction
  /// variable with a constant step; fills \p Step when so.
  bool isBasicIV(SSAValueID PhiValue, const Loop *L, int64_t &Step);

private:
  /// Result of expressing a value as  CoeffPhi * phi + Rest  while walking
  /// the strongly connected region around a candidate basic IV phi.
  struct AroundPhi {
    enum class Status { Affine, Polynomial, Unknown };
    Status St = Status::Unknown;
    int64_t CoeffPhi = 0;
    IVExpr Rest; ///< Invariant-kinded accumulation
  };

  AroundPhi affineAroundPhi(SSAValueID V, SSAValueID PhiV, const Loop *L,
                            unsigned Depth);
  AroundPhi affineAroundPhiOperand(const Value &Op, BlockID B, size_t InstIdx,
                                   SSAValueID PhiV, const Loop *L,
                                   unsigned Depth);

  IVExpr classifyImpl(SSAValueID V, const Loop *L);
  IVExpr classifyOperand(const Value &Op, BlockID B, size_t InstIdx,
                         const Loop *L);

  /// True when the definition of \p V lies outside loop \p L.
  bool definedOutside(SSAValueID V, const Loop *L) const;

  static IVExpr add(const IVExpr &A, const IVExpr &B);
  static IVExpr scale(const IVExpr &A, int64_t Factor);
  static IVExpr normalize(IVExpr E);

  const SSA &S;
  const LoopInfo &LI;
  const DominatorTree &DT;

  std::map<std::pair<SSAValueID, const Loop *>, IVExpr> Memo;
  std::map<std::pair<SSAValueID, const Loop *>, bool> InProgress;
  std::map<SSAValueID, std::optional<int64_t>> ConstMemo;
};

} // namespace nascent

#endif // NASCENT_ANALYSIS_INDUCTIONVARIABLES_H

//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative bit-vector data-flow solver. The range-check
/// optimizer instantiates it four ways: availability (forward/intersect),
/// anticipatability (backward/intersect), and the LCM "later/isolated"
/// systems. Blocks transfer via Out = Gen | (In & ~Kill).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_ANALYSIS_DATAFLOW_H
#define NASCENT_ANALYSIS_DATAFLOW_H

#include "ir/Function.h"
#include "support/DenseBitVector.h"

#include <vector>

namespace nascent {

/// Description of one bit-vector data-flow problem over a function's CFG.
struct DataflowProblem {
  enum class Direction { Forward, Backward };
  enum class Meet { Intersect, Union };

  Direction Dir = Direction::Forward;
  Meet MeetOp = Meet::Intersect;
  size_t UniverseSize = 0;

  /// Per-block Gen and Kill sets, indexed by BlockID, each sized to
  /// UniverseSize.
  std::vector<DenseBitVector> Gen;
  std::vector<DenseBitVector> Kill;

  /// Value at the CFG boundary: the entry's In for forward problems, the
  /// Out of exit blocks (Ret/Trap) for backward problems. Defaults to the
  /// empty set when left unsized.
  DenseBitVector Boundary;
};

/// Solution: In = set at block entry, Out = set at block exit, regardless
/// of direction.
struct DataflowResult {
  std::vector<DenseBitVector> In;
  std::vector<DenseBitVector> Out;
  /// Block recomputations the solve performed to reach the fixpoint;
  /// pass it to creditDataflowSolve when replaying a memoised solve.
  uint64_t Visits = 0;
};

/// Solves \p P to its maximal (Intersect) or minimal (Union) fixpoint.
/// Predecessor lists of \p F must be current.
DataflowResult solveDataflow(const Function &F, const DataflowProblem &P);

/// Records the solver's telemetry (solve count, block visits, the
/// visits-per-solve histogram) for a solve that was answered from a memo
/// instead of re-run, so cached and organic runs emit identical stats.
void creditDataflowSolve(uint64_t Visits);

} // namespace nascent

#endif // NASCENT_ANALYSIS_DATAFLOW_H

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace nascent;

bool Loop::contains(BlockID B) const {
  return std::find(Blocks.begin(), Blocks.end(), B) != Blocks.end();
}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  BlockLoop.assign(F.numBlocks(), nullptr);

  // Collect back edges (P -> H where H dominates P), grouped by header.
  std::map<BlockID, std::vector<BlockID>> LatchesByHeader;
  for (BlockID B : DT.rpo()) {
    for (BlockID S : F.block(B)->successors())
      if (DT.dominates(S, B))
        LatchesByHeader[S].push_back(B);
  }

  // Discover headers in reverse RPO so inner loops (later headers in RPO)
  // are created before their enclosing loops would claim their blocks; the
  // forest construction below orders by member counts, so creation order
  // only needs determinism.
  for (auto &[Header, Latches] : LatchesByHeader)
    discoverLoop(F, DT, Header, Latches);

  buildForest();
  findPreheaders(F);
  attachDoLoopMetadata(F);
}

void LoopInfo::discoverLoop(const Function &F, const DominatorTree &DT,
                            BlockID Header,
                            const std::vector<BlockID> &Latches) {
  auto L = std::make_unique<Loop>();
  L->Header = Header;
  L->Latches = Latches;
  // Standard natural-loop membership: backward walk from each latch until
  // the header.
  std::vector<bool> InLoop(F.numBlocks(), false);
  InLoop[Header] = true;
  L->Blocks.push_back(Header);
  std::vector<BlockID> Work;
  for (BlockID Latch : Latches)
    if (!InLoop[Latch]) {
      InLoop[Latch] = true;
      L->Blocks.push_back(Latch);
      Work.push_back(Latch);
    }
  while (!Work.empty()) {
    BlockID B = Work.back();
    Work.pop_back();
    for (BlockID P : F.block(B)->preds()) {
      if (!DT.isReachable(P) || InLoop[P])
        continue;
      InLoop[P] = true;
      L->Blocks.push_back(P);
      Work.push_back(P);
    }
  }
  Loops.push_back(std::move(L));
}

void LoopInfo::buildForest() {
  // Sort by member count ascending: a loop nested in another has strictly
  // fewer blocks, so processing small-to-large assigns the innermost loop
  // to each block first, and each loop's parent is the next loop claiming
  // its header.
  std::vector<Loop *> BySize;
  BySize.reserve(Loops.size());
  for (auto &L : Loops)
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](const Loop *A, const Loop *B) {
    if (A->Blocks.size() != B->Blocks.size())
      return A->Blocks.size() < B->Blocks.size();
    return A->Header < B->Header;
  });

  for (Loop *L : BySize) {
    for (BlockID B : L->Blocks) {
      if (BlockLoop[B] == nullptr) {
        BlockLoop[B] = L;
        continue;
      }
      // Innermost loop of B is already set; establish parenting for the
      // outermost ancestor without a parent yet.
      Loop *Inner = BlockLoop[B];
      while (Inner->Parent != nullptr && Inner->Parent != L)
        Inner = Inner->Parent;
      if (Inner != L && Inner->Parent == nullptr) {
        Inner->Parent = L;
        L->SubLoops.push_back(Inner);
      }
    }
  }

  for (Loop *L : BySize) {
    if (L->Parent == nullptr)
      TopLevel.push_back(L);
  }
  // Depths: walk down from the top level.
  std::vector<Loop *> Work = TopLevel;
  while (!Work.empty()) {
    Loop *L = Work.back();
    Work.pop_back();
    L->Depth = L->Parent ? L->Parent->Depth + 1 : 1;
    for (Loop *S : L->SubLoops)
      Work.push_back(S);
  }
  // Innermost-first order = the size-ascending order computed above.
  InnerFirst = BySize;
}

void LoopInfo::findPreheaders(const Function &F) {
  for (auto &L : Loops) {
    BlockID Candidate = InvalidBlock;
    bool Multiple = false;
    for (BlockID P : F.block(L->Header)->preds()) {
      if (L->contains(P))
        continue;
      if (Candidate != InvalidBlock)
        Multiple = true;
      Candidate = P;
    }
    if (Multiple || Candidate == InvalidBlock)
      continue;
    // A preheader must fall through solely to the header so an inserted
    // check executes iff the loop is entered.
    if (F.block(Candidate)->successors() ==
        std::vector<BlockID>{L->Header})
      L->Preheader = Candidate;
  }
}

void LoopInfo::attachDoLoopMetadata(const Function &F) {
  for (size_t I = 0; I != F.doLoops().size(); ++I) {
    BlockID Header = F.doLoops()[I].Header;
    for (auto &L : Loops)
      if (L->Header == Header)
        L->DoLoopIndex = static_cast<int>(I);
  }
}

#include "checks/CheckUniverse.h"

#include "obs/StatRegistry.h"

#include <algorithm>

using namespace nascent;

NASCENT_STAT(NumInterned, "checks.universe.interned",
             "distinct checks interned into universes");

void CheckUniverse::creditInterned(uint64_t N) { NumInterned += N; }

CheckID CheckUniverse::intern(const CheckExpr &C) {
  auto It = Interned.find(C);
  if (It != Interned.end())
    return It->second;

  CheckID ID = static_cast<CheckID>(Checks.size());
  Checks.push_back(C);
  Interned.emplace(C, ID);
  ++Generation;
  ++NumInterned;

  FamilyID F;
  if (FamilyPerCheck) {
    F = static_cast<FamilyID>(Families.size());
    Families.push_back({C.expr(), {}});
  } else {
    auto FIt = FamilyByExpr.find(C.expr());
    if (FIt == FamilyByExpr.end()) {
      F = static_cast<FamilyID>(Families.size());
      Families.push_back({C.expr(), {}});
      FamilyByExpr.emplace(C.expr(), F);
    } else {
      F = FIt->second;
    }
  }
  CheckFamily.push_back(F);

  // Keep family members ordered by ascending bound (strongest first).
  auto &Members = Families[F].Members;
  auto Pos = std::lower_bound(Members.begin(), Members.end(), ID,
                              [&](CheckID A, CheckID B) {
                                return Checks[A].bound() < Checks[B].bound();
                              });
  Members.insert(Pos, ID);

  for (const auto &[Sym, Coeff] : C.expr().terms()) {
    (void)Coeff;
    BySymbol[Sym].push_back(ID);
  }
  return ID;
}

CheckID CheckUniverse::find(const CheckExpr &C) const {
  auto It = Interned.find(C);
  return It == Interned.end() ? InvalidCheck : It->second;
}

const std::vector<CheckID> &
CheckUniverse::checksUsingSymbol(SymbolID Sym) const {
  static const std::vector<CheckID> Empty;
  auto It = BySymbol.find(Sym);
  return It == BySymbol.end() ? Empty : It->second;
}

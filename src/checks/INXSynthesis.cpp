#include "checks/INXSynthesis.h"

#include "analysis/Dominators.h"
#include "analysis/InductionVariables.h"
#include "analysis/LoopInfo.h"
#include "analysis/SSA.h"
#include "obs/StatRegistry.h"

#include <map>
#include <set>

using namespace nascent;

NASCENT_STAT(NumInxSeen, "checks.inx.seen",
             "checks examined by INX synthesis");
NASCENT_STAT(NumInxLinear, "checks.inx.rewritten_linear",
             "checks rewritten to linear induction form");
NASCENT_STAT(NumInxInvariant, "checks.inx.rewritten_invariant",
             "checks rewritten over loop-entry snapshots");
NASCENT_STAT(NumInxSnapshots, "checks.inx.snapshots",
             "loop-entry snapshot copies inserted");
NASCENT_STAT(NumInxBasicVars, "checks.inx.basic_vars",
             "basic loop variables materialised");

namespace {

/// Planned replacement of a check payload.
struct CheckRewrite {
  BlockID Block;
  size_t InstIdx;
  CheckExpr NewCheck;
};

/// Planned snapshot copy t = src at the end of a loop preheader.
struct Snapshot {
  BlockID Preheader;
  SymbolID Temp;
  SymbolID Source;
};

} // namespace

INXStats nascent::synthesizeINXChecks(Function &F,
                                      obs::ProvenanceRecorder *Prov) {
  INXStats Stats;
  F.recomputePreds();

  // Materialise basic loop variables before building SSA so their phis
  // participate in the induction analysis.
  for (DoLoopInfo &L : F.doLoops()) {
    if (L.BasicVar != InvalidSymbol)
      continue;
    SymbolID H = F.symbols().createTemp(ScalarType::Int, "h");
    L.BasicVar = H;
    Instruction Init;
    Init.Op = Opcode::Copy;
    Init.Dest = H;
    Init.Operands = {Value::intConst(0)};
    F.block(L.Preheader)->insertBeforeTerminator(std::move(Init));
    Instruction Step;
    Step.Op = Opcode::Add;
    Step.Dest = H;
    Step.Operands = {Value::sym(H), Value::intConst(1)};
    F.block(L.Latch)->insertAt(0, std::move(Step));
    ++Stats.BasicVarsMaterialized;
  }

  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  SSA S(F, DT);
  InductionAnalysis IV(S, LI, DT);

  // Per-loop sets of symbols defined inside the loop, to decide whether a
  // region-constant SSA value can be named by its symbol directly or needs
  // a loop-entry snapshot.
  std::map<const Loop *, std::set<SymbolID>> DefinedIn;
  for (const Loop *L : LI.loopsInnermostFirst()) {
    auto &Defs = DefinedIn[L];
    for (BlockID B : L->Blocks)
      for (const Instruction &I : F.block(B)->instructions())
        if (I.Dest != InvalidSymbol)
          Defs.insert(I.Dest);
  }

  std::vector<CheckRewrite> Rewrites;
  std::vector<Snapshot> Snapshots;
  std::map<std::pair<const Loop *, SSAValueID>, SymbolID> SnapshotTemps;

  auto ResolveBaseValue = [&](SSAValueID V, const Loop *L,
                              SymbolID &OutSym) -> bool {
    const SSADef &D = S.def(V);
    if (D.Sym == InvalidSymbol)
      return false;
    if (!DefinedIn[L].count(D.Sym)) {
      // The symbol is never written inside the loop: its value anywhere in
      // the loop equals the region-constant value; use it directly.
      OutSym = D.Sym;
      return true;
    }
    if (L->Preheader == InvalidBlock)
      return false;
    auto Key = std::make_pair(L, V);
    auto It = SnapshotTemps.find(Key);
    if (It != SnapshotTemps.end()) {
      OutSym = It->second;
      return true;
    }
    SymbolID T = F.symbols().createTemp(ScalarType::Int, "snap");
    SnapshotTemps.emplace(Key, T);
    Snapshots.push_back({L->Preheader, T, D.Sym});
    OutSym = T;
    return true;
  };

  for (BlockID B = 0; B != F.numBlocks(); ++B) {
    if (!DT.isReachable(B))
      continue;
    const Loop *L = LI.loopFor(B);
    if (!L)
      continue;
    auto &Insts = F.block(B)->instructions();
    for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
      const Instruction &I = Insts[Idx];
      if (I.Op != Opcode::Check)
        continue;
      ++Stats.ChecksSeen;

      // Combine the induction expressions of every term.
      IVExpr Total = IVExpr::constant(0, L);
      bool Failed = false;
      for (const auto &[Sym, Coeff] : I.Check.expr().terms()) {
        IVExpr Part = IV.classifyUse(B, Idx, Sym, L);
        if (Part.K != IVExpr::Kind::Invariant &&
            Part.K != IVExpr::Kind::Linear) {
          Failed = true;
          break;
        }
        // Scale and accumulate.
        IVExpr Scaled = Part;
        Scaled.Coeff *= Coeff;
        Scaled.BaseConst *= Coeff;
        for (auto &[BV, BC] : Scaled.Base)
          BC *= Coeff;
        if (Scaled.Coeff != 0)
          Scaled.K = IVExpr::Kind::Linear;
        IVExpr NewTotal;
        NewTotal.K = (Total.K == IVExpr::Kind::Linear ||
                      Scaled.K == IVExpr::Kind::Linear)
                         ? IVExpr::Kind::Linear
                         : IVExpr::Kind::Invariant;
        NewTotal.L = L;
        NewTotal.Coeff = Total.Coeff + Scaled.Coeff;
        NewTotal.Base = Total.Base;
        for (const auto &[BV, BC] : Scaled.Base)
          NewTotal.Base[BV] += BC;
        NewTotal.BaseConst = Total.BaseConst + Scaled.BaseConst;
        if (NewTotal.Coeff == 0)
          NewTotal.K = IVExpr::Kind::Invariant;
        Total = NewTotal;
      }
      if (Failed)
        continue;

      // Build the induction-expression form of the check.
      LinearExpr NewExpr;
      if (Total.Coeff != 0) {
        const Loop *LL = L;
        if (LL->DoLoopIndex < 0)
          continue; // linear in a while loop: no basic variable
        SymbolID H = F.doLoops()[static_cast<size_t>(LL->DoLoopIndex)]
                         .BasicVar;
        NewExpr.addTerm(H, Total.Coeff);
      }
      bool BaseOK = true;
      for (const auto &[BV, BC] : Total.Base) {
        if (BC == 0)
          continue;
        SymbolID Sym = InvalidSymbol;
        if (!ResolveBaseValue(BV, L, Sym)) {
          BaseOK = false;
          break;
        }
        NewExpr.addTerm(Sym, BC);
      }
      if (!BaseOK)
        continue;
      NewExpr.addConstant(Total.BaseConst);

      CheckExpr NewCheck(NewExpr, I.Check.bound());
      if (NewCheck == I.Check)
        continue;
      Rewrites.push_back({B, Idx, NewCheck});
      if (Total.Coeff != 0)
        ++Stats.RewrittenLinear;
      else
        ++Stats.RewrittenInvariant;
    }
  }

  // Apply payload rewrites first (no instruction indices shift), then the
  // snapshot copies (which only touch preheaders).
  for (const CheckRewrite &R : Rewrites) {
    Instruction &I = F.block(R.Block)->instructions()[R.InstIdx];
    std::string OldStr;
    if (Prov && Prov->enabled())
      OldStr = I.Check.str(F.symbols());
    I.Check = R.NewCheck;
    if (Prov && Prov->enabled()) {
      obs::LifecycleEvent E = obs::makeLifecycleEvent(
          obs::LifecycleKind::Strengthened, "INXSynthesis", F,
          *F.block(R.Block), I,
          "range expression rewritten into induction-expression (INX) "
          "form over the loop's basic variable and entry snapshots");
      E.Edge = std::move(OldStr);
      Prov->record(std::move(E));
    }
  }
  for (const Snapshot &SN : Snapshots) {
    Instruction Copy;
    Copy.Op = Opcode::Copy;
    Copy.Dest = SN.Temp;
    Copy.Operands = {Value::sym(SN.Source)};
    F.block(SN.Preheader)->insertBeforeTerminator(std::move(Copy));
    ++Stats.SnapshotsInserted;
  }
  NumInxSeen += Stats.ChecksSeen;
  NumInxLinear += Stats.RewrittenLinear;
  NumInxInvariant += Stats.RewrittenInvariant;
  NumInxSnapshots += Stats.SnapshotsInserted;
  NumInxBasicVars += Stats.BasicVarsMaterialized;
  return Stats;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// The Check Implication Graph (paper section 3.1), with families as
/// nodes. An edge (FI -> FJ, w) means: for any constant k,
/// Check(expr(FI) <= k) implies Check(expr(FJ) <= k + w). Edge weights
/// come from discovered implications; parallel edges keep the minimum
/// weight; the "as strong as" relation is a shortest-path query with
/// accumulated weights, combined with the within-family bound order.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H
#define NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H

#include "checks/CheckUniverse.h"
#include "support/DenseBitVector.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace nascent {

/// Which implications between checks the optimizer may exploit. These are
/// the paper's three optimizer options (section 3.4) used by the Table 3
/// ablation.
enum class ImplicationMode {
  None,            ///< a check implies only itself (NI', SE')
  CrossFamilyOnly, ///< only CIG edges between different families (LLS')
  All,             ///< within-family order and cross-family edges
};

/// Weighted implication graph over the families of a CheckUniverse.
class CheckImplicationGraph {
public:
  CheckImplicationGraph(const CheckUniverse &U,
                        ImplicationMode Mode = ImplicationMode::All)
      : U(U), Mode(Mode) {}

  ImplicationMode mode() const { return Mode; }

  /// Records a discovered implication  Ci => Cj. The edge weight is
  /// bound(Cj) - bound(Ci); a smaller parallel edge weight wins.
  void addImplication(CheckID Ci, CheckID Cj);

  /// Adds a raw weighted edge between families.
  void addFamilyEdge(FamilyID From, FamilyID To, int64_t Weight);

  /// True when performing \p Ci makes performing \p Cj unnecessary,
  /// honouring the implication mode.
  bool isAsStrongAs(CheckID Ci, CheckID Cj) const;

  /// Minimal accumulated weight of a path From -> To; nullopt when
  /// unconnected. The trivial path has weight 0.
  std::optional<int64_t> pathWeight(FamilyID From, FamilyID To) const;

  /// Sets in \p Out (sized to the universe) every check that \p C is as
  /// strong as, including \p C itself. This is the availability gen set of
  /// a check statement.
  void weakerClosure(CheckID C, DenseBitVector &Out) const;

  /// Same-family variant: \p C plus all weaker checks in its family. This
  /// is the anticipatability gen set (the paper's stronger condition that
  /// keeps insertion points sound).
  void weakerClosureSameFamily(CheckID C, DenseBitVector &Out) const;

  /// Visits every family reachable from \p From (excluding \p From) as
  /// Fn(To, Weight) with its minimal accumulated path weight, targets
  /// ascending. This is the backing for batch closure construction
  /// (opt/CheckContext), which shares one reachability scan across all of
  /// a family's members.
  template <typename CallableT>
  void forEachReachable(FamilyID From, CallableT Fn) const {
    const std::vector<int64_t> &Dist = shortestFrom(From);
    size_t E = std::min(Dist.size(), U.numFamilies());
    for (size_t To = 0; To != E; ++To)
      if (To != From && Dist[To] != Unreachable)
        Fn(static_cast<FamilyID>(To), Dist[To]);
  }

  size_t numEdges() const { return EdgeCount; }

  /// Visits every stored edge as Fn(From, To, Weight), sources ascending
  /// and targets ascending within a source. The consistency lint uses
  /// this to validate the graph's global shape (no negative asymmetry)
  /// without widening the mutation API.
  template <typename CallableT> void forEachEdge(CallableT Fn) const {
    for (size_t From = 0, E = Edges.size(); From != E; ++From)
      for (const Edge &Ed : Edges[From])
        Fn(static_cast<FamilyID>(From), Ed.To, Ed.W);
  }

private:
  /// One adjacency entry; the per-source vectors stay sorted by To.
  struct Edge {
    FamilyID To;
    int64_t W;
  };

  /// Sentinel distance for "no path".
  static constexpr int64_t Unreachable =
      std::numeric_limits<int64_t>::max();

  /// A cached single-source shortest-path row. Dist is indexed by target
  /// family and sized to the family count at computation time; targets
  /// past the end are unreachable (new families have no in-edges until an
  /// addFamilyEdge invalidates the rows it can improve), so family growth
  /// alone never stales a row.
  struct DistRow {
    bool Valid = false;
    std::vector<int64_t> Dist;
  };

  /// Shortest path weights from \p From via label-correcting search
  /// (weights can be negative; implication graphs are small and cycles
  /// with negative total weight cannot arise from sound implications —
  /// guarded anyway).
  const std::vector<int64_t> &shortestFrom(FamilyID From) const;

  /// Row lookup helper honouring the short-Dist convention.
  static int64_t distOf(const DistRow &Row, FamilyID To) {
    return To < Row.Dist.size() ? Row.Dist[To] : Unreachable;
  }

  const CheckUniverse &U;
  ImplicationMode Mode;
  /// Adjacency indexed by source family (dense; slots past the last
  /// source with out-edges simply do not exist yet).
  std::vector<std::vector<Edge>> Edges;
  size_t EdgeCount = 0;
  /// One past the largest family id any edge references; the distance
  /// rows' node space must cover it even before those families intern.
  size_t MaxNode = 0;

  /// Cached rows indexed by source family.
  mutable std::vector<DistRow> Rows;
};

} // namespace nascent

#endif // NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The Check Implication Graph (paper section 3.1), with families as
/// nodes. An edge (FI -> FJ, w) means: for any constant k,
/// Check(expr(FI) <= k) implies Check(expr(FJ) <= k + w). Edge weights
/// come from discovered implications; parallel edges keep the minimum
/// weight; the "as strong as" relation is a shortest-path query with
/// accumulated weights, combined with the within-family bound order.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H
#define NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H

#include "checks/CheckUniverse.h"
#include "support/DenseBitVector.h"

#include <cstdint>
#include <map>
#include <vector>

namespace nascent {

/// Which implications between checks the optimizer may exploit. These are
/// the paper's three optimizer options (section 3.4) used by the Table 3
/// ablation.
enum class ImplicationMode {
  None,            ///< a check implies only itself (NI', SE')
  CrossFamilyOnly, ///< only CIG edges between different families (LLS')
  All,             ///< within-family order and cross-family edges
};

/// Weighted implication graph over the families of a CheckUniverse.
class CheckImplicationGraph {
public:
  CheckImplicationGraph(const CheckUniverse &U,
                        ImplicationMode Mode = ImplicationMode::All)
      : U(U), Mode(Mode) {}

  ImplicationMode mode() const { return Mode; }

  /// Records a discovered implication  Ci => Cj. The edge weight is
  /// bound(Cj) - bound(Ci); a smaller parallel edge weight wins.
  void addImplication(CheckID Ci, CheckID Cj);

  /// Adds a raw weighted edge between families.
  void addFamilyEdge(FamilyID From, FamilyID To, int64_t Weight);

  /// True when performing \p Ci makes performing \p Cj unnecessary,
  /// honouring the implication mode.
  bool isAsStrongAs(CheckID Ci, CheckID Cj) const;

  /// Minimal accumulated weight of a path From -> To; nullopt when
  /// unconnected. The trivial path has weight 0.
  std::optional<int64_t> pathWeight(FamilyID From, FamilyID To) const;

  /// Sets in \p Out (sized to the universe) every check that \p C is as
  /// strong as, including \p C itself. This is the availability gen set of
  /// a check statement.
  void weakerClosure(CheckID C, DenseBitVector &Out) const;

  /// Same-family variant: \p C plus all weaker checks in its family. This
  /// is the anticipatability gen set (the paper's stronger condition that
  /// keeps insertion points sound).
  void weakerClosureSameFamily(CheckID C, DenseBitVector &Out) const;

  size_t numEdges() const;

  /// Visits every stored edge as Fn(From, To, Weight). The consistency
  /// lint uses this to validate the graph's global shape (no negative
  /// asymmetry) without widening the mutation API.
  template <typename CallableT> void forEachEdge(CallableT Fn) const {
    for (const auto &[From, Targets] : Edges)
      for (const auto &[To, W] : Targets)
        Fn(From, To, W);
  }

private:
  /// Shortest path weights from \p From via Bellman-Ford (weights can be
  /// negative; implication graphs are small and cycles with negative total
  /// weight cannot arise from sound implications — guarded anyway).
  const std::map<FamilyID, int64_t> &shortestFrom(FamilyID From) const;

  const CheckUniverse &U;
  ImplicationMode Mode;
  /// Adjacency: per source family, target -> min weight.
  std::map<FamilyID, std::map<FamilyID, int64_t>> Edges;

  mutable std::map<FamilyID, std::map<FamilyID, int64_t>> PathMemo;
  mutable uint64_t MemoGeneration = 0;
};

} // namespace nascent

#endif // NASCENT_CHECKS_CHECKIMPLICATIONGRAPH_H

//===----------------------------------------------------------------------===//
///
/// \file
/// INX check synthesis (paper section 2.3): rewrites the range-expression
/// of each check into the induction-expression form computed by the
/// SSA-based induction-variable analysis. Each counted loop gets a
/// materialised basic loop variable h (0, 1, 2, ...); a check classified
/// linear becomes  c*h + base <= k', and a check classified invariant
/// becomes an expression over loop-entry snapshots of its inputs.
///
/// PRX checks that do not classify (polynomial or unknown subscripts,
/// e.g. indirect indexing) are left unchanged, exactly as the paper's
/// optimizer falls back to program-expression checks.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CHECKS_INXSYNTHESIS_H
#define NASCENT_CHECKS_INXSYNTHESIS_H

#include "ir/Function.h"
#include "obs/Provenance.h"

namespace nascent {

/// Statistics of one synthesis run.
struct INXStats {
  unsigned ChecksSeen = 0;
  unsigned RewrittenLinear = 0;
  unsigned RewrittenInvariant = 0;
  unsigned SnapshotsInserted = 0;
  unsigned BasicVarsMaterialized = 0;
};

/// Rewrites the checks of \p F in place. Requires the function to be in
/// the post-lowering shape (do-loop metadata intact, preds recomputable).
/// Rewritten checks keep their lifecycle tags; one Strengthened event per
/// payload rewrite (edge = the pre-rewrite PRX form) goes to \p Prov.
INXStats synthesizeINXChecks(Function &F,
                             obs::ProvenanceRecorder *Prov = nullptr);

} // namespace nascent

#endif // NASCENT_CHECKS_INXSYNTHESIS_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The check universe: the set of distinct canonical checks the optimizer
/// reasons about for one function, partitioned into *families* (paper
/// section 3.1). Checks with the same range-expression share a family;
/// within a family checks are ordered by range-constant, and a smaller
/// constant is stronger. Data-flow bit vectors are indexed by CheckID.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CHECKS_CHECKUNIVERSE_H
#define NASCENT_CHECKS_CHECKUNIVERSE_H

#include "ir/CheckExpr.h"
#include "ir/Function.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace nascent {

using CheckID = uint32_t;
using FamilyID = uint32_t;
constexpr CheckID InvalidCheck = ~CheckID(0);
constexpr FamilyID InvalidFamily = ~FamilyID(0);

/// Interning table for canonical checks.
///
/// In FamilyPerCheck mode (the paper's "no implications" ablation) every
/// check gets its own family, which both disables within-family strength
/// ordering and inflates the implication graph exactly as the paper
/// describes for the NI'/SE' experiments.
class CheckUniverse {
public:
  explicit CheckUniverse(bool FamilyPerCheck = false)
      : FamilyPerCheck(FamilyPerCheck) {}

  /// Returns the id of \p C, interning it if new.
  CheckID intern(const CheckExpr &C);

  /// Adds \p N to the "checks.universe.interned" counter without interning
  /// anything. The artifact cache replays the intern count of a universe
  /// build it satisfied from a stored seed (every universe entry of a
  /// fact-free build was interned exactly once), keeping the counter
  /// identical whether the build ran or was reused (docs/caching.md).
  static void creditInterned(uint64_t N);

  /// Returns the id of \p C or InvalidCheck when not interned.
  CheckID find(const CheckExpr &C) const;

  const CheckExpr &check(CheckID ID) const { return Checks[ID]; }

  size_t size() const { return Checks.size(); }

  FamilyID familyOf(CheckID ID) const { return CheckFamily[ID]; }

  size_t numFamilies() const { return Families.size(); }

  /// Members of a family in ascending bound order (strongest first).
  const std::vector<CheckID> &familyMembers(FamilyID F) const {
    return Families[F].Members;
  }

  /// The shared range-expression of a family.
  const LinearExpr &familyExpr(FamilyID F) const { return Families[F].Expr; }

  /// Checks whose range-expression references \p Sym (for kill sets).
  /// Returns an empty list for symbols never mentioned.
  const std::vector<CheckID> &checksUsingSymbol(SymbolID Sym) const;

  /// Monotonically increasing generation number, bumped on every new
  /// check; clients use it to invalidate closure caches.
  uint64_t generation() const { return Generation; }

  bool familyPerCheckMode() const { return FamilyPerCheck; }

private:
  struct FamilyData {
    LinearExpr Expr;
    std::vector<CheckID> Members; ///< ascending bound order
  };

  bool FamilyPerCheck;
  std::vector<CheckExpr> Checks;
  std::vector<FamilyID> CheckFamily;
  std::vector<FamilyData> Families;
  std::unordered_map<CheckExpr, CheckID, CheckExprHash> Interned;
  std::unordered_map<LinearExpr, FamilyID, LinearExprHash> FamilyByExpr;
  std::unordered_map<SymbolID, std::vector<CheckID>> BySymbol;
  uint64_t Generation = 0;
};

} // namespace nascent

#endif // NASCENT_CHECKS_CHECKUNIVERSE_H

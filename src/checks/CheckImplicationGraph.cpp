#include "checks/CheckImplicationGraph.h"

#include <algorithm>
#include <deque>

using namespace nascent;

void CheckImplicationGraph::addImplication(CheckID Ci, CheckID Cj) {
  FamilyID FI = U.familyOf(Ci);
  FamilyID FJ = U.familyOf(Cj);
  int64_t W = U.check(Cj).bound() - U.check(Ci).bound();
  addFamilyEdge(FI, FJ, W);
}

void CheckImplicationGraph::addFamilyEdge(FamilyID From, FamilyID To,
                                          int64_t Weight) {
  if (From == To)
    return; // within-family strength is the bound order, not an edge
  if (Edges.size() <= From)
    Edges.resize(From + 1);
  std::vector<Edge> &Out = Edges[From];
  auto It = std::lower_bound(
      Out.begin(), Out.end(), To,
      [](const Edge &E, FamilyID Target) { return E.To < Target; });
  if (It != Out.end() && It->To == To) {
    if (Weight >= It->W)
      return; // no edge got cheaper; every cached row stays exact
    It->W = Weight;
  } else {
    Out.insert(It, Edge{To, Weight});
    ++EdgeCount;
  }
  MaxNode = std::max({MaxNode, size_t(From) + 1, size_t(To) + 1});

  // Invalidate only the cached rows this edge can actually improve: a row
  // rooted at S is affected iff S reaches From and relaxing From->To would
  // shorten S's distance to To. Everything else keeps its memo (the
  // previous implementation cleared the whole memo per insert).
  for (DistRow &Row : Rows) {
    if (!Row.Valid)
      continue;
    int64_t DF = distOf(Row, From);
    if (DF == Unreachable)
      continue;
    int64_t DT = distOf(Row, To);
    if (DT == Unreachable || DF + Weight < DT)
      Row.Valid = false;
  }
}

const std::vector<int64_t> &
CheckImplicationGraph::shortestFrom(FamilyID From) const {
  if (Rows.size() <= From)
    Rows.resize(From + 1);
  DistRow &Row = Rows[From];
  if (Row.Valid)
    return Row.Dist;

  // Dijkstra does not handle negative weights; implication edges can be
  // negative (a check can imply a *stronger-constant* check in another
  // family). Use label-correcting search with a visit cap as a safeguard
  // against (unsound, never constructed) negative cycles. The node space
  // covers every family the universe knows plus any id an edge mentions
  // (edges may pre-date the families they connect).
  size_t NumNodes =
      std::max({U.numFamilies(), MaxNode, size_t(From) + 1});
  Row.Dist.assign(NumNodes, Unreachable);
  Row.Dist[From] = 0;
  std::deque<FamilyID> Work;
  Work.push_back(From);
  DenseBitVector InQueue(NumNodes);
  InQueue.set(From);
  size_t Steps = 0;
  const size_t MaxSteps = (NumNodes + 1) * (EdgeCount + 1) + 16;
  while (!Work.empty() && Steps++ < MaxSteps) {
    FamilyID F = Work.front();
    Work.pop_front();
    InQueue.reset(F);
    if (F >= Edges.size())
      continue;
    int64_t DF = Row.Dist[F];
    for (const Edge &E : Edges[F]) {
      if (DF + E.W < Row.Dist[E.To]) {
        Row.Dist[E.To] = DF + E.W;
        if (!InQueue.test(E.To)) {
          InQueue.set(E.To);
          Work.push_back(E.To);
        }
      }
    }
  }
  Row.Valid = true;
  return Row.Dist;
}

std::optional<int64_t> CheckImplicationGraph::pathWeight(FamilyID From,
                                                         FamilyID To) const {
  if (From == To)
    return 0;
  const std::vector<int64_t> &Dist = shortestFrom(From);
  if (To >= Dist.size() || Dist[To] == Unreachable)
    return std::nullopt;
  return Dist[To];
}

bool CheckImplicationGraph::isAsStrongAs(CheckID Ci, CheckID Cj) const {
  if (Ci == Cj)
    return true;
  if (Mode == ImplicationMode::None)
    return false;

  FamilyID FI = U.familyOf(Ci);
  FamilyID FJ = U.familyOf(Cj);
  if (FI == FJ) {
    if (Mode == ImplicationMode::CrossFamilyOnly)
      return false;
    return U.check(Ci).bound() <= U.check(Cj).bound();
  }
  auto W = pathWeight(FI, FJ);
  if (!W)
    return false;
  return U.check(Ci).bound() + *W <= U.check(Cj).bound();
}

void CheckImplicationGraph::weakerClosure(CheckID C,
                                          DenseBitVector &Out) const {
  assert(Out.size() == U.size() && "closure vector not sized to universe");
  Out.set(C);
  if (Mode == ImplicationMode::None)
    return;

  FamilyID FI = U.familyOf(C);
  int64_t BoundC = U.check(C).bound();

  if (Mode != ImplicationMode::CrossFamilyOnly) {
    // Same family: everything with a bound at least ours.
    for (CheckID M : U.familyMembers(FI))
      if (U.check(M).bound() >= BoundC)
        Out.set(M);
  }

  // Cross family: members reachable with accumulated weight. Dist may
  // cover edge-referenced ids beyond the interned families; those have no
  // members yet, so the scan stops at the universe's family count.
  const std::vector<int64_t> &Dist = shortestFrom(FI);
  for (size_t FJ = 0, E = std::min(Dist.size(), U.numFamilies());
       FJ != E; ++FJ) {
    int64_t W = Dist[FJ];
    if (W == Unreachable || FJ == FI)
      continue;
    for (CheckID M : U.familyMembers(static_cast<FamilyID>(FJ)))
      if (BoundC + W <= U.check(M).bound())
        Out.set(M);
  }
}

void CheckImplicationGraph::weakerClosureSameFamily(
    CheckID C, DenseBitVector &Out) const {
  assert(Out.size() == U.size() && "closure vector not sized to universe");
  Out.set(C);
  if (Mode == ImplicationMode::None ||
      Mode == ImplicationMode::CrossFamilyOnly)
    return;
  FamilyID FI = U.familyOf(C);
  int64_t BoundC = U.check(C).bound();
  for (CheckID M : U.familyMembers(FI))
    if (U.check(M).bound() >= BoundC)
      Out.set(M);
}

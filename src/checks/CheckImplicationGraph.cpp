#include "checks/CheckImplicationGraph.h"

#include <algorithm>
#include <queue>

using namespace nascent;

void CheckImplicationGraph::addImplication(CheckID Ci, CheckID Cj) {
  FamilyID FI = U.familyOf(Ci);
  FamilyID FJ = U.familyOf(Cj);
  int64_t W = U.check(Cj).bound() - U.check(Ci).bound();
  addFamilyEdge(FI, FJ, W);
}

void CheckImplicationGraph::addFamilyEdge(FamilyID From, FamilyID To,
                                          int64_t Weight) {
  if (From == To)
    return; // within-family strength is the bound order, not an edge
  auto &Out = Edges[From];
  auto It = Out.find(To);
  if (It == Out.end())
    Out.emplace(To, Weight);
  else
    It->second = std::min(It->second, Weight);
  PathMemo.clear();
}

const std::map<FamilyID, int64_t> &
CheckImplicationGraph::shortestFrom(FamilyID From) const {
  if (MemoGeneration != U.generation()) {
    // New checks may have created new families; distances over families
    // do not change, but clear anyway to stay simple and correct.
    PathMemo.clear();
    MemoGeneration = U.generation();
  }
  auto It = PathMemo.find(From);
  if (It != PathMemo.end())
    return It->second;

  // Dijkstra does not handle negative weights; implication edges can be
  // negative (a check can imply a *stronger-constant* check in another
  // family). Use label-correcting search with a visit cap as a safeguard
  // against (unsound, never constructed) negative cycles.
  std::map<FamilyID, int64_t> Dist;
  Dist[From] = 0;
  std::queue<FamilyID> Work;
  Work.push(From);
  size_t Steps = 0;
  const size_t MaxSteps = (U.numFamilies() + 1) * (numEdges() + 1) + 16;
  while (!Work.empty() && Steps++ < MaxSteps) {
    FamilyID F = Work.front();
    Work.pop();
    auto EIt = Edges.find(F);
    if (EIt == Edges.end())
      continue;
    int64_t DF = Dist[F];
    for (const auto &[To, W] : EIt->second) {
      auto DIt = Dist.find(To);
      if (DIt == Dist.end() || DF + W < DIt->second) {
        Dist[To] = DF + W;
        Work.push(To);
      }
    }
  }
  return PathMemo.emplace(From, std::move(Dist)).first->second;
}

std::optional<int64_t> CheckImplicationGraph::pathWeight(FamilyID From,
                                                         FamilyID To) const {
  if (From == To)
    return 0;
  const auto &Dist = shortestFrom(From);
  auto It = Dist.find(To);
  if (It == Dist.end())
    return std::nullopt;
  return It->second;
}

bool CheckImplicationGraph::isAsStrongAs(CheckID Ci, CheckID Cj) const {
  if (Ci == Cj)
    return true;
  if (Mode == ImplicationMode::None)
    return false;

  FamilyID FI = U.familyOf(Ci);
  FamilyID FJ = U.familyOf(Cj);
  if (FI == FJ) {
    if (Mode == ImplicationMode::CrossFamilyOnly)
      return false;
    return U.check(Ci).bound() <= U.check(Cj).bound();
  }
  auto W = pathWeight(FI, FJ);
  if (!W)
    return false;
  return U.check(Ci).bound() + *W <= U.check(Cj).bound();
}

void CheckImplicationGraph::weakerClosure(CheckID C,
                                          DenseBitVector &Out) const {
  assert(Out.size() == U.size() && "closure vector not sized to universe");
  Out.set(C);
  if (Mode == ImplicationMode::None)
    return;

  FamilyID FI = U.familyOf(C);
  int64_t BoundC = U.check(C).bound();

  if (Mode != ImplicationMode::CrossFamilyOnly) {
    // Same family: everything with a bound at least ours.
    for (CheckID M : U.familyMembers(FI))
      if (U.check(M).bound() >= BoundC)
        Out.set(M);
  }

  // Cross family: members reachable with accumulated weight.
  const auto &Dist = shortestFrom(FI);
  for (const auto &[FJ, W] : Dist) {
    if (FJ == FI)
      continue;
    for (CheckID M : U.familyMembers(FJ))
      if (BoundC + W <= U.check(M).bound())
        Out.set(M);
  }
}

void CheckImplicationGraph::weakerClosureSameFamily(
    CheckID C, DenseBitVector &Out) const {
  assert(Out.size() == U.size() && "closure vector not sized to universe");
  Out.set(C);
  if (Mode == ImplicationMode::None ||
      Mode == ImplicationMode::CrossFamilyOnly)
    return;
  FamilyID FI = U.familyOf(C);
  int64_t BoundC = U.check(C).bound();
  for (CheckID M : U.familyMembers(FI))
    if (U.check(M).bound() >= BoundC)
      Out.set(M);
}

size_t CheckImplicationGraph::numEdges() const {
  size_t N = 0;
  for (const auto &[From, Out] : Edges) {
    (void)From;
    N += Out.size();
  }
  return N;
}

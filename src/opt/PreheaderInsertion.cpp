#include "opt/PreheaderInsertion.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "obs/StatRegistry.h"

#include <optional>
#include <unordered_map>

using namespace nascent;

NASCENT_STAT(NumCondInserted, "opt.preheader.cond_inserted",
             "conditional checks hoisted into loop preheaders");
NASCENT_STAT(NumRehoisted, "opt.preheader.rehoisted",
             "conditional checks re-hoisted to an outer preheader");
NASCENT_STAT(NumSubstituted, "opt.preheader.substituted",
             "hoisted checks using loop-limit substitution");

namespace {

/// One conditional check planned for a preheader.
struct PlannedCheck {
  std::vector<CheckExpr> Guards;
  CheckExpr Check;
  CheckOrigin Origin;
};

/// Returns the set of symbols defined (as instruction destinations) inside
/// the loop, as a bit set over the function's symbol space — the
/// invariance tests below probe it once per expression term.
DenseBitVector definedSymbols(const Function &F, const Loop &L) {
  DenseBitVector Out(F.symbols().size());
  for (BlockID B : L.Blocks)
    for (const Instruction &I : F.block(B)->instructions())
      if (I.Dest != InvalidSymbol)
        Out.set(I.Dest);
  return Out;
}

bool exprInvariant(const LinearExpr &E, const DenseBitVector &Defined) {
  for (const auto &[Sym, Coeff] : E.terms()) {
    (void)Coeff;
    if (Defined.test(Sym))
      return false;
  }
  return true;
}

/// True when every started iteration of \p L runs to the latch unless it
/// traps: no Ret terminators and no while-loop (unbounded) sub-loop inside.
/// Required before loop-limit substitution may speak for the extreme
/// iteration.
bool everyIterationCompletes(const Function &F, const LoopInfo &LI,
                             const Loop &L) {
  for (BlockID B : L.Blocks) {
    const Instruction &T = F.block(B)->terminator();
    if (T.Op == Opcode::Ret)
      return false;
  }
  for (const Loop *Sub : LI.loopsInnermostFirst()) {
    if (Sub == &L || !L.contains(Sub->Header))
      continue;
    if (Sub->DoLoopIndex < 0)
      return false; // nested while loop: may not terminate
  }
  return true;
}

/// True when no path from \p From reaches \p Avoid... specifically: DFS
/// from \p From that never enters \p Avoid; returns true when it reaches
/// \p Target or a Ret-terminated block.
bool reachesWithout(const Function &F, BlockID From, BlockID Avoid,
                    BlockID Target) {
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<BlockID> Work{From};
  Seen[From] = true;
  if (From == Avoid)
    return false;
  while (!Work.empty()) {
    BlockID B = Work.back();
    Work.pop_back();
    if (B == Target)
      return true;
    const Instruction &T = F.block(B)->terminator();
    if (T.Op == Opcode::Ret)
      return true; // early function exit counts as "escaped"
    for (BlockID S : F.block(B)->successors()) {
      if (S == Avoid || Seen[S])
        continue;
      Seen[S] = true;
      Work.push_back(S);
    }
  }
  return false;
}

/// Substitutes the extreme value of \p Var into \p Expr (which contains
/// Var with coefficient \p Coeff): the maximum value when Coeff > 0, else
/// the minimum.
LinearExpr substituteExtreme(const LinearExpr &Expr, SymbolID Var,
                             int64_t Coeff, const LinearExpr &MinVal,
                             const LinearExpr &MaxVal) {
  LinearExpr Out = Expr;
  Out.substitute(Var, Coeff > 0 ? MaxVal : MinVal);
  return Out;
}

} // namespace

PreheaderStats
nascent::runPreheaderInsertion(Function &F, const CheckContext &Ctx,
                               const PreheaderOptions &Opts,
                               std::vector<PreheaderFact> &FactsOut,
                               obs::RemarkCollector *Remarks,
                               obs::ProvenanceRecorder *Prov,
                               const LoopInfo *CachedLoops) {
  PreheaderStats Stats;
  const CheckUniverse &U = Ctx.universe();
  if (U.size() == 0)
    return Stats;

  F.recomputePreds();
  std::optional<DominatorTree> OwnDT;
  std::optional<LoopInfo> OwnLI;
  if (!CachedLoops) {
    OwnDT.emplace(F);
    OwnLI.emplace(F, *OwnDT);
    CachedLoops = &*OwnLI;
  }
  const LoopInfo &LI = *CachedLoops;
  DataflowResult Antic = Ctx.solveAnticipatability();

  // Checks that occur as plain Check instructions inside each loop; a
  // candidate is only worth hoisting when it covers at least one of them.
  // Indexed parallel to loopsInnermostFirst().
  const std::vector<Loop *> &Loops = LI.loopsInnermostFirst();
  std::vector<DenseBitVector> OccursIn;
  OccursIn.reserve(Loops.size());
  for (const Loop *L : Loops) {
    DenseBitVector Bits(U.size());
    for (BlockID B : L->Blocks)
      for (size_t Idx = 0; Idx != F.block(B)->size(); ++Idx) {
        CheckID C = Ctx.idOf(B, Idx);
        if (C != InvalidCheck)
          Bits.set(C);
      }
    OccursIn.push_back(std::move(Bits));
  }

  for (size_t LIdx = 0; LIdx != Loops.size(); ++LIdx) {
    const Loop *L = Loops[LIdx];
    if (L->DoLoopIndex < 0)
      continue; // while loops: no affine entry guard (paper section 3.3)
    const DoLoopInfo &DL = F.doLoops()[static_cast<size_t>(L->DoLoopIndex)];
    DenseBitVector Defined = definedSymbols(F, *L);

    CheckExpr Guard = DL.entryGuard();
    if (Guard.isCompileTimeConstant() && !Guard.evaluatesToTrue())
      continue; // the loop never executes

    bool CanSubstitute =
        Opts.EnableLLS && (DL.Step == 1 || DL.Step == -1) &&
        everyIterationCompletes(F, LI, *L);
    LinearExpr IdxMin = DL.Step > 0 ? DL.LowerBound : DL.UpperBound;
    LinearExpr IdxMax = DL.Step > 0 ? DL.UpperBound : DL.LowerBound;
    LinearExpr HMin = LinearExpr::constant(0);
    LinearExpr HMax; // valid only when CanSubstitute
    if (DL.Step == 1 || DL.Step == -1)
      HMax = DL.lastIterationIndexOffset();

    // Markstein restriction (extension; see PreheaderOptions): checks are
    // candidates only when they occur in an articulation block of the
    // body -- a block without which the body entry can reach neither the
    // latch nor an early exit -- and have a single +-1-coefficient term.
    DenseBitVector MarksteinOK(U.size());
    if (Opts.MarksteinRestriction) {
      for (BlockID B : L->Blocks) {
        if (B == DL.Preheader)
          continue;
        bool Articulation =
            B == DL.BodyEntry ||
            !reachesWithout(F, DL.BodyEntry, B, DL.Latch);
        if (!Articulation)
          continue;
        for (size_t Idx = 0; Idx != F.block(B)->size(); ++Idx) {
          CheckID C = Ctx.idOf(B, Idx);
          if (C == InvalidCheck)
            continue;
          const auto &Terms = U.check(C).expr().terms();
          bool Simple = Terms.size() == 1 &&
                        (Terms[0].second == 1 || Terms[0].second == -1);
          if (Simple)
            MarksteinOK.set(C);
        }
      }
    }

    // --- first-level candidates from anticipatability -------------------
    // Group candidates by the family of the check that will actually be
    // inserted; the strongest member of each group covers the rest.
    struct Group {
      CheckExpr Inserted; ///< strongest substituted/invariant check so far
      bool Substituted = false;
      CheckOrigin Origin;
      std::vector<CheckExpr> Facts; ///< original checks covered
    };
    std::unordered_map<LinearExpr, Group, LinearExprHash> Groups;

    const DenseBitVector &AntIn = Antic.In[DL.BodyEntry];
    const DenseBitVector &Occurs = OccursIn[LIdx];
    AntIn.forEachSetBit([&](size_t Bit) {
      CheckID C = static_cast<CheckID>(Bit);
      if (Opts.MarksteinRestriction && !MarksteinOK.test(C))
        return;
      // Profitability: hoisting must cover a check inside the loop.
      DenseBitVector Covered = Ctx.weakerClosure(C);
      Covered &= Occurs;
      if (Covered.none())
        return;

      const CheckExpr &CE = U.check(C);
      CheckExpr Inserted;
      bool DidSubstitute = false;
      if (exprInvariant(CE.expr(), Defined)) {
        Inserted = CE;
      } else if (CanSubstitute) {
        // Linear in the index or the basic loop variable, rest invariant.
        int64_t CoeffI = CE.expr().coeff(DL.IndexVar);
        int64_t CoeffH = DL.BasicVar != InvalidSymbol
                             ? CE.expr().coeff(DL.BasicVar)
                             : 0;
        SymbolID Var = InvalidSymbol;
        int64_t Coeff = 0;
        const LinearExpr *MinV = nullptr, *MaxV = nullptr;
        if (CoeffI != 0 && CoeffH == 0) {
          Var = DL.IndexVar;
          Coeff = CoeffI;
          MinV = &IdxMin;
          MaxV = &IdxMax;
        } else if (CoeffH != 0 && CoeffI == 0) {
          Var = DL.BasicVar;
          Coeff = CoeffH;
          MinV = &HMin;
          MaxV = &HMax;
        } else {
          return; // neither, or both: not substitutable
        }
        LinearExpr Rest = CE.expr();
        Rest.removeTerm(Var);
        if (!exprInvariant(Rest, Defined))
          return;
        // The bound expressions themselves must not use symbols defined in
        // the loop body other than being evaluated at the preheader; they
        // are snapshots by construction (see Lowering), so any symbol is
        // acceptable for the *inserted* check, but for re-hoisting later
        // the invariance test will consult the actual symbols.
        LinearExpr SubstExpr =
            substituteExtreme(CE.expr(), Var, Coeff, *MinV, *MaxV);
        Inserted = CheckExpr(SubstExpr, CE.bound());
        DidSubstitute = true;
      } else {
        return;
      }

      auto &G = Groups[Inserted.expr()];
      if (G.Facts.empty() || Inserted.bound() < G.Inserted.bound()) {
        G.Inserted = Inserted;
        G.Origin = Ctx.representativeOrigin(C);
        G.Substituted = DidSubstitute;
      }
      G.Facts.push_back(CE);
    });

    // --- materialise this loop's insertions ------------------------------
    BasicBlock *PH = F.block(DL.Preheader);
    auto FindPresent = [&](const PlannedCheck &P) -> const Instruction * {
      for (const Instruction &I : PH->instructions()) {
        if (I.Op != Opcode::CondCheck || I.Check != P.Check)
          continue;
        // An existing copy whose guards are a subset of the new guards
        // fires at least as often: the new copy is redundant.
        bool Subset = true;
        for (const CheckExpr &G : I.Guards) {
          bool Found = false;
          for (const CheckExpr &NG : P.Guards)
            if (G == NG)
              Found = true;
          if (!Found) {
            Subset = false;
            break;
          }
        }
        if (Subset)
          return &I;
      }
      return nullptr;
    };

    for (auto &[FamExpr, G] : Groups) {
      (void)FamExpr;
      PlannedCheck P;
      P.Guards = {Guard};
      P.Check = G.Inserted;
      P.Origin = G.Origin;
      CheckTag SourceTag = NoCheckTag;
      if (const Instruction *Existing = FindPresent(P)) {
        SourceTag = Existing->Tag;
      } else {
        Instruction I;
        I.Op = Opcode::CondCheck;
        I.Guards = P.Guards;
        I.Check = P.Check;
        I.Origin = P.Origin;
        I.Tag = F.allocateCheckTag();
        SourceTag = I.Tag;
        std::string Why =
            G.Substituted
                ? "linear check hoisted via loop-limit substitution, "
                  "guarded by loop entry"
                : "loop-invariant check hoisted to the preheader, "
                  "guarded by loop entry";
        if (Remarks && Remarks->enabled())
          Remarks->emit(obs::makeCheckRemark(
              obs::RemarkKind::CondInserted, "PreheaderInsertion", F, *PH,
              P.Check, P.Origin, Why));
        if (Prov && Prov->enabled())
          Prov->record(obs::makeLifecycleEvent(
              obs::LifecycleKind::Inserted, "PreheaderInsertion", F, *PH, I,
              std::move(Why)));
        PH->insertBeforeTerminator(std::move(I));
        ++Stats.CondChecksInserted;
        ++NumCondInserted;
        if (G.Substituted) {
          ++Stats.Substituted;
          ++NumSubstituted;
        }
      }
      for (const CheckExpr &Fact : G.Facts)
        FactsOut.push_back({DL.BodyEntry, Fact, SourceTag});
    }

    // --- re-hoist conditional checks parked in inner preheaders ---------
    // A conditional check in block P inside L moves to L's preheader when
    //  (a) P is executed on every completed iteration of L: the latch is
    //      unreachable from the body entry without passing P, and no early
    //      function exit escapes P;
    //  (b) its guards are invariant in L; and
    //  (c) its check is invariant in L, or (LLS) linear in L's index /
    //      basic variable with invariant rest and substitution is safe.
    for (BlockID B : L->Blocks) {
      if (B == DL.Preheader)
        continue;
      BasicBlock *BB = F.block(B);
      for (size_t Idx = 0; Idx < BB->size();) {
        Instruction &I = BB->instructions()[Idx];
        if (I.Op != Opcode::CondCheck) {
          ++Idx;
          continue;
        }
        // (a) execution guarantee.
        if (reachesWithout(F, DL.BodyEntry, B, DL.Latch)) {
          ++Idx;
          continue;
        }
        // (b) guard invariance.
        bool GuardsInv = true;
        for (const CheckExpr &G : I.Guards)
          if (!exprInvariant(G.expr(), Defined)) {
            GuardsInv = false;
            break;
          }
        if (!GuardsInv) {
          ++Idx;
          continue;
        }
        // (c) check invariance or substitutability.
        CheckExpr Moved = I.Check;
        bool DidSubstitute = false;
        if (!exprInvariant(Moved.expr(), Defined)) {
          if (!CanSubstitute) {
            ++Idx;
            continue;
          }
          int64_t CoeffI = Moved.expr().coeff(DL.IndexVar);
          int64_t CoeffH = DL.BasicVar != InvalidSymbol
                               ? Moved.expr().coeff(DL.BasicVar)
                               : 0;
          SymbolID Var = InvalidSymbol;
          int64_t Coeff = 0;
          const LinearExpr *MinV = nullptr, *MaxV = nullptr;
          if (CoeffI != 0 && CoeffH == 0) {
            Var = DL.IndexVar;
            Coeff = CoeffI;
            MinV = &IdxMin;
            MaxV = &IdxMax;
          } else if (CoeffH != 0 && CoeffI == 0) {
            Var = DL.BasicVar;
            Coeff = CoeffH;
            MinV = &HMin;
            MaxV = &HMax;
          } else {
            ++Idx;
            continue;
          }
          LinearExpr Rest = Moved.expr();
          Rest.removeTerm(Var);
          if (!exprInvariant(Rest, Defined)) {
            ++Idx;
            continue;
          }
          Moved = CheckExpr(
              substituteExtreme(Moved.expr(), Var, Coeff, *MinV, *MaxV),
              Moved.bound());
          DidSubstitute = true;
        }

        PlannedCheck P;
        P.Guards = I.Guards;
        P.Guards.insert(P.Guards.begin(), Guard);
        P.Check = Moved;
        P.Origin = I.Origin;
        CheckTag MovedTag = I.Tag;
        std::string OldStr;
        if (Prov && Prov->enabled())
          OldStr = I.Check.str(F.symbols());

        // Remove from the inner preheader and add to ours.
        BB->instructions().erase(BB->instructions().begin() +
                                 static_cast<ptrdiff_t>(Idx));
        const Instruction *MergedInto = FindPresent(P);
        if (!MergedInto) {
          Instruction NI;
          NI.Op = Opcode::CondCheck;
          NI.Guards = P.Guards;
          NI.Check = P.Check;
          NI.Origin = P.Origin;
          NI.Tag = MovedTag;
          PH->insertBeforeTerminator(std::move(NI));
        }
        ++Stats.Rehoisted;
        ++NumRehoisted;
        if (DidSubstitute) {
          ++Stats.Substituted;
          ++NumSubstituted;
        }
        std::string Why =
            DidSubstitute
                ? "conditional check re-hoisted from an inner preheader "
                  "with loop-limit re-substitution"
                : "conditional check re-hoisted from an inner preheader "
                  "(guards and check invariant in the outer loop)";
        if (Remarks && Remarks->enabled())
          Remarks->emit(obs::makeCheckRemark(
              obs::RemarkKind::Rehoisted, "PreheaderInsertion", F, *PH,
              P.Check, P.Origin, Why));
        if (Prov && Prov->enabled()) {
          Instruction Shim;
          Shim.Op = Opcode::CondCheck;
          Shim.Check = P.Check;
          Shim.Origin = P.Origin;
          Shim.Tag = MovedTag;
          obs::LifecycleEvent E = obs::makeLifecycleEvent(
              obs::LifecycleKind::Moved, "PreheaderInsertion", F, *PH, Shim,
              std::move(Why));
          E.Edge = OldStr;
          Prov->record(std::move(E));
          if (MergedInto) {
            obs::LifecycleEvent S = obs::makeLifecycleEvent(
                obs::LifecycleKind::SubsumedBy, "PreheaderInsertion", F,
                *PH, Shim,
                "merged into an identical conditional check already in the "
                "target preheader");
            S.OtherTag = MergedInto->Tag;
            Prov->record(std::move(S));
          }
        }
        // Note: facts recorded when the check was first inserted remain
        // valid -- the moved check still executes before the inner loop's
        // body on every path, with at-least-as-often guards.
      }
    }
  }
  return Stats;
}

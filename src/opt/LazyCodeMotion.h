//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy-code-motion placement of range checks (paper section 3.3): the
/// safe-earliest and latest-not-isolated transformations of Knoop,
/// Ruthing, and Steffen, in the edge-based formulation of Drechsler and
/// Stadel. Down-safety is the check anticipatability of the paper (so
/// insertions can only move traps earlier, never create new ones), and
/// up-safety is check availability.
///
/// Critical edges must have been split (Function::splitCriticalEdges)
/// before running either placement.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_LAZYCODEMOTION_H
#define NASCENT_OPT_LAZYCODEMOTION_H

#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "opt/CheckContext.h"

namespace nascent {

/// Which LCM placement to compute.
enum class LCMPlacement {
  SafeEarliest,      ///< place checks as early as safely possible (SE)
  LatestNotIsolated, ///< delay placements to the latest point (LNI)
};

/// Result of an LCM run: checks inserted into the IR.
struct LCMStats {
  unsigned ChecksInserted = 0;
};

/// Computes the placement and inserts Check instructions into \p F.
/// Insertion points are CFG edges; with critical edges split each edge has
/// an endpoint that it exclusively owns, so insertions go at the end of a
/// single-successor source or the start of a single-predecessor target.
///
/// At each insertion point only the strongest check per family is
/// materialised; weaker family members earliest at the same point would be
/// immediately redundant. One LcmInserted remark per materialised check
/// goes to \p Remarks when given; inserted checks get fresh lifecycle
/// tags and one Inserted event each into \p Prov.
LCMStats runLazyCodeMotion(Function &F, const CheckContext &Ctx,
                           LCMPlacement Placement,
                           obs::RemarkCollector *Remarks = nullptr,
                           obs::ProvenanceRecorder *Prov = nullptr);

} // namespace nascent

#endif // NASCENT_OPT_LAZYCODEMOTION_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared analysis context for the range-check optimizer: the check
/// universe of one function, the implication graph, per-instruction check
/// ids, kill/gen transfer functions, and the availability /
/// anticipatability data-flow problems (paper section 3.2).
///
/// Conditional checks hoisted into preheaders contribute *entry facts*
/// (PreheaderFact): the guarded check is recorded as available at the
/// entry of the loop's body block — the flow-sensitive, sound realisation
/// of the paper's preheader-to-body implications (see DESIGN.md §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_CHECKCONTEXT_H
#define NASCENT_OPT_CHECKCONTEXT_H

#include "analysis/Dataflow.h"
#include "cache/ArtifactCache.h"
#include "checks/CheckImplicationGraph.h"
#include "checks/CheckUniverse.h"
#include "ir/Function.h"
#include "obs/Trace.h"

#include <memory>
#include <vector>

namespace nascent {

/// A fact established by a conditional check in a loop preheader: at the
/// entry of BodyEntry, Fact has always been performed. Source is the
/// lifecycle tag of the conditional check that established the fact, so
/// eliminations justified by it can cite their witness.
struct PreheaderFact {
  BlockID BodyEntry = InvalidBlock;
  CheckExpr Fact;
  CheckTag Source = NoCheckTag;
};

/// Per-function analysis context over the current IR. Invalidated by any
/// IR mutation; the optimizer rebuilds it between its insertion and
/// elimination stages.
class CheckContext {
public:
  /// Builds the universe, CIG, and block transfer sets for the current IR
  /// of \p F. When \p Trace is given (and enabled) the dataflow solves
  /// record spans into it.
  CheckContext(const Function &F, ImplicationMode Mode,
               const std::vector<PreheaderFact> &Facts = {},
               obs::TraceCollector *Trace = nullptr);

  /// Rebuilds a context from a cached seed (docs/caching.md): binds the
  /// seed's shared universe and table core instead of walking the IR,
  /// rebinds the implication graph to the shared universe, and replays
  /// the stat and work-proxy effects of the organic build so telemetry
  /// is byte-identical either way. Only valid for \p F content-identical
  /// to the function the seed was built from, at the same mode, with no
  /// preheader facts.
  CheckContext(const Function &F, ImplicationMode Mode,
               const cache::ContextSeed &Seed,
               obs::TraceCollector *Trace = nullptr);

  /// Snapshot of the built state for the artifact cache. Completes the
  /// lazy closure build first (a no-op unless the universe is empty,
  /// where it is free) so the shared core is immutable from here on.
  cache::ContextSeed makeSeed() const;

  /// Word-parallel bit-vector ops the construction spent (or replayed).
  uint64_t buildWordOps() const { return BuildWordOps; }

  const Function &function() const { return F; }
  const CheckUniverse &universe() const { return U; }
  CheckImplicationGraph &cig() { return CIG; }
  const CheckImplicationGraph &cig() const { return CIG; }
  ImplicationMode mode() const { return Mode; }

  /// CheckID of the plain Check instruction at (B, Idx); InvalidCheck for
  /// every other instruction (including CondCheck) and for instructions
  /// inserted after this context was built.
  CheckID idOf(BlockID B, size_t Idx) const {
    if (B >= Core.InstCheck.size() || Idx >= Core.InstCheck[B].size())
      return InvalidCheck;
    return Core.InstCheck[B][Idx];
  }

  /// A representative origin for diagnostics on inserted copies of \p C.
  const CheckOrigin &representativeOrigin(CheckID C) const {
    return Core.RepOrigin[C];
  }

  /// Entry facts per block (universe-sized bit vectors).
  const DenseBitVector &genInBits(BlockID B) const { return Core.GenIn[B]; }

  /// The lifecycle tag of a preheader conditional check whose fact covers
  /// \p C at the entry of \p B; NoCheckTag when no fact does (or the
  /// covering fact carries no tag). Provenance uses this to name the
  /// witness of fact-justified eliminations.
  CheckTag preheaderWitness(BlockID B, CheckID C) const;

  /// Clears from \p Bits every check killed by \p I (a definition of any
  /// symbol in the range-expression kills the check).
  void applyKill(const Instruction &I, DenseBitVector &Bits) const;

  /// Applies the availability gen of \p I: a performed check generates
  /// itself and every weaker check (via the CIG, honouring the mode).
  void applyAvailGen(BlockID B, size_t Idx, const Instruction &I,
                     DenseBitVector &Bits) const;

  /// Applies the anticipatability gen of \p I: a check generates itself
  /// and the weaker checks of its own family only (the paper's stronger
  /// branch-side condition).
  void applyAnticGen(BlockID B, size_t Idx, const Instruction &I,
                     DenseBitVector &Bits) const;

  /// Availability: forward, intersect. In/Out per block; remember that a
  /// block's effective entry set is In | genInBits.
  DataflowResult solveAvailability() const;

  /// Anticipatability: backward, intersect. In = block entry, Out = exit.
  DataflowResult solveAnticipatability() const;

  /// Cached weaker-closures (availability flavour). The first query
  /// batch-builds the closures of *every* check in one pass (see
  /// ensureClosures), so per-check calls are lookups.
  const DenseBitVector &weakerClosure(CheckID C) const;

  /// Cached weaker-closures restricted to the family (antic flavour).
  const DenseBitVector &weakerClosureSameFamily(CheckID C) const;

  /// Per-block kill sets (union over instructions).
  const DenseBitVector &blockKill(BlockID B) const { return Core.Kill[B]; }

  /// Per-block local anticipatability (LCM's ANTLOC): checks generated in
  /// the block with no kill before them.
  const DenseBitVector &blockAnticGen(BlockID B) const {
    return Core.AnticGen[B];
  }

  /// True when block \p B contains a plain check generating \p C's
  /// availability before any kill of \p C (LCM's "locally anticipatable").
  bool locallyAnticipates(BlockID B, CheckID C) const;

private:
  void buildUniverse(const std::vector<PreheaderFact> &Facts);
  void buildBlockSets();

  /// The stat epilogue shared by the organic and seeded constructors, so
  /// both record identical counter and histogram updates.
  void recordBuildStats();

  /// One-shot batch fill of both closure caches. Groups the work by
  /// family: the per-family bound-suffix masks and the per-family
  /// reachability scan are shared by all members, so each closure is a
  /// few word-parallel ORs instead of a per-member CIG walk. Safe to
  /// build eagerly because production code never mutates the CIG after
  /// the context is constructed.
  void ensureClosures() const;

  const Function &F;
  ImplicationMode Mode;
  obs::TraceCollector *Trace = nullptr;
  /// Seeded contexts share the (immutable) universe of the build that
  /// produced their seed instead of copying its intern maps; organic
  /// builds intern into their own. U is the one in use everywhere.
  std::shared_ptr<const CheckUniverse> SharedU;
  CheckUniverse OwnedU;
  const CheckUniverse &U;
  /// The built tables (ids, origins, transfer sets, closures): organic
  /// contexts allocate and fill OwnedCore (the write handle — also used
  /// by the one lazy post-constructor write, ensureClosures); seeded
  /// contexts bind SharedCore from their seed. Core is the one in use
  /// everywhere. makeSeed completes the lazy closure build and then
  /// shares the core, after which it is immutable.
  std::shared_ptr<cache::ContextCore> OwnedCore;
  std::shared_ptr<const cache::ContextCore> SharedCore;
  const cache::ContextCore &Core;
  CheckImplicationGraph CIG;

  /// (body entry, interned fact, source tag) per preheader fact, kept for
  /// witness lookups.
  struct FactInfo {
    BlockID Block;
    CheckID Id;
    CheckTag Source;
  };
  std::vector<FactInfo> StoredFacts;

  /// Word-parallel bit-vector ops spent building the universe and block
  /// sets (captured by the organic constructor, replayed by the seeded
  /// one). Excludes the stat epilogue's own counted ops, which the seeded
  /// constructor re-executes rather than replays.
  uint64_t BuildWordOps = 0;

  /// Shared write-once memo for the global data-flow solves, threaded
  /// through the seed so every context built from it answers each problem
  /// from the first solve (mutable: makeSeed and the const solve methods
  /// attach/populate it; null outside cached compiles, where the solvers
  /// run organically every time).
  mutable std::shared_ptr<cache::SolveMemo> Solves;
};

} // namespace nascent

#endif // NASCENT_OPT_CHECKCONTEXT_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Shared analysis context for the range-check optimizer: the check
/// universe of one function, the implication graph, per-instruction check
/// ids, kill/gen transfer functions, and the availability /
/// anticipatability data-flow problems (paper section 3.2).
///
/// Conditional checks hoisted into preheaders contribute *entry facts*
/// (PreheaderFact): the guarded check is recorded as available at the
/// entry of the loop's body block — the flow-sensitive, sound realisation
/// of the paper's preheader-to-body implications (see DESIGN.md §5.3).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_CHECKCONTEXT_H
#define NASCENT_OPT_CHECKCONTEXT_H

#include "analysis/Dataflow.h"
#include "checks/CheckImplicationGraph.h"
#include "checks/CheckUniverse.h"
#include "ir/Function.h"
#include "obs/Trace.h"

#include <vector>

namespace nascent {

/// A fact established by a conditional check in a loop preheader: at the
/// entry of BodyEntry, Fact has always been performed. Source is the
/// lifecycle tag of the conditional check that established the fact, so
/// eliminations justified by it can cite their witness.
struct PreheaderFact {
  BlockID BodyEntry = InvalidBlock;
  CheckExpr Fact;
  CheckTag Source = NoCheckTag;
};

/// Per-function analysis context over the current IR. Invalidated by any
/// IR mutation; the optimizer rebuilds it between its insertion and
/// elimination stages.
class CheckContext {
public:
  /// Builds the universe, CIG, and block transfer sets for the current IR
  /// of \p F. When \p Trace is given (and enabled) the dataflow solves
  /// record spans into it.
  CheckContext(const Function &F, ImplicationMode Mode,
               const std::vector<PreheaderFact> &Facts = {},
               obs::TraceCollector *Trace = nullptr);

  const Function &function() const { return F; }
  const CheckUniverse &universe() const { return U; }
  CheckImplicationGraph &cig() { return CIG; }
  const CheckImplicationGraph &cig() const { return CIG; }
  ImplicationMode mode() const { return Mode; }

  /// CheckID of the plain Check instruction at (B, Idx); InvalidCheck for
  /// every other instruction (including CondCheck) and for instructions
  /// inserted after this context was built.
  CheckID idOf(BlockID B, size_t Idx) const {
    if (B >= InstCheck.size() || Idx >= InstCheck[B].size())
      return InvalidCheck;
    return InstCheck[B][Idx];
  }

  /// A representative origin for diagnostics on inserted copies of \p C.
  const CheckOrigin &representativeOrigin(CheckID C) const {
    return RepOrigin[C];
  }

  /// Entry facts per block (universe-sized bit vectors).
  const DenseBitVector &genInBits(BlockID B) const { return GenIn[B]; }

  /// The lifecycle tag of a preheader conditional check whose fact covers
  /// \p C at the entry of \p B; NoCheckTag when no fact does (or the
  /// covering fact carries no tag). Provenance uses this to name the
  /// witness of fact-justified eliminations.
  CheckTag preheaderWitness(BlockID B, CheckID C) const;

  /// Clears from \p Bits every check killed by \p I (a definition of any
  /// symbol in the range-expression kills the check).
  void applyKill(const Instruction &I, DenseBitVector &Bits) const;

  /// Applies the availability gen of \p I: a performed check generates
  /// itself and every weaker check (via the CIG, honouring the mode).
  void applyAvailGen(BlockID B, size_t Idx, const Instruction &I,
                     DenseBitVector &Bits) const;

  /// Applies the anticipatability gen of \p I: a check generates itself
  /// and the weaker checks of its own family only (the paper's stronger
  /// branch-side condition).
  void applyAnticGen(BlockID B, size_t Idx, const Instruction &I,
                     DenseBitVector &Bits) const;

  /// Availability: forward, intersect. In/Out per block; remember that a
  /// block's effective entry set is In | genInBits.
  DataflowResult solveAvailability() const;

  /// Anticipatability: backward, intersect. In = block entry, Out = exit.
  DataflowResult solveAnticipatability() const;

  /// Cached weaker-closures (availability flavour). The first query
  /// batch-builds the closures of *every* check in one pass (see
  /// ensureClosures), so per-check calls are lookups.
  const DenseBitVector &weakerClosure(CheckID C) const;

  /// Cached weaker-closures restricted to the family (antic flavour).
  const DenseBitVector &weakerClosureSameFamily(CheckID C) const;

  /// Per-block kill sets (union over instructions).
  const DenseBitVector &blockKill(BlockID B) const { return Kill[B]; }

  /// Per-block local anticipatability (LCM's ANTLOC): checks generated in
  /// the block with no kill before them.
  const DenseBitVector &blockAnticGen(BlockID B) const { return AnticGen[B]; }

  /// True when block \p B contains a plain check generating \p C's
  /// availability before any kill of \p C (LCM's "locally anticipatable").
  bool locallyAnticipates(BlockID B, CheckID C) const;

private:
  void buildUniverse(const std::vector<PreheaderFact> &Facts);
  void buildBlockSets();

  /// One-shot batch fill of both closure caches. Groups the work by
  /// family: the per-family bound-suffix masks and the per-family
  /// reachability scan are shared by all members, so each closure is a
  /// few word-parallel ORs instead of a per-member CIG walk. Safe to
  /// build eagerly because production code never mutates the CIG after
  /// the context is constructed.
  void ensureClosures() const;

  const Function &F;
  ImplicationMode Mode;
  obs::TraceCollector *Trace = nullptr;
  CheckUniverse U;
  CheckImplicationGraph CIG;

  std::vector<std::vector<CheckID>> InstCheck;
  std::vector<CheckOrigin> RepOrigin;
  std::vector<DenseBitVector> GenIn;

  /// (body entry, interned fact, source tag) per preheader fact, kept for
  /// witness lookups.
  struct FactInfo {
    BlockID Block;
    CheckID Id;
    CheckTag Source;
  };
  std::vector<FactInfo> StoredFacts;

  // Block-level transfer sets.
  std::vector<DenseBitVector> Kill;
  std::vector<DenseBitVector> AvailGen; ///< includes GenIn survivors
  std::vector<DenseBitVector> AnticGen;

  mutable bool ClosuresBuilt = false;
  mutable std::vector<DenseBitVector> ClosureCache;
  mutable std::vector<DenseBitVector> FamClosureCache;
};

} // namespace nascent

#endif // NASCENT_OPT_CHECKCONTEXT_H

#include "opt/CheckContext.h"

#include "obs/StatRegistry.h"

using namespace nascent;

NASCENT_STAT(NumContexts, "opt.context.builds",
             "check-analysis contexts built");
NASCENT_STAT_HISTOGRAM(UniverseSizes, "opt.context.universe_size",
                       "check-universe size per context");
NASCENT_STAT_HISTOGRAM(FamilyCounts, "opt.context.families",
                       "check families per context");
NASCENT_STAT_HISTOGRAM(KillSetSizes, "opt.context.kill_set_size",
                       "per-block kill-set population");
NASCENT_STAT(NumCigEdges, "checks.cig.edges",
             "implication edges in built CIGs");

CheckContext::CheckContext(const Function &F, ImplicationMode Mode,
                           const std::vector<PreheaderFact> &Facts,
                           obs::TraceCollector *Trace)
    : F(F), Mode(Mode), Trace(Trace),
      U(/*FamilyPerCheck=*/Mode == ImplicationMode::None), CIG(U, Mode) {
  obs::TraceScope Scope(Trace, "cig-build");
  buildUniverse(Facts);
  buildBlockSets();
  ++NumContexts;
  UniverseSizes.record(U.size());
  FamilyCounts.record(U.numFamilies());
  NumCigEdges += CIG.numEdges();
  for (const DenseBitVector &K : Kill)
    KillSetSizes.record(K.count());
}

void CheckContext::buildUniverse(const std::vector<PreheaderFact> &Facts) {
  InstCheck.assign(F.numBlocks(), {});
  for (const auto &BB : F) {
    auto &Ids = InstCheck[BB->id()];
    Ids.assign(BB->size(), InvalidCheck);
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      if (I.Op != Opcode::Check)
        continue;
      CheckID C = U.intern(I.Check);
      Ids[Idx] = C;
      if (RepOrigin.size() <= C)
        RepOrigin.resize(C + 1);
      if (RepOrigin[C].ArrayName.empty())
        RepOrigin[C] = I.Origin;
    }
  }
  // Conditional checks participate through their facts; also intern their
  // main payloads so closures can reference them.
  std::vector<std::pair<BlockID, CheckID>> FactIds;
  for (const PreheaderFact &PF : Facts)
    FactIds.push_back({PF.BodyEntry, U.intern(PF.Fact)});
  RepOrigin.resize(U.size());

  GenIn.assign(F.numBlocks(), DenseBitVector(U.size()));
  for (auto &[Block, C] : FactIds) {
    DenseBitVector Closure(U.size());
    CIG.weakerClosure(C, Closure);
    GenIn[Block] |= Closure;
  }
}

void CheckContext::applyKill(const Instruction &I,
                             DenseBitVector &Bits) const {
  if (I.Dest == InvalidSymbol)
    return;
  for (CheckID C : U.checksUsingSymbol(I.Dest))
    Bits.reset(C);
}

void CheckContext::applyAvailGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosure(C);
}

void CheckContext::applyAnticGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosureSameFamily(C);
}

const DenseBitVector &CheckContext::weakerClosure(CheckID C) const {
  if (ClosureCache.size() != U.size()) {
    ClosureCache.assign(U.size(), DenseBitVector(U.size()));
    ClosureValid.assign(U.size(), false);
  }
  if (!ClosureValid[C]) {
    ClosureCache[C] = DenseBitVector(U.size());
    CIG.weakerClosure(C, ClosureCache[C]);
    ClosureValid[C] = true;
  }
  return ClosureCache[C];
}

const DenseBitVector &
CheckContext::weakerClosureSameFamily(CheckID C) const {
  if (FamClosureCache.size() != U.size()) {
    FamClosureCache.assign(U.size(), DenseBitVector(U.size()));
    FamClosureValid.assign(U.size(), false);
  }
  if (!FamClosureValid[C]) {
    FamClosureCache[C] = DenseBitVector(U.size());
    CIG.weakerClosureSameFamily(C, FamClosureCache[C]);
    FamClosureValid[C] = true;
  }
  return FamClosureCache[C];
}

void CheckContext::buildBlockSets() {
  size_t N = U.size();
  Kill.assign(F.numBlocks(), DenseBitVector(N));
  AvailGen.assign(F.numBlocks(), DenseBitVector(N));
  AnticGen.assign(F.numBlocks(), DenseBitVector(N));

  for (const auto &BB : F) {
    BlockID B = BB->id();

    // Kill: union over definitions.
    for (const Instruction &I : BB->instructions()) {
      if (I.Dest == InvalidSymbol)
        continue;
      for (CheckID C : U.checksUsingSymbol(I.Dest))
        Kill[B].set(C);
    }

    // Availability gen: forward scan starting from the entry facts.
    DenseBitVector Running = GenIn[B];
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Running);
      applyAvailGen(B, Idx, I, Running);
    }
    AvailGen[B] = std::move(Running);

    // Anticipatability gen: backward scan from an empty exit set.
    DenseBitVector Back(N);
    for (size_t Idx = BB->size(); Idx-- > 0;) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Back);
      applyAnticGen(B, Idx, I, Back);
    }
    AnticGen[B] = std::move(Back);
  }
}

DataflowResult CheckContext::solveAvailability() const {
  obs::TraceScope Scope(Trace, "solve-avail");
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Forward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = U.size();
  P.Gen = AvailGen;
  P.Kill = Kill;
  return solveDataflow(F, P);
}

DataflowResult CheckContext::solveAnticipatability() const {
  obs::TraceScope Scope(Trace, "solve-antic");
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Backward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = U.size();
  P.Gen = AnticGen;
  P.Kill = Kill;
  return solveDataflow(F, P);
}

bool CheckContext::locallyAnticipates(BlockID B, CheckID C) const {
  const BasicBlock *BB = F.block(B);
  for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
    const Instruction &I = BB->instructions()[Idx];
    if (I.Dest != InvalidSymbol) {
      bool Killed = false;
      for (CheckID K : U.checksUsingSymbol(I.Dest))
        if (K == C) {
          Killed = true;
          break;
        }
      if (Killed)
        return false;
    }
    if (I.Op == Opcode::Check && InstCheck[B][Idx] != InvalidCheck &&
        CIG.isAsStrongAs(InstCheck[B][Idx], C))
      return true;
  }
  return false;
}

#include "opt/CheckContext.h"

#include "obs/StatRegistry.h"

using namespace nascent;

NASCENT_STAT(NumContexts, "opt.context.builds",
             "check-analysis contexts built");
NASCENT_STAT_HISTOGRAM(UniverseSizes, "opt.context.universe_size",
                       "check-universe size per context");
NASCENT_STAT_HISTOGRAM(FamilyCounts, "opt.context.families",
                       "check families per context");
NASCENT_STAT_HISTOGRAM(KillSetSizes, "opt.context.kill_set_size",
                       "per-block kill-set population");
NASCENT_STAT(NumCigEdges, "checks.cig.edges",
             "implication edges in built CIGs");

CheckContext::CheckContext(const Function &F, ImplicationMode Mode,
                           const std::vector<PreheaderFact> &Facts,
                           obs::TraceCollector *Trace)
    : F(F), Mode(Mode), Trace(Trace),
      U(/*FamilyPerCheck=*/Mode == ImplicationMode::None), CIG(U, Mode) {
  obs::TraceScope Scope(Trace, "cig-build");
  buildUniverse(Facts);
  buildBlockSets();
  ++NumContexts;
  UniverseSizes.record(U.size());
  FamilyCounts.record(U.numFamilies());
  NumCigEdges += CIG.numEdges();
  for (const DenseBitVector &K : Kill)
    KillSetSizes.record(K.count());
}

void CheckContext::buildUniverse(const std::vector<PreheaderFact> &Facts) {
  InstCheck.assign(F.numBlocks(), {});
  for (const auto &BB : F) {
    auto &Ids = InstCheck[BB->id()];
    Ids.assign(BB->size(), InvalidCheck);
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      if (I.Op != Opcode::Check)
        continue;
      CheckID C = U.intern(I.Check);
      Ids[Idx] = C;
      if (RepOrigin.size() <= C)
        RepOrigin.resize(C + 1);
      if (RepOrigin[C].ArrayName.empty())
        RepOrigin[C] = I.Origin;
    }
  }
  // Conditional checks participate through their facts; also intern their
  // main payloads so closures can reference them.
  for (const PreheaderFact &PF : Facts)
    StoredFacts.push_back({PF.BodyEntry, U.intern(PF.Fact), PF.Source});
  RepOrigin.resize(U.size());

  GenIn.assign(F.numBlocks(), DenseBitVector(U.size()));
  for (const FactInfo &FI : StoredFacts)
    GenIn[FI.Block] |= weakerClosure(FI.Id);
}

CheckTag CheckContext::preheaderWitness(BlockID B, CheckID C) const {
  for (const FactInfo &FI : StoredFacts) {
    if (FI.Block != B || FI.Source == NoCheckTag)
      continue;
    if (FI.Id == C || weakerClosure(FI.Id).test(C))
      return FI.Source;
  }
  return NoCheckTag;
}

void CheckContext::applyKill(const Instruction &I,
                             DenseBitVector &Bits) const {
  if (I.Dest == InvalidSymbol)
    return;
  for (CheckID C : U.checksUsingSymbol(I.Dest))
    Bits.reset(C);
}

void CheckContext::applyAvailGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosure(C);
}

void CheckContext::applyAnticGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosureSameFamily(C);
}

const DenseBitVector &CheckContext::weakerClosure(CheckID C) const {
  ensureClosures();
  return ClosureCache[C];
}

const DenseBitVector &
CheckContext::weakerClosureSameFamily(CheckID C) const {
  ensureClosures();
  return FamClosureCache[C];
}

void CheckContext::ensureClosures() const {
  if (ClosuresBuilt)
    return;
  ClosuresBuilt = true;
  size_t N = U.size();
  ClosureCache.assign(N, DenseBitVector(N));
  FamClosureCache.assign(N, DenseBitVector(N));
  if (N == 0)
    return;

  if (Mode == ImplicationMode::None) {
    // Every check implies only itself; no graph walks needed.
    for (size_t C = 0; C != N; ++C) {
      ClosureCache[C].set(C);
      FamClosureCache[C].set(C);
    }
    return;
  }

  // Suffix masks over each family's bound-ascending member list:
  // Suffix[F][K] = {members K..}. "All members with bound >= T" is then a
  // binary search plus one word-parallel OR, for any threshold T.
  size_t NumFams = U.numFamilies();
  std::vector<std::vector<DenseBitVector>> Suffix(NumFams);
  for (size_t FI = 0; FI != NumFams; ++FI) {
    const std::vector<CheckID> &Members =
        U.familyMembers(static_cast<FamilyID>(FI));
    std::vector<DenseBitVector> S(Members.size() + 1, DenseBitVector(N));
    for (size_t K = Members.size(); K-- > 0;) {
      S[K] = S[K + 1];
      S[K].set(Members[K]);
    }
    Suffix[FI] = std::move(S);
  }

  auto FirstWithBoundAtLeast = [this](const std::vector<CheckID> &Members,
                                      int64_t T) {
    size_t Lo = 0, Hi = Members.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (U.check(Members[Mid]).bound() < T)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  };

  for (size_t FI = 0; FI != NumFams; ++FI) {
    const std::vector<CheckID> &Members =
        U.familyMembers(static_cast<FamilyID>(FI));
    for (size_t K = 0; K != Members.size(); ++K) {
      CheckID C = Members[K];
      int64_t BoundC = U.check(C).bound();
      if (Mode != ImplicationMode::CrossFamilyOnly) {
        // Same family: everything with a bound at least ours. (Binary
        // search instead of position K keeps duplicate bounds exact.)
        size_t Start = FirstWithBoundAtLeast(Members, BoundC);
        ClosureCache[C] |= Suffix[FI][Start];
        FamClosureCache[C] |= Suffix[FI][Start];
      }
      ClosureCache[C].set(C);
      FamClosureCache[C].set(C);
      // Cross family: members reachable with accumulated weight. The
      // reachability row is computed once per family (cached in the CIG)
      // and shared by all its members.
      CIG.forEachReachable(
          static_cast<FamilyID>(FI), [&](FamilyID FJ, int64_t W) {
            const std::vector<CheckID> &MJ = U.familyMembers(FJ);
            ClosureCache[C] |=
                Suffix[FJ][FirstWithBoundAtLeast(MJ, BoundC + W)];
          });
    }
  }
}

void CheckContext::buildBlockSets() {
  size_t N = U.size();
  Kill.assign(F.numBlocks(), DenseBitVector(N));
  AvailGen.assign(F.numBlocks(), DenseBitVector(N));
  AnticGen.assign(F.numBlocks(), DenseBitVector(N));

  for (const auto &BB : F) {
    BlockID B = BB->id();

    // Kill: union over definitions.
    for (const Instruction &I : BB->instructions()) {
      if (I.Dest == InvalidSymbol)
        continue;
      for (CheckID C : U.checksUsingSymbol(I.Dest))
        Kill[B].set(C);
    }

    // Availability gen: forward scan starting from the entry facts.
    DenseBitVector Running = GenIn[B];
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Running);
      applyAvailGen(B, Idx, I, Running);
    }
    AvailGen[B] = std::move(Running);

    // Anticipatability gen: backward scan from an empty exit set.
    DenseBitVector Back(N);
    for (size_t Idx = BB->size(); Idx-- > 0;) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Back);
      applyAnticGen(B, Idx, I, Back);
    }
    AnticGen[B] = std::move(Back);
  }
}

DataflowResult CheckContext::solveAvailability() const {
  obs::TraceScope Scope(Trace, "solve-avail");
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Forward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = U.size();
  P.Gen = AvailGen;
  P.Kill = Kill;
  return solveDataflow(F, P);
}

DataflowResult CheckContext::solveAnticipatability() const {
  obs::TraceScope Scope(Trace, "solve-antic");
  DataflowProblem P;
  P.Dir = DataflowProblem::Direction::Backward;
  P.MeetOp = DataflowProblem::Meet::Intersect;
  P.UniverseSize = U.size();
  P.Gen = AnticGen;
  P.Kill = Kill;
  return solveDataflow(F, P);
}

bool CheckContext::locallyAnticipates(BlockID B, CheckID C) const {
  const BasicBlock *BB = F.block(B);
  for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
    const Instruction &I = BB->instructions()[Idx];
    if (I.Dest != InvalidSymbol) {
      bool Killed = false;
      for (CheckID K : U.checksUsingSymbol(I.Dest))
        if (K == C) {
          Killed = true;
          break;
        }
      if (Killed)
        return false;
    }
    if (I.Op == Opcode::Check && InstCheck[B][Idx] != InvalidCheck &&
        CIG.isAsStrongAs(InstCheck[B][Idx], C))
      return true;
  }
  return false;
}

#include "opt/CheckContext.h"

#include "cache/ArtifactCache.h"
#include "obs/StatRegistry.h"

using namespace nascent;

NASCENT_STAT(NumContexts, "opt.context.builds",
             "check-analysis contexts built");
NASCENT_STAT_HISTOGRAM(UniverseSizes, "opt.context.universe_size",
                       "check-universe size per context");
NASCENT_STAT_HISTOGRAM(FamilyCounts, "opt.context.families",
                       "check families per context");
NASCENT_STAT_HISTOGRAM(KillSetSizes, "opt.context.kill_set_size",
                       "per-block kill-set population");
NASCENT_STAT(NumCigEdges, "checks.cig.edges",
             "implication edges in built CIGs");

CheckContext::CheckContext(const Function &F, ImplicationMode Mode,
                           const std::vector<PreheaderFact> &Facts,
                           obs::TraceCollector *Trace)
    : F(F), Mode(Mode), Trace(Trace),
      OwnedU(/*FamilyPerCheck=*/Mode == ImplicationMode::None), U(OwnedU),
      OwnedCore(std::make_shared<cache::ContextCore>()), Core(*OwnedCore),
      CIG(U, Mode) {
  obs::TraceScope Scope(Trace, "cig-build");
  // Meter the build so a cache-seeded rebuild can replay its exact
  // word-op cost. Thread-local counter only: concurrent thread exits
  // (which fold into the retired total) cannot skew the delta.
  uint64_t OpsBefore = DenseBitVector::threadWordOps();
  buildUniverse(Facts);
  buildBlockSets();
  BuildWordOps = DenseBitVector::threadWordOps() - OpsBefore;
  recordBuildStats();
}

CheckContext::CheckContext(const Function &F, ImplicationMode Mode,
                           const cache::ContextSeed &Seed,
                           obs::TraceCollector *Trace)
    : F(F), Mode(Mode), Trace(Trace), SharedU(Seed.U), U(*SharedU),
      SharedCore(Seed.Core), Core(*SharedCore), CIG(U, Mode) {
  obs::TraceScope Scope(Trace, "cig-seed");
  BuildWordOps = Seed.BuildWordOps;
  Solves = Seed.Solves;
  // Replay the telemetry of the organic build this seed stands in for:
  // its bit-vector work and its interning of every universe entry (seeds
  // are only stored for fact-free builds, where each entry was interned
  // exactly once). The stat epilogue below then re-records the same
  // counters and histograms the organic constructor would have.
  DenseBitVector::creditThreadOps(Seed.BuildWordOps);
  CheckUniverse::creditInterned(U.size());
  recordBuildStats();
}

cache::ContextSeed CheckContext::makeSeed() const {
  cache::ContextSeed Seed;
  // Share our universe and table core (already shared if we were seeded
  // ourselves): no copies, at store time or per hit. Completing the lazy
  // closure build first keeps the shared core immutable — it is a no-op
  // whenever any check exists (the constructor built the closures while
  // scanning blocks) and free when none does (empty caches).
  Seed.U = SharedU ? SharedU
                   : std::make_shared<const CheckUniverse>(OwnedU);
  ensureClosures();
  Seed.Core = SharedCore
                  ? SharedCore
                  : std::shared_ptr<const cache::ContextCore>(OwnedCore);
  Seed.BuildWordOps = BuildWordOps;
  // Attach the shared solve memo to both this context and the seed, so
  // the first consumer to solve a data-flow problem — whether through
  // this (organic) context or any seeded copy — answers it for all.
  if (!Solves)
    Solves = std::make_shared<cache::SolveMemo>();
  Seed.Solves = Solves;
  return Seed;
}

void CheckContext::recordBuildStats() {
  ++NumContexts;
  UniverseSizes.record(U.size());
  FamilyCounts.record(U.numFamilies());
  NumCigEdges += CIG.numEdges();
  for (const DenseBitVector &K : Core.Kill)
    KillSetSizes.record(K.count());
}

void CheckContext::buildUniverse(const std::vector<PreheaderFact> &Facts) {
  cache::ContextCore &W = *OwnedCore;
  W.InstCheck.assign(F.numBlocks(), {});
  for (const auto &BB : F) {
    auto &Ids = W.InstCheck[BB->id()];
    Ids.assign(BB->size(), InvalidCheck);
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      if (I.Op != Opcode::Check)
        continue;
      CheckID C = OwnedU.intern(I.Check);
      Ids[Idx] = C;
      if (W.RepOrigin.size() <= C)
        W.RepOrigin.resize(C + 1);
      if (W.RepOrigin[C].ArrayName.empty())
        W.RepOrigin[C] = I.Origin;
    }
  }
  // Conditional checks participate through their facts; also intern their
  // main payloads so closures can reference them.
  for (const PreheaderFact &PF : Facts)
    StoredFacts.push_back(
      {PF.BodyEntry, OwnedU.intern(PF.Fact), PF.Source});
  W.RepOrigin.resize(U.size());

  W.GenIn.assign(F.numBlocks(), DenseBitVector(U.size()));
  for (const FactInfo &FI : StoredFacts)
    W.GenIn[FI.Block] |= weakerClosure(FI.Id);
}

CheckTag CheckContext::preheaderWitness(BlockID B, CheckID C) const {
  for (const FactInfo &FI : StoredFacts) {
    if (FI.Block != B || FI.Source == NoCheckTag)
      continue;
    if (FI.Id == C || weakerClosure(FI.Id).test(C))
      return FI.Source;
  }
  return NoCheckTag;
}

void CheckContext::applyKill(const Instruction &I,
                             DenseBitVector &Bits) const {
  if (I.Dest == InvalidSymbol)
    return;
  for (CheckID C : U.checksUsingSymbol(I.Dest))
    Bits.reset(C);
}

void CheckContext::applyAvailGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = Core.InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosure(C);
}

void CheckContext::applyAnticGen(BlockID B, size_t Idx, const Instruction &I,
                                 DenseBitVector &Bits) const {
  if (I.Op != Opcode::Check)
    return;
  CheckID C = Core.InstCheck[B][Idx];
  if (C == InvalidCheck)
    return;
  Bits |= weakerClosureSameFamily(C);
}

const DenseBitVector &CheckContext::weakerClosure(CheckID C) const {
  ensureClosures();
  return Core.ClosureCache[C];
}

const DenseBitVector &
CheckContext::weakerClosureSameFamily(CheckID C) const {
  ensureClosures();
  return Core.FamClosureCache[C];
}

void CheckContext::ensureClosures() const {
  if (Core.ClosuresBuilt)
    return;
  // Only organic contexts reach the build: makeSeed completes it before
  // the core is shared, so seeded contexts always find ClosuresBuilt.
  cache::ContextCore &W = *OwnedCore;
  W.ClosuresBuilt = true;
  size_t N = U.size();
  W.ClosureCache.assign(N, DenseBitVector(N));
  W.FamClosureCache.assign(N, DenseBitVector(N));
  if (N == 0)
    return;

  if (Mode == ImplicationMode::None) {
    // Every check implies only itself; no graph walks needed.
    for (size_t C = 0; C != N; ++C) {
      W.ClosureCache[C].set(C);
      W.FamClosureCache[C].set(C);
    }
    return;
  }

  // Suffix masks over each family's bound-ascending member list:
  // Suffix[F][K] = {members K..}. "All members with bound >= T" is then a
  // binary search plus one word-parallel OR, for any threshold T.
  size_t NumFams = U.numFamilies();
  std::vector<std::vector<DenseBitVector>> Suffix(NumFams);
  for (size_t FI = 0; FI != NumFams; ++FI) {
    const std::vector<CheckID> &Members =
        U.familyMembers(static_cast<FamilyID>(FI));
    std::vector<DenseBitVector> S(Members.size() + 1, DenseBitVector(N));
    for (size_t K = Members.size(); K-- > 0;) {
      S[K] = S[K + 1];
      S[K].set(Members[K]);
    }
    Suffix[FI] = std::move(S);
  }

  auto FirstWithBoundAtLeast = [this](const std::vector<CheckID> &Members,
                                      int64_t T) {
    size_t Lo = 0, Hi = Members.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (U.check(Members[Mid]).bound() < T)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  };

  for (size_t FI = 0; FI != NumFams; ++FI) {
    const std::vector<CheckID> &Members =
        U.familyMembers(static_cast<FamilyID>(FI));
    for (size_t K = 0; K != Members.size(); ++K) {
      CheckID C = Members[K];
      int64_t BoundC = U.check(C).bound();
      if (Mode != ImplicationMode::CrossFamilyOnly) {
        // Same family: everything with a bound at least ours. (Binary
        // search instead of position K keeps duplicate bounds exact.)
        size_t Start = FirstWithBoundAtLeast(Members, BoundC);
        W.ClosureCache[C] |= Suffix[FI][Start];
        W.FamClosureCache[C] |= Suffix[FI][Start];
      }
      W.ClosureCache[C].set(C);
      W.FamClosureCache[C].set(C);
      // Cross family: members reachable with accumulated weight. The
      // reachability row is computed once per family (cached in the CIG)
      // and shared by all its members.
      CIG.forEachReachable(
          static_cast<FamilyID>(FI), [&](FamilyID FJ, int64_t Wt) {
            const std::vector<CheckID> &MJ = U.familyMembers(FJ);
            W.ClosureCache[C] |=
                Suffix[FJ][FirstWithBoundAtLeast(MJ, BoundC + Wt)];
          });
    }
  }
}

void CheckContext::buildBlockSets() {
  cache::ContextCore &W = *OwnedCore;
  size_t N = U.size();
  W.Kill.assign(F.numBlocks(), DenseBitVector(N));
  W.AvailGen.assign(F.numBlocks(), DenseBitVector(N));
  W.AnticGen.assign(F.numBlocks(), DenseBitVector(N));

  for (const auto &BB : F) {
    BlockID B = BB->id();

    // Kill: union over definitions.
    for (const Instruction &I : BB->instructions()) {
      if (I.Dest == InvalidSymbol)
        continue;
      for (CheckID C : U.checksUsingSymbol(I.Dest))
        W.Kill[B].set(C);
    }

    // Availability gen: forward scan starting from the entry facts.
    DenseBitVector Running = W.GenIn[B];
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Running);
      applyAvailGen(B, Idx, I, Running);
    }
    W.AvailGen[B] = std::move(Running);

    // Anticipatability gen: backward scan from an empty exit set.
    DenseBitVector Back(N);
    for (size_t Idx = BB->size(); Idx-- > 0;) {
      const Instruction &I = BB->instructions()[Idx];
      applyKill(I, Back);
      applyAnticGen(B, Idx, I, Back);
    }
    W.AnticGen[B] = std::move(Back);
  }
}

DataflowResult CheckContext::solveAvailability() const {
  obs::TraceScope Scope(Trace, "solve-avail");
  auto Solve = [&] {
    DataflowProblem P;
    P.Dir = DataflowProblem::Direction::Forward;
    P.MeetOp = DataflowProblem::Meet::Intersect;
    P.UniverseSize = U.size();
    P.Gen = Core.AvailGen;
    P.Kill = Core.Kill;
    return solveDataflow(F, P);
  };
  if (!Solves)
    return Solve();
  // Cached compile: answer from the shared memo. The first solve runs
  // organically and records its telemetry inside solveDataflow; replays
  // credit the identical visit count and word ops to the calling thread,
  // so cache-on and cache-off runs emit byte-identical stats. Bit-vector
  // copies are not counted ops, so returning a copy is telemetry-free.
  // The ready flag is release-published after the result is complete, so
  // the replay fast path never takes the mutex.
  if (!Solves->AvailReady.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(Solves->Mu);
    if (!Solves->AvailReady.load(std::memory_order_relaxed)) {
      uint64_t Ops0 = DenseBitVector::threadWordOps();
      Solves->Avail = Solve();
      Solves->AvailWordOps = DenseBitVector::threadWordOps() - Ops0;
      Solves->AvailReady.store(true, std::memory_order_release);
      return Solves->Avail;
    }
  }
  creditDataflowSolve(Solves->Avail.Visits);
  DenseBitVector::creditThreadOps(Solves->AvailWordOps);
  return Solves->Avail;
}

DataflowResult CheckContext::solveAnticipatability() const {
  obs::TraceScope Scope(Trace, "solve-antic");
  auto Solve = [&] {
    DataflowProblem P;
    P.Dir = DataflowProblem::Direction::Backward;
    P.MeetOp = DataflowProblem::Meet::Intersect;
    P.UniverseSize = U.size();
    P.Gen = Core.AnticGen;
    P.Kill = Core.Kill;
    return solveDataflow(F, P);
  };
  if (!Solves)
    return Solve();
  if (!Solves->AnticReady.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(Solves->Mu);
    if (!Solves->AnticReady.load(std::memory_order_relaxed)) {
      uint64_t Ops0 = DenseBitVector::threadWordOps();
      Solves->Antic = Solve();
      Solves->AnticWordOps = DenseBitVector::threadWordOps() - Ops0;
      Solves->AnticReady.store(true, std::memory_order_release);
      return Solves->Antic;
    }
  }
  creditDataflowSolve(Solves->Antic.Visits);
  DenseBitVector::creditThreadOps(Solves->AnticWordOps);
  return Solves->Antic;
}

bool CheckContext::locallyAnticipates(BlockID B, CheckID C) const {
  const BasicBlock *BB = F.block(B);
  const std::vector<CheckID> &Ids = Core.InstCheck[B];
  for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
    const Instruction &I = BB->instructions()[Idx];
    if (I.Dest != InvalidSymbol) {
      bool Killed = false;
      for (CheckID K : U.checksUsingSymbol(I.Dest))
        if (K == C) {
          Killed = true;
          break;
        }
      if (Killed)
        return false;
    }
    if (I.Op == Opcode::Check && Ids[Idx] != InvalidCheck &&
        CIG.isAsStrongAs(Ids[Idx], C))
      return true;
  }
  return false;
}

#include "opt/RangeCheckOptimizer.h"

#include "cache/ArtifactCache.h"
#include "obs/Json.h"
#include "obs/StatRegistry.h"
#include "opt/CheckContext.h"
#include "opt/CheckStrengthening.h"
#include "opt/Elimination.h"
#include "opt/LazyCodeMotion.h"
#include "opt/IntervalAnalysis.h"
#include "opt/PreheaderInsertion.h"

#include <cctype>

using namespace nascent;

NASCENT_STAT(NumFunctionsOptimized, "opt.functions",
             "functions run through the range-check optimizer");

bool nascent::parsePlacementScheme(const std::string &Name,
                                   PlacementScheme &Out) {
  std::string Upper = Name;
  for (char &C : Upper)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  if (Upper == "NI")
    Out = PlacementScheme::NI;
  else if (Upper == "CS")
    Out = PlacementScheme::CS;
  else if (Upper == "LNI")
    Out = PlacementScheme::LNI;
  else if (Upper == "SE")
    Out = PlacementScheme::SE;
  else if (Upper == "LI")
    Out = PlacementScheme::LI;
  else if (Upper == "LLS")
    Out = PlacementScheme::LLS;
  else if (Upper == "ALL")
    Out = PlacementScheme::ALL;
  else if (Upper == "MCM")
    Out = PlacementScheme::MCM;
  else if (Upper == "AI")
    Out = PlacementScheme::AI;
  else
    return false;
  return true;
}

const char *nascent::placementSchemeNames() {
  return "NI, CS, LNI, SE, LI, LLS, ALL, MCM, AI";
}

const char *nascent::placementSchemeName(PlacementScheme S) {
  switch (S) {
  case PlacementScheme::NI:
    return "NI";
  case PlacementScheme::CS:
    return "CS";
  case PlacementScheme::LNI:
    return "LNI";
  case PlacementScheme::SE:
    return "SE";
  case PlacementScheme::LI:
    return "LI";
  case PlacementScheme::LLS:
    return "LLS";
  case PlacementScheme::ALL:
    return "ALL";
  case PlacementScheme::MCM:
    return "MCM";
  case PlacementScheme::AI:
    return "AI";
  }
  return "?";
}

// Pin the struct layout to the X-macro: a new field changes the size and
// fails this assert until NASCENT_OPTIMIZER_STATS_FIELDS is extended.
static_assert(sizeof(OptimizerStats) ==
                  10 * sizeof(unsigned) + 2 * sizeof(size_t),
              "OptimizerStats and NASCENT_OPTIMIZER_STATS_FIELDS are out of "
              "sync: extend the field list when adding a field");

OptimizerStats &OptimizerStats::operator+=(const OptimizerStats &R) {
#define NASCENT_X(F) F += R.F;
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X
  return *this;
}

void OptimizerStats::print(std::ostream &OS) const {
#define NASCENT_X(F) OS << #F << ": " << F << "\n";
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X
}

void OptimizerStats::writeJson(obs::JsonWriter &W) const {
  W.beginObject();
#define NASCENT_X(F) W.kv(#F, static_cast<uint64_t>(F));
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X
  W.endObject();
}

std::string OptimizerStats::toJson() const {
  obs::JsonWriter W;
  writeJson(W);
  return W.take();
}

namespace {

unsigned countStaticChecks(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.isRangeCheck())
        ++N;
  return N;
}

/// Builds the CheckContexts (and loop forests) a scheme needs, consulting
/// the artifact cache when it can: the function content key is known, no
/// preheader facts are requested, and no insertion stage has mutated the
/// IR since the key was computed. Cached and organic builds are
/// telemetry-identical (see the seeded CheckContext constructor), so the
/// factory is free to pick either.
struct CtxFactory {
  Function &F;
  const RangeCheckOptions &Opts;
  obs::TraceCollector *TC;
  /// Content key of F's post-critical-edge-split IR; zero disables reuse.
  support::Hash128 FnKey;
  /// Set after any stage that may have mutated the IR.
  bool IRDirty = false;

  bool cacheUsable() const {
    return Opts.Cache && !FnKey.isZero() && !IRDirty;
  }

  std::unique_ptr<CheckContext> make(const std::vector<PreheaderFact> &Facts) {
    if (!cacheUsable() || !Facts.empty())
      return std::make_unique<CheckContext>(F, Opts.Implications, Facts, TC);
    support::Hash128 Key =
        support::mixHash(FnKey, static_cast<uint64_t>(Opts.Implications));
    if (auto Seed = Opts.Cache->findContextSeed(Key))
      return std::make_unique<CheckContext>(F, Opts.Implications, *Seed, TC);
    auto Ctx = std::make_unique<CheckContext>(
        F, Opts.Implications, std::vector<PreheaderFact>{}, TC);
    Opts.Cache->storeContextSeed(Key, Ctx->makeSeed());
    return Ctx;
  }

  /// A loop forest for F's current IR, shared through the cache when
  /// possible. \p Hold keeps the shared entry alive across the pass that
  /// uses it; returns null when the caller should let the pass build its
  /// own (cache off or IR already mutated).
  const LoopInfo *loops(std::shared_ptr<const cache::LoopArtifacts> &Hold) {
    if (!cacheUsable())
      return nullptr;
    Hold = Opts.Cache->findLoopArtifacts(FnKey);
    if (!Hold)
      Hold = Opts.Cache->storeLoopArtifacts(
          FnKey, std::make_shared<const cache::LoopArtifacts>(F));
    return &Hold->LI;
  }
};

} // namespace

OptimizerStats nascent::optimizeFunction(Function &F,
                                         const RangeCheckOptions &Opts,
                                         DiagnosticEngine &Diags) {
  OptimizerStats Stats;
  Stats.ChecksBefore = countStaticChecks(F);
  ++NumFunctionsOptimized;
  obs::StatRegistry::global()
      .counter(std::string("opt.scheme.") + placementSchemeName(Opts.Scheme),
               "functions optimized with this placement scheme")
      .inc();

  obs::RemarkCollector *RC = Opts.Remarks;
  obs::TraceCollector *TC = Opts.Trace;
  obs::ProvenanceRecorder *PV = Opts.Provenance;
  obs::TraceScope FnScope(TC, "fn " + F.name());

  // PRE-style insertion works on edges: normalise the CFG first.
  F.splitCriticalEdges();

  // The function content key is computed on the normalised IR, once per
  // (module snapshot, function) — the cache memoises it — and names every
  // analysis artifact below until an insertion stage mutates the IR.
  CtxFactory Contexts{F, Opts, TC,
                      Opts.Cache && !Opts.ModuleKey.isZero()
                          ? Opts.Cache->functionKey(Opts.ModuleKey, F)
                          : support::Hash128{},
                      /*IRDirty=*/false};
  std::shared_ptr<const cache::LoopArtifacts> LoopsHold;

  std::vector<PreheaderFact> Facts;

  // Step 1-3: build the universe/CIG and insert checks per scheme.
  switch (Opts.Scheme) {
  case PlacementScheme::NI:
    break;
  case PlacementScheme::CS: {
    auto Ctx = Contexts.make({});
    Stats.UniverseSize = Ctx->universe().size();
    Stats.NumFamilies = Ctx->universe().numFamilies();
    obs::TraceScope Scope(TC, "strengthen");
    Stats.ChecksStrengthened =
        runCheckStrengthening(F, *Ctx, RC, PV).ChecksStrengthened;
    // Strengthening rewrites check payloads in place and does nothing
    // else: zero rewrites means the IR is untouched and the elimination
    // context below may still reuse the pre-stage seed.
    if (Stats.ChecksStrengthened)
      Contexts.IRDirty = true;
    break;
  }
  case PlacementScheme::SE:
  case PlacementScheme::LNI: {
    auto Ctx = Contexts.make({});
    Stats.UniverseSize = Ctx->universe().size();
    Stats.NumFamilies = Ctx->universe().numFamilies();
    obs::TraceScope Scope(TC, "lcm-place");
    Stats.ChecksInserted =
        runLazyCodeMotion(F, *Ctx,
                          Opts.Scheme == PlacementScheme::SE
                              ? LCMPlacement::SafeEarliest
                              : LCMPlacement::LatestNotIsolated,
                          RC, PV)
            .ChecksInserted;
    // LCM's only IR mutations are the counted insertions.
    if (Stats.ChecksInserted)
      Contexts.IRDirty = true;
    break;
  }
  case PlacementScheme::LI:
  case PlacementScheme::LLS:
  case PlacementScheme::MCM: {
    auto Ctx = Contexts.make({});
    const LoopInfo *CachedLoops = Contexts.loops(LoopsHold);
    Stats.UniverseSize = Ctx->universe().size();
    Stats.NumFamilies = Ctx->universe().numFamilies();
    PreheaderOptions PO;
    PO.EnableLLS = Opts.Scheme != PlacementScheme::LI;
    PO.MarksteinRestriction = Opts.Scheme == PlacementScheme::MCM;
    obs::TraceScope Scope(TC, "preheader-insert");
    PreheaderStats PS =
        runPreheaderInsertion(F, *Ctx, PO, Facts, RC, PV, CachedLoops);
    Stats.CondChecksInserted = PS.CondChecksInserted;
    Stats.Rehoisted = PS.Rehoisted;
    // Preheader insertion mutates only through counted insertions and
    // rehoists (it never creates blocks; preheaders already exist after
    // critical-edge splitting), so a zero-work pass keeps the seed valid.
    if (PS.CondChecksInserted || PS.Rehoisted)
      Contexts.IRDirty = true;
    break;
  }
  case PlacementScheme::AI: {
    const LoopInfo *CachedLoops = Contexts.loops(LoopsHold);
    obs::TraceScope Scope(TC, "interval-analysis");
    IntervalStats IS =
        eliminateChecksByIntervals(F, Diags, RC, PV, CachedLoops);
    Stats.IntervalDeleted = IS.ChecksProvedRedundant;
    Stats.CompileTimeTraps += IS.ChecksProvedViolating;
    if (IS.ChecksProvedRedundant || IS.ChecksProvedViolating)
      Contexts.IRDirty = true;
    break;
  }
  case PlacementScheme::ALL: {
    {
      auto Ctx = Contexts.make({});
      const LoopInfo *CachedLoops = Contexts.loops(LoopsHold);
      Stats.UniverseSize = Ctx->universe().size();
      Stats.NumFamilies = Ctx->universe().numFamilies();
      PreheaderOptions PO;
      obs::TraceScope Scope(TC, "preheader-insert");
      PreheaderStats PS =
          runPreheaderInsertion(F, *Ctx, PO, Facts, RC, PV, CachedLoops);
      Stats.CondChecksInserted = PS.CondChecksInserted;
      Stats.Rehoisted = PS.Rehoisted;
      if (PS.CondChecksInserted || PS.Rehoisted)
        Contexts.IRDirty = true;
    }
    {
      // Safe-earliest over the LLS result; the fresh context carries the
      // preheader facts so LCM sees the hoisted availability.
      auto Ctx = Contexts.make(Facts);
      obs::TraceScope Scope(TC, "lcm-place");
      Stats.ChecksInserted =
          runLazyCodeMotion(F, *Ctx, LCMPlacement::SafeEarliest, RC, PV)
              .ChecksInserted;
      if (Stats.ChecksInserted)
        Contexts.IRDirty = true;
    }
    break;
  }
  }

  // Step 4: availability-based elimination on the post-insertion IR. The
  // universe statistics reported are those of this final context (for NI
  // no earlier context exists). The AI extension skips this on purpose:
  // the abstract-interpretation school it models performs no insertion
  // and no redundancy elimination (paper section 5).
  if (Opts.Scheme != PlacementScheme::AI) {
    auto Ctx = Contexts.make(Facts);
    Stats.UniverseSize = Ctx->universe().size();
    Stats.NumFamilies = Ctx->universe().numFamilies();
    obs::TraceScope Scope(TC, "eliminate");
    EliminationStats ES = eliminateRedundantChecks(F, *Ctx, RC, PV);
    Stats.ChecksDeleted = ES.ChecksDeleted;
  }

  // Step 5: compile-time checks. Accumulate (not assign) the trap count:
  // the AI scheme contributes interval-proved traps above, and remark
  // totals must reconcile with the stats.
  {
    obs::TraceScope Scope(TC, "fold-consts");
    EliminationStats ES = foldCompileTimeChecks(F, Diags, RC, PV);
    Stats.CompileTimeDeleted = ES.CompileTimeDeleted;
    Stats.CompileTimeTraps += ES.CompileTimeTraps;
    F.recomputePreds();
  }

  Stats.ChecksAfter = countStaticChecks(F);
  return Stats;
}

OptimizerStats nascent::optimizeModule(Module &M,
                                       const RangeCheckOptions &Opts,
                                       DiagnosticEngine &Diags) {
  OptimizerStats Total;
  for (Function *F : M.functions())
    Total += optimizeFunction(*F, Opts, Diags);
  return Total;
}

std::vector<std::string>
nascent::reconcileCheckProvenance(const obs::ProvenanceRecorder &PR,
                                  const OptimizerStats &Stats) {
  using obs::LifecycleKind;
  std::vector<std::string> Problems = PR.validate();

  auto Expect = [&](LifecycleKind K, const char *Pass, size_t Want,
                    const char *StatName) {
    size_t Got = PR.count(K, Pass ? Pass : "");
    if (Got != Want)
      Problems.push_back(
          std::string(obs::lifecycleKindName(K)) + "(" +
          (Pass ? Pass : "any pass") + ") events = " + std::to_string(Got) +
          " but OptimizerStats." + StatName + " = " + std::to_string(Want));
  };

  Expect(LifecycleKind::Inserted, "LazyCodeMotion", Stats.ChecksInserted,
         "ChecksInserted");
  Expect(LifecycleKind::Inserted, "PreheaderInsertion",
         Stats.CondChecksInserted, "CondChecksInserted");
  Expect(LifecycleKind::Moved, "PreheaderInsertion", Stats.Rehoisted,
         "Rehoisted");
  Expect(LifecycleKind::Strengthened, "CheckStrengthening",
         Stats.ChecksStrengthened, "ChecksStrengthened");
  Expect(LifecycleKind::SubsumedBy, "Elimination", Stats.ChecksDeleted,
         "ChecksDeleted");
  Expect(LifecycleKind::Eliminated, "Elimination", Stats.CompileTimeDeleted,
         "CompileTimeDeleted");
  Expect(LifecycleKind::Eliminated, "IntervalAnalysis",
         Stats.IntervalDeleted, "IntervalDeleted");
  Expect(LifecycleKind::Trapped, nullptr, Stats.CompileTimeTraps,
         "CompileTimeTraps");
  Expect(LifecycleKind::Residualized, nullptr, Stats.ChecksAfter,
         "ChecksAfter");
  return Problems;
}

#include "opt/RangeCheckOptimizer.h"

#include "opt/CheckContext.h"
#include "opt/CheckStrengthening.h"
#include "opt/Elimination.h"
#include "opt/LazyCodeMotion.h"
#include "opt/IntervalAnalysis.h"
#include "opt/PreheaderInsertion.h"

#include <cctype>

using namespace nascent;

bool nascent::parsePlacementScheme(const std::string &Name,
                                   PlacementScheme &Out) {
  std::string Upper = Name;
  for (char &C : Upper)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  if (Upper == "NI")
    Out = PlacementScheme::NI;
  else if (Upper == "CS")
    Out = PlacementScheme::CS;
  else if (Upper == "LNI")
    Out = PlacementScheme::LNI;
  else if (Upper == "SE")
    Out = PlacementScheme::SE;
  else if (Upper == "LI")
    Out = PlacementScheme::LI;
  else if (Upper == "LLS")
    Out = PlacementScheme::LLS;
  else if (Upper == "ALL")
    Out = PlacementScheme::ALL;
  else if (Upper == "MCM")
    Out = PlacementScheme::MCM;
  else if (Upper == "AI")
    Out = PlacementScheme::AI;
  else
    return false;
  return true;
}

const char *nascent::placementSchemeNames() {
  return "NI, CS, LNI, SE, LI, LLS, ALL, MCM, AI";
}

const char *nascent::placementSchemeName(PlacementScheme S) {
  switch (S) {
  case PlacementScheme::NI:
    return "NI";
  case PlacementScheme::CS:
    return "CS";
  case PlacementScheme::LNI:
    return "LNI";
  case PlacementScheme::SE:
    return "SE";
  case PlacementScheme::LI:
    return "LI";
  case PlacementScheme::LLS:
    return "LLS";
  case PlacementScheme::ALL:
    return "ALL";
  case PlacementScheme::MCM:
    return "MCM";
  case PlacementScheme::AI:
    return "AI";
  }
  return "?";
}

OptimizerStats &OptimizerStats::operator+=(const OptimizerStats &R) {
  ChecksBefore += R.ChecksBefore;
  ChecksAfter += R.ChecksAfter;
  ChecksDeleted += R.ChecksDeleted;
  ChecksInserted += R.ChecksInserted;
  CondChecksInserted += R.CondChecksInserted;
  ChecksStrengthened += R.ChecksStrengthened;
  Rehoisted += R.Rehoisted;
  CompileTimeDeleted += R.CompileTimeDeleted;
  CompileTimeTraps += R.CompileTimeTraps;
  IntervalDeleted += R.IntervalDeleted;
  UniverseSize += R.UniverseSize;
  NumFamilies += R.NumFamilies;
  return *this;
}

namespace {

unsigned countStaticChecks(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.isRangeCheck())
        ++N;
  return N;
}

} // namespace

OptimizerStats nascent::optimizeFunction(Function &F,
                                         const RangeCheckOptions &Opts,
                                         DiagnosticEngine &Diags) {
  OptimizerStats Stats;
  Stats.ChecksBefore = countStaticChecks(F);

  // PRE-style insertion works on edges: normalise the CFG first.
  F.splitCriticalEdges();

  std::vector<PreheaderFact> Facts;

  // Step 1-3: build the universe/CIG and insert checks per scheme.
  switch (Opts.Scheme) {
  case PlacementScheme::NI:
    break;
  case PlacementScheme::CS: {
    CheckContext Ctx(F, Opts.Implications);
    Stats.UniverseSize = Ctx.universe().size();
    Stats.NumFamilies = Ctx.universe().numFamilies();
    Stats.ChecksStrengthened = runCheckStrengthening(F, Ctx).ChecksStrengthened;
    break;
  }
  case PlacementScheme::SE:
  case PlacementScheme::LNI: {
    CheckContext Ctx(F, Opts.Implications);
    Stats.UniverseSize = Ctx.universe().size();
    Stats.NumFamilies = Ctx.universe().numFamilies();
    Stats.ChecksInserted =
        runLazyCodeMotion(F, Ctx,
                          Opts.Scheme == PlacementScheme::SE
                              ? LCMPlacement::SafeEarliest
                              : LCMPlacement::LatestNotIsolated)
            .ChecksInserted;
    break;
  }
  case PlacementScheme::LI:
  case PlacementScheme::LLS:
  case PlacementScheme::MCM: {
    CheckContext Ctx(F, Opts.Implications);
    Stats.UniverseSize = Ctx.universe().size();
    Stats.NumFamilies = Ctx.universe().numFamilies();
    PreheaderOptions PO;
    PO.EnableLLS = Opts.Scheme != PlacementScheme::LI;
    PO.MarksteinRestriction = Opts.Scheme == PlacementScheme::MCM;
    PreheaderStats PS = runPreheaderInsertion(F, Ctx, PO, Facts);
    Stats.CondChecksInserted = PS.CondChecksInserted;
    Stats.Rehoisted = PS.Rehoisted;
    break;
  }
  case PlacementScheme::AI: {
    IntervalStats IS = eliminateChecksByIntervals(F, Diags);
    Stats.IntervalDeleted = IS.ChecksProvedRedundant;
    Stats.CompileTimeTraps += IS.ChecksProvedViolating;
    break;
  }
  case PlacementScheme::ALL: {
    {
      CheckContext Ctx(F, Opts.Implications);
      Stats.UniverseSize = Ctx.universe().size();
      Stats.NumFamilies = Ctx.universe().numFamilies();
      PreheaderOptions PO;
      PreheaderStats PS = runPreheaderInsertion(F, Ctx, PO, Facts);
      Stats.CondChecksInserted = PS.CondChecksInserted;
      Stats.Rehoisted = PS.Rehoisted;
    }
    {
      // Safe-earliest over the LLS result; the fresh context carries the
      // preheader facts so LCM sees the hoisted availability.
      CheckContext Ctx(F, Opts.Implications, Facts);
      Stats.ChecksInserted =
          runLazyCodeMotion(F, Ctx, LCMPlacement::SafeEarliest)
              .ChecksInserted;
    }
    break;
  }
  }

  // Step 4: availability-based elimination on the post-insertion IR. The
  // universe statistics reported are those of this final context (for NI
  // no earlier context exists). The AI extension skips this on purpose:
  // the abstract-interpretation school it models performs no insertion
  // and no redundancy elimination (paper section 5).
  if (Opts.Scheme != PlacementScheme::AI) {
    CheckContext Ctx(F, Opts.Implications, Facts);
    Stats.UniverseSize = Ctx.universe().size();
    Stats.NumFamilies = Ctx.universe().numFamilies();
    EliminationStats ES = eliminateRedundantChecks(F, Ctx);
    Stats.ChecksDeleted = ES.ChecksDeleted;
  }

  // Step 5: compile-time checks.
  {
    EliminationStats ES = foldCompileTimeChecks(F, Diags);
    Stats.CompileTimeDeleted = ES.CompileTimeDeleted;
    Stats.CompileTimeTraps = ES.CompileTimeTraps;
    F.recomputePreds();
  }

  Stats.ChecksAfter = countStaticChecks(F);
  return Stats;
}

OptimizerStats nascent::optimizeModule(Module &M,
                                       const RangeCheckOptions &Opts,
                                       DiagnosticEngine &Diags) {
  OptimizerStats Total;
  for (Function *F : M.functions())
    Total += optimizeFunction(*F, Opts, Diags);
  return Total;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Value-range (interval) analysis and compile-time check elimination in
/// the style of the abstract-interpretation school the paper contrasts
/// itself with (section 5: Cousot & Halbwachs, Harrison, the Karlsruhe
/// and Alsys Ada compilers). These algorithms "take advantage only of
/// completely redundant checks ... their main weakness is that they do
/// not attempt to reduce the run time overhead of checks which cannot be
/// evaluated at compile time" -- implementing them makes that contrast
/// measurable (scheme AI, bench/ablation_interval).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_INTERVALANALYSIS_H
#define NASCENT_OPT_INTERVALANALYSIS_H

#include "ir/Function.h"
#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <limits>

namespace nascent {

class LoopInfo;

/// A (possibly unbounded) integer interval [Lo, Hi].
struct Interval {
  static constexpr int64_t NegInf = std::numeric_limits<int64_t>::min();
  static constexpr int64_t PosInf = std::numeric_limits<int64_t>::max();

  int64_t Lo = NegInf;
  int64_t Hi = PosInf;

  static Interval top() { return {NegInf, PosInf}; }
  static Interval constant(int64_t C) { return {C, C}; }

  bool isTop() const { return Lo == NegInf && Hi == PosInf; }
  bool boundedBelow() const { return Lo != NegInf; }
  bool boundedAbove() const { return Hi != PosInf; }

  /// Union hull.
  Interval hull(const Interval &O) const {
    return {Lo < O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
  }

  friend bool operator==(const Interval &A, const Interval &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Interval &A, const Interval &B) {
    return !(A == B);
  }

  /// Saturating arithmetic on interval endpoints.
  static int64_t satAdd(int64_t A, int64_t B);
  static int64_t satMul(int64_t A, int64_t B);

  Interval add(const Interval &O) const;
  Interval sub(const Interval &O) const;
  Interval negate() const;
  Interval mulConst(int64_t C) const;
  Interval minWith(const Interval &O) const;
  Interval maxWith(const Interval &O) const;
  Interval absValue() const;
};

/// Statistics of one interval-elimination run.
struct IntervalStats {
  unsigned ChecksProvedRedundant = 0; ///< deleted: always pass
  unsigned ChecksProvedViolating = 0; ///< replaced by TRAP: always fail
  unsigned ChecksUnknown = 0;         ///< left in place
};

/// Verdict of the interval analysis for one instruction position.
enum class IntervalVerdict : uint8_t {
  NotACheck,    ///< not a plain Check, or the block is unreachable
  Unknown,      ///< a check the ranges cannot decide
  AlwaysPasses, ///< a check proved redundant on every execution reaching it
  AlwaysFails,  ///< a check proved violating on every execution reaching it
};

/// Flow-sensitive verdicts for every plain Check of one function, indexed
/// by (block id, instruction index) of the analysed (unmutated) IR.
struct IntervalCheckClassification {
  std::vector<std::vector<IntervalVerdict>> PerInst;

  IntervalVerdict at(BlockID B, size_t Idx) const {
    if (B >= PerInst.size() || Idx >= PerInst[B].size())
      return IntervalVerdict::NotACheck;
    return PerInst[B][Idx];
  }
};

/// Runs the interval analysis over \p F without mutating it and classifies
/// every plain Check instruction. Predecessor lists must be current. The
/// trap-safety auditor uses this to certify interval-discharged deletions
/// and compile-time traps independently of the optimizer's own run.
/// \p CachedLoops, when given, is a loop forest already computed for this
/// exact IR (shared by the artifact cache); otherwise one is built.
IntervalCheckClassification
classifyChecksByIntervals(const Function &F,
                          const LoopInfo *CachedLoops = nullptr);

/// Runs the interval analysis over \p F and deletes every check the
/// value ranges prove redundant; checks proved to always fail become
/// TRAP terminators and are reported into \p Diags. The analysis uses
/// do-loop metadata to bound index variables inside their loops.
/// IntervalEliminated / CompileTimeTrap remarks go to \p Remarks when
/// given; Eliminated / Trapped lifecycle events (the Trap inherits the
/// check's tag) go to \p Prov.
IntervalStats
eliminateChecksByIntervals(Function &F, DiagnosticEngine &Diags,
                           obs::RemarkCollector *Remarks = nullptr,
                           obs::ProvenanceRecorder *Prov = nullptr,
                           const LoopInfo *CachedLoops = nullptr);

} // namespace nascent

#endif // NASCENT_OPT_INTERVALANALYSIS_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The range-check optimizer: the paper's five-step algorithm with its
/// seven check-placement schemes (section 3.3 / 4.2) and the implication
/// ablation modes (section 4.4). This is the primary public entry point
/// of the library.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_RANGECHECKOPTIMIZER_H
#define NASCENT_OPT_RANGECHECKOPTIMIZER_H

#include "ir/Function.h"
#include "checks/CheckImplicationGraph.h"
#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "obs/Trace.h"
#include "support/Diagnostics.h"
#include "support/Hash.h"

#include <ostream>
#include <string>

namespace nascent {

namespace cache {
class ArtifactCache;
}

/// Check placement schemes, exactly the paper's seven.
enum class PlacementScheme {
  NI,  ///< redundancy elimination, no insertion
  CS,  ///< check strengthening only
  LNI, ///< latest-not-isolated PRE placement
  SE,  ///< safe-earliest PRE placement
  LI,  ///< preheader insertion of loop-invariant checks
  LLS, ///< preheader insertion with loop-limit substitution
  ALL, ///< LLS followed by SE
  /// Extension (not one of the paper's seven): the restricted preheader
  /// scheme of Markstein, Cocke, and Markstein (1982), which the paper
  /// proposes comparing against as future work -- only simple checks in
  /// articulation blocks of loop bodies are hoisted.
  MCM,
  /// Extension: compile-time-only elimination via value-range (interval)
  /// analysis, standing in for the abstract-interpretation school the
  /// paper contrasts with in section 5 (Cousot/Harrison/Ada compilers).
  /// No checks are moved or inserted; only statically discharged.
  AI,
};

/// Parses/prints scheme names ("NI", "CS", ...). Parsing is
/// case-insensitive; returns false on unknown names.
bool parsePlacementScheme(const std::string &Name, PlacementScheme &Out);
const char *placementSchemeName(PlacementScheme S);

/// Comma-separated list of every valid scheme name, for error messages.
const char *placementSchemeNames();

/// Optimizer configuration.
struct RangeCheckOptions {
  PlacementScheme Scheme = PlacementScheme::LLS;
  /// Which implications between checks may be exploited; None gives the
  /// paper's primed variants (NI', SE'), CrossFamilyOnly gives LLS'.
  ImplicationMode Implications = ImplicationMode::All;

  /// When set (and enabled), every pass emits one structured remark per
  /// per-check decision; remark totals reconcile with OptimizerStats.
  obs::RemarkCollector *Remarks = nullptr;
  /// When set (and enabled), optimizer stages record trace spans.
  obs::TraceCollector *Trace = nullptr;
  /// When set (and enabled), every transformation site appends lifecycle
  /// events keyed by check tag; terminal totals reconcile with the stats
  /// (see reconcileCheckProvenance).
  obs::ProvenanceRecorder *Provenance = nullptr;

  /// When both are set, the optimizer consults the artifact cache for
  /// analysis results (CheckContext seeds, dominator/loop forests) keyed
  /// under ModuleKey — the frontend key of the module being optimized —
  /// and stores what it computes for the next identical compile
  /// (docs/caching.md). Telemetry is byte-identical with or without it.
  cache::ArtifactCache *Cache = nullptr;
  support::Hash128 ModuleKey;
};

/// X-macro over every field of OptimizerStats, in declaration order.
/// operator+=, print(), and toJson() are generated from this list, and a
/// static_assert in RangeCheckOptimizer.cpp pins the struct size so a new
/// field cannot be added without extending the list.
#define NASCENT_OPTIMIZER_STATS_FIELDS(X)                                      \
  X(ChecksBefore)                                                              \
  X(ChecksAfter)                                                               \
  X(ChecksDeleted)                                                             \
  X(ChecksInserted)                                                            \
  X(CondChecksInserted)                                                        \
  X(ChecksStrengthened)                                                        \
  X(Rehoisted)                                                                 \
  X(CompileTimeDeleted)                                                        \
  X(CompileTimeTraps)                                                          \
  X(IntervalDeleted)                                                           \
  X(UniverseSize)                                                              \
  X(NumFamilies)

/// Aggregate statistics of one optimizer run.
struct OptimizerStats {
  unsigned ChecksBefore = 0;
  unsigned ChecksAfter = 0; ///< static checks remaining (incl. cond checks)
  unsigned ChecksDeleted = 0;
  unsigned ChecksInserted = 0; ///< LCM-inserted plain checks
  unsigned CondChecksInserted = 0;
  unsigned ChecksStrengthened = 0;
  unsigned Rehoisted = 0;
  unsigned CompileTimeDeleted = 0;
  unsigned CompileTimeTraps = 0;
  unsigned IntervalDeleted = 0; ///< AI scheme: proved redundant by ranges
  size_t UniverseSize = 0;
  size_t NumFamilies = 0;

  OptimizerStats &operator+=(const OptimizerStats &R);

  /// One "<field>: <value>" line per field (all fields, zero or not).
  void print(std::ostream &OS) const;

  /// One flat JSON object with every field ({"ChecksBefore":N,...}).
  void writeJson(obs::JsonWriter &W) const;
  std::string toJson() const;
};

/// Optimizes the range checks of one function in place.
OptimizerStats optimizeFunction(Function &F, const RangeCheckOptions &Opts,
                                DiagnosticEngine &Diags);

/// Optimizes every function of \p M.
OptimizerStats optimizeModule(Module &M, const RangeCheckOptions &Opts,
                              DiagnosticEngine &Diags);

/// Cross-checks a provenance record against the optimizer statistics of
/// the same compilation: per-pass lifecycle-event totals must equal the
/// corresponding stats fields (LazyCodeMotion insertions == ChecksInserted,
/// Elimination subsumptions == ChecksDeleted, Residualized == ChecksAfter,
/// and so on), and the record itself must validate (every lifecycle closed
/// in a terminal state, no dangling witness tags). Returns one diagnostic
/// string per violation; empty means the record reconciles exactly.
std::vector<std::string>
reconcileCheckProvenance(const obs::ProvenanceRecorder &PR,
                         const OptimizerStats &Stats);

} // namespace nascent

#endif // NASCENT_OPT_RANGECHECKOPTIMIZER_H

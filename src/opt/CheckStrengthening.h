//===----------------------------------------------------------------------===//
///
/// \file
/// Check strengthening (Gupta; paper section 3.3): each check is replaced
/// by the strongest check of its family that is anticipatable at its
/// program point. The stronger check subsumes the original and makes
/// later family members redundant — the paper's Figure 1(b) to 1(c)
/// transformation.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_CHECKSTRENGTHENING_H
#define NASCENT_OPT_CHECKSTRENGTHENING_H

#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "opt/CheckContext.h"

namespace nascent {

/// Statistics of one strengthening run.
struct StrengtheningStats {
  unsigned ChecksStrengthened = 0;
};

/// Replaces checks in \p F by their strongest anticipatable same-family
/// member, in place. One Strengthened remark per replacement goes to
/// \p Remarks when given, and one Strengthened lifecycle event (the check
/// keeps its tag; the event's edge carries the pre-rewrite form) to
/// \p Prov.
StrengtheningStats runCheckStrengthening(Function &F,
                                         const CheckContext &Ctx,
                                         obs::RemarkCollector *Remarks = nullptr,
                                         obs::ProvenanceRecorder *Prov = nullptr);

} // namespace nascent

#endif // NASCENT_OPT_CHECKSTRENGTHENING_H

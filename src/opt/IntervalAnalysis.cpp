#include "opt/IntervalAnalysis.h"

#include "analysis/CFGUtils.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "obs/StatRegistry.h"

#include <optional>
#include <vector>

using namespace nascent;

NASCENT_STAT(NumIntervalDeleted, "opt.interval.deleted",
             "checks proved redundant by value-range analysis");
NASCENT_STAT(NumIntervalTraps, "opt.interval.traps",
             "checks proved violating by value-range analysis");

int64_t Interval::satAdd(int64_t A, int64_t B) {
  if (A == NegInf || B == NegInf)
    return NegInf;
  if (A == PosInf || B == PosInf)
    return PosInf;
  __int128 R = static_cast<__int128>(A) + B;
  if (R <= NegInf)
    return NegInf;
  if (R >= PosInf)
    return PosInf;
  return static_cast<int64_t>(R);
}

int64_t Interval::satMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  bool AInf = A == NegInf || A == PosInf;
  bool BInf = B == NegInf || B == PosInf;
  if (AInf || BInf) {
    bool Neg = (A < 0) != (B < 0);
    return Neg ? NegInf : PosInf;
  }
  __int128 R = static_cast<__int128>(A) * B;
  if (R <= NegInf)
    return NegInf;
  if (R >= PosInf)
    return PosInf;
  return static_cast<int64_t>(R);
}

Interval Interval::add(const Interval &O) const {
  return {satAdd(Lo, O.Lo), satAdd(Hi, O.Hi)};
}

Interval Interval::sub(const Interval &O) const {
  return add(O.negate());
}

Interval Interval::negate() const {
  auto Neg = [](int64_t V) {
    if (V == NegInf)
      return PosInf;
    if (V == PosInf)
      return NegInf;
    return -V;
  };
  return {Neg(Hi), Neg(Lo)};
}

Interval Interval::mulConst(int64_t C) const {
  if (C == 0)
    return constant(0);
  int64_t A = satMul(Lo, C);
  int64_t B = satMul(Hi, C);
  return C > 0 ? Interval{A, B} : Interval{B, A};
}

Interval Interval::minWith(const Interval &O) const {
  return {Lo < O.Lo ? Lo : O.Lo, Hi < O.Hi ? Hi : O.Hi};
}

Interval Interval::maxWith(const Interval &O) const {
  return {Lo > O.Lo ? Lo : O.Lo, Hi > O.Hi ? Hi : O.Hi};
}

Interval Interval::absValue() const {
  if (Lo >= 0)
    return *this;
  if (Hi <= 0)
    return negate();
  Interval N = negate();
  int64_t M = Hi > N.Hi ? Hi : N.Hi;
  return {0, M};
}

namespace {

/// The per-program-point abstract state: one interval per integer scalar.
using State = std::vector<Interval>;

class IntervalSolver {
public:
  explicit IntervalSolver(const Function &F) : F(F) {
    NumSyms = F.symbols().size();
  }

  void solve() {
    std::vector<BlockID> RPO = reversePostOrder(F);
    In.assign(F.numBlocks(), State());
    Out.assign(F.numBlocks(), State());
    Visits.assign(F.numBlocks(), 0);

    // Entry state: parameters unknown, everything else starts at zero
    // (mini-Fortran zero-initialises; see docs/LANGUAGE.md).
    State Entry(NumSyms, Interval::constant(0));
    for (SymbolID P : F.params())
      if (!F.symbols().get(P).isArray())
        Entry[P] = Interval::top();

    bool Changed = true;
    unsigned Rounds = 0;
    while (Changed && Rounds++ < 64) {
      Changed = false;
      for (BlockID B : RPO) {
        State NewIn;
        if (B == F.entryBlock()) {
          NewIn = Entry;
        } else {
          bool First = true;
          for (BlockID P : F.block(B)->preds()) {
            if (Out[P].empty())
              continue; // unprocessed predecessor: skip this round
            if (First) {
              NewIn = Out[P];
              First = false;
            } else {
              for (size_t S = 0; S != NumSyms; ++S)
                NewIn[S] = NewIn[S].hull(Out[P][S]);
            }
          }
          if (First)
            continue; // no processed predecessor yet
        }
        // Widen after a few visits so loop-carried updates terminate.
        if (!In[B].empty() && ++Visits[B] > 3) {
          for (size_t S = 0; S != NumSyms; ++S) {
            if (NewIn[S].Lo < In[B][S].Lo)
              NewIn[S].Lo = Interval::NegInf;
            if (NewIn[S].Hi > In[B][S].Hi)
              NewIn[S].Hi = Interval::PosInf;
          }
        }
        State NewOut = NewIn;
        for (const Instruction &I : F.block(B)->instructions())
          transfer(I, NewOut);
        if (NewIn != In[B] || NewOut != Out[B]) {
          In[B] = std::move(NewIn);
          Out[B] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  /// Interval of \p V under state \p S.
  Interval valueOf(const Value &V, const State &S) const {
    if (V.isIntConst() || V.isBoolConst())
      return Interval::constant(V.intValue());
    if (V.isSym()) {
      const Symbol &Sym = F.symbols().get(V.symbol());
      if (!Sym.isArray() && Sym.Type != ScalarType::Real)
        return S[V.symbol()];
    }
    return Interval::top();
  }

  void transfer(const Instruction &I, State &S) const {
    if (I.Dest == InvalidSymbol)
      return;
    const Symbol &D = F.symbols().get(I.Dest);
    if (D.isArray() || D.Type == ScalarType::Real)
      return;
    Interval R = Interval::top();
    switch (I.Op) {
    case Opcode::Copy:
      R = valueOf(I.Operands[0], S);
      break;
    case Opcode::Add:
      R = valueOf(I.Operands[0], S).add(valueOf(I.Operands[1], S));
      break;
    case Opcode::Sub:
      R = valueOf(I.Operands[0], S).sub(valueOf(I.Operands[1], S));
      break;
    case Opcode::Neg:
      R = valueOf(I.Operands[0], S).negate();
      break;
    case Opcode::Mul: {
      Interval A = valueOf(I.Operands[0], S);
      Interval B = valueOf(I.Operands[1], S);
      if (A.Lo == A.Hi)
        R = B.mulConst(A.Lo);
      else if (B.Lo == B.Hi)
        R = A.mulConst(B.Lo);
      break;
    }
    case Opcode::Min:
      R = valueOf(I.Operands[0], S).minWith(valueOf(I.Operands[1], S));
      break;
    case Opcode::Max:
      R = valueOf(I.Operands[0], S).maxWith(valueOf(I.Operands[1], S));
      break;
    case Opcode::Abs:
      R = valueOf(I.Operands[0], S).absValue();
      break;
    case Opcode::Mod: {
      // mod(x, c): result magnitude below |c|; nonnegative when x >= 0.
      Interval B = valueOf(I.Operands[1], S);
      if (B.Lo == B.Hi && B.Lo != 0) {
        int64_t C = B.Lo < 0 ? -B.Lo : B.Lo;
        Interval A = valueOf(I.Operands[0], S);
        R = (A.Lo >= 0) ? Interval{0, C - 1} : Interval{-(C - 1), C - 1};
      }
      break;
    }
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Not:
      R = Interval{0, 1};
      break;
    default:
      break; // Load, Call, RealToInt, ...: unknown
    }
    S[I.Dest] = R;
  }

  const Function &F;
  size_t NumSyms = 0;
  std::vector<State> In, Out;
  std::vector<unsigned> Visits;
};

} // namespace

IntervalCheckClassification
nascent::classifyChecksByIntervals(const Function &F,
                                   const LoopInfo *CachedLoops) {
  IntervalCheckClassification C;
  IntervalSolver Solver(F);
  Solver.solve();

  // Loop-index refinement: inside loop L the do index lies within the
  // hull of its bound intervals at the preheader (for either step sign).
  std::optional<DominatorTree> OwnDT;
  std::optional<LoopInfo> OwnLI;
  if (!CachedLoops) {
    OwnDT.emplace(F);
    OwnLI.emplace(F, *OwnDT);
    CachedLoops = &*OwnLI;
  }
  const LoopInfo &LI = *CachedLoops;
  auto RefinedIndex = [&](BlockID B, SymbolID Sym) -> Interval {
    for (const Loop *L = LI.loopFor(B); L; L = L->Parent) {
      if (L->DoLoopIndex < 0)
        continue;
      const DoLoopInfo &DL = F.doLoops()[static_cast<size_t>(L->DoLoopIndex)];
      if (DL.IndexVar != Sym || Solver.Out[DL.Preheader].empty())
        continue;
      const State &PH = Solver.Out[DL.Preheader];
      auto EvalLin = [&](const LinearExpr &E) {
        Interval R = Interval::constant(E.constantPart());
        for (const auto &[S, Coef] : E.terms())
          R = R.add(PH[S].mulConst(Coef));
        return R;
      };
      Interval Lo = EvalLin(DL.LowerBound);
      Interval Hi = EvalLin(DL.UpperBound);
      // For step > 0 the index stays in [lo, hi] inside the body; for
      // step < 0 in [hi, lo]. Use the hull to cover both.
      return Interval{Lo.Lo < Hi.Lo ? Lo.Lo : Hi.Lo,
                      Lo.Hi > Hi.Hi ? Lo.Hi : Hi.Hi};
    }
    return Interval::top();
  };

  C.PerInst.resize(F.numBlocks());
  for (const auto &BB : F) {
    BlockID B = BB->id();
    C.PerInst[B].assign(BB->size(), IntervalVerdict::NotACheck);
    if (Solver.In[B].empty())
      continue; // unreachable
    State S = Solver.In[B];
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      if (I.Op != Opcode::Check) {
        Solver.transfer(I, S);
        continue;
      }
      // Evaluate the range-expression's interval at this point.
      Interval E = Interval::constant(0);
      for (const auto &[Sym, Coeff] : I.Check.expr().terms()) {
        Interval V = S[Sym];
        Interval Refined = RefinedIndex(B, Sym);
        // Intersect (both are sound over-approximations).
        Interval Tight{V.Lo > Refined.Lo ? V.Lo : Refined.Lo,
                       V.Hi < Refined.Hi ? V.Hi : Refined.Hi};
        E = E.add(Tight.mulConst(Coeff));
      }
      if (E.boundedAbove() && E.Hi <= I.Check.bound())
        C.PerInst[B][Idx] = IntervalVerdict::AlwaysPasses;
      else if (E.boundedBelow() && E.Lo > I.Check.bound())
        C.PerInst[B][Idx] = IntervalVerdict::AlwaysFails;
      else
        C.PerInst[B][Idx] = IntervalVerdict::Unknown;
    }
  }
  return C;
}

IntervalStats nascent::eliminateChecksByIntervals(Function &F,
                                                  DiagnosticEngine &Diags,
                                                  obs::RemarkCollector *Remarks,
                                                  obs::ProvenanceRecorder *Prov,
                                                  const LoopInfo *CachedLoops) {
  IntervalStats Stats;
  F.recomputePreds();
  IntervalCheckClassification C = classifyChecksByIntervals(F, CachedLoops);
  bool WantProv = Prov && Prov->enabled();

  for (auto &BB : F) {
    BlockID B = BB->id();
    auto &Insts = BB->instructions();
    size_t NumOrig = Insts.size();
    size_t Cur = 0;
    for (size_t OIdx = 0; OIdx != NumOrig; ++OIdx) {
      switch (C.at(B, OIdx)) {
      case IntervalVerdict::AlwaysPasses: {
        if (Remarks && Remarks->enabled()) {
          const Instruction &I = Insts[Cur];
          Remarks->emit(obs::makeCheckRemark(
              obs::RemarkKind::IntervalEliminated, "IntervalAnalysis", F,
              *BB, I.Check, I.Origin,
              "value ranges prove the check passes on every execution "
              "reaching it"));
        }
        if (WantProv)
          Prov->record(obs::makeLifecycleEvent(
              obs::LifecycleKind::Eliminated, "IntervalAnalysis", F, *BB,
              Insts[Cur],
              "value ranges prove the check passes on every execution "
              "reaching it"));
        Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Cur));
        ++Stats.ChecksProvedRedundant;
        ++NumIntervalDeleted;
        continue;
      }
      case IntervalVerdict::AlwaysFails: {
        const Instruction &I = Insts[Cur];
        Diags.warning(I.Origin.Loc,
                      "array range violation proved by value-range "
                      "analysis" +
                          (I.Origin.ArrayName.empty()
                               ? std::string()
                               : " (array " + I.Origin.ArrayName + ")"));
        if (Remarks && Remarks->enabled())
          Remarks->emit(obs::makeCheckRemark(
              obs::RemarkKind::CompileTimeTrap, "IntervalAnalysis", F, *BB,
              I.Check, I.Origin,
              "value ranges prove the check fails on every execution "
              "reaching it; replaced by a trap"));
        if (WantProv) {
          Prov->record(obs::makeLifecycleEvent(
              obs::LifecycleKind::Trapped, "IntervalAnalysis", F, *BB, I,
              "value ranges prove the check fails on every execution "
              "reaching it; replaced by a trap"));
          // Checks in the truncated tail close under "Unreachable", as in
          // foldCompileTimeChecks.
          for (size_t T = Cur + 1; T < Insts.size(); ++T)
            if (Insts[T].isRangeCheck() && Insts[T].Tag != NoCheckTag)
              Prov->record(obs::makeLifecycleEvent(
                  obs::LifecycleKind::Eliminated, "Unreachable", F, *BB,
                  Insts[T],
                  "unreachable: a compile-time trap truncated the block"));
        }
        Instruction Trap;
        Trap.Op = Opcode::Trap;
        Trap.Origin = I.Origin;
        Trap.Tag = I.Tag;
        Insts.resize(Cur);
        Insts.push_back(std::move(Trap));
        ++Stats.ChecksProvedViolating;
        ++NumIntervalTraps;
        break;
      }
      case IntervalVerdict::Unknown:
        ++Stats.ChecksUnknown;
        ++Cur;
        continue;
      case IntervalVerdict::NotACheck:
        ++Cur;
        continue;
      }
      break; // block truncated at a proved violation
    }
  }
  F.recomputePreds();
  return Stats;
}

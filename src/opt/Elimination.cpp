#include "opt/Elimination.h"

using namespace nascent;

EliminationStats
nascent::eliminateRedundantChecks(Function &F, const CheckContext &Ctx) {
  EliminationStats Stats;
  if (Ctx.universe().size() == 0)
    return Stats;

  F.recomputePreds();
  DataflowResult Avail = Ctx.solveAvailability();

  for (auto &BB : F) {
    BlockID B = BB->id();
    DenseBitVector Cur = Avail.In[B];
    Cur |= Ctx.genInBits(B);

    std::vector<size_t> ToDelete;
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      Ctx.applyKill(I, Cur);
      if (I.Op == Opcode::Check) {
        CheckID C = Ctx.idOf(B, Idx);
        if (C != InvalidCheck && Cur.test(C)) {
          ToDelete.push_back(Idx);
          continue; // a deleted check generates nothing
        }
      }
      Ctx.applyAvailGen(B, Idx, I, Cur);
    }
    for (auto It = ToDelete.rbegin(); It != ToDelete.rend(); ++It) {
      BB->instructions().erase(BB->instructions().begin() +
                               static_cast<ptrdiff_t>(*It));
      ++Stats.ChecksDeleted;
    }
  }
  return Stats;
}

EliminationStats
nascent::foldCompileTimeChecks(Function &F, DiagnosticEngine &Diags) {
  EliminationStats Stats;
  for (auto &BB : F) {
    auto &Insts = BB->instructions();
    for (size_t Idx = 0; Idx < Insts.size();) {
      Instruction &I = Insts[Idx];
      if (I.Op == Opcode::Check) {
        if (!I.Check.isCompileTimeConstant()) {
          ++Idx;
          continue;
        }
        if (I.Check.evaluatesToTrue()) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          continue;
        }
        // Always fails: report and replace with a TRAP terminator; the
        // rest of the block is unreachable.
        Diags.warning(I.Origin.Loc,
                      "array range violation detected at compile time" +
                          (I.Origin.ArrayName.empty()
                               ? std::string()
                               : " (array " + I.Origin.ArrayName + ")"));
        Instruction Trap;
        Trap.Op = Opcode::Trap;
        Trap.Origin = I.Origin;
        Insts.resize(Idx);
        Insts.push_back(std::move(Trap));
        ++Stats.CompileTimeTraps;
        break; // block is now terminated
      }
      if (I.Op == Opcode::CondCheck) {
        // Fold constant guards.
        bool GuardFalse = false;
        for (size_t G = 0; G < I.Guards.size();) {
          if (!I.Guards[G].isCompileTimeConstant()) {
            ++G;
            continue;
          }
          if (I.Guards[G].evaluatesToTrue()) {
            I.Guards.erase(I.Guards.begin() + static_cast<ptrdiff_t>(G));
            ++Stats.GuardsFolded;
          } else {
            GuardFalse = true;
            break;
          }
        }
        if (GuardFalse) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          continue;
        }
        if (I.Check.isCompileTimeConstant() && I.Check.evaluatesToTrue()) {
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          continue;
        }
        if (I.Guards.empty()) {
          if (I.Check.isCompileTimeConstant()) {
            // Unconditional and always failing.
            Diags.warning(I.Origin.Loc,
                          "array range violation detected at compile time" +
                              (I.Origin.ArrayName.empty()
                                   ? std::string()
                                   : " (array " + I.Origin.ArrayName + ")"));
            Instruction Trap;
            Trap.Op = Opcode::Trap;
            Trap.Origin = I.Origin;
            Insts.resize(Idx);
            Insts.push_back(std::move(Trap));
            ++Stats.CompileTimeTraps;
            break;
          }
          // All guards folded away: demote to a plain check.
          I.Op = Opcode::Check;
        }
        ++Idx;
        continue;
      }
      ++Idx;
    }
  }
  return Stats;
}

#include "opt/Elimination.h"

#include "obs/StatRegistry.h"

using namespace nascent;

NASCENT_STAT(NumAvailDeleted, "opt.elim.deleted",
             "checks deleted as redundant by availability");
NASCENT_STAT(NumConstDeleted, "opt.fold.deleted",
             "compile-time-constant checks deleted");
NASCENT_STAT(NumConstTraps, "opt.fold.traps",
             "compile-time-constant checks turned into traps");

namespace {

/// Names the fact that made an available check deletable, for the remark
/// stream: the three possible sources are block-entry availability, a
/// preheader entry fact, and an earlier check in the same block.
std::string availJustification(const CheckContext &Ctx,
                               const DataflowResult &Avail, BlockID B,
                               CheckID C) {
  if (Avail.In[B].test(C))
    return "an as-strong check is available on every path into the block";
  if (Ctx.genInBits(B).test(C))
    return "implied by a conditional check hoisted to the loop preheader";
  return "covered by an as-strong check earlier in the block";
}

} // namespace

EliminationStats
nascent::eliminateRedundantChecks(Function &F, const CheckContext &Ctx,
                                  obs::RemarkCollector *Remarks,
                                  obs::ProvenanceRecorder *Prov) {
  EliminationStats Stats;
  if (Ctx.universe().size() == 0)
    return Stats;

  F.recomputePreds();
  DataflowResult Avail = Ctx.solveAvailability();

  bool WantProv = Prov && Prov->enabled();
  // Last surviving in-block check providing each universe member's
  // availability; the witness of "covered earlier in the block" events.
  std::vector<const Instruction *> Provider;

  for (auto &BB : F) {
    BlockID B = BB->id();
    DenseBitVector Cur = Avail.In[B];
    Cur |= Ctx.genInBits(B);
    if (WantProv)
      Provider.assign(Ctx.universe().size(), nullptr);

    std::vector<size_t> ToDelete;
    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      const Instruction &I = BB->instructions()[Idx];
      Ctx.applyKill(I, Cur);
      if (I.Op == Opcode::Check) {
        CheckID C = Ctx.idOf(B, Idx);
        if (C != InvalidCheck && Cur.test(C)) {
          ToDelete.push_back(Idx);
          std::string Why = availJustification(Ctx, Avail, B, C);
          if (Remarks && Remarks->enabled())
            Remarks->emit(obs::makeCheckRemark(
                obs::RemarkKind::Eliminated, "Elimination", F, *BB, I.Check,
                I.Origin, Why));
          if (WantProv) {
            obs::LifecycleEvent E = obs::makeLifecycleEvent(
                obs::LifecycleKind::SubsumedBy, "Elimination", F, *BB, I,
                Why);
            // Witness attribution mirrors the justification priority:
            // all-paths availability has no single witness; a preheader
            // fact names the hoisted conditional; otherwise an earlier
            // check in this block covers it.
            if (!Avail.In[B].test(C)) {
              if (Ctx.genInBits(B).test(C)) {
                E.OtherTag = Ctx.preheaderWitness(B, C);
              } else if (const Instruction *W = Provider[C]) {
                E.OtherTag = W->Tag;
                E.Edge = W->Check.str(F.symbols());
              }
            }
            Prov->record(std::move(E));
          }
          continue; // a deleted check generates nothing
        }
      }
      Ctx.applyAvailGen(B, Idx, I, Cur);
      if (WantProv && I.Op == Opcode::Check) {
        CheckID C = Ctx.idOf(B, Idx);
        if (C != InvalidCheck)
          Ctx.weakerClosure(C).forEachSetBit(
              [&](size_t Bit) { Provider[Bit] = &I; });
      }
    }
    for (auto It = ToDelete.rbegin(); It != ToDelete.rend(); ++It) {
      BB->instructions().erase(BB->instructions().begin() +
                               static_cast<ptrdiff_t>(*It));
      ++Stats.ChecksDeleted;
      ++NumAvailDeleted;
    }
  }
  return Stats;
}

EliminationStats
nascent::foldCompileTimeChecks(Function &F, DiagnosticEngine &Diags,
                               obs::RemarkCollector *Remarks,
                               obs::ProvenanceRecorder *Prov) {
  EliminationStats Stats;
  auto Emit = [&](obs::RemarkKind Kind, const BasicBlock &BB,
                  const Instruction &I, std::string Justification) {
    if (Remarks && Remarks->enabled())
      Remarks->emit(obs::makeCheckRemark(Kind, "Elimination", F, BB, I.Check,
                                         I.Origin, std::move(Justification)));
  };
  auto Event = [&](obs::LifecycleKind Kind, const BasicBlock &BB,
                   const Instruction &I, std::string Justification) {
    if (Prov && Prov->enabled())
      Prov->record(obs::makeLifecycleEvent(Kind, "Elimination", F, BB, I,
                                           std::move(Justification)));
  };
  // Checks swept away because a compile-time trap truncated their block:
  // not an optimizer decision about the check itself, so they close under
  // a pass of their own (reconciliation ignores it).
  auto CloseTail = [&](const BasicBlock &BB,
                       const std::vector<Instruction> &Insts, size_t From) {
    if (!Prov || !Prov->enabled())
      return;
    for (size_t T = From; T < Insts.size(); ++T)
      if (Insts[T].isRangeCheck() && Insts[T].Tag != NoCheckTag)
        Prov->record(obs::makeLifecycleEvent(
            obs::LifecycleKind::Eliminated, "Unreachable", F, BB, Insts[T],
            "unreachable: a compile-time trap truncated the block"));
  };

  for (auto &BB : F) {
    auto &Insts = BB->instructions();
    for (size_t Idx = 0; Idx < Insts.size();) {
      Instruction &I = Insts[Idx];
      if (I.Op == Opcode::Check) {
        if (!I.Check.isCompileTimeConstant()) {
          ++Idx;
          continue;
        }
        if (I.Check.evaluatesToTrue()) {
          Emit(obs::RemarkKind::CompileTimeDeleted, *BB, I,
               "constant check always passes");
          Event(obs::LifecycleKind::Eliminated, *BB, I,
                "constant check always passes");
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          ++NumConstDeleted;
          continue;
        }
        // Always fails: report and replace with a TRAP terminator; the
        // rest of the block is unreachable.
        Diags.warning(I.Origin.Loc,
                      "array range violation detected at compile time" +
                          (I.Origin.ArrayName.empty()
                               ? std::string()
                               : " (array " + I.Origin.ArrayName + ")"));
        Emit(obs::RemarkKind::CompileTimeTrap, *BB, I,
             "constant check always fails; replaced by a trap");
        Event(obs::LifecycleKind::Trapped, *BB, I,
              "constant check always fails; replaced by a trap");
        CloseTail(*BB, Insts, Idx + 1);
        Instruction Trap;
        Trap.Op = Opcode::Trap;
        Trap.Origin = I.Origin;
        Trap.Tag = I.Tag;
        Insts.resize(Idx);
        Insts.push_back(std::move(Trap));
        ++Stats.CompileTimeTraps;
        ++NumConstTraps;
        break; // block is now terminated
      }
      if (I.Op == Opcode::CondCheck) {
        // Fold constant guards.
        bool GuardFalse = false;
        for (size_t G = 0; G < I.Guards.size();) {
          if (!I.Guards[G].isCompileTimeConstant()) {
            ++G;
            continue;
          }
          if (I.Guards[G].evaluatesToTrue()) {
            I.Guards.erase(I.Guards.begin() + static_cast<ptrdiff_t>(G));
            ++Stats.GuardsFolded;
          } else {
            GuardFalse = true;
            break;
          }
        }
        if (GuardFalse) {
          Emit(obs::RemarkKind::CompileTimeDeleted, *BB, I,
               "conditional check guarded by a constant-false guard can "
               "never fire");
          Event(obs::LifecycleKind::Eliminated, *BB, I,
                "conditional check guarded by a constant-false guard can "
                "never fire");
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          ++NumConstDeleted;
          continue;
        }
        if (I.Check.isCompileTimeConstant() && I.Check.evaluatesToTrue()) {
          Emit(obs::RemarkKind::CompileTimeDeleted, *BB, I,
               "constant conditional check always passes");
          Event(obs::LifecycleKind::Eliminated, *BB, I,
                "constant conditional check always passes");
          Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Idx));
          ++Stats.CompileTimeDeleted;
          ++NumConstDeleted;
          continue;
        }
        if (I.Guards.empty()) {
          if (I.Check.isCompileTimeConstant()) {
            // Unconditional and always failing.
            Diags.warning(I.Origin.Loc,
                          "array range violation detected at compile time" +
                              (I.Origin.ArrayName.empty()
                                   ? std::string()
                                   : " (array " + I.Origin.ArrayName + ")"));
            Emit(obs::RemarkKind::CompileTimeTrap, *BB, I,
                 "conditional check with all guards folded always fails; "
                 "replaced by a trap");
            Event(obs::LifecycleKind::Trapped, *BB, I,
                  "conditional check with all guards folded always fails; "
                  "replaced by a trap");
            CloseTail(*BB, Insts, Idx + 1);
            Instruction Trap;
            Trap.Op = Opcode::Trap;
            Trap.Origin = I.Origin;
            Trap.Tag = I.Tag;
            Insts.resize(Idx);
            Insts.push_back(std::move(Trap));
            ++Stats.CompileTimeTraps;
            ++NumConstTraps;
            break;
          }
          // All guards folded away: demote to a plain check.
          I.Op = Opcode::Check;
        }
        ++Idx;
        continue;
      }
      ++Idx;
    }
  }
  return Stats;
}

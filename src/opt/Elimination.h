//===----------------------------------------------------------------------===//
///
/// \file
/// The elimination stages of the optimizer (paper steps 4 and 5):
/// deleting checks that are available at their program point, and folding
/// compile-time-constant checks (true: deleted; false: replaced by a TRAP
/// reported to the programmer).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_ELIMINATION_H
#define NASCENT_OPT_ELIMINATION_H

#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "opt/CheckContext.h"
#include "support/Diagnostics.h"

namespace nascent {

/// Statistics of one elimination run.
struct EliminationStats {
  unsigned ChecksDeleted = 0;       ///< redundant by availability
  unsigned CompileTimeDeleted = 0;  ///< constant checks that always pass
  unsigned CompileTimeTraps = 0;    ///< constant checks that always fail
  unsigned GuardsFolded = 0;        ///< constant guards simplified away
};

/// Deletes every plain check that some as-strong-as check makes available
/// at its program point. \p Ctx must describe the current IR (including
/// any facts from preheader insertion). One Eliminated remark per deleted
/// check goes to \p Remarks when given; one terminal SubsumedBy lifecycle
/// event per deleted check goes to \p Prov, citing the witness check tag
/// when a single witness is determinable (an earlier check in the block,
/// or the preheader conditional behind an entry fact).
EliminationStats eliminateRedundantChecks(Function &F,
                                          const CheckContext &Ctx,
                                          obs::RemarkCollector *Remarks = nullptr,
                                          obs::ProvenanceRecorder *Prov = nullptr);

/// Folds compile-time-constant checks and guards. Always-failing plain
/// checks become TRAP terminators (truncating the rest of the block) and
/// are reported into \p Diags as warnings. Deletions and traps emit
/// remarks into \p Remarks and Eliminated / Trapped lifecycle events into
/// \p Prov when given; the Trap inherits the folded check's tag, and
/// checks swept away by block truncation get Eliminated events under the
/// pass name "Unreachable".
EliminationStats foldCompileTimeChecks(Function &F, DiagnosticEngine &Diags,
                                       obs::RemarkCollector *Remarks = nullptr,
                                       obs::ProvenanceRecorder *Prov = nullptr);

} // namespace nascent

#endif // NASCENT_OPT_ELIMINATION_H

#include "opt/CheckStrengthening.h"

#include "obs/StatRegistry.h"

using namespace nascent;

NASCENT_STAT(NumStrengthened, "opt.cs.strengthened",
             "checks replaced by a stronger family member");

StrengtheningStats
nascent::runCheckStrengthening(Function &F, const CheckContext &Ctx,
                               obs::RemarkCollector *Remarks,
                               obs::ProvenanceRecorder *Prov) {
  StrengtheningStats Stats;
  const CheckUniverse &U = Ctx.universe();
  if (U.size() == 0)
    return Stats;

  F.recomputePreds();
  DataflowResult Antic = Ctx.solveAnticipatability();

  for (auto &BB : F) {
    BlockID B = BB->id();
    // Backward in-block scan: at each point, the current anticipatable
    // set; a check is replaced by the strongest anticipatable member of
    // its family at the point just before it.
    DenseBitVector Cur = Antic.Out[B];
    // Collect per-instruction "antic before" sets by scanning backward.
    std::vector<DenseBitVector> Before(BB->size());
    for (size_t Idx = BB->size(); Idx-- > 0;) {
      const Instruction &I = BB->instructions()[Idx];
      Ctx.applyKill(I, Cur);
      Ctx.applyAnticGen(B, Idx, I, Cur);
      Before[Idx] = Cur;
    }

    for (size_t Idx = 0; Idx != BB->size(); ++Idx) {
      Instruction &I = BB->instructions()[Idx];
      if (I.Op != Opcode::Check)
        continue;
      CheckID C = Ctx.idOf(B, Idx);
      if (C == InvalidCheck)
        continue;
      FamilyID Fam = U.familyOf(C);
      // Family members are in ascending bound order: the first
      // anticipatable member is the strongest.
      for (CheckID M : U.familyMembers(Fam)) {
        if (M == C)
          break; // reached the check itself: nothing stronger anticipated
        if (U.check(M).bound() >= U.check(C).bound())
          break;
        if (Before[Idx].test(M)) {
          int64_t OldBound = I.Check.bound();
          std::string OldStr;
          if (Prov && Prov->enabled())
            OldStr = I.Check.str(F.symbols());
          I.Check = U.check(M);
          ++Stats.ChecksStrengthened;
          ++NumStrengthened;
          std::string Why =
              "bound tightened from " + std::to_string(OldBound) + " to " +
              std::to_string(I.Check.bound()) +
              "; the stronger family member is anticipated here";
          if (Remarks && Remarks->enabled())
            Remarks->emit(obs::makeCheckRemark(
                obs::RemarkKind::Strengthened, "CheckStrengthening", F, *BB,
                I.Check, I.Origin, Why));
          if (Prov && Prov->enabled()) {
            obs::LifecycleEvent E = obs::makeLifecycleEvent(
                obs::LifecycleKind::Strengthened, "CheckStrengthening", F,
                *BB, I, Why);
            E.Edge = std::move(OldStr);
            Prov->record(std::move(E));
          }
          break;
        }
      }
    }
  }
  return Stats;
}

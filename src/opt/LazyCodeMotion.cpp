#include "opt/LazyCodeMotion.h"

#include "analysis/CFGUtils.h"
#include "obs/StatRegistry.h"

#include <algorithm>

using namespace nascent;

NASCENT_STAT(NumLcmInserted, "opt.lcm.inserted",
             "checks inserted by lazy-code-motion placement");

namespace {

/// A physical insertion point owned by one CFG edge (critical edges are
/// split, so each edge exclusively owns one of its endpoints).
struct InsertPoint {
  BlockID Block = InvalidBlock;
  bool AtStart = false; ///< start of Block vs. before its terminator
};

InsertPoint pointForEdge(const Function &F, BlockID From, BlockID To) {
  if (F.block(From)->successors().size() == 1)
    return {From, /*AtStart=*/false};
  assert(F.block(To)->preds().size() == 1 &&
         "critical edge not split before LCM");
  return {To, /*AtStart=*/true};
}

} // namespace

LCMStats nascent::runLazyCodeMotion(Function &F, const CheckContext &Ctx,
                                    LCMPlacement Placement,
                                    obs::RemarkCollector *Remarks,
                                    obs::ProvenanceRecorder *Prov) {
  LCMStats Stats;
  const CheckUniverse &U = Ctx.universe();
  size_t N = U.size();
  if (N == 0)
    return Stats;

  DataflowResult Avail = Ctx.solveAvailability();
  DataflowResult Antic = Ctx.solveAnticipatability();

  std::vector<bool> Reachable = reachableBlocks(F);

  // Enumerate edges between reachable blocks.
  struct Edge {
    BlockID From;
    BlockID To;
    DenseBitVector Earliest;
  };
  std::vector<Edge> Edges;
  for (const auto &BB : F) {
    if (!Reachable[BB->id()])
      continue;
    for (BlockID S : BB->successors()) {
      if (!Reachable[S])
        continue;
      Edges.push_back({BB->id(), S, DenseBitVector(N)});
    }
  }

  // EARLIEST(i,j) = ANTIN(j) & ~AVOUT(i) & (KILL(i) | ~ANTOUT(i)).
  for (Edge &E : Edges) {
    DenseBitVector Guard = Ctx.blockKill(E.From); // KILL(i)
    DenseBitVector NotAntOut(N, true);
    NotAntOut.andNot(Antic.Out[E.From]);
    Guard |= NotAntOut;

    E.Earliest = Antic.In[E.To];
    E.Earliest.andNot(Avail.Out[E.From]);
    E.Earliest &= Guard;
  }
  // Pseudo-edge into the entry: EARLIEST = ANTIN(entry) (nothing is
  // available before the entry).
  DenseBitVector EarliestEntry = Antic.In[F.entryBlock()];

  // Placement sets per edge (and for the entry).
  std::vector<DenseBitVector> InsertOnEdge(Edges.size());
  DenseBitVector InsertAtEntry(N);

  if (Placement == LCMPlacement::SafeEarliest) {
    for (size_t K = 0; K != Edges.size(); ++K)
      InsertOnEdge[K] = Edges[K].Earliest;
    InsertAtEntry = EarliestEntry;
  } else {
    // LATER fixpoint (Drechsler-Stadel):
    //   LATERIN(entry) = EARLIEST(pseudo-edge)
    //   LATERIN(j)     = AND over edges (i,j) of LATER(i,j)
    //   LATER(i,j)     = EARLIEST(i,j) | (LATERIN(i) & ~ANTLOC(i))
    //   INSERT(i,j)    = LATER(i,j) & ~LATERIN(j)
    std::vector<DenseBitVector> LaterIn(F.numBlocks(),
                                        DenseBitVector(N, true));
    LaterIn[F.entryBlock()] = EarliestEntry;
    std::vector<BlockID> RPO = reversePostOrder(F);

    // Group incoming edges per block.
    std::vector<std::vector<size_t>> InEdges(F.numBlocks());
    for (size_t K = 0; K != Edges.size(); ++K)
      InEdges[Edges[K].To].push_back(K);

    auto Later = [&](const Edge &E) {
      DenseBitVector L = LaterIn[E.From];
      L.andNot(Ctx.blockAnticGen(E.From));
      L |= E.Earliest;
      return L;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockID B : RPO) {
        if (B == F.entryBlock())
          continue;
        DenseBitVector NewIn(N, true);
        bool Any = false;
        for (size_t K : InEdges[B]) {
          DenseBitVector L = Later(Edges[K]);
          if (!Any) {
            NewIn = std::move(L);
            Any = true;
          } else {
            NewIn &= L;
          }
        }
        if (!Any)
          NewIn = DenseBitVector(N);
        if (NewIn != LaterIn[B]) {
          LaterIn[B] = std::move(NewIn);
          Changed = true;
        }
      }
    }

    for (size_t K = 0; K != Edges.size(); ++K) {
      InsertOnEdge[K] = Later(Edges[K]);
      InsertOnEdge[K].andNot(LaterIn[Edges[K].To]);
    }
    // At the entry, an original occurrence serves as the latest point when
    // it exists (DELETE logic); no node insertion is required.
  }

  // Materialise the insertions, keeping only the strongest check per
  // family at each point. StrongestOf is a dense FamilyID-indexed scratch
  // reset between calls via the touched list; emission stays in ascending
  // family order.
  std::vector<CheckID> StrongestOf(U.numFamilies(), InvalidCheck);
  std::vector<FamilyID> Touched;
  auto Reduce = [&](const DenseBitVector &Bits, std::vector<CheckID> &Out) {
    Touched.clear();
    Bits.forEachSetBit([&](size_t C) {
      CheckID Id = static_cast<CheckID>(C);
      FamilyID Fam = U.familyOf(Id);
      CheckID &Slot = StrongestOf[Fam];
      if (Slot == InvalidCheck) {
        Touched.push_back(Fam);
        Slot = Id;
      } else if (U.check(Id).bound() < U.check(Slot).bound()) {
        Slot = Id;
      }
    });
    std::sort(Touched.begin(), Touched.end());
    for (FamilyID Fam : Touched) {
      Out.push_back(StrongestOf[Fam]);
      StrongestOf[Fam] = InvalidCheck;
    }
  };

  // Group insertions by (block, position) so index shifts stay trivial;
  // dense BlockID-indexed buckets visited in ascending block order.
  std::vector<std::vector<CheckID>> AtStart(F.numBlocks());
  std::vector<std::vector<CheckID>> BeforeTerm(F.numBlocks());
  for (size_t K = 0; K != Edges.size(); ++K) {
    if (InsertOnEdge[K].none())
      continue;
    std::vector<CheckID> Ids;
    Reduce(InsertOnEdge[K], Ids);
    InsertPoint P = pointForEdge(F, Edges[K].From, Edges[K].To);
    auto &Dest = P.AtStart ? AtStart[P.Block] : BeforeTerm[P.Block];
    Dest.insert(Dest.end(), Ids.begin(), Ids.end());
  }
  if (InsertAtEntry.any()) {
    std::vector<CheckID> Ids;
    Reduce(InsertAtEntry, Ids);
    auto &Dest = AtStart[F.entryBlock()];
    Dest.insert(Dest.end(), Ids.begin(), Ids.end());
  }

  auto MakeCheck = [&](CheckID Id) {
    Instruction I;
    I.Op = Opcode::Check;
    I.Check = U.check(Id);
    I.Origin = Ctx.representativeOrigin(Id);
    I.Tag = F.allocateCheckTag();
    return I;
  };
  const char *PlacementName = Placement == LCMPlacement::SafeEarliest
                                  ? "safe-earliest"
                                  : "latest-not-isolated";
  auto Note = [&](BlockID B, const Instruction &I, const char *Where) {
    std::string Why = std::string("strongest family member placed at the ") +
                      PlacementName + " point (" + Where +
                      "); later occurrences become redundant";
    if (Remarks && Remarks->enabled())
      Remarks->emit(obs::makeCheckRemark(obs::RemarkKind::LcmInserted,
                                         "LazyCodeMotion", F, *F.block(B),
                                         I.Check, I.Origin, Why));
    if (Prov && Prov->enabled())
      Prov->record(obs::makeLifecycleEvent(obs::LifecycleKind::Inserted,
                                           "LazyCodeMotion", F, *F.block(B),
                                           I, std::move(Why)));
  };

  for (size_t B = 0; B != AtStart.size(); ++B) {
    size_t Pos = 0;
    for (CheckID Id : AtStart[B]) {
      Instruction I = MakeCheck(Id);
      Note(static_cast<BlockID>(B), I, "block start");
      F.block(static_cast<BlockID>(B))->insertAt(Pos++, std::move(I));
      ++Stats.ChecksInserted;
      ++NumLcmInserted;
    }
  }
  for (size_t B = 0; B != BeforeTerm.size(); ++B) {
    for (CheckID Id : BeforeTerm[B]) {
      Instruction I = MakeCheck(Id);
      Note(static_cast<BlockID>(B), I, "before terminator");
      F.block(static_cast<BlockID>(B))->insertBeforeTerminator(std::move(I));
      ++Stats.ChecksInserted;
      ++NumLcmInserted;
    }
  }
  return Stats;
}

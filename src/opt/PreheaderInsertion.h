//===----------------------------------------------------------------------===//
///
/// \file
/// Preheader insertion of conditional checks (paper section 3.3): checks
/// anticipatable at the beginning of a loop body whose range-expression is
/// loop-invariant (LI) or linear in the loop's index / basic variable
/// (LLS, via loop-limit substitution) are hoisted into the preheader as
/// conditional checks guarded by "the loop executes at least once".
///
/// Loops are processed inner to outer; conditional checks parked in inner
/// preheaders are re-hoisted outward (re-substituting linear expressions)
/// when that is provably safe, so checks land in the outermost loop
/// possible.
///
/// Soundness notes (each has a matching regression test):
///  - invariant hoisting relies only on anticipatability at the body entry
///    plus the entry guard, so it tolerates early returns in the body;
///  - loop-limit substitution additionally requires that every started
///    iteration finishes (no `return` and no while-loop inside the loop),
///    because the substituted check speaks for the extreme iteration;
///  - facts recorded for the elimination stage say "this check has been
///    performed at the loop body entry", never anything about the loop
///    exit, which keeps zero-trip loops sound.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OPT_PREHEADERINSERTION_H
#define NASCENT_OPT_PREHEADERINSERTION_H

#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "opt/CheckContext.h"

namespace nascent {

class LoopInfo;

/// Statistics of one preheader-insertion run.
struct PreheaderStats {
  unsigned CondChecksInserted = 0;
  unsigned Rehoisted = 0;
  unsigned Substituted = 0; ///< checks that used loop-limit substitution
};

/// Configuration of the preheader-insertion schemes.
struct PreheaderOptions {
  /// Apply loop-limit substitution to linear checks (LLS); otherwise only
  /// invariant checks hoist (LI).
  bool EnableLLS = true;

  /// Restrict candidates the way Markstein, Cocke, and Markstein's 1982
  /// algorithm does (the comparison the paper proposes as future work):
  /// only checks in articulation blocks of the loop body (blocks every
  /// completed iteration passes through) with *simple* range expressions
  /// (a single symbol with coefficient +-1) are considered.
  bool MarksteinRestriction = false;
};

/// Runs LI/LLS (or the restricted Markstein variant) over every do loop
/// of \p F. Facts for the later elimination stage are appended to
/// \p FactsOut, each carrying the lifecycle tag of the conditional check
/// that establishes it. CondInserted / Rehoisted remarks go to \p Remarks
/// when given. Lifecycle events into \p Prov: Inserted per fresh
/// conditional check, Moved per re-hoist (the check keeps its tag), and a
/// terminal SubsumedBy when a re-hoisted check merges into an identical
/// conditional already in the target preheader.
/// \p CachedLoops, when given, is a loop forest already computed for this
/// exact IR (the artifact cache shares one across identical compiles);
/// otherwise the pass builds its own.
PreheaderStats runPreheaderInsertion(Function &F, const CheckContext &Ctx,
                                     const PreheaderOptions &Opts,
                                     std::vector<PreheaderFact> &FactsOut,
                                     obs::RemarkCollector *Remarks = nullptr,
                                     obs::ProvenanceRecorder *Prov = nullptr,
                                     const LoopInfo *CachedLoops = nullptr);

} // namespace nascent

#endif // NASCENT_OPT_PREHEADERINSERTION_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Stable 128-bit content hashing for the artifact cache (src/cache).
/// FNV-1a style mixing over two independent 64-bit lanes, fed strictly as
/// little-endian byte sequences so a key computed on one machine (or one
/// build) names the same content on any other — the content-addressing
/// contract of docs/caching.md. Not cryptographic; collision resistance
/// only needs to beat the handful of distinct sources a sweep touches.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_HASH_H
#define NASCENT_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace nascent {
namespace support {

/// A 128-bit content key. Value-comparable and cheap to copy; Lo alone is
/// used as the bucket hash inside the cache's sharded maps.
struct Hash128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const Hash128 &A, const Hash128 &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Hash128 &A, const Hash128 &B) {
    return !(A == B);
  }
  friend bool operator<(const Hash128 &A, const Hash128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }

  /// True for a default-constructed (never-hashed) key.
  bool isZero() const { return Lo == 0 && Hi == 0; }

  /// 32 lowercase hex digits (Hi then Lo), for logs and tests.
  std::string hex() const;
};

/// Hash functor for unordered containers keyed by Hash128. The key is
/// itself a hash, so the low word is the bucket index.
struct Hash128Hasher {
  size_t operator()(const Hash128 &H) const {
    return static_cast<size_t>(H.Lo ^ (H.Hi * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental stable hasher. Every input is decomposed into bytes in
/// little-endian order before mixing, so the digest never depends on the
/// host byte order or on integer widths chosen by the compiler.
class StableHasher {
public:
  StableHasher();

  /// Mixes \p N raw bytes.
  void bytes(const void *Data, size_t N);

  /// Mixes a 64-bit value as 8 little-endian bytes. All integer overloads
  /// funnel here so signed/unsigned and width differences cannot change
  /// the digest.
  void u64(uint64_t V);
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void u32(uint32_t V) { u64(V); }
  void boolean(bool B) { u64(B ? 1 : 0); }

  /// Mixes a double through its IEEE-754 bit pattern.
  void f64(double V);

  /// Mixes a string as its length followed by its bytes (length-prefixed
  /// so concatenated fields cannot alias).
  void str(const std::string &S);

  /// The digest of everything mixed so far. Non-destructive.
  Hash128 digest() const;

private:
  uint64_t A, B;
  uint64_t Length = 0;
};

/// One-shot convenience: the digest of a byte string.
Hash128 hashBytes(const void *Data, size_t N);
Hash128 hashString(const std::string &S);

/// Mixes an extra 64-bit tag into an existing key (key derivation, e.g.
/// analysis key = mix(function content key, implication mode)).
Hash128 mixHash(const Hash128 &H, uint64_t Tag);

} // namespace support
} // namespace nascent

#endif // NASCENT_SUPPORT_HASH_H

//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a FIFO task queue. This is the only
/// place the codebase spawns threads; everything parallel (BatchCompiler,
/// the bench sweep driver) funnels through it so the threading contract
/// stays in one file: tasks may run in any order relative to each other,
/// a task's exception is captured in its future and rethrown at get(),
/// and destroying the pool drains the queue and joins every worker —
/// which is what makes a post-pool StatRegistry read exact (see
/// docs/parallelism.md).
///
/// A pool with zero workers runs every task inline at submit(), so serial
/// and parallel callers share one code path.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_THREADPOOL_H
#define NASCENT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nascent {

class ThreadPool {
public:
  /// Spawns \p NumWorkers workers. Zero means "no threads": submit()
  /// executes tasks inline and the futures are ready on return.
  explicit ThreadPool(unsigned NumWorkers);

  /// Drains the queue (every submitted task still runs), then joins all
  /// workers. Worker-thread stat shards flush during the join, so stats
  /// read after destruction include all pool work.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task and returns a future for its result. If the task
  /// throws, the exception surfaces from future::get().
  template <typename Fn>
  auto submit(Fn &&Task)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using ResultT = std::invoke_result_t<std::decay_t<Fn>>;
    auto Packaged = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(Task));
    std::future<ResultT> Result = Packaged->get_future();
    enqueue([Packaged] { (*Packaged)(); });
    return Result;
  }

  /// Blocks until every task submitted so far has finished. (Joining via
  /// the destructor is the only way to also get the stat-shard flush.)
  void wait();

  /// Worker count for a --jobs 0 / "auto" request: the hardware
  /// concurrency, at least 1.
  static unsigned defaultWorkers();

private:
  void enqueue(std::function<void()> Task);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable HasWork;
  std::condition_variable Drained;
  size_t NumRunning = 0;
  bool Stopping = false;
};

} // namespace nascent

#endif // NASCENT_SUPPORT_THREADPOOL_H

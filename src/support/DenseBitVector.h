//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, word-packed bit vector used by the data-flow solvers. The
/// range-check availability/anticipatability problems operate over the
/// "check universe", so set operations (and/or/and-not) must be fast.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_DENSEBITVECTOR_H
#define NASCENT_SUPPORT_DENSEBITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nascent {

/// Fixed-universe dense bit vector with word-parallel set algebra.
///
/// All binary operations require both operands to have the same size; this
/// is asserted, because the data-flow solvers always size their vectors to
/// the check universe.
class DenseBitVector {
public:
  DenseBitVector() = default;
  explicit DenseBitVector(size_t NumBits, bool InitialValue = false);

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p NumBits; new bits are cleared.
  void resize(size_t NumBits);

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  /// Sets every bit.
  void setAll();

  /// Clears every bit.
  void resetAll();

  /// Returns true if any bit is set.
  bool any() const;

  /// Returns true if no bit is set.
  bool none() const { return !any(); }

  /// Number of set bits.
  size_t count() const;

  /// Index of the first set bit at or after \p From, or npos if none.
  size_t findNext(size_t From) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

  DenseBitVector &operator|=(const DenseBitVector &RHS);
  DenseBitVector &operator&=(const DenseBitVector &RHS);

  /// this = this & ~RHS. Returns *this.
  DenseBitVector &andNot(const DenseBitVector &RHS);

  friend bool operator==(const DenseBitVector &A, const DenseBitVector &B);
  friend bool operator!=(const DenseBitVector &A, const DenseBitVector &B) {
    return !(A == B);
  }

  /// Iterates over set bits, calling \p Fn with each index in order.
  template <typename CallableT> void forEachSetBit(CallableT Fn) const {
    for (size_t I = findNext(0); I != npos; I = findNext(I + 1))
      Fn(I);
  }

  /// Cumulative count of word-parallel operations (|=, &=, andNot, count,
  /// ==) performed by every vector in the process. The telemetry layer
  /// (src/obs) surfaces this as the "support.bitvector.word_ops" gauge;
  /// support sits below obs in the layering, so the raw total lives here.
  ///
  /// The count is kept per thread (a plain thread-local add on the hot
  /// path) plus an atomic total retired from exited threads; wordOps()
  /// returns retired + the calling thread's live count. Like the stat
  /// shards in obs/StatRegistry, the total is exact once every writer
  /// thread has been joined (its shard flush calls retireThreadOps()).
  static uint64_t wordOps();

  /// The calling thread's live op count only — no retired total, so a
  /// before/after delta around a single-threaded computation is exact even
  /// while other threads exit (their shard flush mutates the retired
  /// total). The artifact cache measures build costs this way.
  static uint64_t threadWordOps();

  /// Folds the calling thread's live op count into the retired total and
  /// zeroes it. Called by the obs-layer thread-shard flush at thread exit.
  static void retireThreadOps();

  /// Adds \p N to the calling thread's live op count. The artifact cache
  /// (src/cache) uses this to replay the word-op cost of a data-flow build
  /// it satisfied from a stored seed, keeping the work-proxy gauge
  /// identical whether a compile recomputed its sets or reused them.
  static void creditThreadOps(uint64_t N);

private:
  /// Clears any bits in the last word beyond NumBits so that whole-word
  /// operations (count, ==) remain exact.
  void clearUnusedBits();

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace nascent

#endif // NASCENT_SUPPORT_DENSEBITVECTOR_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations for diagnostics emitted by the mini-Fortran front end
/// and the range-check optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_SOURCELOCATION_H
#define NASCENT_SUPPORT_SOURCELOCATION_H

#include <string>

namespace nascent {

/// A 1-based (line, column) position in a source buffer. Line 0 denotes an
/// unknown/synthesized location (e.g. compiler-inserted checks).
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  SourceLocation() = default;
  SourceLocation(unsigned Line, unsigned Column) : Line(Line), Column(Column) {}

  /// Returns true if this location refers to real source text.
  bool isValid() const { return Line != 0; }

  /// Renders the location as "line:col", or "<unknown>" when invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(const SourceLocation &A, const SourceLocation &B) {
    return !(A == B);
  }
};

} // namespace nascent

#endif // NASCENT_SUPPORT_SOURCELOCATION_H

#include "support/Diagnostics.h"

using namespace nascent;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + severityName(Severity) + ": " + Message;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

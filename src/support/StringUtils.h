//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers: printf-style formatting into std::string and a
/// fixed-width table renderer shared by the benchmark harnesses, which
/// print the paper's Tables 1-3.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_STRINGUTILS_H
#define NASCENT_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace nascent {

/// printf-style formatting that returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Left-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to width \p Width (no-op if already wider).
std::string padRight(const std::string &S, size_t Width);

/// Renders a table with column headers and rows as fixed-width text.
///
/// Column widths are derived from the widest cell in each column. The first
/// column is left-aligned, all others right-aligned, matching the layout of
/// the paper's tables.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; the row must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the header, a separator line, and all rows.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace nascent

#endif // NASCENT_SUPPORT_STRINGUTILS_H

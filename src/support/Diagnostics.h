//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the front end and the optimizer. The engine
/// accumulates diagnostics so that library clients (tests, drivers) can
/// inspect them without the library ever printing to stderr on its own.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUPPORT_DIAGNOSTICS_H
#define NASCENT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace nascent {

/// Severity of a single diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One diagnostic message with its location and severity.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders the diagnostic as "line:col: severity: message".
  std::string str() const;
};

/// Accumulates diagnostics produced while compiling one translation unit.
///
/// The engine never prints anything by itself; call \c render (or iterate
/// \c diagnostics) to surface messages to the user.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  /// Returns true if at least one error-severity diagnostic was reported.
  bool hasErrors() const { return NumErrors != 0; }

  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string render() const;

  /// Discards all accumulated diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace nascent

#endif // NASCENT_SUPPORT_DIAGNOSTICS_H

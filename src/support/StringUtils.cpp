#include "support/StringUtils.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace nascent;

std::string nascent::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string nascent::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string nascent::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Line += "  ";
      Line += (C == 0) ? padRight(Row[C], Widths[C]) : padLeft(Row[C], Widths[C]);
    }
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t Total = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    Total += Widths[C] + (C == 0 ? 0 : 2);
  Out += std::string(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

#include "support/DenseBitVector.h"

#include <atomic>
#include <bit>

using namespace nascent;

namespace {
/// The calling thread's word-parallel operation count; one increment per
/// call, not per word, so the hot solver loops pay a single thread-local
/// add. Retired into the process-wide atomic when the thread's stat
/// shard flushes (obs/StatRegistry calls retireThreadOps()).
thread_local uint64_t WordOpCount = 0;
std::atomic<uint64_t> RetiredWordOps{0};
} // namespace

uint64_t DenseBitVector::wordOps() {
  return RetiredWordOps.load(std::memory_order_relaxed) + WordOpCount;
}

void DenseBitVector::retireThreadOps() {
  RetiredWordOps.fetch_add(WordOpCount, std::memory_order_relaxed);
  WordOpCount = 0;
}

uint64_t DenseBitVector::threadWordOps() { return WordOpCount; }

void DenseBitVector::creditThreadOps(uint64_t N) { WordOpCount += N; }

DenseBitVector::DenseBitVector(size_t NumBits, bool InitialValue)
    : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {
  if (InitialValue)
    setAll();
}

void DenseBitVector::resize(size_t NewNumBits) {
  NumBits = NewNumBits;
  Words.resize((NewNumBits + 63) / 64, 0);
  clearUnusedBits();
}

void DenseBitVector::setAll() {
  for (uint64_t &W : Words)
    W = ~uint64_t(0);
  clearUnusedBits();
}

void DenseBitVector::resetAll() {
  for (uint64_t &W : Words)
    W = 0;
}

bool DenseBitVector::any() const {
  for (uint64_t W : Words)
    if (W != 0)
      return true;
  return false;
}

size_t DenseBitVector::count() const {
  ++WordOpCount;
  size_t N = 0;
  for (uint64_t W : Words)
    N += static_cast<size_t>(std::popcount(W));
  return N;
}

size_t DenseBitVector::findNext(size_t From) const {
  if (From >= NumBits)
    return npos;
  size_t WordIdx = From / 64;
  uint64_t W = Words[WordIdx] & (~uint64_t(0) << (From % 64));
  while (true) {
    if (W != 0) {
      size_t Bit = WordIdx * 64 + static_cast<size_t>(std::countr_zero(W));
      return Bit < NumBits ? Bit : npos;
    }
    if (++WordIdx == Words.size())
      return npos;
    W = Words[WordIdx];
  }
}

DenseBitVector &DenseBitVector::operator|=(const DenseBitVector &RHS) {
  ++WordOpCount;
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= RHS.Words[I];
  return *this;
}

DenseBitVector &DenseBitVector::operator&=(const DenseBitVector &RHS) {
  ++WordOpCount;
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= RHS.Words[I];
  return *this;
}

DenseBitVector &DenseBitVector::andNot(const DenseBitVector &RHS) {
  ++WordOpCount;
  assert(NumBits == RHS.NumBits && "bit vector size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~RHS.Words[I];
  return *this;
}

void DenseBitVector::clearUnusedBits() {
  if (NumBits % 64 != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
}

namespace nascent {

bool operator==(const DenseBitVector &A, const DenseBitVector &B) {
  ++WordOpCount;
  return A.NumBits == B.NumBits && A.Words == B.Words;
}

} // namespace nascent

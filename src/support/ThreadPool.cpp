#include "support/ThreadPool.h"

#include <algorithm>

using namespace nascent;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  if (Workers.empty()) {
    // Inline mode: the packaged_task wrapper still captures exceptions
    // into the future, so callers see identical semantics.
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    Queue.push_back(std::move(Task));
  }
  HasWork.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(Mu);
      // A stopping worker may only exit once no task is in flight
      // anywhere: thread exit flushes the worker's stat shard into the
      // registry's merged base, and a flush landing inside another job's
      // snapshot window would pollute that job's stat delta (the batch
      // determinism contract, docs/parallelism.md). So the whole pool
      // drains, then every worker exits — and flushes — together.
      HasWork.wait(L, [this] {
        return !Queue.empty() || (Stopping && NumRunning == 0);
      });
      if (Queue.empty())
        break; // Stopping, drained, and nothing still running.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++NumRunning;
    }
    Task();
    {
      std::lock_guard<std::mutex> L(Mu);
      --NumRunning;
      if (Queue.empty() && NumRunning == 0) {
        Drained.notify_all();
        HasWork.notify_all(); // release workers parked on the exit gate
      }
    }
  }
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> L(Mu);
  Drained.wait(L, [this] { return Queue.empty() && NumRunning == 0; });
}

unsigned ThreadPool::defaultWorkers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

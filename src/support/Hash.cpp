#include "support/Hash.h"

#include "support/StringUtils.h"

#include <cstring>

using namespace nascent;
using namespace nascent::support;

namespace {

// FNV-1a constants for the first lane; the second lane uses an
// independently seeded offset and a golden-ratio multiplier so the two
// 64-bit digests do not degenerate into one.
constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x00000100000001b3ull;
constexpr uint64_t Lane2Offset = 0x9ae16a3b2f90404full;
constexpr uint64_t Lane2Prime = 0x9e3779b97f4a7c15ull;

inline void mixByte(uint64_t &A, uint64_t &B, uint8_t Byte) {
  A = (A ^ Byte) * FnvPrime;
  B = (B ^ Byte) * Lane2Prime;
  B ^= B >> 29;
}

} // namespace

StableHasher::StableHasher() : A(FnvOffset), B(Lane2Offset) {}

void StableHasher::bytes(const void *Data, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != N; ++I)
    mixByte(A, B, P[I]);
  Length += N;
}

void StableHasher::u64(uint64_t V) {
  // Explicit little-endian decomposition: byte-order independent by
  // construction, no memcpy of host-order words.
  uint8_t Buf[8];
  for (int I = 0; I != 8; ++I)
    Buf[I] = static_cast<uint8_t>(V >> (8 * I));
  bytes(Buf, 8);
}

void StableHasher::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void StableHasher::str(const std::string &S) {
  u64(S.size());
  bytes(S.data(), S.size());
}

Hash128 StableHasher::digest() const {
  // Finalise copies so digest() can be called mid-stream: fold the length
  // in and avalanche each lane.
  uint64_t X = A, Y = B;
  uint64_t L = Length;
  auto Avalanche = [](uint64_t V) {
    V ^= V >> 33;
    V *= 0xff51afd7ed558ccdull;
    V ^= V >> 33;
    V *= 0xc4ceb9fe1a85ec53ull;
    V ^= V >> 33;
    return V;
  };
  X = Avalanche(X ^ L);
  Y = Avalanche(Y + (L * Lane2Prime));
  return Hash128{X, Y};
}

std::string Hash128::hex() const {
  return formatString("%016llx%016llx", static_cast<unsigned long long>(Hi),
                      static_cast<unsigned long long>(Lo));
}

Hash128 nascent::support::hashBytes(const void *Data, size_t N) {
  StableHasher H;
  H.bytes(Data, N);
  return H.digest();
}

Hash128 nascent::support::hashString(const std::string &S) {
  return hashBytes(S.data(), S.size());
}

Hash128 nascent::support::mixHash(const Hash128 &H, uint64_t Tag) {
  StableHasher M;
  M.u64(H.Lo);
  M.u64(H.Hi);
  M.u64(Tag);
  return M.digest();
}

#include "cbackend/CEmitter.h"

#include "support/StringUtils.h"

#include <cassert>
#include <map>
#include <set>

using namespace nascent;

namespace {

/// Global profile-counter layout: every check site, block, and array of
/// the module gets one slot in a static counter table, enumerated in
/// deterministic (function, block id, instruction index) order — the same
/// order obs::ExecutionProfile::attach uses, so the atexit dump lines and
/// the interpreter profile line up site for site.
struct ProfileTables {
  struct Site {
    std::string Func;
    BlockID Block;
    uint32_t Index;
    CheckTag Tag;
  };
  struct Block {
    std::string Func;
    BlockID Id;
    std::string Name;
  };
  struct Arr {
    std::string Func;
    std::string Name;
  };
  std::vector<Site> Sites;
  std::vector<Block> Blocks;
  std::vector<Arr> Arrays;

  /// Per-function lookup for the emitter's hot path.
  struct FnSlots {
    size_t BlockBase = 0;
    std::map<std::pair<BlockID, uint32_t>, size_t> SiteAt;
    std::map<SymbolID, size_t> ArrayAt;
  };
  std::map<std::string, FnSlots> ByFunc;

  static ProfileTables build(const Module &M) {
    ProfileTables T;
    for (const Function *F : M.functions()) {
      FnSlots &S = T.ByFunc[F->name()];
      S.BlockBase = T.Blocks.size();
      for (const auto &BB : *F)
        T.Blocks.push_back({F->name(), BB->id(), BB->name()});
      for (SymbolID Sym = 0; Sym != F->symbols().size(); ++Sym)
        if (F->symbols().get(Sym).isArray()) {
          S.ArrayAt[Sym] = T.Arrays.size();
          T.Arrays.push_back({F->name(), F->symbols().get(Sym).Name});
        }
      for (const auto &BB : *F) {
        const auto &Insts = BB->instructions();
        for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx)
          if (Insts[Idx].isRangeCheck()) {
            S.SiteAt[{BB->id(), Idx}] = T.Sites.size();
            T.Sites.push_back({F->name(), BB->id(), Idx, Insts[Idx].Tag});
          }
      }
    }
    return T;
  }
};

/// Per-function emission context.
class FunctionEmitter {
public:
  FunctionEmitter(const Module &M, const Function &F,
                  const ProfileTables *PT = nullptr)
      : M(M), F(F), PT(PT),
        Slots(PT ? &PT->ByFunc.at(F.name()) : nullptr) {}

  /// C-safe name of a symbol: user variables become v_<name>, temps keep
  /// a t<N> shape ("%t3" -> "t3"), arrays become a_<name>.
  std::string symName(SymbolID S) const {
    const Symbol &Sym = F.symbols().get(S);
    std::string Base;
    for (char C : Sym.Name)
      if (C != '%')
        Base += C;
    if (Sym.isArray())
      return "a_" + Base;
    if (Sym.Kind == SymbolKind::Temp)
      return Base; // "%t3" -> "t3", already unique
    return "v_" + Base;
  }

  static std::string cType(ScalarType T) {
    return T == ScalarType::Real ? "double" : "long long";
  }

  std::string operand(const Value &V) const {
    switch (V.kind()) {
    case Value::Kind::Sym:
      return symName(V.symbol());
    case Value::Kind::IntConst:
    case Value::Kind::BoolConst:
      return std::to_string(V.intValue()) + "LL";
    case Value::Kind::RealConst:
      return formatString("%.17g", V.realValue());
    case Value::Kind::None:
      break;
    }
    return "0";
  }

  /// Column-major flattened index expression for an access.
  std::string flatIndex(const Symbol &A,
                        const std::vector<Value> &Indices) const {
    std::string Out;
    int64_t Stride = 1;
    for (size_t D = 0; D != Indices.size(); ++D) {
      const ArrayDim &Dim = A.Shape.Dims[D];
      std::string Term = "(" + operand(Indices[D]) + " - " +
                         std::to_string(Dim.Lower) + "LL)";
      if (Stride != 1)
        Term += " * " + std::to_string(Stride) + "LL";
      if (!Out.empty())
        Out += " + ";
      Out += Term;
      Stride *= Dim.extent();
    }
    return Out.empty() ? "0" : Out;
  }

  std::string checkCond(const CheckExpr &C) const {
    std::string E;
    for (const auto &[Sym, Coeff] : C.expr().terms()) {
      if (!E.empty())
        E += " + ";
      E += std::to_string(Coeff) + "LL * " + symName(Sym);
    }
    if (E.empty())
      E = "0LL";
    return "(" + E + ") <= " + std::to_string(C.bound()) + "LL";
  }

  std::string signature() const {
    std::string Sig;
    if (F.resultType())
      Sig += cType(*F.resultType());
    else
      Sig += "void";
    Sig += " fn_" + F.name() + "(";
    bool First = true;
    for (SymbolID P : F.params()) {
      if (!First)
        Sig += ", ";
      First = false;
      const Symbol &S = F.symbols().get(P);
      if (S.isArray())
        Sig += cType(S.Type) + " *" + symName(P);
      else
        Sig += cType(S.Type) + " " + symName(P);
    }
    if (First)
      Sig += "void";
    Sig += ")";
    return Sig;
  }

  std::string emitBody() {
    std::string Out;
    // Local declarations (parameters are already in scope).
    std::set<SymbolID> Params(F.params().begin(), F.params().end());
    for (SymbolID S = 0; S != F.symbols().size(); ++S) {
      if (Params.count(S))
        continue;
      const Symbol &Sym = F.symbols().get(S);
      if (Sym.isArray()) {
        Out += "  " + cType(Sym.Type) + " " + symName(S) + "[" +
               std::to_string(Sym.Shape.elementCount()) + "] = {0};\n";
      } else {
        Out += "  " + cType(Sym.Type) + " " + symName(S) + " = 0;\n";
      }
    }
    Out += "  goto bb0;\n";
    for (const auto &BB : F) {
      Out += "bb" + std::to_string(BB->id()) + ": ;\n";
      if (Slots)
        Out += "  nck_count(&nck_blocks[" +
               std::to_string(Slots->BlockBase + BB->id()) + "]);\n";
      const auto &Insts = BB->instructions();
      for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx)
        Out += emitInstruction(Insts[Idx], BB->id(), Idx);
      if (!BB->hasTerminator())
        Out += "  return" +
               std::string(F.resultType() ? " 0" : "") + ";\n";
    }
    return Out;
  }

private:
  std::string destType(const Instruction &I) const {
    return cType(F.symbols().get(I.Dest).Type);
  }

  std::string binaryExpr(const Instruction &I) const {
    const std::string A = operand(I.Operands[0]);
    const std::string B = operand(I.Operands[1]);
    bool Real = F.symbols().get(I.Dest).Type == ScalarType::Real;
    switch (I.Op) {
    case Opcode::Add:
      return A + " + " + B;
    case Opcode::Sub:
      return A + " - " + B;
    case Opcode::Mul:
      return A + " * " + B;
    case Opcode::Div:
      if (Real)
        return "(" + B + " == 0.0 ? 0.0 : " + A + " / " + B + ")";
      return "nck_idiv(" + A + ", " + B + ")";
    case Opcode::Mod:
      return "nck_imod(" + A + ", " + B + ")";
    case Opcode::Min:
      return "(" + A + " < " + B + " ? " + A + " : " + B + ")";
    case Opcode::Max:
      return "(" + A + " > " + B + " ? " + A + " : " + B + ")";
    default:
      break;
    }
    return "0";
  }

  /// Comparison operands follow the operand types, not the (bool) dest.
  std::string cmpExpr(const Instruction &I) const {
    auto IsReal = [&](const Value &V) {
      if (V.isSym())
        return F.symbols().get(V.symbol()).Type == ScalarType::Real;
      return V.isRealConst();
    };
    std::string A = operand(I.Operands[0]);
    std::string B = operand(I.Operands[1]);
    if (IsReal(I.Operands[0]) || IsReal(I.Operands[1])) {
      A = "(double)" + A;
      B = "(double)" + B;
    }
    const char *Op = "==";
    switch (I.Op) {
    case Opcode::CmpEQ:
      Op = "==";
      break;
    case Opcode::CmpNE:
      Op = "!=";
      break;
    case Opcode::CmpLT:
      Op = "<";
      break;
    case Opcode::CmpLE:
      Op = "<=";
      break;
    case Opcode::CmpGT:
      Op = ">";
      break;
    case Opcode::CmpGE:
      Op = ">=";
      break;
    default:
      break;
    }
    return "(" + A + " " + Op + " " + B + ") ? 1 : 0";
  }

  std::string emitInstruction(const Instruction &I, BlockID Block,
                              uint32_t Idx) {
    std::string Out;
    auto Line = [&](const std::string &S) { Out += "  " + S + "\n"; };

    // Instrumentation mirrors the interpreter's counting exactly.
    if (I.isRangeCheck())
      Line("nck_checks++;" + std::string(I.Op == Opcode::CondCheck
                                             ? " nck_condchecks++;"
                                             : ""));
    else if (I.Op == Opcode::Load || I.Op == Opcode::Store)
      Line("nck_instrs += " + std::to_string(1 + 2 * I.Indices.size()) +
           ";");
    else
      Line("nck_instrs++;");

    // Profile counters: a site's hit counter bumps on every execution
    // (even when CondCheck guards are false, matching the interpreter's
    // noteCheck), the trap counter right before the trap exit.
    size_t SiteSlot = ~size_t(0);
    if (Slots && I.isRangeCheck()) {
      SiteSlot = Slots->SiteAt.at({Block, Idx});
      Line("nck_count(&nck_site_hits[" + std::to_string(SiteSlot) + "]);");
    }
    std::string TrapProfile =
        SiteSlot == ~size_t(0)
            ? std::string()
            : "nck_count(&nck_site_traps[" + std::to_string(SiteSlot) +
                  "]); ";

    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Min:
    case Opcode::Max:
      Line(symName(I.Dest) + " = " + binaryExpr(I) + ";");
      break;
    case Opcode::Neg:
      Line(symName(I.Dest) + " = -" + operand(I.Operands[0]) + ";");
      break;
    case Opcode::Abs: {
      std::string A = operand(I.Operands[0]);
      Line(symName(I.Dest) + " = (" + A + " < 0 ? -" + A + " : " + A +
           ");");
      break;
    }
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      Line(symName(I.Dest) + " = " + cmpExpr(I) + ";");
      break;
    case Opcode::And:
      Line(symName(I.Dest) + " = (" + operand(I.Operands[0]) +
           " != 0 && " + operand(I.Operands[1]) + " != 0) ? 1 : 0;");
      break;
    case Opcode::Or:
      Line(symName(I.Dest) + " = (" + operand(I.Operands[0]) +
           " != 0 || " + operand(I.Operands[1]) + " != 0) ? 1 : 0;");
      break;
    case Opcode::Not:
      Line(symName(I.Dest) + " = (" + operand(I.Operands[0]) +
           " == 0) ? 1 : 0;");
      break;
    case Opcode::Copy:
      Line(symName(I.Dest) + " = " + operand(I.Operands[0]) + ";");
      break;
    case Opcode::IntToReal:
      Line(symName(I.Dest) + " = (double)" + operand(I.Operands[0]) + ";");
      break;
    case Opcode::RealToInt:
      Line(symName(I.Dest) + " = (long long)" + operand(I.Operands[0]) +
           ";");
      break;
    case Opcode::Load: {
      const Symbol &A = F.symbols().get(I.Array);
      Line(symName(I.Dest) + " = " + symName(I.Array) + "[" +
           flatIndex(A, I.Indices) + "];");
      if (Slots)
        Line("nck_count(&nck_arr_loads[" +
             std::to_string(Slots->ArrayAt.at(I.Array)) + "]);");
      break;
    }
    case Opcode::Store: {
      const Symbol &A = F.symbols().get(I.Array);
      Line(symName(I.Array) + "[" + flatIndex(A, I.Indices) + "] = " +
           operand(I.Operands[0]) + ";");
      if (Slots)
        Line("nck_count(&nck_arr_stores[" +
             std::to_string(Slots->ArrayAt.at(I.Array)) + "]);");
      break;
    }
    case Opcode::Check:
      Line("if (!(" + checkCond(I.Check) + ")) { " + TrapProfile +
           "nck_trap(\"" +
           (I.Origin.ArrayName.empty() ? std::string("range check")
                                       : "array " + I.Origin.ArrayName) +
           "\"); }");
      break;
    case Opcode::CondCheck: {
      std::string Guards;
      for (const CheckExpr &G : I.Guards) {
        if (!Guards.empty())
          Guards += " && ";
        Guards += "(" + checkCond(G) + ")";
      }
      Line("if (" + Guards + ") { if (!(" + checkCond(I.Check) + ")) { " +
           TrapProfile + "nck_trap(\"" +
           (I.Origin.ArrayName.empty() ? std::string("range check")
                                       : "array " + I.Origin.ArrayName) +
           "\"); } }");
      break;
    }
    case Opcode::Trap:
      Line("nck_trap(\"compile-time detected violation\");");
      break;
    case Opcode::Br:
      Line("if (" + operand(I.Operands[0]) + " != 0) goto bb" +
           std::to_string(I.TrueTarget) + "; else goto bb" +
           std::to_string(I.FalseTarget) + ";");
      break;
    case Opcode::Jump:
      Line("goto bb" + std::to_string(I.TrueTarget) + ";");
      break;
    case Opcode::Ret:
      if (F.resultType())
        Line("return " +
             (I.Operands.empty() ? std::string("0")
                                 : operand(I.Operands[0])) +
             ";");
      else
        Line("return;");
      break;
    case Opcode::Call: {
      const Function *Callee = M.function(I.Callee);
      assert(Callee && "verified module");
      std::string CallStr = "fn_" + I.Callee + "(";
      for (size_t K = 0; K != I.Operands.size(); ++K) {
        if (K)
          CallStr += ", ";
        const Symbol &PS = Callee->symbols().get(Callee->params()[K]);
        if (PS.isArray())
          CallStr += symName(I.Operands[K].symbol());
        else if (PS.Type == ScalarType::Real)
          CallStr += "(double)" + operand(I.Operands[K]);
        else
          CallStr += "(long long)" + operand(I.Operands[K]);
      }
      CallStr += ")";
      if (I.Dest != InvalidSymbol)
        Line(symName(I.Dest) + " = " + CallStr + ";");
      else
        Line(CallStr + ";");
      break;
    }
    case Opcode::Print: {
      const Value &V = I.Operands[0];
      bool Real = V.isRealConst() ||
                  (V.isSym() && F.symbols().get(V.symbol()).Type ==
                                    ScalarType::Real);
      bool Bool = V.isBoolConst() ||
                  (V.isSym() && F.symbols().get(V.symbol()).Type ==
                                    ScalarType::Bool);
      if (Real)
        Line("printf(\"%.6g\\n\", (double)" + operand(V) + ");");
      else if (Bool)
        Line("printf(\"%s\\n\", " + operand(V) + " ? \"T\" : \"F\");");
      else
        Line("printf(\"%lld\\n\", (long long)" + operand(V) + ");");
      break;
    }
    }
    return Out;
  }

  const Module &M;
  const Function &F;
  const ProfileTables *PT = nullptr;
  const ProfileTables::FnSlots *Slots = nullptr;
};

/// The static counter tables, the saturating bump helper, and the atexit
/// dump. Every table has at least one slot so empty modules stay valid C.
std::string emitProfileRuntime(const ProfileTables &T) {
  auto Dim = [](size_t N) { return std::to_string(N ? N : 1); };
  std::string Out;
  Out += "/* Execution-profile counter tables: one slot per check site, "
         "block, and array. */\n";
  Out += "static unsigned long long nck_site_hits[" + Dim(T.Sites.size()) +
         "], nck_site_traps[" + Dim(T.Sites.size()) + "];\n";
  Out += "static unsigned long long nck_blocks[" + Dim(T.Blocks.size()) +
         "];\n";
  Out += "static unsigned long long nck_arr_loads[" +
         Dim(T.Arrays.size()) + "], nck_arr_stores[" +
         Dim(T.Arrays.size()) + "];\n\n";
  Out += "static void nck_count(unsigned long long *C) {\n"
         "  if (*C != 0xFFFFFFFFFFFFFFFFULL) ++*C; /* saturate, don't wrap "
         "*/\n}\n\n";
  Out += "static void nck_profile_dump(void) {\n";
  for (size_t I = 0; I != T.Sites.size(); ++I) {
    const ProfileTables::Site &S = T.Sites[I];
    Out += "  fprintf(stderr, \"[nascent-profsite] func=" + S.Func +
           " block=" + std::to_string(S.Block) +
           " index=" + std::to_string(S.Index) +
           " tag=" + std::to_string(S.Tag) +
           " hits=%llu traps=%llu\\n\", nck_site_hits[" +
           std::to_string(I) + "], nck_site_traps[" + std::to_string(I) +
           "]);\n";
  }
  for (size_t I = 0; I != T.Blocks.size(); ++I) {
    const ProfileTables::Block &B = T.Blocks[I];
    Out += "  fprintf(stderr, \"[nascent-profblock] func=" + B.Func +
           " block=" + std::to_string(B.Id) +
           " count=%llu\\n\", nck_blocks[" + std::to_string(I) + "]);\n";
  }
  for (size_t I = 0; I != T.Arrays.size(); ++I) {
    const ProfileTables::Arr &A = T.Arrays[I];
    Out += "  fprintf(stderr, \"[nascent-profarray] func=" + A.Func +
           " array=" + A.Name +
           " loads=%llu stores=%llu\\n\", nck_arr_loads[" +
           std::to_string(I) + "], nck_arr_stores[" + std::to_string(I) +
           "]);\n";
  }
  Out += "}\n\n";
  return Out;
}

} // namespace

std::string nascent::emitModuleToC(const Module &M,
                                   const CEmitOptions &Opts) {
  ProfileTables PT;
  if (Opts.Profile)
    PT = ProfileTables::build(M);
  std::string Out;
  Out += "/* Generated by nascent-rangecheck's instrumented-C back end. */\n";
  Out += "#include <stdio.h>\n#include <stdlib.h>\n\n";
  Out += "static unsigned long long nck_instrs = 0, nck_checks = 0, "
         "nck_condchecks = 0;\n\n";
  if (Opts.Profile)
    Out += emitProfileRuntime(PT);
  Out += "static void nck_report(void) {\n"
         "  fprintf(stderr, \"[nascent-counts] instrs=%llu checks=%llu "
         "condchecks=%llu\\n\",\n"
         "          nck_instrs, nck_checks, nck_condchecks);\n}\n\n";
  Out += "static void nck_trap(const char *What) {\n"
         "  fprintf(stderr, \"[nascent-trap] range check failed: %s\\n\", "
         "What);\n"
         "  nck_report();\n  exit(2);\n}\n\n";
  Out += "static long long nck_idiv(long long A, long long B) {\n"
         "  if (B == 0) { fprintf(stderr, \"[nascent-trap] division by "
         "zero\\n\"); exit(3); }\n  return A / B;\n}\n\n";
  Out += "static long long nck_imod(long long A, long long B) {\n"
         "  if (B == 0) { fprintf(stderr, \"[nascent-trap] mod by "
         "zero\\n\"); exit(3); }\n  return A % B;\n}\n\n";

  // Prototypes first (callees may appear in any order).
  for (const Function *F : M.functions()) {
    FunctionEmitter FE(M, *F);
    Out += "static " + FE.signature() + ";\n";
  }
  Out += "\n";

  for (const Function *F : M.functions()) {
    FunctionEmitter FE(M, *F, Opts.Profile ? &PT : nullptr);
    Out += "static " + FE.signature() + " {\n";
    Out += FE.emitBody();
    Out += "}\n\n";
  }

  Out += "int main(void) {\n";
  if (Opts.Profile)
    Out += "  atexit(nck_profile_dump); /* survives the trap exit */\n";
  Out += "  fn_" + M.entryName() + "();\n  nck_report();\n  return 0;\n}\n";
  return Out;
}

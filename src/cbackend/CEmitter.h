//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented-C back end: translates a Nascent IR module into one
/// self-contained C file whose execution counts dynamic instructions and
/// range checks exactly like the interpreter does. This mirrors the
/// paper's measurement methodology ("the C back-end of Nascent translates
/// Fortran programs into instrumented C programs which are then compiled
/// and executed ... to obtain the dynamic counts").
///
/// The emitted program prints the mini-Fortran `print` output to stdout,
/// one value per line, and a final counter line to stderr:
///
///   [nascent-counts] instrs=<N> checks=<N> condchecks=<N>
///
/// On a range-check failure it prints "[nascent-trap] <message>" to
/// stderr and exits with status 2.
///
/// With CEmitOptions::Profile the program additionally carries a static
/// counter table (saturating, like the interpreter's profile counters)
/// and an atexit dump that emits one stderr line per check site, block,
/// and array — the compiled-execution half of the obs::ExecutionProfile
/// parity contract (docs/profiling.md):
///
///   [nascent-profsite] func=<f> block=<b> index=<i> tag=<t> hits=<h> traps=<t>
///   [nascent-profblock] func=<f> block=<b> count=<c>
///   [nascent-profarray] func=<f> array=<a> loads=<l> stores=<s>
///
/// The dump is registered with atexit before the program runs, so the
/// counters survive a trap exit.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CBACKEND_CEMITTER_H
#define NASCENT_CBACKEND_CEMITTER_H

#include "ir/Function.h"

#include <string>

namespace nascent {

/// C back-end switches.
struct CEmitOptions {
  /// Emit the per-site/block/array profile counter table and atexit dump.
  bool Profile = false;
};

/// Translates \p M into a complete C translation unit.
std::string emitModuleToC(const Module &M, const CEmitOptions &Opts = {});

} // namespace nascent

#endif // NASCENT_CBACKEND_CEMITTER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented-C back end: translates a Nascent IR module into one
/// self-contained C file whose execution counts dynamic instructions and
/// range checks exactly like the interpreter does. This mirrors the
/// paper's measurement methodology ("the C back-end of Nascent translates
/// Fortran programs into instrumented C programs which are then compiled
/// and executed ... to obtain the dynamic counts").
///
/// The emitted program prints the mini-Fortran `print` output to stdout,
/// one value per line, and a final counter line to stderr:
///
///   [nascent-counts] instrs=<N> checks=<N> condchecks=<N>
///
/// On a range-check failure it prints "[nascent-trap] <message>" to
/// stderr and exits with status 2.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_CBACKEND_CEMITTER_H
#define NASCENT_CBACKEND_CEMITTER_H

#include "ir/Function.h"

#include <string>

namespace nascent {

/// Translates \p M into a complete C translation unit.
std::string emitModuleToC(const Module &M);

} // namespace nascent

#endif // NASCENT_CBACKEND_CEMITTER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-compiler pipeline: source text -> AST -> IR with naive range
/// checks -> (optional INX synthesis) -> range-check optimization. This
/// mirrors the Nascent pipeline used for the paper's experiments and is
/// what the benchmark harnesses and examples drive.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_DRIVER_PIPELINE_H
#define NASCENT_DRIVER_PIPELINE_H

#include "audit/AuditReport.h"
#include "frontend/Lowering.h"
#include "obs/Profile.h"
#include "obs/Provenance.h"
#include "obs/Remarks.h"
#include "obs/Trace.h"
#include "opt/RangeCheckOptimizer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace nascent {

/// Which kind of checks the optimizer works on (paper section 2.3):
/// program-expression checks or induction-expression checks.
enum class CheckSource {
  PRX,
  INX,
};

/// Pipeline configuration.
struct PipelineOptions {
  LoweringOptions Lowering;
  CheckSource Source = CheckSource::PRX;
  /// When false the pipeline stops after lowering (the naive baseline).
  bool Optimize = true;
  RangeCheckOptions Opt;
  /// Snapshot the pre-optimization IR and run the trap-safety auditor
  /// over the (original, optimized) pair; findings land in
  /// CompileResult::Audit and, as errors, in Diags.
  bool Audit = false;

  /// Content-addressed artifact caching (docs/caching.md). When enabled,
  /// the pipeline reuses a verified post-lowering module snapshot for a
  /// previously seen (source, lowering options, check source) key —
  /// skipping parse/sema/lower/verify — and threads the cache into the
  /// optimizer so analysis artifacts are shared too. All outputs (stats,
  /// remarks, provenance, profile, audit findings) are byte-identical
  /// with the cache on or off.
  struct CacheOptions {
    bool Enabled = false;
    /// The cache instance to share; null means the process-global one.
    cache::ArtifactCache *Cache = nullptr;
  } Cache;

  /// Telemetry switches. Phase timings (CompileResult::Phases) are always
  /// measured; these control the heavier trace/remark streams.
  struct TelemetryOptions {
    /// Record Chrome trace_event spans (pipeline phases plus optimizer
    /// sub-phases) into CompileResult::Trace.
    bool Trace = false;
    /// When non-empty, additionally write the trace JSON to this file at
    /// the end of compilation (implies Trace).
    std::string TracePath;
    /// Collect one structured remark per per-check optimizer decision
    /// into CompileResult::Remarks.
    bool Remarks = false;
    /// Optional ECMAScript regex restricting remarks to matching check
    /// families / array names (like LLVM's -Rpass=<regex>).
    std::string RemarkFilter;
    /// Record the full check-lifecycle provenance (one event stream per
    /// compilation, keyed by check tag) into CompileResult::Provenance.
    bool Provenance = false;
    /// Attach an execution profile (CompileResult::Profile) to the
    /// optimized module, ready for the interpreter to stream dynamic
    /// block/loop/access/check-site counts into.
    bool Profile = false;
  } Telemetry;
};

/// Result of one compilation.
struct CompileResult {
  bool Success = false;
  std::unique_ptr<Module> M;
  DiagnosticEngine Diags;
  OptimizerStats Stats;
  /// Trap-safety audit result; empty unless PipelineOptions::Audit.
  AuditReport Audit;

  /// Per-phase timing breakdown (parse, sema, lower, verify, optimize,
  /// ..., total), each phase measured on both the wall clock and the
  /// process CPU clock. Always populated, even on failed compiles.
  obs::PhaseTimings Phases;
  /// Trace spans; empty unless PipelineOptions::Telemetry enables them.
  obs::TraceCollector Trace;
  /// Optimization remarks; empty unless Telemetry.Remarks.
  obs::RemarkCollector Remarks;
  /// Check-lifecycle provenance; empty unless Telemetry.Provenance. Every
  /// check's event chain starts Inserted (lowering or an optimizer
  /// insertion) and ends in a terminal state; reconcileCheckProvenance
  /// cross-checks the record against Stats.
  obs::ProvenanceRecorder Provenance;
  /// Execution profile attached to the optimized module (zeroed skeleton
  /// of every residual block/loop/array/check site); empty unless
  /// Telemetry.Profile. Pass as InterpOptions::Profile when interpreting
  /// CompileResult::M to populate the dynamic counts.
  obs::ExecutionProfile Profile;

  /// Wall-clock seconds spent in the range-check optimization phase (the
  /// paper's "Range" column was measured on this clock).
  double optimizeWallSeconds() const { return Phases.wallOf("optimize"); }
  /// CPU seconds of the same phase.
  double optimizeCpuSeconds() const { return Phases.cpuOf("optimize"); }
  /// Wall-clock seconds for the whole pipeline (the "Nascent" column).
  double totalWallSeconds() const { return Phases.wallOf("total"); }
  /// CPU seconds for the whole pipeline.
  double totalCpuSeconds() const { return Phases.cpuOf("total"); }
};

/// Compiles \p Source with \p Opts. On front-end errors, Success is false
/// and Diags carries the messages.
CompileResult compileSource(const std::string &Source,
                            const PipelineOptions &Opts = {});

} // namespace nascent

#endif // NASCENT_DRIVER_PIPELINE_H

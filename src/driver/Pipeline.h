//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-compiler pipeline: source text -> AST -> IR with naive range
/// checks -> (optional INX synthesis) -> range-check optimization. This
/// mirrors the Nascent pipeline used for the paper's experiments and is
/// what the benchmark harnesses and examples drive.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_DRIVER_PIPELINE_H
#define NASCENT_DRIVER_PIPELINE_H

#include "audit/AuditReport.h"
#include "frontend/Lowering.h"
#include "opt/RangeCheckOptimizer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace nascent {

/// Which kind of checks the optimizer works on (paper section 2.3):
/// program-expression checks or induction-expression checks.
enum class CheckSource {
  PRX,
  INX,
};

/// Pipeline configuration.
struct PipelineOptions {
  LoweringOptions Lowering;
  CheckSource Source = CheckSource::PRX;
  /// When false the pipeline stops after lowering (the naive baseline).
  bool Optimize = true;
  RangeCheckOptions Opt;
  /// Snapshot the pre-optimization IR and run the trap-safety auditor
  /// over the (original, optimized) pair; findings land in
  /// CompileResult::Audit and, as errors, in Diags.
  bool Audit = false;
};

/// Result of one compilation.
struct CompileResult {
  bool Success = false;
  std::unique_ptr<Module> M;
  DiagnosticEngine Diags;
  OptimizerStats Stats;
  /// Trap-safety audit result; empty unless PipelineOptions::Audit.
  AuditReport Audit;

  /// CPU seconds spent in the range-check optimization phase (the paper's
  /// "Range" column).
  double OptimizeSeconds = 0;
  /// Wall-clock seconds for the whole pipeline (the "Nascent" column).
  double TotalSeconds = 0;
};

/// Compiles \p Source with \p Opts. On front-end errors, Success is false
/// and Diags carries the messages.
CompileResult compileSource(const std::string &Source,
                            const PipelineOptions &Opts = {});

} // namespace nascent

#endif // NASCENT_DRIVER_PIPELINE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Batch compilation: fan a vector of (source, PipelineOptions) jobs
/// across a ThreadPool and return the results in submission order. This
/// is the engine behind `audit_all --jobs N`, the bench suite sweeps, and
/// the `sweep` example.
///
/// Determinism contract (docs/parallelism.md): each job is a pure
/// function of its (source, options) pair — compileSource shares no
/// mutable state between jobs except the monotone StatRegistry — so the
/// per-job results are identical for every job count. Each job's stat
/// delta is captured with a snapshot pair on the executing thread, which
/// sees exactly the merged base (stable while the pool runs) plus its own
/// work; the pool is joined before run() returns, so both the per-job
/// "work" maps and any post-run registry read are bit-identical to a
/// serial run of the same jobs.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_DRIVER_BATCHCOMPILER_H
#define NASCENT_DRIVER_BATCHCOMPILER_H

#include "driver/Pipeline.h"
#include "obs/StatRegistry.h"

#include <memory>
#include <string>
#include <vector>

namespace nascent {

/// One compilation job: a source program plus its pipeline configuration.
/// The source is held by shared pointer so a sweep submitting hundreds of
/// cells over a handful of programs shares one buffer per program instead
/// of copying the text into every job.
struct BatchJob {
  BatchJob() = default;
  BatchJob(std::string Source, PipelineOptions Opts)
      : Source(std::make_shared<const std::string>(std::move(Source))),
        Opts(std::move(Opts)) {}
  BatchJob(std::shared_ptr<const std::string> Source, PipelineOptions Opts)
      : Source(std::move(Source)), Opts(std::move(Opts)) {}

  std::shared_ptr<const std::string> Source;
  PipelineOptions Opts;
};

/// The outcome of one job.
struct BatchJobResult {
  CompileResult Result;
  /// The job's exact StatRegistry growth (work-proxy counters, histogram
  /// count/sum pairs, bit-vector ops), captured on the executing thread.
  obs::StatSnapshot::FlatMap Work;
};

/// Runs batches of compilation jobs over \p Jobs worker threads.
class BatchCompiler {
public:
  /// \p Jobs <= 1 compiles serially on the calling thread (no pool);
  /// otherwise a fresh ThreadPool of \p Jobs workers is created per run()
  /// and joined before it returns.
  explicit BatchCompiler(unsigned Jobs = 1) : NumJobs(Jobs ? Jobs : 1) {}

  unsigned jobs() const { return NumJobs; }

  /// Compiles every job and returns the results in submission order. A
  /// job that throws (out-of-memory and the like — compile *errors* are
  /// reported via CompileResult::Diags, not exceptions) rethrows here,
  /// after every worker has been joined.
  std::vector<BatchJobResult> run(const std::vector<BatchJob> &Batch) const;

private:
  unsigned NumJobs;
};

/// Maps a --jobs flag value to a worker count: 0 means "auto" (the
/// hardware concurrency), anything else is taken literally.
unsigned resolveJobCount(unsigned Requested);

/// Strictly parses a --jobs flag value: a string of decimal digits,
/// where 0 means "auto-detect hardware concurrency".
/// Returns false — leaving \p Out untouched — for empty, negative,
/// non-numeric, trailing-garbage, or overflowing text, so drivers can
/// diagnose "--jobs -3" and "--jobs fast" instead of silently taking
/// whatever strtoul salvages.
bool parseJobCount(const std::string &Text, unsigned &Out);

} // namespace nascent

#endif // NASCENT_DRIVER_BATCHCOMPILER_H

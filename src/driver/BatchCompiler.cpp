#include "driver/BatchCompiler.h"

#include "support/ThreadPool.h"

#include <future>

using namespace nascent;

namespace {

/// Compiles one job on the calling thread, bracketing it in a snapshot
/// pair so Work holds exactly this job's stat growth. On a worker thread
/// the snapshots see the stable merged base plus the worker's own shard;
/// on the main thread (serial mode) they see base plus the main shard —
/// either way the delta is the job's own work, bit-identical across
/// --jobs values.
BatchJobResult runOne(const BatchJob &Job) {
  static const std::string Empty;
  BatchJobResult R;
  obs::StatSnapshot Before = obs::StatRegistry::global().snapshot();
  R.Result = compileSource(Job.Source ? *Job.Source : Empty, Job.Opts);
  R.Work = obs::StatRegistry::global().snapshot().deltaFrom(Before);
  return R;
}

} // namespace

std::vector<BatchJobResult>
BatchCompiler::run(const std::vector<BatchJob> &Batch) const {
  std::vector<BatchJobResult> Results(Batch.size());
  if (NumJobs <= 1) {
    for (size_t I = 0, E = Batch.size(); I != E; ++I)
      Results[I] = runOne(Batch[I]);
    return Results;
  }

  std::vector<std::future<void>> Pending;
  Pending.reserve(Batch.size());
  {
    ThreadPool Pool(NumJobs);
    for (size_t I = 0, E = Batch.size(); I != E; ++I)
      Pending.push_back(Pool.submit(
          [&Results, &Batch, I] { Results[I] = runOne(Batch[I]); }));
    // The pool destructor drains and joins here, flushing every worker's
    // stat shard — run() returns with the registry quiescent and exact.
  }
  for (std::future<void> &F : Pending)
    F.get();
  return Results;
}

unsigned nascent::resolveJobCount(unsigned Requested) {
  return Requested == 0 ? ThreadPool::defaultWorkers() : Requested;
}

bool nascent::parseJobCount(const std::string &Text, unsigned &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
    if (V > 4096) // far above any sane worker count; also bounds overflow
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

#include "driver/Pipeline.h"

#include "audit/TrapSafetyAuditor.h"
#include "cache/ArtifactCache.h"
#include "checks/INXSynthesis.h"
#include "ir/Verifier.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <chrono>

using namespace nascent;

CompileResult nascent::compileSource(const std::string &Source,
                                     const PipelineOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  CompileResult R;
  auto T0 = Clock::now();
  double Cpu0 = obs::processCpuSeconds();

  if (Opts.Telemetry.Trace || !Opts.Telemetry.TracePath.empty())
    R.Trace.enable();
  if (Opts.Telemetry.Remarks)
    R.Remarks.enable(Opts.Telemetry.RemarkFilter);
  if (Opts.Telemetry.Provenance)
    R.Provenance.enable();

  // The "total" phase is recorded explicitly (not via ScopedPhase) so it
  // covers every exit path, including early returns on front-end errors.
  auto Finish = [&] {
    obs::PhaseTiming Total;
    Total.Name = "total";
    Total.WallSeconds = std::chrono::duration<double>(Clock::now() - T0).count();
    Total.CpuSeconds = obs::processCpuSeconds() - Cpu0;
    R.Phases.Phases.push_back(std::move(Total));
    if (!Opts.Telemetry.TracePath.empty()) {
      std::string Err;
      if (!R.Trace.writeFile(Opts.Telemetry.TracePath, &Err))
        R.Diags.error(SourceLocation(), "cannot write trace file: " + Err);
    }
  };

  // Frontend artifact tier: reuse a verified post-lowering snapshot of
  // this exact (source, lowering options, check source) if one is cached.
  // The clone preserves check tags, so lifecycle recording below re-opens
  // the same events the organic path would.
  cache::ArtifactCache *Cache =
      Opts.Cache.Enabled
          ? (Opts.Cache.Cache ? Opts.Cache.Cache
                              : &cache::ArtifactCache::global())
          : nullptr;
  support::Hash128 FrontKey;
  std::unique_ptr<Module> M;
  if (Cache) {
    FrontKey = cache::hashFrontendKey(Source, Opts.Lowering,
                                      static_cast<unsigned>(Opts.Source));
    obs::ScopedPhase Ph(R.Phases, "cache-frontend", T0, &R.Trace);
    if (auto FA = Cache->findFrontend(FrontKey))
      M = FA->Snapshot->clone();
  }

  if (!M) {
    std::unique_ptr<ProgramAST> AST;
    {
      obs::ScopedPhase Ph(R.Phases, "parse", T0, &R.Trace);
      Parser P(Source, R.Diags);
      AST = P.parseProgram();
    }
    if (R.Diags.hasErrors()) {
      Finish();
      return R;
    }

    {
      obs::ScopedPhase Ph(R.Phases, "sema", T0, &R.Trace);
      Sema S(*AST, R.Diags);
      M = S.run();
    }
    if (!M || R.Diags.hasErrors()) {
      Finish();
      return R;
    }

    {
      obs::ScopedPhase Ph(R.Phases, "lower", T0, &R.Trace);
      lowerProgram(*AST, *M, Opts.Lowering);
    }
    // Every naive check materialised by lowering opens its lifecycle here;
    // optimizer insertions record their own Inserted events as they happen.
    obs::recordInsertedChecks(*M, "Lowering", R.Provenance);
    bool VerifyOk;
    {
      obs::ScopedPhase Ph(R.Phases, "verify", T0, &R.Trace);
      VerifyOk = verifyModule(*M, R.Diags);
    }
    if (!VerifyOk) {
      Finish();
      return R;
    }
    // Only diagnostic-free compiles are stored: a later cache hit skips
    // the frontend entirely, so it must have no warnings to replay.
    if (Cache && R.Diags.diagnostics().empty()) {
      obs::ScopedPhase Ph(R.Phases, "cache-store", T0, &R.Trace);
      Cache->storeFrontend(FrontKey, M->clone());
    }
  } else {
    // Cache hit: the snapshot was verified when stored; open the naive
    // checks' lifecycles exactly as the organic path does after lowering.
    obs::recordInsertedChecks(*M, "Lowering", R.Provenance);
  }

  if (Opts.Source == CheckSource::INX) {
    obs::ScopedPhase Ph(R.Phases, "inx-synthesis", T0, &R.Trace);
    for (Function *F : M->functions())
      synthesizeINXChecks(*F, &R.Provenance);
  }

  if (Opts.Optimize) {
    std::unique_ptr<Module> Snapshot;
    if (Opts.Audit) {
      obs::ScopedPhase Ph(R.Phases, "snapshot", T0, &R.Trace);
      Snapshot = M->clone();
    }
    {
      obs::ScopedPhase Ph(R.Phases, "optimize", T0, &R.Trace);
      RangeCheckOptions OC = Opts.Opt;
      OC.Remarks = &R.Remarks;
      OC.Trace = &R.Trace;
      OC.Provenance = &R.Provenance;
      OC.Cache = Cache;
      OC.ModuleKey = FrontKey;
      R.Stats = optimizeModule(*M, OC, R.Diags);
    }
    bool PostOk;
    {
      obs::ScopedPhase Ph(R.Phases, "verify-post", T0, &R.Trace);
      DiagnosticEngine VerifyDiags;
      PostOk = verifyModule(*M, VerifyDiags);
      if (!PostOk)
        R.Diags.error(SourceLocation(),
                      "internal error: optimizer produced malformed IR:\n" +
                          VerifyDiags.render());
    }
    if (!PostOk) {
      Finish();
      return R;
    }
    if (Opts.Audit) {
      obs::ScopedPhase Ph(R.Phases, "audit", T0, &R.Trace);
      AuditOptions AO;
      AO.Scheme = Opts.Opt.Scheme;
      R.Audit = auditModulePair(*Snapshot, *M, AO);
      if (!R.Audit.clean())
        R.Audit.emitTo(R.Diags);
    }
  }

  // Close the lifecycle of every surviving check (optimized or not).
  obs::recordResidualChecks(*M, R.Provenance);

  // The profile skeleton describes the *residual* shape, so attach after
  // all rewrites. M lives behind a unique_ptr: the profile's function
  // pointers stay valid across the CompileResult move.
  if (Opts.Telemetry.Profile)
    R.Profile.attach(*M);

  Finish();
  R.M = std::move(M);
  R.Success = true;
  return R;
}

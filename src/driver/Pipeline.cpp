#include "driver/Pipeline.h"

#include "audit/TrapSafetyAuditor.h"
#include "checks/INXSynthesis.h"
#include "ir/Verifier.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <chrono>

using namespace nascent;

CompileResult nascent::compileSource(const std::string &Source,
                                     const PipelineOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  CompileResult R;
  auto T0 = Clock::now();

  Parser P(Source, R.Diags);
  std::unique_ptr<ProgramAST> AST = P.parseProgram();
  if (R.Diags.hasErrors())
    return R;

  Sema S(*AST, R.Diags);
  std::unique_ptr<Module> M = S.run();
  if (!M || R.Diags.hasErrors())
    return R;

  lowerProgram(*AST, *M, Opts.Lowering);
  if (!verifyModule(*M, R.Diags))
    return R;

  if (Opts.Source == CheckSource::INX)
    for (Function *F : M->functions())
      synthesizeINXChecks(*F);

  if (Opts.Optimize) {
    std::unique_ptr<Module> Snapshot;
    if (Opts.Audit)
      Snapshot = M->clone();
    auto TOpt = Clock::now();
    R.Stats = optimizeModule(*M, Opts.Opt, R.Diags);
    R.OptimizeSeconds =
        std::chrono::duration<double>(Clock::now() - TOpt).count();
    DiagnosticEngine VerifyDiags;
    if (!verifyModule(*M, VerifyDiags)) {
      R.Diags.error(SourceLocation(),
                    "internal error: optimizer produced malformed IR:\n" +
                        VerifyDiags.render());
      return R;
    }
    if (Opts.Audit) {
      AuditOptions AO;
      AO.Scheme = Opts.Opt.Scheme;
      R.Audit = auditModulePair(*Snapshot, *M, AO);
      if (!R.Audit.clean())
        R.Audit.emitTo(R.Diags);
    }
  }

  R.TotalSeconds = std::chrono::duration<double>(Clock::now() - T0).count();
  R.M = std::move(M);
  R.Success = true;
  return R;
}

#include "obs/Provenance.h"

#include "ir/Function.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace nascent;
using namespace nascent::obs;

const char *obs::lifecycleKindName(LifecycleKind K) {
  switch (K) {
  case LifecycleKind::Inserted:
    return "inserted";
  case LifecycleKind::Strengthened:
    return "strengthened";
  case LifecycleKind::Moved:
    return "moved";
  case LifecycleKind::SubsumedBy:
    return "subsumed-by";
  case LifecycleKind::Eliminated:
    return "eliminated";
  case LifecycleKind::Trapped:
    return "trapped";
  case LifecycleKind::Residualized:
    return "residualized";
  }
  return "unknown";
}

bool obs::isTerminalLifecycleKind(LifecycleKind K) {
  switch (K) {
  case LifecycleKind::SubsumedBy:
  case LifecycleKind::Eliminated:
  case LifecycleKind::Trapped:
  case LifecycleKind::Residualized:
    return true;
  case LifecycleKind::Inserted:
  case LifecycleKind::Strengthened:
  case LifecycleKind::Moved:
    return false;
  }
  return false;
}

void ProvenanceRecorder::record(LifecycleEvent E) {
  if (!Enabled)
    return;
  E.Seq = static_cast<uint32_t>(All.size());
  All.push_back(std::move(E));
}

size_t ProvenanceRecorder::count(LifecycleKind K,
                                 const std::string &Pass) const {
  size_t N = 0;
  for (const LifecycleEvent &E : All)
    if (E.Kind == K && (Pass.empty() || E.Pass == Pass))
      ++N;
  return N;
}

std::vector<CheckTag> ProvenanceRecorder::tags() const {
  std::vector<CheckTag> Out;
  std::set<CheckTag> Seen;
  for (const LifecycleEvent &E : All)
    if (Seen.insert(E.Tag).second)
      Out.push_back(E.Tag);
  return Out;
}

const LifecycleEvent *ProvenanceRecorder::lastEventOf(CheckTag Tag) const {
  const LifecycleEvent *Last = nullptr;
  for (const LifecycleEvent &E : All)
    if (E.Tag == Tag)
      Last = &E;
  return Last;
}

std::vector<size_t> ProvenanceRecorder::timelineOf(CheckTag Tag) const {
  std::vector<size_t> Out;
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Tag == Tag)
      Out.push_back(I);
  return Out;
}

namespace {

void writeOrigin(JsonWriter &W, const CheckOrigin &O) {
  W.key("origin").beginObject();
  W.kv("array", O.ArrayName);
  W.kv("dim", O.Dim);
  W.kv("side", O.IsUpper ? "upper" : "lower");
  W.kv("line", O.Loc.Line);
  W.kv("col", O.Loc.Column);
  W.endObject();
}

} // namespace

void ProvenanceRecorder::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.key("events").beginArray();
  for (const LifecycleEvent &E : All) {
    W.beginObject();
    W.kv("seq", E.Seq);
    W.kv("tag", E.Tag);
    W.kv("kind", lifecycleKindName(E.Kind));
    W.kv("pass", E.Pass);
    W.kv("function", E.Function);
    W.kv("block", E.Block);
    W.kv("check", E.CheckStr);
    W.kv("bound", E.Bound);
    writeOrigin(W, E.Origin);
    W.kv("justification", E.Justification);
    if (E.OtherTag != NoCheckTag)
      W.kv("otherTag", E.OtherTag);
    if (!E.Edge.empty())
      W.kv("edge", E.Edge);
    W.endObject();
  }
  W.endArray();

  W.key("checks").beginArray();
  for (CheckTag Tag : tags()) {
    std::vector<size_t> Chain = timelineOf(Tag);
    W.beginObject();
    W.kv("tag", Tag);
    W.kv("function", All[Chain.front()].Function);
    W.kv("terminal", lifecycleKindName(All[Chain.back()].Kind));
    W.key("events").beginArray();
    for (size_t I : Chain)
      W.value(static_cast<uint64_t>(All[I].Seq));
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string ProvenanceRecorder::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

namespace {

std::string dotEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string ProvenanceRecorder::toDot() const {
  std::ostringstream OS;
  OS << "digraph check_provenance {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (CheckTag Tag : tags()) {
    const LifecycleEvent *Last = lastEventOf(Tag);
    OS << "  t" << Tag << " [label=\"t" << Tag << ": "
       << dotEscape(Last->CheckStr) << "\\n" << Last->Function << " ["
       << lifecycleKindName(Last->Kind) << "]\"";
    if (Last->Kind == LifecycleKind::Residualized)
      OS << ", style=bold";
    else if (Last->Kind == LifecycleKind::Trapped)
      OS << ", color=red";
    OS << "];\n";
  }
  for (const LifecycleEvent &E : All) {
    if (E.Kind != LifecycleKind::SubsumedBy || E.OtherTag == NoCheckTag)
      continue;
    OS << "  t" << E.OtherTag << " -> t" << E.Tag << " [label=\""
       << dotEscape(E.Pass) << "\"];\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string ProvenanceRecorder::explainTag(CheckTag Tag) const {
  std::vector<size_t> Chain = timelineOf(Tag);
  if (Chain.empty())
    return std::string();
  std::ostringstream OS;
  const LifecycleEvent &First = All[Chain.front()];
  OS << "check t" << Tag << " " << First.CheckStr;
  if (!First.Origin.ArrayName.empty())
    OS << " (array '" << First.Origin.ArrayName << "' dim "
       << First.Origin.Dim << " "
       << (First.Origin.IsUpper ? "upper" : "lower") << " bound)";
  OS << " at " << First.Origin.Loc.str() << ":\n";
  for (size_t I : Chain) {
    const LifecycleEvent &E = All[I];
    OS << "  #" << E.Seq << " [" << E.Pass << "] "
       << lifecycleKindName(E.Kind) << " in " << E.Function << ":"
       << E.Block;
    if (E.Kind == LifecycleKind::SubsumedBy) {
      if (E.OtherTag != NoCheckTag)
        OS << " by t" << E.OtherTag;
      if (!E.Edge.empty())
        OS << " via " << E.Edge;
    } else if (!E.Edge.empty()) {
      OS << " (was " << E.Edge << ")";
    }
    if (E.CheckStr != First.CheckStr &&
        (E.Kind == LifecycleKind::Strengthened ||
         E.Kind == LifecycleKind::Moved))
      OS << " now " << E.CheckStr;
    if (!E.Justification.empty())
      OS << ": " << E.Justification;
    OS << "\n";
  }
  return OS.str();
}

std::string ProvenanceRecorder::explainSite(unsigned Line,
                                            unsigned Column) const {
  std::string Out;
  for (CheckTag Tag : tags()) {
    std::vector<size_t> Chain = timelineOf(Tag);
    const LifecycleEvent &First = All[Chain.front()];
    if (First.Origin.Loc.Line != Line)
      continue;
    if (Column != 0 && First.Origin.Loc.Column != Column)
      continue;
    Out += explainTag(Tag);
  }
  return Out;
}

std::vector<std::string> ProvenanceRecorder::validate() const {
  std::vector<std::string> Problems;
  std::set<CheckTag> Known;
  for (const LifecycleEvent &E : All)
    Known.insert(E.Tag);
  for (const LifecycleEvent &E : All) {
    if (E.Tag == NoCheckTag)
      Problems.push_back("event #" + std::to_string(E.Seq) +
                         " has no check tag");
    if (E.OtherTag != NoCheckTag && !Known.count(E.OtherTag))
      Problems.push_back("event #" + std::to_string(E.Seq) +
                         " references unrecorded tag t" +
                         std::to_string(E.OtherTag));
  }
  for (CheckTag Tag : tags()) {
    std::vector<size_t> Chain = timelineOf(Tag);
    for (size_t I = 0; I + 1 < Chain.size(); ++I)
      if (isTerminalLifecycleKind(All[Chain[I]].Kind))
        Problems.push_back("check t" + std::to_string(Tag) +
                           " has events after terminal state " +
                           lifecycleKindName(All[Chain[I]].Kind));
    if (!isTerminalLifecycleKind(All[Chain.back()].Kind))
      Problems.push_back("check t" + std::to_string(Tag) +
                         " lifecycle ends in non-terminal state " +
                         lifecycleKindName(All[Chain.back()].Kind));
  }
  return Problems;
}

LifecycleEvent obs::makeLifecycleEvent(LifecycleKind Kind, std::string Pass,
                                       const Function &F,
                                       const BasicBlock &BB,
                                       const Instruction &I,
                                       std::string Justification) {
  LifecycleEvent E;
  E.Tag = I.Tag;
  E.Kind = Kind;
  E.Pass = std::move(Pass);
  E.Function = F.name();
  E.Block = BB.name();
  E.CheckStr = I.Check.str(F.symbols());
  E.Bound = I.Check.bound();
  E.Origin = I.Origin;
  E.Justification = std::move(Justification);
  return E;
}

void obs::recordInsertedChecks(const Module &M, const std::string &Pass,
                               ProvenanceRecorder &PR) {
  if (!PR.enabled())
    return;
  for (const Function *F : M.functions())
    for (const auto &BB : *F)
      for (const Instruction &I : BB->instructions()) {
        if (!I.isRangeCheck() || I.Tag == NoCheckTag)
          continue;
        PR.record(makeLifecycleEvent(
            LifecycleKind::Inserted, Pass, *F, *BB, I,
            "naive range check for the subscript expression"));
      }
}

void obs::recordResidualChecks(const Module &M, ProvenanceRecorder &PR) {
  if (!PR.enabled())
    return;
  for (const Function *F : M.functions())
    for (const auto &BB : *F)
      for (const Instruction &I : BB->instructions()) {
        if (!I.isRangeCheck() || I.Tag == NoCheckTag)
          continue;
        PR.record(makeLifecycleEvent(
            LifecycleKind::Residualized, "Pipeline", *F, *BB, I,
            I.Op == Opcode::CondCheck
                ? "conditional check survived optimization"
                : "check survived optimization"));
      }
}

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool knownKind(const std::string &Name, bool *Terminal = nullptr) {
  static const struct {
    const char *Name;
    bool Terminal;
  } Kinds[] = {
      {"inserted", false},    {"strengthened", false}, {"moved", false},
      {"subsumed-by", true},  {"eliminated", true},    {"trapped", true},
      {"residualized", true},
  };
  for (const auto &K : Kinds)
    if (Name == K.Name) {
      if (Terminal)
        *Terminal = K.Terminal;
      return true;
    }
  return false;
}

} // namespace

bool obs::validateProvenanceDocument(const JsonValue &Doc,
                                     std::string *Err) {
  if (!Doc.isObject())
    return fail(Err, "document is not a JSON object");

  const JsonValue *Version = Doc.get("schemaVersion");
  if (!Version || !Version->isNumber())
    return fail(Err, "missing numeric field 'schemaVersion'");
  if (Version->Number != static_cast<double>(BenchSchemaVersion))
    return fail(Err, "unknown schemaVersion " +
                         std::to_string(Version->Number) + " (expected " +
                         std::to_string(BenchSchemaVersion) + ")");

  const JsonValue *Prov = Doc.get("provenance");
  if (!Prov || !Prov->isObject())
    return fail(Err, "missing object field 'provenance'");

  const JsonValue *Events = Prov->get("events");
  if (!Events || !Events->isArray())
    return fail(Err, "provenance missing array field 'events'");

  std::set<double> Tags;
  for (size_t I = 0; I != Events->Array.size(); ++I) {
    const JsonValue &E = Events->Array[I];
    std::string At = "events[" + std::to_string(I) + "]";
    if (!E.isObject())
      return fail(Err, At + " is not an object");
    for (const char *Key : {"seq", "tag", "bound"}) {
      const JsonValue *F = E.get(Key);
      if (!F || !F->isNumber())
        return fail(Err,
                    At + " missing numeric field '" + std::string(Key) + "'");
    }
    for (const char *Key :
         {"kind", "pass", "function", "block", "check", "justification"}) {
      const JsonValue *F = E.get(Key);
      if (!F || !F->isString())
        return fail(Err,
                    At + " missing string field '" + std::string(Key) + "'");
    }
    if (!knownKind(E.get("kind")->String))
      return fail(Err, At + " has unknown kind '" + E.get("kind")->String +
                           "'");
    const JsonValue *Origin = E.get("origin");
    if (!Origin || !Origin->isObject())
      return fail(Err, At + " missing object field 'origin'");
    Tags.insert(E.get("tag")->Number);
  }
  // Dangling-reference check: every otherTag must name a recorded check.
  for (size_t I = 0; I != Events->Array.size(); ++I) {
    const JsonValue *Other = Events->Array[I].get("otherTag");
    if (!Other)
      continue;
    if (!Other->isNumber())
      return fail(Err, "events[" + std::to_string(I) +
                           "].otherTag is not a number");
    if (!Tags.count(Other->Number))
      return fail(Err, "events[" + std::to_string(I) +
                           "] references dangling check tag " +
                           std::to_string(Other->Number));
  }

  const JsonValue *Checks = Prov->get("checks");
  if (!Checks || !Checks->isArray())
    return fail(Err, "provenance missing array field 'checks'");
  for (size_t I = 0; I != Checks->Array.size(); ++I) {
    const JsonValue &C = Checks->Array[I];
    std::string At = "checks[" + std::to_string(I) + "]";
    if (!C.isObject())
      return fail(Err, At + " is not an object");
    const JsonValue *Tag = C.get("tag");
    if (!Tag || !Tag->isNumber())
      return fail(Err, At + " missing numeric field 'tag'");
    if (!Tags.count(Tag->Number))
      return fail(Err, At + " names dangling check tag " +
                           std::to_string(Tag->Number));
    const JsonValue *Terminal = C.get("terminal");
    if (!Terminal || !Terminal->isString())
      return fail(Err, At + " missing string field 'terminal'");
    bool IsTerminal = false;
    if (!knownKind(Terminal->String, &IsTerminal) || !IsTerminal)
      return fail(Err, At + " terminal state '" + Terminal->String +
                           "' is not a terminal lifecycle kind");
    const JsonValue *Chain = C.get("events");
    if (!Chain || !Chain->isArray() || Chain->Array.empty())
      return fail(Err, At + " missing non-empty array field 'events'");
    for (const JsonValue &Ref : Chain->Array)
      if (!Ref.isNumber() ||
          Ref.Number >= static_cast<double>(Events->Array.size()))
        return fail(Err, At + " event reference out of range");
  }
  return true;
}

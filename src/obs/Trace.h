//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical phase tracing for the pipeline and the optimizer:
///
///  - TraceCollector / TraceScope: RAII timers recording named spans
///    (parse, lower, INX synthesis, CIG build, avail/antic solve,
///    placement, elimination, audit, ...) that serialise to Chrome
///    `trace_event` JSON loadable in Perfetto / chrome://tracing.
///  - PhaseTimings: the flat per-phase breakdown carried on CompileResult,
///    measuring every phase on BOTH clocks (wall via steady_clock, CPU via
///    CLOCK_THREAD_CPUTIME_ID so a compile running on a BatchCompiler
///    worker charges only its own cycles) — the former
///    OptimizeSeconds/TotalSeconds pair mixed the two and is now derived
///    from this table.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_TRACE_H
#define NASCENT_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nascent {
namespace obs {

/// Current process CPU time in seconds (sums over all threads).
double processCpuSeconds();

/// Current CPU time of the calling thread in seconds. Phase timings use
/// this clock so a compile job measured on a BatchCompiler worker charges
/// only its own cycles, not every concurrent job's; in a single-threaded
/// process the two clocks advance identically.
double threadCpuSeconds();

/// One completed trace span.
struct TraceEvent {
  std::string Name;
  uint64_t StartUs = 0; ///< microseconds since the collector's epoch
  uint64_t DurUs = 0;
  unsigned Depth = 0; ///< nesting depth at the time the scope opened
};

/// Process-stable tag of the calling thread, for Chrome-trace `tid`
/// fields: small dense integers (1, 2, 3, ...) in first-use order, unlike
/// opaque platform thread ids. A collector constructed on a BatchCompiler
/// worker carries that worker's tag, so merged timelines show one lane
/// per worker.
uint32_t currentThreadTag();

/// Collects trace spans. Disabled collectors cost one branch per scope.
/// Events are appended when a scope closes, so children precede parents;
/// Perfetto reconstructs the hierarchy from span containment.
class TraceCollector {
public:
  TraceCollector()
      : Epoch(std::chrono::steady_clock::now()), Tid(currentThreadTag()) {}

  void enable() { Enabled = true; }
  bool enabled() const { return Enabled; }

  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  const std::vector<TraceEvent> &events() const { return Events; }

  /// The collector's epoch (construction time); merged exports shift each
  /// collector's timestamps onto the earliest epoch in the set.
  std::chrono::steady_clock::time_point epoch() const { return Epoch; }

  /// The thread tag captured at construction (the `tid` of every span).
  uint32_t threadTag() const { return Tid; }

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" spans).
  std::string toJson() const;

  /// Writes toJson() to \p Path; false (with \p Err filled) on I/O error.
  bool writeFile(const std::string &Path, std::string *Err = nullptr) const;

private:
  friend class TraceScope;

  bool Enabled = false;
  std::chrono::steady_clock::time_point Epoch;
  uint32_t Tid = 1;
  std::vector<TraceEvent> Events;
  unsigned Depth = 0;
};

/// One collector to merge, optionally labelled (the label becomes a
/// thread_name metadata record for its lane).
struct TraceMergeInput {
  const TraceCollector *Collector = nullptr;
  std::string Label;
};

/// Merges several collectors into one Chrome trace document: every span
/// keeps its collector's `tid` lane, and per-collector timestamps are
/// shifted onto the earliest epoch among the inputs so spans from
/// different workers line up on one timeline. Null/empty inputs are
/// skipped.
std::string mergedTraceJson(const std::vector<TraceMergeInput> &Inputs);

/// Writes mergedTraceJson() to \p Path; false (with \p Err) on I/O error.
bool writeMergedTraceFile(const std::vector<TraceMergeInput> &Inputs,
                          const std::string &Path,
                          std::string *Err = nullptr);

/// RAII span. A null or disabled collector makes the scope a no-op.
class TraceScope {
public:
  TraceScope(TraceCollector *C, std::string Name);
  ~TraceScope();

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  TraceCollector *C = nullptr;
  std::string Name;
  uint64_t StartUs = 0;
  unsigned MyDepth = 0;
};

/// One pipeline phase measured on both clocks. WallStart orders phases
/// and lets tests assert monotonicity.
struct PhaseTiming {
  std::string Name;
  double WallStart = 0;   ///< seconds from pipeline begin to phase begin
  double WallSeconds = 0; ///< wall-clock duration
  double CpuSeconds = 0;  ///< CPU duration of the measuring thread
};

/// The per-compile phase breakdown (CompileResult::Phases).
struct PhaseTimings {
  std::vector<PhaseTiming> Phases;

  const PhaseTiming *find(const std::string &Name) const;
  /// Duration of the named phase; 0 when the phase never ran.
  double wallOf(const std::string &Name) const;
  double cpuOf(const std::string &Name) const;
};

/// RAII recorder appending one PhaseTiming on destruction, and (when a
/// collector is given) mirroring the phase as a trace span. \p PipelineT0
/// anchors WallStart so all phases of one compile share an origin.
class ScopedPhase {
public:
  ScopedPhase(PhaseTimings &PT, std::string Name,
              std::chrono::steady_clock::time_point PipelineT0,
              TraceCollector *Trace = nullptr);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  PhaseTimings &PT;
  std::string Name;
  std::chrono::steady_clock::time_point PipelineT0;
  std::chrono::steady_clock::time_point WallT0;
  double CpuT0;
  TraceScope Trace;
};

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_TRACE_H

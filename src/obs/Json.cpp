#include "obs/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace nascent;
using namespace nascent::obs;

std::string nascent::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void JsonWriter::comma() {
  if (PendingKey) {
    PendingKey = false;
    return; // the key already placed the separator
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  NeedComma.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  NeedComma.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  comma();
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  comma();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V));
}

JsonWriter &JsonWriter::value(int64_t V) {
  comma();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  comma();
  if (std::isfinite(V))
    Out += formatString("%.17g", V);
  else
    Out += "null"; // NaN/inf are not representable in JSON
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  comma();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  comma();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::rawValue(const std::string &Json) {
  comma();
  Out += Json;
  return *this;
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[K, V] : Object)
    if (K == Key)
      return &V;
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Err)
      : Text(Text), Err(Err) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err && Err->empty())
      *Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return fail("truncated escape");
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int K = 0; K != 4; ++K) {
            char H = Text[Pos + static_cast<size_t>(K)];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          Pos += 4;
          // UTF-8 encode the code point (surrogate pairs are passed
          // through individually; the telemetry emitters never produce
          // them).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Object.emplace_back(std::move(Key), std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        JsonValue V;
        if (!parseValue(V))
          return false;
        Out.Array.push_back(std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.String);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      while (Pos < Text.size() &&
             (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
              Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      std::string Num = Text.substr(Start, Pos - Start);
      char *End = nullptr;
      Out.K = JsonValue::Kind::Number;
      Out.Number = std::strtod(Num.c_str(), &End);
      if (End != Num.c_str() + Num.size())
        return fail("malformed number");
      return true;
    }
    return fail("unexpected character");
  }

  const std::string &Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

bool nascent::obs::parseJson(const std::string &Text, JsonValue &Out,
                             std::string *Err) {
  if (Err)
    Err->clear();
  Out = JsonValue();
  return Parser(Text, Err).run(Out);
}

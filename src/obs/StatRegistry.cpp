#include "obs/StatRegistry.h"

#include "obs/Json.h"
#include "support/DenseBitVector.h"
#include "support/StringUtils.h"

using namespace nascent;
using namespace nascent::obs;

void Histogram::record(uint64_t V) {
  ++Count;
  Sum += V;
  if (V < Min)
    Min = V;
  if (V > Max)
    Max = V;
  size_t Bucket = V == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(V));
  ++Buckets[Bucket];
}

void Histogram::reset() {
  Count = 0;
  Sum = 0;
  Min = ~uint64_t(0);
  Max = 0;
  for (uint64_t &B : Buckets)
    B = 0;
}

StatRegistry &StatRegistry::global() {
  static StatRegistry *R = [] {
    auto *Reg = new StatRegistry();
    // Built-in gauges over support-layer state. The support library sits
    // below obs in the layering, so it exposes raw totals and the
    // registry adopts them here.
    Reg->gauge(
        "support.bitvector.word_ops",
        [] { return DenseBitVector::wordOps(); },
        "word-parallel bit-vector operations (|=, &=, andNot, count, ==)");
    return Reg;
  }();
  return *R;
}

Counter &StatRegistry::counter(const std::string &Name,
                               const std::string &Desc) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::make_unique<Counter>(Name, Desc)).first;
  return *It->second;
}

Histogram &StatRegistry::histogram(const std::string &Name,
                                   const std::string &Desc) {
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, std::make_unique<Histogram>(Name, Desc))
             .first;
  return *It->second;
}

void StatRegistry::gauge(const std::string &Name,
                         std::function<uint64_t()> Read,
                         const std::string &Desc) {
  Gauges[Name] = GaugeEntry{std::move(Read), Desc};
}

void StatRegistry::resetAll() {
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

StatSnapshot StatRegistry::snapshot() const {
  StatSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : Gauges)
    S.Gauges[Name] = G.Read();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = StatSnapshot::HistogramState{H->count(), H->sum()};
  return S;
}

namespace {

uint64_t monotoneDelta(uint64_t After, uint64_t Before) {
  return After > Before ? After - Before : 0;
}

} // namespace

StatSnapshot::FlatMap
StatSnapshot::deltaFrom(const StatSnapshot &Before) const {
  FlatMap Out;
  auto Emit = [&Out](const std::string &Key, uint64_t After, uint64_t Prev) {
    if (uint64_t D = monotoneDelta(After, Prev))
      Out[Key] = D;
  };
  auto PrevOf = [](const std::map<std::string, uint64_t> &M,
                   const std::string &Key) {
    auto It = M.find(Key);
    return It == M.end() ? uint64_t(0) : It->second;
  };
  for (const auto &[Name, V] : Counters)
    Emit(Name, V, PrevOf(Before.Counters, Name));
  for (const auto &[Name, V] : Gauges)
    Emit(Name, V, PrevOf(Before.Gauges, Name));
  for (const auto &[Name, H] : Histograms) {
    auto It = Before.Histograms.find(Name);
    HistogramState Prev =
        It == Before.Histograms.end() ? HistogramState{} : It->second;
    Emit(Name + ".count", H.Count, Prev.Count);
    Emit(Name + ".sum", H.Sum, Prev.Sum);
  }
  return Out;
}

StatSnapshot::FlatMap StatSnapshot::flatten() const {
  FlatMap Out;
  for (const auto &[Name, V] : Counters)
    Out[Name] = V;
  for (const auto &[Name, V] : Gauges)
    Out[Name] = V;
  for (const auto &[Name, H] : Histograms) {
    Out[Name + ".count"] = H.Count;
    Out[Name + ".sum"] = H.Sum;
  }
  return Out;
}

void StatRegistry::print(std::ostream &OS) const {
  for (const auto &[Name, C] : Counters) {
    if (C->value() == 0)
      continue;
    OS << formatString("%12llu  %-40s %s\n",
                       static_cast<unsigned long long>(C->value()),
                       Name.c_str(), C->description().c_str());
  }
  for (const auto &[Name, G] : Gauges)
    OS << formatString("%12llu  %-40s %s\n",
                       static_cast<unsigned long long>(G.Read()),
                       Name.c_str(), G.Desc.c_str());
  for (const auto &[Name, H] : Histograms) {
    if (H->count() == 0)
      continue;
    OS << formatString(
        "%12llu  %-40s n=%llu min=%llu mean=%.1f max=%llu; %s\n",
        static_cast<unsigned long long>(H->sum()), Name.c_str(),
        static_cast<unsigned long long>(H->count()),
        static_cast<unsigned long long>(H->min()), H->mean(),
        static_cast<unsigned long long>(H->max()),
        H->description().c_str());
  }
}

void StatRegistry::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    W.kv(Name, C->value());
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.kv(Name, G.Read());
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.kv("count", H->count());
    W.kv("sum", H->sum());
    W.kv("min", H->min());
    W.kv("max", H->max());
    W.kv("mean", H->mean());
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

std::string StatRegistry::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

void StatRegistry::forEachCounter(
    const std::function<void(const Counter &)> &Fn) const {
  for (const auto &[Name, C] : Counters)
    Fn(*C);
}

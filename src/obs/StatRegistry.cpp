#include "obs/StatRegistry.h"

#include "obs/Json.h"
#include "support/DenseBitVector.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <mutex>

using namespace nascent;
using namespace nascent::obs;

/// Per-thread stat storage. Slot I belongs to the stat registered with
/// dense index I; a missing slot means "no events on this thread yet".
/// The destructor runs at thread exit, after the thread's last stat
/// event, and folds the shard into the merged bases.
struct StatRegistry::ThreadShard {
  std::vector<uint64_t> Counters;
  std::vector<Histogram::State> Histograms;

  ~ThreadShard() { StatRegistry::global().flushShard(*this); }
};

namespace {

/// Guards the registry maps, every stat's merged base, and gauge reads.
/// Leaked (like the registry itself) so thread-exit flushes that race
/// with process shutdown never touch a destroyed mutex.
std::mutex &statMutex() {
  static std::mutex *Mu = new std::mutex;
  return *Mu;
}

} // namespace

StatRegistry::ThreadShard &StatRegistry::localShard() {
  static thread_local ThreadShard S;
  return S;
}

void StatRegistry::flushShard(ThreadShard &S) {
  std::lock_guard<std::mutex> L(statMutex());
  for (size_t I = 0, E = S.Counters.size(); I != E; ++I)
    if (S.Counters[I])
      CountersByIdx[I]->Base += S.Counters[I];
  for (size_t I = 0, E = S.Histograms.size(); I != E; ++I)
    if (S.Histograms[I].Count)
      HistogramsByIdx[I]->Base.merge(S.Histograms[I]);
  S.Counters.clear();
  S.Histograms.clear();
  DenseBitVector::retireThreadOps();
}

void Counter::add(uint64_t N) {
  std::vector<uint64_t> &Slots = StatRegistry::localShard().Counters;
  if (Slots.size() <= Idx)
    Slots.resize(Idx + 1, 0);
  Slots[Idx] += N;
}

uint64_t Counter::value() const {
  const std::vector<uint64_t> &Slots = StatRegistry::localShard().Counters;
  uint64_t Local = Idx < Slots.size() ? Slots[Idx] : 0;
  std::lock_guard<std::mutex> L(statMutex());
  return Base + Local;
}

void Counter::reset() {
  std::vector<uint64_t> &Slots = StatRegistry::localShard().Counters;
  if (Idx < Slots.size())
    Slots[Idx] = 0;
  std::lock_guard<std::mutex> L(statMutex());
  Base = 0;
}

void Histogram::State::record(uint64_t V) {
  ++Count;
  Sum += V;
  if (V < Min)
    Min = V;
  if (V > Max)
    Max = V;
  size_t Bucket = V == 0 ? 0 : 64 - static_cast<size_t>(__builtin_clzll(V));
  ++Buckets[Bucket];
}

void Histogram::State::merge(const State &Other) {
  Count += Other.Count;
  Sum += Other.Sum;
  if (Other.Min < Min)
    Min = Other.Min;
  if (Other.Max > Max)
    Max = Other.Max;
  for (size_t I = 0; I != NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
}

void Histogram::record(uint64_t V) {
  std::vector<State> &Slots = StatRegistry::localShard().Histograms;
  if (Slots.size() <= Idx)
    Slots.resize(Idx + 1);
  Slots[Idx].record(V);
}

Histogram::State Histogram::merged() const {
  const std::vector<State> &Slots = StatRegistry::localShard().Histograms;
  State Out;
  {
    std::lock_guard<std::mutex> L(statMutex());
    Out = Base;
  }
  if (Idx < Slots.size())
    Out.merge(Slots[Idx]);
  return Out;
}

void Histogram::reset() {
  std::vector<State> &Slots = StatRegistry::localShard().Histograms;
  if (Idx < Slots.size())
    Slots[Idx] = State{};
  std::lock_guard<std::mutex> L(statMutex());
  Base = State{};
}

StatRegistry &StatRegistry::global() {
  static StatRegistry *R = [] {
    auto *Reg = new StatRegistry();
    // Built-in gauges over support-layer state. The support library sits
    // below obs in the layering, so it exposes raw totals and the
    // registry adopts them here.
    Reg->gauge(
        "support.bitvector.word_ops",
        [] { return DenseBitVector::wordOps(); },
        "word-parallel bit-vector operations (|=, &=, andNot, count, ==)");
    return Reg;
  }();
  return *R;
}

Counter &StatRegistry::counter(const std::string &Name,
                               const std::string &Desc) {
  std::lock_guard<std::mutex> L(statMutex());
  auto It = Counters.find(Name);
  if (It == Counters.end()) {
    It = Counters
             .emplace(Name, std::make_unique<Counter>(Name, Desc,
                                                      CountersByIdx.size()))
             .first;
    CountersByIdx.push_back(It->second.get());
  }
  return *It->second;
}

Histogram &StatRegistry::histogram(const std::string &Name,
                                   const std::string &Desc) {
  std::lock_guard<std::mutex> L(statMutex());
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    It = Histograms
             .emplace(Name, std::make_unique<Histogram>(
                                Name, Desc, HistogramsByIdx.size()))
             .first;
    HistogramsByIdx.push_back(It->second.get());
  }
  return *It->second;
}

void StatRegistry::gauge(const std::string &Name,
                         std::function<uint64_t()> Read,
                         const std::string &Desc) {
  std::lock_guard<std::mutex> L(statMutex());
  Gauges[Name] = GaugeEntry{std::move(Read), Desc};
}

void StatRegistry::resetAll() {
  ThreadShard &S = localShard();
  std::lock_guard<std::mutex> L(statMutex());
  for (auto &[Name, C] : Counters)
    C->Base = 0;
  for (auto &[Name, H] : Histograms)
    H->Base = Histogram::State{};
  std::fill(S.Counters.begin(), S.Counters.end(), 0);
  std::fill(S.Histograms.begin(), S.Histograms.end(), Histogram::State{});
}

StatSnapshot StatRegistry::snapshot() const {
  const ThreadShard &S = localShard();
  StatSnapshot Out;
  std::lock_guard<std::mutex> L(statMutex());
  for (const auto &[Name, C] : Counters) {
    uint64_t V = C->Base;
    if (C->Idx < S.Counters.size())
      V += S.Counters[C->Idx];
    Out.Counters[Name] = V;
  }
  for (const auto &[Name, G] : Gauges)
    Out.Gauges[Name] = G.Read();
  for (const auto &[Name, H] : Histograms) {
    Histogram::State M = H->Base;
    if (H->Idx < S.Histograms.size())
      M.merge(S.Histograms[H->Idx]);
    Out.Histograms[Name] = StatSnapshot::HistogramState{M.Count, M.Sum};
  }
  return Out;
}

namespace {

uint64_t monotoneDelta(uint64_t After, uint64_t Before) {
  return After > Before ? After - Before : 0;
}

} // namespace

StatSnapshot::FlatMap
StatSnapshot::deltaFrom(const StatSnapshot &Before) const {
  FlatMap Out;
  auto Emit = [&Out](const std::string &Key, uint64_t After, uint64_t Prev) {
    if (uint64_t D = monotoneDelta(After, Prev))
      Out[Key] = D;
  };
  auto PrevOf = [](const std::map<std::string, uint64_t> &M,
                   const std::string &Key) {
    auto It = M.find(Key);
    return It == M.end() ? uint64_t(0) : It->second;
  };
  for (const auto &[Name, V] : Counters)
    Emit(Name, V, PrevOf(Before.Counters, Name));
  for (const auto &[Name, V] : Gauges)
    Emit(Name, V, PrevOf(Before.Gauges, Name));
  for (const auto &[Name, H] : Histograms) {
    auto It = Before.Histograms.find(Name);
    HistogramState Prev =
        It == Before.Histograms.end() ? HistogramState{} : It->second;
    Emit(Name + ".count", H.Count, Prev.Count);
    Emit(Name + ".sum", H.Sum, Prev.Sum);
  }
  return Out;
}

StatSnapshot::FlatMap StatSnapshot::flatten() const {
  FlatMap Out;
  for (const auto &[Name, V] : Counters)
    Out[Name] = V;
  for (const auto &[Name, V] : Gauges)
    Out[Name] = V;
  for (const auto &[Name, H] : Histograms) {
    Out[Name + ".count"] = H.Count;
    Out[Name + ".sum"] = H.Sum;
  }
  return Out;
}

void StatRegistry::print(std::ostream &OS) const {
  const ThreadShard &S = localShard();
  std::lock_guard<std::mutex> L(statMutex());
  for (const auto &[Name, C] : Counters) {
    uint64_t V = C->Base;
    if (C->Idx < S.Counters.size())
      V += S.Counters[C->Idx];
    if (V == 0)
      continue;
    OS << formatString("%12llu  %-40s %s\n",
                       static_cast<unsigned long long>(V), Name.c_str(),
                       C->description().c_str());
  }
  for (const auto &[Name, G] : Gauges)
    OS << formatString("%12llu  %-40s %s\n",
                       static_cast<unsigned long long>(G.Read()),
                       Name.c_str(), G.Desc.c_str());
  for (const auto &[Name, H] : Histograms) {
    Histogram::State M = H->Base;
    if (H->Idx < S.Histograms.size())
      M.merge(S.Histograms[H->Idx]);
    if (M.Count == 0)
      continue;
    double Mean = static_cast<double>(M.Sum) / static_cast<double>(M.Count);
    OS << formatString(
        "%12llu  %-40s n=%llu min=%llu mean=%.1f max=%llu; %s\n",
        static_cast<unsigned long long>(M.Sum), Name.c_str(),
        static_cast<unsigned long long>(M.Count),
        static_cast<unsigned long long>(M.Min), Mean,
        static_cast<unsigned long long>(M.Max),
        H->description().c_str());
  }
}

void StatRegistry::writeJson(JsonWriter &W) const {
  const ThreadShard &S = localShard();
  std::lock_guard<std::mutex> L(statMutex());
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters) {
    uint64_t V = C->Base;
    if (C->Idx < S.Counters.size())
      V += S.Counters[C->Idx];
    W.kv(Name, V);
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.kv(Name, G.Read());
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    Histogram::State M = H->Base;
    if (H->Idx < S.Histograms.size())
      M.merge(S.Histograms[H->Idx]);
    W.key(Name).beginObject();
    W.kv("count", M.Count);
    W.kv("sum", M.Sum);
    W.kv("min", M.Count ? M.Min : 0);
    W.kv("max", M.Max);
    W.kv("mean", M.Count ? static_cast<double>(M.Sum) /
                               static_cast<double>(M.Count)
                         : 0);
    W.endObject();
  }
  W.endObject();
  W.endObject();
}

std::string StatRegistry::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

void StatRegistry::forEachCounter(
    const std::function<void(const Counter &)> &Fn) const {
  // Collect under the lock, invoke outside it: \p Fn may read values,
  // which takes the lock itself.
  std::vector<const Counter *> All;
  {
    std::lock_guard<std::mutex> L(statMutex());
    All.reserve(Counters.size());
    for (const auto &[Name, C] : Counters)
      All.push_back(C.get());
  }
  for (const Counter *C : All)
    Fn(*C);
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Robust summary statistics for repeated timing measurements: median and
/// MAD (median absolute deviation) as the location/scale pair, plus a
/// bootstrap confidence interval on the median. The bench harnesses
/// summarise each (program, config) timing sample with these and benchdiff
/// flags a time regression only when the intervals separate — the
/// noise-aware half of the regression gate (the deterministic half is the
/// work-proxy counter comparison, which needs no statistics at all).
///
/// The bootstrap uses a fixed-seed splitmix64 generator so the same
/// samples always produce the same interval — bench records must be
/// reproducible byte-for-byte for baseline diffs to stay readable.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_SAMPLING_H
#define NASCENT_OBS_SAMPLING_H

#include <cstdint>
#include <vector>

namespace nascent {
namespace obs {

class JsonWriter;
struct JsonValue;

/// Summary of one sample of repeated measurements.
struct SampleStats {
  uint64_t N = 0;
  double Min = 0;
  double Max = 0;
  double Mean = 0;
  double Median = 0;
  /// Median absolute deviation from the median (unscaled).
  double MAD = 0;
  /// 95 % bootstrap percentile interval on the median. Degenerates to
  /// [Median, Median] for N == 1.
  double CiLow = 0;
  double CiHigh = 0;

  /// {"n":...,"min":...,"max":...,"mean":...,"median":...,"mad":...,
  ///  "ciLow":...,"ciHigh":...}
  void writeJson(JsonWriter &W) const;

  /// Reads the writeJson shape back; false when a field is missing or
  /// mistyped.
  static bool fromJson(const JsonValue &V, SampleStats &Out);
};

/// The median of \p Samples (by copy; the input order is not assumed).
/// Zero for an empty sample.
double median(std::vector<double> Samples);

/// Summarises \p Samples with \p Resamples bootstrap draws for the median
/// interval. Deterministic for fixed inputs.
SampleStats summarizeSamples(const std::vector<double> &Samples,
                             unsigned Resamples = 200);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_SAMPLING_H

#include "obs/Trace.h"

#include "obs/Json.h"

#include <atomic>
#include <ctime>
#include <fstream>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

using namespace nascent;
using namespace nascent::obs;

double obs::processCpuSeconds() {
#if defined(__linux__) || defined(__APPLE__)
  struct timespec TS;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &TS) == 0)
    return static_cast<double>(TS.tv_sec) +
           static_cast<double>(TS.tv_nsec) * 1e-9;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double obs::threadCpuSeconds() {
#if defined(__linux__) || defined(__APPLE__)
  struct timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) == 0)
    return static_cast<double>(TS.tv_sec) +
           static_cast<double>(TS.tv_nsec) * 1e-9;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

uint32_t obs::currentThreadTag() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Tag = Next.fetch_add(1, std::memory_order_relaxed);
  return Tag;
}

namespace {

/// One complete "X" span with an explicit tid and an absolute timestamp.
void writeSpan(JsonWriter &W, const TraceEvent &E, uint32_t Tid,
               uint64_t ShiftUs) {
  W.beginObject();
  W.kv("name", E.Name);
  W.kv("cat", "phase");
  W.kv("ph", "X");
  W.kv("ts", E.StartUs + ShiftUs);
  W.kv("dur", E.DurUs);
  W.kv("pid", 1);
  W.kv("tid", Tid);
  W.endObject();
}

} // namespace

std::string TraceCollector::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents").beginArray();
  for (const TraceEvent &E : Events)
    writeSpan(W, E, Tid, 0);
  W.endArray();
  W.kv("displayTimeUnit", "ms");
  W.endObject();
  return W.take();
}

std::string obs::mergedTraceJson(const std::vector<TraceMergeInput> &Inputs) {
  // Anchor every collector to the earliest epoch so concurrent workers'
  // spans land where they actually overlapped in time.
  bool HaveEpoch = false;
  std::chrono::steady_clock::time_point MinEpoch;
  for (const TraceMergeInput &In : Inputs) {
    if (!In.Collector)
      continue;
    if (!HaveEpoch || In.Collector->epoch() < MinEpoch) {
      MinEpoch = In.Collector->epoch();
      HaveEpoch = true;
    }
  }

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents").beginArray();
  for (const TraceMergeInput &In : Inputs) {
    const TraceCollector *C = In.Collector;
    if (!C)
      continue;
    uint64_t ShiftUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(C->epoch() -
                                                              MinEpoch)
            .count());
    if (!In.Label.empty()) {
      W.beginObject();
      W.kv("name", "thread_name");
      W.kv("ph", "M");
      W.kv("pid", 1);
      W.kv("tid", C->threadTag());
      W.key("args").beginObject();
      W.kv("name", In.Label);
      W.endObject();
      W.endObject();
    }
    for (const TraceEvent &E : C->events())
      writeSpan(W, E, C->threadTag(), ShiftUs);
  }
  W.endArray();
  W.kv("displayTimeUnit", "ms");
  W.endObject();
  return W.take();
}

bool obs::writeMergedTraceFile(const std::vector<TraceMergeInput> &Inputs,
                               const std::string &Path, std::string *Err) {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS) {
    if (Err)
      *Err = "cannot open trace output file '" + Path + "'";
    return false;
  }
  OS << mergedTraceJson(Inputs) << "\n";
  if (!OS) {
    if (Err)
      *Err = "error writing trace output file '" + Path + "'";
    return false;
  }
  return true;
}

bool TraceCollector::writeFile(const std::string &Path,
                               std::string *Err) const {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS) {
    if (Err)
      *Err = "cannot open trace output file '" + Path + "'";
    return false;
  }
  OS << toJson() << "\n";
  if (!OS) {
    if (Err)
      *Err = "error writing trace output file '" + Path + "'";
    return false;
  }
  return true;
}

TraceScope::TraceScope(TraceCollector *C, std::string Name)
    : C(C && C->enabled() ? C : nullptr) {
  if (!this->C)
    return;
  this->Name = std::move(Name);
  StartUs = this->C->nowUs();
  MyDepth = this->C->Depth++;
}

TraceScope::~TraceScope() {
  if (!C)
    return;
  uint64_t EndUs = C->nowUs();
  C->Depth = MyDepth;
  C->Events.push_back(
      TraceEvent{std::move(Name), StartUs, EndUs - StartUs, MyDepth});
}

const PhaseTiming *PhaseTimings::find(const std::string &Name) const {
  for (const PhaseTiming &P : Phases)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

double PhaseTimings::wallOf(const std::string &Name) const {
  const PhaseTiming *P = find(Name);
  return P ? P->WallSeconds : 0;
}

double PhaseTimings::cpuOf(const std::string &Name) const {
  const PhaseTiming *P = find(Name);
  return P ? P->CpuSeconds : 0;
}

ScopedPhase::ScopedPhase(PhaseTimings &PT, std::string Name,
                         std::chrono::steady_clock::time_point PipelineT0,
                         TraceCollector *TC)
    : PT(PT), Name(std::move(Name)), PipelineT0(PipelineT0),
      WallT0(std::chrono::steady_clock::now()), CpuT0(threadCpuSeconds()),
      Trace(TC, this->Name) {}

ScopedPhase::~ScopedPhase() {
  auto WallT1 = std::chrono::steady_clock::now();
  double CpuT1 = threadCpuSeconds();
  PhaseTiming P;
  P.Name = std::move(Name);
  P.WallStart = std::chrono::duration<double>(WallT0 - PipelineT0).count();
  P.WallSeconds = std::chrono::duration<double>(WallT1 - WallT0).count();
  P.CpuSeconds = CpuT1 - CpuT0;
  PT.Phases.push_back(std::move(P));
}

#include "obs/Sampling.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>

using namespace nascent;
using namespace nascent::obs;

double nascent::obs::median(std::vector<double> Samples) {
  if (Samples.empty())
    return 0;
  size_t Mid = Samples.size() / 2;
  std::nth_element(Samples.begin(), Samples.begin() + Mid, Samples.end());
  double Upper = Samples[Mid];
  if (Samples.size() % 2)
    return Upper;
  double Lower = *std::max_element(Samples.begin(), Samples.begin() + Mid);
  return (Lower + Upper) / 2;
}

namespace {

/// splitmix64: tiny, seedable, and good enough for bootstrap resampling.
struct SplitMix64 {
  uint64_t State;

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  size_t below(size_t N) { return static_cast<size_t>(next() % N); }
};

} // namespace

SampleStats nascent::obs::summarizeSamples(const std::vector<double> &Samples,
                                           unsigned Resamples) {
  SampleStats S;
  if (Samples.empty())
    return S;
  S.N = Samples.size();
  S.Min = *std::min_element(Samples.begin(), Samples.end());
  S.Max = *std::max_element(Samples.begin(), Samples.end());
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  S.Median = median(Samples);

  std::vector<double> Dev;
  Dev.reserve(Samples.size());
  for (double V : Samples)
    Dev.push_back(std::fabs(V - S.Median));
  S.MAD = median(std::move(Dev));

  if (Samples.size() == 1 || Resamples == 0) {
    S.CiLow = S.Median;
    S.CiHigh = S.Median;
    return S;
  }

  // Percentile bootstrap of the median. Fixed seed: identical samples
  // must yield identical records.
  SplitMix64 Rng{0x6e617363656e74ull}; // "nascent"
  std::vector<double> Medians;
  Medians.reserve(Resamples);
  std::vector<double> Draw(Samples.size());
  for (unsigned R = 0; R != Resamples; ++R) {
    for (double &D : Draw)
      D = Samples[Rng.below(Samples.size())];
    Medians.push_back(median(Draw));
  }
  std::sort(Medians.begin(), Medians.end());
  auto Percentile = [&Medians](double P) {
    double Idx = P * static_cast<double>(Medians.size() - 1);
    size_t Lo = static_cast<size_t>(Idx);
    size_t Hi = std::min(Lo + 1, Medians.size() - 1);
    double Frac = Idx - static_cast<double>(Lo);
    return Medians[Lo] * (1 - Frac) + Medians[Hi] * Frac;
  };
  S.CiLow = Percentile(0.025);
  S.CiHigh = Percentile(0.975);
  return S;
}

void SampleStats::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.kv("n", N);
  W.kv("min", Min);
  W.kv("max", Max);
  W.kv("mean", Mean);
  W.kv("median", Median);
  W.kv("mad", MAD);
  W.kv("ciLow", CiLow);
  W.kv("ciHigh", CiHigh);
  W.endObject();
}

bool SampleStats::fromJson(const JsonValue &V, SampleStats &Out) {
  if (!V.isObject())
    return false;
  auto Num = [&V](const char *Key, double &Dst) {
    const JsonValue *F = V.get(Key);
    if (!F || !F->isNumber())
      return false;
    Dst = F->Number;
    return true;
  };
  double N = 0;
  if (!Num("n", N) || N < 0)
    return false;
  Out.N = static_cast<uint64_t>(N);
  return Num("min", Out.Min) && Num("max", Out.Max) &&
         Num("mean", Out.Mean) && Num("median", Out.Median) &&
         Num("mad", Out.MAD) && Num("ciLow", Out.CiLow) &&
         Num("ciHigh", Out.CiHigh);
}

#include "obs/BenchDiff.h"

#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/Sampling.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace nascent;
using namespace nascent::obs;

namespace {

/// The discriminator fields a table-harness run element may carry, in the
/// order they join the metric key.
constexpr const char *RunDiscriminators[] = {"source", "scheme", "config",
                                             "impl"};

std::string runKeyPrefix(const JsonValue &Elem) {
  std::string Prefix;
  for (const char *Field : RunDiscriminators)
    if (const JsonValue *V = Elem.get(Field); V && V->isString()) {
      Prefix += V->String;
      Prefix += '/';
    }
  return Prefix;
}

double timeUnitSeconds(const JsonValue &Entry) {
  const JsonValue *Unit = Entry.get("time_unit");
  if (!Unit || !Unit->isString())
    return 1e-9; // google-benchmark's default unit
  if (Unit->String == "ns")
    return 1e-9;
  if (Unit->String == "us")
    return 1e-6;
  if (Unit->String == "ms")
    return 1e-3;
  return 1.0;
}

void extractTableRun(const JsonValue &Elem, std::vector<BenchMetric> &Out) {
  const JsonValue *Run = Elem.get("run");
  if (!Run || !Run->isObject())
    return;
  std::string Prefix = runKeyPrefix(Elem);
  if (const JsonValue *P = Run->get("program"); P && P->isString()) {
    Prefix += P->String;
    Prefix += '/';
  }

  for (const char *Count : {"dynChecks", "dynInstrs", "staticChecks"})
    if (const JsonValue *V = Run->get(Count); V && V->isNumber())
      Out.push_back({Prefix + Count, MetricKind::ExactCount, V->Number,
                     V->Number, V->Number});

  if (const JsonValue *Work = Run->get("work"); Work && Work->isObject())
    for (const auto &[Name, V] : Work->Object)
      if (V.isNumber())
        Out.push_back({Prefix + "work." + Name, MetricKind::ExactCount,
                       V.Number, V.Number, V.Number});

  const JsonValue *Timing = Run->get("timing");
  if (!Timing || !Timing->isObject())
    return;
  for (const auto &[Clock, Stats] : Timing->Object) {
    SampleStats S;
    if (!SampleStats::fromJson(Stats, S))
      continue;
    // Only the CPU clock is gated; wall time under a parallel ctest run
    // is not a property of the code under test.
    bool Cpu = Clock.find("Cpu") != std::string::npos;
    Out.push_back({Prefix + "timing." + Clock,
                   Cpu ? MetricKind::TimeSeconds : MetricKind::Informational,
                   S.Median, S.CiLow, S.CiHigh});
  }
}

void extractGoogleBenchmark(const JsonValue &Google,
                            std::vector<BenchMetric> &Out) {
  const JsonValue *Benchmarks = Google.get("benchmarks");
  if (!Benchmarks || !Benchmarks->isArray())
    return;
  for (const JsonValue &Entry : Benchmarks->Array) {
    if (!Entry.isObject())
      continue;
    // Gate only the median aggregates: single-repetition entries carry no
    // location estimate worth comparing.
    const JsonValue *Aggregate = Entry.get("aggregate_name");
    if (!Aggregate || !Aggregate->isString() ||
        Aggregate->String != "median")
      continue;
    const JsonValue *Name = Entry.get("run_name");
    if (!Name || !Name->isString())
      Name = Entry.get("name");
    if (!Name || !Name->isString())
      continue;
    double Unit = timeUnitSeconds(Entry);
    if (const JsonValue *V = Entry.get("cpu_time"); V && V->isNumber())
      Out.push_back({Name->String + "/cpu_time", MetricKind::TimeSeconds,
                     V->Number * Unit, V->Number * Unit, V->Number * Unit});
    if (const JsonValue *V = Entry.get("real_time"); V && V->isNumber())
      Out.push_back({Name->String + "/real_time",
                     MetricKind::Informational, V->Number * Unit,
                     V->Number * Unit, V->Number * Unit});
  }
}

} // namespace

std::vector<BenchMetric>
nascent::obs::extractBenchMetrics(const JsonValue &Doc) {
  std::vector<BenchMetric> Out;
  if (!Doc.isObject())
    return Out;
  if (const JsonValue *Runs = Doc.get("runs"); Runs && Runs->isArray())
    for (const JsonValue &Elem : Runs->Array)
      if (Elem.isObject())
        extractTableRun(Elem, Out);
  if (const JsonValue *Google = Doc.get("googleBenchmark");
      Google && Google->isObject())
    extractGoogleBenchmark(*Google, Out);
  return Out;
}

namespace {

MetricDiff compareMetric(const BenchMetric &Base, const BenchMetric &Cur,
                         const BenchDiffOptions &Opts) {
  MetricDiff D;
  D.Key = Base.Key;
  D.Kind = Base.Kind;
  D.Baseline = Base.Value;
  D.Current = Cur.Value;

  if (Base.Kind == MetricKind::ExactCount) {
    if (Cur.Value == Base.Value)
      D.Verdict = DiffVerdict::Equal;
    else if (Cur.Value > Base.Value) {
      D.Verdict = DiffVerdict::Regressed;
      D.Note = "deterministic counter increased";
    } else {
      D.Verdict = DiffVerdict::Improved;
      D.Note = "deterministic counter decreased";
    }
    return D;
  }

  if (Base.Kind == MetricKind::Informational) {
    D.Verdict = Cur.Value == Base.Value ? DiffVerdict::Equal
                                        : DiffVerdict::WithinNoise;
    D.Note = "informational (not gated)";
    return D;
  }

  // TimeSeconds: CI separation plus relative margin, over a measurable
  // floor.
  if (Base.Value < Opts.MinTimeSeconds) {
    D.Verdict = Cur.Value == Base.Value ? DiffVerdict::Equal
                                        : DiffVerdict::WithinNoise;
    D.Note = formatString("below the %.0f us gating floor",
                          Opts.MinTimeSeconds * 1e6);
    return D;
  }
  double UpperBar = Base.Value * (1 + Opts.TimeMargin);
  double LowerBar = Base.Value / (1 + Opts.TimeMargin);
  if (Cur.CiLow > Base.CiHigh && Cur.Value > UpperBar) {
    D.Verdict = DiffVerdict::Regressed;
    D.Note = formatString("%.2fx slower, outside the 95%% CI",
                          Cur.Value / Base.Value);
  } else if (Cur.CiHigh < Base.CiLow && Cur.Value < LowerBar) {
    D.Verdict = DiffVerdict::Improved;
    D.Note = formatString("%.2fx faster, outside the 95%% CI",
                          Base.Value / std::max(Cur.Value, 1e-12));
  } else if (Cur.Value == Base.Value) {
    D.Verdict = DiffVerdict::Equal;
  } else {
    D.Verdict = DiffVerdict::WithinNoise;
  }
  return D;
}

void diffEnv(const JsonValue &Baseline, const JsonValue &Current,
             BenchDiffResult &R) {
  const JsonValue *BE = Baseline.get("env");
  const JsonValue *CE = Current.get("env");
  if (!BE || !CE)
    return;
  BenchEnv B, C;
  readBenchEnv(*BE, B);
  readBenchEnv(*CE, C);
  auto Drift = [&R](const char *Field, const std::string &Base,
                    const std::string &Cur) {
    if (Base != Cur)
      R.EnvDrift.push_back(std::string(Field) + ": '" + Base + "' -> '" +
                           Cur + "'");
  };
  Drift("compiler", B.Compiler, C.Compiler);
  Drift("buildType", B.BuildType, C.BuildType);
  Drift("cxxFlags", B.CxxFlags, C.CxxFlags);
  Drift("sanitize", B.Sanitize, C.Sanitize);
  Drift("gitSha", B.GitSha, C.GitSha);
  Drift("cpu", B.Cpu, C.Cpu);
}

} // namespace

BenchDiffResult
nascent::obs::diffBenchDocuments(const JsonValue &Baseline,
                                 const JsonValue &Current,
                                 const BenchDiffOptions &Opts) {
  BenchDiffResult R;
  if (const JsonValue *H = Current.get("harness"); H && H->isString())
    R.Harness = H->String;
  diffEnv(Baseline, Current, R);

  std::vector<BenchMetric> Base = extractBenchMetrics(Baseline);
  std::vector<BenchMetric> Cur = extractBenchMetrics(Current);
  std::map<std::string, const BenchMetric *> CurByKey;
  for (const BenchMetric &M : Cur)
    CurByKey[M.Key] = &M;
  std::map<std::string, const BenchMetric *> BaseByKey;
  for (const BenchMetric &M : Base)
    BaseByKey[M.Key] = &M;

  for (const BenchMetric &B : Base) {
    auto It = CurByKey.find(B.Key);
    if (It == CurByKey.end()) {
      MetricDiff D;
      D.Key = B.Key;
      D.Kind = B.Kind;
      D.Verdict = DiffVerdict::MissingInCurrent;
      D.Baseline = B.Value;
      D.Note = "metric vanished — stale baseline?";
      R.Diffs.push_back(std::move(D));
      continue;
    }
    R.Diffs.push_back(compareMetric(B, *It->second, Opts));
  }
  for (const BenchMetric &C : Cur)
    if (!BaseByKey.count(C.Key)) {
      MetricDiff D;
      D.Key = C.Key;
      D.Kind = C.Kind;
      D.Verdict = DiffVerdict::NewInCurrent;
      D.Current = C.Value;
      D.Note = "no baseline yet";
      R.Diffs.push_back(std::move(D));
    }

  for (const MetricDiff &D : R.Diffs)
    switch (D.Verdict) {
    case DiffVerdict::Equal:
      ++R.NumEqual;
      break;
    case DiffVerdict::WithinNoise:
      ++R.NumWithinNoise;
      break;
    case DiffVerdict::Improved:
      ++R.NumImproved;
      break;
    case DiffVerdict::Regressed:
      ++R.NumRegressed;
      break;
    case DiffVerdict::MissingInCurrent:
      ++R.NumMissing;
      break;
    case DiffVerdict::NewInCurrent:
      ++R.NumNew;
      break;
    }
  return R;
}

namespace {

const char *verdictWord(DiffVerdict V) {
  switch (V) {
  case DiffVerdict::Equal:
    return "equal";
  case DiffVerdict::WithinNoise:
    return "within noise";
  case DiffVerdict::Improved:
    return "**improved**";
  case DiffVerdict::Regressed:
    return "**REGRESSED**";
  case DiffVerdict::MissingInCurrent:
    return "**MISSING**";
  case DiffVerdict::NewInCurrent:
    return "new";
  }
  return "?";
}

std::string formatMetricValue(MetricKind Kind, double V) {
  if (Kind == MetricKind::ExactCount)
    return formatString("%.0f", V);
  return formatString("%.3f ms", V * 1e3);
}

/// Ordering for the report: regressions first, then missing, improved,
/// new; noise and equal rows are summarised, not listed.
int verdictRank(DiffVerdict V) {
  switch (V) {
  case DiffVerdict::Regressed:
    return 0;
  case DiffVerdict::MissingInCurrent:
    return 1;
  case DiffVerdict::Improved:
    return 2;
  case DiffVerdict::NewInCurrent:
    return 3;
  case DiffVerdict::WithinNoise:
    return 4;
  case DiffVerdict::Equal:
    return 5;
  }
  return 6;
}

} // namespace

std::string
nascent::obs::renderMarkdownReport(const BenchDiffResult &R,
                                   const std::string &BaselineName) {
  std::string Out;
  Out += "# benchdiff: " +
         (R.Harness.empty() ? std::string("<unknown harness>") : R.Harness) +
         "\n\n";
  Out += "Baseline: `" + BaselineName + "`\n\n";
  Out += std::string("Verdict: ") +
         (R.hasRegression() ? "**REGRESSION**" : "ok") + " — ";
  Out += formatString("%zu regressed, %zu missing, %zu improved, %zu new, "
                      "%zu within noise, %zu equal\n\n",
                      R.NumRegressed, R.NumMissing, R.NumImproved, R.NumNew,
                      R.NumWithinNoise, R.NumEqual);

  if (!R.EnvDrift.empty()) {
    Out += "Environment drift (informational):\n\n";
    for (const std::string &D : R.EnvDrift)
      Out += "- " + D + "\n";
    Out += "\n";
  }

  std::vector<const MetricDiff *> Listed;
  for (const MetricDiff &D : R.Diffs)
    if (D.Verdict != DiffVerdict::Equal &&
        D.Verdict != DiffVerdict::WithinNoise)
      Listed.push_back(&D);
  if (Listed.empty())
    return Out;

  std::stable_sort(Listed.begin(), Listed.end(),
                   [](const MetricDiff *A, const MetricDiff *B) {
                     return verdictRank(A->Verdict) < verdictRank(B->Verdict);
                   });

  constexpr size_t MaxRows = 64;
  Out += "| metric | baseline | current | verdict | note |\n";
  Out += "|---|---|---|---|---|\n";
  size_t Rows = 0;
  for (const MetricDiff *D : Listed) {
    if (++Rows > MaxRows) {
      Out += formatString("\n…and %zu more rows.\n",
                          Listed.size() - MaxRows);
      break;
    }
    std::string Base = D->Verdict == DiffVerdict::NewInCurrent
                           ? "—"
                           : formatMetricValue(D->Kind, D->Baseline);
    std::string Cur = D->Verdict == DiffVerdict::MissingInCurrent
                          ? "—"
                          : formatMetricValue(D->Kind, D->Current);
    Out += "| `" + D->Key + "` | " + Base + " | " + Cur + " | " +
           verdictWord(D->Verdict) + " | " + D->Note + " |\n";
  }
  return Out;
}

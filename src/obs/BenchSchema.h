//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned bench record schema. Every machine-readable document the
/// project emits (`--json` harness output, `mfc -stats-json`,
/// `audit_all --json`) is stamped with `schemaVersion`; bench documents
/// additionally carry the harness name, an environment block (compiler,
/// build type, flags, sanitizers, git revision, CPU), and the repetition
/// config, so a baseline file read months later still says what produced
/// it. `validateBenchDocument` is the structural half of the regression
/// gate: json_check rejects unknown versions and missing required fields,
/// not just unparsable text.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_BENCHSCHEMA_H
#define NASCENT_OBS_BENCHSCHEMA_H

#include <cstdint>
#include <string>

namespace nascent {
namespace obs {

class JsonWriter;
struct JsonValue;

/// Version of the bench/stats document schema. Bump on any incompatible
/// shape change and teach validateBenchDocument/benchdiff the new shape.
constexpr int64_t BenchSchemaVersion = 1;

/// Where a measurement ran: everything that could plausibly explain a
/// perf delta that is not a code change.
struct BenchEnv {
  std::string Compiler;      ///< compiler id + version ("GNU 12.2.0")
  std::string BuildType;     ///< CMAKE_BUILD_TYPE at configure time
  std::string CxxFlags;      ///< CMAKE_CXX_FLAGS at configure time
  std::string Sanitize;      ///< NASCENT_SANITIZE config ("" when off)
  std::string GitSha;        ///< HEAD revision, "unknown" outside a repo
  std::string Cpu;           ///< CPU model string from /proc/cpuinfo
  uint64_t HardwareThreads = 0;
};

/// Captures the current environment. The git revision is resolved by
/// running `git rev-parse HEAD` in the working directory; everything else
/// is compile-time definitions or /proc.
BenchEnv captureBenchEnv();

/// {"compiler":...,"buildType":...,"cxxFlags":...,"sanitize":...,
///  "gitSha":...,"cpu":...,"hardwareThreads":...}
void writeBenchEnv(JsonWriter &W, const BenchEnv &Env);

/// Reads the writeBenchEnv shape; unknown keys are ignored, missing keys
/// leave the default.
bool readBenchEnv(const JsonValue &V, BenchEnv &Out);

/// Structural validation of one bench document: top-level object with a
/// known schemaVersion, a harness name, an env block with every required
/// field, a config block, and either a "runs" array (table harnesses,
/// each element carrying a "run" object with the measured fields) or a
/// "googleBenchmark" object (the wrapped google-benchmark harnesses).
/// On failure returns false and describes the first problem in \p Err.
bool validateBenchDocument(const JsonValue &Doc, std::string *Err);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_BENCHSCHEMA_H

#include "obs/BenchSchema.h"

#include "obs/Json.h"

#include <cstdio>
#include <fstream>
#include <thread>

#ifndef NASCENT_COMPILER_ID
#define NASCENT_COMPILER_ID "unknown"
#endif
#ifndef NASCENT_BUILD_TYPE
#define NASCENT_BUILD_TYPE "unknown"
#endif
#ifndef NASCENT_CXX_FLAGS
#define NASCENT_CXX_FLAGS ""
#endif
#ifndef NASCENT_SANITIZE_CONFIG
#define NASCENT_SANITIZE_CONFIG ""
#endif

using namespace nascent;
using namespace nascent::obs;

namespace {

std::string firstLineOfCommand(const char *Cmd) {
  FILE *P = popen(Cmd, "r");
  if (!P)
    return "";
  char Buf[256] = {};
  std::string Out;
  if (std::fgets(Buf, sizeof(Buf), P))
    Out = Buf;
  pclose(P);
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return Out;
}

std::string cpuModel() {
  std::ifstream In("/proc/cpuinfo");
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    if (Line.compare(0, 10, "model name") == 0) {
      size_t Start = Line.find_first_not_of(" \t", Colon + 1);
      return Start == std::string::npos ? "" : Line.substr(Start);
    }
  }
  return "unknown";
}

} // namespace

BenchEnv nascent::obs::captureBenchEnv() {
  BenchEnv Env;
  Env.Compiler = NASCENT_COMPILER_ID;
  Env.BuildType = NASCENT_BUILD_TYPE;
  Env.CxxFlags = NASCENT_CXX_FLAGS;
  Env.Sanitize = NASCENT_SANITIZE_CONFIG;
  Env.GitSha = firstLineOfCommand("git rev-parse HEAD 2>/dev/null");
  if (Env.GitSha.empty())
    Env.GitSha = "unknown";
  Env.Cpu = cpuModel();
  Env.HardwareThreads = std::thread::hardware_concurrency();
  return Env;
}

void nascent::obs::writeBenchEnv(JsonWriter &W, const BenchEnv &Env) {
  W.beginObject();
  W.kv("compiler", Env.Compiler);
  W.kv("buildType", Env.BuildType);
  W.kv("cxxFlags", Env.CxxFlags);
  W.kv("sanitize", Env.Sanitize);
  W.kv("gitSha", Env.GitSha);
  W.kv("cpu", Env.Cpu);
  W.kv("hardwareThreads", Env.HardwareThreads);
  W.endObject();
}

bool nascent::obs::readBenchEnv(const JsonValue &V, BenchEnv &Out) {
  if (!V.isObject())
    return false;
  auto Str = [&V](const char *Key, std::string &Dst) {
    if (const JsonValue *F = V.get(Key); F && F->isString())
      Dst = F->String;
  };
  Str("compiler", Out.Compiler);
  Str("buildType", Out.BuildType);
  Str("cxxFlags", Out.CxxFlags);
  Str("sanitize", Out.Sanitize);
  Str("gitSha", Out.GitSha);
  Str("cpu", Out.Cpu);
  if (const JsonValue *F = V.get("hardwareThreads"); F && F->isNumber())
    Out.HardwareThreads = static_cast<uint64_t>(F->Number);
  return true;
}

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool validateRunObject(const JsonValue &Run, size_t Index,
                       std::string *Err) {
  auto At = [Index](const std::string &What) {
    return What + " in runs[" + std::to_string(Index) + "]";
  };
  if (!Run.isObject())
    return fail(Err, At("non-object run"));
  const JsonValue *Program = Run.get("program");
  if (!Program || !Program->isString())
    return fail(Err, At("missing string field 'program'"));
  for (const char *Key : {"dynChecks", "dynInstrs", "staticChecks"}) {
    const JsonValue *F = Run.get(Key);
    if (!F || !F->isNumber())
      return fail(Err, At(std::string("missing numeric field '") + Key +
                          "'"));
  }
  for (const char *Key : {"stats", "timing", "work"}) {
    const JsonValue *F = Run.get(Key);
    if (!F || !F->isObject())
      return fail(Err,
                  At(std::string("missing object field '") + Key + "'"));
  }
  return true;
}

} // namespace

bool nascent::obs::validateBenchDocument(const JsonValue &Doc,
                                         std::string *Err) {
  if (!Doc.isObject())
    return fail(Err, "document is not a JSON object");

  const JsonValue *Version = Doc.get("schemaVersion");
  if (!Version || !Version->isNumber())
    return fail(Err, "missing numeric field 'schemaVersion'");
  if (Version->Number != static_cast<double>(BenchSchemaVersion))
    return fail(Err, "unknown schemaVersion " +
                         std::to_string(Version->Number) + " (expected " +
                         std::to_string(BenchSchemaVersion) + ")");

  const JsonValue *Harness = Doc.get("harness");
  if (!Harness || !Harness->isString())
    return fail(Err, "missing string field 'harness'");

  const JsonValue *Env = Doc.get("env");
  if (!Env || !Env->isObject())
    return fail(Err, "missing object field 'env'");
  for (const char *Key :
       {"compiler", "buildType", "gitSha", "cpu", "sanitize"}) {
    const JsonValue *F = Env->get(Key);
    if (!F || !F->isString())
      return fail(Err,
                  std::string("env missing string field '") + Key + "'");
  }
  if (const JsonValue *F = Env->get("hardwareThreads");
      !F || !F->isNumber())
    return fail(Err, "env missing numeric field 'hardwareThreads'");

  const JsonValue *Config = Doc.get("config");
  if (!Config || !Config->isObject())
    return fail(Err, "missing object field 'config'");
  for (const char *Key : {"reps", "warmup"}) {
    const JsonValue *F = Config->get(Key);
    if (!F || !F->isNumber())
      return fail(Err,
                  std::string("config missing numeric field '") + Key +
                      "'");
  }

  const JsonValue *Runs = Doc.get("runs");
  const JsonValue *Google = Doc.get("googleBenchmark");
  if (!Runs && !Google)
    return fail(Err, "document has neither 'runs' nor 'googleBenchmark'");
  if (Runs) {
    if (!Runs->isArray())
      return fail(Err, "'runs' is not an array");
    for (size_t I = 0; I != Runs->Array.size(); ++I) {
      const JsonValue &Elem = Runs->Array[I];
      if (!Elem.isObject())
        return fail(Err, "runs[" + std::to_string(I) + "] is not an object");
      const JsonValue *Run = Elem.get("run");
      if (!Run)
        return fail(Err, "runs[" + std::to_string(I) +
                             "] missing object field 'run'");
      if (!validateRunObject(*Run, I, Err))
        return false;
    }
  }
  if (Google) {
    if (!Google->isObject())
      return fail(Err, "'googleBenchmark' is not an object");
    const JsonValue *Benchmarks = Google->get("benchmarks");
    if (!Benchmarks || !Benchmarks->isArray())
      return fail(Err, "googleBenchmark missing array field 'benchmarks'");
  }
  return true;
}

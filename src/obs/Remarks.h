//===----------------------------------------------------------------------===//
///
/// \file
/// Optimization remarks: a structured record of every per-check decision
/// the optimizer makes, in the spirit of LLVM's -Rpass stream. Each pass
/// (Elimination, CheckStrengthening, LazyCodeMotion, PreheaderInsertion,
/// IntervalAnalysis) emits one remark per decision carrying the check,
/// its family, the block, the verdict, and the justifying fact. Remark
/// totals reconcile exactly with OptimizerStats, which tests assert.
///
/// The interpreter can additionally report per-site dynamic execution
/// counts for the *residual* checks, which are joined back into the
/// remark stream so a remark can say "this surviving check executed N
/// times" (the paper's table-1 metric, per check instead of per program).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_REMARKS_H
#define NASCENT_OBS_REMARKS_H

#include "ir/Instruction.h"

#include <cstdint>
#include <ostream>
#include <regex>
#include <string>
#include <vector>

namespace nascent {

class BasicBlock;
class Function;
class Module;

namespace obs {

class JsonWriter;

/// What happened to a check. The first eight kinds map one-to-one onto
/// OptimizerStats fields; Residual marks a check that survived
/// optimization (emitted only when joining interpreter counts).
enum class RemarkKind {
  Eliminated,         ///< deleted as redundant (availability)
  Strengthened,       ///< replaced by a stronger family member
  LcmInserted,        ///< inserted by lazy code motion placement
  CondInserted,       ///< conditional check hoisted to a preheader
  Rehoisted,          ///< preheader check re-hoisted to an outer loop
  CompileTimeDeleted, ///< constant check proved to pass, deleted
  CompileTimeTrap,    ///< constant check proved to fail, turned into Trap
  IntervalEliminated, ///< proved redundant by interval analysis
  Residual            ///< survived; carries a dynamic execution count
};

const char *remarkKindName(RemarkKind K);

/// One structured optimization remark.
struct Remark {
  RemarkKind Kind = RemarkKind::Eliminated;
  std::string Pass;     ///< emitting pass, e.g. "Elimination"
  std::string Function; ///< enclosing function name
  std::string Block;    ///< basic-block name at the decision point
  std::string CheckStr; ///< rendered check, e.g. "Check(i - n <= -1)"
  std::string FamilyStr;///< rendered family range-expression, e.g. "i - n"
  int64_t Bound = 0;    ///< range constant of the (new) check
  CheckOrigin Origin;   ///< source provenance (array, dim, bound side)
  std::string Justification; ///< the fact justifying the verdict
  uint64_t DynCount = 0;     ///< dynamic executions (Residual remarks)
  bool HasDynCount = false;
};

/// Collects remarks, optionally filtered by a family regex (matched
/// against the family expression and the originating array name, like
/// -Rpass's pass-name filter but over check families).
class RemarkCollector {
public:
  /// Enables collection; a non-empty \p FilterRegex drops remarks whose
  /// family string and array name both fail to match.
  void enable(const std::string &FilterRegex = "");
  bool enabled() const { return Enabled; }

  void emit(Remark R);

  const std::vector<Remark> &remarks() const { return All; }
  size_t count(RemarkKind K) const;

  /// Renders each remark as a human-readable line ("remark: ...").
  void renderText(std::ostream &OS) const;

  /// JSON array of remark objects.
  void writeJson(JsonWriter &W) const;
  std::string toJson() const;

private:
  bool Enabled = false;
  bool HasFilter = false;
  std::regex Filter;
  std::vector<Remark> All;
};

/// Builds the common fields of a per-check remark: the rendered check and
/// family strings use \p F's symbol table; \p BB is the block holding (or
/// receiving) the check.
Remark makeCheckRemark(RemarkKind Kind, std::string Pass, const Function &F,
                       const BasicBlock &BB, const CheckExpr &CE,
                       const CheckOrigin &Origin, std::string Justification);

/// Dynamic execution count of one surviving check site, reported by the
/// interpreter when InterpOptions::CountCheckSites is set. The site is
/// addressed structurally (function, block, instruction index) against
/// the optimized module the interpreter ran.
struct CheckSiteCount {
  std::string Func;
  BlockID Block = 0;
  uint32_t Index = 0; ///< instruction index within the block
  uint64_t Count = 0;
  CheckTag Tag = NoCheckTag; ///< lifecycle tag of the check at the site
};

/// Joins interpreter check-site counts back into the remark stream: one
/// Residual remark per surviving check site in \p M, with DynCount taken
/// from \p Sites (0 for sites the run never reached).
void emitResidualCheckRemarks(const Module &M,
                              const std::vector<CheckSiteCount> &Sites,
                              RemarkCollector &RC);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_REMARKS_H

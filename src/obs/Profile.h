//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic execution profiles: per-site runtime check-cost attribution.
/// Where OptimizerStats and the provenance record describe what the
/// compiler *did* to every check, the execution profile describes what the
/// residual checks *cost* at run time — the paper's bottom-line claim is
/// dynamic, so the profile is the layer that turns "N checks survived"
/// into "these sites executed M checks against K array accesses".
///
/// One ExecutionProfile is attached to a compiled module and accumulates,
/// across any number of runs:
///
///   - block execution frequencies (per function, per BlockID)
///   - loop trip-count histograms for every counted `do` loop, including
///     the partial trip counts of entries cut short by a trap
///   - per-array load/store counts (the denominator of the paper's
///     Table-1 "checks per access" density)
///   - per-check-site dynamic hit and trap counts, keyed by the stable
///     CheckTag from the provenance subsystem — every dynamic cost line
///     links back to the full compile-time decision chain
///
/// Both execution paths feed the same structure: the Interpreter records
/// natively (InterpOptions::Profile), and the instrumented-C back end
/// emits a counter table plus an atexit dump whose per-site counts are
/// bit-identical to the interpreter's on the same program and input
/// (tests/cbackend/ProfileParityTest.cpp enforces the contract).
///
/// All counters are uint64_t and accumulate with saturating adds, so a
/// long run clamps at UINT64_MAX instead of silently wrapping. The
/// serialised form (a versioned `profileVersion` JSON envelope) is
/// byte-identical across repeated runs and BatchCompiler job counts; see
/// docs/profiling.md.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_PROFILE_H
#define NASCENT_OBS_PROFILE_H

#include "ir/CheckExpr.h"
#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nascent {

class Function;
class Module;

namespace obs {

class JsonWriter;
struct JsonValue;

/// Version of the execution-profile document schema, carried as
/// "profileVersion" next to the envelope-wide "schemaVersion". Bump on any
/// incompatible shape change and teach validateProfileDocument the new
/// shape.
constexpr int64_t ProfileVersion = 1;

/// Saturating 64-bit accumulate: clamps at UINT64_MAX instead of
/// wrapping. Every dynamic counter in the profile (and the interpreter's
/// per-site check counts) goes through this, so huge-input runs for the
/// future VM tier degrade to "at least this many" rather than lying.
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? ~uint64_t(0) : S;
}
inline void saturatingInc(uint64_t &C, uint64_t Delta = 1) {
  C = saturatingAdd(C, Delta);
}

/// Dynamic record of one residual range-check instruction.
struct CheckSiteProfile {
  CheckTag Tag = NoCheckTag; ///< lifecycle tag (joins to provenance)
  BlockID Block = 0;
  uint32_t Index = 0;        ///< instruction index within the block
  bool Conditional = false;  ///< CondCheck rather than Check
  std::string CheckStr;      ///< rendered check, e.g. "Check(i - n <= 0)"
  CheckOrigin Origin;        ///< source provenance (array, dim, side, loc)
  uint64_t Hits = 0;         ///< executions, including a trapping one
  uint64_t Traps = 0;        ///< executions that failed the check
};

/// Trip-count behaviour of one counted `do` loop.
struct LoopProfile {
  BlockID Preheader = InvalidBlock;
  BlockID Header = InvalidBlock;
  uint64_t Entries = 0;        ///< times control entered via the preheader
  uint64_t Iterations = 0;     ///< total body iterations over all entries
  uint64_t PartialEntries = 0; ///< entries cut short by a trap or return
  /// Completed trips per entry -> number of entries with that trip count.
  /// Partial entries contribute the trips executed up to the cut.
  std::map<uint64_t, uint64_t> TripHistogram;
};

/// Dynamic load/store counts of one array.
struct ArrayProfile {
  std::string Name;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
};

/// Everything recorded for one function.
struct FunctionProfile {
  std::string Name;
  std::vector<std::string> BlockNames; ///< by BlockID
  std::vector<uint64_t> BlockCounts;   ///< executions, by BlockID
  std::vector<LoopProfile> Loops;      ///< parallel to Function::doLoops()
  std::vector<ArrayProfile> Arrays;    ///< array symbols, SymbolID order
  std::vector<CheckSiteProfile> Sites; ///< (block, index) order
};

/// Per-frame loop-iteration state. The interpreter owns one per call
/// frame (loops in recursive calls count independently) and hands it back
/// to the profile on every block entry and at frame teardown.
struct ProfileFrameState {
  std::vector<uint64_t> Trips; ///< current-entry body iterations, by loop
  std::vector<char> Active;    ///< inside an entry of this loop?
};

/// The execution profile of one compiled module. attach() builds the
/// structural skeleton (every block, loop, array, and residual check site,
/// all at zero) plus the lookup plans the recording hot path needs; the
/// interpreter then streams events into it. Multiple runs accumulate.
class ExecutionProfile {
public:
  static constexpr size_t NoFunction = ~size_t(0);

  /// Builds the zeroed skeleton for \p M and the recording plans. Call
  /// once per compiled module, after optimization (the profile describes
  /// the residual checks).
  void attach(const Module &M);
  bool attached() const { return Attached; }

  /// Index into functions() for \p F; NoFunction when \p F is not part of
  /// the attached module. The interpreter caches this per frame.
  size_t functionIndex(const Function *F) const;

  /// A fresh per-frame loop state for function \p FnIdx.
  ProfileFrameState makeFrameState(size_t FnIdx) const;

  /// Records one execution of block \p B: bumps its frequency and updates
  /// the loop state (preheader resets, body entries count iterations,
  /// exits close the current entry into the trip histogram).
  void enterBlock(size_t FnIdx, BlockID B, ProfileFrameState &FS);

  /// Records one execution of the check at (\p B, \p Index); \p Trapped
  /// when the check failed and the run is about to abort.
  void noteCheck(size_t FnIdx, BlockID B, uint32_t Index, bool Trapped);

  /// Records one array access (Load or Store) of array symbol \p Array.
  void noteAccess(size_t FnIdx, SymbolID Array, bool IsStore);

  /// Closes a call frame: every loop entry still open (the frame died
  /// inside the loop — a trap, fault, or in-loop return) records its
  /// partial trip count and counts as a partial entry.
  void flushFrame(size_t FnIdx, ProfileFrameState &FS);

  /// Records one finished module run and its outcome.
  void noteRun(bool Trapped);

  const std::vector<FunctionProfile> &functions() const { return Funcs; }

  /// Whole-profile totals.
  uint64_t runs() const { return Runs; }
  uint64_t trappedRuns() const { return TrappedRuns; }
  uint64_t dynChecks() const;     ///< sum of site hits
  uint64_t dynTraps() const;      ///< sum of site trap counts
  uint64_t arrayAccesses() const; ///< sum of array loads + stores
  uint64_t residualSites() const; ///< static residual check sites
  /// The paper's density characteristic: dynamic checks per dynamic array
  /// access (0 when no access executed).
  double checksPerAccess() const;

  /// Accumulates \p O into this profile with saturating adds. Both
  /// profiles must describe the same module shape; returns false (and
  /// leaves this profile unchanged) on a structural mismatch.
  bool merge(const ExecutionProfile &O);

  /// The "profile" JSON value: totals plus the per-function structure, in
  /// deterministic (module, block id, site, loop) order.
  void writeJson(JsonWriter &W) const;
  std::string toJson() const;

  /// A complete standalone envelope:
  /// {"schemaVersion":..,"profileVersion":..,"profile":{...}}.
  std::string toEnvelopeJson() const;

private:
  /// Recording plan of one function, derived from the IR at attach time.
  struct Plan {
    /// Loop indices by role, per block: a block can close one loop's
    /// entry, open another's, and start a body all at once — exits are
    /// applied first, then preheaders, then body entries.
    struct Roles {
      std::vector<uint32_t> ExitOf;
      std::vector<uint32_t> PreheaderOf;
      std::vector<uint32_t> BodyOf;
    };
    std::vector<Roles> ByBlock;               ///< by BlockID
    std::vector<std::vector<int32_t>> SiteAt; ///< block -> instr -> site
    std::vector<int32_t> ArrayIndex;          ///< SymbolID -> array index
  };

  void closeLoopEntry(FunctionProfile &FP, uint32_t L, ProfileFrameState &FS,
                      bool Partial);

  bool Attached = false;
  uint64_t Runs = 0;
  uint64_t TrappedRuns = 0;
  std::vector<FunctionProfile> Funcs;
  std::vector<Plan> Plans;
  std::map<const Function *, size_t> FuncIndex;
};

/// Schema validation of a profile document: an object carrying numeric
/// "schemaVersion" (== BenchSchemaVersion) and "profileVersion"
/// (== ProfileVersion) plus either a single "profile" object (mfc / sweep
/// run envelopes) or a "programs" array of per-program scheme comparisons
/// (the profdiff report). json_check dispatches here for any document
/// with a "profileVersion" member.
bool validateProfileDocument(const JsonValue &Doc, std::string *Err);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_PROFILE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The noise-aware bench comparison engine behind `examples/benchdiff`.
/// Two document flavours are understood (both stamped with the
/// obs/BenchSchema.h envelope):
///
///  - table-harness documents: a "runs" array whose elements carry the
///    measured counts, the timing SampleStats blocks, and the "work"
///    object of per-rep StatRegistry deltas;
///  - wrapped google-benchmark documents: a "googleBenchmark" object with
///    the stock "benchmarks" array.
///
/// The comparison discipline mirrors the two kinds of signal:
///
///  - **Deterministic counts** (dynamic/static check and instruction
///    counts, every work-proxy counter) are compared exactly. Any
///    increase is a regression — these cannot be noise.
///  - **Times** (CPU-clock medians) regress only when the bootstrap
///    confidence intervals separate AND the median moved by more than the
///    relative margin; baselines below the measurable floor are
///    informational. Wall-clock times are never gated (a parallel ctest
///    run makes them meaningless) — they are reported informationally.
///  - Metrics present in the baseline but missing from the current run
///    fail the gate (structure drift means the baseline is stale).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_BENCHDIFF_H
#define NASCENT_OBS_BENCHDIFF_H

#include <cstddef>
#include <string>
#include <vector>

namespace nascent {
namespace obs {

struct JsonValue;

/// How a metric participates in the gate.
enum class MetricKind {
  ExactCount,    ///< deterministic; any increase regresses
  TimeSeconds,   ///< noise-aware CI + margin rule
  Informational, ///< reported, never gated (wall times, rates)
};

/// One comparable measurement extracted from a bench document.
struct BenchMetric {
  std::string Key; ///< e.g. "PRX/LLS/arc2d/timing.optimizeCpu"
  MetricKind Kind = MetricKind::ExactCount;
  double Value = 0;
  /// Bootstrap interval for TimeSeconds metrics; equal to Value when the
  /// source had no interval (n == 1, google-benchmark medians).
  double CiLow = 0;
  double CiHigh = 0;
};

enum class DiffVerdict {
  Equal,       ///< identical (exact) or same value (time)
  WithinNoise, ///< time moved inside the noise envelope
  Improved,    ///< count decreased / time separated downward
  Regressed,   ///< count increased / time separated upward
  MissingInCurrent, ///< baseline metric absent now — stale baseline
  NewInCurrent,     ///< current metric with no baseline — informational
};

struct MetricDiff {
  std::string Key;
  MetricKind Kind = MetricKind::ExactCount;
  DiffVerdict Verdict = DiffVerdict::Equal;
  double Baseline = 0;
  double Current = 0;
  std::string Note;
};

struct BenchDiffOptions {
  /// Relative slowdown a time median must exceed, in addition to CI
  /// separation, before it regresses. Generous by default: the gate runs
  /// on --tiny suites where a 50 % swing is well within a loaded
  /// machine's behaviour, and the deterministic counters carry the
  /// fine-grained signal.
  double TimeMargin = 0.5;
  /// Baseline medians below this many seconds are too small to gate.
  double MinTimeSeconds = 1e-4;
};

struct BenchDiffResult {
  std::vector<MetricDiff> Diffs;
  size_t NumEqual = 0;
  size_t NumWithinNoise = 0;
  size_t NumImproved = 0;
  size_t NumRegressed = 0;
  size_t NumMissing = 0;
  size_t NumNew = 0;
  /// Environment fields that differ between the documents (informational;
  /// a new git SHA is the expected state of affairs).
  std::vector<std::string> EnvDrift;
  std::string Harness;

  bool hasRegression() const { return NumRegressed + NumMissing > 0; }
};

/// Flattens \p Doc into comparable metrics. Unknown document shapes yield
/// an empty vector.
std::vector<BenchMetric> extractBenchMetrics(const JsonValue &Doc);

/// Compares \p Current against \p Baseline under \p Opts.
BenchDiffResult diffBenchDocuments(const JsonValue &Baseline,
                                   const JsonValue &Current,
                                   const BenchDiffOptions &Opts = {});

/// Renders the trajectory report: verdict, summary counts, env drift, and
/// a table of every non-equal metric (regressions first).
std::string renderMarkdownReport(const BenchDiffResult &R,
                                 const std::string &BaselineName);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_BENCHDIFF_H

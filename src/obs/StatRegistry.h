//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and histograms for
/// the compiler's internal metrics (CIG nodes/edges, family counts,
/// dataflow block visits, kill-set sizes, bit-vector ops, per-scheme
/// insert/delete tallies). Stats register themselves once via the
/// NASCENT_STAT macros and increment through a plain uint64_t slot, so the
/// always-on cost of a disabled snapshot is one add per event — the
/// <2%-overhead budget of docs/telemetry.md.
///
/// Thread sharding: every increment lands in a thread-local shard (a flat
/// vector indexed by the stat's dense registration index), so hot paths
/// never touch an atomic or a lock. A shard flushes its totals into the
/// stat's merged base when its owning thread exits; reads (value(),
/// snapshot(), print(), writeJson()) return base + the calling thread's
/// own shard under the registry mutex.
///
/// Determinism contract (docs/parallelism.md): a reader observes *exact*
/// totals once every writer thread has been joined — BatchCompiler
/// destroys its ThreadPool before returning, so a post-batch snapshot on
/// the submitting thread is exact, and because integer adds commute the
/// totals are bit-identical to a serial run of the same jobs. Snapshots
/// taken *on* a worker thread bracket only that thread's work plus the
/// stable merged base, which is what keeps per-job deltas exact under
/// --jobs N.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_STATREGISTRY_H
#define NASCENT_OBS_STATREGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace nascent {
namespace obs {

class JsonWriter;
class StatRegistry;

/// A monotonically increasing event count. Increments write the calling
/// thread's shard slot; value() merges the flushed base with the calling
/// thread's slot (see the sharding notes in the file header).
class Counter {
public:
  Counter(std::string Name, std::string Desc, size_t Idx)
      : Name(std::move(Name)), Desc(std::move(Desc)), Idx(Idx) {}

  void inc() { add(1); }
  void add(uint64_t N);
  Counter &operator++() {
    add(1);
    return *this;
  }
  Counter &operator+=(uint64_t N) {
    add(N);
    return *this;
  }

  uint64_t value() const;
  void reset();

  const std::string &name() const { return Name; }
  const std::string &description() const { return Desc; }

private:
  friend class StatRegistry;

  std::string Name;
  std::string Desc;
  /// Dense registration index: the counter's slot in every thread shard.
  size_t Idx;
  /// Totals flushed from exited threads' shards; registry-mutex guarded.
  uint64_t Base = 0;
};

/// A sampled distribution: count/sum/min/max plus power-of-two buckets
/// (bucket K counts samples with floor(log2(v)) == K-1; bucket 0 counts
/// zeros). Used for per-solve visit counts and universe sizes.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  /// The plain mergeable accumulator state — one lives per histogram in
  /// each thread shard, one (the flushed base) in the histogram itself.
  struct State {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = ~uint64_t(0);
    uint64_t Max = 0;
    uint64_t Buckets[NumBuckets] = {};

    void record(uint64_t V);
    void merge(const State &Other);
  };

  Histogram(std::string Name, std::string Desc, size_t Idx)
      : Name(std::move(Name)), Desc(std::move(Desc)), Idx(Idx) {}

  void record(uint64_t V);

  uint64_t count() const { return merged().Count; }
  uint64_t sum() const { return merged().Sum; }
  uint64_t min() const {
    State S = merged();
    return S.Count ? S.Min : 0;
  }
  uint64_t max() const { return merged().Max; }
  double mean() const {
    State S = merged();
    return S.Count ? static_cast<double>(S.Sum) / static_cast<double>(S.Count)
                   : 0;
  }
  uint64_t bucket(size_t K) const { return merged().Buckets[K]; }
  void reset();

  const std::string &name() const { return Name; }
  const std::string &description() const { return Desc; }

private:
  friend class StatRegistry;

  /// Base + the calling thread's shard state, under the registry mutex.
  State merged() const;

  std::string Name;
  std::string Desc;
  size_t Idx;
  /// State flushed from exited threads' shards; registry-mutex guarded.
  State Base;
};

/// A point-in-time copy of every registered stat's value. Snapshots make
/// process-wide (monotonically accumulating) stats usable per interval:
/// take one before and one after a region and `deltaFrom` yields exactly
/// the work done inside it. The bench repetition driver relies on this so
/// `--reps N` reports per-rep counter values instead of N-fold
/// accumulations, and BatchCompiler brackets each job in a snapshot pair
/// on the executing thread to attribute work per job under --jobs N.
class StatSnapshot {
public:
  /// Histograms are summarised by their two monotone accumulators.
  struct HistogramState {
    uint64_t Count = 0;
    uint64_t Sum = 0;
  };

  /// Flat name -> value view: counters and gauges under their registered
  /// names, histograms as "<name>.count" and "<name>.sum". This is the
  /// shape the bench records embed as the "work" object and the shape
  /// benchdiff compares exactly.
  using FlatMap = std::map<std::string, uint64_t>;

  /// The interval view: every stat's growth since \p Before, with
  /// zero-growth entries omitted. Values that shrank (a reset between the
  /// snapshots) saturate to zero rather than wrapping.
  FlatMap deltaFrom(const StatSnapshot &Before) const;

  /// The raw absolute values, same key scheme as deltaFrom.
  FlatMap flatten() const;

private:
  friend class StatRegistry;

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
  std::map<std::string, HistogramState> Histograms;
};

/// The process-wide registry. Lookup by name interns the stat; references
/// returned remain valid for the process lifetime, which is what lets the
/// NASCENT_STAT macros bind a namespace-scope reference once. Interning
/// and whole-registry reads are mutex-guarded so worker threads may
/// intern lazily and snapshot concurrently; per-event increments stay
/// lock-free on the thread shard.
class StatRegistry {
public:
  /// The global registry (created on first use; registers the built-in
  /// gauges of the support layer, e.g. the bit-vector op count).
  static StatRegistry &global();

  Counter &counter(const std::string &Name, const std::string &Desc = "");
  Histogram &histogram(const std::string &Name, const std::string &Desc = "");

  /// Registers a gauge: a value read via callback at snapshot time.
  /// Re-registering a name replaces the callback.
  void gauge(const std::string &Name, std::function<uint64_t()> Read,
             const std::string &Desc = "");

  /// Zeroes every counter and histogram (gauges read external state and
  /// are left alone). Only the calling thread's shard is cleared along
  /// with the merged base, so this is exact when no other thread is
  /// mutating stats — the same quiescence the read contract requires.
  /// Benchmarks and tests use this to measure deltas.
  void resetAll();

  /// Captures every current value (gauges are read now). Prefer snapshot
  /// pairs over resetAll() for interval measurement: snapshots compose
  /// with nesting and never disturb other observers of the registry.
  StatSnapshot snapshot() const;

  /// Renders every stat as "  <value>  <name>  (<desc>)" lines, sorted by
  /// name, skipping zero-valued counters (LLVM -stats style).
  void print(std::ostream &OS) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void writeJson(JsonWriter &W) const;
  std::string toJson() const;

  void forEachCounter(
      const std::function<void(const Counter &)> &Fn) const;

private:
  friend class Counter;
  friend class Histogram;

  StatRegistry() = default;

  /// Per-thread stat storage: flat value vectors indexed by each stat's
  /// dense Idx. Defined in the .cpp; its destructor flushes into the
  /// merged bases when the owning thread exits.
  struct ThreadShard;

  /// The calling thread's shard (created on first use).
  static ThreadShard &localShard();

  /// Merges \p S into the stats' bases and empties it; called from the
  /// shard destructor at thread exit. Also retires the thread's
  /// DenseBitVector word-op count into the process total.
  void flushShard(ThreadShard &S);

  struct GaugeEntry {
    std::function<uint64_t()> Read;
    std::string Desc;
  };

  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, GaugeEntry> Gauges;
  /// Registration order; the vectors' indices are the shard slot indices.
  std::vector<Counter *> CountersByIdx;
  std::vector<Histogram *> HistogramsByIdx;
};

} // namespace obs
} // namespace nascent

/// Declares a namespace-scope counter reference bound to the global
/// registry. Use in .cpp files:
///   NASCENT_STAT(NumSolves, "dataflow.solves", "data-flow problems solved");
///   ... ++NumSolves;
#define NASCENT_STAT(Var, Name, Desc)                                         \
  static ::nascent::obs::Counter &Var =                                       \
      ::nascent::obs::StatRegistry::global().counter(Name, Desc)

#define NASCENT_STAT_HISTOGRAM(Var, Name, Desc)                               \
  static ::nascent::obs::Histogram &Var =                                     \
      ::nascent::obs::StatRegistry::global().histogram(Name, Desc)

#endif // NASCENT_OBS_STATREGISTRY_H

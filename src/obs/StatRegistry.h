//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and histograms for
/// the compiler's internal metrics (CIG nodes/edges, family counts,
/// dataflow iterations-to-fixpoint, kill-set sizes, bit-vector ops,
/// per-scheme insert/delete tallies). Stats register themselves once via
/// the NASCENT_STAT macros and increment through a plain uint64_t, so the
/// always-on cost of a disabled snapshot is one add per event — the
/// <2%-overhead budget of docs/telemetry.md.
///
/// The compiler is single-threaded; counters are deliberately not atomic.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_STATREGISTRY_H
#define NASCENT_OBS_STATREGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>

namespace nascent {
namespace obs {

class JsonWriter;

/// A monotonically increasing event count.
class Counter {
public:
  Counter(std::string Name, std::string Desc)
      : Name(std::move(Name)), Desc(std::move(Desc)) {}

  void inc() { ++V; }
  void add(uint64_t N) { V += N; }
  Counter &operator++() {
    ++V;
    return *this;
  }
  Counter &operator+=(uint64_t N) {
    V += N;
    return *this;
  }

  uint64_t value() const { return V; }
  void reset() { V = 0; }

  const std::string &name() const { return Name; }
  const std::string &description() const { return Desc; }

private:
  std::string Name;
  std::string Desc;
  uint64_t V = 0;
};

/// A sampled distribution: count/sum/min/max plus power-of-two buckets
/// (bucket K counts samples with floor(log2(v)) == K-1; bucket 0 counts
/// zeros). Used for per-solve iteration counts and universe sizes.
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  Histogram(std::string Name, std::string Desc)
      : Name(std::move(Name)), Desc(std::move(Desc)) {}

  void record(uint64_t V);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }
  uint64_t bucket(size_t K) const { return Buckets[K]; }
  void reset();

  const std::string &name() const { return Name; }
  const std::string &description() const { return Desc; }

private:
  std::string Name;
  std::string Desc;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~uint64_t(0);
  uint64_t Max = 0;
  uint64_t Buckets[NumBuckets] = {};
};

/// A point-in-time copy of every registered stat's value. Snapshots make
/// process-wide (monotonically accumulating) stats usable per interval:
/// take one before and one after a region and `deltaFrom` yields exactly
/// the work done inside it. The bench repetition driver relies on this so
/// `--reps N` reports per-rep counter values instead of N-fold
/// accumulations.
class StatSnapshot {
public:
  /// Histograms are summarised by their two monotone accumulators.
  struct HistogramState {
    uint64_t Count = 0;
    uint64_t Sum = 0;
  };

  /// Flat name -> value view: counters and gauges under their registered
  /// names, histograms as "<name>.count" and "<name>.sum". This is the
  /// shape the bench records embed as the "work" object and the shape
  /// benchdiff compares exactly.
  using FlatMap = std::map<std::string, uint64_t>;

  /// The interval view: every stat's growth since \p Before, with
  /// zero-growth entries omitted. Values that shrank (a reset between the
  /// snapshots) saturate to zero rather than wrapping.
  FlatMap deltaFrom(const StatSnapshot &Before) const;

  /// The raw absolute values, same key scheme as deltaFrom.
  FlatMap flatten() const;

private:
  friend class StatRegistry;

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, uint64_t> Gauges;
  std::map<std::string, HistogramState> Histograms;
};

/// The process-wide registry. Lookup by name interns the stat; references
/// returned remain valid for the process lifetime, which is what lets the
/// NASCENT_STAT macros bind a namespace-scope reference once.
class StatRegistry {
public:
  /// The global registry (created on first use; registers the built-in
  /// gauges of the support layer, e.g. the bit-vector op count).
  static StatRegistry &global();

  Counter &counter(const std::string &Name, const std::string &Desc = "");
  Histogram &histogram(const std::string &Name, const std::string &Desc = "");

  /// Registers a gauge: a value read via callback at snapshot time.
  /// Re-registering a name replaces the callback.
  void gauge(const std::string &Name, std::function<uint64_t()> Read,
             const std::string &Desc = "");

  /// Zeroes every counter and histogram (gauges read external state and
  /// are left alone). Benchmarks and tests use this to measure deltas.
  void resetAll();

  /// Captures every current value (gauges are read now). Prefer snapshot
  /// pairs over resetAll() for interval measurement: snapshots compose
  /// with nesting and never disturb other observers of the registry.
  StatSnapshot snapshot() const;

  /// Renders every stat as "  <value>  <name>  (<desc>)" lines, sorted by
  /// name, skipping zero-valued counters (LLVM -stats style).
  void print(std::ostream &OS) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void writeJson(JsonWriter &W) const;
  std::string toJson() const;

  void forEachCounter(
      const std::function<void(const Counter &)> &Fn) const;

private:
  StatRegistry() = default;

  struct GaugeEntry {
    std::function<uint64_t()> Read;
    std::string Desc;
  };

  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, GaugeEntry> Gauges;
};

} // namespace obs
} // namespace nascent

/// Declares a namespace-scope counter reference bound to the global
/// registry. Use in .cpp files:
///   NASCENT_STAT(NumSolves, "dataflow.solves", "data-flow problems solved");
///   ... ++NumSolves;
#define NASCENT_STAT(Var, Name, Desc)                                         \
  static ::nascent::obs::Counter &Var =                                       \
      ::nascent::obs::StatRegistry::global().counter(Name, Desc)

#define NASCENT_STAT_HISTOGRAM(Var, Name, Desc)                               \
  static ::nascent::obs::Histogram &Var =                                     \
      ::nascent::obs::StatRegistry::global().histogram(Name, Desc)

#endif // NASCENT_OBS_STATREGISTRY_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Check-lifecycle provenance: a structured, replayable record of every
/// decision the pipeline makes about every range check, keyed by the
/// check's stable CheckTag (ir/Instruction.h). Where the remark stream
/// (obs/Remarks.h) answers "what did pass P decide here", provenance
/// answers "what happened to *this* check, end to end":
///
///   Inserted      the check was materialised (Lowering, LazyCodeMotion,
///                 PreheaderInsertion)
///   Strengthened  the payload was replaced in place by a stronger or
///                 rewritten form (CheckStrengthening, INXSynthesis)
///   Moved         the check changed blocks keeping its identity
///                 (PreheaderInsertion re-hoisting)
///   SubsumedBy    deleted because an as-strong check covers it; carries
///                 the witness tag and the justifying implication edge
///                 when determinable (Elimination, PreheaderInsertion
///                 merge)
///   Eliminated    deleted by a static proof (constant folding, interval
///                 analysis), with the proving reason
///   Trapped       proved to always fail; replaced by a Trap that keeps
///                 the tag
///   Residualized  survived the whole pipeline; the interpreter's dynamic
///                 per-site counts attach to this state
///
/// The last event of every check is terminal (SubsumedBy / Eliminated /
/// Trapped / Residualized), and terminal totals reconcile exactly with
/// OptimizerStats (see reconcileCheckProvenance in the opt layer); tests
/// enforce both invariants for all nine placement schemes.
///
/// Events carry no timestamps and are recorded in deterministic pass
/// order, so the serialised form is byte-identical across repeated runs
/// and across BatchCompiler job counts.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_PROVENANCE_H
#define NASCENT_OBS_PROVENANCE_H

#include "ir/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nascent {

class BasicBlock;
class Function;
class Module;

namespace obs {

class JsonWriter;
struct JsonValue;

/// What happened to a check at one point of its lifecycle.
enum class LifecycleKind {
  Inserted,
  Strengthened,
  Moved,
  SubsumedBy,
  Eliminated,
  Trapped,
  Residualized,
};

const char *lifecycleKindName(LifecycleKind K);

/// True for the four states a lifecycle may end in.
bool isTerminalLifecycleKind(LifecycleKind K);

/// One lifecycle event of one check.
struct LifecycleEvent {
  uint32_t Seq = 0; ///< recorder-wide sequence number (recording order)
  CheckTag Tag = NoCheckTag;
  LifecycleKind Kind = LifecycleKind::Inserted;
  std::string Pass;     ///< deciding pass, e.g. "Elimination"
  std::string Function; ///< enclosing function name
  std::string Block;    ///< block holding (or receiving) the check
  std::string CheckStr; ///< rendered check *after* the event
  int64_t Bound = 0;    ///< range constant after the event
  CheckOrigin Origin;   ///< source provenance (array, dim, side, loc)
  std::string Justification; ///< the fact justifying the decision
  /// SubsumedBy: the covering check's tag (0 when the cover is a merge
  /// over all incoming paths and no single witness exists).
  CheckTag OtherTag = NoCheckTag;
  /// The justifying edge/fact rendered as text: the witness check for
  /// subsumption, the pre-rewrite check for strengthening, the bound
  /// expression for loop-limit substitution.
  std::string Edge;
};

/// Collects lifecycle events for one compilation. Disabled recorders cost
/// one branch per record call, mirroring RemarkCollector.
class ProvenanceRecorder {
public:
  void enable() { Enabled = true; }
  bool enabled() const { return Enabled; }

  /// Appends \p E, assigning its sequence number. No-op when disabled.
  void record(LifecycleEvent E);

  const std::vector<LifecycleEvent> &events() const { return All; }

  /// Number of events of \p K emitted by \p Pass (any pass when empty).
  size_t count(LifecycleKind K, const std::string &Pass = "") const;

  /// Distinct tags seen, in first-appearance (i.e. insertion) order.
  std::vector<CheckTag> tags() const;

  /// The last (terminal, once the pipeline finished) event of \p Tag;
  /// null when the tag was never recorded.
  const LifecycleEvent *lastEventOf(CheckTag Tag) const;

  /// Event indices of \p Tag's lifecycle, in order.
  std::vector<size_t> timelineOf(CheckTag Tag) const;

  /// The full provenance object: {"events": [...], "checks": [...]} where
  /// "checks" groups event indices per tag with the terminal state.
  void writeJson(JsonWriter &W) const;
  std::string toJson() const;

  /// DOT rendering of the subsumption/justification graph: one node per
  /// check (tag, final form, terminal state), one edge per witnessed
  /// subsumption, labelled with the deciding pass.
  std::string toDot() const;

  /// Human-readable decision chains for every check whose origin matches
  /// \p Line (and \p Column, when non-zero). Empty when no check at that
  /// site was recorded.
  std::string explainSite(unsigned Line, unsigned Column = 0) const;

  /// The decision chain of one check by lifecycle tag (the form profdiff
  /// reports hot sites in; `mfc -explain=tag:<N>` queries it directly).
  /// Empty when \p Tag was never recorded.
  std::string explainTag(CheckTag Tag) const;

  /// Referenced-but-never-recorded tags (dangling OtherTag references)
  /// and non-terminal final states, as diagnostics. Empty means the
  /// record is closed and internally consistent.
  std::vector<std::string> validate() const;

private:
  bool Enabled = false;
  std::vector<LifecycleEvent> All;
};

/// Builds the common fields of an event; \p BB is the block holding (or
/// receiving) the check, rendered strings use \p F's symbol table.
LifecycleEvent makeLifecycleEvent(LifecycleKind Kind, std::string Pass,
                                  const Function &F, const BasicBlock &BB,
                                  const Instruction &I,
                                  std::string Justification);

/// Records one Inserted event per tagged range check currently in \p M,
/// attributed to \p Pass. The pipeline calls this right after lowering
/// (and optimizer passes record their own insertions as they happen).
void recordInsertedChecks(const Module &M, const std::string &Pass,
                          ProvenanceRecorder &PR);

/// Records the terminal Residualized event for every tagged range check
/// that survived in \p M. The pipeline calls this once optimization (and
/// post-verification) is done.
void recordResidualChecks(const Module &M, ProvenanceRecorder &PR);

/// Schema validation of a provenance envelope document: an object with a
/// numeric "schemaVersion" equal to BenchSchemaVersion and a
/// "provenance" object holding "events"/"checks" arrays whose entries
/// carry the required fields, whose every OtherTag reference resolves to
/// a recorded tag, and whose per-check lifecycles end in a terminal
/// state. json_check dispatches here for provenance documents.
bool validateProvenanceDocument(const JsonValue &Doc, std::string *Err);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_PROVENANCE_H

#include "obs/Remarks.h"

#include "ir/Function.h"
#include "obs/Json.h"
#include "obs/Profile.h"
#include "support/StringUtils.h"

#include <map>

using namespace nascent;
using namespace nascent::obs;

const char *obs::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Eliminated:
    return "eliminated";
  case RemarkKind::Strengthened:
    return "strengthened";
  case RemarkKind::LcmInserted:
    return "lcm-inserted";
  case RemarkKind::CondInserted:
    return "cond-inserted";
  case RemarkKind::Rehoisted:
    return "rehoisted";
  case RemarkKind::CompileTimeDeleted:
    return "compile-time-deleted";
  case RemarkKind::CompileTimeTrap:
    return "compile-time-trap";
  case RemarkKind::IntervalEliminated:
    return "interval-eliminated";
  case RemarkKind::Residual:
    return "residual";
  }
  return "unknown";
}

void RemarkCollector::enable(const std::string &FilterRegex) {
  Enabled = true;
  HasFilter = !FilterRegex.empty();
  if (HasFilter)
    Filter = std::regex(FilterRegex);
}

void RemarkCollector::emit(Remark R) {
  if (!Enabled)
    return;
  if (HasFilter && !std::regex_search(R.FamilyStr, Filter) &&
      !std::regex_search(R.Origin.ArrayName, Filter))
    return;
  All.push_back(std::move(R));
}

size_t RemarkCollector::count(RemarkKind K) const {
  size_t N = 0;
  for (const Remark &R : All)
    if (R.Kind == K)
      ++N;
  return N;
}

void RemarkCollector::renderText(std::ostream &OS) const {
  for (const Remark &R : All) {
    OS << "remark: " << R.Function << ":" << R.Block << ": [" << R.Pass
       << "] " << remarkKindName(R.Kind) << " " << R.CheckStr;
    if (!R.Origin.ArrayName.empty())
      OS << " (array '" << R.Origin.ArrayName << "' dim " << R.Origin.Dim
         << " " << (R.Origin.IsUpper ? "upper" : "lower") << " bound)";
    if (!R.Justification.empty())
      OS << ": " << R.Justification;
    if (R.HasDynCount)
      OS << " [executed " << R.DynCount << " times]";
    OS << "\n";
  }
}

void RemarkCollector::writeJson(JsonWriter &W) const {
  W.beginArray();
  for (const Remark &R : All) {
    W.beginObject();
    W.kv("kind", remarkKindName(R.Kind));
    W.kv("pass", R.Pass);
    W.kv("function", R.Function);
    W.kv("block", R.Block);
    W.kv("check", R.CheckStr);
    W.kv("family", R.FamilyStr);
    W.kv("bound", R.Bound);
    if (!R.Origin.ArrayName.empty()) {
      W.key("origin").beginObject();
      W.kv("array", R.Origin.ArrayName);
      W.kv("dim", R.Origin.Dim);
      W.kv("side", R.Origin.IsUpper ? "upper" : "lower");
      W.endObject();
    }
    W.kv("justification", R.Justification);
    if (R.HasDynCount)
      W.kv("dynCount", R.DynCount);
    W.endObject();
  }
  W.endArray();
}

std::string RemarkCollector::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

Remark obs::makeCheckRemark(RemarkKind Kind, std::string Pass,
                            const Function &F, const BasicBlock &BB,
                            const CheckExpr &CE, const CheckOrigin &Origin,
                            std::string Justification) {
  Remark R;
  R.Kind = Kind;
  R.Pass = std::move(Pass);
  R.Function = F.name();
  R.Block = BB.name();
  R.CheckStr = CE.str(F.symbols());
  R.FamilyStr = CE.expr().str(F.symbols());
  R.Bound = CE.bound();
  R.Origin = Origin;
  R.Justification = std::move(Justification);
  return R;
}

void obs::emitResidualCheckRemarks(const Module &M,
                                   const std::vector<CheckSiteCount> &Sites,
                                   RemarkCollector &RC) {
  if (!RC.enabled())
    return;
  // Index the interpreter's counts by structural site address.
  std::map<std::tuple<std::string, BlockID, uint32_t>, uint64_t> BySite;
  for (const CheckSiteCount &S : Sites)
    saturatingInc(BySite[{S.Func, S.Block, S.Index}], S.Count);

  for (const Function *F : M.functions()) {
    for (const auto &BB : *F) {
      const auto &Insts = BB->instructions();
      for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx) {
        const Instruction &I = Insts[Idx];
        if (!I.isRangeCheck())
          continue;
        Remark R;
        R.Kind = RemarkKind::Residual;
        R.Pass = "Interpreter";
        R.Function = F->name();
        R.Block = BB->name();
        R.CheckStr = I.Check.str(F->symbols());
        R.FamilyStr = I.Check.expr().str(F->symbols());
        R.Bound = I.Check.bound();
        R.Origin = I.Origin;
        auto It = BySite.find({F->name(), BB->id(), Idx});
        R.DynCount = It == BySite.end() ? 0 : It->second;
        R.HasDynCount = true;
        R.Justification =
            I.Op == Opcode::CondCheck
                ? "conditional check survived optimization"
                : "check survived optimization";
        RC.emit(R);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON support for the telemetry subsystem: a streaming writer
/// used by `mfc -stats-json`, the Chrome-trace emitter, and the bench
/// harnesses' --json mode, plus a small recursive-descent parser used by
/// the round-trip tests and the bench-smoke output validator. No external
/// dependency; the dialect is plain RFC 8259 (no comments, no NaN).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_OBS_JSON_H
#define NASCENT_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nascent {
namespace obs {

/// Escapes \p S for inclusion in a JSON string literal (without the
/// surrounding quotes).
std::string jsonEscape(const std::string &S);

/// A streaming JSON writer. Call begin/end in matched pairs; commas and
/// quoting are handled automatically. Keys are only legal directly inside
/// an object, values inside an array or after a key.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// Splices \p Json — which must itself be one well-formed JSON value —
  /// verbatim into the value position. Used to embed a captured
  /// google-benchmark document inside the bench envelope.
  JsonWriter &rawValue(const std::string &Json);

  /// key + value in one call.
  template <typename T> JsonWriter &kv(const std::string &K, T V) {
    key(K);
    return value(V);
  }

  /// The document built so far. Call once nesting is balanced.
  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void comma();

  std::string Out;
  /// One entry per open scope: whether the next element needs a comma.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

/// A parsed JSON value (tree form).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string String;
  std::vector<JsonValue> Array;
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Member lookup; null when absent or not an object.
  const JsonValue *get(const std::string &Key) const;
};

/// Parses \p Text into \p Out. On failure returns false and, when \p Err
/// is non-null, describes the first error with its byte offset. Trailing
/// non-whitespace after the document is an error.
bool parseJson(const std::string &Text, JsonValue &Out,
               std::string *Err = nullptr);

} // namespace obs
} // namespace nascent

#endif // NASCENT_OBS_JSON_H

#include "obs/Profile.h"

#include "ir/Function.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"

using namespace nascent;
using namespace nascent::obs;

void ExecutionProfile::attach(const Module &M) {
  Attached = true;
  Runs = TrappedRuns = 0;
  Funcs.clear();
  Plans.clear();
  FuncIndex.clear();

  for (const Function *F : M.functions()) {
    FuncIndex[F] = Funcs.size();
    FunctionProfile FP;
    Plan P;
    FP.Name = F->name();
    FP.BlockNames.reserve(F->numBlocks());
    for (const auto &BB : *F)
      FP.BlockNames.push_back(BB->name());
    FP.BlockCounts.assign(F->numBlocks(), 0);
    P.ByBlock.resize(F->numBlocks());
    P.SiteAt.resize(F->numBlocks());

    for (uint32_t L = 0; L != F->doLoops().size(); ++L) {
      const DoLoopInfo &DL = F->doLoops()[L];
      LoopProfile LP;
      LP.Preheader = DL.Preheader;
      LP.Header = DL.Header;
      FP.Loops.push_back(std::move(LP));
      if (DL.Exit < F->numBlocks())
        P.ByBlock[DL.Exit].ExitOf.push_back(L);
      if (DL.Preheader < F->numBlocks())
        P.ByBlock[DL.Preheader].PreheaderOf.push_back(L);
      if (DL.BodyEntry < F->numBlocks())
        P.ByBlock[DL.BodyEntry].BodyOf.push_back(L);
    }

    P.ArrayIndex.assign(F->symbols().size(), -1);
    for (SymbolID S = 0; S != F->symbols().size(); ++S) {
      const Symbol &Sym = F->symbols().get(S);
      if (!Sym.isArray())
        continue;
      P.ArrayIndex[S] = static_cast<int32_t>(FP.Arrays.size());
      ArrayProfile AP;
      AP.Name = Sym.Name;
      FP.Arrays.push_back(std::move(AP));
    }

    for (const auto &BB : *F) {
      const auto &Insts = BB->instructions();
      P.SiteAt[BB->id()].assign(Insts.size(), -1);
      for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx) {
        const Instruction &I = Insts[Idx];
        if (!I.isRangeCheck())
          continue;
        P.SiteAt[BB->id()][Idx] = static_cast<int32_t>(FP.Sites.size());
        CheckSiteProfile SP;
        SP.Tag = I.Tag;
        SP.Block = BB->id();
        SP.Index = Idx;
        SP.Conditional = I.Op == Opcode::CondCheck;
        SP.CheckStr = I.Check.str(F->symbols());
        SP.Origin = I.Origin;
        FP.Sites.push_back(std::move(SP));
      }
    }

    Funcs.push_back(std::move(FP));
    Plans.push_back(std::move(P));
  }
}

size_t ExecutionProfile::functionIndex(const Function *F) const {
  auto It = FuncIndex.find(F);
  return It == FuncIndex.end() ? NoFunction : It->second;
}

ProfileFrameState ExecutionProfile::makeFrameState(size_t FnIdx) const {
  ProfileFrameState FS;
  FS.Trips.assign(Funcs[FnIdx].Loops.size(), 0);
  FS.Active.assign(Funcs[FnIdx].Loops.size(), 0);
  return FS;
}

void ExecutionProfile::closeLoopEntry(FunctionProfile &FP, uint32_t L,
                                      ProfileFrameState &FS, bool Partial) {
  LoopProfile &LP = FP.Loops[L];
  saturatingInc(LP.Entries);
  if (Partial)
    saturatingInc(LP.PartialEntries);
  saturatingInc(LP.Iterations, FS.Trips[L]);
  saturatingInc(LP.TripHistogram[FS.Trips[L]]);
  FS.Active[L] = 0;
  FS.Trips[L] = 0;
}

void ExecutionProfile::enterBlock(size_t FnIdx, BlockID B,
                                  ProfileFrameState &FS) {
  FunctionProfile &FP = Funcs[FnIdx];
  saturatingInc(FP.BlockCounts[B]);
  const Plan::Roles &R = Plans[FnIdx].ByBlock[B];
  // A block can close one loop, open the next, and begin a body all at
  // once; apply the roles in lifecycle order.
  for (uint32_t L : R.ExitOf)
    if (FS.Active[L])
      closeLoopEntry(FP, L, FS, /*Partial=*/false);
  for (uint32_t L : R.PreheaderOf) {
    FS.Active[L] = 1;
    FS.Trips[L] = 0;
  }
  for (uint32_t L : R.BodyOf)
    if (FS.Active[L])
      saturatingInc(FS.Trips[L]);
}

void ExecutionProfile::noteCheck(size_t FnIdx, BlockID B, uint32_t Index,
                                 bool Trapped) {
  const std::vector<int32_t> &Sites = Plans[FnIdx].SiteAt[B];
  if (Index >= Sites.size() || Sites[Index] < 0)
    return; // check fabricated after attach; not a profiled site
  CheckSiteProfile &SP = Funcs[FnIdx].Sites[Sites[Index]];
  saturatingInc(SP.Hits);
  if (Trapped)
    saturatingInc(SP.Traps);
}

void ExecutionProfile::noteAccess(size_t FnIdx, SymbolID Array,
                                  bool IsStore) {
  int32_t Idx = Plans[FnIdx].ArrayIndex[Array];
  if (Idx < 0)
    return;
  ArrayProfile &AP = Funcs[FnIdx].Arrays[Idx];
  saturatingInc(IsStore ? AP.Stores : AP.Loads);
}

void ExecutionProfile::flushFrame(size_t FnIdx, ProfileFrameState &FS) {
  FunctionProfile &FP = Funcs[FnIdx];
  // Entries still open died with the frame (trap, fault, or an in-loop
  // return): record the partial trip count up to the cut.
  for (uint32_t L = 0; L != FS.Active.size(); ++L)
    if (FS.Active[L])
      closeLoopEntry(FP, L, FS, /*Partial=*/true);
}

void ExecutionProfile::noteRun(bool Trapped) {
  saturatingInc(Runs);
  if (Trapped)
    saturatingInc(TrappedRuns);
}

uint64_t ExecutionProfile::dynChecks() const {
  uint64_t N = 0;
  for (const FunctionProfile &FP : Funcs)
    for (const CheckSiteProfile &S : FP.Sites)
      N = saturatingAdd(N, S.Hits);
  return N;
}

uint64_t ExecutionProfile::dynTraps() const {
  uint64_t N = 0;
  for (const FunctionProfile &FP : Funcs)
    for (const CheckSiteProfile &S : FP.Sites)
      N = saturatingAdd(N, S.Traps);
  return N;
}

uint64_t ExecutionProfile::arrayAccesses() const {
  uint64_t N = 0;
  for (const FunctionProfile &FP : Funcs)
    for (const ArrayProfile &A : FP.Arrays)
      N = saturatingAdd(N, saturatingAdd(A.Loads, A.Stores));
  return N;
}

uint64_t ExecutionProfile::residualSites() const {
  uint64_t N = 0;
  for (const FunctionProfile &FP : Funcs)
    N += FP.Sites.size();
  return N;
}

double ExecutionProfile::checksPerAccess() const {
  uint64_t Accesses = arrayAccesses();
  if (Accesses == 0)
    return 0.0;
  return static_cast<double>(dynChecks()) / static_cast<double>(Accesses);
}

bool ExecutionProfile::merge(const ExecutionProfile &O) {
  if (Funcs.size() != O.Funcs.size())
    return false;
  for (size_t F = 0; F != Funcs.size(); ++F) {
    const FunctionProfile &A = Funcs[F], &B = O.Funcs[F];
    if (A.Name != B.Name || A.BlockCounts.size() != B.BlockCounts.size() ||
        A.Loops.size() != B.Loops.size() ||
        A.Arrays.size() != B.Arrays.size() ||
        A.Sites.size() != B.Sites.size())
      return false;
  }
  Runs = saturatingAdd(Runs, O.Runs);
  TrappedRuns = saturatingAdd(TrappedRuns, O.TrappedRuns);
  for (size_t F = 0; F != Funcs.size(); ++F) {
    FunctionProfile &A = Funcs[F];
    const FunctionProfile &B = O.Funcs[F];
    for (size_t I = 0; I != A.BlockCounts.size(); ++I)
      A.BlockCounts[I] = saturatingAdd(A.BlockCounts[I], B.BlockCounts[I]);
    for (size_t I = 0; I != A.Loops.size(); ++I) {
      LoopProfile &LA = A.Loops[I];
      const LoopProfile &LB = B.Loops[I];
      LA.Entries = saturatingAdd(LA.Entries, LB.Entries);
      LA.Iterations = saturatingAdd(LA.Iterations, LB.Iterations);
      LA.PartialEntries = saturatingAdd(LA.PartialEntries, LB.PartialEntries);
      for (const auto &[Trips, Count] : LB.TripHistogram)
        saturatingInc(LA.TripHistogram[Trips], Count);
    }
    for (size_t I = 0; I != A.Arrays.size(); ++I) {
      A.Arrays[I].Loads = saturatingAdd(A.Arrays[I].Loads, B.Arrays[I].Loads);
      A.Arrays[I].Stores =
          saturatingAdd(A.Arrays[I].Stores, B.Arrays[I].Stores);
    }
    for (size_t I = 0; I != A.Sites.size(); ++I) {
      A.Sites[I].Hits = saturatingAdd(A.Sites[I].Hits, B.Sites[I].Hits);
      A.Sites[I].Traps = saturatingAdd(A.Sites[I].Traps, B.Sites[I].Traps);
    }
  }
  return true;
}

namespace {

void writeOrigin(JsonWriter &W, const CheckOrigin &O) {
  W.key("origin").beginObject();
  W.kv("array", O.ArrayName);
  W.kv("dim", O.Dim);
  W.kv("side", O.IsUpper ? "upper" : "lower");
  W.kv("line", O.Loc.Line);
  W.kv("col", O.Loc.Column);
  W.endObject();
}

} // namespace

void ExecutionProfile::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.kv("runs", Runs);
  W.kv("trappedRuns", TrappedRuns);
  W.kv("dynChecks", dynChecks());
  W.kv("dynTraps", dynTraps());
  W.kv("arrayAccesses", arrayAccesses());
  W.kv("residualSites", residualSites());
  W.kv("checksPerAccess", checksPerAccess());
  W.key("functions").beginArray();
  for (const FunctionProfile &FP : Funcs) {
    W.beginObject();
    W.kv("name", FP.Name);
    W.key("blocks").beginArray();
    for (size_t B = 0; B != FP.BlockCounts.size(); ++B) {
      W.beginObject();
      W.kv("id", static_cast<uint64_t>(B));
      W.kv("block", FP.BlockNames[B]);
      W.kv("count", FP.BlockCounts[B]);
      W.endObject();
    }
    W.endArray();
    W.key("loops").beginArray();
    for (const LoopProfile &LP : FP.Loops) {
      W.beginObject();
      W.kv("preheader", LP.Preheader);
      W.kv("header", LP.Header);
      W.kv("entries", LP.Entries);
      W.kv("iterations", LP.Iterations);
      W.kv("partialEntries", LP.PartialEntries);
      W.key("tripCounts").beginArray();
      for (const auto &[Trips, Count] : LP.TripHistogram) {
        W.beginObject();
        W.kv("trips", Trips);
        W.kv("count", Count);
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    W.key("arrays").beginArray();
    for (const ArrayProfile &A : FP.Arrays) {
      W.beginObject();
      W.kv("array", A.Name);
      W.kv("loads", A.Loads);
      W.kv("stores", A.Stores);
      W.endObject();
    }
    W.endArray();
    W.key("checkSites").beginArray();
    for (const CheckSiteProfile &S : FP.Sites) {
      W.beginObject();
      W.kv("tag", S.Tag);
      W.kv("block", S.Block);
      W.kv("index", S.Index);
      W.kv("kind", S.Conditional ? "cond-check" : "check");
      W.kv("check", S.CheckStr);
      writeOrigin(W, S.Origin);
      W.kv("hits", S.Hits);
      W.kv("traps", S.Traps);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string ExecutionProfile::toJson() const {
  JsonWriter W;
  writeJson(W);
  return W.take();
}

std::string ExecutionProfile::toEnvelopeJson() const {
  JsonWriter W;
  W.beginObject();
  W.kv("schemaVersion", BenchSchemaVersion);
  W.kv("profileVersion", ProfileVersion);
  W.key("profile");
  writeJson(W);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Schema validation
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool requireNumbers(const JsonValue &O, const std::string &At,
                    std::initializer_list<const char *> Keys,
                    std::string *Err) {
  for (const char *Key : Keys) {
    const JsonValue *F = O.get(Key);
    if (!F || !F->isNumber())
      return fail(Err,
                  At + " missing numeric field '" + std::string(Key) + "'");
  }
  return true;
}

bool requireStrings(const JsonValue &O, const std::string &At,
                    std::initializer_list<const char *> Keys,
                    std::string *Err) {
  for (const char *Key : Keys) {
    const JsonValue *F = O.get(Key);
    if (!F || !F->isString())
      return fail(Err,
                  At + " missing string field '" + std::string(Key) + "'");
  }
  return true;
}

const JsonValue *requireArray(const JsonValue &O, const std::string &At,
                              const char *Key, std::string *Err) {
  const JsonValue *F = O.get(Key);
  if (!F || !F->isArray()) {
    fail(Err, At + " missing array field '" + std::string(Key) + "'");
    return nullptr;
  }
  return F;
}

/// Validates one "profile" object and its internal consistency: the
/// advertised totals must equal the sums over the per-function structure.
bool validateProfileObject(const JsonValue &P, const std::string &At,
                           std::string *Err) {
  if (!P.isObject())
    return fail(Err, At + " is not an object");
  if (!requireNumbers(P, At,
                      {"runs", "trappedRuns", "dynChecks", "dynTraps",
                       "arrayAccesses", "residualSites", "checksPerAccess"},
                      Err))
    return false;
  const JsonValue *Fns = requireArray(P, At, "functions", Err);
  if (!Fns)
    return false;

  double SumHits = 0, SumTraps = 0, SumAccesses = 0, SumSites = 0;
  for (size_t I = 0; I != Fns->Array.size(); ++I) {
    const JsonValue &F = Fns->Array[I];
    std::string FAt = At + ".functions[" + std::to_string(I) + "]";
    if (!F.isObject())
      return fail(Err, FAt + " is not an object");
    if (!requireStrings(F, FAt, {"name"}, Err))
      return false;
    const JsonValue *Blocks = requireArray(F, FAt, "blocks", Err);
    const JsonValue *Loops = requireArray(F, FAt, "loops", Err);
    const JsonValue *Arrays = requireArray(F, FAt, "arrays", Err);
    const JsonValue *Sites = requireArray(F, FAt, "checkSites", Err);
    if (!Blocks || !Loops || !Arrays || !Sites)
      return false;
    for (size_t B = 0; B != Blocks->Array.size(); ++B) {
      std::string BAt = FAt + ".blocks[" + std::to_string(B) + "]";
      if (!requireNumbers(Blocks->Array[B], BAt, {"id", "count"}, Err) ||
          !requireStrings(Blocks->Array[B], BAt, {"block"}, Err))
        return false;
    }
    for (size_t L = 0; L != Loops->Array.size(); ++L) {
      std::string LAt = FAt + ".loops[" + std::to_string(L) + "]";
      if (!requireNumbers(Loops->Array[L], LAt,
                          {"preheader", "header", "entries", "iterations",
                           "partialEntries"},
                          Err))
        return false;
      const JsonValue *Trips = requireArray(Loops->Array[L], LAt,
                                            "tripCounts", Err);
      if (!Trips)
        return false;
      double Entries = 0;
      for (size_t T = 0; T != Trips->Array.size(); ++T) {
        std::string TAt = LAt + ".tripCounts[" + std::to_string(T) + "]";
        if (!requireNumbers(Trips->Array[T], TAt, {"trips", "count"}, Err))
          return false;
        Entries += Trips->Array[T].get("count")->Number;
      }
      if (Entries != Loops->Array[L].get("entries")->Number)
        return fail(Err, LAt + " trip histogram does not sum to 'entries'");
    }
    for (size_t A = 0; A != Arrays->Array.size(); ++A) {
      std::string AAt = FAt + ".arrays[" + std::to_string(A) + "]";
      if (!requireNumbers(Arrays->Array[A], AAt, {"loads", "stores"}, Err) ||
          !requireStrings(Arrays->Array[A], AAt, {"array"}, Err))
        return false;
      SumAccesses += Arrays->Array[A].get("loads")->Number +
                     Arrays->Array[A].get("stores")->Number;
    }
    for (size_t S = 0; S != Sites->Array.size(); ++S) {
      std::string SAt = FAt + ".checkSites[" + std::to_string(S) + "]";
      const JsonValue &Site = Sites->Array[S];
      if (!requireNumbers(Site, SAt, {"tag", "block", "index", "hits",
                                      "traps"},
                          Err) ||
          !requireStrings(Site, SAt, {"kind", "check"}, Err))
        return false;
      const JsonValue *Origin = Site.get("origin");
      if (!Origin || !Origin->isObject())
        return fail(Err, SAt + " missing object field 'origin'");
      SumHits += Site.get("hits")->Number;
      SumTraps += Site.get("traps")->Number;
      ++SumSites;
    }
  }
  if (SumHits != P.get("dynChecks")->Number)
    return fail(Err, At + " 'dynChecks' does not equal the sum of site hits");
  if (SumTraps != P.get("dynTraps")->Number)
    return fail(Err, At + " 'dynTraps' does not equal the sum of site traps");
  if (SumAccesses != P.get("arrayAccesses")->Number)
    return fail(Err,
                At + " 'arrayAccesses' does not equal the sum of array "
                     "loads and stores");
  if (SumSites != P.get("residualSites")->Number)
    return fail(Err,
                At + " 'residualSites' does not equal the number of check "
                     "sites");
  return true;
}

/// Validates one profdiff per-program comparison object.
bool validateProgramObject(const JsonValue &P, const std::string &At,
                           std::string *Err) {
  if (!P.isObject())
    return fail(Err, At + " is not an object");
  if (!requireStrings(P, At, {"name"}, Err))
    return false;
  const JsonValue *Schemes = requireArray(P, At, "schemes", Err);
  if (!Schemes)
    return false;
  if (Schemes->Array.empty())
    return fail(Err, At + " has an empty 'schemes' array");
  for (size_t S = 0; S != Schemes->Array.size(); ++S) {
    std::string SAt = At + ".schemes[" + std::to_string(S) + "]";
    if (!requireStrings(Schemes->Array[S], SAt, {"scheme"}, Err) ||
        !requireNumbers(Schemes->Array[S], SAt,
                        {"dynChecks", "dynTraps", "arrayAccesses",
                         "residualSites", "checksPerAccess"},
                        Err))
      return false;
  }
  const JsonValue *Sites = requireArray(P, At, "hotSites", Err);
  if (!Sites)
    return false;
  for (size_t S = 0; S != Sites->Array.size(); ++S) {
    std::string SAt = At + ".hotSites[" + std::to_string(S) + "]";
    if (!requireStrings(Sites->Array[S], SAt, {"site"}, Err) ||
        !requireNumbers(Sites->Array[S], SAt,
                        {"tag", "dynCount", "pctOfAccesses"}, Err))
      return false;
    if (!requireArray(Sites->Array[S], SAt, "eliminatedBy", Err))
      return false;
  }
  return true;
}

} // namespace

bool obs::validateProfileDocument(const JsonValue &Doc, std::string *Err) {
  if (!Doc.isObject())
    return fail(Err, "document is not a JSON object");

  const JsonValue *Version = Doc.get("schemaVersion");
  if (!Version || !Version->isNumber())
    return fail(Err, "missing numeric field 'schemaVersion'");
  if (Version->Number != static_cast<double>(BenchSchemaVersion))
    return fail(Err, "unknown schemaVersion " +
                         std::to_string(Version->Number) + " (expected " +
                         std::to_string(BenchSchemaVersion) + ")");
  const JsonValue *PVersion = Doc.get("profileVersion");
  if (!PVersion || !PVersion->isNumber())
    return fail(Err, "missing numeric field 'profileVersion'");
  if (PVersion->Number != static_cast<double>(ProfileVersion))
    return fail(Err, "unknown profileVersion " +
                         std::to_string(PVersion->Number) + " (expected " +
                         std::to_string(ProfileVersion) + ")");

  if (const JsonValue *P = Doc.get("profile"))
    return validateProfileObject(*P, "profile", Err);

  if (const JsonValue *Programs = Doc.get("programs")) {
    if (!Programs->isArray())
      return fail(Err, "'programs' is not an array");
    if (Programs->Array.empty())
      return fail(Err, "'programs' array is empty");
    for (size_t I = 0; I != Programs->Array.size(); ++I)
      if (!validateProgramObject(Programs->Array[I],
                                 "programs[" + std::to_string(I) + "]", Err))
        return false;
    return true;
  }

  return fail(Err, "document has neither 'profile' nor 'programs'");
}

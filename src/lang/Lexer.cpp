#include "lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace nascent;

const char *nascent::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::RealLiteral:
    return "real literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwSubroutine:
    return "'subroutine'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwInteger:
    return "'integer'";
  case TokenKind::KwReal:
    return "'real'";
  case TokenKind::KwLogical:
    return "'logical'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElseif:
    return "'elseif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'/='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = peek();
    if (C == '!') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
    } else if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
    } else {
      break;
    }
  }
}

Token Lexer::lexNumber() {
  SourceLocation Loc = here();
  std::string Digits;
  bool IsReal = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peekAhead()))) {
    IsReal = true;
    Digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    std::string Exp;
    Exp += advance();
    if (peek() == '+' || peek() == '-')
      Exp += advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsReal = true;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Exp += advance();
      Digits += Exp;
    } else {
      // Not an exponent after all (e.g. identifier following); rewind the
      // consumed characters. Column bookkeeping tolerates this because
      // numbers never span lines.
      Column -= static_cast<unsigned>(Pos - Save);
      Pos = Save;
    }
  }
  Token T;
  T.Loc = Loc;
  if (IsReal) {
    T.Kind = TokenKind::RealLiteral;
    T.RealValue = std::strtod(Digits.c_str(), nullptr);
  } else {
    T.Kind = TokenKind::IntLiteral;
    T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
  }
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"program", TokenKind::KwProgram},
      {"subroutine", TokenKind::KwSubroutine},
      {"function", TokenKind::KwFunction},
      {"end", TokenKind::KwEnd},
      {"integer", TokenKind::KwInteger},
      {"real", TokenKind::KwReal},
      {"logical", TokenKind::KwLogical},
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"elseif", TokenKind::KwElseif},
      {"else", TokenKind::KwElse},
      {"do", TokenKind::KwDo},
      {"while", TokenKind::KwWhile},
      {"call", TokenKind::KwCall},
      {"print", TokenKind::KwPrint},
      {"return", TokenKind::KwReturn},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  SourceLocation Loc = here();
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name += static_cast<char>(
        std::tolower(static_cast<unsigned char>(advance())));
  Token T;
  T.Loc = Loc;
  auto It = Keywords.find(Name);
  if (It != Keywords.end()) {
    T.Kind = It->second;
  } else {
    T.Kind = TokenKind::Identifier;
    T.Text = std::move(Name);
  }
  return T;
}

Token Lexer::next() {
  skipTrivia();
  if (Pos >= Src.size()) {
    Token T;
    T.Kind = TokenKind::Eof;
    T.Loc = here();
    return T;
  }
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  SourceLocation Loc = here();
  advance();
  Token T;
  T.Loc = Loc;
  switch (C) {
  case '=':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::EqEq;
    } else {
      T.Kind = TokenKind::Assign;
    }
    return T;
  case '/':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::NotEq;
    } else {
      T.Kind = TokenKind::Slash;
    }
    return T;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::LessEq;
    } else {
      T.Kind = TokenKind::Less;
    }
    return T;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::GreaterEq;
    } else {
      T.Kind = TokenKind::Greater;
    }
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '-':
    T.Kind = TokenKind::Minus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case ':':
    T.Kind = TokenKind::Colon;
    return T;
  default:
    T.Kind = TokenKind::Error;
    T.Text = std::string("unexpected character '") + C + "'";
    return T;
  }
}

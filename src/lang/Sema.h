//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for mini-Fortran: symbol resolution, type checking,
/// and the Fortran-style structural rules the optimizer relies on (e.g. a
/// do-loop index may not be assigned inside its loop, which guarantees the
/// loop-limit-substitution scheme's precondition).
///
/// Sema creates the IR Function shells (name, parameters, symbol table)
/// and annotates the AST with SymbolIDs and types; lowering then fills the
/// same Function objects with code. Because "a(i, j)" is syntactically
/// ambiguous between an array element and a function call, expression
/// analysis works on owning ExprPtr slots so the node can be rewritten.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_LANG_SEMA_H
#define NASCENT_LANG_SEMA_H

#include "ir/Function.h"
#include "lang/AST.h"
#include "support/Diagnostics.h"

#include <memory>

namespace nascent {

/// Runs semantic analysis over a parsed program.
class Sema {
public:
  Sema(ProgramAST &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  /// Analyses the program. Returns a Module with one Function shell per
  /// unit (entry = the program unit), or null when analysis failed.
  std::unique_ptr<Module> run();

private:
  struct UnitState {
    ProcedureAST *AST = nullptr;
    Function *F = nullptr;
  };

  void declareUnit(ProcedureAST &P);
  void analyzeUnit(UnitState &U);
  void analyzeStmtList(UnitState &U, std::vector<StmtPtr> &Stmts);
  void analyzeStmt(UnitState &U, Stmt &S);

  /// Type-checks the expression in \p Slot, possibly replacing the node
  /// (ArrayRef -> Call). Returns false on a hard error.
  bool analyzeExpr(UnitState &U, ExprPtr &Slot, bool AllowWholeArray = false);

  /// Resolves an ArrayRefExpr that might actually be a user-function call.
  bool resolvePostfix(UnitState &U, ExprPtr &Slot);

  bool checkCallArgs(UnitState &U, const std::string &Callee,
                     std::vector<ExprPtr> &Args, SourceLocation Loc);

  /// True when \p From implicitly converts to \p To (Int <-> Real).
  static bool convertible(ScalarType From, ScalarType To);

  ProgramAST &Prog;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> M;
  std::vector<UnitState> Units;
  /// Symbols of enclosing do-loop indices, to reject assignment to an
  /// active loop index and index reuse in nested loops.
  std::vector<SymbolID> ActiveDoIndices;
};

} // namespace nascent

#endif // NASCENT_LANG_SEMA_H

#include "lang/AST.h"

using namespace nascent;

// Out-of-line virtual destructors anchor the vtables in this translation
// unit (see LLVM coding standards).
Expr::~Expr() = default;
Stmt::~Stmt() = default;

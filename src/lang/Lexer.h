//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for mini-Fortran. Whitespace and newlines are
/// insignificant; comments run from '!' to end of line. Identifiers and
/// keywords are case-insensitive (folded to lower case), as in Fortran.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_LANG_LEXER_H
#define NASCENT_LANG_LEXER_H

#include "lang/Token.h"

#include <string>

namespace nascent {

/// Lexes one source buffer into tokens on demand.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token (Eof at end of input; Error tokens
  /// carry a message and the lexer recovers by skipping the bad character).
  Token next();

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char peekAhead() const { return Pos + 1 < Src.size() ? Src[Pos + 1] : '\0'; }
  char advance();
  void skipTrivia();
  SourceLocation here() const { return SourceLocation(Line, Column); }

  Token lexNumber();
  Token lexIdentifier();

  std::string Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace nascent

#endif // NASCENT_LANG_LEXER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-Fortran. Produces a ProgramAST;
/// errors go to the DiagnosticEngine and the parser recovers by skipping
/// to the next plausible statement boundary.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_LANG_PARSER_H
#define NASCENT_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>

namespace nascent {

/// Parses one source buffer.
class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags);

  /// Parses the whole file. On errors the returned AST may be partial;
  /// check Diags.hasErrors().
  std::unique_ptr<ProgramAST> parseProgram();

private:
  // Token stream management (one token of lookahead).
  const Token &cur() const { return CurTok; }
  const Token &ahead() const { return NextTok; }
  Token consume();
  bool match(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg);
  void syncToStatement();

  // Units and declarations.
  std::unique_ptr<ProcedureAST> parseUnit();
  void parseParams(ProcedureAST &P);
  bool parseDecl(ProcedureAST &P);
  bool parseDeclarator(Decl &D);
  bool parseDimBound(int64_t &Out);

  // Statements.
  std::vector<StmtPtr> parseStmtList();
  bool startsStatement(TokenKind K) const;
  StmtPtr parseStmt();
  StmtPtr parseIf();
  StmtPtr parseDo();
  StmtPtr parseWhile();
  StmtPtr parseCall();
  StmtPtr parseAssign();
  void expectEnd(TokenKind Kw, const char *What);

  // Expressions.
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseNot();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgList();

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token CurTok;
  Token NextTok;
};

} // namespace nascent

#endif // NASCENT_LANG_PARSER_H

#include "lang/Parser.h"

using namespace nascent;

Parser::Parser(std::string Source, DiagnosticEngine &Diags)
    : Lex(std::move(Source)), Diags(Diags) {
  CurTok = Lex.next();
  NextTok = Lex.next();
}

Token Parser::consume() {
  Token T = CurTok;
  CurTok = NextTok;
  NextTok = Lex.next();
  return T;
}

bool Parser::match(TokenKind K) {
  if (!cur().is(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (match(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(cur().Kind));
  return false;
}

void Parser::error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }

bool Parser::startsStatement(TokenKind K) const {
  switch (K) {
  case TokenKind::Identifier:
  case TokenKind::KwIf:
  case TokenKind::KwDo:
  case TokenKind::KwWhile:
  case TokenKind::KwCall:
  case TokenKind::KwPrint:
  case TokenKind::KwReturn:
    return true;
  default:
    return false;
  }
}

void Parser::syncToStatement() {
  while (!cur().is(TokenKind::Eof) && !startsStatement(cur().Kind) &&
         !cur().is(TokenKind::KwEnd) && !cur().is(TokenKind::KwElse) &&
         !cur().is(TokenKind::KwElseif))
    consume();
}

std::unique_ptr<ProgramAST> Parser::parseProgram() {
  auto Prog = std::make_unique<ProgramAST>();
  while (!cur().is(TokenKind::Eof)) {
    auto Unit = parseUnit();
    if (!Unit) {
      // Could not even start a unit; skip a token to guarantee progress.
      consume();
      continue;
    }
    Prog->Units.push_back(std::move(Unit));
  }
  return Prog;
}

std::unique_ptr<ProcedureAST> Parser::parseUnit() {
  auto P = std::make_unique<ProcedureAST>();
  P->Loc = cur().Loc;
  TokenKind EndKw;
  if (match(TokenKind::KwProgram)) {
    P->Kind = UnitKind::Program;
    EndKw = TokenKind::KwProgram;
  } else if (match(TokenKind::KwSubroutine)) {
    P->Kind = UnitKind::Subroutine;
    EndKw = TokenKind::KwSubroutine;
  } else if (match(TokenKind::KwFunction)) {
    P->Kind = UnitKind::Function;
    EndKw = TokenKind::KwFunction;
  } else {
    error("expected 'program', 'subroutine', or 'function', found " +
          std::string(tokenKindName(cur().Kind)));
    return nullptr;
  }

  if (!cur().is(TokenKind::Identifier)) {
    error("expected unit name");
    return nullptr;
  }
  P->Name = consume().Text;

  if (P->Kind != UnitKind::Program && match(TokenKind::LParen)) {
    parseParams(*P);
    expect(TokenKind::RParen, "after parameter list");
  }
  if (P->Kind == UnitKind::Function) {
    expect(TokenKind::Colon, "before function result type");
    if (match(TokenKind::KwInteger))
      P->ResultTy = ScalarType::Int;
    else if (match(TokenKind::KwReal))
      P->ResultTy = ScalarType::Real;
    else if (match(TokenKind::KwLogical))
      P->ResultTy = ScalarType::Bool;
    else
      error("expected function result type");
  }

  while (cur().is(TokenKind::KwInteger) || cur().is(TokenKind::KwReal) ||
         cur().is(TokenKind::KwLogical)) {
    // "real(x)" in statement position cannot occur, so a type keyword here
    // always begins a declaration.
    if (!parseDecl(*P))
      syncToStatement();
  }

  P->Body = parseStmtList();
  expectEnd(EndKw, "unit");
  return P;
}

void Parser::parseParams(ProcedureAST &P) {
  if (cur().is(TokenKind::RParen))
    return;
  do {
    if (!cur().is(TokenKind::Identifier)) {
      error("expected parameter name");
      return;
    }
    P.Params.push_back(consume().Text);
  } while (match(TokenKind::Comma));
}

bool Parser::parseDimBound(int64_t &Out) {
  bool Negate = match(TokenKind::Minus);
  if (!cur().is(TokenKind::IntLiteral)) {
    error("array bounds must be integer constants");
    return false;
  }
  Out = consume().IntValue;
  if (Negate)
    Out = -Out;
  return true;
}

bool Parser::parseDeclarator(Decl &D) {
  if (!cur().is(TokenKind::Identifier)) {
    error("expected variable name in declaration");
    return false;
  }
  Declarator V;
  V.Loc = cur().Loc;
  V.Name = consume().Text;
  if (match(TokenKind::LParen)) {
    do {
      int64_t A = 0;
      if (!parseDimBound(A))
        return false;
      int64_t Lo = 1, Hi = A;
      if (match(TokenKind::Colon)) {
        Lo = A;
        if (!parseDimBound(Hi))
          return false;
      }
      V.Dims.push_back({Lo, Hi});
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "after array dimensions"))
      return false;
  }
  D.Vars.push_back(std::move(V));
  return true;
}

bool Parser::parseDecl(ProcedureAST &P) {
  Decl D;
  D.Loc = cur().Loc;
  if (match(TokenKind::KwInteger))
    D.Ty = ScalarType::Int;
  else if (match(TokenKind::KwReal))
    D.Ty = ScalarType::Real;
  else if (match(TokenKind::KwLogical))
    D.Ty = ScalarType::Bool;
  else
    return false;
  do {
    if (!parseDeclarator(D))
      return false;
  } while (match(TokenKind::Comma));
  P.Decls.push_back(std::move(D));
  return true;
}

std::vector<StmtPtr> Parser::parseStmtList() {
  std::vector<StmtPtr> Stmts;
  while (startsStatement(cur().Kind)) {
    StmtPtr S = parseStmt();
    if (!S) {
      syncToStatement();
      continue;
    }
    Stmts.push_back(std::move(S));
  }
  return Stmts;
}

StmtPtr Parser::parseStmt() {
  switch (cur().Kind) {
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwCall:
    return parseCall();
  case TokenKind::KwPrint: {
    SourceLocation Loc = consume().Loc;
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    return std::make_unique<PrintStmt>(Loc, std::move(E));
  }
  case TokenKind::KwReturn: {
    SourceLocation Loc = consume().Loc;
    ExprPtr E;
    // "return" may be followed by an expression (functions) or nothing.
    if (startsStatement(cur().Kind) || cur().is(TokenKind::IntLiteral) ||
        cur().is(TokenKind::RealLiteral) || cur().is(TokenKind::LParen) ||
        cur().is(TokenKind::Minus) || cur().is(TokenKind::KwNot) ||
        cur().is(TokenKind::KwTrue) || cur().is(TokenKind::KwFalse) ||
        cur().is(TokenKind::KwReal)) {
      // Ambiguity: "return" followed by an identifier could be a bare
      // return with the next statement starting, or a value return. Treat
      // a following identifier/expression as the return value; subroutines
      // place "return" last or before "end", which stays unambiguous.
      E = parseExpr();
      if (!E)
        return nullptr;
    }
    return std::make_unique<ReturnStmt>(Loc, std::move(E));
  }
  case TokenKind::Identifier:
    return parseAssign();
  default:
    error("expected statement");
    return nullptr;
  }
}

void Parser::expectEnd(TokenKind Kw, const char *What) {
  if (!expect(TokenKind::KwEnd, What))
    return;
  if (!match(Kw))
    error(std::string("expected matching keyword after 'end' for ") + What);
}

StmtPtr Parser::parseIf() {
  SourceLocation Loc = consume().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  expect(TokenKind::KwThen, "after if condition");
  if (!Cond)
    return nullptr;
  auto If = std::make_unique<IfStmt>(Loc, std::move(Cond));
  If->Then = parseStmtList();

  IfStmt *Tail = If.get();
  while (cur().is(TokenKind::KwElseif)) {
    SourceLocation ELoc = consume().Loc;
    expect(TokenKind::LParen, "after 'elseif'");
    ExprPtr ECond = parseExpr();
    expect(TokenKind::RParen, "after elseif condition");
    expect(TokenKind::KwThen, "after elseif condition");
    if (!ECond)
      return nullptr;
    auto Nested = std::make_unique<IfStmt>(ELoc, std::move(ECond));
    Nested->Then = parseStmtList();
    IfStmt *NewTail = Nested.get();
    Tail->Else.push_back(std::move(Nested));
    Tail = NewTail;
  }
  if (match(TokenKind::KwElse))
    Tail->Else = parseStmtList();
  expectEnd(TokenKind::KwIf, "if statement");
  return If;
}

StmtPtr Parser::parseDo() {
  SourceLocation Loc = consume().Loc; // 'do'
  if (!cur().is(TokenKind::Identifier)) {
    error("expected loop index variable after 'do'");
    return nullptr;
  }
  auto Do = std::make_unique<DoStmt>(Loc, consume().Text);
  expect(TokenKind::Assign, "after do index");
  Do->Lower = parseExpr();
  expect(TokenKind::Comma, "after do lower bound");
  Do->Upper = parseExpr();
  if (match(TokenKind::Comma)) {
    bool Negate = match(TokenKind::Minus);
    if (!cur().is(TokenKind::IntLiteral)) {
      error("do step must be an integer constant");
      return nullptr;
    }
    Do->Step = consume().IntValue;
    if (Negate)
      Do->Step = -Do->Step;
  }
  if (!Do->Lower || !Do->Upper)
    return nullptr;
  Do->Body = parseStmtList();
  expectEnd(TokenKind::KwDo, "do loop");
  return Do;
}

StmtPtr Parser::parseWhile() {
  SourceLocation Loc = consume().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  expect(TokenKind::KwDo, "after while condition");
  if (!Cond)
    return nullptr;
  auto W = std::make_unique<WhileStmt>(Loc, std::move(Cond));
  W->Body = parseStmtList();
  expectEnd(TokenKind::KwWhile, "while loop");
  return W;
}

StmtPtr Parser::parseCall() {
  SourceLocation Loc = consume().Loc; // 'call'
  if (!cur().is(TokenKind::Identifier)) {
    error("expected subroutine name after 'call'");
    return nullptr;
  }
  std::string Callee = consume().Text;
  std::vector<ExprPtr> Args;
  if (match(TokenKind::LParen)) {
    if (!cur().is(TokenKind::RParen))
      Args = parseArgList();
    expect(TokenKind::RParen, "after call arguments");
  }
  return std::make_unique<CallStmt>(Loc, std::move(Callee), std::move(Args));
}

StmtPtr Parser::parseAssign() {
  SourceLocation Loc = cur().Loc;
  std::string Name = consume().Text;
  if (match(TokenKind::LParen)) {
    std::vector<ExprPtr> Indices = parseArgList();
    expect(TokenKind::RParen, "after subscripts");
    expect(TokenKind::Assign, "in array assignment");
    ExprPtr V = parseExpr();
    if (!V)
      return nullptr;
    return std::make_unique<ArrayAssignStmt>(Loc, std::move(Name),
                                             std::move(Indices), std::move(V));
  }
  expect(TokenKind::Assign, "in assignment");
  ExprPtr V = parseExpr();
  if (!V)
    return nullptr;
  return std::make_unique<AssignStmt>(Loc, std::move(Name), std::move(V));
}

std::vector<ExprPtr> Parser::parseArgList() {
  std::vector<ExprPtr> Args;
  do {
    ExprPtr E = parseExpr();
    if (!E)
      break;
    Args.push_back(std::move(E));
  } while (match(TokenKind::Comma));
  return Args;
}

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (L && cur().is(TokenKind::KwOr)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, BinaryOp::Or, std::move(L),
                                     std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseNot();
  while (L && cur().is(TokenKind::KwAnd)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr R = parseNot();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, BinaryOp::And, std::move(L),
                                     std::move(R));
  }
  return L;
}

ExprPtr Parser::parseNot() {
  if (cur().is(TokenKind::KwNot)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr Sub = parseNot();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Sub));
  }
  return parseComparison();
}

ExprPtr Parser::parseComparison() {
  ExprPtr L = parseAdditive();
  if (!L)
    return nullptr;
  BinaryOp Op;
  switch (cur().Kind) {
  case TokenKind::EqEq:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEq:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEq:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEq:
    Op = BinaryOp::Ge;
    break;
  default:
    return L;
  }
  SourceLocation Loc = consume().Loc;
  ExprPtr R = parseAdditive();
  if (!R)
    return nullptr;
  return std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  while (L && (cur().is(TokenKind::Plus) || cur().is(TokenKind::Minus))) {
    BinaryOp Op = cur().is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLocation Loc = consume().Loc;
    ExprPtr R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  while (L && (cur().is(TokenKind::Star) || cur().is(TokenKind::Slash))) {
    BinaryOp Op = cur().is(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
    SourceLocation Loc = consume().Loc;
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (cur().is(TokenKind::Minus)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Sub));
  }
  if (cur().is(TokenKind::Plus)) {
    consume();
    return parseUnary();
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral:
    return std::make_unique<IntLitExpr>(Loc, consume().IntValue);
  case TokenKind::RealLiteral:
    return std::make_unique<RealLitExpr>(Loc, consume().RealValue);
  case TokenKind::KwTrue:
    consume();
    return std::make_unique<BoolLitExpr>(Loc, true);
  case TokenKind::KwFalse:
    consume();
    return std::make_unique<BoolLitExpr>(Loc, false);
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after parenthesised expression");
    return E;
  }
  case TokenKind::KwReal: {
    // "real(expr)" cast intrinsic in expression position.
    consume();
    expect(TokenKind::LParen, "after 'real' cast");
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after 'real' cast argument");
    if (!E)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::RealCast, std::move(E));
  }
  case TokenKind::Identifier: {
    std::string Name = consume().Text;
    if (!match(TokenKind::LParen))
      return std::make_unique<VarRefExpr>(Loc, std::move(Name));
    std::vector<ExprPtr> Args = parseArgList();
    expect(TokenKind::RParen, "after argument list");

    // Intrinsics recognised by name; everything else is an array reference
    // or a user-function call, disambiguated by semantic analysis.
    auto Arity = [&](size_t N) {
      if (Args.size() != N) {
        Diags.error(Loc, "intrinsic '" + Name + "' expects " +
                             std::to_string(N) + " argument(s), got " +
                             std::to_string(Args.size()));
        return false;
      }
      return true;
    };
    if (Name == "abs") {
      if (!Arity(1))
        return nullptr;
      return std::make_unique<UnaryExpr>(Loc, UnaryOp::Abs,
                                         std::move(Args[0]));
    }
    if (Name == "int") {
      if (!Arity(1))
        return nullptr;
      return std::make_unique<UnaryExpr>(Loc, UnaryOp::IntCast,
                                         std::move(Args[0]));
    }
    if (Name == "mod") {
      if (!Arity(2))
        return nullptr;
      return std::make_unique<BinaryExpr>(Loc, BinaryOp::Mod,
                                          std::move(Args[0]),
                                          std::move(Args[1]));
    }
    if (Name == "min" || Name == "max") {
      if (Args.size() < 2) {
        Diags.error(Loc, "intrinsic '" + Name + "' expects at least 2 args");
        return nullptr;
      }
      BinaryOp Op = (Name == "min") ? BinaryOp::Min : BinaryOp::Max;
      ExprPtr Acc = std::move(Args[0]);
      for (size_t K = 1; K != Args.size(); ++K)
        Acc = std::make_unique<BinaryExpr>(Loc, Op, std::move(Acc),
                                           std::move(Args[K]));
      return Acc;
    }
    // Array reference or user call; sema decides which.
    return std::make_unique<ArrayRefExpr>(Loc, std::move(Name),
                                          std::move(Args));
  }
  default:
    error("expected expression, found " +
          std::string(tokenKindName(cur().Kind)));
    return nullptr;
  }
}

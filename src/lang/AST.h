//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree of mini-Fortran. Semantic analysis annotates the
/// tree in place (symbol ids, expression types); the front end then lowers
/// the annotated tree to the Nascent IR, inserting naive range checks.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_LANG_AST_H
#define NASCENT_LANG_AST_H

#include "ir/Symbol.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nascent {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  RealLit,
  BoolLit,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
  Call,
};

/// Base class of all expressions. \c Ty is filled by semantic analysis.
struct Expr {
  ExprKind Kind;
  SourceLocation Loc;
  ScalarType Ty = ScalarType::Int;

  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Expr();
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  int64_t Value;
  IntLitExpr(SourceLocation Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
};

struct RealLitExpr : Expr {
  double Value;
  RealLitExpr(SourceLocation Loc, double Value)
      : Expr(ExprKind::RealLit, Loc), Value(Value) {}
};

struct BoolLitExpr : Expr {
  bool Value;
  BoolLitExpr(SourceLocation Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
};

/// A scalar variable reference. \c Sym is filled by semantic analysis.
struct VarRefExpr : Expr {
  std::string Name;
  SymbolID Sym = InvalidSymbol;
  VarRefExpr(SourceLocation Loc, std::string Name)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
};

/// An array element reference A(i, j, ...).
struct ArrayRefExpr : Expr {
  std::string Name;
  SymbolID Sym = InvalidSymbol;
  std::vector<ExprPtr> Indices;
  ArrayRefExpr(SourceLocation Loc, std::string Name,
               std::vector<ExprPtr> Indices)
      : Expr(ExprKind::ArrayRef, Loc), Name(std::move(Name)),
        Indices(std::move(Indices)) {}
};

enum class UnaryOp {
  Neg,
  Not,
  Abs,      ///< abs(x) intrinsic
  IntCast,  ///< int(x) intrinsic (truncation)
  RealCast, ///< real(x) intrinsic
};

struct UnaryExpr : Expr {
  UnaryOp Op;
  ExprPtr Sub;
  UnaryExpr(SourceLocation Loc, UnaryOp Op, ExprPtr Sub)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod, ///< mod(a, b) intrinsic
  Min, ///< min(a, b) intrinsic
  Max, ///< max(a, b) intrinsic
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

struct BinaryExpr : Expr {
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
  BinaryExpr(SourceLocation Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
};

/// A user-function call in expression position.
struct CallExpr : Expr {
  std::string Callee;
  std::vector<ExprPtr> Args;
  CallExpr(SourceLocation Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Assign,
  ArrayAssign,
  If,
  Do,
  While,
  Call,
  Print,
  Return,
};

struct Stmt {
  StmtKind Kind;
  SourceLocation Loc;
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Stmt();
};

using StmtPtr = std::unique_ptr<Stmt>;

struct AssignStmt : Stmt {
  std::string Name;
  SymbolID Sym = InvalidSymbol;
  ExprPtr Value;
  AssignStmt(SourceLocation Loc, std::string Name, ExprPtr Value)
      : Stmt(StmtKind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
};

struct ArrayAssignStmt : Stmt {
  std::string Name;
  SymbolID Sym = InvalidSymbol;
  std::vector<ExprPtr> Indices;
  ExprPtr Value;
  ArrayAssignStmt(SourceLocation Loc, std::string Name,
                  std::vector<ExprPtr> Indices, ExprPtr Value)
      : Stmt(StmtKind::ArrayAssign, Loc), Name(std::move(Name)),
        Indices(std::move(Indices)), Value(std::move(Value)) {}
};

/// if/elseif/else; elseif chains are desugared by the parser into a nested
/// IfStmt in the Else list.
struct IfStmt : Stmt {
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;
  IfStmt(SourceLocation Loc, ExprPtr Cond)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)) {}
};

/// Counted loop: do i = lo, hi [, step] ... end do. Step must be a nonzero
/// integer constant (checked by sema).
struct DoStmt : Stmt {
  std::string IndexName;
  SymbolID IndexSym = InvalidSymbol;
  ExprPtr Lower;
  ExprPtr Upper;
  int64_t Step = 1;
  std::vector<StmtPtr> Body;
  DoStmt(SourceLocation Loc, std::string IndexName)
      : Stmt(StmtKind::Do, Loc), IndexName(std::move(IndexName)) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  std::vector<StmtPtr> Body;
  WhileStmt(SourceLocation Loc, ExprPtr Cond)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)) {}
};

struct CallStmt : Stmt {
  std::string Callee;
  std::vector<ExprPtr> Args;
  CallStmt(SourceLocation Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Stmt(StmtKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
};

struct PrintStmt : Stmt {
  ExprPtr Value;
  PrintStmt(SourceLocation Loc, ExprPtr Value)
      : Stmt(StmtKind::Print, Loc), Value(std::move(Value)) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; ///< null for subroutine return
  ReturnStmt(SourceLocation Loc, ExprPtr Value)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
};

//===----------------------------------------------------------------------===//
// Declarations and procedures
//===----------------------------------------------------------------------===//

/// One declarator in a declaration: a name with optional array dimensions.
/// "a(10)" means bounds 1:10; "a(0:9, 1:n)" is rejected (bounds must be
/// integer constants).
struct Declarator {
  SourceLocation Loc;
  std::string Name;
  std::vector<std::pair<int64_t, int64_t>> Dims; ///< empty for scalars
};

/// One declaration line: a type applied to declarators.
struct Decl {
  SourceLocation Loc;
  ScalarType Ty = ScalarType::Int;
  std::vector<Declarator> Vars;
};

enum class UnitKind {
  Program,
  Subroutine,
  Function,
};

/// One compilation unit: the program, a subroutine, or a function.
struct ProcedureAST {
  UnitKind Kind = UnitKind::Program;
  SourceLocation Loc;
  std::string Name;
  std::vector<std::string> Params;
  std::optional<ScalarType> ResultTy; ///< engaged for functions
  std::vector<Decl> Decls;
  std::vector<StmtPtr> Body;
};

/// A whole source file.
struct ProgramAST {
  std::vector<std::unique_ptr<ProcedureAST>> Units;

  /// Finds a unit by name; null when absent.
  ProcedureAST *find(const std::string &Name) const {
    for (const auto &U : Units)
      if (U->Name == Name)
        return U.get();
    return nullptr;
  }
};

} // namespace nascent

#endif // NASCENT_LANG_AST_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the mini-Fortran language. The language is a small
/// Fortran-flavoured imperative language: enough to express the paper's
/// benchmark programs (multi-dimensional constant-bound arrays, counted
/// do loops, while loops, procedures) without the full F77 grammar.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_LANG_TOKEN_H
#define NASCENT_LANG_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>

namespace nascent {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  RealLiteral,
  // Keywords
  KwProgram,
  KwSubroutine,
  KwFunction,
  KwEnd,
  KwInteger,
  KwReal,
  KwLogical,
  KwIf,
  KwThen,
  KwElseif,
  KwElse,
  KwDo,
  KwWhile,
  KwCall,
  KwPrint,
  KwReturn,
  KwAnd,
  KwOr,
  KwNot,
  KwTrue,
  KwFalse,
  // Punctuation and operators
  Assign,    // =
  EqEq,      // ==
  NotEq,     // /=
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  Plus,
  Minus,
  Star,
  Slash,
  LParen,
  RParen,
  Comma,
  Colon,
  Error, ///< lexical error; Text holds the message
};

/// Returns a printable name for \p K (used in parse diagnostics).
const char *tokenKindName(TokenKind K);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLocation Loc;
  std::string Text;     ///< identifier spelling or error message
  int64_t IntValue = 0; ///< for IntLiteral
  double RealValue = 0; ///< for RealLiteral

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace nascent

#endif // NASCENT_LANG_TOKEN_H

#include "lang/Sema.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace nascent;

bool Sema::convertible(ScalarType From, ScalarType To) {
  if (From == To)
    return true;
  return (From == ScalarType::Int && To == ScalarType::Real) ||
         (From == ScalarType::Real && To == ScalarType::Int);
}

std::unique_ptr<Module> Sema::run() {
  M = std::make_unique<Module>();

  unsigned NumPrograms = 0;
  for (auto &U : Prog.Units) {
    declareUnit(*U);
    if (U->Kind == UnitKind::Program) {
      ++NumPrograms;
      M->setEntry(U->Name);
    }
  }
  if (NumPrograms != 1)
    Diags.error(SourceLocation(),
                "a source file must contain exactly one 'program' unit");

  // Declarations (and thus parameter types) must exist for every unit
  // before any body is analyzed, so cross-unit calls can be checked.
  for (auto &U : Units)
    analyzeUnit(U);
  for (auto &U : Units) {
    ActiveDoIndices.clear();
    analyzeStmtList(U, U.AST->Body);
  }

  if (Diags.hasErrors())
    return nullptr;
  return std::move(M);
}

void Sema::declareUnit(ProcedureAST &P) {
  if (M->function(P.Name) != nullptr) {
    Diags.error(P.Loc, "duplicate unit name '" + P.Name + "'");
    return;
  }
  Function *F = M->createFunction(P.Name);
  if (P.ResultTy)
    F->setResultType(*P.ResultTy);
  Units.push_back({&P, F});
}

void Sema::analyzeUnit(UnitState &U) {
  ProcedureAST &P = *U.AST;
  Function &F = *U.F;
  SymbolTable &Syms = F.symbols();

  std::set<std::string> ParamNames(P.Params.begin(), P.Params.end());
  if (ParamNames.size() != P.Params.size())
    Diags.error(P.Loc, "duplicate parameter name in '" + P.Name + "'");

  // Create symbols for every declaration.
  for (Decl &D : P.Decls) {
    for (Declarator &V : D.Vars) {
      if (Syms.lookup(V.Name) != InvalidSymbol) {
        Diags.error(V.Loc, "redeclaration of '" + V.Name + "'");
        continue;
      }
      bool IsParam = ParamNames.count(V.Name) != 0;
      if (V.Dims.empty()) {
        Syms.createScalar(V.Name, D.Ty, IsParam);
        continue;
      }
      ArrayShape Shape;
      Shape.Element = D.Ty;
      bool BadDims = false;
      for (auto [Lo, Hi] : V.Dims) {
        if (Hi < Lo) {
          Diags.error(V.Loc, "array '" + V.Name + "' has empty dimension " +
                                 std::to_string(Lo) + ":" +
                                 std::to_string(Hi));
          BadDims = true;
        }
        Shape.Dims.push_back({Lo, Hi});
      }
      if (!BadDims)
        Syms.createArray(V.Name, std::move(Shape), IsParam);
    }
  }

  // Bind parameters in declaration order; every parameter must be declared.
  for (const std::string &Name : P.Params) {
    SymbolID S = Syms.lookup(Name);
    if (S == InvalidSymbol) {
      Diags.error(P.Loc,
                  "parameter '" + Name + "' of '" + P.Name +
                      "' is not declared");
      continue;
    }
    F.params().push_back(S);
  }

  if (P.Kind == UnitKind::Program && !P.Params.empty())
    Diags.error(P.Loc, "the program unit takes no parameters");
}

void Sema::analyzeStmtList(UnitState &U, std::vector<StmtPtr> &Stmts) {
  for (StmtPtr &S : Stmts)
    if (S)
      analyzeStmt(U, *S);
}

void Sema::analyzeStmt(UnitState &U, Stmt &S) {
  SymbolTable &Syms = U.F->symbols();
  switch (S.Kind) {
  case StmtKind::Assign: {
    auto &A = static_cast<AssignStmt &>(S);
    SymbolID Sym = Syms.lookup(A.Name);
    if (Sym == InvalidSymbol) {
      Diags.error(A.Loc, "use of undeclared variable '" + A.Name + "'");
      return;
    }
    const Symbol &Info = Syms.get(Sym);
    if (Info.isArray()) {
      Diags.error(A.Loc, "cannot assign to whole array '" + A.Name + "'");
      return;
    }
    if (std::find(ActiveDoIndices.begin(), ActiveDoIndices.end(), Sym) !=
        ActiveDoIndices.end()) {
      Diags.error(A.Loc, "assignment to active do-loop index '" + A.Name +
                             "' is not allowed");
      return;
    }
    A.Sym = Sym;
    if (!analyzeExpr(U, A.Value))
      return;
    if (!convertible(A.Value->Ty, Info.Type))
      Diags.error(A.Loc, "cannot assign " +
                             std::string(scalarTypeName(A.Value->Ty)) +
                             " to " + scalarTypeName(Info.Type) +
                             " variable '" + A.Name + "'");
    return;
  }
  case StmtKind::ArrayAssign: {
    auto &A = static_cast<ArrayAssignStmt &>(S);
    SymbolID Sym = Syms.lookup(A.Name);
    if (Sym == InvalidSymbol) {
      Diags.error(A.Loc, "use of undeclared variable '" + A.Name + "'");
      return;
    }
    const Symbol &Info = Syms.get(Sym);
    if (!Info.isArray()) {
      Diags.error(A.Loc, "'" + A.Name + "' is not an array");
      return;
    }
    if (A.Indices.size() != Info.Shape.rank()) {
      Diags.error(A.Loc, "array '" + A.Name + "' has rank " +
                             std::to_string(Info.Shape.rank()) + ", got " +
                             std::to_string(A.Indices.size()) +
                             " subscripts");
      return;
    }
    A.Sym = Sym;
    for (ExprPtr &I : A.Indices) {
      if (!analyzeExpr(U, I))
        return;
      if (I->Ty != ScalarType::Int)
        Diags.error(I->Loc, "array subscript must be integer");
    }
    if (!analyzeExpr(U, A.Value))
      return;
    if (!convertible(A.Value->Ty, Info.Type))
      Diags.error(A.Loc,
                  "element type mismatch in assignment to '" + A.Name + "'");
    return;
  }
  case StmtKind::If: {
    auto &I = static_cast<IfStmt &>(S);
    if (analyzeExpr(U, I.Cond) && I.Cond->Ty != ScalarType::Bool)
      Diags.error(I.Cond->Loc, "if condition must be logical");
    analyzeStmtList(U, I.Then);
    analyzeStmtList(U, I.Else);
    return;
  }
  case StmtKind::Do: {
    auto &D = static_cast<DoStmt &>(S);
    SymbolID Sym = Syms.lookup(D.IndexName);
    if (Sym == InvalidSymbol) {
      Diags.error(D.Loc, "use of undeclared do index '" + D.IndexName + "'");
      return;
    }
    const Symbol &Info = Syms.get(Sym);
    if (Info.isArray() || Info.Type != ScalarType::Int) {
      Diags.error(D.Loc,
                  "do index '" + D.IndexName + "' must be an integer scalar");
      return;
    }
    if (std::find(ActiveDoIndices.begin(), ActiveDoIndices.end(), Sym) !=
        ActiveDoIndices.end()) {
      Diags.error(D.Loc, "do index '" + D.IndexName +
                             "' is already in use by an enclosing loop");
      return;
    }
    if (D.Step == 0) {
      Diags.error(D.Loc, "do step must be nonzero");
      return;
    }
    D.IndexSym = Sym;
    if (analyzeExpr(U, D.Lower) && D.Lower->Ty != ScalarType::Int)
      Diags.error(D.Lower->Loc, "do bounds must be integer");
    if (analyzeExpr(U, D.Upper) && D.Upper->Ty != ScalarType::Int)
      Diags.error(D.Upper->Loc, "do bounds must be integer");
    // The optimizer evaluates the loop-entry guard in the preheader, after
    // the index is initialised: bounds may not mention the index itself.
    std::function<bool(const Expr &)> UsesIndex = [&](const Expr &E) {
      switch (E.Kind) {
      case ExprKind::VarRef:
        return static_cast<const VarRefExpr &>(E).Sym == Sym;
      case ExprKind::ArrayRef: {
        const auto &A = static_cast<const ArrayRefExpr &>(E);
        for (const ExprPtr &I : A.Indices)
          if (I && UsesIndex(*I))
            return true;
        return false;
      }
      case ExprKind::Unary: {
        const auto &Un = static_cast<const UnaryExpr &>(E);
        return Un.Sub && UsesIndex(*Un.Sub);
      }
      case ExprKind::Binary: {
        const auto &Bi = static_cast<const BinaryExpr &>(E);
        return (Bi.LHS && UsesIndex(*Bi.LHS)) || (Bi.RHS && UsesIndex(*Bi.RHS));
      }
      case ExprKind::Call: {
        const auto &C = static_cast<const CallExpr &>(E);
        for (const ExprPtr &A : C.Args)
          if (A && UsesIndex(*A))
            return true;
        return false;
      }
      default:
        return false;
      }
    };
    if ((D.Lower && UsesIndex(*D.Lower)) || (D.Upper && UsesIndex(*D.Upper)))
      Diags.error(D.Loc, "do bounds may not reference the loop index '" +
                             D.IndexName + "'");
    ActiveDoIndices.push_back(Sym);
    analyzeStmtList(U, D.Body);
    ActiveDoIndices.pop_back();
    return;
  }
  case StmtKind::While: {
    auto &W = static_cast<WhileStmt &>(S);
    if (analyzeExpr(U, W.Cond) && W.Cond->Ty != ScalarType::Bool)
      Diags.error(W.Cond->Loc, "while condition must be logical");
    analyzeStmtList(U, W.Body);
    return;
  }
  case StmtKind::Call: {
    auto &C = static_cast<CallStmt &>(S);
    const Function *Callee = M->function(C.Callee);
    if (!Callee) {
      Diags.error(C.Loc, "call to unknown subroutine '" + C.Callee + "'");
      return;
    }
    if (Callee->resultType()) {
      Diags.error(C.Loc, "'" + C.Callee +
                             "' is a function; call it in an expression");
      return;
    }
    checkCallArgs(U, C.Callee, C.Args, C.Loc);
    return;
  }
  case StmtKind::Print: {
    auto &P = static_cast<PrintStmt &>(S);
    analyzeExpr(U, P.Value);
    return;
  }
  case StmtKind::Return: {
    auto &R = static_cast<ReturnStmt &>(S);
    bool IsFunction = U.F->resultType().has_value();
    if (IsFunction) {
      if (!R.Value) {
        Diags.error(R.Loc,
                    "function '" + U.F->name() + "' must return a value");
        return;
      }
      if (analyzeExpr(U, R.Value) &&
          !convertible(R.Value->Ty, *U.F->resultType()))
        Diags.error(R.Loc, "return type mismatch in '" + U.F->name() + "'");
    } else if (R.Value) {
      Diags.error(R.Loc, "'" + U.F->name() + "' cannot return a value");
    }
    return;
  }
  }
}

bool Sema::resolvePostfix(UnitState &U, ExprPtr &Slot) {
  auto &A = static_cast<ArrayRefExpr &>(*Slot);
  SymbolTable &Syms = U.F->symbols();
  SymbolID Sym = Syms.lookup(A.Name);
  if (Sym != InvalidSymbol) {
    const Symbol &Info = Syms.get(Sym);
    if (!Info.isArray()) {
      Diags.error(A.Loc, "'" + A.Name + "' is not an array");
      return false;
    }
    if (A.Indices.size() != Info.Shape.rank()) {
      Diags.error(A.Loc, "array '" + A.Name + "' has rank " +
                             std::to_string(Info.Shape.rank()) + ", got " +
                             std::to_string(A.Indices.size()) +
                             " subscripts");
      return false;
    }
    A.Sym = Sym;
    A.Ty = Info.Type;
    for (ExprPtr &I : A.Indices) {
      if (!analyzeExpr(U, I))
        return false;
      if (I->Ty != ScalarType::Int) {
        Diags.error(I->Loc, "array subscript must be integer");
        return false;
      }
    }
    return true;
  }

  // Not a local array: try a user function.
  const Function *Callee = M->function(A.Name);
  if (!Callee) {
    Diags.error(A.Loc, "use of undeclared array or function '" + A.Name + "'");
    return false;
  }
  if (!Callee->resultType()) {
    Diags.error(A.Loc,
                "subroutine '" + A.Name + "' cannot be used in an expression");
    return false;
  }
  auto Call = std::make_unique<CallExpr>(A.Loc, A.Name, std::move(A.Indices));
  Call->Ty = *Callee->resultType();
  if (!checkCallArgs(U, Call->Callee, Call->Args, Call->Loc))
    return false;
  Slot = std::move(Call);
  return true;
}

bool Sema::checkCallArgs(UnitState &U, const std::string &CalleeName,
                         std::vector<ExprPtr> &Args, SourceLocation Loc) {
  const Function *Callee = M->function(CalleeName);
  assert(Callee && "callee existence checked by caller");
  if (Args.size() != Callee->params().size()) {
    Diags.error(Loc, "'" + CalleeName + "' expects " +
                         std::to_string(Callee->params().size()) +
                         " argument(s), got " + std::to_string(Args.size()));
    return false;
  }
  bool OK = true;
  for (size_t K = 0; K != Args.size(); ++K) {
    const Symbol &Param = Callee->symbols().get(Callee->params()[K]);
    if (!analyzeExpr(U, Args[K], /*AllowWholeArray=*/Param.isArray())) {
      OK = false;
      continue;
    }
    if (Param.isArray()) {
      // Whole-array argument: must be a bare variable reference naming an
      // array with identical shape (see DESIGN.md on array parameters).
      auto *V = Args[K]->Kind == ExprKind::VarRef
                    ? static_cast<VarRefExpr *>(Args[K].get())
                    : nullptr;
      const Symbol *ArgSym =
          V && V->Sym != InvalidSymbol ? &U.F->symbols().get(V->Sym) : nullptr;
      if (!ArgSym || !ArgSym->isArray()) {
        Diags.error(Args[K]->Loc, "argument " + std::to_string(K + 1) +
                                      " of '" + CalleeName +
                                      "' must be a whole array");
        OK = false;
        continue;
      }
      if (ArgSym->Shape.rank() != Param.Shape.rank() ||
          ArgSym->Type != Param.Type) {
        Diags.error(Args[K]->Loc, "array argument " + std::to_string(K + 1) +
                                      " of '" + CalleeName +
                                      "' has mismatched rank or element type");
        OK = false;
        continue;
      }
      for (size_t D = 0; D != ArgSym->Shape.rank(); ++D) {
        if (ArgSym->Shape.Dims[D].Lower != Param.Shape.Dims[D].Lower ||
            ArgSym->Shape.Dims[D].Upper != Param.Shape.Dims[D].Upper) {
          Diags.error(Args[K]->Loc,
                      "array argument " + std::to_string(K + 1) + " of '" +
                          CalleeName + "' has mismatched bounds");
          OK = false;
          break;
        }
      }
    } else {
      if (!convertible(Args[K]->Ty, Param.Type)) {
        Diags.error(Args[K]->Loc, "argument " + std::to_string(K + 1) +
                                      " of '" + CalleeName +
                                      "' has incompatible type");
        OK = false;
      }
    }
  }
  return OK;
}

bool Sema::analyzeExpr(UnitState &U, ExprPtr &Slot, bool AllowWholeArray) {
  assert(Slot && "null expression slot");
  Expr &E = *Slot;
  SymbolTable &Syms = U.F->symbols();
  switch (E.Kind) {
  case ExprKind::IntLit:
    E.Ty = ScalarType::Int;
    return true;
  case ExprKind::RealLit:
    E.Ty = ScalarType::Real;
    return true;
  case ExprKind::BoolLit:
    E.Ty = ScalarType::Bool;
    return true;
  case ExprKind::VarRef: {
    auto &V = static_cast<VarRefExpr &>(E);
    SymbolID Sym = Syms.lookup(V.Name);
    if (Sym == InvalidSymbol) {
      Diags.error(V.Loc, "use of undeclared variable '" + V.Name + "'");
      return false;
    }
    const Symbol &Info = Syms.get(Sym);
    if (Info.isArray() && !AllowWholeArray) {
      Diags.error(V.Loc, "whole array '" + V.Name +
                             "' cannot be used in an expression");
      return false;
    }
    V.Sym = Sym;
    V.Ty = Info.Type;
    return true;
  }
  case ExprKind::ArrayRef:
    return resolvePostfix(U, Slot);
  case ExprKind::Unary: {
    auto &Un = static_cast<UnaryExpr &>(E);
    if (!analyzeExpr(U, Un.Sub))
      return false;
    switch (Un.Op) {
    case UnaryOp::Neg:
    case UnaryOp::Abs:
      if (Un.Sub->Ty == ScalarType::Bool) {
        Diags.error(Un.Loc, "numeric operator applied to logical value");
        return false;
      }
      Un.Ty = Un.Sub->Ty;
      return true;
    case UnaryOp::Not:
      if (Un.Sub->Ty != ScalarType::Bool) {
        Diags.error(Un.Loc, "'not' requires a logical operand");
        return false;
      }
      Un.Ty = ScalarType::Bool;
      return true;
    case UnaryOp::IntCast:
      if (Un.Sub->Ty == ScalarType::Bool) {
        Diags.error(Un.Loc, "int() requires a numeric operand");
        return false;
      }
      Un.Ty = ScalarType::Int;
      return true;
    case UnaryOp::RealCast:
      if (Un.Sub->Ty == ScalarType::Bool) {
        Diags.error(Un.Loc, "real() requires a numeric operand");
        return false;
      }
      Un.Ty = ScalarType::Real;
      return true;
    }
    return false;
  }
  case ExprKind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    if (!analyzeExpr(U, B.LHS) || !analyzeExpr(U, B.RHS))
      return false;
    ScalarType L = B.LHS->Ty, R = B.RHS->Ty;
    switch (B.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Min:
    case BinaryOp::Max:
      if (L == ScalarType::Bool || R == ScalarType::Bool) {
        Diags.error(B.Loc, "numeric operator applied to logical value");
        return false;
      }
      B.Ty = (L == ScalarType::Real || R == ScalarType::Real)
                 ? ScalarType::Real
                 : ScalarType::Int;
      return true;
    case BinaryOp::Mod:
      if (L != ScalarType::Int || R != ScalarType::Int) {
        Diags.error(B.Loc, "mod() requires integer operands");
        return false;
      }
      B.Ty = ScalarType::Int;
      return true;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if ((L == ScalarType::Bool) != (R == ScalarType::Bool)) {
        Diags.error(B.Loc, "cannot compare logical with numeric value");
        return false;
      }
      if (L == ScalarType::Bool && B.Op != BinaryOp::Eq &&
          B.Op != BinaryOp::Ne) {
        Diags.error(B.Loc, "ordering comparison of logical values");
        return false;
      }
      B.Ty = ScalarType::Bool;
      return true;
    case BinaryOp::And:
    case BinaryOp::Or:
      if (L != ScalarType::Bool || R != ScalarType::Bool) {
        Diags.error(B.Loc, "logical operator requires logical operands");
        return false;
      }
      B.Ty = ScalarType::Bool;
      return true;
    }
    return false;
  }
  case ExprKind::Call: {
    auto &C = static_cast<CallExpr &>(E);
    const Function *Callee = M->function(C.Callee);
    if (!Callee || !Callee->resultType()) {
      Diags.error(C.Loc, "unknown function '" + C.Callee + "'");
      return false;
    }
    C.Ty = *Callee->resultType();
    return checkCallArgs(U, C.Callee, C.Args, C.Loc);
  }
  }
  return false;
}

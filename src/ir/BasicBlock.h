//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: straight-line instruction sequences ending in exactly one
/// terminator. Successors are derived from the terminator; predecessor
/// lists are (re)computed by Function::recomputePreds after CFG edits.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_BASICBLOCK_H
#define NASCENT_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace nascent {

/// One CFG node. Blocks are owned by their Function and addressed by their
/// dense BlockID.
class BasicBlock {
public:
  BasicBlock(BlockID ID, std::string Name) : ID(ID), Name(std::move(Name)) {}

  BlockID id() const { return ID; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  std::vector<Instruction> &instructions() { return Insts; }
  const std::vector<Instruction> &instructions() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// The terminator, which must exist for a well-formed block.
  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }
  Instruction &terminator() {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }

  /// True once a terminator has been appended.
  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Appends \p I; asserts the block is not already terminated.
  void append(Instruction I) {
    assert(!hasTerminator() && "appending past the terminator");
    Insts.push_back(std::move(I));
  }

  /// Inserts \p I before position \p Pos (0 = block start).
  void insertAt(size_t Pos, Instruction I) {
    assert(Pos <= Insts.size() && "insert position out of range");
    Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Pos), std::move(I));
  }

  /// Inserts \p I immediately before the terminator. The block must be
  /// terminated.
  void insertBeforeTerminator(Instruction I) {
    assert(hasTerminator() && "block has no terminator");
    Insts.insert(Insts.end() - 1, std::move(I));
  }

  /// Successor block ids, derived from the terminator (empty for Ret/Trap).
  std::vector<BlockID> successors() const;

  /// Predecessors; valid only after Function::recomputePreds.
  const std::vector<BlockID> &preds() const { return Preds; }

private:
  friend class Function;

  BlockID ID;
  std::string Name;
  std::vector<Instruction> Insts;
  std::vector<BlockID> Preds;
};

} // namespace nascent

#endif // NASCENT_IR_BASICBLOCK_H

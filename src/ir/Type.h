//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar and array types for the Nascent IR. Arrays carry their declared
/// per-dimension bounds, which is what the range checks compare against.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_TYPE_H
#define NASCENT_IR_TYPE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nascent {

/// The scalar types of the mini-Fortran language and its IR.
enum class ScalarType {
  Int,  ///< 64-bit signed integer ("integer")
  Real, ///< double-precision float ("real")
  Bool, ///< logical value ("logical")
};

/// One array dimension with inclusive declared bounds [Lower, Upper].
struct ArrayDim {
  int64_t Lower = 1;
  int64_t Upper = 1;

  /// Number of elements in this dimension (zero-extent dims are rejected by
  /// semantic analysis).
  int64_t extent() const {
    assert(Upper >= Lower && "malformed array dimension");
    return Upper - Lower + 1;
  }
};

/// Shape of an array: element type plus one ArrayDim per dimension, listed
/// from the first (fastest varying, Fortran order) to the last.
struct ArrayShape {
  ScalarType Element = ScalarType::Real;
  std::vector<ArrayDim> Dims;

  size_t rank() const { return Dims.size(); }

  /// Total number of elements.
  int64_t elementCount() const {
    int64_t N = 1;
    for (const ArrayDim &D : Dims)
      N *= D.extent();
    return N;
  }
};

/// Returns a printable name for \p T.
inline const char *scalarTypeName(ScalarType T) {
  switch (T) {
  case ScalarType::Int:
    return "integer";
  case ScalarType::Real:
    return "real";
  case ScalarType::Bool:
    return "logical";
  }
  return "?";
}

} // namespace nascent

#endif // NASCENT_IR_TYPE_H

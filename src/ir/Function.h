//===----------------------------------------------------------------------===//
///
/// \file
/// Function: a CFG of basic blocks plus the symbol table, parameter list,
/// and front-end loop metadata. Procedures ("subroutine") have no result;
/// functions return a scalar.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_FUNCTION_H
#define NASCENT_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/LoopMetadata.h"
#include "ir/Symbol.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nascent {

class Module;

/// One procedure in a Module.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  SymbolTable &symbols() { return Syms; }
  const SymbolTable &symbols() const { return Syms; }

  /// Parameters in declaration order. Scalars are passed by value; arrays
  /// alias the caller's storage.
  std::vector<SymbolID> &params() { return Params; }
  const std::vector<SymbolID> &params() const { return Params; }

  /// Result type for functions; nullopt for subroutines and the program.
  std::optional<ScalarType> resultType() const { return ResultType; }
  void setResultType(ScalarType T) { ResultType = T; }

  /// Creates a new block; the first created block is the entry.
  BasicBlock *createBlock(const std::string &NameHint);

  BasicBlock *block(BlockID ID) { return Blocks[ID].get(); }
  const BasicBlock *block(BlockID ID) const { return Blocks[ID].get(); }

  size_t numBlocks() const { return Blocks.size(); }

  BlockID entryBlock() const { return 0; }

  /// Recomputes all predecessor lists from terminators. Must be called
  /// after any CFG edit and before using BasicBlock::preds.
  void recomputePreds();

  /// Splits every critical edge (multi-successor source to multi-pred
  /// target) by inserting an empty forwarding block, then recomputes preds.
  /// PRE insertion on edges requires this normal form. Returns the number
  /// of edges split.
  unsigned splitCriticalEdges();

  std::vector<DoLoopInfo> &doLoops() { return DoLoops; }
  const std::vector<DoLoopInfo> &doLoops() const { return DoLoops; }

  /// Allocates the next check lifecycle tag (1-based; 0 is NoCheckTag).
  /// Delegates to the owning module's counter so tags are unique across
  /// the whole compilation — the provenance recorder keys on them alone;
  /// a standalone function (unit tests) falls back to a local counter.
  /// Assignment order is the deterministic insertion order of checks, so
  /// tags are stable across runs and job counts.
  CheckTag allocateCheckTag();
  CheckTag lastCheckTag() const { return LastCheckTag; }

  /// Deep copy: blocks, instructions, symbol table, and loop metadata.
  /// Block ids are preserved, so analyses over the copy and the source
  /// speak about the same CFG points. The audit subsystem snapshots the
  /// pre-optimization IR this way.
  std::unique_ptr<Function> clone() const;

  /// Iteration over blocks in id order.
  auto begin() { return Blocks.begin(); }
  auto end() { return Blocks.end(); }
  auto begin() const { return Blocks.begin(); }
  auto end() const { return Blocks.end(); }

private:
  friend class Module;

  std::string Name;
  SymbolTable Syms;
  std::vector<SymbolID> Params;
  std::optional<ScalarType> ResultType;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<DoLoopInfo> DoLoops;
  Module *Parent = nullptr;
  CheckTag LastCheckTag = NoCheckTag;
};

/// A whole program: functions indexed by name, with a designated entry
/// ("the program" in mini-Fortran).
class Module {
public:
  /// Creates a function; names must be unique.
  Function *createFunction(const std::string &Name);

  Function *function(const std::string &Name);
  const Function *function(const std::string &Name) const;

  void setEntry(const std::string &Name) { EntryName = Name; }
  const std::string &entryName() const { return EntryName; }
  Function *entry() { return function(EntryName); }
  const Function *entry() const { return function(EntryName); }

  std::vector<Function *> functions();
  std::vector<const Function *> functions() const;

  /// Deep copy of every function plus the entry designation.
  std::unique_ptr<Module> clone() const;

  /// The module-wide check lifecycle tag counter (Function::
  /// allocateCheckTag delegates here for owned functions).
  CheckTag allocateCheckTag() { return ++LastCheckTag; }

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::string EntryName;
  CheckTag LastCheckTag = NoCheckTag;
};

inline CheckTag Function::allocateCheckTag() {
  return Parent ? Parent->allocateCheckTag() : ++LastCheckTag;
}

} // namespace nascent

#endif // NASCENT_IR_FUNCTION_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Function-local symbols (scalars, temporaries, arrays) and the symbol
/// table. Range-expressions of canonical checks are linear combinations of
/// integer scalar symbols, so symbol identity is the basis of check
/// families and of the kill sets of the data-flow problems.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_SYMBOL_H
#define NASCENT_IR_SYMBOL_H

#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace nascent {

/// Dense index of a symbol within one function's symbol table.
using SymbolID = uint32_t;

/// Sentinel for "no symbol" (e.g. instructions without a destination).
constexpr SymbolID InvalidSymbol = ~SymbolID(0);

/// What kind of entity a symbol names.
enum class SymbolKind {
  Scalar, ///< user-declared scalar variable
  Temp,   ///< compiler temporary
  Array,  ///< array variable with declared bounds
};

/// One entry in a function's symbol table.
struct Symbol {
  SymbolKind Kind = SymbolKind::Scalar;
  std::string Name;
  ScalarType Type = ScalarType::Int; ///< scalar type (element type for arrays)
  ArrayShape Shape;                  ///< valid only when Kind == Array
  bool IsParam = false;              ///< true for procedure parameters
  /// For array parameters the callee aliases the caller's storage; scalars
  /// are passed by value.
  bool isArray() const { return Kind == SymbolKind::Array; }
};

/// Per-function symbol table with name lookup and temp generation.
class SymbolTable {
public:
  /// Creates a scalar variable. Names must be unique among non-temps.
  SymbolID createScalar(const std::string &Name, ScalarType Type,
                        bool IsParam = false);

  /// Creates an array variable with the given shape.
  SymbolID createArray(const std::string &Name, ArrayShape Shape,
                       bool IsParam = false);

  /// Creates a fresh compiler temporary of scalar type \p Type.
  SymbolID createTemp(ScalarType Type, const std::string &Hint = "t");

  /// Looks up a symbol by source name; returns InvalidSymbol if absent.
  SymbolID lookup(const std::string &Name) const;

  const Symbol &get(SymbolID ID) const { return Symbols[ID]; }
  Symbol &get(SymbolID ID) { return Symbols[ID]; }

  size_t size() const { return Symbols.size(); }

  const std::vector<Symbol> &symbols() const { return Symbols; }

  /// Printable name of \p ID, valid even for temps.
  const std::string &name(SymbolID ID) const { return Symbols[ID].Name; }

private:
  std::vector<Symbol> Symbols;
  std::unordered_map<std::string, SymbolID> ByName;
  unsigned NextTempNumber = 0;
};

} // namespace nascent

#endif // NASCENT_IR_SYMBOL_H

#include "ir/Verifier.h"

#include "support/StringUtils.h"

using namespace nascent;

namespace {

/// Verification context for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, DiagnosticEngine &Diags)
      : F(F), Diags(Diags) {}

  bool run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (const auto &BB : F)
      verifyBlock(*BB);
    verifyLoopMetadata();
    return !Failed;
  }

private:
  void error(const std::string &Msg) {
    Diags.error(SourceLocation(), "verifier: " + F.name() + ": " + Msg);
    Failed = true;
  }

  bool validBlock(BlockID B) const { return B < F.numBlocks(); }

  bool validSym(SymbolID S) const { return S < F.symbols().size(); }

  void verifyOperandSymbols(const Instruction &I, const std::string &Where) {
    for (const Value &V : I.Operands)
      if (V.isSym() && !validSym(V.symbol()))
        error(Where + ": operand references invalid symbol");
    for (const Value &V : I.Indices)
      if (V.isSym() && !validSym(V.symbol()))
        error(Where + ": index references invalid symbol");
  }

  void verifyCheckExpr(const CheckExpr &C, const std::string &Where) {
    if (C.expr().constantPart() != 0)
      error(Where + ": check expression has non-zero constant part");
    for (const auto &[Sym, Coeff] : C.expr().terms()) {
      if (!validSym(Sym)) {
        error(Where + ": check references invalid symbol");
        continue;
      }
      const Symbol &S = F.symbols().get(Sym);
      if (S.isArray())
        error(Where + ": check references array symbol " + S.Name);
      else if (S.Type != ScalarType::Int)
        error(Where + ": check references non-integer symbol " + S.Name);
      if (Coeff == 0)
        error(Where + ": check has zero coefficient term");
    }
  }

  void verifyBlock(const BasicBlock &BB) {
    std::string Where = "bb" + std::to_string(BB.id());
    if (!BB.hasTerminator()) {
      error(Where + ": block lacks a terminator");
      return;
    }
    for (size_t K = 0; K + 1 < BB.size(); ++K)
      if (BB.instructions()[K].isTerminator())
        error(Where + ": terminator in mid-block at position " +
              std::to_string(K));

    for (const Instruction &I : BB.instructions())
      verifyInstruction(I, Where);
  }

  void verifyInstruction(const Instruction &I, const std::string &Where) {
    verifyOperandSymbols(I, Where);
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
    case Opcode::And:
    case Opcode::Or:
      if (I.Operands.size() != 2)
        error(Where + ": binary op with arity " +
              std::to_string(I.Operands.size()));
      if (!validSym(I.Dest))
        error(Where + ": binary op with invalid destination");
      break;
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Not:
    case Opcode::Copy:
    case Opcode::IntToReal:
    case Opcode::RealToInt:
      if (I.Operands.size() != 1)
        error(Where + ": unary op with arity " +
              std::to_string(I.Operands.size()));
      if (!validSym(I.Dest))
        error(Where + ": unary op with invalid destination");
      break;
    case Opcode::Load:
    case Opcode::Store: {
      if (!validSym(I.Array)) {
        error(Where + ": memory op with invalid array symbol");
        break;
      }
      const Symbol &A = F.symbols().get(I.Array);
      if (!A.isArray()) {
        error(Where + ": memory op on non-array symbol " + A.Name);
        break;
      }
      if (I.Indices.size() != A.Shape.rank())
        error(Where + ": subscript arity " + std::to_string(I.Indices.size()) +
              " does not match rank " + std::to_string(A.Shape.rank()) +
              " of array " + A.Name);
      if (I.Op == Opcode::Load && !validSym(I.Dest))
        error(Where + ": load with invalid destination");
      if (I.Op == Opcode::Store && I.Operands.size() != 1)
        error(Where + ": store must have exactly one value operand");
      break;
    }
    case Opcode::Check:
      verifyCheckExpr(I.Check, Where);
      if (!I.Guards.empty())
        error(Where + ": plain check carries guards");
      break;
    case Opcode::CondCheck:
      verifyCheckExpr(I.Check, Where);
      if (I.Guards.empty())
        error(Where + ": conditional check without guards");
      for (const CheckExpr &G : I.Guards)
        verifyCheckExpr(G, Where);
      break;
    case Opcode::Trap:
      break;
    case Opcode::Br:
      if (I.Operands.size() != 1)
        error(Where + ": br must have exactly one condition operand");
      if (!validBlock(I.TrueTarget) || !validBlock(I.FalseTarget))
        error(Where + ": br target out of range");
      break;
    case Opcode::Jump:
      if (!validBlock(I.TrueTarget))
        error(Where + ": jump target out of range");
      break;
    case Opcode::Ret:
      if (I.Operands.size() > 1)
        error(Where + ": ret with more than one operand");
      break;
    case Opcode::Call:
      if (I.Callee.empty())
        error(Where + ": call without callee name");
      break;
    case Opcode::Print:
      if (I.Operands.size() != 1)
        error(Where + ": print must have exactly one operand");
      break;
    }
  }

  void verifyLoopMetadata() {
    for (const DoLoopInfo &L : F.doLoops()) {
      if (!validBlock(L.Preheader) || !validBlock(L.Header) ||
          !validBlock(L.BodyEntry) || !validBlock(L.Latch)) {
        error("do-loop metadata references invalid block");
        continue;
      }
      if (L.IndexVar == InvalidSymbol || !validSym(L.IndexVar))
        error("do-loop metadata has invalid index variable");
      if (L.Step == 0)
        error("do-loop metadata has zero step");
    }
  }

  const Function &F;
  DiagnosticEngine &Diags;
  bool Failed = false;
};

} // namespace

bool nascent::verifyFunction(const Function &F, DiagnosticEngine &Diags) {
  return FunctionVerifier(F, Diags).run();
}

bool nascent::verifyModule(const Module &M, DiagnosticEngine &Diags) {
  bool OK = true;
  if (!M.entryName().empty() && M.entry() == nullptr) {
    Diags.error(SourceLocation(),
                "verifier: entry function '" + M.entryName() + "' not found");
    OK = false;
  }
  for (const Function *F : M.functions()) {
    if (!verifyFunction(*F, Diags))
      OK = false;
    // Cross-function checks: call targets exist and arity matches.
    for (const auto &BB : *F) {
      for (const Instruction &I : BB->instructions()) {
        if (I.Op != Opcode::Call)
          continue;
        const Function *Callee = M.function(I.Callee);
        if (!Callee) {
          Diags.error(SourceLocation(), "verifier: " + F->name() +
                                            ": call to unknown function '" +
                                            I.Callee + "'");
          OK = false;
          continue;
        }
        if (Callee->params().size() != I.Operands.size()) {
          Diags.error(SourceLocation(),
                      "verifier: " + F->name() + ": call to '" + I.Callee +
                          "' with " + std::to_string(I.Operands.size()) +
                          " args, expected " +
                          std::to_string(Callee->params().size()));
          OK = false;
        }
        if ((I.Dest != InvalidSymbol) != Callee->resultType().has_value()) {
          Diags.error(SourceLocation(),
                      "verifier: " + F->name() + ": call result mismatch for '" +
                          I.Callee + "'");
          OK = false;
        }
      }
    }
  }
  return OK;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience layer for constructing IR: used by the AST lowering, the
/// optimizer (when it fabricates checks), tests, and the examples that
/// rebuild the paper's figure fragments directly against the public API.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_IRBUILDER_H
#define NASCENT_IR_IRBUILDER_H

#include "ir/Function.h"

namespace nascent {

/// Builds instructions into a current insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &function() { return F; }

  void setInsertBlock(BasicBlock *BB) { CurBB = BB; }
  BasicBlock *insertBlock() { return CurBB; }

  /// Creates a block without changing the insertion point.
  BasicBlock *createBlock(const std::string &NameHint) {
    return F.createBlock(NameHint);
  }

  /// Emits Dest = Op(A, B) into a fresh temp and returns it as a Value.
  Value emitBinary(Opcode Op, Value A, Value B, ScalarType Ty);

  /// Emits Dest = Op(A, B) into an existing symbol.
  void emitBinaryTo(SymbolID Dest, Opcode Op, Value A, Value B);

  /// Emits Dest = Op(A) into a fresh temp and returns it.
  Value emitUnary(Opcode Op, Value A, ScalarType Ty);

  /// Emits Dest = Op(A) into an existing symbol.
  void emitUnaryTo(SymbolID Dest, Opcode Op, Value A);

  /// Emits Dest = A.
  void emitCopy(SymbolID Dest, Value A);

  /// Emits a Load of Array[Indices...] into a fresh temp and returns it.
  Value emitLoad(SymbolID Array, std::vector<Value> Indices);

  /// Emits Array[Indices...] = V.
  void emitStore(SymbolID Array, std::vector<Value> Indices, Value V);

  /// Emits an unconditional range check.
  void emitCheck(CheckExpr C, CheckOrigin Origin = {});

  /// Emits a guarded range check (all guards must hold to perform C).
  void emitCondCheck(std::vector<CheckExpr> Guards, CheckExpr C,
                     CheckOrigin Origin = {});

  void emitBr(Value Cond, BlockID TrueBB, BlockID FalseBB);
  void emitJump(BlockID Target);
  void emitRet();
  void emitRetValue(Value V);
  void emitTrap(CheckOrigin Origin = {});

  /// Emits a call; returns the result temp for functions, or an engaged-
  /// empty Value for subroutines.
  Value emitCall(const std::string &Callee, std::vector<Value> Args,
                 std::optional<ScalarType> ResultTy);

  void emitPrint(Value V);

private:
  void append(Instruction I);

  Function &F;
  BasicBlock *CurBB = nullptr;
};

} // namespace nascent

#endif // NASCENT_IR_IRBUILDER_H

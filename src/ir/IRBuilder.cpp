#include "ir/IRBuilder.h"

using namespace nascent;

void IRBuilder::append(Instruction I) {
  assert(CurBB && "no insertion block set");
  CurBB->append(std::move(I));
}

Value IRBuilder::emitBinary(Opcode Op, Value A, Value B, ScalarType Ty) {
  SymbolID Dest = F.symbols().createTemp(Ty);
  emitBinaryTo(Dest, Op, A, B);
  return Value::sym(Dest);
}

void IRBuilder::emitBinaryTo(SymbolID Dest, Opcode Op, Value A, Value B) {
  Instruction I;
  I.Op = Op;
  I.Dest = Dest;
  I.Operands = {A, B};
  append(std::move(I));
}

Value IRBuilder::emitUnary(Opcode Op, Value A, ScalarType Ty) {
  SymbolID Dest = F.symbols().createTemp(Ty);
  emitUnaryTo(Dest, Op, A);
  return Value::sym(Dest);
}

void IRBuilder::emitUnaryTo(SymbolID Dest, Opcode Op, Value A) {
  Instruction I;
  I.Op = Op;
  I.Dest = Dest;
  I.Operands = {A};
  append(std::move(I));
}

void IRBuilder::emitCopy(SymbolID Dest, Value A) {
  Instruction I;
  I.Op = Opcode::Copy;
  I.Dest = Dest;
  I.Operands = {A};
  append(std::move(I));
}

Value IRBuilder::emitLoad(SymbolID Array, std::vector<Value> Indices) {
  SymbolID Dest = F.symbols().createTemp(F.symbols().get(Array).Type);
  Instruction I;
  I.Op = Opcode::Load;
  I.Dest = Dest;
  I.Array = Array;
  I.Indices = std::move(Indices);
  append(std::move(I));
  return Value::sym(Dest);
}

void IRBuilder::emitStore(SymbolID Array, std::vector<Value> Indices, Value V) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Array = Array;
  I.Indices = std::move(Indices);
  I.Operands = {V};
  append(std::move(I));
}

void IRBuilder::emitCheck(CheckExpr C, CheckOrigin Origin) {
  Instruction I;
  I.Op = Opcode::Check;
  I.Check = std::move(C);
  I.Origin = std::move(Origin);
  I.Tag = F.allocateCheckTag();
  append(std::move(I));
}

void IRBuilder::emitCondCheck(std::vector<CheckExpr> Guards, CheckExpr C,
                              CheckOrigin Origin) {
  Instruction I;
  I.Op = Opcode::CondCheck;
  I.Guards = std::move(Guards);
  I.Check = std::move(C);
  I.Origin = std::move(Origin);
  I.Tag = F.allocateCheckTag();
  append(std::move(I));
}

void IRBuilder::emitBr(Value Cond, BlockID TrueBB, BlockID FalseBB) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Operands = {Cond};
  I.TrueTarget = TrueBB;
  I.FalseTarget = FalseBB;
  append(std::move(I));
}

void IRBuilder::emitJump(BlockID Target) {
  Instruction I;
  I.Op = Opcode::Jump;
  I.TrueTarget = Target;
  append(std::move(I));
}

void IRBuilder::emitRet() {
  Instruction I;
  I.Op = Opcode::Ret;
  append(std::move(I));
}

void IRBuilder::emitRetValue(Value V) {
  Instruction I;
  I.Op = Opcode::Ret;
  I.Operands = {V};
  append(std::move(I));
}

void IRBuilder::emitTrap(CheckOrigin Origin) {
  Instruction I;
  I.Op = Opcode::Trap;
  I.Origin = std::move(Origin);
  append(std::move(I));
}

Value IRBuilder::emitCall(const std::string &Callee, std::vector<Value> Args,
                          std::optional<ScalarType> ResultTy) {
  Instruction I;
  I.Op = Opcode::Call;
  I.Callee = Callee;
  I.Operands = std::move(Args);
  Value Result;
  if (ResultTy) {
    I.Dest = F.symbols().createTemp(*ResultTy);
    Result = Value::sym(I.Dest);
  }
  append(std::move(I));
  return Result;
}

void IRBuilder::emitPrint(Value V) {
  Instruction I;
  I.Op = Opcode::Print;
  I.Operands = {V};
  append(std::move(I));
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Textual rendering of the IR for debugging, tests, and the figure
/// examples (which print a fragment before and after optimization).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_IRPRINTER_H
#define NASCENT_IR_IRPRINTER_H

#include "ir/Function.h"

#include <string>

namespace nascent {

/// Renders one operand, e.g. "n", "%t3", "42", "1.5".
std::string printValue(const Value &V, const SymbolTable &Syms);

/// Renders one instruction (no trailing newline).
std::string printInstruction(const Instruction &I, const SymbolTable &Syms);

/// Renders a whole function: signature, then blocks with labels.
std::string printFunction(const Function &F);

/// Renders every function in the module.
std::string printModule(const Module &M);

} // namespace nascent

#endif // NASCENT_IR_IRPRINTER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Structural IR verifier. Run after lowering and after every optimizer
/// scheme in tests to catch malformed CFGs, dangling block references,
/// non-integer check operands, and subscript-arity mismatches.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_VERIFIER_H
#define NASCENT_IR_VERIFIER_H

#include "ir/Function.h"
#include "support/Diagnostics.h"

namespace nascent {

/// Verifies one function; reports problems into \p Diags. Returns true when
/// the function is well-formed.
bool verifyFunction(const Function &F, DiagnosticEngine &Diags);

/// Verifies the whole module, including cross-function call arity and the
/// existence of the entry function.
bool verifyModule(const Module &M, DiagnosticEngine &Diags);

} // namespace nascent

#endif // NASCENT_IR_VERIFIER_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The Nascent IR instruction set: a three-address statement IR with
/// first-class range-check instructions. Checks being real instructions is
/// what lets the interpreter measure dynamic check counts directly on the
/// code the optimizer rewrote.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_INSTRUCTION_H
#define NASCENT_IR_INSTRUCTION_H

#include "ir/CheckExpr.h"
#include "ir/Symbol.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nascent {

/// Dense index of a basic block within its function.
using BlockID = uint32_t;
constexpr BlockID InvalidBlock = ~BlockID(0);

/// Stable per-function identity of one range check, assigned when the
/// check is first materialised (naive lowering or optimizer insertion)
/// and carried through every later transformation: strengthening and
/// INX rewrites keep the tag, preheader re-hoisting moves it, and the
/// Trap replacing a constant-false check inherits it. The provenance
/// subsystem (obs/Provenance.h) keys check lifecycles on this tag; 0
/// means "untagged" (checks fabricated directly by tests).
using CheckTag = uint32_t;
constexpr CheckTag NoCheckTag = 0;

/// Instruction opcodes.
enum class Opcode {
  // Arithmetic: Dest = op(Operands...)
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Min,
  Max,
  Abs,
  // Comparisons (produce 0/1 into an integer/bool symbol)
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Logic on 0/1 values
  And,
  Or,
  Not,
  // Data movement
  Copy,     ///< Dest = Operands[0]
  IntToReal,///< Dest(real) = Operands[0](int)
  RealToInt,///< Dest(int) = trunc(Operands[0](real))
  // Memory
  Load,  ///< Dest = Array[Indices...]
  Store, ///< Array[Indices...] = Operands[0]
  // Range checking
  Check,     ///< trap unless Check holds
  CondCheck, ///< if all Guards hold, trap unless Check holds
  Trap,      ///< unconditional trap (terminator)
  // Control flow
  Br,   ///< conditional branch on Operands[0]: TrueTarget / FalseTarget
  Jump, ///< unconditional branch to TrueTarget
  Ret,  ///< return (Operands[0] if the function has a result)
  Call, ///< Dest? = Callee(Operands...); array args passed by reference
  Print ///< append Operands[0] to the interpreter's output log
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True for opcodes that terminate a basic block.
bool isTerminator(Opcode Op);

/// True for the two range-check opcodes (the paper's dynamic-check metric
/// counts exactly these).
inline bool isRangeCheckOp(Opcode Op) {
  return Op == Opcode::Check || Op == Opcode::CondCheck;
}

/// An operand: a symbol reference or an immediate constant.
class Value {
public:
  enum class Kind { None, Sym, IntConst, RealConst, BoolConst };

  Value() = default;

  static Value sym(SymbolID S) {
    Value V;
    V.K = Kind::Sym;
    V.SymId = S;
    return V;
  }
  static Value intConst(int64_t I) {
    Value V;
    V.K = Kind::IntConst;
    V.Int = I;
    return V;
  }
  static Value realConst(double R) {
    Value V;
    V.K = Kind::RealConst;
    V.Real = R;
    return V;
  }
  static Value boolConst(bool B) {
    Value V;
    V.K = Kind::BoolConst;
    V.Int = B ? 1 : 0;
    return V;
  }

  Kind kind() const { return K; }
  bool isSym() const { return K == Kind::Sym; }
  bool isIntConst() const { return K == Kind::IntConst; }
  bool isRealConst() const { return K == Kind::RealConst; }
  bool isBoolConst() const { return K == Kind::BoolConst; }
  bool isConst() const { return isIntConst() || isRealConst() || isBoolConst(); }

  SymbolID symbol() const {
    assert(isSym() && "not a symbol operand");
    return SymId;
  }
  int64_t intValue() const {
    assert((isIntConst() || isBoolConst()) && "not an integer constant");
    return Int;
  }
  double realValue() const {
    assert(isRealConst() && "not a real constant");
    return Real;
  }

private:
  Kind K = Kind::None;
  SymbolID SymId = InvalidSymbol;
  int64_t Int = 0;
  double Real = 0;
};

/// One IR instruction. A tagged struct rather than a class hierarchy: the
/// optimizer freely moves, clones, and rewrites instructions and value
/// semantics keep that simple.
struct Instruction {
  Opcode Op = Opcode::Copy;
  SymbolID Dest = InvalidSymbol;  ///< destination (arith/copy/load/call)
  std::vector<Value> Operands;    ///< op-dependent operands (see Opcode)
  SymbolID Array = InvalidSymbol; ///< Load/Store array symbol
  std::vector<Value> Indices;     ///< Load/Store subscripts, one per dim

  CheckExpr Check;               ///< Check/CondCheck payload
  std::vector<CheckExpr> Guards; ///< CondCheck guards (conjunction)
  CheckOrigin Origin;            ///< provenance for Check/CondCheck/Trap
  CheckTag Tag = NoCheckTag;     ///< lifecycle identity (Check/CondCheck/Trap)

  std::string Callee; ///< Call target name

  BlockID TrueTarget = InvalidBlock;  ///< Br true edge / Jump target
  BlockID FalseTarget = InvalidBlock; ///< Br false edge

  SourceLocation Loc;

  bool isTerminator() const { return nascent::isTerminator(Op); }
  bool isRangeCheck() const { return isRangeCheckOp(Op); }
};

} // namespace nascent

#endif // NASCENT_IR_INSTRUCTION_H

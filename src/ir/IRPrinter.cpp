#include "ir/IRPrinter.h"

#include "support/StringUtils.h"

using namespace nascent;

std::string nascent::printValue(const Value &V, const SymbolTable &Syms) {
  switch (V.kind()) {
  case Value::Kind::None:
    return "<none>";
  case Value::Kind::Sym:
    return Syms.name(V.symbol());
  case Value::Kind::IntConst:
    return std::to_string(V.intValue());
  case Value::Kind::BoolConst:
    return V.intValue() ? "true" : "false";
  case Value::Kind::RealConst:
    return formatString("%g", V.realValue());
  }
  return "?";
}

std::string nascent::printInstruction(const Instruction &I,
                                      const SymbolTable &Syms) {
  std::string Out;
  auto Dst = [&]() { return Syms.name(I.Dest) + " = "; };
  auto Ops = [&](const char *Sep) {
    std::string S;
    for (size_t K = 0; K != I.Operands.size(); ++K) {
      if (K)
        S += Sep;
      S += printValue(I.Operands[K], Syms);
    }
    return S;
  };
  auto Idx = [&]() {
    std::string S = "[";
    for (size_t K = 0; K != I.Indices.size(); ++K) {
      if (K)
        S += ", ";
      S += printValue(I.Indices[K], Syms);
    }
    return S + "]";
  };

  switch (I.Op) {
  case Opcode::Load:
    return Dst() + "load " + Syms.name(I.Array) + Idx();
  case Opcode::Store:
    return "store " + Syms.name(I.Array) + Idx() + " = " + Ops(", ");
  case Opcode::Check:
    return I.Check.str(Syms);
  case Opcode::CondCheck: {
    Out = "Cond-check((";
    for (size_t K = 0; K != I.Guards.size(); ++K) {
      if (K)
        Out += " and ";
      Out += I.Guards[K].expr().str(Syms) + " <= " +
             std::to_string(I.Guards[K].bound());
    }
    Out += "), " + I.Check.expr().str(Syms) + " <= " +
           std::to_string(I.Check.bound()) + ")";
    return Out;
  }
  case Opcode::Trap:
    return "trap";
  case Opcode::Br:
    return "br " + Ops(", ") + ", bb" + std::to_string(I.TrueTarget) + ", bb" +
           std::to_string(I.FalseTarget);
  case Opcode::Jump:
    return "jump bb" + std::to_string(I.TrueTarget);
  case Opcode::Ret:
    return I.Operands.empty() ? "ret" : ("ret " + Ops(", "));
  case Opcode::Call:
    Out = (I.Dest != InvalidSymbol ? Dst() : std::string()) + "call " +
          I.Callee + "(" + Ops(", ") + ")";
    return Out;
  case Opcode::Print:
    return "print " + Ops(", ");
  case Opcode::Copy:
    return Dst() + Ops(", ");
  default:
    return Dst() + opcodeName(I.Op) + " " + Ops(", ");
  }
}

std::string nascent::printFunction(const Function &F) {
  std::string Out = "function " + F.name() + "(";
  for (size_t K = 0; K != F.params().size(); ++K) {
    if (K)
      Out += ", ";
    Out += F.symbols().name(F.params()[K]);
  }
  Out += ")\n";
  for (const auto &BB : F) {
    Out += "bb" + std::to_string(BB->id()) + " (" + BB->name() + "):\n";
    for (const Instruction &I : BB->instructions()) {
      Out += "  " + printInstruction(I, F.symbols()) + "\n";
    }
  }
  return Out;
}

std::string nascent::printModule(const Module &M) {
  std::string Out;
  for (const Function *F : M.functions()) {
    Out += printFunction(*F);
    Out += '\n';
  }
  return Out;
}

#include "ir/Symbol.h"

#include <cassert>

using namespace nascent;

SymbolID SymbolTable::createScalar(const std::string &Name, ScalarType Type,
                                   bool IsParam) {
  assert(ByName.find(Name) == ByName.end() && "duplicate symbol name");
  SymbolID ID = static_cast<SymbolID>(Symbols.size());
  Symbol S;
  S.Kind = SymbolKind::Scalar;
  S.Name = Name;
  S.Type = Type;
  S.IsParam = IsParam;
  Symbols.push_back(std::move(S));
  ByName.emplace(Name, ID);
  return ID;
}

SymbolID SymbolTable::createArray(const std::string &Name, ArrayShape Shape,
                                  bool IsParam) {
  assert(ByName.find(Name) == ByName.end() && "duplicate symbol name");
  SymbolID ID = static_cast<SymbolID>(Symbols.size());
  Symbol S;
  S.Kind = SymbolKind::Array;
  S.Name = Name;
  S.Type = Shape.Element;
  S.Shape = std::move(Shape);
  S.IsParam = IsParam;
  Symbols.push_back(std::move(S));
  ByName.emplace(Name, ID);
  return ID;
}

SymbolID SymbolTable::createTemp(ScalarType Type, const std::string &Hint) {
  SymbolID ID = static_cast<SymbolID>(Symbols.size());
  Symbol S;
  S.Kind = SymbolKind::Temp;
  S.Name = "%" + Hint + std::to_string(NextTempNumber++);
  S.Type = Type;
  Symbols.push_back(std::move(S));
  return ID;
}

SymbolID SymbolTable::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? InvalidSymbol : It->second;
}

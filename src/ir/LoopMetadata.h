//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata the front end records for each counted "do" loop. The
/// loop-limit-substitution scheme (paper section 3.3) needs the loop's
/// index variable, affine bounds, and step to substitute the index's final
/// value into linear checks; the loop-entry guard ("the loop executes at
/// least once") becomes the condition of hoisted conditional checks.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_LOOPMETADATA_H
#define NASCENT_IR_LOOPMETADATA_H

#include "ir/Instruction.h"
#include "ir/LinearExpr.h"

namespace nascent {

/// Front-end-provided description of one counted loop.
///
/// CFG shape guaranteed by lowering:
///
///   Preheader -> Header -> BodyEntry -> ... -> Latch -> Header
///                Header -> Exit
///
/// with Preheader the unique predecessor of Header outside the loop, and
/// the index variable assigned only in Preheader (init) and Latch (step).
/// Semantic analysis rejects programs that assign to a do-index inside its
/// loop, mirroring Fortran.
struct DoLoopInfo {
  BlockID Preheader = InvalidBlock;
  BlockID Header = InvalidBlock;
  BlockID BodyEntry = InvalidBlock;
  BlockID Latch = InvalidBlock;
  BlockID Exit = InvalidBlock;

  SymbolID IndexVar = InvalidSymbol;

  /// Affine initial and final bound expressions over symbols live at the
  /// preheader. When the source bound expression was not affine, this is a
  /// single term over the temporary that holds the computed bound (which is
  /// still loop-invariant).
  LinearExpr LowerBound;
  LinearExpr UpperBound;

  /// Constant step; semantic analysis requires a nonzero integer constant.
  int64_t Step = 1;

  /// Basic loop variable (h = 0, 1, 2, ... per iteration), materialised only
  /// in INX lowering mode; InvalidSymbol otherwise.
  SymbolID BasicVar = InvalidSymbol;

  /// The "loop executes at least once" guard as a canonical check:
  /// step > 0:  LowerBound <= UpperBound   i.e. (Lower - Upper <= 0)
  /// step < 0:  LowerBound >= UpperBound   i.e. (Upper - Lower <= 0)
  CheckExpr entryGuard() const {
    if (Step > 0)
      return CheckExpr(LowerBound - UpperBound, 0);
    return CheckExpr(UpperBound - LowerBound, 0);
  }

  /// Symbolic trip count minus one, valid when the guard holds and |Step|==1:
  /// step=+1: Upper - Lower;  step=-1: Lower - Upper. For other steps the
  /// trip count is not affine and callers must not use this.
  LinearExpr lastIterationIndexOffset() const {
    assert((Step == 1 || Step == -1) && "trip count not affine");
    return Step == 1 ? UpperBound - LowerBound : LowerBound - UpperBound;
  }
};

} // namespace nascent

#endif // NASCENT_IR_LOOPMETADATA_H

//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical form of range checks (paper section 2.2):
///
///   Check(range-expression <= range-constant)
///
/// where the range-expression carries all symbolic terms (canonically
/// ordered, constant part folded into the range-constant) and the check
/// traps when the inequality is violated. Lower-bound checks are negated
/// into the same form, e.g. "i+1 >= 4" becomes "-i <= -3".
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_CHECKEXPR_H
#define NASCENT_IR_CHECKEXPR_H

#include "ir/LinearExpr.h"
#include "support/SourceLocation.h"

#include <string>

namespace nascent {

class SymbolTable;

/// Why a check exists, kept for diagnostics and reporting. The optimizer
/// never consults the origin; equivalence is purely structural.
struct CheckOrigin {
  std::string ArrayName; ///< array whose access introduced the check
  int Dim = 0;           ///< zero-based dimension index
  bool IsUpper = true;   ///< true for upper-bound, false for lower-bound
  SourceLocation Loc;    ///< location of the array access
};

/// A canonical range check:  trap unless  Expr <= Bound.
///
/// Invariant: Expr.constantPart() == 0 (the constructor folds any constant
/// into Bound). Two checks are in the same *family* iff their Exprs are
/// structurally equal; within a family a smaller Bound is *stronger*.
class CheckExpr {
public:
  CheckExpr() = default;

  /// Builds the canonical check "E <= B": the constant part of \p E is
  /// folded into the bound, so (i + 1 <= 4*n) with E = i+1-4n, B = -1 ...
  /// callers simply pass the raw affine inequality.
  CheckExpr(LinearExpr E, int64_t B) {
    Bound = B - E.constantPart();
    Expr = E.symbolicPart();
  }

  /// Canonicalises "E >= B" (a lower-bound check) by negation: -E <= -B.
  static CheckExpr fromLowerBound(const LinearExpr &E, int64_t B) {
    return CheckExpr(E.negated(), -B);
  }

  const LinearExpr &expr() const { return Expr; }
  int64_t bound() const { return Bound; }

  /// True when the check contains only compile-time constants and can be
  /// evaluated by the compiler (paper's step 5).
  bool isCompileTimeConstant() const { return Expr.isConstant(); }

  /// For a compile-time-constant check: true when the check passes.
  bool evaluatesToTrue() const {
    assert(isCompileTimeConstant() && "check is not compile-time constant");
    return 0 <= Bound;
  }

  /// Renders e.g. "Check(2*n <= 10)".
  std::string str(const SymbolTable &Syms) const;

  friend bool operator==(const CheckExpr &A, const CheckExpr &B) {
    return A.Bound == B.Bound && A.Expr == B.Expr;
  }
  friend bool operator!=(const CheckExpr &A, const CheckExpr &B) {
    return !(A == B);
  }

  size_t hash() const {
    return Expr.hash() * 31 + std::hash<int64_t>()(Bound);
  }

private:
  LinearExpr Expr; ///< symbolic part only (constant folded into Bound)
  int64_t Bound = 0;
};

/// Hash functor for unordered containers of checks.
struct CheckExprHash {
  size_t operator()(const CheckExpr &C) const { return C.hash(); }
};

} // namespace nascent

#endif // NASCENT_IR_CHECKEXPR_H

#include "ir/Function.h"

#include <algorithm>

using namespace nascent;

BasicBlock *Function::createBlock(const std::string &NameHint) {
  BlockID ID = static_cast<BlockID>(Blocks.size());
  Blocks.push_back(std::make_unique<BasicBlock>(
      ID, NameHint + "." + std::to_string(ID)));
  return Blocks.back().get();
}

void Function::recomputePreds() {
  for (auto &B : Blocks)
    B->Preds.clear();
  for (auto &B : Blocks) {
    if (!B->hasTerminator())
      continue;
    for (BlockID Succ : B->successors())
      Blocks[Succ]->Preds.push_back(B->id());
  }
}

std::vector<BlockID> BasicBlock::successors() const {
  if (Insts.empty())
    return {};
  const Instruction &T = Insts.back();
  switch (T.Op) {
  case Opcode::Br:
    if (T.TrueTarget == T.FalseTarget)
      return {T.TrueTarget};
    return {T.TrueTarget, T.FalseTarget};
  case Opcode::Jump:
    return {T.TrueTarget};
  case Opcode::Ret:
  case Opcode::Trap:
    return {};
  default:
    return {};
  }
}

unsigned Function::splitCriticalEdges() {
  recomputePreds();
  unsigned NumSplit = 0;
  // Collect critical edges first; splitting adds blocks and would otherwise
  // invalidate the iteration.
  struct Edge {
    BlockID From;
    BlockID To;
  };
  std::vector<Edge> Critical;
  for (auto &B : Blocks) {
    std::vector<BlockID> Succs = B->successors();
    if (Succs.size() < 2)
      continue;
    for (BlockID S : Succs)
      if (Blocks[S]->preds().size() >= 2)
        Critical.push_back({B->id(), S});
  }
  for (const Edge &E : Critical) {
    BasicBlock *Mid = createBlock("split");
    Instruction J;
    J.Op = Opcode::Jump;
    J.TrueTarget = E.To;
    Mid->append(std::move(J));
    Instruction &T = Blocks[E.From]->terminator();
    if (T.TrueTarget == E.To)
      T.TrueTarget = Mid->id();
    if (T.FalseTarget == E.To)
      T.FalseTarget = Mid->id();
    ++NumSplit;
  }
  recomputePreds();
  return NumSplit;
}

std::unique_ptr<Function> Function::clone() const {
  auto Copy = std::make_unique<Function>(Name);
  Copy->Syms = Syms;
  Copy->Params = Params;
  Copy->ResultType = ResultType;
  Copy->DoLoops = DoLoops;
  Copy->LastCheckTag = LastCheckTag;
  Copy->Blocks.reserve(Blocks.size());
  for (const auto &B : Blocks) {
    auto NB = std::make_unique<BasicBlock>(B->id(), B->name());
    NB->Insts = B->Insts;
    NB->Preds = B->Preds;
    Copy->Blocks.push_back(std::move(NB));
  }
  return Copy;
}

std::unique_ptr<Module> Module::clone() const {
  auto Copy = std::make_unique<Module>();
  Copy->EntryName = EntryName;
  Copy->LastCheckTag = LastCheckTag;
  Copy->Funcs.reserve(Funcs.size());
  for (const auto &F : Funcs) {
    Copy->Funcs.push_back(F->clone());
    Copy->Funcs.back()->Parent = Copy.get();
  }
  return Copy;
}

Function *Module::createFunction(const std::string &Name) {
  assert(function(Name) == nullptr && "duplicate function name");
  Funcs.push_back(std::make_unique<Function>(Name));
  Funcs.back()->Parent = this;
  return Funcs.back().get();
}

Function *Module::function(const std::string &Name) {
  for (auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

const Function *Module::function(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

std::vector<Function *> Module::functions() {
  std::vector<Function *> Out;
  Out.reserve(Funcs.size());
  for (auto &F : Funcs)
    Out.push_back(F.get());
  return Out;
}

std::vector<const Function *> Module::functions() const {
  std::vector<const Function *> Out;
  Out.reserve(Funcs.size());
  for (const auto &F : Funcs)
    Out.push_back(F.get());
  return Out;
}

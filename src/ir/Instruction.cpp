#include "ir/Instruction.h"

#include "ir/Symbol.h"

using namespace nascent;

const char *nascent::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Neg:
    return "neg";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Abs:
    return "abs";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Not:
    return "not";
  case Opcode::Copy:
    return "copy";
  case Opcode::IntToReal:
    return "itor";
  case Opcode::RealToInt:
    return "rtoi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Check:
    return "check";
  case Opcode::CondCheck:
    return "condcheck";
  case Opcode::Trap:
    return "trap";
  case Opcode::Br:
    return "br";
  case Opcode::Jump:
    return "jump";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::Print:
    return "print";
  }
  return "?";
}

bool nascent::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::Jump:
  case Opcode::Ret:
  case Opcode::Trap:
    return true;
  default:
    return false;
  }
}

std::string CheckExpr::str(const SymbolTable &Syms) const {
  return "Check(" + Expr.str(Syms) + " <= " + std::to_string(Bound) + ")";
}

#include "ir/LinearExpr.h"

#include "ir/Symbol.h"

#include <algorithm>

using namespace nascent;

void LinearExpr::addTerm(SymbolID Sym, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Sym,
      [](const std::pair<SymbolID, int64_t> &T, SymbolID S) {
        return T.first < S;
      });
  if (It != Terms.end() && It->first == Sym) {
    It->second += Coeff;
    if (It->second == 0)
      Terms.erase(It);
    return;
  }
  Terms.insert(It, {Sym, Coeff});
}

LinearExpr &LinearExpr::operator+=(const LinearExpr &RHS) {
  for (const auto &[Sym, Coeff] : RHS.Terms)
    addTerm(Sym, Coeff);
  Const += RHS.Const;
  return *this;
}

LinearExpr &LinearExpr::operator-=(const LinearExpr &RHS) {
  for (const auto &[Sym, Coeff] : RHS.Terms)
    addTerm(Sym, -Coeff);
  Const -= RHS.Const;
  return *this;
}

LinearExpr LinearExpr::scaled(int64_t Factor) const {
  LinearExpr E;
  if (Factor == 0)
    return E;
  E.Const = Const * Factor;
  E.Terms.reserve(Terms.size());
  for (const auto &[Sym, Coeff] : Terms)
    E.Terms.push_back({Sym, Coeff * Factor});
  return E;
}

int64_t LinearExpr::coeff(SymbolID Sym) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Sym,
      [](const std::pair<SymbolID, int64_t> &T, SymbolID S) {
        return T.first < S;
      });
  if (It != Terms.end() && It->first == Sym)
    return It->second;
  return 0;
}

int64_t LinearExpr::removeTerm(SymbolID Sym) {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), Sym,
      [](const std::pair<SymbolID, int64_t> &T, SymbolID S) {
        return T.first < S;
      });
  if (It == Terms.end() || It->first != Sym)
    return 0;
  int64_t C = It->second;
  Terms.erase(It);
  return C;
}

void LinearExpr::substitute(SymbolID Sym, const LinearExpr &Replacement) {
  int64_t C = removeTerm(Sym);
  if (C != 0)
    *this += Replacement.scaled(C);
}

int64_t
LinearExpr::evaluate(const std::function<int64_t(SymbolID)> &ValueOf) const {
  int64_t V = Const;
  for (const auto &[Sym, Coeff] : Terms)
    V += Coeff * ValueOf(Sym);
  return V;
}

std::string LinearExpr::str(const SymbolTable &Syms) const {
  if (Terms.empty())
    return std::to_string(Const);
  std::string Out;
  bool First = true;
  for (const auto &[Sym, Coeff] : Terms) {
    int64_t C = Coeff;
    if (First) {
      if (C < 0) {
        Out += "-";
        C = -C;
      }
    } else {
      Out += (C < 0) ? " - " : " + ";
      if (C < 0)
        C = -C;
    }
    if (C != 1)
      Out += std::to_string(C) + "*";
    Out += Syms.name(Sym);
    First = false;
  }
  if (Const > 0)
    Out += " + " + std::to_string(Const);
  else if (Const < 0)
    Out += " - " + std::to_string(-Const);
  return Out;
}

size_t LinearExpr::hash() const {
  size_t H = std::hash<int64_t>()(Const);
  for (const auto &[Sym, Coeff] : Terms) {
    H ^= std::hash<uint64_t>()((uint64_t(Sym) << 32) ^ uint64_t(Coeff)) +
         0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  }
  return H;
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Linear (affine) integer expressions over symbols: sum of coeff*symbol
/// terms plus a constant. This is the normal form behind the paper's
/// canonical range checks (section 2.2): terms are kept in a canonical
/// order (by symbol id) so that semantically equivalent but syntactically
/// different expressions compare equal, which maximises family sizes.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_IR_LINEAREXPR_H
#define NASCENT_IR_LINEAREXPR_H

#include "ir/Symbol.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace nascent {

class SymbolTable;

/// An affine expression  sum_i Coeff_i * Sym_i + Const  with terms sorted by
/// symbol id and no zero coefficients.
class LinearExpr {
public:
  LinearExpr() = default;

  /// The constant expression \p C.
  static LinearExpr constant(int64_t C) {
    LinearExpr E;
    E.Const = C;
    return E;
  }

  /// The single-symbol expression  Coeff * Sym.
  static LinearExpr term(SymbolID Sym, int64_t Coeff = 1) {
    LinearExpr E;
    if (Coeff != 0)
      E.Terms.push_back({Sym, Coeff});
    return E;
  }

  /// Adds \p Coeff * \p Sym into this expression.
  void addTerm(SymbolID Sym, int64_t Coeff);

  /// Adds \p C into the constant part.
  void addConstant(int64_t C) { Const += C; }

  LinearExpr &operator+=(const LinearExpr &RHS);
  LinearExpr &operator-=(const LinearExpr &RHS);

  friend LinearExpr operator+(LinearExpr A, const LinearExpr &B) {
    A += B;
    return A;
  }
  friend LinearExpr operator-(LinearExpr A, const LinearExpr &B) {
    A -= B;
    return A;
  }

  /// Returns this expression multiplied by the constant \p Factor.
  LinearExpr scaled(int64_t Factor) const;

  /// Returns the negation of this expression.
  LinearExpr negated() const { return scaled(-1); }

  /// True when there are no symbolic terms.
  bool isConstant() const { return Terms.empty(); }

  /// The constant part.
  int64_t constantPart() const { return Const; }

  /// Returns a copy with the constant part zeroed; this is the
  /// "range-expression" of a canonical check.
  LinearExpr symbolicPart() const {
    LinearExpr E = *this;
    E.Const = 0;
    return E;
  }

  /// Coefficient of \p Sym (0 when absent).
  int64_t coeff(SymbolID Sym) const;

  /// Removes the \p Sym term and returns its former coefficient.
  int64_t removeTerm(SymbolID Sym);

  /// Replaces the \p Sym term (coefficient c) by c * Replacement.
  /// No-op when the term is absent.
  void substitute(SymbolID Sym, const LinearExpr &Replacement);

  /// True if \p Sym appears with a nonzero coefficient.
  bool references(SymbolID Sym) const { return coeff(Sym) != 0; }

  const std::vector<std::pair<SymbolID, int64_t>> &terms() const {
    return Terms;
  }

  /// Evaluates with symbol values supplied by \p ValueOf.
  int64_t evaluate(const std::function<int64_t(SymbolID)> &ValueOf) const;

  /// Renders e.g. "2*n - i + 3" using names from \p Syms; "0" when empty.
  std::string str(const SymbolTable &Syms) const;

  /// Structural equality (terms and constant).
  friend bool operator==(const LinearExpr &A, const LinearExpr &B) {
    return A.Const == B.Const && A.Terms == B.Terms;
  }
  friend bool operator!=(const LinearExpr &A, const LinearExpr &B) {
    return !(A == B);
  }

  /// Hash of the full expression, suitable for unordered_map keys.
  size_t hash() const;

private:
  /// Sorted by symbol id; invariant: no zero coefficients.
  std::vector<std::pair<SymbolID, int64_t>> Terms;
  int64_t Const = 0;
};

/// Hash functor so LinearExpr can key unordered containers.
struct LinearExprHash {
  size_t operator()(const LinearExpr &E) const { return E.hash(); }
};

} // namespace nascent

#endif // NASCENT_IR_LINEAREXPR_H

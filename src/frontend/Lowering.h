//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the semantically analyzed AST into the Nascent IR, inserting a
/// naive pair of range checks (lower and upper bound) for every subscript
/// of every array access — the unoptimized baseline of the paper's
/// Table 1. Do loops are lowered to the canonical shape the optimizer
/// expects (preheader / header / body / latch / exit) and described by
/// DoLoopInfo metadata.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_FRONTEND_LOWERING_H
#define NASCENT_FRONTEND_LOWERING_H

#include "ir/Function.h"
#include "lang/AST.h"

namespace nascent {

/// Options controlling lowering.
struct LoweringOptions {
  /// Insert naive range checks at every array access.
  bool InsertChecks = true;

  /// Block-scoped canonicalisation of non-affine subscript expressions:
  /// syntactically equal occurrences (paper section 2.2's expression
  /// equivalence classes) share one "atom" symbol in their canonical
  /// checks, so e.g. two accesses q(list(k)) in a block fall into one
  /// check family. Code emission stays fully naive either way.
  bool SyntacticAtoms = true;
};

/// Lowers every unit of \p Prog into the Function shells Sema created in
/// \p M. Must run after a successful Sema::run on the same objects.
void lowerProgram(const ProgramAST &Prog, Module &M,
                  const LoweringOptions &Opts = {});

} // namespace nascent

#endif // NASCENT_FRONTEND_LOWERING_H

#include "frontend/Lowering.h"

#include "ir/IRBuilder.h"

#include <map>
#include <set>
#include <string>

using namespace nascent;

namespace {

/// A lowered expression: the runtime value plus, for integer expressions
/// that are affine in program variables, the canonical linear form used to
/// build checks and loop-bound metadata.
struct LoweredExpr {
  Value V;
  std::optional<LinearExpr> Lin;
};

/// Per-function lowering state.
class FunctionLowerer {
public:
  FunctionLowerer(const ProcedureAST &P, Function &F, Module &M,
                  const LoweringOptions &Opts)
      : P(P), F(F), M(M), Opts(Opts), B(F) {}

  void run();

private:
  // --- CSE cache -------------------------------------------------------
  struct CacheEntry {
    Value V;
    std::set<SymbolID> ScalarDeps;
    std::set<SymbolID> ArrayDeps; ///< arrays read anywhere in the subtree
  };

  void cseInvalidateScalar(SymbolID S);
  void cseInvalidateArray(SymbolID A);
  void cseClear() { Cache.clear(); }

  /// Structural key of an AST expression (symbol ids, not names).
  static std::string exprKey(const Expr &E);
  static void collectDeps(const Expr &E, std::set<SymbolID> &Scalars,
                          std::set<SymbolID> &Arrays);

  /// Canonical per-block atom for a non-affine integer subexpression:
  /// syntactically equal occurrences (with no intervening definition of
  /// their inputs) map to the first occurrence's temporary, so their
  /// checks fall into one family. The freshly computed \p Computed symbol
  /// is registered on a miss. Code emission is never suppressed: the
  /// translation stays naive, matching the paper's baseline.
  SymbolID atomFor(const Expr &E, SymbolID Computed);

  // --- expression lowering --------------------------------------------
  LoweredExpr lowerExpr(const Expr &E);
  Value lowerToType(const Expr &E, ScalarType Want);
  Value convert(Value V, ScalarType From, ScalarType To);

  /// Lowers subscripts of an array access, emitting the naive checks, and
  /// returns the index values.
  std::vector<Value> lowerSubscripts(SymbolID Array,
                                     const std::vector<ExprPtr> &Indices,
                                     SourceLocation Loc);

  // --- statement lowering ----------------------------------------------
  void lowerStmtList(const std::vector<StmtPtr> &Stmts);
  void lowerStmt(const Stmt &S);
  void lowerIf(const IfStmt &S);
  void lowerDo(const DoStmt &S);
  void lowerWhile(const WhileStmt &S);
  std::vector<Value> lowerCallArgs(const std::string &Callee,
                                   const std::vector<ExprPtr> &Args);

  /// Starts a new block and makes it current (clearing the CSE cache).
  void switchTo(BasicBlock *BB) {
    B.setInsertBlock(BB);
    cseClear();
  }

  /// Default value for an implicit return of a function result.
  Value defaultValue(ScalarType T) {
    switch (T) {
    case ScalarType::Int:
      return Value::intConst(0);
    case ScalarType::Real:
      return Value::realConst(0.0);
    case ScalarType::Bool:
      return Value::boolConst(false);
    }
    return Value::intConst(0);
  }

  const ProcedureAST &P;
  Function &F;
  Module &M;
  const LoweringOptions &Opts;
  IRBuilder B;
  std::map<std::string, CacheEntry> Cache;
};

void FunctionLowerer::run() {
  BasicBlock *Entry = B.createBlock("entry");
  switchTo(Entry);
  lowerStmtList(P.Body);
  if (!B.insertBlock()->hasTerminator()) {
    if (F.resultType())
      B.emitRetValue(defaultValue(*F.resultType()));
    else
      B.emitRet();
  }
  F.recomputePreds();
}

void FunctionLowerer::cseInvalidateScalar(SymbolID S) {
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (It->second.ScalarDeps.count(S))
      It = Cache.erase(It);
    else
      ++It;
  }
}

void FunctionLowerer::cseInvalidateArray(SymbolID A) {
  for (auto It = Cache.begin(); It != Cache.end();) {
    if (It->second.ArrayDeps.count(A))
      It = Cache.erase(It);
    else
      ++It;
  }
}

std::string FunctionLowerer::exprKey(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return "i" + std::to_string(static_cast<const IntLitExpr &>(E).Value);
  case ExprKind::RealLit:
    return "r" + std::to_string(static_cast<const RealLitExpr &>(E).Value);
  case ExprKind::BoolLit:
    return static_cast<const BoolLitExpr &>(E).Value ? "bt" : "bf";
  case ExprKind::VarRef:
    return "v" + std::to_string(static_cast<const VarRefExpr &>(E).Sym);
  case ExprKind::ArrayRef: {
    const auto &A = static_cast<const ArrayRefExpr &>(E);
    std::string K = "a" + std::to_string(A.Sym) + "[";
    for (const ExprPtr &I : A.Indices)
      K += exprKey(*I) + ",";
    return K + "]";
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    return "u" + std::to_string(static_cast<int>(U.Op)) + "(" +
           exprKey(*U.Sub) + ")";
  }
  case ExprKind::Binary: {
    const auto &Bi = static_cast<const BinaryExpr &>(E);
    return "b" + std::to_string(static_cast<int>(Bi.Op)) + "(" +
           exprKey(*Bi.LHS) + "," + exprKey(*Bi.RHS) + ")";
  }
  case ExprKind::Call:
    return std::string(); // calls are never cached
  }
  return std::string();
}

void FunctionLowerer::collectDeps(const Expr &E, std::set<SymbolID> &Scalars,
                                  std::set<SymbolID> &Arrays) {
  switch (E.Kind) {
  case ExprKind::VarRef:
    Scalars.insert(static_cast<const VarRefExpr &>(E).Sym);
    return;
  case ExprKind::ArrayRef: {
    const auto &A = static_cast<const ArrayRefExpr &>(E);
    Arrays.insert(A.Sym);
    for (const ExprPtr &I : A.Indices)
      collectDeps(*I, Scalars, Arrays);
    return;
  }
  case ExprKind::Unary:
    collectDeps(*static_cast<const UnaryExpr &>(E).Sub, Scalars, Arrays);
    return;
  case ExprKind::Binary:
    collectDeps(*static_cast<const BinaryExpr &>(E).LHS, Scalars, Arrays);
    collectDeps(*static_cast<const BinaryExpr &>(E).RHS, Scalars, Arrays);
    return;
  default:
    return;
  }
}

SymbolID FunctionLowerer::atomFor(const Expr &E, SymbolID Computed) {
  if (!Opts.SyntacticAtoms)
    return Computed;
  std::string Key = exprKey(E);
  if (Key.empty())
    return Computed;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second.V.symbol();
  CacheEntry CE;
  CE.V = Value::sym(Computed);
  collectDeps(E, CE.ScalarDeps, CE.ArrayDeps);
  Cache[Key] = std::move(CE);
  return Computed;
}

Value FunctionLowerer::convert(Value V, ScalarType From, ScalarType To) {
  if (From == To)
    return V;
  if (From == ScalarType::Int && To == ScalarType::Real) {
    if (V.isIntConst())
      return Value::realConst(static_cast<double>(V.intValue()));
    return B.emitUnary(Opcode::IntToReal, V, ScalarType::Real);
  }
  if (From == ScalarType::Real && To == ScalarType::Int) {
    if (V.isRealConst())
      return Value::intConst(static_cast<int64_t>(V.realValue()));
    return B.emitUnary(Opcode::RealToInt, V, ScalarType::Int);
  }
  return V;
}

Value FunctionLowerer::lowerToType(const Expr &E, ScalarType Want) {
  LoweredExpr L = lowerExpr(E);
  return convert(L.V, E.Ty, Want);
}

LoweredExpr FunctionLowerer::lowerExpr(const Expr &E) {
  LoweredExpr Out;
  switch (E.Kind) {
  case ExprKind::IntLit: {
    int64_t C = static_cast<const IntLitExpr &>(E).Value;
    Out.V = Value::intConst(C);
    Out.Lin = LinearExpr::constant(C);
    return Out;
  }
  case ExprKind::RealLit:
    Out.V = Value::realConst(static_cast<const RealLitExpr &>(E).Value);
    return Out;
  case ExprKind::BoolLit:
    Out.V = Value::boolConst(static_cast<const BoolLitExpr &>(E).Value);
    return Out;
  case ExprKind::VarRef: {
    const auto &V = static_cast<const VarRefExpr &>(E);
    Out.V = Value::sym(V.Sym);
    if (E.Ty == ScalarType::Int && !F.symbols().get(V.Sym).isArray())
      Out.Lin = LinearExpr::term(V.Sym);
    return Out;
  }
  case ExprKind::ArrayRef: {
    const auto &A = static_cast<const ArrayRefExpr &>(E);
    std::vector<Value> Idx = lowerSubscripts(A.Sym, A.Indices, A.Loc);
    Out.V = B.emitLoad(A.Sym, std::move(Idx));
    if (E.Ty == ScalarType::Int)
      Out.Lin = LinearExpr::term(atomFor(E, Out.V.symbol()));
    return Out;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    LoweredExpr Sub = lowerExpr(*U.Sub);
    switch (U.Op) {
    case UnaryOp::Neg:
      if (Sub.V.isIntConst()) {
        Out.V = Value::intConst(-Sub.V.intValue());
        Out.Lin = LinearExpr::constant(-Sub.V.intValue());
        return Out;
      }
      if (Sub.V.isRealConst()) {
        Out.V = Value::realConst(-Sub.V.realValue());
        return Out;
      }
      Out.V = B.emitUnary(Opcode::Neg, Sub.V, E.Ty);
      if (E.Ty == ScalarType::Int && Sub.Lin)
        Out.Lin = Sub.Lin->negated();
      break;
    case UnaryOp::Not:
      Out.V = B.emitUnary(Opcode::Not, Sub.V, ScalarType::Bool);
      break;
    case UnaryOp::Abs:
      Out.V = B.emitUnary(Opcode::Abs, Sub.V, E.Ty);
      break;
    case UnaryOp::IntCast:
      Out.V = convert(Sub.V, U.Sub->Ty, ScalarType::Int);
      if (Out.V.isSym() && U.Sub->Ty == ScalarType::Int)
        Out.Lin = Sub.Lin;
      break;
    case UnaryOp::RealCast:
      Out.V = convert(Sub.V, U.Sub->Ty, ScalarType::Real);
      break;
    }
    break;
  }
  case ExprKind::Binary: {
    const auto &Bi = static_cast<const BinaryExpr &>(E);
    ScalarType OpTy = E.Ty;
    bool IsCmp = Bi.Op == BinaryOp::Eq || Bi.Op == BinaryOp::Ne ||
                 Bi.Op == BinaryOp::Lt || Bi.Op == BinaryOp::Le ||
                 Bi.Op == BinaryOp::Gt || Bi.Op == BinaryOp::Ge;
    if (IsCmp) {
      // Compare in the promoted operand type.
      OpTy = (Bi.LHS->Ty == ScalarType::Real || Bi.RHS->Ty == ScalarType::Real)
                 ? ScalarType::Real
                 : (Bi.LHS->Ty == ScalarType::Bool ? ScalarType::Bool
                                                   : ScalarType::Int);
    }
    LoweredExpr L = lowerExpr(*Bi.LHS);
    LoweredExpr R = lowerExpr(*Bi.RHS);
    ScalarType PromTy = (Bi.Op == BinaryOp::And || Bi.Op == BinaryOp::Or)
                            ? ScalarType::Bool
                            : OpTy;
    Value LV = convert(L.V, Bi.LHS->Ty, PromTy == ScalarType::Bool
                                            ? Bi.LHS->Ty
                                            : PromTy);
    Value RV = convert(R.V, Bi.RHS->Ty, PromTy == ScalarType::Bool
                                            ? Bi.RHS->Ty
                                            : PromTy);

    // Constant folding for integer arithmetic keeps the naive code from
    // being absurd and keeps linear forms tight.
    auto FoldInt = [&](int64_t A, int64_t C) -> std::optional<int64_t> {
      switch (Bi.Op) {
      case BinaryOp::Add:
        return A + C;
      case BinaryOp::Sub:
        return A - C;
      case BinaryOp::Mul:
        return A * C;
      case BinaryOp::Div:
        return C == 0 ? std::nullopt : std::optional<int64_t>(A / C);
      case BinaryOp::Mod:
        return C == 0 ? std::nullopt : std::optional<int64_t>(A % C);
      case BinaryOp::Min:
        return std::min(A, C);
      case BinaryOp::Max:
        return std::max(A, C);
      default:
        return std::nullopt;
      }
    };
    if (LV.isIntConst() && RV.isIntConst() && E.Ty == ScalarType::Int) {
      if (auto C = FoldInt(LV.intValue(), RV.intValue())) {
        Out.V = Value::intConst(*C);
        Out.Lin = LinearExpr::constant(*C);
        return Out;
      }
    }

    Opcode Op;
    switch (Bi.Op) {
    case BinaryOp::Add:
      Op = Opcode::Add;
      break;
    case BinaryOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinaryOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinaryOp::Div:
      Op = Opcode::Div;
      break;
    case BinaryOp::Mod:
      Op = Opcode::Mod;
      break;
    case BinaryOp::Min:
      Op = Opcode::Min;
      break;
    case BinaryOp::Max:
      Op = Opcode::Max;
      break;
    case BinaryOp::Eq:
      Op = Opcode::CmpEQ;
      break;
    case BinaryOp::Ne:
      Op = Opcode::CmpNE;
      break;
    case BinaryOp::Lt:
      Op = Opcode::CmpLT;
      break;
    case BinaryOp::Le:
      Op = Opcode::CmpLE;
      break;
    case BinaryOp::Gt:
      Op = Opcode::CmpGT;
      break;
    case BinaryOp::Ge:
      Op = Opcode::CmpGE;
      break;
    case BinaryOp::And:
      Op = Opcode::And;
      break;
    case BinaryOp::Or:
      Op = Opcode::Or;
      break;
    default:
      Op = Opcode::Add;
      break;
    }
    Out.V = B.emitBinary(Op, LV, RV, E.Ty);

    // Linear form for integer +, -, and *-by-constant.
    if (E.Ty == ScalarType::Int && L.Lin && R.Lin) {
      switch (Bi.Op) {
      case BinaryOp::Add:
        Out.Lin = *L.Lin + *R.Lin;
        break;
      case BinaryOp::Sub:
        Out.Lin = *L.Lin - *R.Lin;
        break;
      case BinaryOp::Mul:
        if (L.Lin->isConstant())
          Out.Lin = R.Lin->scaled(L.Lin->constantPart());
        else if (R.Lin->isConstant())
          Out.Lin = L.Lin->scaled(R.Lin->constantPart());
        break;
      default:
        break;
      }
    }
    // Fall back: a canonical atom for the non-affine subtree becomes the
    // linear form, so syntactically equal subscripts share a family the
    // way the paper's expression equivalence classes do.
    if (E.Ty == ScalarType::Int && !Out.Lin && Out.V.isSym())
      Out.Lin = LinearExpr::term(atomFor(E, Out.V.symbol()));
    break;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    std::vector<Value> Args = lowerCallArgs(C.Callee, C.Args);
    Out.V = B.emitCall(C.Callee, std::move(Args), E.Ty);
    if (E.Ty == ScalarType::Int && Out.V.isSym())
      Out.Lin = LinearExpr::term(Out.V.symbol()); // calls never share atoms
    return Out;
  }
  }
  if (E.Ty == ScalarType::Int && !Out.Lin && Out.V.isSym())
    Out.Lin = LinearExpr::term(atomFor(E, Out.V.symbol()));
  return Out;
}

std::vector<Value>
FunctionLowerer::lowerSubscripts(SymbolID Array,
                                 const std::vector<ExprPtr> &Indices,
                                 SourceLocation Loc) {
  // Copy: lowering the index expressions creates temporaries, which can
  // reallocate the symbol table and invalidate references into it.
  const Symbol A = F.symbols().get(Array);
  std::vector<Value> Out;
  Out.reserve(Indices.size());
  for (size_t D = 0; D != Indices.size(); ++D) {
    LoweredExpr L = lowerExpr(*Indices[D]);
    LinearExpr Lin = L.Lin ? *L.Lin
                           : (L.V.isSym() ? LinearExpr::term(L.V.symbol())
                                          : LinearExpr::constant(
                                                L.V.intValue()));
    if (Opts.InsertChecks) {
      const ArrayDim &Dim = A.Shape.Dims[D];
      CheckOrigin LowerOrigin{A.Name, static_cast<int>(D), false, Loc};
      CheckOrigin UpperOrigin{A.Name, static_cast<int>(D), true, Loc};
      B.emitCheck(CheckExpr::fromLowerBound(Lin, Dim.Lower), LowerOrigin);
      B.emitCheck(CheckExpr(Lin, Dim.Upper), UpperOrigin);
    }
    Out.push_back(L.V);
  }
  return Out;
}

std::vector<Value>
FunctionLowerer::lowerCallArgs(const std::string &Callee,
                               const std::vector<ExprPtr> &Args) {
  const Function *CalleeF = M.function(Callee);
  assert(CalleeF && "sema guarantees the callee exists");
  std::vector<Value> Out;
  Out.reserve(Args.size());
  for (size_t K = 0; K != Args.size(); ++K) {
    const Symbol &Param = CalleeF->symbols().get(CalleeF->params()[K]);
    if (Param.isArray()) {
      const auto &V = static_cast<const VarRefExpr &>(*Args[K]);
      Out.push_back(Value::sym(V.Sym));
      // The callee may mutate the array: cached loads are stale.
      cseInvalidateArray(V.Sym);
      continue;
    }
    Out.push_back(lowerToType(*Args[K], Param.Type));
  }
  return Out;
}

void FunctionLowerer::lowerStmtList(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts) {
    if (!S)
      continue;
    if (B.insertBlock()->hasTerminator()) {
      // Code after return: unreachable, but keep lowering into a fresh
      // block so the IR stays well-formed.
      switchTo(B.createBlock("dead"));
    }
    lowerStmt(*S);
  }
}

void FunctionLowerer::lowerStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    const Symbol Info = F.symbols().get(A.Sym); // copy: table may grow
    Value V = lowerToType(*A.Value, Info.Type);
    B.emitCopy(A.Sym, V);
    cseInvalidateScalar(A.Sym);
    return;
  }
  case StmtKind::ArrayAssign: {
    const auto &A = static_cast<const ArrayAssignStmt &>(S);
    const Symbol Info = F.symbols().get(A.Sym); // copy: table may grow
    std::vector<Value> Idx = lowerSubscripts(A.Sym, A.Indices, A.Loc);
    Value V = lowerToType(*A.Value, Info.Type);
    B.emitStore(A.Sym, std::move(Idx), V);
    cseInvalidateArray(A.Sym);
    return;
  }
  case StmtKind::If:
    lowerIf(static_cast<const IfStmt &>(S));
    return;
  case StmtKind::Do:
    lowerDo(static_cast<const DoStmt &>(S));
    return;
  case StmtKind::While:
    lowerWhile(static_cast<const WhileStmt &>(S));
    return;
  case StmtKind::Call: {
    const auto &C = static_cast<const CallStmt &>(S);
    std::vector<Value> Args = lowerCallArgs(C.Callee, C.Args);
    B.emitCall(C.Callee, std::move(Args), std::nullopt);
    return;
  }
  case StmtKind::Print: {
    const auto &Pr = static_cast<const PrintStmt &>(S);
    LoweredExpr L = lowerExpr(*Pr.Value);
    B.emitPrint(L.V);
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (F.resultType()) {
      Value V = R.Value ? lowerToType(*R.Value, *F.resultType())
                        : defaultValue(*F.resultType());
      B.emitRetValue(V);
    } else {
      B.emitRet();
    }
    return;
  }
  }
}

void FunctionLowerer::lowerIf(const IfStmt &S) {
  Value Cond = lowerToType(*S.Cond, ScalarType::Bool);
  BasicBlock *ThenBB = B.createBlock("then");
  BasicBlock *ElseBB = S.Else.empty() ? nullptr : B.createBlock("else");
  BasicBlock *JoinBB = B.createBlock("join");
  B.emitBr(Cond, ThenBB->id(), ElseBB ? ElseBB->id() : JoinBB->id());

  switchTo(ThenBB);
  lowerStmtList(S.Then);
  if (!B.insertBlock()->hasTerminator())
    B.emitJump(JoinBB->id());

  if (ElseBB) {
    switchTo(ElseBB);
    lowerStmtList(S.Else);
    if (!B.insertBlock()->hasTerminator())
      B.emitJump(JoinBB->id());
  }
  switchTo(JoinBB);
}

void FunctionLowerer::lowerDo(const DoStmt &S) {
  // Evaluate the bounds once, in the current block.
  LoweredExpr Lo = lowerExpr(*S.Lower);
  LoweredExpr Hi = lowerExpr(*S.Upper);

  // The loop-exit test needs stable operands: snapshot the upper bound
  // into a fresh temp (Fortran evaluates do bounds exactly once).
  SymbolID HiT = F.symbols().createTemp(ScalarType::Int, "hi");
  B.emitCopy(HiT, Hi.V);
  LinearExpr LoLin =
      Lo.Lin ? *Lo.Lin
             : (Lo.V.isSym() ? LinearExpr::term(Lo.V.symbol())
                             : LinearExpr::constant(Lo.V.intValue()));
  LinearExpr HiLin =
      Hi.Lin ? *Hi.Lin
             : (Hi.V.isSym() ? LinearExpr::term(Hi.V.symbol())
                             : LinearExpr::constant(Hi.V.intValue()));

  BasicBlock *Preheader = B.createBlock("do.ph");
  BasicBlock *Header = B.createBlock("do.head");
  BasicBlock *Body = B.createBlock("do.body");
  BasicBlock *Latch = B.createBlock("do.latch");
  BasicBlock *Exit = B.createBlock("do.exit");

  B.emitJump(Preheader->id());

  switchTo(Preheader);
  B.emitCopy(S.IndexSym, Lo.V);
  B.emitJump(Header->id());

  switchTo(Header);
  Opcode CmpOp = S.Step > 0 ? Opcode::CmpLE : Opcode::CmpGE;
  Value Cond = B.emitBinary(CmpOp, Value::sym(S.IndexSym), Value::sym(HiT),
                            ScalarType::Bool);
  B.emitBr(Cond, Body->id(), Exit->id());

  switchTo(Body);
  lowerStmtList(S.Body);
  if (!B.insertBlock()->hasTerminator())
    B.emitJump(Latch->id());

  switchTo(Latch);
  B.emitBinaryTo(S.IndexSym, Opcode::Add, Value::sym(S.IndexSym),
                 Value::intConst(S.Step));
  B.emitJump(Header->id());

  DoLoopInfo L;
  L.Preheader = Preheader->id();
  L.Header = Header->id();
  L.BodyEntry = Body->id();
  L.Latch = Latch->id();
  L.Exit = Exit->id();
  L.IndexVar = S.IndexSym;
  L.LowerBound = LoLin;
  L.UpperBound = HiLin;
  L.Step = S.Step;
  F.doLoops().push_back(std::move(L));

  switchTo(Exit);
}

void FunctionLowerer::lowerWhile(const WhileStmt &S) {
  BasicBlock *Preheader = B.createBlock("wh.ph");
  BasicBlock *Header = B.createBlock("wh.head");
  BasicBlock *Body = B.createBlock("wh.body");
  BasicBlock *Exit = B.createBlock("wh.exit");

  B.emitJump(Preheader->id());
  switchTo(Preheader);
  B.emitJump(Header->id());

  switchTo(Header);
  Value Cond = lowerToType(*S.Cond, ScalarType::Bool);
  B.emitBr(Cond, Body->id(), Exit->id());

  switchTo(Body);
  lowerStmtList(S.Body);
  if (!B.insertBlock()->hasTerminator())
    B.emitJump(Header->id());

  switchTo(Exit);
}

} // namespace

void nascent::lowerProgram(const ProgramAST &Prog, Module &M,
                           const LoweringOptions &Opts) {
  for (const auto &Unit : Prog.Units) {
    Function *F = M.function(Unit->Name);
    assert(F && "sema created a shell for every unit");
    FunctionLowerer(*Unit, *F, M, Opts).run();
  }
}

//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for the Nascent IR with dynamic instruction and
/// range-check counters. This is the measurement substrate replacing the
/// paper's instrumented-C back end: the optimizer rewrites the IR and the
/// interpreter counts exactly what executes, so "percentage of dynamic
/// checks eliminated" is measured, not modelled.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_INTERP_INTERPRETER_H
#define NASCENT_INTERP_INTERPRETER_H

#include "ir/Function.h"
#include "obs/Remarks.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nascent {

namespace obs {
class ExecutionProfile;
}

/// Interpreter limits and switches.
struct InterpOptions {
  /// Abort with Status::StepLimit after this many executed instructions.
  uint64_t MaxSteps = 2'000'000'000;
  /// Maximum call depth.
  unsigned MaxCallDepth = 256;
  /// Record per-site execution counts of range checks into
  /// ExecResult::CheckSites (for joining into the remark stream); off by
  /// default because it adds a map update per executed check.
  bool CountCheckSites = false;
  /// When non-null and attached to the module being run, the interpreter
  /// streams block frequencies, loop trip counts, array accesses, and
  /// per-site check hits/traps into this profile. Counts accumulate
  /// across runs; the caller owns the profile.
  obs::ExecutionProfile *Profile = nullptr;
};

/// Result of executing a module.
struct ExecResult {
  enum class Status {
    Ok,        ///< ran to completion
    Trapped,   ///< a range check (or Trap instruction) fired
    HardFault, ///< an actual out-of-bounds access or missing return --
               ///< with naive checks in place this indicates an optimizer
               ///< bug, and the test suite asserts it never happens
    StepLimit,
    CallDepthExceeded,
  };

  Status St = Status::Ok;

  /// Executed non-check instructions.
  uint64_t DynInstrs = 0;
  /// Executed range checks (Check + CondCheck).
  uint64_t DynChecks = 0;
  /// Executed conditional checks (subset of DynChecks).
  uint64_t DynCondChecks = 0;

  /// Values printed by Print instructions, in order.
  std::vector<std::string> Output;

  /// Per-site dynamic check counts (only with CountCheckSites); sites the
  /// run never reached are absent.
  std::vector<obs::CheckSiteCount> CheckSites;

  /// Populated when St == Trapped or HardFault.
  std::string FaultMessage;

  bool ok() const { return St == Status::Ok; }
  bool trapped() const { return St == Status::Trapped; }
};

/// Executes \p M from its entry function.
ExecResult interpret(const Module &M, const InterpOptions &Opts = {});

/// Static (compile-time) counts over a module: instructions excluding
/// checks, and check instructions, mirroring Table 1's static columns.
struct StaticCounts {
  uint64_t Instrs = 0;
  uint64_t Checks = 0;
  uint64_t Loops = 0;
  uint64_t Units = 0;
};
StaticCounts countStatic(const Module &M);

} // namespace nascent

#endif // NASCENT_INTERP_INTERPRETER_H

#include "interp/Interpreter.h"

#include "analysis/CFGUtils.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/IRPrinter.h"
#include "obs/Profile.h"
#include "obs/StatRegistry.h"
#include "support/StringUtils.h"

#include <cmath>
#include <map>
#include <memory>
#include <tuple>

using namespace nascent;

NASCENT_STAT(NumRuns, "interp.runs", "module executions");
NASCENT_STAT(NumDynChecks, "interp.dyn_checks",
             "range checks executed across all runs");

namespace {

/// Runtime storage of one array.
struct ArrayStorage {
  ScalarType Elem = ScalarType::Real;
  ArrayShape Shape;
  std::vector<int64_t> Ints;
  std::vector<double> Reals;

  explicit ArrayStorage(const ArrayShape &S) : Elem(S.Element), Shape(S) {
    size_t N = static_cast<size_t>(S.elementCount());
    if (Elem == ScalarType::Real)
      Reals.assign(N, 0.0);
    else
      Ints.assign(N, 0);
  }
};

/// One scalar cell; the active member follows the symbol's type.
struct Cell {
  int64_t I = 0;
  double R = 0.0;
};

/// One call frame.
struct Frame {
  const Function *F = nullptr;
  std::vector<Cell> Scalars;           ///< by SymbolID
  std::vector<ArrayStorage *> Arrays;  ///< by SymbolID (aliases for params)
  std::vector<std::unique_ptr<ArrayStorage>> Owned;

  explicit Frame(const Function &Fn) : F(&Fn) {
    Scalars.resize(Fn.symbols().size());
    Arrays.resize(Fn.symbols().size(), nullptr);
  }
};

/// The interpreter proper. The Call instruction marshals arguments into a
/// fresh frame and recurses through execute().
class Executor {
public:
  Executor(const Module &M, const InterpOptions &Opts, ExecResult &R)
      : M(M), Opts(Opts), R(R) {
    if (Opts.Profile && Opts.Profile->attached())
      Prof = Opts.Profile;
  }

  void runEntry(const Function &F) {
    Cell Dummy;
    Frame Fr = makeFrame(F);
    execute(Fr, Dummy, 0);
  }

private:
  Frame makeFrame(const Function &F) {
    Frame Fr(F);
    for (SymbolID S = 0; S != F.symbols().size(); ++S) {
      const Symbol &Sym = F.symbols().get(S);
      if (Sym.isArray() && !Sym.IsParam) {
        Fr.Owned.push_back(std::make_unique<ArrayStorage>(Sym.Shape));
        Fr.Arrays[S] = Fr.Owned.back().get();
      }
    }
    return Fr;
  }

  bool halted() const { return R.St != ExecResult::Status::Ok; }

  void fault(ExecResult::Status St, std::string Msg) {
    if (halted())
      return;
    R.St = St;
    R.FaultMessage = std::move(Msg);
  }

  int64_t intOf(const Frame &Fr, const Value &V) const {
    if (V.isSym())
      return Fr.Scalars[V.symbol()].I;
    return V.intValue();
  }

  double realOf(const Frame &Fr, const Value &V) const {
    if (V.isSym()) {
      const Symbol &S = Fr.F->symbols().get(V.symbol());
      if (S.Type == ScalarType::Real)
        return Fr.Scalars[V.symbol()].R;
      return static_cast<double>(Fr.Scalars[V.symbol()].I);
    }
    if (V.isRealConst())
      return V.realValue();
    return static_cast<double>(V.intValue());
  }

  bool operandIsReal(const Frame &Fr, const Value &V) const {
    if (V.isSym())
      return Fr.F->symbols().get(V.symbol()).Type == ScalarType::Real;
    return V.isRealConst();
  }

  bool checkHolds(const Frame &Fr, const CheckExpr &C) const {
    int64_t V =
        C.expr().evaluate([&](SymbolID S) { return Fr.Scalars[S].I; });
    return V <= C.bound();
  }

  std::string checkFailureMessage(const Frame &Fr, const Instruction &I) {
    std::string Msg =
        "range check failed: " + I.Check.str(Fr.F->symbols());
    if (!I.Origin.ArrayName.empty())
      Msg += " (array " + I.Origin.ArrayName + ", dim " +
             std::to_string(I.Origin.Dim + 1) +
             (I.Origin.IsUpper ? ", upper" : ", lower") + " bound, line " +
             I.Origin.Loc.str() + ")";
    return Msg;
  }

  bool flattenIndex(const Frame &Fr, const ArrayStorage &A,
                    const std::vector<Value> &Indices, size_t &Out) {
    size_t Offset = 0;
    size_t Stride = 1;
    for (size_t D = 0; D != Indices.size(); ++D) {
      int64_t Idx = intOf(Fr, Indices[D]);
      const ArrayDim &Dim = A.Shape.Dims[D];
      if (Idx < Dim.Lower || Idx > Dim.Upper)
        return false;
      Offset += static_cast<size_t>(Idx - Dim.Lower) * Stride;
      Stride *= static_cast<size_t>(Dim.extent());
    }
    Out = Offset;
    return true;
  }

  void storeScalar(Frame &Fr, SymbolID Dest, ScalarType Ty, int64_t IV,
                   double RV) {
    if (Ty == ScalarType::Real)
      Fr.Scalars[Dest].R = RV;
    else
      Fr.Scalars[Dest].I = IV;
  }

  void execute(Frame &Fr, Cell &ResultOut, unsigned Depth);

  const Module &M;
  const InterpOptions &Opts;
  ExecResult &R;
  obs::ExecutionProfile *Prof = nullptr;

public:
  /// Per-site check execution tallies (CountCheckSites only), keyed by
  /// (function, block, instruction index).
  std::map<std::tuple<const Function *, BlockID, size_t>, uint64_t>
      SiteCounts;
};

void Executor::execute(Frame &Fr, Cell &ResultOut, unsigned Depth) {
  if (Depth > Opts.MaxCallDepth) {
    fault(ExecResult::Status::CallDepthExceeded, "call depth exceeded");
    return;
  }
  const Function &F = *Fr.F;
  const SymbolTable &Syms = F.symbols();
  BlockID Cur = F.entryBlock();
  size_t Idx = 0;

  // Per-frame profiling state: loops in recursive activations count
  // independently, and the flush guard closes still-open loop entries as
  // partial no matter how the frame dies (trap, fault, in-loop return).
  size_t PFn = Prof ? Prof->functionIndex(Fr.F)
                    : obs::ExecutionProfile::NoFunction;
  obs::ExecutionProfile *P =
      PFn == obs::ExecutionProfile::NoFunction ? nullptr : Prof;
  obs::ProfileFrameState PFS;
  struct FrameFlush {
    obs::ExecutionProfile *P;
    size_t Fn;
    obs::ProfileFrameState &FS;
    ~FrameFlush() {
      if (P)
        P->flushFrame(Fn, FS);
    }
  } Flush{P, PFn, PFS};
  if (P) {
    PFS = P->makeFrameState(PFn);
    P->enterBlock(PFn, Cur, PFS);
  }

  while (!halted()) {
    const BasicBlock *BB = F.block(Cur);
    if (Idx >= BB->size()) {
      fault(ExecResult::Status::HardFault,
            "fell off the end of block bb" + std::to_string(Cur));
      return;
    }
    const Instruction &I = BB->instructions()[Idx];

    if (R.DynInstrs + R.DynChecks >= Opts.MaxSteps) {
      fault(ExecResult::Status::StepLimit, "step limit exceeded");
      return;
    }
    if (I.isRangeCheck()) {
      ++R.DynChecks;
      if (I.Op == Opcode::CondCheck)
        ++R.DynCondChecks;
      if (Opts.CountCheckSites)
        obs::saturatingInc(SiteCounts[{Fr.F, Cur, Idx}]);
    } else if (I.Op == Opcode::Load || I.Op == Opcode::Store) {
      // Count the address arithmetic the paper's C back end would emit:
      // one multiply and one add per dimension plus the access itself.
      R.DynInstrs += 1 + 2 * static_cast<uint64_t>(I.Indices.size());
    } else {
      ++R.DynInstrs;
    }

    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::Min:
    case Opcode::Max: {
      ScalarType Ty = Syms.get(I.Dest).Type;
      if (Ty == ScalarType::Real) {
        double A = realOf(Fr, I.Operands[0]);
        double B = realOf(Fr, I.Operands[1]);
        double Out = 0;
        switch (I.Op) {
        case Opcode::Add:
          Out = A + B;
          break;
        case Opcode::Sub:
          Out = A - B;
          break;
        case Opcode::Mul:
          Out = A * B;
          break;
        case Opcode::Div:
          Out = B == 0.0 ? 0.0 : A / B;
          break;
        case Opcode::Min:
          Out = std::min(A, B);
          break;
        case Opcode::Max:
          Out = std::max(A, B);
          break;
        default:
          break;
        }
        Fr.Scalars[I.Dest].R = Out;
      } else {
        int64_t A = intOf(Fr, I.Operands[0]);
        int64_t B = intOf(Fr, I.Operands[1]);
        int64_t Out = 0;
        switch (I.Op) {
        case Opcode::Add:
          Out = A + B;
          break;
        case Opcode::Sub:
          Out = A - B;
          break;
        case Opcode::Mul:
          Out = A * B;
          break;
        case Opcode::Div:
          if (B == 0) {
            fault(ExecResult::Status::HardFault, "integer division by zero");
            return;
          }
          Out = A / B;
          break;
        case Opcode::Mod:
          if (B == 0) {
            fault(ExecResult::Status::HardFault, "mod by zero");
            return;
          }
          Out = A % B;
          break;
        case Opcode::Min:
          Out = std::min(A, B);
          break;
        case Opcode::Max:
          Out = std::max(A, B);
          break;
        default:
          break;
        }
        Fr.Scalars[I.Dest].I = Out;
      }
      ++Idx;
      break;
    }
    case Opcode::Neg:
    case Opcode::Abs: {
      ScalarType Ty = Syms.get(I.Dest).Type;
      if (Ty == ScalarType::Real) {
        double A = realOf(Fr, I.Operands[0]);
        Fr.Scalars[I.Dest].R = I.Op == Opcode::Neg ? -A : std::fabs(A);
      } else {
        int64_t A = intOf(Fr, I.Operands[0]);
        Fr.Scalars[I.Dest].I = I.Op == Opcode::Neg ? -A : (A < 0 ? -A : A);
      }
      ++Idx;
      break;
    }
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE: {
      bool Real = operandIsReal(Fr, I.Operands[0]) ||
                  operandIsReal(Fr, I.Operands[1]);
      bool Out = false;
      if (Real) {
        double A = realOf(Fr, I.Operands[0]);
        double B = realOf(Fr, I.Operands[1]);
        switch (I.Op) {
        case Opcode::CmpEQ:
          Out = A == B;
          break;
        case Opcode::CmpNE:
          Out = A != B;
          break;
        case Opcode::CmpLT:
          Out = A < B;
          break;
        case Opcode::CmpLE:
          Out = A <= B;
          break;
        case Opcode::CmpGT:
          Out = A > B;
          break;
        case Opcode::CmpGE:
          Out = A >= B;
          break;
        default:
          break;
        }
      } else {
        int64_t A = intOf(Fr, I.Operands[0]);
        int64_t B = intOf(Fr, I.Operands[1]);
        switch (I.Op) {
        case Opcode::CmpEQ:
          Out = A == B;
          break;
        case Opcode::CmpNE:
          Out = A != B;
          break;
        case Opcode::CmpLT:
          Out = A < B;
          break;
        case Opcode::CmpLE:
          Out = A <= B;
          break;
        case Opcode::CmpGT:
          Out = A > B;
          break;
        case Opcode::CmpGE:
          Out = A >= B;
          break;
        default:
          break;
        }
      }
      Fr.Scalars[I.Dest].I = Out ? 1 : 0;
      ++Idx;
      break;
    }
    case Opcode::And:
      Fr.Scalars[I.Dest].I =
          (intOf(Fr, I.Operands[0]) != 0 && intOf(Fr, I.Operands[1]) != 0)
              ? 1
              : 0;
      ++Idx;
      break;
    case Opcode::Or:
      Fr.Scalars[I.Dest].I =
          (intOf(Fr, I.Operands[0]) != 0 || intOf(Fr, I.Operands[1]) != 0)
              ? 1
              : 0;
      ++Idx;
      break;
    case Opcode::Not:
      Fr.Scalars[I.Dest].I = intOf(Fr, I.Operands[0]) == 0 ? 1 : 0;
      ++Idx;
      break;
    case Opcode::Copy: {
      ScalarType Ty = Syms.get(I.Dest).Type;
      if (Ty == ScalarType::Real)
        Fr.Scalars[I.Dest].R = realOf(Fr, I.Operands[0]);
      else
        Fr.Scalars[I.Dest].I = intOf(Fr, I.Operands[0]);
      ++Idx;
      break;
    }
    case Opcode::IntToReal:
      Fr.Scalars[I.Dest].R =
          static_cast<double>(intOf(Fr, I.Operands[0]));
      ++Idx;
      break;
    case Opcode::RealToInt:
      Fr.Scalars[I.Dest].I =
          static_cast<int64_t>(realOf(Fr, I.Operands[0]));
      ++Idx;
      break;
    case Opcode::Load: {
      ArrayStorage *A = Fr.Arrays[I.Array];
      if (!A) {
        fault(ExecResult::Status::HardFault, "unbound array parameter");
        return;
      }
      size_t Off = 0;
      if (!flattenIndex(Fr, *A, I.Indices, Off)) {
        fault(ExecResult::Status::HardFault,
              "out-of-bounds access on array " +
                  Syms.get(I.Array).Name +
                  " (a range check should have fired)");
        return;
      }
      if (A->Elem == ScalarType::Real)
        Fr.Scalars[I.Dest].R = A->Reals[Off];
      else
        Fr.Scalars[I.Dest].I = A->Ints[Off];
      if (P)
        P->noteAccess(PFn, I.Array, /*IsStore=*/false);
      ++Idx;
      break;
    }
    case Opcode::Store: {
      ArrayStorage *A = Fr.Arrays[I.Array];
      if (!A) {
        fault(ExecResult::Status::HardFault, "unbound array parameter");
        return;
      }
      size_t Off = 0;
      if (!flattenIndex(Fr, *A, I.Indices, Off)) {
        fault(ExecResult::Status::HardFault,
              "out-of-bounds store on array " + Syms.get(I.Array).Name +
                  " (a range check should have fired)");
        return;
      }
      if (A->Elem == ScalarType::Real)
        A->Reals[Off] = realOf(Fr, I.Operands[0]);
      else
        A->Ints[Off] = intOf(Fr, I.Operands[0]);
      if (P)
        P->noteAccess(PFn, I.Array, /*IsStore=*/true);
      ++Idx;
      break;
    }
    case Opcode::Check: {
      bool Holds = checkHolds(Fr, I.Check);
      if (P)
        P->noteCheck(PFn, Cur, static_cast<uint32_t>(Idx), !Holds);
      if (!Holds) {
        fault(ExecResult::Status::Trapped, checkFailureMessage(Fr, I));
        return;
      }
      ++Idx;
      break;
    }
    case Opcode::CondCheck: {
      bool GuardsHold = true;
      for (const CheckExpr &G : I.Guards)
        if (!checkHolds(Fr, G)) {
          GuardsHold = false;
          break;
        }
      bool Traps = GuardsHold && !checkHolds(Fr, I.Check);
      if (P)
        P->noteCheck(PFn, Cur, static_cast<uint32_t>(Idx), Traps);
      if (Traps) {
        fault(ExecResult::Status::Trapped, checkFailureMessage(Fr, I));
        return;
      }
      ++Idx;
      break;
    }
    case Opcode::Trap:
      fault(ExecResult::Status::Trapped,
            "trap instruction reached (compile-time range violation)");
      return;
    case Opcode::Br:
      Cur = intOf(Fr, I.Operands[0]) != 0 ? I.TrueTarget : I.FalseTarget;
      Idx = 0;
      if (P)
        P->enterBlock(PFn, Cur, PFS);
      break;
    case Opcode::Jump:
      Cur = I.TrueTarget;
      Idx = 0;
      if (P)
        P->enterBlock(PFn, Cur, PFS);
      break;
    case Opcode::Ret:
      if (!I.Operands.empty()) {
        if (F.resultType() == ScalarType::Real)
          ResultOut.R = realOf(Fr, I.Operands[0]);
        else
          ResultOut.I = intOf(Fr, I.Operands[0]);
      }
      return;
    case Opcode::Call: {
      const Function *Callee = M.function(I.Callee);
      if (!Callee) {
        fault(ExecResult::Status::HardFault,
              "call to unknown function " + I.Callee);
        return;
      }
      Frame Sub = makeFrame(*Callee);
      // Marshal arguments: scalars by value (with conversion), arrays by
      // reference.
      for (size_t K = 0; K != I.Operands.size(); ++K) {
        SymbolID P = Callee->params()[K];
        const Symbol &PS = Callee->symbols().get(P);
        if (PS.isArray()) {
          Sub.Arrays[P] = Fr.Arrays[I.Operands[K].symbol()];
        } else if (PS.Type == ScalarType::Real) {
          Sub.Scalars[P].R = realOf(Fr, I.Operands[K]);
        } else {
          Sub.Scalars[P].I = intOf(Fr, I.Operands[K]);
        }
      }
      Cell Result;
      execute(Sub, Result, Depth + 1);
      if (halted())
        return;
      if (I.Dest != InvalidSymbol) {
        if (Syms.get(I.Dest).Type == ScalarType::Real)
          Fr.Scalars[I.Dest].R = Result.R;
        else
          Fr.Scalars[I.Dest].I = Result.I;
      }
      ++Idx;
      break;
    }
    case Opcode::Print: {
      const Value &V = I.Operands[0];
      std::string S;
      if (operandIsReal(Fr, V))
        S = formatString("%.6g", realOf(Fr, V));
      else if (V.isSym() &&
               Syms.get(V.symbol()).Type == ScalarType::Bool)
        S = intOf(Fr, V) ? "T" : "F";
      else
        S = std::to_string(intOf(Fr, V));
      R.Output.push_back(std::move(S));
      ++Idx;
      break;
    }
    }
  }
}

} // namespace

ExecResult nascent::interpret(const Module &M, const InterpOptions &Opts) {
  ExecResult R;
  const Function *Entry = M.entry();
  if (!Entry) {
    R.St = ExecResult::Status::HardFault;
    R.FaultMessage = "module has no entry function";
    return R;
  }
  Executor E(M, Opts, R);
  E.runEntry(*Entry);
  for (const auto &[Site, Count] : E.SiteCounts) {
    const auto &[F, Block, Idx] = Site;
    R.CheckSites.push_back({F->name(), Block, static_cast<uint32_t>(Idx),
                            Count, F->block(Block)->instructions()[Idx].Tag});
  }
  if (Opts.Profile && Opts.Profile->attached())
    Opts.Profile->noteRun(R.St == ExecResult::Status::Trapped);
  ++NumRuns;
  NumDynChecks += R.DynChecks;
  return R;
}

StaticCounts nascent::countStatic(const Module &M) {
  StaticCounts C;
  for (const Function *F : M.functions()) {
    ++C.Units;
    for (const auto &BB : *F) {
      for (const Instruction &I : BB->instructions()) {
        if (I.isRangeCheck())
          ++C.Checks;
        else if (I.Op == Opcode::Load || I.Op == Opcode::Store)
          C.Instrs += 1 + 2 * static_cast<uint64_t>(I.Indices.size());
        else
          ++C.Instrs;
      }
    }
    Function &NonConst = const_cast<Function &>(*F);
    NonConst.recomputePreds();
    DominatorTree DT(*F);
    LoopInfo LI(*F, DT);
    C.Loops += LI.numLoops();
  }
  return C;
}

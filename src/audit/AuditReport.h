//===----------------------------------------------------------------------===//
///
/// \file
/// Structured findings of the trap-safety auditor. Each finding names the
/// violated rule, the placement scheme under audit, the program point and
/// source location, a severity, and a witness trail explaining what the
/// auditor tried before giving up. Reports render both human-readable
/// (through DiagnosticEngine) and machine-readable (one summary line plus
/// one line per finding, for CI).
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_AUDIT_AUDITREPORT_H
#define NASCENT_AUDIT_AUDITREPORT_H

#include "ir/Instruction.h"
#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace nascent {

/// The audit rules. The first group covers direction A ("the optimized
/// program introduces no trap the original lacks"), the second direction B
/// ("no trap of the original is lost"), the third the implication-graph
/// consistency lint. docs/audit.md gives each rule's paper justification.
enum class AuditRule {
  // Direction A: every residual check/trap must be justified.
  CheckNotJustified,     ///< plain check neither anticipated nor implied
  CondCheckNotJustified, ///< guarded preheader check with no valid chain
  TrapNotJustified,      ///< trap with no provably-failing original check
  // Direction B: every original check must stay covered.
  LostCheck, ///< no as-strong-or-stronger optimized check precedes it
  // Structural.
  IrCorrespondence, ///< optimized IR no longer corresponds to the original
  // CIG consistency lint.
  CigNegativeCycle, ///< implication edges form a negative-weight cycle
  CigFamilyOrder,   ///< family members out of order or malformed
  CigKillSet,       ///< a check missing from a symbol's kill index
};

/// Stable rule identifier, e.g. "no-new-trap/check-not-justified".
const char *auditRuleId(AuditRule R);

enum class AuditSeverity { Error, Warning };

/// One audit finding.
struct AuditFinding {
  AuditRule Rule = AuditRule::CheckNotJustified;
  AuditSeverity Severity = AuditSeverity::Error;
  std::string FunctionName;
  BlockID Block = InvalidBlock;
  size_t InstIndex = 0;
  SourceLocation Loc;
  std::string Scheme;  ///< placement scheme name under audit
  std::string Message; ///< one-sentence statement of the violation
  /// Witness trail: the justification attempts, path fragments, or check
  /// strings that explain the verdict.
  std::vector<std::string> Witness;

  /// Renders "rule=... func=... block=... inst=... loc=...: message".
  std::string str() const;
};

/// Counters describing what one audit run proved; useful both for the CI
/// summary and for tests asserting the auditor is not vacuously true.
struct AuditStats {
  unsigned ChecksAudited = 0;     ///< plain checks examined (direction A)
  unsigned CondChecksAudited = 0; ///< conditional checks examined
  unsigned TrapsAudited = 0;      ///< trap instructions examined
  unsigned OriginalChecksCovered = 0; ///< direction B obligations met
  unsigned JustifiedAnticipated = 0;  ///< rule (a) successes
  unsigned JustifiedAvailable = 0;    ///< rule (c) successes
  unsigned JustifiedPreheader = 0;    ///< rule (b) successes
  unsigned IntervalDischarged = 0;    ///< interval-analysis waivers used
  unsigned LimitDischarged = 0;       ///< loop-limit-substitution waivers
  unsigned FactsValidated = 0;        ///< preheader facts proved sound

  AuditStats &operator+=(const AuditStats &R);
};

/// Aggregated result of auditing one module (or one function pair).
class AuditReport {
public:
  void add(AuditFinding F) { Findings.push_back(std::move(F)); }

  bool clean() const { return Findings.empty(); }
  size_t numFindings() const { return Findings.size(); }
  const std::vector<AuditFinding> &findings() const { return Findings; }

  AuditStats &stats() { return Stats; }
  const AuditStats &stats() const { return Stats; }

  /// Emits every finding into \p Diags (errors as errors, warnings as
  /// warnings), prefixed with "audit:".
  void emitTo(DiagnosticEngine &Diags) const;

  /// One machine-readable line: "audit: status=... findings=N checks=N
  /// condchecks=N traps=N covered=N facts=N". CI greps for status=fail.
  std::string summaryLine() const;

  /// Full human-readable rendering: summary line plus one line per
  /// finding with its witness trail indented.
  std::string render() const;

  /// Merges \p R (per-function report) into this (module report).
  AuditReport &operator+=(const AuditReport &R);

private:
  std::vector<AuditFinding> Findings;
  AuditStats Stats;
};

} // namespace nascent

#endif // NASCENT_AUDIT_AUDITREPORT_H

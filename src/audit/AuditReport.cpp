#include "audit/AuditReport.h"

#include <sstream>

using namespace nascent;

const char *nascent::auditRuleId(AuditRule R) {
  switch (R) {
  case AuditRule::CheckNotJustified:
    return "no-new-trap/check-not-justified";
  case AuditRule::CondCheckNotJustified:
    return "no-new-trap/cond-check-not-justified";
  case AuditRule::TrapNotJustified:
    return "no-new-trap/trap-not-justified";
  case AuditRule::LostCheck:
    return "no-lost-trap/check-not-covered";
  case AuditRule::IrCorrespondence:
    return "structure/ir-correspondence";
  case AuditRule::CigNegativeCycle:
    return "cig/negative-cycle";
  case AuditRule::CigFamilyOrder:
    return "cig/family-order";
  case AuditRule::CigKillSet:
    return "cig/kill-set";
  }
  return "?";
}

AuditStats &AuditStats::operator+=(const AuditStats &R) {
  ChecksAudited += R.ChecksAudited;
  CondChecksAudited += R.CondChecksAudited;
  TrapsAudited += R.TrapsAudited;
  OriginalChecksCovered += R.OriginalChecksCovered;
  JustifiedAnticipated += R.JustifiedAnticipated;
  JustifiedAvailable += R.JustifiedAvailable;
  JustifiedPreheader += R.JustifiedPreheader;
  IntervalDischarged += R.IntervalDischarged;
  LimitDischarged += R.LimitDischarged;
  FactsValidated += R.FactsValidated;
  return *this;
}

std::string AuditFinding::str() const {
  std::ostringstream OS;
  OS << "rule=" << auditRuleId(Rule)
     << " severity=" << (Severity == AuditSeverity::Error ? "error" : "warning");
  if (!Scheme.empty())
    OS << " scheme=" << Scheme;
  if (!FunctionName.empty())
    OS << " func=" << FunctionName;
  if (Block != InvalidBlock)
    OS << " block=" << Block << " inst=" << InstIndex;
  OS << " loc=" << Loc.str() << ": " << Message;
  return OS.str();
}

void AuditReport::emitTo(DiagnosticEngine &Diags) const {
  for (const AuditFinding &F : Findings) {
    std::string Msg = "audit: " + F.str();
    for (const std::string &W : F.Witness)
      Msg += "\n  witness: " + W;
    if (F.Severity == AuditSeverity::Error)
      Diags.error(F.Loc, Msg);
    else
      Diags.warning(F.Loc, Msg);
  }
}

std::string AuditReport::summaryLine() const {
  std::ostringstream OS;
  OS << "audit: status=" << (clean() ? "pass" : "fail")
     << " findings=" << Findings.size()
     << " checks=" << Stats.ChecksAudited
     << " condchecks=" << Stats.CondChecksAudited
     << " traps=" << Stats.TrapsAudited
     << " covered=" << Stats.OriginalChecksCovered
     << " facts=" << Stats.FactsValidated
     << " anticipated=" << Stats.JustifiedAnticipated
     << " available=" << Stats.JustifiedAvailable
     << " preheader=" << Stats.JustifiedPreheader
     << " interval=" << Stats.IntervalDischarged
     << " limit=" << Stats.LimitDischarged;
  return OS.str();
}

std::string AuditReport::render() const {
  std::string Out = summaryLine() + "\n";
  for (const AuditFinding &F : Findings) {
    Out += F.str() + "\n";
    for (const std::string &W : F.Witness)
      Out += "  witness: " + W + "\n";
  }
  return Out;
}

AuditReport &AuditReport::operator+=(const AuditReport &R) {
  for (const AuditFinding &F : R.Findings)
    Findings.push_back(F);
  Stats += R.Stats;
  return *this;
}

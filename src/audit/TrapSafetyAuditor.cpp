#include "audit/TrapSafetyAuditor.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "audit/CigConsistencyLint.h"
#include "opt/CheckContext.h"
#include "opt/IntervalAnalysis.h"

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace nascent;

namespace {

bool constTrue(const CheckExpr &C) {
  return C.isCompileTimeConstant() && C.evaluatesToTrue();
}
bool constFalse(const CheckExpr &C) {
  return C.isCompileTimeConstant() && !C.evaluatesToTrue();
}

/// A fails whenever B fails: same range-expression, tighter-or-equal bound.
bool asStrongAs(const CheckExpr &A, const CheckExpr &B) {
  return A.expr() == B.expr() && A.bound() <= B.bound();
}

bool valueEq(const Value &A, const Value &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Value::Kind::None:
    return true;
  case Value::Kind::Sym:
    return A.symbol() == B.symbol();
  case Value::Kind::IntConst:
  case Value::Kind::BoolConst:
    return A.intValue() == B.intValue();
  case Value::Kind::RealConst:
    return A.realValue() == B.realValue();
  }
  return false;
}

bool valuesEq(const std::vector<Value> &A, const std::vector<Value> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!valueEq(A[I], B[I]))
      return false;
  return true;
}

// The helpers below mirror the (file-static) ones in PreheaderInsertion.cpp;
// the auditor re-derives every side condition rather than trusting the
// optimizer's own bookkeeping.

std::set<SymbolID> definedSymbols(const Function &F, const Loop &L) {
  std::set<SymbolID> Out;
  for (BlockID B : L.Blocks)
    for (const Instruction &I : F.block(B)->instructions())
      if (I.Dest != InvalidSymbol)
        Out.insert(I.Dest);
  return Out;
}

bool exprInvariant(const LinearExpr &E, const std::set<SymbolID> &Defined) {
  for (const auto &[Sym, Coeff] : E.terms()) {
    (void)Coeff;
    if (Defined.count(Sym))
      return false;
  }
  return true;
}

bool everyIterationCompletes(const Function &F, const LoopInfo &LI,
                             const Loop &L) {
  for (BlockID B : L.Blocks)
    if (F.block(B)->terminator().Op == Opcode::Ret)
      return false;
  for (const Loop *Sub : LI.loopsInnermostFirst()) {
    if (Sub == &L || !L.contains(Sub->Header))
      continue;
    if (Sub->DoLoopIndex < 0)
      return false; // nested while loop: may not terminate
  }
  return true;
}

/// DFS from \p From that never enters \p Avoid; true when it reaches
/// \p Target or any Ret-terminated block.
bool reachesWithout(const Function &F, BlockID From, BlockID Avoid,
                    BlockID Target) {
  if (From == Avoid)
    return false;
  std::vector<bool> Seen(F.numBlocks(), false);
  std::vector<BlockID> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    BlockID B = Work.back();
    Work.pop_back();
    if (B == Target)
      return true;
    if (F.block(B)->terminator().Op == Opcode::Ret)
      return true;
    for (BlockID S : F.block(B)->successors()) {
      if (S == Avoid || Seen[S])
        continue;
      Seen[S] = true;
      Work.push_back(S);
    }
  }
  return false;
}

LinearExpr substituteExtreme(const LinearExpr &Expr, SymbolID Var,
                             int64_t Coeff, const LinearExpr &MinVal,
                             const LinearExpr &MaxVal) {
  LinearExpr Out = Expr;
  Out.substitute(Var, Coeff > 0 ? MaxVal : MinVal);
  return Out;
}

/// Everything the auditor needs to reason about one do-loop: its metadata,
/// natural loop, the symbols defined inside it, and whether every started
/// iteration completes (required for direction-A limit substitution).
struct LoopEnv {
  const DoLoopInfo *DL = nullptr;
  const Loop *L = nullptr;
  std::set<SymbolID> Defined;
  bool EveryIterCompletes = false;
};

/// "Control at the preheader's end + Req all hold there + J fails there
/// implies the original traps" — the auditor's reconstructed meaning of a
/// guarded preheader check.
struct Justification {
  CheckExpr J;
  std::vector<CheckExpr> Req;
};

/// Per-block map from gap index to the program points of the original.
/// Gap g is the run of check instructions before the g-th non-check
/// instruction (the last gap precedes the terminator).
struct GapInfo {
  std::vector<size_t> NcPos;     ///< indices of non-range-check insts
  std::vector<size_t> GapStart;  ///< first inst index of each gap
};

GapInfo computeGaps(const BasicBlock &BB) {
  GapInfo G;
  const auto &Insts = BB.instructions();
  for (size_t I = 0; I != Insts.size(); ++I)
    if (!Insts[I].isRangeCheck())
      G.NcPos.push_back(I);
  G.GapStart.resize(G.NcPos.size() + 1);
  for (size_t I = 0; I != G.NcPos.size() + 1; ++I)
    G.GapStart[I] = I == 0 ? 0 : G.NcPos[I - 1] + 1;
  return G;
}

class PairAuditor {
public:
  PairAuditor(Function &Orig, Function &Opt, const AuditOptions &Opts,
              AuditReport &Report)
      : Orig(Orig), Opt(Opt), Opts(Opts), Report(Report),
        OrigCtx(Orig, ImplicationMode::All), DTOrig(Orig), LIOrig(Orig, DTOrig),
        DTOpt(Opt) {
    Antic = OrigCtx.solveAnticipatability();
    Avail = OrigCtx.solveAvailability();
    buildLoopEnvs(Orig, DTOrig, LIOrig, EnvOrig, PreheaderLoopOrig);
    buildJustifiedAt();
  }

  void run() {
    BlockOk.assign(Orig.numBlocks(), true);
    TrapGap.assign(Orig.numBlocks(), NoTrap);
    for (BlockID B = 0; B != Orig.numBlocks(); ++B)
      auditBlockPair(B);
    for (BlockID B = Orig.numBlocks(); B < Opt.numBlocks(); ++B)
      auditNewBlock(B);
    auditCoverage();
  }

private:
  Function &Orig;
  Function &Opt;
  const AuditOptions &Opts;
  AuditReport &Report;

  CheckContext OrigCtx;
  DominatorTree DTOrig;
  LoopInfo LIOrig;
  DominatorTree DTOpt;
  DataflowResult Antic; ///< anticipatability over the original
  DataflowResult Avail; ///< availability over the original

  /// Per do-loop index of the original (the optimized CFG may have lost
  /// loops to trap truncation; all loop reasoning uses these).
  std::vector<LoopEnv> EnvOrig;
  /// Preheader block id -> do-loop index.
  std::unordered_map<BlockID, int> PreheaderLoopOrig;
  /// Per do-loop index of the original: justifications at its preheader.
  std::vector<std::vector<Justification>> JustifiedAt;

  std::vector<bool> BlockOk;
  /// For direction B: per original block, the gap index (count of matched
  /// non-checks) at which the optimized block was truncated by a Trap, or
  /// npos when it was not.
  std::vector<size_t> TrapGap;

  std::optional<IntervalCheckClassification> Intervals;

  const IntervalCheckClassification &intervals() {
    if (!Intervals)
      Intervals = classifyChecksByIntervals(Orig);
    return *Intervals;
  }

  static void buildLoopEnvs(const Function &F, const DominatorTree &DT,
                            const LoopInfo &LI, std::vector<LoopEnv> &Envs,
                            std::unordered_map<BlockID, int> &PreheaderLoop) {
    (void)DT;
    Envs.assign(F.doLoops().size(), LoopEnv{});
    for (size_t I = 0; I != F.doLoops().size(); ++I)
      Envs[I].DL = &F.doLoops()[I];
    for (const Loop *L : LI.loopsInnermostFirst()) {
      if (L->DoLoopIndex < 0)
        continue;
      LoopEnv &E = Envs[static_cast<size_t>(L->DoLoopIndex)];
      E.L = L;
      E.Defined = definedSymbols(F, *L);
      E.EveryIterCompletes = everyIterationCompletes(F, LI, *L);
      PreheaderLoop[E.DL->Preheader] = L->DoLoopIndex;
    }
  }

  AuditFinding finding(AuditRule Rule, BlockID B, size_t Idx,
                       const Instruction &I, std::string Message) const {
    AuditFinding F;
    F.Rule = Rule;
    F.Severity = AuditSeverity::Error;
    F.FunctionName = Opt.name();
    F.Block = B;
    F.InstIndex = Idx;
    F.Loc = I.Origin.Loc.isValid() ? I.Origin.Loc : I.Loc;
    F.Scheme = placementSchemeName(Opts.Scheme);
    F.Message = std::move(Message);
    return F;
  }

  std::string checkStr(const CheckExpr &C) const {
    return C.str(Opt.symbols());
  }

  /// Transports \p CE out of do-loop \p Env by substituting the extreme
  /// value of the loop's index (or basic) variable, exactly as loop-limit
  /// substitution does — but re-deriving every side condition. Returns
  /// nullopt when the check cannot be spoken for at the preheader.
  ///
  /// \p RequireCompletion: direction A transports an anticipated body
  /// check to the preheader, which is only sound when every started
  /// iteration reaches the extreme one. Direction B transports a
  /// *performed* preheader check into the body, where the do-loop header
  /// test already bounds the index, so completion is not needed.
  std::optional<CheckExpr> transportOut(const CheckExpr &CE,
                                        const LoopEnv &Env,
                                        bool RequireCompletion) const {
    if (exprInvariant(CE.expr(), Env.Defined))
      return CE;
    const DoLoopInfo &DL = *Env.DL;
    if (DL.Step != 1 && DL.Step != -1)
      return std::nullopt;
    if (RequireCompletion && !Env.EveryIterCompletes)
      return std::nullopt;
    int64_t CI = CE.expr().coeff(DL.IndexVar);
    int64_t CB = DL.BasicVar != InvalidSymbol ? CE.expr().coeff(DL.BasicVar)
                                              : 0;
    SymbolID Var;
    int64_t Coeff;
    LinearExpr MinV, MaxV;
    LinearExpr IdxMin = DL.Step > 0 ? DL.LowerBound : DL.UpperBound;
    LinearExpr IdxMax = DL.Step > 0 ? DL.UpperBound : DL.LowerBound;
    if (CI != 0 && CB == 0) {
      Var = DL.IndexVar;
      Coeff = CI;
      MinV = IdxMin;
      MaxV = IdxMax;
    } else if (CB != 0 && CI == 0) {
      Var = DL.BasicVar;
      Coeff = CB;
      MinV = LinearExpr::constant(0);
      MaxV = DL.lastIterationIndexOffset();
    } else {
      return std::nullopt; // both or neither loop variable involved
    }
    LinearExpr Rest = CE.expr();
    Rest.removeTerm(Var);
    if (!exprInvariant(Rest, Env.Defined))
      return std::nullopt;
    LinearExpr Subst = substituteExtreme(CE.expr(), Var, Coeff, MinV, MaxV);
    if (!exprInvariant(Subst, Env.Defined))
      return std::nullopt; // bound expression redefined inside the loop
    return CheckExpr(Subst, CE.bound());
  }

  /// Builds, for every do-loop of the *original*, the set of checks whose
  /// failure at the preheader (under stated conditions) implies the
  /// original traps. Loops are visited innermost-first so inner loops'
  /// entries are ready when outer loops lift them.
  void buildJustifiedAt() {
    JustifiedAt.assign(Orig.doLoops().size(), {});
    for (const Loop *L : LIOrig.loopsInnermostFirst()) {
      if (L->DoLoopIndex < 0)
        continue;
      size_t LIdx = static_cast<size_t>(L->DoLoopIndex);
      const LoopEnv &Env = EnvOrig[LIdx];
      if (!Env.L)
        continue;
      const DoLoopInfo &DL = *Env.DL;
      CheckExpr Guard = DL.entryGuard();
      std::vector<Justification> &Out = JustifiedAt[LIdx];
      auto addEntry = [&](CheckExpr J, std::vector<CheckExpr> Req) {
        for (const Justification &E : Out)
          if (E.J == J && E.Req == Req)
            return;
        Out.push_back({std::move(J), std::move(Req)});
      };
      // Base: checks anticipated at the body entry. If the guard holds,
      // the first iteration runs the body; an anticipated check failing
      // there traps on every body path.
      if (DL.BodyEntry < Antic.In.size()) {
        const DenseBitVector &In = Antic.In[DL.BodyEntry];
        In.forEachSetBit([&](size_t Bit) {
          const CheckExpr &A = OrigCtx.universe().check(
              static_cast<CheckID>(Bit));
          // Invariant w.r.t. the header's definitions is enough: the
          // header redefines nothing (index updates live in the latch),
          // but be conservative and require full loop-invariance or a
          // valid limit substitution.
          if (exprInvariant(A.expr(), Env.Defined))
            addEntry(A, {Guard});
          if (std::optional<CheckExpr> T = transportOut(A, Env, true))
            if (!(*T == A))
              addEntry(*T, {Guard});
        });
      }
      // Lift: an inner do-loop M whose preheader is an articulation point
      // of L's body (every completing iteration passes through it)
      // forwards its own justifications, transported across L.
      for (const Loop *M : LIOrig.loopsInnermostFirst()) {
        if (M == L || M->DoLoopIndex < 0 || !L->contains(M->Header))
          continue;
        size_t MIdx = static_cast<size_t>(M->DoLoopIndex);
        const DoLoopInfo &MDL = *EnvOrig[MIdx].DL;
        if (reachesWithout(Orig, DL.BodyEntry, MDL.Preheader, DL.Latch))
          continue; // not an articulation point of L's body
        if (!Env.EveryIterCompletes)
          continue; // the first iteration might not reach M's preheader...
        for (const Justification &J2 : JustifiedAt[MIdx]) {
          bool ReqOk = true;
          for (const CheckExpr &R : J2.Req)
            if (!exprInvariant(R.expr(), Env.Defined))
              ReqOk = false;
          if (!ReqOk)
            continue;
          std::optional<CheckExpr> T = transportOut(J2.J, Env, true);
          if (!T)
            continue;
          std::vector<CheckExpr> Req = J2.Req;
          Req.push_back(Guard);
          addEntry(*T, std::move(Req));
        }
      }
    }
  }

  /// Per-position anticipatability of the original block: AnticAt[i] is
  /// the set anticipated immediately before instruction i; AnticAt[n] is
  /// the block's exit set.
  std::vector<DenseBitVector> anticPositions(BlockID B) const {
    const auto &Insts = Orig.block(B)->instructions();
    std::vector<DenseBitVector> At(Insts.size() + 1);
    DenseBitVector Cur = B < Antic.Out.size()
                             ? Antic.Out[B]
                             : DenseBitVector(OrigCtx.universe().size());
    At[Insts.size()] = Cur;
    for (size_t I = Insts.size(); I-- > 0;) {
      OrigCtx.applyKill(Insts[I], Cur);
      OrigCtx.applyAnticGen(B, I, Insts[I], Cur);
      At[I] = Cur;
    }
    return At;
  }

  /// Per-position availability of the original block: AvailAt[i] is the
  /// set available immediately before instruction i.
  std::vector<DenseBitVector> availPositions(BlockID B) const {
    const auto &Insts = Orig.block(B)->instructions();
    std::vector<DenseBitVector> At(Insts.size() + 1);
    DenseBitVector Cur = B < Avail.In.size()
                             ? Avail.In[B]
                             : DenseBitVector(OrigCtx.universe().size());
    Cur |= OrigCtx.genInBits(B);
    for (size_t I = 0; I != Insts.size(); ++I) {
      At[I] = Cur;
      OrigCtx.applyKill(Insts[I], Cur);
      OrigCtx.applyAvailGen(B, I, Insts[I], Cur);
    }
    At[Insts.size()] = Cur;
    return At;
  }

  /// True when some symbol of \p E is (re)defined at or after position
  /// \p From in optimized block \p B, excluding the terminator.
  bool tailDefines(BlockID B, size_t From, const LinearExpr &E) const {
    const auto &Insts = Opt.block(B)->instructions();
    for (size_t I = From; I != Insts.size(); ++I)
      if (Insts[I].Dest != InvalidSymbol && E.references(Insts[I].Dest))
        return true;
    return false;
  }

  /// Follows split-block forwarding in the optimized CFG: a target >= the
  /// original block count that is a pure Jump block stands for its (
  /// original-id) destination. A split block truncated into a Trap keeps
  /// standing for whatever the matching original edge targeted.
  BlockID resolveOptTarget(BlockID T) const {
    size_t Guard = 0;
    while (T != InvalidBlock && T >= Orig.numBlocks() &&
           Guard++ < Opt.numBlocks()) {
      const BasicBlock *BB = Opt.block(T);
      if (BB->hasTerminator() && BB->terminator().Op == Opcode::Jump)
        T = BB->terminator().TrueTarget;
      else
        break;
    }
    return T;
  }

  /// Structural equality of two non-check instructions across the pair.
  /// Branch targets are compared modulo split-block forwarding.
  bool sameNonCheck(const Instruction &A, const Instruction &B) const {
    if (A.Op != B.Op)
      return false;
    if (A.Dest != B.Dest || A.Array != B.Array || A.Callee != B.Callee)
      return false;
    if (!valuesEq(A.Operands, B.Operands) || !valuesEq(A.Indices, B.Indices))
      return false;
    if (A.Op == Opcode::Br || A.Op == Opcode::Jump) {
      BlockID BT = resolveOptTarget(B.TrueTarget);
      // A Trap-truncated split block cannot be resolved; accept it, the
      // truncation itself was audited where the Trap sits.
      if (BT < Orig.numBlocks() && BT != A.TrueTarget)
        return false;
      if (A.Op == Opcode::Br) {
        BlockID BF = resolveOptTarget(B.FalseTarget);
        if (BF < Orig.numBlocks() && BF != A.FalseTarget)
          return false;
      }
    }
    return true;
  }

  /// Rule (a): some check anticipated at this gap's start in the original
  /// is as strong as \p C — executing C here can only trap where the
  /// original was already doomed to trap.
  bool justifiedAnticipated(const DenseBitVector &AnticGap,
                            const CheckExpr &C) const {
    bool Found = false;
    AnticGap.forEachSetBit([&](size_t Bit) {
      if (!Found &&
          asStrongAs(OrigCtx.universe().check(static_cast<CheckID>(Bit)), C))
        Found = true;
    });
    return Found;
  }

  /// Rule (c): some check the original performs on every path to this gap
  /// is as strong as \p C — C can never fire first.
  bool justifiedAvailable(const DenseBitVector &AvailGap,
                          const CheckExpr &C) const {
    bool Found = false;
    AvailGap.forEachSetBit([&](size_t Bit) {
      if (!Found &&
          asStrongAs(OrigCtx.universe().check(static_cast<CheckID>(Bit)), C))
        Found = true;
    });
    return Found;
  }

  /// Rule (b): \p Payload sits in the preheader of original do-loop
  /// \p LIdx guarded by \p Guards; check the guard chain against the
  /// reconstructed justifications. Extra guards only weaken the check.
  bool justifiedPreheader(size_t LIdx, const CheckExpr &Payload,
                          const std::vector<CheckExpr> &Guards) const {
    for (const Justification &J : JustifiedAt[LIdx]) {
      if (!asStrongAs(J.J, Payload))
        continue;
      bool ReqOk = true;
      for (const CheckExpr &R : J.Req) {
        if (constTrue(R))
          continue;
        bool Present = false;
        for (const CheckExpr &G : Guards)
          if (G == R)
            Present = true;
        if (!Present) {
          ReqOk = false;
          break;
        }
      }
      if (ReqOk)
        return true;
    }
    return false;
  }

  void auditPlainCheck(BlockID B, size_t OI, const Instruction &I,
                       const DenseBitVector &AnticGap,
                       const DenseBitVector &AvailGap) {
    ++Report.stats().ChecksAudited;
    const CheckExpr &C = I.Check;
    if (constTrue(C))
      return; // can never trap
    if (justifiedAnticipated(AnticGap, C)) {
      ++Report.stats().JustifiedAnticipated;
      return;
    }
    if (justifiedAvailable(AvailGap, C)) {
      ++Report.stats().JustifiedAvailable;
      return;
    }
    // Demoted preheader check (a CondCheck whose guards all folded to
    // true): justify it the way the CondCheck would have been. The
    // justification chain is a property of the ORIGINAL loop structure;
    // the optimized CFG may have lost the loop (a hoisted compile-time
    // false check folded into a Trap truncates the preheader), so only
    // the original's preheader map gates this path.
    if (PreheaderLoopOrig.count(B) &&
        !tailDefines(B, OI + 1, C.expr()) &&
        justifiedPreheader(static_cast<size_t>(
                               PreheaderLoopOrig.find(B)->second),
                           C, {})) {
      ++Report.stats().JustifiedPreheader;
      return;
    }
    AuditFinding F = finding(
        AuditRule::CheckNotJustified, B, OI, I,
        "residual check is neither anticipated in the original nor "
        "implied by a check the original always performs first");
    F.Witness.push_back("check: " + checkStr(C));
    F.Witness.push_back("tried: anticipated-at-gap, available-at-gap, "
                        "preheader-justification");
    Report.add(std::move(F));
  }

  void auditCondCheck(BlockID B, size_t OI, const Instruction &I,
                      const DenseBitVector &AnticGap,
                      const DenseBitVector &AvailGap) {
    ++Report.stats().CondChecksAudited;
    const CheckExpr &C = I.Check;
    if (constTrue(C))
      return;
    // A conditional check is weaker than its payload; payload-level
    // justification carries over.
    if (justifiedAnticipated(AnticGap, C)) {
      ++Report.stats().JustifiedAnticipated;
      return;
    }
    if (justifiedAvailable(AvailGap, C)) {
      ++Report.stats().JustifiedAvailable;
      return;
    }
    auto It = PreheaderLoopOrig.find(B);
    if (It == PreheaderLoopOrig.end()) {
      AuditFinding F = finding(
          AuditRule::CondCheckNotJustified, B, OI, I,
          "conditional check outside any do-loop preheader");
      F.Witness.push_back("check: " + checkStr(C));
      Report.add(std::move(F));
      return;
    }
    bool Tail = tailDefines(B, OI + 1, C.expr());
    for (const CheckExpr &G : I.Guards)
      Tail = Tail || tailDefines(B, OI + 1, G.expr());
    if (!Tail &&
        justifiedPreheader(static_cast<size_t>(It->second), C, I.Guards)) {
      ++Report.stats().JustifiedPreheader;
      return;
    }
    AuditFinding F = finding(
        AuditRule::CondCheckNotJustified, B, OI, I,
        "guarded preheader check has no reconstructible justification "
        "chain from the original's anticipated body checks");
    F.Witness.push_back("check: " + checkStr(C));
    for (const CheckExpr &G : I.Guards)
      F.Witness.push_back("guard: " + checkStr(G));
    Report.add(std::move(F));
  }

  /// \p G is the gap the trap sits in; \p NcEnd the original inst index of
  /// the non-check ending the gap (or block size for the last gap).
  void auditTrap(BlockID B, size_t OI, const Instruction &I, size_t G,
                 const GapInfo &Gaps, const DenseBitVector &AnticGap) {
    ++Report.stats().TrapsAudited;
    // (i) a check anticipated here is statically false: every original
    // continuation trips it.
    bool Found = false;
    AnticGap.forEachSetBit([&](size_t Bit) {
      if (constFalse(OrigCtx.universe().check(static_cast<CheckID>(Bit))))
        Found = true;
    });
    if (Found)
      return;
    // (ii) the interval classifier proves an original check of this gap
    // always fails.
    size_t End = G < Gaps.NcPos.size() ? Gaps.NcPos[G]
                                       : Orig.block(B)->size();
    for (size_t Idx = Gaps.GapStart[G]; Idx < End; ++Idx) {
      const Instruction &OInst = Orig.block(B)->instructions()[Idx];
      if (OInst.Op == Opcode::Check &&
          intervals().at(B, Idx) == IntervalVerdict::AlwaysFails) {
        ++Report.stats().IntervalDischarged;
        return;
      }
    }
    // (iv) preheader: a justification with statically-false check and
    // statically-true conditions proves the loop always traps.
    auto It = PreheaderLoopOrig.find(B);
    if (It != PreheaderLoopOrig.end()) {
      for (const Justification &J :
           JustifiedAt[static_cast<size_t>(It->second)]) {
        bool ReqOk = constFalse(J.J);
        for (const CheckExpr &R : J.Req)
          ReqOk = ReqOk && constTrue(R);
        if (ReqOk)
          return;
      }
    }
    AuditFinding F = finding(
        AuditRule::TrapNotJustified, B, OI, I,
        "trap instruction without a provably-failing original check at "
        "this point");
    Report.add(std::move(F));
  }

  /// Walks the optimized version of original block \p B against the
  /// original, matching non-check instructions one-to-one and auditing
  /// every check/trap in between against the gap it occupies.
  void auditBlockPair(BlockID B) {
    const BasicBlock &OB = *Orig.block(B);
    const BasicBlock &PB = *Opt.block(B);
    GapInfo Gaps = computeGaps(OB);
    std::vector<DenseBitVector> AnticAt = anticPositions(B);
    std::vector<DenseBitVector> AvailAt = availPositions(B);
    size_t RNc = 0; // non-checks matched so far == current gap index
    bool Truncated = false;
    for (size_t OI = 0; OI != PB.size(); ++OI) {
      const Instruction &I = PB.instructions()[OI];
      if (I.isRangeCheck()) {
        const DenseBitVector &AnticGap = AnticAt[Gaps.GapStart[RNc]];
        const DenseBitVector &AvailGap = AvailAt[Gaps.GapStart[RNc]];
        if (I.Op == Opcode::Check)
          auditPlainCheck(B, OI, I, AnticGap, AvailGap);
        else
          auditCondCheck(B, OI, I, AnticGap, AvailGap);
        continue;
      }
      if (RNc < Gaps.NcPos.size() &&
          sameNonCheck(OB.instructions()[Gaps.NcPos[RNc]], I)) {
        ++RNc;
        continue;
      }
      if (I.Op == Opcode::Trap) {
        // Compile-time-false check folded into a trap, truncating the
        // block; everything after it in the original is unreachable.
        auditTrap(B, OI, I, RNc, Gaps, AnticAt[Gaps.GapStart[RNc]]);
        TrapGap[B] = RNc;
        Truncated = true;
        break;
      }
      AuditFinding F = finding(
          AuditRule::IrCorrespondence, B, OI, I,
          "optimized instruction does not correspond to the original "
          "block's instruction sequence");
      Report.add(std::move(F));
      BlockOk[B] = false;
      return;
    }
    if (!Truncated && RNc != Gaps.NcPos.size()) {
      AuditFinding F = finding(
          AuditRule::IrCorrespondence, B, PB.size(), PB.instructions().back(),
          "optimized block dropped non-check instructions of the original");
      Report.add(std::move(F));
      BlockOk[B] = false;
    }
  }

  /// Audits a block the optimizer appended (critical-edge split). Checks
  /// placed here by PRE must be anticipated at the edge's target or
  /// available out of its source, both in the original.
  void auditNewBlock(BlockID NB) {
    const BasicBlock &BB = *Opt.block(NB);
    const auto &Preds = BB.preds();
    if (Preds.empty())
      return; // unreachable (e.g. its predecessor got trap-truncated)
    BlockID From = InvalidBlock;
    if (Preds.size() == 1 && Preds[0] < Orig.numBlocks())
      From = Preds[0];
    BlockID T = InvalidBlock;
    if (From != InvalidBlock) {
      const Instruction &OT = Orig.block(From)->terminator();
      const Instruction &PT = Opt.block(From)->terminator();
      if (PT.TrueTarget == NB)
        T = OT.TrueTarget;
      else if (PT.FalseTarget == NB)
        T = OT.FalseTarget;
    }
    if (T == InvalidBlock) {
      AuditFinding F = finding(
          AuditRule::IrCorrespondence, NB, 0, BB.instructions().front(),
          "inserted block cannot be anchored to an edge of the original "
          "control-flow graph");
      Report.add(std::move(F));
      return;
    }
    const DenseBitVector &AnticT = Antic.In[T];
    const DenseBitVector &AvailFrom = Avail.Out[From];
    for (size_t OI = 0; OI != BB.size(); ++OI) {
      const Instruction &I = BB.instructions()[OI];
      switch (I.Op) {
      case Opcode::Check: {
        ++Report.stats().ChecksAudited;
        if (constTrue(I.Check))
          break;
        if (justifiedAnticipated(AnticT, I.Check)) {
          ++Report.stats().JustifiedAnticipated;
          break;
        }
        if (justifiedAvailable(AvailFrom, I.Check)) {
          ++Report.stats().JustifiedAvailable;
          break;
        }
        AuditFinding F = finding(
            AuditRule::CheckNotJustified, NB, OI, I,
            "check inserted on a split edge is not anticipated at the "
            "edge's target in the original");
        F.Witness.push_back("check: " + checkStr(I.Check));
        Report.add(std::move(F));
        break;
      }
      case Opcode::CondCheck: {
        ++Report.stats().CondChecksAudited;
        AuditFinding F = finding(
            AuditRule::CondCheckNotJustified, NB, OI, I,
            "conditional check in a split block, outside any preheader");
        Report.add(std::move(F));
        break;
      }
      case Opcode::Trap: {
        ++Report.stats().TrapsAudited;
        bool Found = false;
        AnticT.forEachSetBit([&](size_t Bit) {
          if (constFalse(
                  OrigCtx.universe().check(static_cast<CheckID>(Bit))))
            Found = true;
        });
        if (!Found) {
          AuditFinding F = finding(
              AuditRule::TrapNotJustified, NB, OI, I,
              "trap in a split block without a statically-failing check "
              "anticipated at the edge's target");
          Report.add(std::move(F));
        }
        break;
      }
      case Opcode::Jump:
        break;
      default: {
        AuditFinding F = finding(
            AuditRule::IrCorrespondence, NB, OI, I,
            "inserted block contains a non-check computation");
        Report.add(std::move(F));
        break;
      }
      }
    }
  }

  // --- Direction B: no lost traps ----------------------------------------

  /// Enumerates nesting chains of do-loops: [L1..Lt] where each next
  /// loop's preheader lies inside the previous loop. The chains come from
  /// the ORIGINAL loop structure: a trap-truncated body leaves the
  /// optimized latch unreachable and dissolves the loop in the optimized
  /// LoopInfo, yet the surviving loop-control instructions still behave
  /// exactly as the original metadata describes. Nesting depth strictly
  /// increases along a chain, so enumeration terminates.
  void enumerateChains(std::vector<size_t> &Chain,
                       std::vector<std::vector<size_t>> &Out) const {
    Out.push_back(Chain);
    const LoopEnv &Last = EnvOrig[Chain.back()];
    for (size_t M = 0; M != EnvOrig.size(); ++M) {
      if (!EnvOrig[M].L || M == Chain.back())
        continue;
      if (Last.L->contains(EnvOrig[M].DL->Preheader)) {
        Chain.push_back(M);
        enumerateChains(Chain, Out);
        Chain.pop_back();
      }
    }
  }

  /// Transports \p D from the innermost chain loop's body entry out to
  /// the head loop's preheader, substituting index extremes loop by loop.
  /// Completion is not required: at body entry the do-loop header test
  /// already confines each index to its range.
  std::optional<CheckExpr>
  chainTransport(const CheckExpr &D, const std::vector<size_t> &Chain) const {
    CheckExpr Cur = D;
    for (size_t K = Chain.size(); K-- > 0;) {
      std::optional<CheckExpr> T = transportOut(Cur, EnvOrig[Chain[K]], false);
      if (!T)
        return std::nullopt;
      Cur = *T;
    }
    return Cur;
  }

  /// Validates preheader facts over the *optimized* IR from scratch: the
  /// guarded checks actually present, plus checks the loop-entry tests
  /// themselves guarantee. These seed the direction-B availability.
  std::vector<PreheaderFact> collectFacts() {
    std::vector<PreheaderFact> Facts;
    std::unordered_map<BlockID, std::unordered_set<CheckExpr, CheckExprHash>>
        Seen;
    auto addFact = [&](BlockID Body, const CheckExpr &D) {
      if (Seen[Body].insert(D).second) {
        Facts.push_back({Body, D});
        ++Report.stats().FactsValidated;
      }
    };
    std::vector<CheckExpr> Targets;
    for (CheckID C = 0; C != OrigCtx.universe().size(); ++C)
      Targets.push_back(OrigCtx.universe().check(C));

    std::vector<std::vector<size_t>> Chains;
    for (size_t I = 0; I != EnvOrig.size(); ++I)
      if (EnvOrig[I].L) {
        std::vector<size_t> Chain{I};
        enumerateChains(Chain, Chains);
      }

    for (const std::vector<size_t> &Chain : Chains) {
      BlockID Body = EnvOrig[Chain.back()].DL->BodyEntry;
      // Loop-semantics facts: substituting every chained index's extreme
      // leaves a statically-true check, so the header tests alone
      // guarantee D at the innermost body entry.
      for (const CheckExpr &D : Targets)
        if (std::optional<CheckExpr> T = chainTransport(D, Chain))
          if (constTrue(*T))
            addFact(Body, D);
      // Instruction facts: a (guarded) check physically in the head
      // preheader covers D when its payload is as strong as D's
      // transported form and each guard is an entry guard the chain's
      // execution implies.
      BlockID P = EnvOrig[Chain.front()].DL->Preheader;
      if (!DTOpt.dominates(P, Body))
        continue;
      const BasicBlock &PB = *Opt.block(P);
      for (size_t I = 0; I != PB.size(); ++I) {
        const Instruction &Inst = PB.instructions()[I];
        if (!Inst.isRangeCheck())
          continue;
        if (tailDefines(P, I + 1, Inst.Check.expr()))
          continue;
        bool GuardsOk = true;
        for (const CheckExpr &G : Inst.Guards) {
          if (constTrue(G))
            continue;
          if (tailDefines(P, I + 1, G.expr())) {
            GuardsOk = false;
            break;
          }
          bool Match = false;
          for (size_t K = 0; K != Chain.size() && !Match; ++K) {
            if (!(G == EnvOrig[Chain[K]].DL->entryGuard()))
              continue;
            bool Inv = true;
            for (size_t J = 0; J != K; ++J)
              Inv = Inv && exprInvariant(G.expr(), EnvOrig[Chain[J]].Defined);
            Match = Inv;
          }
          if (!Match) {
            GuardsOk = false;
            break;
          }
        }
        if (!GuardsOk)
          continue;
        for (const CheckExpr &D : Targets)
          if (std::optional<CheckExpr> T = chainTransport(D, Chain))
            if (asStrongAs(Inst.Check, *T))
              addFact(Body, D);
      }
    }
    return Facts;
  }

  /// Direction B waiver for induction-variable elimination (Markstein):
  /// an original check inside a do-loop nest whose loop-limit substitution
  /// is compile-time true can never fire, so deleting it loses no trap.
  /// Re-derived purely from the original's loop metadata, independent of
  /// whatever reasoning the optimizer used. Header and latch blocks are
  /// excluded per loop: there the loop variables are outside the [first,
  /// last] iteration range the substitution speaks for.
  bool loopLimitAlwaysPasses(BlockID B, const CheckExpr &C) const {
    CheckExpr Cur = C;
    for (const Loop *L : LIOrig.loopsInnermostFirst()) {
      if (L->DoLoopIndex < 0 || !L->contains(B))
        continue;
      const LoopEnv &Env = EnvOrig[static_cast<size_t>(L->DoLoopIndex)];
      if (!Env.L)
        continue;
      if (exprInvariant(Cur.expr(), Env.Defined))
        continue;
      if (B == Env.DL->Header || B == Env.DL->Latch)
        return false;
      std::optional<CheckExpr> T = transportOut(Cur, Env, false);
      if (!T)
        return false;
      Cur = *T;
      if (constTrue(Cur))
        return true;
    }
    return false;
  }

  /// Direction B proper: availability over the optimized IR (seeded with
  /// validated facts) must cover every original check at its gap.
  void auditCoverage() {
    std::vector<PreheaderFact> Facts = collectFacts();
    CheckContext BCtx(Opt, ImplicationMode::All, Facts);
    if (Opts.LintCig)
      lintCheckImplicationGraph(BCtx.universe(), BCtx.cig(), Opt.name(),
                                Report);
    DataflowResult BAvail = BCtx.solveAvailability();
    for (BlockID B = 0; B != Orig.numBlocks(); ++B) {
      if (!BlockOk[B])
        continue; // correspondence already broken; findings exist
      if (!DTOpt.isReachable(B)) {
        // Every optimized path towards this block traps first (folding a
        // compile-time-false check into a Trap truncates its block and can
        // sever whole regions): the original can only reach these checks
        // along paths on which the optimized program has already trapped,
        // so the obligation is vacuous. Direction A audits that trap.
        for (const Instruction &D : Orig.block(B)->instructions())
          if (D.Op == Opcode::Check)
            ++Report.stats().OriginalChecksCovered;
        continue;
      }
      // Availability at the end of each optimized gap.
      std::vector<DenseBitVector> AvailEnd;
      DenseBitVector Cur = BAvail.In[B];
      Cur |= BCtx.genInBits(B);
      const BasicBlock &PB = *Opt.block(B);
      for (size_t I = 0; I != PB.size(); ++I) {
        const Instruction &Inst = PB.instructions()[I];
        if (!Inst.isRangeCheck())
          AvailEnd.push_back(Cur);
        BCtx.applyKill(Inst, Cur);
        BCtx.applyAvailGen(B, I, Inst, Cur);
      }
      const BasicBlock &OB = *Orig.block(B);
      size_t G = 0;
      for (size_t Idx = 0; Idx != OB.size(); ++Idx) {
        const Instruction &D = OB.instructions()[Idx];
        if (!D.isRangeCheck()) {
          ++G;
          continue;
        }
        if (D.Op != Opcode::Check)
          continue; // the original carries only plain checks
        if (constTrue(D.Check)) {
          ++Report.stats().OriginalChecksCovered;
          continue;
        }
        if (TrapGap[B] != NoTrap && G >= TrapGap[B]) {
          // The optimized program traps before this point on every path
          // that reaches it; the obligation is vacuous.
          ++Report.stats().OriginalChecksCovered;
          continue;
        }
        bool Found = false;
        if (G < AvailEnd.size())
          AvailEnd[G].forEachSetBit([&](size_t Bit) {
            if (!Found && asStrongAs(BCtx.universe().check(
                                         static_cast<CheckID>(Bit)),
                                     D.Check))
              Found = true;
          });
        if (Found) {
          ++Report.stats().OriginalChecksCovered;
          continue;
        }
        if (intervals().at(B, Idx) == IntervalVerdict::AlwaysPasses) {
          // Interval analysis certifies, independently of the optimizer,
          // that the check could never fire in the first place.
          ++Report.stats().IntervalDischarged;
          ++Report.stats().OriginalChecksCovered;
          continue;
        }
        if (loopLimitAlwaysPasses(B, D.Check)) {
          ++Report.stats().LimitDischarged;
          ++Report.stats().OriginalChecksCovered;
          continue;
        }
        AuditFinding F = finding(
            AuditRule::LostCheck, B, Idx, D,
            "no as-strong-or-stronger optimized check is performed on "
            "every path to this original check");
        F.Witness.push_back("check: " + checkStr(D.Check));
        Report.add(std::move(F));
      }
    }
  }

  static constexpr size_t NoTrap = ~size_t(0);
};

} // namespace

void nascent::auditFunctionPair(Function &Original, Function &Optimized,
                                const AuditOptions &Opts,
                                AuditReport &Report) {
  Original.recomputePreds();
  Optimized.recomputePreds();
  PairAuditor A(Original, Optimized, Opts, Report);
  A.run();
}

AuditReport nascent::auditModulePair(Module &Original, Module &Optimized,
                                     const AuditOptions &Opts) {
  AuditReport Report;
  for (Function *F : Original.functions()) {
    Function *O = Optimized.function(F->name());
    if (!O) {
      AuditFinding Missing;
      Missing.Rule = AuditRule::IrCorrespondence;
      Missing.FunctionName = F->name();
      Missing.Scheme = placementSchemeName(Opts.Scheme);
      Missing.Message = "function missing from the optimized module";
      Report.add(std::move(Missing));
      continue;
    }
    auditFunctionPair(*F, *O, Opts, Report);
  }
  for (Function *F : Optimized.functions())
    if (!Original.function(F->name())) {
      AuditFinding Extra;
      Extra.Rule = AuditRule::IrCorrespondence;
      Extra.FunctionName = F->name();
      Extra.Scheme = placementSchemeName(Opts.Scheme);
      Extra.Message = "function absent from the original module";
      Report.add(std::move(Extra));
    }
  return Report;
}

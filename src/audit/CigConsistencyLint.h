//===----------------------------------------------------------------------===//
///
/// \file
/// Consistency lint for the check universe and implication graph: the
/// auditor's guarantee that the data structures every data-flow gen/kill
/// set is derived from are themselves well formed. Three properties are
/// checked (see docs/audit.md):
///
///  1. No negative-weight asymmetry: implication edges must not form a
///     cycle with negative total weight, which would let the as-strong-as
///     query "strengthen" a check by going around the cycle.
///  2. Family total order: members of each family share the family's
///     range-expression, carry no constant part, and are strictly
///     ascending by bound (the within-family strength order).
///  3. Kill-set completeness: every check is reachable through the
///     by-symbol index for each symbol of its range-expression, so a
///     definition of any such symbol kills the check.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_AUDIT_CIGCONSISTENCYLINT_H
#define NASCENT_AUDIT_CIGCONSISTENCYLINT_H

#include "audit/AuditReport.h"
#include "checks/CheckImplicationGraph.h"
#include "checks/CheckUniverse.h"

namespace nascent {

/// Lints \p U and \p CIG, appending any violation to \p Report. Returns
/// the number of findings added. \p Where labels findings (e.g. the
/// function name).
size_t lintCheckImplicationGraph(const CheckUniverse &U,
                                 const CheckImplicationGraph &CIG,
                                 const std::string &Where,
                                 AuditReport &Report);

} // namespace nascent

#endif // NASCENT_AUDIT_CIGCONSISTENCYLINT_H

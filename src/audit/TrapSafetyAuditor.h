//===----------------------------------------------------------------------===//
///
/// \file
/// The trap-safety auditor: a static soundness analysis over optimized
/// check placements. Given the (original, optimized) IR pair of one
/// function it proves the paper's two obligations independently of the
/// optimizer that produced the pair:
///
///  Direction A — no new traps. Every residual check at point p must be
///  (a) anticipated at p in the original (inserting it cannot trap on any
///  path the original would not), (b) a guarded preheader check whose
///  guard chain and loop-limit substitution are reconstructible from the
///  original's do-loop metadata and anticipatability, or (c) implied — in
///  the as-strong-as order — by a check the original performs on every
///  path to p (so it can never fire first). Trap instructions need an
///  original check proved to always fail at that point.
///
///  Direction B — no lost traps. On every path to an original check, the
///  optimized program must perform an as-strong-or-stronger check first:
///  availability over the optimized IR, seeded with *validated* preheader
///  facts, must cover every original check at its corresponding point.
///  Deletions discharged by value-range analysis (scheme AI) are certified
///  by re-running the interval classifier on the original.
///
/// Block ids are stable under the optimizer (it only appends split
/// blocks), which is what lets the auditor map program points across the
/// pair by counting non-check instructions ("gaps") per block.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_AUDIT_TRAPSAFETYAUDITOR_H
#define NASCENT_AUDIT_TRAPSAFETYAUDITOR_H

#include "audit/AuditReport.h"
#include "ir/Function.h"
#include "opt/RangeCheckOptimizer.h"

namespace nascent {

/// Auditor configuration.
struct AuditOptions {
  /// Scheme that produced the optimized IR; recorded in findings.
  PlacementScheme Scheme = PlacementScheme::LLS;
  /// Also lint the check universe / implication graph (rules cig/*).
  bool LintCig = true;
};

/// Audits one (original, optimized) function pair, appending findings to
/// \p Report. Both functions' predecessor lists are recomputed (the only
/// mutation). The pair must stem from the same lowering: the original is
/// a pre-optimization clone (see PipelineOptions::Audit).
void auditFunctionPair(Function &Original, Function &Optimized,
                       const AuditOptions &Opts, AuditReport &Report);

/// Audits every function of the pair of modules, matched by name. A
/// function present in only one module is itself a finding.
AuditReport auditModulePair(Module &Original, Module &Optimized,
                            const AuditOptions &Opts = {});

} // namespace nascent

#endif // NASCENT_AUDIT_TRAPSAFETYAUDITOR_H

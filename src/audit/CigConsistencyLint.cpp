#include "audit/CigConsistencyLint.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

using namespace nascent;

namespace {

AuditFinding makeFinding(AuditRule Rule, const std::string &Where,
                         std::string Message) {
  AuditFinding F;
  F.Rule = Rule;
  F.Severity = AuditSeverity::Error;
  F.FunctionName = Where;
  F.Message = std::move(Message);
  return F;
}

} // namespace

size_t nascent::lintCheckImplicationGraph(const CheckUniverse &U,
                                          const CheckImplicationGraph &CIG,
                                          const std::string &Where,
                                          AuditReport &Report) {
  size_t Before = Report.numFindings();

  // --- 2. family total order -------------------------------------------
  for (FamilyID F = 0; F != U.numFamilies(); ++F) {
    const LinearExpr &Expr = U.familyExpr(F);
    const std::vector<CheckID> &Members = U.familyMembers(F);
    int64_t PrevBound = 0;
    bool HavePrev = false;
    for (CheckID C : Members) {
      const CheckExpr &CE = U.check(C);
      if (CE.expr() != Expr)
        Report.add(makeFinding(
            AuditRule::CigFamilyOrder, Where,
            "family " + std::to_string(F) +
                " member's range-expression differs from the family's"));
      if (CE.expr().constantPart() != 0)
        Report.add(makeFinding(AuditRule::CigFamilyOrder, Where,
                               "family " + std::to_string(F) +
                                   " member carries a constant part"));
      if (U.familyOf(C) != F)
        Report.add(makeFinding(AuditRule::CigFamilyOrder, Where,
                               "family " + std::to_string(F) +
                                   " member maps back to another family"));
      if (HavePrev && CE.bound() <= PrevBound)
        Report.add(makeFinding(
            AuditRule::CigFamilyOrder, Where,
            "family " + std::to_string(F) +
                " members are not strictly ascending by bound (" +
                std::to_string(PrevBound) + " then " +
                std::to_string(CE.bound()) + ")"));
      PrevBound = CE.bound();
      HavePrev = true;
    }
  }

  // --- 3. kill-set completeness ----------------------------------------
  for (CheckID C = 0; C != U.size(); ++C) {
    for (const auto &[Sym, Coeff] : U.check(C).expr().terms()) {
      (void)Coeff;
      const std::vector<CheckID> &Users = U.checksUsingSymbol(Sym);
      if (std::find(Users.begin(), Users.end(), C) == Users.end())
        Report.add(makeFinding(
            AuditRule::CigKillSet, Where,
            "check " + std::to_string(C) +
                " is missing from the kill index of symbol " +
                std::to_string(Sym) +
                "; a definition of that symbol would not kill it"));
    }
  }

  // --- 1. negative-weight asymmetry ------------------------------------
  // Bellman-Ford over the family nodes that appear on edges. Implication
  // edges say "as strong as, up to a bound shift"; a cycle with negative
  // total weight would prove a check strictly stronger than itself.
  std::vector<std::tuple<FamilyID, FamilyID, int64_t>> Edges;
  std::map<FamilyID, size_t> NodeIndex;
  CIG.forEachEdge([&](FamilyID From, FamilyID To, int64_t W) {
    Edges.emplace_back(From, To, W);
    NodeIndex.emplace(From, NodeIndex.size());
    NodeIndex.emplace(To, NodeIndex.size());
  });
  if (!Edges.empty()) {
    size_t N = NodeIndex.size();
    std::vector<int64_t> Dist(N, 0); // all-zero start finds any neg cycle
    for (size_t Round = 0; Round + 1 < N; ++Round) {
      bool Any = false;
      for (const auto &[From, To, W] : Edges) {
        int64_t Cand = Dist[NodeIndex[From]] + W;
        if (Cand < Dist[NodeIndex[To]]) {
          Dist[NodeIndex[To]] = Cand;
          Any = true;
        }
      }
      if (!Any)
        break;
    }
    for (const auto &[From, To, W] : Edges)
      if (Dist[NodeIndex[From]] + W < Dist[NodeIndex[To]]) {
        Report.add(makeFinding(
            AuditRule::CigNegativeCycle, Where,
            "implication edges form a negative-weight cycle through "
            "families " +
                std::to_string(From) + " -> " + std::to_string(To) +
                " (weight " + std::to_string(W) +
                "); the as-strong-as relation is unsound"));
        break; // one finding per graph is enough
      }
  }

  return Report.numFindings() - Before;
}

#include "suite/Suite.h"

using namespace nascent;

namespace nascent {
namespace suite_sources {
extern const char *VortexSource;
extern const char *Arc2dSource;
extern const char *BdnaSource;
extern const char *DyfesmSource;
extern const char *MdgSource;
extern const char *QcdSource;
extern const char *Spec77Source;
extern const char *TrfdSource;
extern const char *LinpackdSource;
extern const char *SimpleSource;
} // namespace suite_sources
} // namespace nascent

const std::vector<SuiteProgram> &nascent::benchmarkSuite() {
  using namespace suite_sources;
  static const std::vector<SuiteProgram> Programs = {
      {"vortex", "Mendez", VortexSource},
      {"arc2d", "Perfect", Arc2dSource},
      {"bdna", "Perfect", BdnaSource},
      {"dyfesm", "Perfect", DyfesmSource},
      {"mdg", "Perfect", MdgSource},
      {"qcd", "Perfect", QcdSource},
      {"spec77", "Perfect", Spec77Source},
      {"trfd", "Perfect", TrfdSource},
      {"linpackd", "Riceps", LinpackdSource},
      {"simple", "Riceps", SimpleSource},
  };
  return Programs;
}

const SuiteProgram *nascent::findSuiteProgram(const std::string &Name) {
  for (const SuiteProgram &P : benchmarkSuite())
    if (Name == P.Name)
      return &P;
  return nullptr;
}

size_t nascent::countSourceLines(const char *Source) {
  size_t Lines = 0;
  bool NonEmpty = false;
  for (const char *P = Source; *P; ++P) {
    if (*P == '\n') {
      if (NonEmpty)
        ++Lines;
      NonEmpty = false;
    } else if (*P != ' ' && *P != '\t' && *P != '\r') {
      NonEmpty = true;
    }
  }
  if (NonEmpty)
    ++Lines;
  return Lines;
}

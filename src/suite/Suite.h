//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite: ten mini-Fortran programs named after the paper's
/// Perfect/Riceps/Mendez selection (Table 1). The original codes and
/// their reference inputs are not redistributable, so each program here
/// is written from scratch to match the *structural* properties that
/// drive range-check behaviour — stencil reuse, triangular loops,
/// indirect gathers, mod-indexed lattices, LU factorisation with
/// subroutine kernels — as catalogued in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef NASCENT_SUITE_SUITE_H
#define NASCENT_SUITE_SUITE_H

#include <cstddef>
#include <string>
#include <vector>

namespace nascent {

/// One benchmark program.
struct SuiteProgram {
  const char *Name;   ///< paper program name (vortex, arc2d, ...)
  const char *Origin; ///< paper suite name (Mendez, Perfect, Riceps)
  const char *Source; ///< mini-Fortran source text
};

/// The ten programs, in the paper's Table 1 order.
const std::vector<SuiteProgram> &benchmarkSuite();

/// Finds a suite program by name; null when absent.
const SuiteProgram *findSuiteProgram(const std::string &Name);

/// Number of non-empty source lines (Table 1's "lines" column).
size_t countSourceLines(const char *Source);

} // namespace nascent

#endif // NASCENT_SUITE_SUITE_H

//===----------------------------------------------------------------------===//
///
/// \file
/// Suite programs 6-10: qcd, spec77, trfd, linpackd, simple. See Suite.h
/// for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

namespace nascent {
namespace suite_sources {

/// qcd (Perfect): lattice gauge theory. Periodic neighbours are computed
/// with mod, which is not affine: neighbour subscripts computed in the
/// outer loop hoist only one level, and those computed in the inner loop
/// not at all -- qcd keeps the largest residual of the suite, as in the
/// paper's Table 2.
const char *QcdSource = R"FTN(
program qcd
  integer n, i, j, s, steps, ip, im, jp
  real u1(28, 28), u2(28, 28), act(28, 28)
  real staple, beta, accum

  n = input(24)
  steps = input(3)
  beta = 0.25

  do i = 1, n
    do j = 1, n
      u1(i, j) = real(mod(i * 3 + j * 5, 9)) * 0.2
      u2(i, j) = real(mod(i * 5 + j * 3, 7)) * 0.3
      act(i, j) = 0.0
    end do
  end do

  do s = 1, steps
    do i = 1, n
      ip = mod(i, n) + 1
      im = mod(i + n - 2, n) + 1
      do j = 1, n
        jp = mod(j, n) + 1
        staple = u1(ip, j) * u2(i, jp) - u1(im, j) * u2(i, j)
        act(i, j) = act(i, j) + beta * staple
        u1(i, j) = u1(i, j) + beta * (u2(i, j) - staple) * 0.1
        u2(i, j) = u2(i, j) - beta * (u1(i, j) + staple) * 0.1
        act(i, j) = act(i, j) * 0.999 + (u1(i, j) + u2(i, j)) * 0.001
      end do
    end do
  end do

  accum = 0.0
  do i = 1, n
    do j = 1, n
      accum = accum + act(i, j) + u1(i, j)
    end do
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// spec77 (Perfect): spectral weather model. Triangular wavenumber loops
/// whose packed subscripts are quadratic (not hoistable), Legendre-style
/// recurrences, and strided butterfly loops with coefficient-2 subscripts
/// (hoistable by loop-limit substitution).
const char *Spec77Source = R"FTN(
program spec77
  integer mm, m, n2, k, j, s, steps, pass, ind, half
  real coef(600), work(70), tt(70), leg(34)
  real accum

  mm = input(20)
  half = input(32)
  steps = input(3)

  do k = 1, 600
    coef(k) = real(mod(k * 7, 23)) * 0.04
  end do
  do k = 1, 70
    work(k) = 0.0
    tt(k) = real(mod(k * 3, 11)) * 0.2
  end do

  do s = 1, steps
    ! Triangular spectral sum with packed quadratic subscripts: these
    ! computed indices resist hoisting and form spec77's residual.
    do m = 1, mm
      leg(m) = 0.0
      do n2 = m, mm
        ind = (n2 * (n2 - 1)) / 2 + m
        leg(m) = leg(m) + coef(ind) * tt(n2) + coef(ind) * 0.001 - tt(n2) * leg(m) * 0.0001 + coef(ind) * tt(n2) * 0.00001
      end do
    end do
    ! Legendre-style recurrence (linear subscripts, heavy reuse).
    do m = 3, mm
      leg(m) = 0.3 * leg(m) + 0.4 * leg(m - 1) - 0.2 * leg(m - 2) + 0.01 * (leg(m - 1) - leg(m - 2))
    end do
    ! Repeated butterfly passes with stride-2 subscripts.
    do pass = 1, 6
      do j = 1, half
        work(2 * j - 1) = tt(2 * j - 1) + tt(2 * j)
        work(2 * j) = tt(2 * j - 1) - tt(2 * j)
      end do
      do j = 1, half
        tt(2 * j - 1) = work(2 * j - 1) * 0.5 + work(2 * j) * 0.25 + tt(2 * j - 1) * 0.001
        tt(2 * j) = work(2 * j) * 0.5 - work(2 * j - 1) * 0.25 + tt(2 * j) * 0.001
      end do
      ! Grid-space smoothing with reuse across both halves; the limiter
      ! branch touches work(j) on one path only, so the stores after the
      ! join are partially redundant.
      do j = 2, half - 1
        work(j) = 0.25 * (tt(j - 1) + tt(j + 1)) + 0.5 * tt(j) + 0.125 * (tt(j - 1) - tt(j + 1))
        if (work(j) > 4.0) then
          work(j) = 4.0
        end if
        tt(j + half) = work(j) * 0.9 + tt(j + half) * 0.1
      end do
    end do
    ! Fold the spectral sums back into the grid coefficients (linear row
    ! offsets, hoistable).
    do m = 1, mm
      do n2 = 1, mm
        coef(m * 20 + n2) = coef(m * 20 + n2) * 0.99 + leg(m) * 0.01 + tt(n2) * 0.001
      end do
    end do
  end do

  accum = 0.0
  do m = 1, mm
    accum = accum + leg(m) + tt(m)
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// trfd (Perfect): two-electron integral transformation. Triangular index
/// loops with running accumulators (ij = ij + 1) and offsets that are
/// recomputed inside loops yet loop-invariant in value -- the pattern
/// where induction-variable analysis (INX checks) detects invariance and
/// linearity that the syntactic PRX checks miss.
const char *TrfdSource = R"FTN(
program trfd
  integer norb, p, q2, k, ij, base, off, ia, s, steps
  real xin(600), xout(600), vec(40), tmp(40)
  real acc, accum

  norb = input(30)
  steps = input(3)

  do k = 1, 600
    xin(k) = real(mod(k * 13, 31)) * 0.05
    xout(k) = 0.0
  end do
  do k = 1, 40
    vec(k) = real(mod(k * 3, 7)) * 0.25
    tmp(k) = 0.0
  end do

  do s = 1, steps
    ! Triangular transform over packed rows: the row offset is computed
    ! once per row, so the packed subscript off + q2 stays linear in the
    ! inner index.
    do p = 1, norb
      off = (p * (p - 1)) / 2
      do q2 = 1, p
        xout(off + q2) = xout(off + q2) + xin(off + q2) * vec(p) * vec(q2)
        xin(off + q2) = xin(off + q2) * 0.999 + xout(off + q2) * 0.0001 + vec(p) * vec(q2) * 0.00001
      end do
    end do
    ! A second pass driven by a running accumulator subscript: only
    ! induction-variable analysis can see that ij is linear.
    ij = 0
    do p = 1, norb
      do q2 = 1, min(p, 6)
        ij = ij + 1
        tmp(q2) = tmp(q2) + xout(ij) * 0.001
      end do
    end do
    ! Offsets recomputed inside the loop but invariant in value: the
    ! subscript base + p is invariant-detectable only through induction
    ! expressions, while ia + k is plainly linear.
    do p = 1, norb
      acc = 0.0
      ia = (s - 1) * norb
      do k = 1, norb
        acc = acc + xin(ia + k) * vec(k) + xin(ia + k) * 0.001 - vec(k) * 0.0001
      end do
      ! The offset is recomputed every iteration, yet its value is loop
      ! invariant: only the induction-expression form of the check can be
      ! hoisted (the syntactic check is killed by the assignment to base).
      do k = 1, 8
        base = s * 30 - 30
        acc = acc + xout(base + p) * 0.001 + xout(base + p) * 0.0001
      end do
      tmp(p) = acc * 0.5 + tmp(p)
    end do
    ! Dense sweep, fully linear.
    do k = 1, norb
      vec(k) = vec(k) * 0.9 + tmp(k) * 0.1
    end do
  end do

  accum = 0.0
  do k = 1, norb
    accum = accum + vec(k) + tmp(k)
  end do
  do k = 1, 465
    accum = accum + xout(k)
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// linpackd (Riceps): LU factorisation and solve with the classic BLAS-1
/// kernels as subroutines (column scaling, axpy updates, max search); the
/// compute lives inside callees whose loop bounds arrive as by-value
/// scalar parameters.
const char *LinpackdSource = R"FTN(
program linpackd
  integer n, i, j, k, rep
  real a(40, 40), b(40), x(40)
  real accum

  n = input(36)

  do rep = 1, 2
    do i = 1, n
      do j = 1, n
        a(i, j) = real(mod(i * 17 + j * 23, 29)) * 0.04
      end do
      a(i, i) = a(i, i) + 8.0
      b(i) = real(mod(i * 5, 11)) * 0.3
    end do
    call dgefa(a, n)
    call dgesl(a, b, n)
    do i = 1, n
      x(i) = b(i)
    end do
    call dmxpy(a, x, b, n)
  end do

  accum = 0.0
  do i = 1, n
    accum = accum + x(i)
  end do
  print accum
end program

subroutine dgefa(a, n)
  real a(40, 40), t
  integer n, j, k
  do k = 1, n - 1
    call dscalcol(a, k, n)
    do j = k + 1, n
      t = a(k, j)
      call daxpycol(a, k, j, t, n)
    end do
  end do
end subroutine

! Scale the subdiagonal of column k by -1/pivot.
subroutine dscalcol(a, k, n)
  real a(40, 40), piv
  integer n, k, i
  piv = a(k, k)
  if (abs(piv) < 0.0001) then
    piv = 1.0
  end if
  do i = k + 1, n
    a(i, k) = 0.0 - a(i, k) / piv
  end do
end subroutine

! Column axpy: a(i,j) = a(i,j) + t * a(i,k) below the diagonal.
subroutine daxpycol(a, k, j, t, n)
  real a(40, 40), t
  integer n, k, j, i
  do i = k + 1, n
    a(i, j) = a(i, j) + t * a(i, k)
  end do
end subroutine

! Dense matrix-vector accumulate, the verification kernel of linpack.
subroutine dmxpy(a, xx, yy, n)
  real a(40, 40), xx(40), yy(40)
  integer n, i, j
  do j = 1, n
    do i = 1, n
      yy(i) = yy(i) + a(i, j) * xx(j) + xx(j) * 0.0001 - a(i, j) * 0.00001
    end do
  end do
end subroutine

subroutine dgesl(a, b, n)
  real a(40, 40), b(40), t
  integer n, k, i
  ! Forward elimination using the stored multipliers.
  do k = 1, n - 1
    t = b(k)
    do i = k + 1, n
      b(i) = b(i) + t * a(i, k)
    end do
  end do
  ! Back substitution.
  do k = n, 1, -1
    b(k) = b(k) / a(k, k)
    t = b(k)
    do i = 1, k - 1
      b(i) = b(i) - t * a(i, k)
    end do
  end do
end subroutine

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// simple (Riceps): 2D Lagrangian hydrodynamics. Large stencil sweeps
/// with very heavy subscript reuse (the highest plain-redundancy numbers
/// of the suite) plus an equation-of-state table lookup whose computed
/// integer index resists hoisting.
const char *SimpleSource = R"FTN(
program simple
  integer n, i, j, s, steps, k
  real r(38, 38), z(38, 38), p(38, 38), e(38, 38), qq(38, 38)
  real tab(50)
  real dt, accum

  n = input(34)
  steps = input(3)
  dt = 0.02

  do i = 1, n
    do j = 1, n
      r(i, j) = real(i) + 0.1 * real(mod(j * 3, 7))
      z(i, j) = real(j) + 0.1 * real(mod(i * 5, 9))
      e(i, j) = real(mod(i + j, 13)) * 0.15 + 1.0
      p(i, j) = 0.0
      qq(i, j) = 0.0
    end do
  end do
  do k = 1, 50
    tab(k) = real(k) * 0.02
  end do

  do s = 1, steps
    ! Equation of state via table lookup (computed index: residual).
    do i = 2, n - 1
      do j = 2, n - 1
        k = int(e(i, j) * 4.0) + 1
        if (k > 50) then
          k = 50
        end if
        if (k < 1) then
          k = 1
        end if
        p(i, j) = tab(k) * e(i, j)
      end do
    end do
    ! Artificial viscosity with full stencil reuse.
    do i = 2, n - 1
      do j = 2, n - 1
        qq(i, j) = 0.25 * (p(i - 1, j) + p(i + 1, j) + p(i, j - 1) + p(i, j + 1)) - p(i, j) + 0.125 * (e(i - 1, j) + e(i + 1, j) + e(i, j - 1) + e(i, j + 1))
      end do
    end do
    ! Coordinate motion.
    do i = 2, n - 1
      do j = 2, n - 1
        r(i, j) = r(i, j) + dt * (qq(i, j) - qq(i - 1, j)) * 0.5
        z(i, j) = z(i, j) + dt * (qq(i, j) - qq(i, j - 1)) * 0.5
      end do
    end do
    ! Energy and pressure updates with reuse of both operands.
    do i = 2, n - 1
      do j = 2, n - 1
        e(i, j) = e(i, j) - dt * p(i, j) * (qq(i, j) + qq(i, j)) * 0.01 + dt * (r(i, j) - z(i, j)) * 0.001
        p(i, j) = p(i, j) * 0.999 + qq(i, j) * 0.001 + e(i, j) * 0.0001
      end do
    end do
  end do

  accum = 0.0
  do i = 1, n
    do j = 1, n
      accum = accum + e(i, j) + p(i, j) + r(i, j)
    end do
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

} // namespace suite_sources
} // namespace nascent

//===----------------------------------------------------------------------===//
///
/// \file
/// Suite programs 1-5: vortex, arc2d, bdna, dyfesm, mdg. See Suite.h for
/// the substitution rationale; each program reproduces the structural mix
/// (stencils, ADI sweeps, neighbour lists, FEM gather/scatter, pair
/// interactions) that shapes the corresponding paper program's checks.
///
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

namespace nascent {
namespace suite_sources {

/// vortex (Mendez): 2D vortex dynamics. Relaxation + velocity + advection
/// stencil sweeps inside a time-step while loop. Heavy subscript reuse in
/// each statement gives high plain-redundancy elimination; everything is
/// linear, so loop-limit substitution removes nearly all checks.
const char *VortexSource = R"FTN(
program vortex
  integer nx, ny, nsteps, step, i, j
  real psi(42, 42), vor(42, 42), uu(42, 42), vv(42, 42), ww(42, 42)
  real dt, c, accum

  nx = input(40)
  ny = input(40)
  nsteps = input(5)
  dt = 0.05
  c = 0.25

  do i = 1, nx
    do j = 1, ny
      vor(i, j) = real(mod(i * 7 + j * 3, 11)) * 0.1
      psi(i, j) = 0.0
      uu(i, j) = 0.0
      vv(i, j) = 0.0
      ww(i, j) = 0.0
    end do
  end do

  step = 1
  while (step <= nsteps) do
    ! Poisson relaxation sweep for the stream function.
    do i = 2, nx - 1
      do j = 2, ny - 1
        psi(i, j) = c * (psi(i - 1, j) + psi(i + 1, j) + psi(i, j - 1) + psi(i, j + 1) + vor(i, j))
      end do
    end do
    ! Velocities from the stream function.
    do i = 2, nx - 1
      do j = 2, ny - 1
        uu(i, j) = 0.5 * (psi(i, j + 1) - psi(i, j - 1))
        vv(i, j) = 0.0 - 0.5 * (psi(i + 1, j) - psi(i - 1, j))
        ww(i, j) = uu(i, j) * uu(i, j) + vv(i, j) * vv(i, j)
        psi(i, j) = psi(i, j) * 0.9999 + ww(i, j) * 0.00001
      end do
    end do
    ! Advect the vorticity.
    do i = 2, nx - 1
      do j = 2, ny - 1
        vor(i, j) = vor(i, j) - dt * (uu(i, j) * (vor(i + 1, j) - vor(i - 1, j)) + vv(i, j) * (vor(i, j + 1) - vor(i, j - 1)))
      end do
    end do
    step = step + 1
  end while

  accum = 0.0
  do i = 1, nx
    do j = 1, ny
      accum = accum + vor(i, j) + ww(i, j)
    end do
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// arc2d (Perfect): implicit finite-difference fluid code. Alternating
/// direction sweeps with tridiagonal solves along rows and columns,
/// including backward (step -1) substitution loops.
const char *Arc2dSource = R"FTN(
program arc2d
  integer n, i, j, k, sweep, nsweeps
  real q(36, 36), rhs(36, 36)
  real aa(36), bb(36), cc(36), dd(36), xx(36)
  real w, checksum

  n = input(32)
  nsweeps = 3

  do i = 1, n
    do j = 1, n
      q(i, j) = real(mod(i * 5 + j * 11, 17)) * 0.25
      rhs(i, j) = real(mod(i + j, 7)) * 0.5
    end do
  end do

  do sweep = 1, nsweeps
    ! Row direction: one tridiagonal solve per row.
    do i = 1, n
      do k = 1, n
        aa(k) = 1.0
        cc(k) = 1.0
        bb(k) = 4.0
        dd(k) = rhs(i, k) + q(i, k)
      end do
      do k = 2, n
        w = aa(k) / bb(k - 1)
        bb(k) = bb(k) - w * cc(k - 1)
        dd(k) = dd(k) - w * dd(k - 1)
      end do
      xx(n) = dd(n) / bb(n)
      do k = n - 1, 1, -1
        xx(k) = (dd(k) - cc(k) * xx(k + 1)) / bb(k)
      end do
      do k = 1, n
        q(i, k) = xx(k) * 0.999 + q(i, k) * 0.001
      end do
    end do
    ! Column direction.
    do j = 1, n
      do k = 1, n
        aa(k) = 1.0
        cc(k) = 1.0
        bb(k) = 4.0
        dd(k) = rhs(k, j) + q(k, j)
      end do
      do k = 2, n
        w = aa(k) / bb(k - 1)
        bb(k) = bb(k) - w * cc(k - 1)
        dd(k) = dd(k) - w * dd(k - 1)
      end do
      xx(n) = dd(n) / bb(n)
      do k = n - 1, 1, -1
        xx(k) = (dd(k) - cc(k) * xx(k + 1)) / bb(k)
      end do
      do k = 1, n
        q(k, j) = xx(k) * 0.999 + q(k, j) * 0.001
      end do
    end do
    ! Smoothing stencil with reuse.
    do i = 2, n - 1
      do j = 2, n - 1
        rhs(i, j) = 0.25 * (q(i - 1, j) + q(i + 1, j) + q(i, j - 1) + q(i, j + 1)) - q(i, j)
      end do
    end do
  end do

  checksum = 0.0
  do i = 1, n
    do j = 1, n
      checksum = checksum + q(i, j)
    end do
  end do
  print checksum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// bdna (Perfect): molecular dynamics of nucleic acids. Builds per-atom
/// neighbour lists, then gathers forces through the list: the gathered
/// subscript is a loaded value, so its checks cannot be hoisted and form
/// the residual that keeps bdna below the near-total elimination of the
/// purely linear codes.
const char *BdnaSource = R"FTN(
program bdna
  integer n, i, j, k, cnt, steps, s
  real x(96), y(96), f(96), q(96)
  integer list(96)
  real dx, dy, r2, ee, de, cut, accum

  n = input(88)
  steps = input(2)
  cut = 40.0

  do i = 1, n
    x(i) = real(mod(i * 13, 97)) * 0.31
    y(i) = real(mod(i * 29, 83)) * 0.17
    q(i) = real(mod(i, 5)) * 0.2 + 0.1
    f(i) = 0.0
  end do

  do s = 1, steps
    do i = 1, n
      ! Pairwise energies with the heavy operand reuse of the real MD
      ! inner loops, and the neighbour list of atom i.
      cnt = 0
      do j = 1, n
        dx = x(i) - x(j)
        dy = y(i) - y(j)
        r2 = dx * dx + dy * dy + 0.01
        ee = q(i) * q(j) / r2
        de = ee * (x(i) + y(i) - x(j) - y(j)) * 0.001
        f(i) = f(i) + ee * dx - de + q(i) * 0.0001 - q(j) * 0.0001
        if (r2 < cut and i /= j) then
          cnt = cnt + 1
          list(cnt) = j
        end if
      end do
      ! Gather forces through the list (indirect subscripts).
      do k = 1, cnt
        f(i) = f(i) + q(list(k)) / (1.0 + real(k))
      end do
    end do
    ! Position update, fully linear.
    do i = 1, n
      x(i) = x(i) + f(i) * 0.001
      y(i) = y(i) - f(i) * 0.001
    end do
  end do

  accum = 0.0
  do i = 1, n
    accum = accum + f(i)
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// dyfesm (Perfect): structural dynamics finite-element solver. Element
/// loops gather nodal displacements through a connectivity table, apply a
/// small dense element kernel, and scatter forces back; subscripts are
/// mostly distinct, so plain redundancy elimination removes less than in
/// the stencil codes, mirroring the paper's low NI number for dyfesm.
const char *DyfesmSource = R"FTN(
program dyfesm
  integer nn, ne, e, i, c, s, steps
  real disp(64), force(64), vel(64)
  integer conn(4, 48)
  real el(4), ef(4), stiff(4, 4)
  real checksum

  nn = input(60)
  ne = input(44)
  steps = input(4)

  do e = 1, ne
    do c = 1, 4
      conn(c, e) = mod(e * 3 + c * 7, nn) + 1
    end do
  end do
  do i = 1, nn
    disp(i) = real(mod(i * 11, 13)) * 0.05
    vel(i) = 0.0
    force(i) = 0.0
  end do
  do i = 1, 4
    do c = 1, 4
      stiff(i, c) = 0.1
    end do
    stiff(i, i) = 2.0
  end do

  do s = 1, steps
    do i = 1, nn
      force(i) = 0.0
    end do
    do e = 1, ne
      call gather(conn, disp, el, e)
      call elemkern(stiff, el, ef)
      call solve4(stiff, ef)
      call quad4(el, ef)
      call scatter(conn, force, ef, e)
    end do
    do i = 1, nn
      ! Boundary damping: the branch checks force(i) on one path only,
      ! making the post-join access partially redundant (PRE territory).
      if (mod(i, 4) == 0) then
        force(i) = force(i) * 0.5
      elseif (mod(i, 4) == 1) then
        force(i) = force(i) * 0.9
      end if
      vel(i) = vel(i) + force(i) * 0.002
      disp(i) = disp(i) + vel(i) * 0.002
    end do
  end do

  checksum = 0.0
  do i = 1, nn
    checksum = checksum + disp(i) + force(i)
  end do
  print checksum
end program

subroutine gather(conn, disp, el, e)
  integer conn(4, 48), e, c, nd
  real disp(64), el(4)
  do c = 1, 4
    nd = conn(c, e)
    el(c) = disp(nd)
  end do
end subroutine

subroutine elemkern(stiff, el, ef)
  real stiff(4, 4), el(4), ef(4)
  integer r, c
  do r = 1, 4
    ef(r) = 0.0
    do c = 1, 4
      ef(r) = ef(r) + stiff(r, c) * el(c)
    end do
  end do
end subroutine

! Dense 4x4 Gaussian elimination on a copy of the element matrix; the
! bulk of the per-element linear work, as in the real solver.
subroutine solve4(stiff, rhs4)
  real stiff(4, 4), rhs4(4), mat(4, 4), w
  integer r, c, k
  do r = 1, 4
    do c = 1, 4
      mat(r, c) = stiff(r, c) + 0.0001
    end do
  end do
  do k = 1, 3
    do r = k + 1, 4
      w = mat(r, k) / mat(k, k)
      do c = k, 4
        mat(r, c) = mat(r, c) - w * mat(k, c)
      end do
      rhs4(r) = rhs4(r) - w * rhs4(k)
    end do
  end do
  do k = 4, 1, -1
    do c = k + 1, 4
      rhs4(k) = rhs4(k) - mat(k, c) * rhs4(c)
    end do
    rhs4(k) = rhs4(k) / mat(k, k)
  end do
end subroutine

! Unrolled 4-point quadrature: constant subscripts, whose checks the
! optimizer folds at compile time (the paper's step 5).
subroutine quad4(el, ef)
  real el(4), ef(4), g
  g = 0.5773
  ef(1) = ef(1) + g * (el(1) * 2.0 + el(2) + el(4)) * 0.05
  ef(2) = ef(2) + g * (el(2) * 2.0 + el(1) + el(3)) * 0.05
  ef(3) = ef(3) + g * (el(3) * 2.0 + el(2) + el(4)) * 0.05
  ef(4) = ef(4) + g * (el(4) * 2.0 + el(3) + el(1)) * 0.05
end subroutine

subroutine scatter(conn, force, ef, e)
  integer conn(4, 48), e, c, nd
  real force(64), ef(4)
  do c = 1, 4
    nd = conn(c, e)
    force(nd) = force(nd) - ef(c)
  end do
end subroutine

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

/// mdg (Perfect): molecular dynamics of water. Triangular pairwise force
/// loop with a cutoff conditional and read-modify-write accumulation into
/// both interacting particles.
const char *MdgSource = R"FTN(
program mdg
  integer n, i, j, s, steps
  real x(80), y(80), v(80), f(80), q(80)
  real dx, dy, r2, ee, fij, cut, accum

  n = input(72)
  steps = input(3)
  cut = 90.0

  do i = 1, n
    x(i) = real(i) * 1.7 + real(mod(i * 7, 5)) * 0.3
    y(i) = real(mod(i * 11, 13)) * 0.8
    q(i) = real(mod(i, 3)) * 0.4 + 0.2
    v(i) = 0.0
    f(i) = 0.0
  end do

  do s = 1, steps
    do i = 1, n
      f(i) = 0.0
    end do
    do i = 1, n - 1
      do j = i + 1, n
        dx = x(i) - x(j)
        dy = y(i) - y(j)
        r2 = dx * dx + dy * dy + 0.5
        ee = q(i) * q(j) / r2 + (x(i) - x(j)) * (y(i) - y(j)) * 0.0001
        if (r2 < cut) then
          fij = ee * dx / r2 + q(i) * q(j) * 0.001
          f(i) = f(i) + fij + ee * 0.01
          f(j) = f(j) - fij - ee * 0.01
        end if
      end do
    end do
    do i = 1, n
      v(i) = v(i) + f(i) * 0.01
      x(i) = x(i) + v(i) * 0.01
    end do
  end do

  accum = 0.0
  do i = 1, n
    accum = accum + x(i) + v(i)
  end do
  print accum
end program

! Problem sizes arrive through an opaque input routine, like the
! READ statements of the original benchmarks: the compiler cannot
! constant-fold them.
function input(x) : integer
  integer x
  return x
end function
)FTN";

} // namespace suite_sources
} // namespace nascent

//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the trap-safety auditor: it must accept every placement the
/// optimizer actually produces (tested via TestHelpers on the whole
/// suite), reject hand-made unsound placements in both directions, and
/// the CIG lint must catch malformed implication structures.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "audit/CigConsistencyLint.h"
#include "audit/TrapSafetyAuditor.h"
#include "ir/IRBuilder.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Counts findings with the given rule.
size_t countRule(const AuditReport &R, AuditRule Rule) {
  size_t N = 0;
  for (const AuditFinding &F : R.findings())
    if (F.Rule == Rule)
      ++N;
  return N;
}

/// Builds:  entry{ n0 = copy 5; jump next }  next{ check(n0 <= 10); ret }
/// over a parameter p so checks are not compile-time constant.
std::unique_ptr<Function> makeBaseFunction(SymbolID &P, SymbolID &I) {
  auto F = std::make_unique<Function>("f");
  IRBuilder B(*F);
  P = F->symbols().createScalar("p", ScalarType::Int, /*IsParam=*/true);
  I = F->symbols().createScalar("i", ScalarType::Int);
  F->params().push_back(P);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Next = B.createBlock("next");
  B.setInsertBlock(Entry);
  B.emitCopy(I, Value::intConst(5));
  B.emitJump(Next->id());
  B.setInsertBlock(Next);
  B.emitCheck(CheckExpr(LinearExpr::term(I), 10));
  B.emitRet();
  return F;
}

} // namespace

TEST(TrapSafetyAuditor, IdentityPairIsClean) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_TRUE(R.clean()) << R.render();
  EXPECT_EQ(R.stats().ChecksAudited, 1u);
  EXPECT_EQ(R.stats().OriginalChecksCovered, 1u);
}

TEST(TrapSafetyAuditor, CatchesMisHoistedNonAnticipatedCheck) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  // Hoist check(i <= 10) above the copy that defines i: at the entry's
  // start the check is not anticipated (the definition kills it), so the
  // optimized program can trap on the stale value of i where the original
  // never would.
  Instruction Hoisted;
  Hoisted.Op = Opcode::Check;
  Hoisted.Check = CheckExpr(LinearExpr::term(I), 10);
  Opt->block(0)->insertAt(0, Hoisted);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(countRule(R, AuditRule::CheckNotJustified), 1u) << R.render();
}

TEST(TrapSafetyAuditor, AcceptsAnticipatedHoist) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  // Hoisting over the parameter p (never defined) into the entry block is
  // fine: check(p <= 3) is not anticipated... but hoisting the body check
  // after the definition of i is. Insert check(i <= 10) right after the
  // copy: anticipated there, so justified.
  Instruction Hoisted;
  Hoisted.Op = Opcode::Check;
  Hoisted.Check = CheckExpr(LinearExpr::term(I), 10);
  Opt->block(0)->insertAt(1, Hoisted);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_TRUE(R.clean()) << R.render();
  EXPECT_GE(R.stats().JustifiedAnticipated, 1u);
}

TEST(TrapSafetyAuditor, CatchesStrengthenedBeyondAnticipated) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  // Replace check(i <= 10) by check(i <= 10 and p <= 0): a different
  // family that nothing in the original anticipates.
  Instruction &Check = Opt->block(1)->instructions()[0];
  Check.Check = CheckExpr(LinearExpr::term(P), 0);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  // Direction A flags the unjustified check. Direction B stays quiet: the
  // original check(i <= 10) is interval-discharged (i is the constant 5),
  // so no trap is lost even though an unjustified one was added.
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(countRule(R, AuditRule::CheckNotJustified), 1u) << R.render();
  EXPECT_EQ(countRule(R, AuditRule::LostCheck), 0u) << R.render();
}

TEST(TrapSafetyAuditor, CatchesLostCheck) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  // Delete the only check: p is a parameter, so nothing proves it in
  // range and the original's trap on i > 10 ... i is the constant 5 here,
  // so use a check over p that intervals cannot discharge.
  Instruction &Check = Orig->block(1)->instructions()[0];
  Check.Check = CheckExpr(LinearExpr::term(P), 10);
  Opt = Orig->clone();
  Opt->block(1)->instructions().erase(Opt->block(1)->instructions().begin());
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(countRule(R, AuditRule::LostCheck), 1u) << R.render();
}

TEST(TrapSafetyAuditor, AcceptsDeletionCoveredByStrongerCheck) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  // Original: check(p <= 3); check(p <= 10) back to back. Deleting the
  // weaker one is sound: the stronger one fires first.
  Instruction First;
  First.Op = Opcode::Check;
  First.Check = CheckExpr(LinearExpr::term(P), 3);
  Orig->block(1)->insertAt(0, First);
  Instruction &Second = Orig->block(1)->instructions()[1];
  Second.Check = CheckExpr(LinearExpr::term(P), 10);
  std::unique_ptr<Function> Opt = Orig->clone();
  Opt->block(1)->instructions().erase(
      Opt->block(1)->instructions().begin() + 1);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_TRUE(R.clean()) << R.render();
  EXPECT_EQ(R.stats().OriginalChecksCovered, 2u);
}

TEST(TrapSafetyAuditor, CatchesCondCheckOutsidePreheader) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  Instruction CC;
  CC.Op = Opcode::CondCheck;
  CC.Check = CheckExpr(LinearExpr::term(P), 10);
  CC.Guards = {CheckExpr(LinearExpr::term(P), 100)};
  Opt->block(0)->insertAt(0, CC);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_EQ(countRule(R, AuditRule::CondCheckNotJustified), 1u)
      << R.render();
}

TEST(TrapSafetyAuditor, CatchesUnjustifiedTrapAndReplacedInstruction) {
  SymbolID P, I;
  std::unique_ptr<Function> Orig = makeBaseFunction(P, I);
  std::unique_ptr<Function> Opt = Orig->clone();
  // Truncate the next block into an unconditional trap: nothing in the
  // original proves a check must fail there.
  auto &Insts = Opt->block(1)->instructions();
  Insts.clear();
  Instruction T;
  T.Op = Opcode::Trap;
  Insts.push_back(T);
  AuditReport R;
  auditFunctionPair(*Orig, *Opt, AuditOptions{}, R);
  EXPECT_EQ(countRule(R, AuditRule::TrapNotJustified), 1u) << R.render();
}

TEST(TrapSafetyAuditor, PipelineAuditsSuiteCleanUnderEveryScheme) {
  // The full 270-configuration sweep lives in examples/audit_all (label
  // check-audit); here a representative slice keeps unit runs fast.
  const SuiteProgram *P = &benchmarkSuite()[0];
  for (PlacementScheme Scheme :
       {PlacementScheme::LLS, PlacementScheme::ALL, PlacementScheme::SE,
        PlacementScheme::MCM, PlacementScheme::AI}) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    PO.Audit = true;
    CompileResult R = compileSource(P->Source, PO);
    ASSERT_TRUE(R.Success) << R.Diags.render();
    EXPECT_TRUE(R.Audit.clean())
        << placementSchemeName(Scheme) << ":\n"
        << R.Audit.render();
    EXPECT_GT(R.Audit.stats().ChecksAudited +
                  R.Audit.stats().CondChecksAudited,
              0u);
  }
}

TEST(CigConsistencyLint, AcceptsWellFormedUniverse) {
  CheckUniverse U;
  LinearExpr N = LinearExpr::term(SymbolID(0));
  CheckID A = U.intern(CheckExpr(N, 3));
  CheckID B = U.intern(CheckExpr(N, 10));
  CheckImplicationGraph CIG(U);
  CIG.addImplication(A, B);
  AuditReport R;
  EXPECT_EQ(lintCheckImplicationGraph(U, CIG, "t", R), 0u) << R.render();
}

TEST(CigConsistencyLint, FlagsNegativeWeightCycle) {
  CheckUniverse U;
  CheckID A = U.intern(CheckExpr(LinearExpr::term(SymbolID(0)), 0));
  CheckID B = U.intern(CheckExpr(LinearExpr::term(SymbolID(1)), 0));
  CheckImplicationGraph CIG(U);
  CIG.addFamilyEdge(U.familyOf(A), U.familyOf(B), -1);
  CIG.addFamilyEdge(U.familyOf(B), U.familyOf(A), 0);
  AuditReport R;
  EXPECT_GT(lintCheckImplicationGraph(U, CIG, "t", R), 0u);
  EXPECT_EQ(countRule(R, AuditRule::CigNegativeCycle), 1u) << R.render();
}

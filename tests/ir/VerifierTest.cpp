//===----------------------------------------------------------------------===//
///
/// \file
/// Negative tests for the IR verifier: hand-built malformed IR must be
/// rejected with the specific diagnostic, not silently accepted. The
/// auditor's IR-correspondence rule leans on the verifier running after
/// every optimization, so these diagnostics are load-bearing.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

/// Expects verifyFunction to fail with \p Fragment in its rendering.
void expectRejected(const Function &F, const std::string &Fragment) {
  DiagnosticEngine D;
  EXPECT_FALSE(verifyFunction(F, D));
  EXPECT_NE(D.render().find(Fragment), std::string::npos)
      << "diagnostics were:\n"
      << D.render();
}

} // namespace

TEST(Verifier, RejectsDanglingBrSuccessor) {
  Function F("f");
  IRBuilder B(F);
  SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Then = B.createBlock("then");
  B.setInsertBlock(Entry);
  B.emitBr(Value::sym(C), Then->id(), BlockID(99)); // false edge dangles
  B.setInsertBlock(Then);
  B.emitRet();
  expectRejected(F, "br target out of range");
}

TEST(Verifier, RejectsDanglingJumpSuccessor) {
  Function F("f");
  IRBuilder B(F);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitJump(BlockID(7)); // no such block
  expectRejected(F, "jump target out of range");
}

TEST(Verifier, RejectsCheckOverNonIntegerSymbol) {
  Function F("f");
  IRBuilder B(F);
  SymbolID X = F.symbols().createScalar("x", ScalarType::Real);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitCheck(CheckExpr(LinearExpr::term(X), 10));
  B.emitRet();
  expectRejected(F, "check references non-integer symbol");
}

TEST(Verifier, RejectsSubscriptArityMismatch) {
  Function F("f");
  IRBuilder B(F);
  SymbolID I = F.symbols().createScalar("i", ScalarType::Int);
  ArrayShape Shape;
  Shape.Element = ScalarType::Real;
  Shape.Dims = {{1, 10}, {1, 10}}; // rank 2
  SymbolID A = F.symbols().createArray("a", Shape);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitStore(A, {Value::sym(I)}, Value::realConst(0)); // one subscript
  B.emitRet();
  expectRejected(F, "subscript arity 1 does not match rank 2");
}

TEST(Verifier, RejectsMalformedModuleThroughVerifyModule) {
  Module M;
  Function *F = M.createFunction("main");
  M.setEntry("main");
  IRBuilder B(*F);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitJump(BlockID(3));
  DiagnosticEngine D;
  EXPECT_FALSE(verifyModule(M, D));
  EXPECT_NE(D.render().find("jump target out of range"), std::string::npos);
}

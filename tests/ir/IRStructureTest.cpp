//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the IR structures: symbol tables, the builder, CFG edges,
/// critical-edge splitting, the printer, and the verifier.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nascent;

TEST(SymbolTable, CreateAndLookup) {
  SymbolTable T;
  SymbolID N = T.createScalar("n", ScalarType::Int, /*IsParam=*/true);
  ArrayShape Shape;
  Shape.Element = ScalarType::Real;
  Shape.Dims = {{1, 10}, {0, 4}};
  SymbolID A = T.createArray("a", Shape);
  SymbolID Tmp = T.createTemp(ScalarType::Int);

  EXPECT_EQ(T.lookup("n"), N);
  EXPECT_EQ(T.lookup("a"), A);
  EXPECT_EQ(T.lookup("zzz"), InvalidSymbol);
  EXPECT_TRUE(T.get(N).IsParam);
  EXPECT_TRUE(T.get(A).isArray());
  EXPECT_EQ(T.get(A).Shape.rank(), 2u);
  EXPECT_EQ(T.get(A).Shape.elementCount(), 50);
  EXPECT_EQ(T.get(Tmp).Kind, SymbolKind::Temp);
  // Temps get unique printable names.
  SymbolID Tmp2 = T.createTemp(ScalarType::Int);
  EXPECT_NE(T.name(Tmp), T.name(Tmp2));
}

TEST(IRBuilder, BuildsDiamond) {
  Function F("f");
  IRBuilder B(F);
  SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
  SymbolID X = F.symbols().createScalar("x", ScalarType::Int);

  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Then = B.createBlock("then");
  BasicBlock *Else = B.createBlock("else");
  BasicBlock *Join = B.createBlock("join");

  B.setInsertBlock(Entry);
  B.emitBr(Value::sym(C), Then->id(), Else->id());
  B.setInsertBlock(Then);
  B.emitCopy(X, Value::intConst(1));
  B.emitJump(Join->id());
  B.setInsertBlock(Else);
  B.emitCopy(X, Value::intConst(2));
  B.emitJump(Join->id());
  B.setInsertBlock(Join);
  B.emitRet();

  F.recomputePreds();
  EXPECT_EQ(Entry->successors(), (std::vector<BlockID>{Then->id(),
                                                       Else->id()}));
  EXPECT_EQ(Join->preds().size(), 2u);
  EXPECT_TRUE(Join->terminator().Op == Opcode::Ret);

  DiagnosticEngine D;
  EXPECT_TRUE(verifyFunction(F, D)) << D.render();
}

TEST(Function, SplitCriticalEdges) {
  // entry branches to {mid, join}; mid jumps to join: edge entry->join is
  // critical (entry has 2 succs, join has 2 preds).
  Function F("f");
  IRBuilder B(F);
  SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Mid = B.createBlock("mid");
  BasicBlock *Join = B.createBlock("join");
  B.setInsertBlock(Entry);
  B.emitBr(Value::sym(C), Mid->id(), Join->id());
  B.setInsertBlock(Mid);
  B.emitJump(Join->id());
  B.setInsertBlock(Join);
  B.emitRet();

  size_t Before = F.numBlocks();
  unsigned NumSplit = F.splitCriticalEdges();
  EXPECT_EQ(NumSplit, 1u);
  EXPECT_EQ(F.numBlocks(), Before + 1);

  // No critical edges remain.
  F.recomputePreds();
  for (const auto &BB : F) {
    auto Succs = BB->successors();
    if (Succs.size() < 2)
      continue;
    for (BlockID S : Succs)
      EXPECT_LT(F.block(S)->preds().size(), 2u);
  }
  DiagnosticEngine D;
  EXPECT_TRUE(verifyFunction(F, D)) << D.render();
}

TEST(Verifier, CatchesMissingTerminator) {
  Function F("f");
  F.createBlock("entry"); // empty block, no terminator
  DiagnosticEngine D;
  EXPECT_FALSE(verifyFunction(F, D));
  EXPECT_NE(D.render().find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesBadBranchTarget) {
  Function F("f");
  IRBuilder B(F);
  SymbolID C = F.symbols().createScalar("c", ScalarType::Bool);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitBr(Value::sym(C), 7, 8); // out-of-range targets
  DiagnosticEngine D;
  EXPECT_FALSE(verifyFunction(F, D));
}

TEST(Verifier, CatchesNonIntegerCheckSymbol) {
  Function F("f");
  IRBuilder B(F);
  SymbolID R = F.symbols().createScalar("r", ScalarType::Real);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitCheck(CheckExpr(LinearExpr::term(R), 5));
  B.emitRet();
  DiagnosticEngine D;
  EXPECT_FALSE(verifyFunction(F, D));
  EXPECT_NE(D.render().find("non-integer"), std::string::npos);
}

TEST(Verifier, CatchesSubscriptArity) {
  Function F("f");
  IRBuilder B(F);
  ArrayShape Shape;
  Shape.Element = ScalarType::Real;
  Shape.Dims = {{1, 4}, {1, 4}};
  SymbolID A = F.symbols().createArray("a", Shape);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitLoad(A, {Value::intConst(1)}); // rank 2 array, 1 subscript
  B.emitRet();
  DiagnosticEngine D;
  EXPECT_FALSE(verifyFunction(F, D));
  EXPECT_NE(D.render().find("arity"), std::string::npos);
}

TEST(Verifier, ModuleChecksCallArity) {
  Module M;
  M.setEntry("main");
  Function *Main = M.createFunction("main");
  Function *Callee = M.createFunction("callee");
  Callee->params().push_back(
      Callee->symbols().createScalar("x", ScalarType::Int, true));
  {
    IRBuilder B(*Callee);
    B.setInsertBlock(B.createBlock("entry"));
    B.emitRet();
  }
  {
    IRBuilder B(*Main);
    B.setInsertBlock(B.createBlock("entry"));
    B.emitCall("callee", {}, std::nullopt); // missing argument
    B.emitRet();
  }
  DiagnosticEngine D;
  EXPECT_FALSE(verifyModule(M, D));
  EXPECT_NE(D.render().find("expected 1"), std::string::npos);
}

TEST(IRPrinter, RendersInstructions) {
  Function F("f");
  IRBuilder B(F);
  SymbolID N = F.symbols().createScalar("n", ScalarType::Int);
  ArrayShape Shape;
  Shape.Element = ScalarType::Real;
  Shape.Dims = {{5, 10}};
  SymbolID A = F.symbols().createArray("a", Shape);
  BasicBlock *Entry = B.createBlock("entry");
  B.setInsertBlock(Entry);
  B.emitCheck(CheckExpr(LinearExpr::term(N, 2), 10));
  B.emitCondCheck({CheckExpr(LinearExpr::term(N, -2), 0)},
                  CheckExpr(LinearExpr::term(N, 2), 10));
  B.emitStore(A, {Value::sym(N)}, Value::realConst(1.5));
  B.emitRet();

  std::string Out = printFunction(F);
  EXPECT_NE(Out.find("Check(2*n <= 10)"), std::string::npos);
  EXPECT_NE(Out.find("Cond-check((-2*n <= 0), 2*n <= 10)"),
            std::string::npos);
  EXPECT_NE(Out.find("store a[n] = 1.5"), std::string::npos);
  EXPECT_NE(Out.find("ret"), std::string::npos);
}

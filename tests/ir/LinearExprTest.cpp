#include "ir/LinearExpr.h"

#include "ir/CheckExpr.h"
#include "ir/Symbol.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

class LinearExprTest : public ::testing::Test {
protected:
  void SetUp() override {
    I = Syms.createScalar("i", ScalarType::Int);
    J = Syms.createScalar("j", ScalarType::Int);
    N = Syms.createScalar("n", ScalarType::Int);
  }
  SymbolTable Syms;
  SymbolID I = 0, J = 0, N = 0;
};

TEST_F(LinearExprTest, ConstantAndTerm) {
  LinearExpr C = LinearExpr::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constantPart(), 7);

  LinearExpr T = LinearExpr::term(I, 3);
  EXPECT_FALSE(T.isConstant());
  EXPECT_EQ(T.coeff(I), 3);
  EXPECT_EQ(T.coeff(J), 0);
}

TEST_F(LinearExprTest, AdditionMergesAndCancels) {
  LinearExpr A = LinearExpr::term(I, 2) + LinearExpr::term(J, 1);
  LinearExpr B = LinearExpr::term(I, -2) + LinearExpr::constant(5);
  LinearExpr Sum = A + B;
  EXPECT_EQ(Sum.coeff(I), 0);
  EXPECT_EQ(Sum.coeff(J), 1);
  EXPECT_EQ(Sum.constantPart(), 5);
  // Cancelled terms are removed entirely (canonical form).
  EXPECT_EQ(Sum.terms().size(), 1u);
}

TEST_F(LinearExprTest, CanonicalTermOrderIndependence) {
  // i + n built in either order compares equal: the canonical order is
  // what makes syntactically different but equivalent range expressions
  // share a family (paper section 2.2).
  LinearExpr A = LinearExpr::term(I) + LinearExpr::term(N);
  LinearExpr B = LinearExpr::term(N) + LinearExpr::term(I);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST_F(LinearExprTest, ScaleAndNegate) {
  LinearExpr A = LinearExpr::term(I, 2) + LinearExpr::constant(3);
  LinearExpr S = A.scaled(-2);
  EXPECT_EQ(S.coeff(I), -4);
  EXPECT_EQ(S.constantPart(), -6);
  EXPECT_EQ(A.negated().coeff(I), -2);
  EXPECT_TRUE(A.scaled(0).isConstant());
  EXPECT_EQ(A.scaled(0).constantPart(), 0);
}

TEST_F(LinearExprTest, SubtractionAndSymbolicPart) {
  LinearExpr A = LinearExpr::term(I) + LinearExpr::constant(4);
  LinearExpr B = LinearExpr::term(N, 4) + LinearExpr::constant(1);
  LinearExpr D = A - B;
  EXPECT_EQ(D.coeff(I), 1);
  EXPECT_EQ(D.coeff(N), -4);
  EXPECT_EQ(D.constantPart(), 3);
  EXPECT_EQ(D.symbolicPart().constantPart(), 0);
  EXPECT_EQ(D.symbolicPart().coeff(N), -4);
}

TEST_F(LinearExprTest, Substitute) {
  // i + 2*j with j := n - 1 becomes i + 2*n - 2.
  LinearExpr E = LinearExpr::term(I) + LinearExpr::term(J, 2);
  LinearExpr Repl = LinearExpr::term(N) + LinearExpr::constant(-1);
  E.substitute(J, Repl);
  EXPECT_EQ(E.coeff(I), 1);
  EXPECT_EQ(E.coeff(J), 0);
  EXPECT_EQ(E.coeff(N), 2);
  EXPECT_EQ(E.constantPart(), -2);
}

TEST_F(LinearExprTest, RemoveTerm) {
  LinearExpr E = LinearExpr::term(I, 5) + LinearExpr::term(J, -1);
  EXPECT_EQ(E.removeTerm(I), 5);
  EXPECT_EQ(E.coeff(I), 0);
  EXPECT_EQ(E.removeTerm(I), 0);
}

TEST_F(LinearExprTest, Evaluate) {
  LinearExpr E = LinearExpr::term(I, 2) + LinearExpr::term(N, -1) +
                 LinearExpr::constant(10);
  auto ValueOf = [&](SymbolID S) -> int64_t { return S == I ? 4 : 3; };
  EXPECT_EQ(E.evaluate(ValueOf), 2 * 4 - 3 + 10);
}

TEST_F(LinearExprTest, Printing) {
  LinearExpr E = LinearExpr::term(I, 2) + LinearExpr::term(J, -1) +
                 LinearExpr::constant(3);
  EXPECT_EQ(E.str(Syms), "2*i - j + 3");
  EXPECT_EQ(LinearExpr::constant(0).str(Syms), "0");
  EXPECT_EQ(LinearExpr::term(I, -1).str(Syms), "-i");
}

TEST_F(LinearExprTest, CheckExprCanonicalisation) {
  // (i + 1 <= 10) canonicalises to range-expression i, bound 9.
  LinearExpr E = LinearExpr::term(I) + LinearExpr::constant(1);
  CheckExpr C(E, 10);
  EXPECT_EQ(C.expr().constantPart(), 0);
  EXPECT_EQ(C.expr().coeff(I), 1);
  EXPECT_EQ(C.bound(), 9);
}

TEST_F(LinearExprTest, CheckExprLowerBoundNegation) {
  // (i + 1 >= 4) becomes (-i <= -3), the paper's example.
  LinearExpr E = LinearExpr::term(I) + LinearExpr::constant(1);
  CheckExpr C = CheckExpr::fromLowerBound(E, 4);
  EXPECT_EQ(C.expr().coeff(I), -1);
  EXPECT_EQ(C.bound(), -3);
}

TEST_F(LinearExprTest, CheckExprCompileTime) {
  CheckExpr True(LinearExpr::constant(3), 5);
  EXPECT_TRUE(True.isCompileTimeConstant());
  EXPECT_TRUE(True.evaluatesToTrue());
  CheckExpr False(LinearExpr::constant(7), 5);
  EXPECT_TRUE(False.isCompileTimeConstant());
  EXPECT_FALSE(False.evaluatesToTrue());
  CheckExpr Symbolic(LinearExpr::term(I), 5);
  EXPECT_FALSE(Symbolic.isCompileTimeConstant());
}

} // namespace

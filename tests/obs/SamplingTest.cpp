//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the robust timing statistics (obs/Sampling.h): median/MAD,
/// the bootstrap interval's determinism, and the JSON round-trip that the
/// bench baselines depend on.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Sampling.h"

#include "gtest/gtest.h"

using namespace nascent;
using namespace nascent::obs;

namespace {

TEST(Sampling, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Sampling, SummaryFields) {
  SampleStats S = summarizeSamples({2.0, 1.0, 4.0, 3.0, 10.0});
  EXPECT_EQ(S.N, 5u);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 10.0);
  EXPECT_DOUBLE_EQ(S.Mean, 4.0);
  EXPECT_DOUBLE_EQ(S.Median, 3.0);
  // |x - 3| = {1, 2, 1, 0, 7} -> median 1.
  EXPECT_DOUBLE_EQ(S.MAD, 1.0);
  EXPECT_LE(S.CiLow, S.Median);
  EXPECT_GE(S.CiHigh, S.Median);
}

TEST(Sampling, SingleSampleDegenerateInterval) {
  SampleStats S = summarizeSamples({0.25});
  EXPECT_EQ(S.N, 1u);
  EXPECT_DOUBLE_EQ(S.Median, 0.25);
  EXPECT_DOUBLE_EQ(S.MAD, 0.0);
  EXPECT_DOUBLE_EQ(S.CiLow, 0.25);
  EXPECT_DOUBLE_EQ(S.CiHigh, 0.25);
}

TEST(Sampling, BootstrapIsDeterministic) {
  std::vector<double> Samples = {1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8};
  SampleStats A = summarizeSamples(Samples);
  SampleStats B = summarizeSamples(Samples);
  EXPECT_DOUBLE_EQ(A.CiLow, B.CiLow);
  EXPECT_DOUBLE_EQ(A.CiHigh, B.CiHigh);
  // The interval brackets the median and is not wider than the range.
  EXPECT_GE(A.CiLow, A.Min);
  EXPECT_LE(A.CiHigh, A.Max);
  EXPECT_LE(A.CiLow, A.Median);
  EXPECT_GE(A.CiHigh, A.Median);
}

TEST(Sampling, JsonRoundTrip) {
  SampleStats S = summarizeSamples({0.5, 0.7, 0.6, 0.55, 0.65});
  JsonWriter W;
  S.writeJson(W);

  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(W.str(), V, &Err)) << Err;
  SampleStats R;
  ASSERT_TRUE(SampleStats::fromJson(V, R));
  EXPECT_EQ(R.N, S.N);
  EXPECT_DOUBLE_EQ(R.Min, S.Min);
  EXPECT_DOUBLE_EQ(R.Max, S.Max);
  EXPECT_DOUBLE_EQ(R.Mean, S.Mean);
  EXPECT_DOUBLE_EQ(R.Median, S.Median);
  EXPECT_DOUBLE_EQ(R.MAD, S.MAD);
  EXPECT_DOUBLE_EQ(R.CiLow, S.CiLow);
  EXPECT_DOUBLE_EQ(R.CiHigh, S.CiHigh);
}

TEST(Sampling, FromJsonRejectsMissingField) {
  JsonValue V;
  ASSERT_TRUE(parseJson(R"({"n":3,"min":1,"max":2})", V));
  SampleStats S;
  EXPECT_FALSE(SampleStats::fromJson(V, S));
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide stat registry: counter/histogram/gauge semantics and
/// the JSON snapshot `mfc -stats-json` prints. Test stats use a "test."
/// prefix so they cannot collide with compiler-internal names.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/StatRegistry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace nascent;
using namespace nascent::obs;

TEST(StatRegistry, CounterInterning) {
  Counter &A = StatRegistry::global().counter("test.counter.a", "a");
  Counter &B = StatRegistry::global().counter("test.counter.a");
  EXPECT_EQ(&A, &B); // same name -> same counter
  A.reset();
  ++A;
  A += 4;
  A.inc();
  A.add(2);
  EXPECT_EQ(B.value(), 8u);
  EXPECT_EQ(A.name(), "test.counter.a");
  EXPECT_EQ(A.description(), "a");
}

TEST(StatRegistry, MacroBindsGlobal) {
  NASCENT_STAT(Local, "test.counter.macro", "macro-declared");
  Local.reset();
  ++Local;
  EXPECT_EQ(StatRegistry::global().counter("test.counter.macro").value(), 1u);
}

TEST(StatRegistry, HistogramStats) {
  Histogram &H = StatRegistry::global().histogram("test.hist", "h");
  H.reset();
  for (uint64_t V : {0u, 1u, 2u, 3u, 8u})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 14u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 8u);
  EXPECT_DOUBLE_EQ(H.mean(), 14.0 / 5.0);
  EXPECT_EQ(H.bucket(0), 1u); // the zero
  EXPECT_EQ(H.bucket(1), 1u); // 1
  EXPECT_EQ(H.bucket(2), 2u); // 2, 3
  EXPECT_EQ(H.bucket(4), 1u); // 8
}

TEST(StatRegistry, GaugeReadsAtSnapshotTime) {
  uint64_t Backing = 7;
  StatRegistry::global().gauge("test.gauge", [&] { return Backing; }, "g");
  JsonValue V;
  ASSERT_TRUE(parseJson(StatRegistry::global().toJson(), V));
  EXPECT_EQ(V.get("gauges")->get("test.gauge")->Number, 7.0);
  Backing = 9;
  ASSERT_TRUE(parseJson(StatRegistry::global().toJson(), V));
  EXPECT_EQ(V.get("gauges")->get("test.gauge")->Number, 9.0);
  // Leave a stable callback behind: the registry outlives this test.
  StatRegistry::global().gauge("test.gauge", [] { return uint64_t(0); }, "g");
}

TEST(StatRegistry, JsonSnapshotParses) {
  StatRegistry::global().counter("test.counter.json", "j").reset();
  StatRegistry::global().counter("test.counter.json") += 3;
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(StatRegistry::global().toJson(), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());
  ASSERT_NE(V.get("counters"), nullptr);
  ASSERT_NE(V.get("histograms"), nullptr);
  EXPECT_EQ(V.get("counters")->get("test.counter.json")->Number, 3.0);
  // The support layer's bit-vector op gauge registers itself on first use.
  ASSERT_NE(V.get("gauges"), nullptr);
  EXPECT_NE(V.get("gauges")->get("support.bitvector.word_ops"), nullptr);
}

TEST(StatRegistry, PrintSkipsZeroCounters) {
  StatRegistry::global().counter("test.counter.zero", "z").reset();
  Counter &NZ = StatRegistry::global().counter("test.counter.nonzero", "nz");
  NZ.reset();
  ++NZ;
  std::ostringstream OS;
  StatRegistry::global().print(OS);
  EXPECT_EQ(OS.str().find("test.counter.zero"), std::string::npos);
  EXPECT_NE(OS.str().find("test.counter.nonzero"), std::string::npos);
}

TEST(StatRegistry, ResetAllZeroes) {
  Counter &C = StatRegistry::global().counter("test.counter.reset");
  Histogram &H = StatRegistry::global().histogram("test.hist.reset");
  C += 5;
  H.record(5);
  StatRegistry::global().resetAll();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
}

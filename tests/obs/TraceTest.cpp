//===----------------------------------------------------------------------===//
///
/// \file
/// The trace collector: span nesting, the Chrome trace_event JSON shape
/// (round-tripped through the bundled parser), and the no-op cost paths.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace nascent;
using namespace nascent::obs;

TEST(Trace, DisabledCollectorRecordsNothing) {
  TraceCollector C;
  {
    TraceScope S(&C, "phase");
    TraceScope T(nullptr, "null-collector is fine too");
  }
  EXPECT_FALSE(C.enabled());
  EXPECT_TRUE(C.events().empty());
}

TEST(Trace, NestedScopes) {
  TraceCollector C;
  C.enable();
  {
    TraceScope Outer(&C, "outer");
    {
      TraceScope Inner(&C, "inner");
    }
  }
  // Children close (and are appended) before parents.
  ASSERT_EQ(C.events().size(), 2u);
  EXPECT_EQ(C.events()[0].Name, "inner");
  EXPECT_EQ(C.events()[1].Name, "outer");
  EXPECT_EQ(C.events()[0].Depth, 1u);
  EXPECT_EQ(C.events()[1].Depth, 0u);
  // The parent span contains the child span.
  EXPECT_LE(C.events()[1].StartUs, C.events()[0].StartUs);
  EXPECT_GE(C.events()[1].StartUs + C.events()[1].DurUs,
            C.events()[0].StartUs + C.events()[0].DurUs);
}

TEST(Trace, JsonRoundTrip) {
  TraceCollector C;
  C.enable();
  {
    TraceScope A(&C, "alpha");
    { TraceScope B(&C, "beta \"quoted\""); }
  }
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(parseJson(C.toJson(), V, &Err)) << Err;
  const JsonValue *Events = V.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Array.size(), 2u);
  for (const JsonValue &E : Events->Array) {
    EXPECT_EQ(E.get("ph")->String, "X"); // complete events
    EXPECT_EQ(E.get("cat")->String, "phase");
    ASSERT_NE(E.get("ts"), nullptr);
    ASSERT_NE(E.get("dur"), nullptr);
    ASSERT_NE(E.get("pid"), nullptr);
    ASSERT_NE(E.get("tid"), nullptr);
  }
  EXPECT_EQ(Events->Array[0].get("name")->String, "beta \"quoted\"");
  EXPECT_EQ(Events->Array[1].get("name")->String, "alpha");
}

TEST(Trace, WriteFile) {
  TraceCollector C;
  C.enable();
  { TraceScope S(&C, "span"); }
  std::string Path = testing::TempDir() + "nascent_trace_test.json";
  std::string Err;
  ASSERT_TRUE(C.writeFile(Path, &Err)) << Err;
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  JsonValue V;
  EXPECT_TRUE(parseJson(SS.str(), V));
  std::remove(Path.c_str());

  EXPECT_FALSE(C.writeFile("/nonexistent-dir/x/y/trace.json", &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Trace, ScopedPhaseRecordsBothClocksAndMirrorsSpan) {
  PhaseTimings PT;
  TraceCollector C;
  C.enable();
  auto T0 = std::chrono::steady_clock::now();
  {
    ScopedPhase P(PT, "work", T0, &C);
    // Burn a little CPU so the phase has nonzero durations.
    volatile uint64_t X = 0;
    for (int I = 0; I != 100000; ++I)
      X = X + static_cast<uint64_t>(I);
  }
  ASSERT_EQ(PT.Phases.size(), 1u);
  EXPECT_EQ(PT.Phases[0].Name, "work");
  EXPECT_GE(PT.Phases[0].WallStart, 0.0);
  EXPECT_GT(PT.Phases[0].WallSeconds, 0.0);
  EXPECT_GE(PT.Phases[0].CpuSeconds, 0.0);
  EXPECT_DOUBLE_EQ(PT.wallOf("work"), PT.Phases[0].WallSeconds);
  EXPECT_DOUBLE_EQ(PT.cpuOf("work"), PT.Phases[0].CpuSeconds);
  EXPECT_EQ(PT.find("absent"), nullptr);
  EXPECT_EQ(PT.wallOf("absent"), 0.0);
  ASSERT_EQ(C.events().size(), 1u);
  EXPECT_EQ(C.events()[0].Name, "work");
}

TEST(Trace, ProcessCpuClockAdvances) {
  double A = processCpuSeconds();
  volatile uint64_t X = 0;
  for (int I = 0; I != 2000000; ++I)
    X = X + static_cast<uint64_t>(I);
  double B = processCpuSeconds();
  EXPECT_GE(B, A);
}

//===----------------------------------------------------------------------===//
///
/// \file
/// The work-proxy counters are the deterministic half of the perf
/// regression gate: benchdiff compares them exactly, so two optimizations
/// of the same program must produce bit-identical StatRegistry deltas.
/// This test compiles a suite program twice per placement scheme in one
/// process and asserts exactly that. A scheme whose counters depend on
/// iteration order, pointer values, or leftover state from a previous run
/// fails here before it can make the bench gate flaky.
///
//===----------------------------------------------------------------------===//

#include "cache/ArtifactCache.h"
#include "driver/BatchCompiler.h"
#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "obs/StatRegistry.h"
#include "suite/Suite.h"

#include "gtest/gtest.h"

using namespace nascent;

namespace {

/// One compile+optimize bracketed in registry snapshots.
obs::StatSnapshot::FlatMap compileDelta(const SuiteProgram &P,
                                        PlacementScheme Scheme) {
  PipelineOptions PO;
  PO.Opt.Scheme = Scheme;
  obs::StatSnapshot Before = obs::StatRegistry::global().snapshot();
  CompileResult R = compileSource(P.Source, PO);
  EXPECT_TRUE(R.Success) << P.Name;
  return obs::StatRegistry::global().snapshot().deltaFrom(Before);
}

TEST(Determinism, WorkProxyDeltasAreBitIdenticalAcrossSchemes) {
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};

  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);

  // One warmup compile so lazily-interned stats and other one-time
  // initialisation cannot show up as a first-run-only delta.
  compileDelta(*P, PlacementScheme::NI);

  for (PlacementScheme Scheme : Schemes) {
    obs::StatSnapshot::FlatMap First = compileDelta(*P, Scheme);
    obs::StatSnapshot::FlatMap Second = compileDelta(*P, Scheme);
    EXPECT_FALSE(First.empty()) << placementSchemeName(Scheme);
    EXPECT_EQ(First, Second) << placementSchemeName(Scheme);
  }
}

TEST(Determinism, SchemesAreDistinguishedByTheirDeltas) {
  // Sanity on the signal itself: the per-scheme counters must record
  // which scheme ran, otherwise the bench records could not attribute
  // work to configurations.
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  obs::StatSnapshot::FlatMap NI = compileDelta(*P, PlacementScheme::NI);
  obs::StatSnapshot::FlatMap LLS = compileDelta(*P, PlacementScheme::LLS);
  EXPECT_TRUE(NI.count("opt.scheme.NI"));
  EXPECT_TRUE(LLS.count("opt.scheme.LLS"));
  EXPECT_FALSE(LLS.count("opt.scheme.NI"));
}

TEST(Determinism, WorkCountersAreBitIdenticalAcrossJobCounts) {
  // The sharded registry's contract under BatchCompiler: the per-job
  // stat deltas and the whole-batch registry growth are the same for
  // --jobs 1, 2, and 8. This is what lets audit_all --jobs N and the
  // bench sweeps gate on exact counters regardless of worker count.
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);

  std::vector<BatchJob> Batch;
  for (PlacementScheme Scheme : Schemes) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    Batch.push_back({P->Source, PO});
  }

  auto WorkMaps = [&Batch](unsigned Jobs) {
    std::vector<obs::StatSnapshot::FlatMap> Out;
    for (BatchJobResult &R : BatchCompiler(Jobs).run(Batch))
      Out.push_back(std::move(R.Work));
    return Out;
  };

  WorkMaps(1); // warmup: intern dynamic per-scheme counters
  std::vector<obs::StatSnapshot::FlatMap> Serial = WorkMaps(1);
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_FALSE(Serial[I].empty())
        << placementSchemeName(Schemes[I]);
  EXPECT_EQ(WorkMaps(2), Serial);
  EXPECT_EQ(WorkMaps(8), Serial);
}

TEST(Determinism, ProvenanceJsonIsBitIdenticalAcrossJobCountsAndRuns) {
  // The lifecycle record carries no timestamps and is written in pass
  // order, so its serialised form must match byte for byte across
  // repeated runs and across BatchCompiler job counts — the contract the
  // sweep/audit_all --provenance documents rely on.
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);

  std::vector<BatchJob> Batch;
  for (PlacementScheme Scheme : Schemes) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    PO.Telemetry.Provenance = true;
    Batch.push_back({P->Source, PO});
  }

  auto ProvenanceJsons = [&Batch](unsigned Jobs) {
    std::vector<std::string> Out;
    for (const BatchJobResult &R : BatchCompiler(Jobs).run(Batch)) {
      EXPECT_TRUE(R.Result.Success);
      Out.push_back(R.Result.Provenance.toJson());
    }
    return Out;
  };

  std::vector<std::string> Serial = ProvenanceJsons(1);
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_NE(Serial[I].find("\"events\""), std::string::npos)
        << placementSchemeName(Schemes[I]);
  EXPECT_EQ(ProvenanceJsons(1), Serial); // repeated serial run
  EXPECT_EQ(ProvenanceJsons(2), Serial);
  EXPECT_EQ(ProvenanceJsons(8), Serial);
}

TEST(Determinism, ProfileJsonIsBitIdenticalAcrossJobCountsAndRuns) {
  // The execution-profile envelope carries no timestamps and is written
  // in deterministic (module, block, site, loop) order, so compiling
  // under BatchCompiler at any job count and replaying the same inputs
  // serially must serialise byte for byte — the contract behind
  // `sweep --profile --jobs N` and merged profile documents
  // (docs/profiling.md).
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);

  std::vector<BatchJob> Batch;
  for (PlacementScheme Scheme : Schemes) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    PO.Telemetry.Profile = true;
    Batch.push_back({P->Source, PO});
  }

  // Compile under the given job count, then interpret serially in
  // submission order (execution itself is single-threaded; only the
  // compiles are sharded) and serialise each profile envelope.
  auto ProfileJsons = [&Batch](unsigned Jobs) {
    std::vector<std::string> Out;
    for (BatchJobResult &R : BatchCompiler(Jobs).run(Batch)) {
      EXPECT_TRUE(R.Result.Success);
      InterpOptions IO;
      IO.Profile = &R.Result.Profile;
      interpret(*R.Result.M, IO);
      Out.push_back(R.Result.Profile.toEnvelopeJson());
    }
    return Out;
  };

  std::vector<std::string> Serial = ProfileJsons(1);
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_NE(Serial[I].find("\"profileVersion\""), std::string::npos)
        << placementSchemeName(Schemes[I]);
  EXPECT_EQ(ProfileJsons(1), Serial); // repeated serial run
  EXPECT_EQ(ProfileJsons(2), Serial);
  EXPECT_EQ(ProfileJsons(8), Serial);
}

TEST(Determinism, CacheOnAndOffProduceBitIdenticalOutputs) {
  // The artifact cache's hard contract (docs/caching.md): reusing a
  // frontend snapshot or a pre-built analysis context must not change a
  // byte of any observable output. Compile every scheme twice per batch
  // (so the second compile of each scheme hits the cache) and compare the
  // per-job work maps, provenance JSON, and profile JSON against a
  // cache-off run of the same batch, at every job count.
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);

  auto MakeBatch = [&](bool UseCache, cache::ArtifactCache *Cache) {
    std::vector<BatchJob> Batch;
    auto Source = std::make_shared<const std::string>(P->Source);
    for (int Round = 0; Round != 2; ++Round) {
      for (PlacementScheme Scheme : Schemes) {
        PipelineOptions PO;
        PO.Opt.Scheme = Scheme;
        PO.Cache.Enabled = UseCache;
        PO.Cache.Cache = Cache;
        PO.Telemetry.Provenance = true;
        PO.Telemetry.Profile = true;
        Batch.push_back({Source, PO});
      }
    }
    return Batch;
  };

  struct Observed {
    std::vector<obs::StatSnapshot::FlatMap> Work;
    std::vector<std::string> Provenance;
    std::vector<std::string> Profiles;
    bool operator==(const Observed &O) const {
      return Work == O.Work && Provenance == O.Provenance &&
             Profiles == O.Profiles;
    }
  };
  auto Run = [&](unsigned Jobs, bool UseCache) {
    // A fresh cache instance per run keeps runs independent of each
    // other and of anything the process-global cache accumulated.
    cache::ArtifactCache Cache;
    Observed Out;
    for (BatchJobResult &R :
         BatchCompiler(Jobs).run(MakeBatch(UseCache, &Cache))) {
      EXPECT_TRUE(R.Result.Success);
      InterpOptions IO;
      IO.Profile = &R.Result.Profile;
      interpret(*R.Result.M, IO);
      Out.Work.push_back(std::move(R.Work));
      Out.Provenance.push_back(R.Result.Provenance.toJson());
      Out.Profiles.push_back(R.Result.Profile.toEnvelopeJson());
    }
    return Out;
  };

  Run(1, false); // warmup: intern dynamic per-scheme counters
  Observed Baseline = Run(1, false);
  for (unsigned Jobs : {1u, 2u, 8u})
    EXPECT_TRUE(Run(Jobs, true) == Baseline) << "jobs=" << Jobs;
}

TEST(Determinism, CachedFrontendHitsReconcileWithSharedSources) {
  // Hit/miss accounting is exact: N cells over one program produce one
  // frontend miss and N-1 hits, nothing more.
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  cache::ArtifactCache Cache;
  auto Source = std::make_shared<const std::string>(P->Source);
  std::vector<BatchJob> Batch;
  for (PlacementScheme Scheme :
       {PlacementScheme::NI, PlacementScheme::LLS, PlacementScheme::ALL}) {
    PipelineOptions PO;
    PO.Opt.Scheme = Scheme;
    PO.Cache.Enabled = true;
    PO.Cache.Cache = &Cache;
    Batch.push_back({Source, PO});
  }
  for (const BatchJobResult &R : BatchCompiler(1).run(Batch))
    EXPECT_TRUE(R.Result.Success);
  cache::ArtifactCache::Stats S = Cache.stats();
  EXPECT_EQ(S.FrontendMisses, 1u);
  EXPECT_EQ(S.FrontendHits, Batch.size() - 1);
}

TEST(Determinism, DeltaIgnoresUnrelatedPriorWork) {
  // The snapshot delta must isolate the bracketed region: two deltas of
  // the same work are identical even when other compiles ran in between.
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  obs::StatSnapshot::FlatMap First = compileDelta(*P, PlacementScheme::SE);
  compileDelta(*P, PlacementScheme::ALL); // unrelated interleaved work
  obs::StatSnapshot::FlatMap Second = compileDelta(*P, PlacementScheme::SE);
  EXPECT_EQ(First, Second);
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline-level telemetry: the per-phase timing breakdown (monotone
/// phase starts, both clocks populated, derived accessors), the Chrome
/// trace of a full compile (>= 5 named phases, valid JSON), and the
/// field-for-field JSON coverage of OptimizerStats.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

using namespace nascent;
using namespace nascent::test;

namespace {

const char *Program = R"(
program timing
  integer n, i
  real a(50)
  n = 40
  do i = 1, n
    a(i) = real(i) * 2.0
  end do
  print a(3)
end program
)";

} // namespace

TEST(PhaseTimings, MonotoneAndComplete) {
  CompileResult R = compileOrDie(Program);
  const std::vector<obs::PhaseTiming> &P = R.Phases.Phases;
  ASSERT_GE(P.size(), 6u); // parse, sema, lower, verify, optimize,
                           // verify-post, total

  // Phases are recorded in execution order; their start offsets are
  // monotone non-decreasing ("total" anchors at 0 and comes last).
  double PrevStart = 0;
  double MaxEnd = 0;
  for (const obs::PhaseTiming &Ph : P) {
    if (Ph.Name == "total")
      continue;
    EXPECT_GE(Ph.WallStart, PrevStart) << Ph.Name;
    EXPECT_GE(Ph.WallSeconds, 0.0) << Ph.Name;
    EXPECT_GE(Ph.CpuSeconds, 0.0) << Ph.Name;
    PrevStart = Ph.WallStart;
    MaxEnd = std::max(MaxEnd, Ph.WallStart + Ph.WallSeconds);
  }
  EXPECT_EQ(P.back().Name, "total");
  // The total phase spans every other phase on the shared wall clock.
  EXPECT_GE(R.totalWallSeconds(), MaxEnd);

  for (const char *Name :
       {"parse", "sema", "lower", "verify", "optimize", "verify-post"})
    EXPECT_NE(R.Phases.find(Name), nullptr) << Name;

  // Both clocks measured for both derived timings (satellite of the old
  // OptimizeSeconds-vs-TotalSeconds clock mix-up).
  EXPECT_GT(R.totalWallSeconds(), 0.0);
  EXPECT_GE(R.totalCpuSeconds(), 0.0);
  EXPECT_GT(R.optimizeWallSeconds(), 0.0);
  EXPECT_GE(R.optimizeCpuSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(R.optimizeWallSeconds(), R.Phases.wallOf("optimize"));
}

TEST(PhaseTimings, RecordedEvenOnFrontEndError) {
  CompileResult R = compileSource("program broken\n  this is not valid\n");
  EXPECT_FALSE(R.Success);
  ASSERT_NE(R.Phases.find("total"), nullptr);
  EXPECT_GT(R.totalWallSeconds(), 0.0);
}

TEST(PhaseTimings, AuditAndSnapshotPhasesAppear) {
  PipelineOptions PO;
  PO.Audit = true;
  CompileResult R = compileOrDie(Program, PO);
  EXPECT_NE(R.Phases.find("snapshot"), nullptr);
  EXPECT_NE(R.Phases.find("audit"), nullptr);
}

TEST(PipelineTrace, DisabledByDefault) {
  CompileResult R = compileOrDie(Program);
  EXPECT_FALSE(R.Trace.enabled());
  EXPECT_TRUE(R.Trace.events().empty());
}

TEST(PipelineTrace, FullCompileTraceRoundTrips) {
  PipelineOptions PO;
  PO.Telemetry.Trace = true;
  CompileResult R = compileOrDie(Program, PO);

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(R.Trace.toJson(), V, &Err)) << Err;
  const obs::JsonValue *Events = V.get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  std::set<std::string> Names;
  for (const obs::JsonValue &E : Events->Array)
    Names.insert(E.get("name")->String);
  // The acceptance bar: at least five named pipeline phases, plus the
  // optimizer's own sub-phases.
  for (const char *Phase : {"parse", "sema", "lower", "verify", "optimize"})
    EXPECT_TRUE(Names.count(Phase)) << Phase;
  EXPECT_TRUE(Names.count("cig-build"));
  EXPECT_TRUE(Names.count("solve-avail"));
  EXPECT_TRUE(Names.count("eliminate"));
  EXPECT_GE(Names.size(), 5u);
}

TEST(PipelineTrace, TracePathWritesFile) {
  std::string Path = testing::TempDir() + "nascent_pipeline_trace.json";
  PipelineOptions PO;
  PO.Telemetry.TracePath = Path; // implies Trace
  CompileResult R = compileOrDie(Program, PO);
  EXPECT_TRUE(R.Trace.enabled());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  obs::JsonValue V;
  EXPECT_TRUE(obs::parseJson(SS.str(), V));
  std::remove(Path.c_str());
}

TEST(OptimizerStatsJson, FieldForFieldCoverage) {
  OptimizerStats S;
  // Give every field a distinct value via the X-macro...
  unsigned Seed = 1;
#define NASCENT_X(F) S.F = Seed++;
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(S.toJson(), V, &Err)) << Err;
  ASSERT_TRUE(V.isObject());

  // ...and assert the JSON carries exactly those fields with those values.
  unsigned Expect = 1;
  size_t NumFields = 0;
#define NASCENT_X(F)                                                           \
  {                                                                            \
    const obs::JsonValue *P = V.get(#F);                                       \
    ASSERT_NE(P, nullptr) << #F;                                               \
    EXPECT_EQ(P->Number, static_cast<double>(Expect)) << #F;                   \
    ++Expect;                                                                  \
    ++NumFields;                                                               \
  }
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X
  EXPECT_EQ(V.Object.size(), NumFields);
}

TEST(OptimizerStatsJson, PrintCoversEveryField) {
  OptimizerStats S;
  std::ostringstream OS;
  S.print(OS);
  std::string Text = OS.str();
#define NASCENT_X(F) EXPECT_NE(Text.find(#F), std::string::npos) << #F;
  NASCENT_OPTIMIZER_STATS_FIELDS(NASCENT_X)
#undef NASCENT_X
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the check-lifecycle provenance recorder (obs/Provenance.h):
/// event recording and querying, internal-consistency validation, the JSON
/// envelope schema validator (including its rejection of dangling witness
/// tags), the DOT export, and the -explain decision chains produced through
/// the full pipeline.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/Provenance.h"

#include "gtest/gtest.h"

using namespace nascent;
using obs::LifecycleEvent;
using obs::LifecycleKind;

namespace {

LifecycleEvent event(CheckTag Tag, LifecycleKind Kind,
                     const char *Pass = "TestPass") {
  LifecycleEvent E;
  E.Tag = Tag;
  E.Kind = Kind;
  E.Pass = Pass;
  E.Function = "f";
  E.Block = "entry";
  E.CheckStr = "Check(i - n <= -1)";
  return E;
}

TEST(Provenance, DisabledRecorderIgnoresEvents) {
  obs::ProvenanceRecorder PR;
  PR.record(event(1, LifecycleKind::Inserted));
  EXPECT_FALSE(PR.enabled());
  EXPECT_TRUE(PR.events().empty());
}

TEST(Provenance, RecordsInOrderAndCounts) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted, "Lowering"));
  PR.record(event(2, LifecycleKind::Inserted, "Lowering"));
  PR.record(event(1, LifecycleKind::Strengthened, "CheckStrengthening"));
  PR.record(event(1, LifecycleKind::Residualized, "Pipeline"));
  PR.record(event(2, LifecycleKind::Eliminated, "Elimination"));

  ASSERT_EQ(PR.events().size(), 5u);
  for (size_t I = 0; I != PR.events().size(); ++I)
    EXPECT_EQ(PR.events()[I].Seq, I);

  EXPECT_EQ(PR.count(LifecycleKind::Inserted), 2u);
  EXPECT_EQ(PR.count(LifecycleKind::Inserted, "Lowering"), 2u);
  EXPECT_EQ(PR.count(LifecycleKind::Inserted, "LazyCodeMotion"), 0u);
  EXPECT_EQ(PR.count(LifecycleKind::Eliminated, "Elimination"), 1u);

  EXPECT_EQ(PR.tags(), (std::vector<CheckTag>{1, 2}));
  EXPECT_EQ(PR.timelineOf(1), (std::vector<size_t>{0, 2, 3}));
  ASSERT_NE(PR.lastEventOf(2), nullptr);
  EXPECT_EQ(PR.lastEventOf(2)->Kind, LifecycleKind::Eliminated);
  EXPECT_EQ(PR.lastEventOf(99), nullptr);
}

TEST(Provenance, TerminalKindClassification) {
  EXPECT_FALSE(obs::isTerminalLifecycleKind(LifecycleKind::Inserted));
  EXPECT_FALSE(obs::isTerminalLifecycleKind(LifecycleKind::Strengthened));
  EXPECT_FALSE(obs::isTerminalLifecycleKind(LifecycleKind::Moved));
  EXPECT_TRUE(obs::isTerminalLifecycleKind(LifecycleKind::SubsumedBy));
  EXPECT_TRUE(obs::isTerminalLifecycleKind(LifecycleKind::Eliminated));
  EXPECT_TRUE(obs::isTerminalLifecycleKind(LifecycleKind::Trapped));
  EXPECT_TRUE(obs::isTerminalLifecycleKind(LifecycleKind::Residualized));
}

TEST(Provenance, ValidateCatchesDanglingWitness) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted));
  LifecycleEvent E = event(1, LifecycleKind::SubsumedBy, "Elimination");
  E.OtherTag = 42; // never recorded
  PR.record(E);
  std::vector<std::string> Problems = PR.validate();
  ASSERT_FALSE(Problems.empty());
  bool Found = false;
  for (const std::string &P : Problems)
    if (P.find("42") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "no problem mentions the dangling tag";
}

TEST(Provenance, ValidateCatchesNonTerminalLifecycle) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted));
  EXPECT_FALSE(PR.validate().empty());
  PR.record(event(1, LifecycleKind::Residualized));
  EXPECT_TRUE(PR.validate().empty());
}

TEST(Provenance, ValidateCatchesEventsAfterTerminal) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted));
  PR.record(event(1, LifecycleKind::Eliminated));
  PR.record(event(1, LifecycleKind::Moved));
  // The Moved-after-Eliminated and the now non-terminal ending both count.
  EXPECT_FALSE(PR.validate().empty());
}

/// Wraps a recorder into the documented envelope and parses it back.
obs::JsonValue envelope(const obs::ProvenanceRecorder &PR) {
  std::string Doc = "{\"schemaVersion\": " +
                    std::to_string(obs::BenchSchemaVersion) +
                    ", \"provenance\": " + PR.toJson() + "}";
  obs::JsonValue V;
  std::string Err;
  EXPECT_TRUE(obs::parseJson(Doc, V, &Err)) << Err;
  return V;
}

TEST(Provenance, EnvelopeValidates) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted, "Lowering"));
  LifecycleEvent S = event(2, LifecycleKind::Inserted, "PreheaderInsertion");
  PR.record(S);
  LifecycleEvent Sub = event(1, LifecycleKind::SubsumedBy, "Elimination");
  Sub.OtherTag = 2;
  Sub.Edge = "CondCheck(n - 100 <= 0)";
  PR.record(Sub);
  PR.record(event(2, LifecycleKind::Residualized, "Pipeline"));

  std::string Err;
  EXPECT_TRUE(obs::validateProvenanceDocument(envelope(PR), &Err)) << Err;
}

TEST(Provenance, DocumentValidatorRejectsCorruption) {
  obs::ProvenanceRecorder PR;
  PR.enable();
  PR.record(event(1, LifecycleKind::Inserted, "Lowering"));
  PR.record(event(1, LifecycleKind::Residualized, "Pipeline"));
  std::string Prov = PR.toJson();

  auto Reject = [](const std::string &Doc) {
    obs::JsonValue V;
    std::string Err;
    ASSERT_TRUE(obs::parseJson(Doc, V, &Err)) << Err;
    EXPECT_FALSE(obs::validateProvenanceDocument(V, &Err)) << Doc;
    EXPECT_FALSE(Err.empty());
  };

  // Wrong schema version.
  Reject("{\"schemaVersion\": 999999, \"provenance\": " + Prov + "}");
  // Missing provenance payload.
  Reject("{\"schemaVersion\": " + std::to_string(obs::BenchSchemaVersion) +
         "}");
  // Unknown lifecycle kind.
  Reject("{\"schemaVersion\": " + std::to_string(obs::BenchSchemaVersion) +
         ", \"provenance\": {\"events\": [{\"seq\": 0, \"tag\": 1, "
         "\"kind\": \"vanished\", \"pass\": \"P\", \"function\": \"f\", "
         "\"block\": \"entry\", \"check\": \"c\"}], \"checks\": []}}");
  // Dangling witness reference.
  Reject("{\"schemaVersion\": " + std::to_string(obs::BenchSchemaVersion) +
         ", \"provenance\": {\"events\": [{\"seq\": 0, \"tag\": 1, "
         "\"kind\": \"subsumed-by\", \"otherTag\": 7, \"pass\": \"P\", "
         "\"function\": \"f\", \"block\": \"entry\", \"check\": \"c\"}], "
         "\"checks\": []}}");
}

/// Compiles with provenance enabled; the program is written so line 6
/// holds the only subscripted statement.
CompileResult compileWithProvenance(PlacementScheme Scheme) {
  PipelineOptions PO;
  PO.Opt.Scheme = Scheme;
  PO.Telemetry.Provenance = true;
  CompileResult R = compileSource(R"(
program p
  integer n, i
  real a(50)
  n = input(40)
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
  print a(1)
end program
function input(x) : integer
  integer x
  return x
end function
)",
                                  PO);
  EXPECT_TRUE(R.Success) << R.Diags.render();
  return R;
}

TEST(Provenance, PipelineProducesClosedLifecycles) {
  CompileResult R = compileWithProvenance(PlacementScheme::LLS);
  EXPECT_FALSE(R.Provenance.events().empty());
  std::vector<std::string> Problems = R.Provenance.validate();
  EXPECT_TRUE(Problems.empty())
      << "provenance not closed: " << Problems.front();
}

TEST(Provenance, ExplainSiteShowsCompleteChain) {
  CompileResult R = compileWithProvenance(PlacementScheme::LLS);
  // The a(i) subscripts sit on line 7 of the raw-string source (the
  // leading newline makes "program p" line 2).
  std::string Chain = R.Provenance.explainSite(7);
  ASSERT_FALSE(Chain.empty());
  EXPECT_NE(Chain.find("check t"), std::string::npos) << Chain;
  EXPECT_NE(Chain.find("inserted"), std::string::npos) << Chain;
  // Every chain ends in a terminal verdict.
  bool Terminal = Chain.find("residualized") != std::string::npos ||
                  Chain.find("eliminated") != std::string::npos ||
                  Chain.find("subsumed-by") != std::string::npos ||
                  Chain.find("trapped") != std::string::npos;
  EXPECT_TRUE(Terminal) << Chain;
  // A site with no checks yields nothing.
  EXPECT_TRUE(R.Provenance.explainSite(9999).empty());
}

TEST(Provenance, DotExportNamesEveryCheck) {
  CompileResult R = compileWithProvenance(PlacementScheme::LLS);
  std::string Dot = R.Provenance.toDot();
  EXPECT_NE(Dot.find("digraph check_provenance"), std::string::npos);
  for (CheckTag T : R.Provenance.tags())
    EXPECT_NE(Dot.find("t" + std::to_string(T)), std::string::npos)
        << "tag " << T << " missing from DOT export";
}

TEST(Provenance, EnvelopeValidatesForPipelineOutput) {
  CompileResult R = compileWithProvenance(PlacementScheme::MCM);
  std::string Err;
  EXPECT_TRUE(obs::validateProvenanceDocument(envelope(R.Provenance), &Err))
      << Err;
}

} // namespace

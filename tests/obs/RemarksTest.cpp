//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization-remark stream: per-kind remark totals must reconcile
/// exactly with OptimizerStats for every placement scheme, the family
/// filter must drop non-matching remarks, and the interpreter's
/// residual-check join must agree with the dynamic check count.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "obs/Json.h"
#include "obs/Remarks.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Triangular loop over two arrays with a conditional update: exercises
/// elimination, strengthening, preheader hoisting, and LCM placement.
const char *Corpus = R"(
program remarks
  integer n, i, j
  real a(40), b(40)
  n = 30
  do i = 1, n
    a(i) = real(i)
  end do
  do i = 1, n
    do j = i, n
      b(j) = b(j) + a(i)
      if (j > 5) then
        a(j) = b(j)
      end if
    end do
  end do
  print b(7)
end program
)";

/// Per-kind reconciliation of one compile's remark stream against its
/// OptimizerStats.
void expectReconciled(const CompileResult &R, PlacementScheme S) {
  const char *N = placementSchemeName(S);
  const obs::RemarkCollector &RC = R.Remarks;
  EXPECT_EQ(RC.count(obs::RemarkKind::Eliminated), R.Stats.ChecksDeleted) << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::Strengthened),
            R.Stats.ChecksStrengthened)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::LcmInserted), R.Stats.ChecksInserted)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::CondInserted),
            R.Stats.CondChecksInserted)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::Rehoisted), R.Stats.Rehoisted) << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::CompileTimeDeleted),
            R.Stats.CompileTimeDeleted)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::CompileTimeTrap),
            R.Stats.CompileTimeTraps)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::IntervalEliminated),
            R.Stats.IntervalDeleted)
      << N;
  EXPECT_EQ(RC.count(obs::RemarkKind::Residual), 0u) << N;
}

CompileResult compileWithRemarks(const char *Source, PlacementScheme S,
                                 const std::string &Filter = "") {
  PipelineOptions PO;
  PO.Opt.Scheme = S;
  PO.Telemetry.Remarks = true;
  PO.Telemetry.RemarkFilter = Filter;
  return compileOrDie(Source, PO);
}

} // namespace

TEST(Remarks, ReconcilesWithStatsAcrossAllSchemes) {
  for (PlacementScheme S :
       {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
        PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
        PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI}) {
    CompileResult R = compileWithRemarks(Corpus, S);
    expectReconciled(R, S);
  }
}

TEST(Remarks, LlsEmitsDecisions) {
  CompileResult R = compileWithRemarks(Corpus, PlacementScheme::LLS);
  EXPECT_FALSE(R.Remarks.remarks().empty());
  EXPECT_GT(R.Stats.ChecksDeleted, 0u);
  for (const obs::Remark &M : R.Remarks.remarks()) {
    EXPECT_FALSE(M.Pass.empty());
    EXPECT_FALSE(M.Function.empty());
    EXPECT_FALSE(M.Block.empty());
    EXPECT_FALSE(M.CheckStr.empty());
    EXPECT_FALSE(M.Justification.empty());
  }
}

TEST(Remarks, DisabledCollectorStaysEmpty) {
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::LLS;
  CompileResult R = compileOrDie(Corpus, PO);
  EXPECT_FALSE(R.Remarks.enabled());
  EXPECT_TRUE(R.Remarks.remarks().empty());
}

TEST(Remarks, FamilyFilter) {
  CompileResult All = compileWithRemarks(Corpus, PlacementScheme::LLS);
  CompileResult None =
      compileWithRemarks(Corpus, PlacementScheme::LLS, "zzz-no-such-family");
  CompileResult OnlyB = compileWithRemarks(Corpus, PlacementScheme::LLS, "^b$");
  EXPECT_TRUE(None.Remarks.remarks().empty());
  EXPECT_FALSE(OnlyB.Remarks.remarks().empty());
  EXPECT_LT(OnlyB.Remarks.remarks().size(), All.Remarks.remarks().size());
  for (const obs::Remark &M : OnlyB.Remarks.remarks())
    EXPECT_EQ(M.Origin.ArrayName, "b");
}

TEST(Remarks, ResidualJoinMatchesDynamicCounts) {
  CompileResult R = compileWithRemarks(Corpus, PlacementScheme::LLS);
  InterpOptions IO;
  IO.CountCheckSites = true;
  ExecResult E = interpret(*R.M, IO);
  ASSERT_TRUE(E.ok()) << E.FaultMessage;

  size_t Before = R.Remarks.remarks().size();
  emitResidualCheckRemarks(*R.M, E.CheckSites, R.Remarks);
  // One residual remark per *static* surviving check...
  EXPECT_EQ(R.Remarks.count(obs::RemarkKind::Residual), R.Stats.ChecksAfter);
  EXPECT_EQ(R.Remarks.remarks().size(), Before + R.Stats.ChecksAfter);
  // ...and their dynamic counts sum to the interpreter's check total.
  uint64_t Sum = 0;
  for (const obs::Remark &M : R.Remarks.remarks())
    if (M.Kind == obs::RemarkKind::Residual) {
      EXPECT_TRUE(M.HasDynCount);
      Sum += M.DynCount;
    }
  EXPECT_EQ(Sum, E.DynChecks);
}

TEST(Remarks, JsonStreamParses) {
  CompileResult R = compileWithRemarks(Corpus, PlacementScheme::LLS);
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(R.Remarks.toJson(), V, &Err)) << Err;
  ASSERT_TRUE(V.isArray());
  ASSERT_EQ(V.Array.size(), R.Remarks.remarks().size());
  for (const obs::JsonValue &M : V.Array) {
    ASSERT_NE(M.get("kind"), nullptr);
    ASSERT_NE(M.get("pass"), nullptr);
    ASSERT_NE(M.get("block"), nullptr);
    ASSERT_NE(M.get("check"), nullptr);
    ASSERT_NE(M.get("justification"), nullptr);
    ASSERT_NE(M.get("origin"), nullptr);
  }
}

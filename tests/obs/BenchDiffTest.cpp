//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the bench schema validator and the noise-aware diff engine
/// behind `examples/benchdiff`: verdicts on synthetic baseline pairs
/// (exact counters, CI-gated times, wall-time immunity, stale baselines)
/// and a round-trip of the baseline file format.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "obs/BenchSchema.h"
#include "obs/Json.h"
#include "obs/Sampling.h"

#include "gtest/gtest.h"

using namespace nascent;
using namespace nascent::obs;

namespace {

JsonValue parse(const std::string &Text) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Text, V, &Err)) << Err;
  return V;
}

/// A minimal schema-valid table-harness document with one run. Timing
/// medians are in seconds; the CI is [Median - Spread, Median + Spread].
std::string makeTableDoc(uint64_t DynChecks, uint64_t WordOps,
                         double CpuMedian, double Spread,
                         const char *GitSha = "abc123") {
  JsonWriter W;
  W.beginObject();
  W.kv("schemaVersion", BenchSchemaVersion);
  W.kv("harness", "synthetic");
  W.key("env");
  W.beginObject();
  W.kv("compiler", "testcc 1.0");
  W.kv("buildType", "Release");
  W.kv("cxxFlags", "");
  W.kv("sanitize", "");
  W.kv("gitSha", GitSha);
  W.kv("cpu", "test cpu");
  W.kv("hardwareThreads", 1);
  W.endObject();
  W.key("config");
  W.beginObject();
  W.kv("reps", 3);
  W.kv("warmup", 1);
  W.endObject();
  W.key("runs");
  W.beginArray();
  W.beginObject();
  W.kv("source", "PRX");
  W.kv("scheme", "LLS");
  W.key("run");
  W.beginObject();
  W.kv("program", "vortex");
  W.kv("dynChecks", DynChecks);
  W.kv("dynInstrs", 1000);
  W.kv("staticChecks", 12);
  W.key("stats");
  W.beginObject();
  W.endObject();
  W.key("timing");
  W.beginObject();
  for (const char *Clock :
       {"optimizeWall", "optimizeCpu", "totalWall", "totalCpu"}) {
    SampleStats S;
    S.N = 3;
    S.Median = S.Mean = CpuMedian;
    S.Min = S.CiLow = CpuMedian - Spread;
    S.Max = S.CiHigh = CpuMedian + Spread;
    S.MAD = Spread / 2;
    W.key(Clock);
    S.writeJson(W);
  }
  W.endObject();
  W.key("work");
  W.beginObject();
  W.kv("support.bitvector.word_ops", WordOps);
  W.endObject();
  W.endObject();
  W.endObject();
  W.endArray();
  W.endObject();
  return W.str();
}

const MetricDiff *findDiff(const BenchDiffResult &R, const std::string &Key) {
  for (const MetricDiff &D : R.Diffs)
    if (D.Key == Key)
      return &D;
  return nullptr;
}

TEST(BenchSchema, ValidatesSyntheticDocument) {
  std::string Err;
  EXPECT_TRUE(
      validateBenchDocument(parse(makeTableDoc(100, 50, 0.01, 0.001)), &Err))
      << Err;
}

TEST(BenchSchema, RejectsUnknownSchemaVersion) {
  std::string Doc = makeTableDoc(100, 50, 0.01, 0.001);
  size_t Pos = Doc.find("\"schemaVersion\":1");
  ASSERT_NE(Pos, std::string::npos);
  Doc.replace(Pos, 17, "\"schemaVersion\":99");
  std::string Err;
  EXPECT_FALSE(validateBenchDocument(parse(Doc), &Err));
  EXPECT_NE(Err.find("unknown schemaVersion"), std::string::npos) << Err;
}

TEST(BenchSchema, RejectsMissingRequiredFields) {
  std::string Err;
  EXPECT_FALSE(validateBenchDocument(parse("{}"), &Err));
  EXPECT_FALSE(validateBenchDocument(
      parse(R"({"schemaVersion":1,"harness":"x"})"), &Err));
  EXPECT_NE(Err.find("env"), std::string::npos) << Err;

  // A run element whose "run" object lost its counters must fail too.
  std::string Doc = makeTableDoc(100, 50, 0.01, 0.001);
  size_t Pos = Doc.find("\"dynChecks\"");
  ASSERT_NE(Pos, std::string::npos);
  Doc.replace(Pos, 11, "\"zzChecks\"");
  EXPECT_FALSE(validateBenchDocument(parse(Doc), &Err));
  EXPECT_NE(Err.find("dynChecks"), std::string::npos) << Err;
}

TEST(BenchDiff, ExtractsKeyedMetrics) {
  std::vector<BenchMetric> Ms =
      extractBenchMetrics(parse(makeTableDoc(100, 50, 0.01, 0.001)));
  auto Find = [&Ms](const std::string &Key) -> const BenchMetric * {
    for (const BenchMetric &M : Ms)
      if (M.Key == Key)
        return &M;
    return nullptr;
  };
  const BenchMetric *Checks = Find("PRX/LLS/vortex/dynChecks");
  ASSERT_NE(Checks, nullptr);
  EXPECT_EQ(Checks->Kind, MetricKind::ExactCount);
  EXPECT_DOUBLE_EQ(Checks->Value, 100);

  const BenchMetric *Work =
      Find("PRX/LLS/vortex/work.support.bitvector.word_ops");
  ASSERT_NE(Work, nullptr);
  EXPECT_EQ(Work->Kind, MetricKind::ExactCount);

  const BenchMetric *Cpu = Find("PRX/LLS/vortex/timing.optimizeCpu");
  ASSERT_NE(Cpu, nullptr);
  EXPECT_EQ(Cpu->Kind, MetricKind::TimeSeconds);
  EXPECT_DOUBLE_EQ(Cpu->Value, 0.01);

  const BenchMetric *Wall = Find("PRX/LLS/vortex/timing.optimizeWall");
  ASSERT_NE(Wall, nullptr);
  EXPECT_EQ(Wall->Kind, MetricKind::Informational);
}

TEST(BenchDiff, IdenticalDocumentsAreClean) {
  JsonValue Doc = parse(makeTableDoc(100, 50, 0.01, 0.001));
  BenchDiffResult R = diffBenchDocuments(Doc, Doc);
  EXPECT_FALSE(R.hasRegression());
  EXPECT_EQ(R.NumRegressed, 0u);
  EXPECT_EQ(R.NumMissing, 0u);
  EXPECT_EQ(R.NumImproved, 0u);
  EXPECT_TRUE(R.EnvDrift.empty());
}

TEST(BenchDiff, CounterIncreaseRegresses) {
  JsonValue Base = parse(makeTableDoc(100, 50, 0.01, 0.001));
  JsonValue Cur = parse(makeTableDoc(101, 51, 0.01, 0.001));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_TRUE(R.hasRegression());
  EXPECT_EQ(R.NumRegressed, 2u); // dynChecks and the work counter
  const MetricDiff *D = findDiff(R, "PRX/LLS/vortex/dynChecks");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Verdict, DiffVerdict::Regressed);
}

TEST(BenchDiff, CounterDecreaseImproves) {
  JsonValue Base = parse(makeTableDoc(100, 50, 0.01, 0.001));
  JsonValue Cur = parse(makeTableDoc(90, 50, 0.01, 0.001));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_FALSE(R.hasRegression());
  EXPECT_EQ(R.NumImproved, 1u);
}

TEST(BenchDiff, TimeWithinNoiseDoesNotGate) {
  // 20% slower but the CIs overlap: within noise.
  JsonValue Base = parse(makeTableDoc(100, 50, 0.010, 0.002));
  JsonValue Cur = parse(makeTableDoc(100, 50, 0.012, 0.002));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_FALSE(R.hasRegression());
  const MetricDiff *D = findDiff(R, "PRX/LLS/vortex/timing.optimizeCpu");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Verdict, DiffVerdict::WithinNoise);
}

TEST(BenchDiff, TimeSeparatedRegresses) {
  // 2x slower with tight disjoint CIs: a real regression.
  JsonValue Base = parse(makeTableDoc(100, 50, 0.010, 0.0005));
  JsonValue Cur = parse(makeTableDoc(100, 50, 0.020, 0.0005));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_TRUE(R.hasRegression());
  const MetricDiff *Cpu = findDiff(R, "PRX/LLS/vortex/timing.optimizeCpu");
  ASSERT_NE(Cpu, nullptr);
  EXPECT_EQ(Cpu->Verdict, DiffVerdict::Regressed);
  // Wall clocks never gate, even with the same 2x separation.
  const MetricDiff *Wall = findDiff(R, "PRX/LLS/vortex/timing.optimizeWall");
  ASSERT_NE(Wall, nullptr);
  EXPECT_EQ(Wall->Verdict, DiffVerdict::WithinNoise);
}

TEST(BenchDiff, TimeBelowFloorNeverGates) {
  // 10x slower, disjoint CIs, but the baseline is 10 us — below the
  // 100 us floor, where --tiny timings are pure scheduler noise.
  JsonValue Base = parse(makeTableDoc(100, 50, 1e-5, 1e-6));
  JsonValue Cur = parse(makeTableDoc(100, 50, 1e-4, 1e-6));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_FALSE(R.hasRegression());
}

TEST(BenchDiff, TimeMarginIsConfigurable) {
  // 30% slower with disjoint CIs: gated under a 10% margin, not under
  // the default 50%.
  JsonValue Base = parse(makeTableDoc(100, 50, 0.010, 0.0002));
  JsonValue Cur = parse(makeTableDoc(100, 50, 0.013, 0.0002));
  EXPECT_FALSE(diffBenchDocuments(Base, Cur).hasRegression());
  BenchDiffOptions Tight;
  Tight.TimeMargin = 0.1;
  EXPECT_TRUE(diffBenchDocuments(Base, Cur, Tight).hasRegression());
}

TEST(BenchDiff, MissingMetricFailsGate) {
  JsonValue Base = parse(makeTableDoc(100, 50, 0.01, 0.001));
  std::string CurDoc = makeTableDoc(100, 50, 0.01, 0.001);
  // Drop the work counter from the current run.
  size_t Pos = CurDoc.find("\"support.bitvector.word_ops\":50");
  ASSERT_NE(Pos, std::string::npos);
  CurDoc.erase(Pos, 31);
  BenchDiffResult R = diffBenchDocuments(Base, parse(CurDoc));
  EXPECT_TRUE(R.hasRegression());
  EXPECT_EQ(R.NumMissing, 1u);
}

TEST(BenchDiff, NewMetricIsInformational) {
  std::string BaseDoc = makeTableDoc(100, 50, 0.01, 0.001);
  size_t Pos = BaseDoc.find("\"support.bitvector.word_ops\":50");
  ASSERT_NE(Pos, std::string::npos);
  BaseDoc.erase(Pos, 31);
  JsonValue Cur = parse(makeTableDoc(100, 50, 0.01, 0.001));
  BenchDiffResult R = diffBenchDocuments(parse(BaseDoc), Cur);
  EXPECT_FALSE(R.hasRegression());
  EXPECT_EQ(R.NumNew, 1u);
}

TEST(BenchDiff, EnvDriftIsReportedNotGated) {
  JsonValue Base = parse(makeTableDoc(100, 50, 0.01, 0.001, "oldsha"));
  JsonValue Cur = parse(makeTableDoc(100, 50, 0.01, 0.001, "newsha"));
  BenchDiffResult R = diffBenchDocuments(Base, Cur);
  EXPECT_FALSE(R.hasRegression());
  ASSERT_EQ(R.EnvDrift.size(), 1u);
  EXPECT_NE(R.EnvDrift[0].find("gitSha"), std::string::npos);
}

TEST(BenchDiff, MarkdownReportNamesTheVerdict) {
  JsonValue Base = parse(makeTableDoc(100, 50, 0.01, 0.001));
  JsonValue Good = parse(makeTableDoc(100, 50, 0.01, 0.001));
  JsonValue Bad = parse(makeTableDoc(150, 50, 0.01, 0.001));

  std::string Ok = renderMarkdownReport(diffBenchDocuments(Base, Good),
                                        "BENCH_synthetic.json");
  EXPECT_NE(Ok.find("Verdict: ok"), std::string::npos) << Ok;

  std::string Fail = renderMarkdownReport(diffBenchDocuments(Base, Bad),
                                          "BENCH_synthetic.json");
  EXPECT_NE(Fail.find("**REGRESSION**"), std::string::npos) << Fail;
  EXPECT_NE(Fail.find("PRX/LLS/vortex/dynChecks"), std::string::npos) << Fail;
  EXPECT_NE(Fail.find("| 100 | 150 |"), std::string::npos) << Fail;
}

TEST(BenchDiff, BaselineFileFormatRoundTrips) {
  // Writing a document, re-parsing it, and extracting metrics must agree
  // with the metrics of the original parse — the property the on-disk
  // BENCH_*.json baselines rely on.
  std::string Doc = makeTableDoc(1234, 567, 0.0123, 0.0004);
  JsonValue First = parse(Doc);
  std::string Err;
  ASSERT_TRUE(validateBenchDocument(First, &Err)) << Err;

  std::vector<BenchMetric> A = extractBenchMetrics(First);
  std::vector<BenchMetric> B = extractBenchMetrics(parse(Doc));
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Key, B[I].Key);
    EXPECT_EQ(A[I].Kind, B[I].Kind);
    EXPECT_DOUBLE_EQ(A[I].Value, B[I].Value);
    EXPECT_DOUBLE_EQ(A[I].CiLow, B[I].CiLow);
    EXPECT_DOUBLE_EQ(A[I].CiHigh, B[I].CiHigh);
  }
  // And a diff of the document against itself is all-equal.
  BenchDiffResult R = diffBenchDocuments(First, First);
  EXPECT_EQ(R.NumEqual, R.Diffs.size());
}

TEST(BenchDiff, GoogleBenchmarkMediansAreExtracted) {
  JsonValue Doc = parse(R"({
    "schemaVersion": 1,
    "harness": "bench_micro",
    "googleBenchmark": {"benchmarks": [
      {"name": "BM_X/median", "run_name": "BM_X",
       "aggregate_name": "median", "time_unit": "ns",
       "real_time": 100.0, "cpu_time": 90.0},
      {"name": "BM_X", "run_name": "BM_X",
       "real_time": 105.0, "cpu_time": 95.0}
    ]}})");
  std::vector<BenchMetric> Ms = extractBenchMetrics(Doc);
  // Only the median aggregate contributes; the raw repetition is skipped.
  ASSERT_EQ(Ms.size(), 2u);
  EXPECT_EQ(Ms[0].Key, "BM_X/cpu_time");
  EXPECT_EQ(Ms[0].Kind, MetricKind::TimeSeconds);
  EXPECT_DOUBLE_EQ(Ms[0].Value, 90.0 * 1e-9);
  EXPECT_EQ(Ms[1].Key, "BM_X/real_time");
  EXPECT_EQ(Ms[1].Kind, MetricKind::Informational);
}

} // namespace

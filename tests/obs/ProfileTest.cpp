//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionProfile unit tests: the attach-time skeleton, interpreter
/// recording (block frequencies, loop trip histograms, array access and
/// per-site check counts), accumulation across runs, structural merge,
/// saturating arithmetic, and the serialised envelope (deterministic,
/// schema-valid, and rejecting tampered documents).
///
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "TestHelpers.h"
#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

const char *LoopProgram = R"(
program p
  real a(20), b(20)
  integer i, n
  n = 12
  do i = 1, n
    a(i) = b(i) * 2.0
  end do
  print a(3)
end program
)";

/// Compiles \p Source naively, attaches a profile, and runs it \p Runs
/// times through the interpreter.
struct Profiled {
  CompileResult R;
  ExecResult E;
  Profiled(const std::string &Source, unsigned Runs = 1,
           bool Optimize = false) {
    PipelineOptions PO;
    PO.Optimize = Optimize;
    R = compileOrDie(Source, PO);
    R.Profile.attach(*R.M);
    InterpOptions IO;
    IO.Profile = &R.Profile;
    for (unsigned K = 0; K != Runs; ++K)
      E = interpret(*R.M, IO);
  }
  obs::ExecutionProfile &profile() { return R.Profile; }
};

TEST(Profile, SaturatingAddClampsInsteadOfWrapping) {
  uint64_t Max = ~uint64_t(0);
  EXPECT_EQ(obs::saturatingAdd(5, 7), 12u);
  EXPECT_EQ(obs::saturatingAdd(Max, 1), Max);
  EXPECT_EQ(obs::saturatingAdd(Max - 3, 10), Max);
  EXPECT_EQ(obs::saturatingAdd(Max, Max), Max);
  uint64_t C = Max - 1;
  obs::saturatingInc(C);
  EXPECT_EQ(C, Max);
  obs::saturatingInc(C); // already saturated: stays put
  EXPECT_EQ(C, Max);
}

TEST(Profile, AttachBuildsZeroedSkeleton) {
  CompileResult R = compileNaive(LoopProgram);
  obs::ExecutionProfile P;
  EXPECT_FALSE(P.attached());
  P.attach(*R.M);
  ASSERT_TRUE(P.attached());
  ASSERT_EQ(P.functions().size(), 1u);
  const obs::FunctionProfile &FP = P.functions()[0];
  EXPECT_EQ(FP.Name, "p");
  EXPECT_EQ(FP.BlockNames.size(), FP.BlockCounts.size());
  EXPECT_FALSE(FP.BlockNames.empty());
  EXPECT_EQ(FP.Loops.size(), 1u);
  EXPECT_EQ(FP.Arrays.size(), 2u); // a and b
  EXPECT_FALSE(FP.Sites.empty());  // naive build keeps every check
  // Everything starts at zero.
  for (uint64_t C : FP.BlockCounts)
    EXPECT_EQ(C, 0u);
  for (const obs::CheckSiteProfile &S : FP.Sites) {
    EXPECT_EQ(S.Hits, 0u);
    EXPECT_EQ(S.Traps, 0u);
    EXPECT_NE(S.Tag, NoCheckTag);
  }
  EXPECT_EQ(P.runs(), 0u);
  EXPECT_EQ(P.dynChecks(), 0u);
  EXPECT_EQ(P.arrayAccesses(), 0u);
  EXPECT_EQ(P.residualSites(), FP.Sites.size());
  EXPECT_EQ(P.checksPerAccess(), 0.0);
}

TEST(Profile, InterpreterRecordsLoopAndAccessCounts) {
  Profiled P(LoopProgram);
  ASSERT_TRUE(P.E.ok()) << P.E.FaultMessage;
  const obs::FunctionProfile &FP = P.profile().functions()[0];

  // The single counted loop ran once, completing all 12 trips.
  ASSERT_EQ(FP.Loops.size(), 1u);
  const obs::LoopProfile &L = FP.Loops[0];
  EXPECT_EQ(L.Entries, 1u);
  EXPECT_EQ(L.Iterations, 12u);
  EXPECT_EQ(L.PartialEntries, 0u);
  ASSERT_EQ(L.TripHistogram.size(), 1u);
  EXPECT_EQ(L.TripHistogram.begin()->first, 12u);
  EXPECT_EQ(L.TripHistogram.begin()->second, 1u);

  // Array traffic: 12 loads of b, 12 stores + 1 load (the print) of a.
  uint64_t Loads = 0, Stores = 0;
  for (const obs::ArrayProfile &A : FP.Arrays) {
    Loads += A.Loads;
    Stores += A.Stores;
    if (A.Name == "b") {
      EXPECT_EQ(A.Loads, 12u);
      EXPECT_EQ(A.Stores, 0u);
    }
    if (A.Name == "a") {
      EXPECT_EQ(A.Loads, 1u);
      EXPECT_EQ(A.Stores, 12u);
    }
  }
  EXPECT_EQ(P.profile().arrayAccesses(), Loads + Stores);

  // Site totals agree with the interpreter's aggregate counters.
  EXPECT_EQ(P.profile().dynChecks(), P.E.DynChecks);
  EXPECT_EQ(P.profile().dynTraps(), 0u);
  EXPECT_EQ(P.profile().runs(), 1u);
  EXPECT_EQ(P.profile().trappedRuns(), 0u);
  EXPECT_GT(P.profile().checksPerAccess(), 0.0);

  // The header block executed more often than the entry block.
  uint64_t MaxBlock = 0;
  for (uint64_t C : FP.BlockCounts)
    MaxBlock = std::max(MaxBlock, C);
  EXPECT_GE(MaxBlock, 12u);
}

TEST(Profile, ZeroTripLoopRecordsEmptyEntry) {
  Profiled P(R"(
program p
  integer i, s
  s = 0
  do i = 5, 1
    s = s + 1
  end do
  print s
end program
)");
  ASSERT_TRUE(P.E.ok()) << P.E.FaultMessage;
  const obs::FunctionProfile &FP = P.profile().functions()[0];
  ASSERT_EQ(FP.Loops.size(), 1u);
  const obs::LoopProfile &L = FP.Loops[0];
  EXPECT_EQ(L.Entries, 1u);
  EXPECT_EQ(L.Iterations, 0u);
  ASSERT_EQ(L.TripHistogram.count(0), 1u);
  EXPECT_EQ(L.TripHistogram.at(0), 1u);
}

TEST(Profile, CountsAccumulateAcrossRuns) {
  Profiled Once(LoopProgram, 1);
  Profiled Thrice(LoopProgram, 3);
  EXPECT_EQ(Thrice.profile().runs(), 3u);
  EXPECT_EQ(Thrice.profile().dynChecks(), 3 * Once.profile().dynChecks());
  EXPECT_EQ(Thrice.profile().arrayAccesses(),
            3 * Once.profile().arrayAccesses());
  const obs::LoopProfile &L = Thrice.profile().functions()[0].Loops[0];
  EXPECT_EQ(L.Entries, 3u);
  EXPECT_EQ(L.TripHistogram.at(12), 3u);
  // Density is a ratio: constant across run counts.
  EXPECT_DOUBLE_EQ(Thrice.profile().checksPerAccess(),
                   Once.profile().checksPerAccess());
}

TEST(Profile, MergeAccumulatesMatchingProfiles) {
  Profiled A(LoopProgram, 1);
  Profiled B(LoopProgram, 2);
  obs::ExecutionProfile &Dst = A.profile();
  ASSERT_TRUE(Dst.merge(B.profile()));
  EXPECT_EQ(Dst.runs(), 3u);
  EXPECT_EQ(Dst.dynChecks(), 3 * B.profile().dynChecks() / 2);
  EXPECT_EQ(Dst.functions()[0].Loops[0].TripHistogram.at(12), 3u);
  // Merged result serialises identically to a profile that simply ran
  // three times.
  Profiled Three(LoopProgram, 3);
  EXPECT_EQ(Dst.toJson(), Three.profile().toJson());
}

TEST(Profile, MergeRejectsStructuralMismatch) {
  Profiled A(LoopProgram);
  Profiled Other(R"(
program p
  integer i
  i = 1
  print i
end program
)");
  std::string Before = A.profile().toJson();
  EXPECT_FALSE(A.profile().merge(Other.profile()));
  EXPECT_EQ(A.profile().toJson(), Before); // unchanged on failure
}

TEST(Profile, EnvelopeIsDeterministicAndSchemaValid) {
  Profiled A(LoopProgram);
  Profiled B(LoopProgram);
  std::string EnvA = A.profile().toEnvelopeJson();
  EXPECT_EQ(EnvA, B.profile().toEnvelopeJson());
  EXPECT_EQ(EnvA, A.profile().toEnvelopeJson()); // stable re-serialisation

  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(EnvA, Doc, &Err)) << Err;
  EXPECT_TRUE(obs::validateProfileDocument(Doc, &Err)) << Err;
}

TEST(Profile, ValidationRejectsTamperedDocuments) {
  Profiled P(LoopProgram);
  std::string Env = P.profile().toEnvelopeJson();

  auto Rejects = [](std::string Doc, const std::string &From,
                    const std::string &To) {
    size_t At = Doc.find(From);
    ASSERT_NE(At, std::string::npos) << From;
    Doc.replace(At, From.size(), To);
    obs::JsonValue V;
    std::string Err;
    ASSERT_TRUE(obs::parseJson(Doc, V, &Err)) << Err;
    EXPECT_FALSE(obs::validateProfileDocument(V, &Err)) << Doc;
    EXPECT_FALSE(Err.empty());
  };

  // Unknown profile version.
  Rejects(Env, "\"profileVersion\":1", "\"profileVersion\":99");
  // Advertised totals no longer reconcile with the per-function payload.
  Rejects(Env, "\"dynChecks\":" + std::to_string(P.profile().dynChecks()),
          "\"dynChecks\":123456789");
  Rejects(Env,
          "\"arrayAccesses\":" + std::to_string(P.profile().arrayAccesses()),
          "\"arrayAccesses\":123456789");
}

TEST(Profile, OptimizedProfileHasFewerSitesSameAccesses) {
  // The headline the layer exists for: optimization shrinks dynamic check
  // density while the access denominator stays fixed.
  Profiled Naive(LoopProgram, 1, /*Optimize=*/false);
  Profiled Opt(LoopProgram, 1, /*Optimize=*/true);
  ASSERT_TRUE(Naive.E.ok());
  ASSERT_TRUE(Opt.E.ok());
  EXPECT_EQ(Naive.profile().arrayAccesses(), Opt.profile().arrayAccesses());
  EXPECT_LE(Opt.profile().dynChecks(), Naive.profile().dynChecks());
  EXPECT_LE(Opt.profile().checksPerAccess(),
            Naive.profile().checksPerAccess());
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// The minimal JSON writer/parser underpinning every telemetry emitter:
/// escaping, nesting, and writer->parser round trips.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::obs;

TEST(Json, WriterBasics) {
  JsonWriter W;
  W.beginObject();
  W.kv("a", 1);
  W.kv("b", "two");
  W.kv("c", true);
  W.key("d");
  W.beginArray();
  W.value(1.5);
  W.null();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":[1.5,null]}");
}

TEST(Json, Escaping) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  JsonWriter W;
  W.beginObject();
  W.kv("k\"ey", "v\nal");
  W.endObject();
  JsonValue V;
  ASSERT_TRUE(parseJson(W.str(), V));
  ASSERT_NE(V.get("k\"ey"), nullptr);
  EXPECT_EQ(V.get("k\"ey")->String, "v\nal");
}

TEST(Json, ParserBasics) {
  JsonValue V;
  ASSERT_TRUE(parseJson("  {\"x\": [1, 2.5, -3], \"y\": {\"z\": false}} ", V));
  ASSERT_TRUE(V.isObject());
  const JsonValue *X = V.get("x");
  ASSERT_NE(X, nullptr);
  ASSERT_TRUE(X->isArray());
  ASSERT_EQ(X->Array.size(), 3u);
  EXPECT_EQ(X->Array[1].Number, 2.5);
  EXPECT_EQ(X->Array[2].Number, -3.0);
  const JsonValue *Y = V.get("y");
  ASSERT_NE(Y, nullptr);
  ASSERT_NE(Y->get("z"), nullptr);
  EXPECT_FALSE(Y->get("z")->Bool);
}

TEST(Json, ParserRejectsGarbage) {
  JsonValue V;
  std::string Err;
  EXPECT_FALSE(parseJson("{\"a\":}", V, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseJson("[1,2", V));
  EXPECT_FALSE(parseJson("{} trailing", V));
  EXPECT_FALSE(parseJson("", V));
}

TEST(Json, RoundTrip) {
  JsonWriter W;
  W.beginObject();
  W.key("nested");
  W.beginArray();
  for (int I = 0; I != 3; ++I) {
    W.beginObject();
    W.kv("i", I);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  JsonValue V;
  ASSERT_TRUE(parseJson(W.str(), V));
  const JsonValue *N = V.get("nested");
  ASSERT_NE(N, nullptr);
  ASSERT_EQ(N->Array.size(), 3u);
  EXPECT_EQ(N->Array[2].get("i")->Number, 2.0);
}

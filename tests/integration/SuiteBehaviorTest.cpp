//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests over the benchmark suite: the programs compile, run
/// cleanly, print stable checksums, and exhibit the paper's headline
/// shapes (Table 1 ratios, Table 2 scheme ordering, Table 3 ablation).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "suite/Suite.h"

#include <gtest/gtest.h>

#include <map>

using namespace nascent;
using namespace nascent::test;

namespace {

double pctEliminated(const ExecResult &Naive, const ExecResult &Opt) {
  return 100.0 * double(Naive.DynChecks - Opt.DynChecks) /
         double(Naive.DynChecks);
}

TEST(Suite, AllProgramsCompileAndRunClean) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    CompileResult R = compileNaive(P.Source);
    ExecResult E = interpret(*R.M);
    EXPECT_EQ(E.St, ExecResult::Status::Ok) << E.FaultMessage;
    EXPECT_FALSE(E.Output.empty()) << "programs print a checksum";
    EXPECT_GT(E.DynChecks, 1000u) << "programs must be check-heavy";
  }
}

TEST(Suite, RegistryIsConsistent) {
  EXPECT_EQ(benchmarkSuite().size(), 10u);
  EXPECT_NE(findSuiteProgram("vortex"), nullptr);
  EXPECT_NE(findSuiteProgram("simple"), nullptr);
  EXPECT_EQ(findSuiteProgram("nonesuch"), nullptr);
  for (const SuiteProgram &P : benchmarkSuite())
    EXPECT_GT(countSourceLines(P.Source), 30u) << P.Name;
}

TEST(Suite, Table1RatiosInPaperBand) {
  // The paper reports dynamic check/instruction ratios between 22% and
  // 66%; our substitution targets the same band (DESIGN.md section 6).
  for (const SuiteProgram &P : benchmarkSuite()) {
    CompileResult R = compileNaive(P.Source);
    ExecResult E = interpret(*R.M);
    double Ratio = 100.0 * double(E.DynChecks) / double(E.DynInstrs);
    EXPECT_GE(Ratio, 15.0) << P.Name;
    EXPECT_LE(Ratio, 75.0) << P.Name;
  }
}

TEST(Suite, Table2SchemeShape) {
  // The paper's headline: loop-based hoisting (LLS) eliminates the vast
  // majority of checks; plain redundancy elimination much less; ALL adds
  // nearly nothing over LLS.
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    ExecResult Naive = interpret(*compileNaive(P.Source).M);
    std::map<PlacementScheme, double> Pct;
    for (PlacementScheme S :
         {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LI,
          PlacementScheme::LLS, PlacementScheme::ALL}) {
      ExecResult E = interpret(*compileWithScheme(P.Source, S).M);
      Pct[S] = pctEliminated(Naive, E);
    }
    EXPECT_GE(Pct[PlacementScheme::NI], 40.0);
    EXPECT_GE(Pct[PlacementScheme::CS], Pct[PlacementScheme::NI] - 1e-9);
    EXPECT_GE(Pct[PlacementScheme::LI], Pct[PlacementScheme::NI] - 1e-9);
    EXPECT_GE(Pct[PlacementScheme::LLS], 90.0)
        << "LLS must eliminate the bulk of the checks";
    EXPECT_NEAR(Pct[PlacementScheme::ALL], Pct[PlacementScheme::LLS], 2.0)
        << "ALL provides only marginal benefit (paper finding 4)";
  }
}

TEST(Suite, Table3ImplicationAblationShape) {
  // Implications matter little: the primed variants lose only a few
  // percent (paper finding: < 3% almost everywhere, 7% worst case).
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    ExecResult Naive = interpret(*compileNaive(P.Source).M);
    ExecResult NI = interpret(*compileWithScheme(P.Source,
                                                 PlacementScheme::NI).M);
    ExecResult NIPrime = interpret(
        *compileWithScheme(P.Source, PlacementScheme::NI, CheckSource::PRX,
                           ImplicationMode::None)
             .M);
    double Delta = pctEliminated(Naive, NI) - pctEliminated(Naive, NIPrime);
    EXPECT_GE(Delta, -1e-9);
    EXPECT_LE(Delta, 25.0) << "implications should not dominate";

    ExecResult LLS = interpret(
        *compileWithScheme(P.Source, PlacementScheme::LLS).M);
    ExecResult LLSPrime = interpret(
        *compileWithScheme(P.Source, PlacementScheme::LLS, CheckSource::PRX,
                           ImplicationMode::CrossFamilyOnly)
             .M);
    double DeltaLLS =
        pctEliminated(Naive, LLS) - pctEliminated(Naive, LLSPrime);
    EXPECT_GE(DeltaLLS, -1e-9);
    EXPECT_LE(DeltaLLS, 10.0)
        << "LLS' keeps the preheader-to-body facts, so it stays close";
  }
}

TEST(Suite, ChecksumsAreStable) {
  // Regression lock on program outputs (deterministic interpretation).
  std::map<std::string, std::string> Expected;
  for (const SuiteProgram &P : benchmarkSuite()) {
    ExecResult E = interpret(*compileNaive(P.Source).M);
    ASSERT_FALSE(E.Output.empty()) << P.Name;
    Expected[P.Name] = E.Output.back();
  }
  // Run again: identical.
  for (const SuiteProgram &P : benchmarkSuite()) {
    ExecResult E = interpret(*compileNaive(P.Source).M);
    EXPECT_EQ(E.Output.back(), Expected[P.Name]) << P.Name;
  }
}

TEST(Suite, InjectedViolationIsAlwaysCaught) {
  // Shrink an array in each program's source (a crude fault injection):
  // if the mutated program traps naively, it must trap under every
  // scheme as well.
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    std::string Src = P.Source;
    // Find the first array declaration extent and shrink it brutally.
    size_t Pos = Src.find("(4");
    if (Pos == std::string::npos)
      Pos = Src.find("(9");
    if (Pos == std::string::npos)
      continue;
    Src.replace(Pos, 2, "(3");

    PipelineOptions PO;
    PO.Optimize = false;
    CompileResult Naive = compileSource(Src, PO);
    if (!Naive.Success)
      continue; // the mutation broke compilation; skip
    ExecResult NaiveRun = interpret(*Naive.M);
    if (NaiveRun.St != ExecResult::Status::Trapped)
      continue; // mutation happened to stay in bounds

    for (PlacementScheme S :
         {PlacementScheme::NI, PlacementScheme::SE, PlacementScheme::LLS,
          PlacementScheme::ALL}) {
      PipelineOptions PS;
      PS.Opt.Scheme = S;
      CompileResult Opt = compileSource(Src, PS);
      ASSERT_TRUE(Opt.Success);
      ExecResult OptRun = interpret(*Opt.M);
      expectBehaviorPreserved(NaiveRun, OptRun,
                              std::string(P.Name) + "/" +
                                  placementSchemeName(S));
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing: a seeded random program generator produces
/// mini-Fortran programs full of array accesses (some of which trap), and
/// every optimizer configuration must preserve the paper's behaviour
/// criterion on each of them. This is the widest net for optimizer
/// soundness bugs: partial redundancies, kills, zero-trip loops,
/// triangular bounds, and out-of-bounds accesses all occur by chance.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Generates a random, always-terminating mini-Fortran program.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Out.str("");
    Out << "program r" << Rng() % 1000 << "\n";
    Out << "  integer i, j, k, n, m, s, w\n";
    Out << "  real a(" << pick({8, 10, 16}) << "), b(0:"
        << pick({7, 9, 12}) << "), c(" << pick({6, 8}) << ", "
        << pick({6, 8}) << ")\n";
    Out << "  n = " << 3 + int(Rng() % 8) << "\n";
    Out << "  m = " << 1 + int(Rng() % 4) << "\n";
    Out << "  k = " << int(Rng() % 12) << "\n";
    Out << "  s = 0\n";
    unsigned NumStmts = 3 + Rng() % 5;
    for (unsigned S = 0; S != NumStmts; ++S)
      emitStmt(1, 2);
    // A bounded while loop over a dedicated counter, full of accesses.
    Out << "  w = 0\n";
    Out << "  while (w < " << 2 + Rng() % 4 << ") do\n";
    emitStmt(2, 0);
    emitStmt(2, 0);
    Out << "    w = w + 1\n";
    Out << "  end while\n";
    Out << "  print s\n";
    Out << "end program\n";
    Out << "function g2(x) : integer\n"
           "  integer x\n"
           "  return x + 1\n"
           "end function\n";
    return Out.str();
  }

private:
  int pick(std::initializer_list<int> Choices) {
    auto It = Choices.begin();
    std::advance(It, Rng() % Choices.size());
    return *It;
  }

  std::string intExpr(int Depth) {
    switch (Rng() % (Depth > 0 ? 9 : 4)) {
    case 0:
      return std::to_string(1 + Rng() % 9);
    case 1:
      return "i";
    case 2:
      return "j";
    case 3:
      return pick({0, 1}) ? "k" : "n";
    case 4:
      return intExpr(Depth - 1) + " + " + intExpr(Depth - 1);
    case 5:
      return intExpr(Depth - 1) + " - " + std::to_string(Rng() % 4);
    case 6:
      // Non-affine subscripts exercise the syntactic-atom machinery.
      return "mod(" + intExpr(Depth - 1) + ", " +
             std::to_string(3 + Rng() % 5) + ") + 1";
    case 7:
      return "g2(" + intExpr(Depth - 1) + ")";
    default:
      return std::to_string(1 + Rng() % 3) + " * " + intExpr(Depth - 1);
    }
  }

  std::string subscript() {
    // Mostly small expressions; out-of-bounds values arise naturally.
    return intExpr(1 + Rng() % 2);
  }

  std::string access() {
    switch (Rng() % 3) {
    case 0:
      return "a(" + subscript() + ")";
    case 1:
      return "b(" + subscript() + ")";
    default:
      return "c(" + subscript() + ", " + subscript() + ")";
    }
  }

  void indent(int Level) {
    for (int K = 0; K != Level; ++K)
      Out << "  ";
  }

  void emitStmt(int Level, int Budget) {
    unsigned Kind = Rng() % 10;
    if (Budget <= 0 || Kind < 5) {
      // Plain statement touching arrays (redundancy fodder).
      indent(Level);
      switch (Rng() % 4) {
      case 0:
        Out << access() << " = " << access() << " + 1.0\n";
        break;
      case 1:
        Out << "s = s + int(" << access() << ") + int(" << access()
            << ")\n";
        break;
      case 2:
        Out << "k = " << intExpr(1) << "\n";
        break;
      default: {
        std::string A = access();
        Out << A << " = " << A << " * 0.5\n";
        break;
      }
      }
      return;
    }
    if (Kind < 7) {
      // Counted loop; index var chosen by level to respect nesting rules.
      const char *Var = Level % 2 == 1 ? "i" : "j";
      indent(Level);
      Out << "do " << Var << " = " << 1 + int(Rng() % 3) << ", ";
      if (Rng() % 2)
        Out << "n";
      else
        Out << 2 + int(Rng() % 8);
      if (Rng() % 4 == 0)
        Out << ", " << pick({2, -1});
      Out << "\n";
      unsigned Body = 1 + Rng() % 3;
      for (unsigned S = 0; S != Body; ++S)
        emitStmt(Level + 1, Budget - 1);
      indent(Level);
      Out << "end do\n";
      return;
    }
    // Branch.
    indent(Level);
    Out << "if (" << intExpr(1) << " < " << intExpr(1) << ") then\n";
    emitStmt(Level + 1, Budget - 1);
    if (Rng() % 2) {
      indent(Level);
      Out << "else\n";
      emitStmt(Level + 1, Budget - 1);
    }
    indent(Level);
    Out << "end if\n";
  }

  std::mt19937 Rng;
  std::ostringstream Out;
};

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramTest, AllConfigurationsPreserveBehavior) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  // The program must at least compile; nesting rules are respected by
  // construction.
  CompileResult Naive = compileNaive(Source);
  ASSERT_TRUE(Naive.Success);
  ExecResult NaiveRun = interpret(*Naive.M);
  ASSERT_NE(NaiveRun.St, ExecResult::Status::HardFault)
      << NaiveRun.FaultMessage;

  for (CheckSource Src : {CheckSource::PRX, CheckSource::INX}) {
    for (PlacementScheme Scheme :
         {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
          PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
          PlacementScheme::ALL, PlacementScheme::MCM}) {
      for (ImplicationMode Mode :
           {ImplicationMode::All, ImplicationMode::CrossFamilyOnly,
            ImplicationMode::None}) {
        CompileResult Opt = compileWithScheme(Source, Scheme, Src, Mode);
        ExecResult OptRun = interpret(*Opt.M);
        expectBehaviorPreserved(
            NaiveRun, OptRun,
            std::string(placementSchemeName(Scheme)) + "/" +
                (Src == CheckSource::PRX ? "PRX" : "INX") + "/mode" +
                std::to_string(static_cast<int>(Mode)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(1u, 41u));

} // namespace

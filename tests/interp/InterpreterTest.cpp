//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter tests: arithmetic, control flow, arrays (including
/// by-reference array parameters), traps, the instruction/check counters,
/// and the execution limits.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

ExecResult runNaive(const std::string &Src) {
  CompileResult R = compileNaive(Src);
  return interpret(*R.M);
}

TEST(Interpreter, IntegerArithmetic) {
  ExecResult E = runNaive(R"(
program p
  integer a
  a = (7 + 5) * 3 - 4
  print a
  print mod(17, 5)
  print min(3, -2)
  print max(3, -2)
  print abs(-9)
end program
)");
  ASSERT_EQ(E.St, ExecResult::Status::Ok) << E.FaultMessage;
  EXPECT_EQ(E.Output,
            (std::vector<std::string>{"32", "2", "-2", "3", "9"}));
}

TEST(Interpreter, IntegerDivisionTruncates) {
  ExecResult E = runNaive(R"(
program p
  print 7 / 2
  print -7 / 2
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"3", "-3"}));
}

TEST(Interpreter, RealArithmeticAndConversion) {
  ExecResult E = runNaive(R"(
program p
  real r
  integer i
  r = 3.5 * 2.0
  print r
  i = int(r) + 1
  print i
  r = real(i) / 4.0
  print r
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"7", "8", "2"}));
}

TEST(Interpreter, LogicalOps) {
  ExecResult E = runNaive(R"(
program p
  logical a, b
  a = 1 < 2 and 3 >= 3
  b = not a or 2 == 3
  print a
  print b
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"T", "F"}));
}

TEST(Interpreter, ControlFlow) {
  ExecResult E = runNaive(R"(
program p
  integer i, s
  s = 0
  do i = 1, 10, 2
    s = s + i
  end do
  print s
  while (s > 10) do
    s = s - 7
  end while
  print s
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"25", "4"}));
}

TEST(Interpreter, ZeroTripLoop) {
  ExecResult E = runNaive(R"(
program p
  integer i, s, n
  n = 0
  s = 42
  do i = 1, n
    s = s + 100
  end do
  print s
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"42"}));
}

TEST(Interpreter, DescendingLoop) {
  ExecResult E = runNaive(R"(
program p
  integer i, s
  s = 0
  do i = 5, 1, -1
    s = s * 10 + i
  end do
  print s
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"54321"}));
}

TEST(Interpreter, ArraysColumnMajorIndependentCells) {
  ExecResult E = runNaive(R"(
program p
  integer a(3, 3)
  integer i, j
  do i = 1, 3
    do j = 1, 3
      a(i, j) = i * 10 + j
    end do
  end do
  print a(2, 3)
  print a(3, 1)
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"23", "31"}));
}

TEST(Interpreter, ArrayParameterAliasesCaller) {
  ExecResult E = runNaive(R"(
program p
  integer v(4)
  call setall(v, 9)
  print v(1) + v(4)
end program
subroutine setall(a, val)
  integer a(4), val, i
  do i = 1, 4
    a(i) = val
  end do
end subroutine
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"18"}));
}

TEST(Interpreter, ScalarArgsPassedByValue) {
  ExecResult E = runNaive(R"(
program p
  integer x
  x = 5
  call shadow(x)
  print x
end program
subroutine shadow(x)
  integer x
  x = 99
end subroutine
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"5"}));
}

TEST(Interpreter, RecursiveFunction) {
  ExecResult E = runNaive(R"(
program p
  print fact(6)
end program
function fact(n) : integer
  integer n
  if (n <= 1) then
    return 1
  end if
  return n * fact(n - 1)
end function
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"720"}));
}

TEST(Interpreter, UpperBoundTrap) {
  ExecResult E = runNaive(R"(
program p
  real a(10)
  integer i
  i = 11
  a(i) = 1.0
  print a(1)
end program
)");
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  EXPECT_NE(E.FaultMessage.find("range check failed"), std::string::npos);
  EXPECT_NE(E.FaultMessage.find("array a"), std::string::npos);
  EXPECT_NE(E.FaultMessage.find("upper"), std::string::npos);
  EXPECT_TRUE(E.Output.empty()); // the trap fires before the print
}

TEST(Interpreter, LowerBoundTrap) {
  ExecResult E = runNaive(R"(
program p
  real a(5:10)
  integer i
  i = 4
  print a(i)
end program
)");
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  EXPECT_NE(E.FaultMessage.find("lower"), std::string::npos);
}

TEST(Interpreter, OutputBeforeTrapIsKept) {
  ExecResult E = runNaive(R"(
program p
  real a(5)
  integer i
  print 1
  print 2
  i = 6
  a(i) = 0.0
  print 3
end program
)");
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  EXPECT_EQ(E.Output, (std::vector<std::string>{"1", "2"}));
}

TEST(Interpreter, CountsSeparateChecksFromInstructions) {
  ExecResult E = runNaive(R"(
program p
  real a(10)
  integer i
  do i = 1, 10
    a(i) = 1.0
  end do
end program
)");
  // 10 iterations x 2 checks.
  EXPECT_EQ(E.DynChecks, 20u);
  EXPECT_GT(E.DynInstrs, 0u);
  EXPECT_EQ(E.DynCondChecks, 0u);
}

TEST(Interpreter, StepLimit) {
  PipelineOptions PO;
  PO.Optimize = false;
  CompileResult R = compileOrDie(R"(
program p
  integer i
  i = 0
  while (i >= 0) do
    i = i + 1
  end while
end program
)",
                                 PO);
  InterpOptions IO;
  IO.MaxSteps = 10'000;
  ExecResult E = interpret(*R.M, IO);
  EXPECT_EQ(E.St, ExecResult::Status::StepLimit);
}

TEST(Interpreter, CallDepthLimit) {
  CompileResult R = compileNaive(R"(
program p
  print inf(1)
end program
function inf(n) : integer
  integer n
  return inf(n + 1)
end function
)");
  InterpOptions IO;
  IO.MaxCallDepth = 50;
  ExecResult E = interpret(*R.M, IO);
  EXPECT_EQ(E.St, ExecResult::Status::CallDepthExceeded);
}

TEST(Interpreter, UninitialisedVariablesAreZero) {
  ExecResult E = runNaive(R"(
program p
  integer i
  real r
  print i
  print r
end program
)");
  EXPECT_EQ(E.Output, (std::vector<std::string>{"0", "0"}));
}

TEST(Interpreter, CondCheckSemantics) {
  // Build a CondCheck via the LLS pipeline on a zero-trip loop: the
  // guard is false at run time, so the hoisted check must not trap even
  // though the substituted bound would fail.
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::LLS;
  CompileResult R = compileOrDie(R"(
program p
  real a(10)
  integer n, i
  n = 50
  do i = 1, n - 50
    a(i + 40) = 1.0
  end do
  print a(1)
end program
)",
                                 PO);
  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok) << E.FaultMessage;
  EXPECT_EQ(E.Output, (std::vector<std::string>{"0"}));
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Profile behaviour on trapping runs: a check that fires mid-loop must
/// record the partial trip count up to the trap, and the profile's totals
/// must reconcile with the interpreter's per-site CheckSiteCount record
/// and the provenance terminal states — for every placement scheme, since
/// each scheme traps at a different site (body check, hoisted preheader
/// check, post-loop LLS residual).
///
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "TestHelpers.h"
#include "obs/Json.h"
#include "obs/Provenance.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

using namespace nascent;
using namespace nascent::test;

namespace {

/// Walks off the end of a(10) at iteration 11 of 15: every scheme must
/// trap (behaviour preservation), each at its own placement of the
/// violated upper-bound check.
const char *TrappingLoop = R"(
program p
  real a(10)
  integer i, n
  n = 15
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
)";

struct TrappedRun {
  CompileResult R;
  ExecResult E;
};

TrappedRun runTrapped(PlacementScheme Scheme, bool Optimize = true) {
  PipelineOptions PO;
  PO.Optimize = Optimize;
  PO.Opt.Scheme = Scheme;
  PO.Telemetry.Provenance = true;
  PO.Telemetry.Profile = true;
  TrappedRun T;
  T.R = compileOrDie(TrappingLoop, PO);
  InterpOptions IO;
  IO.Profile = &T.R.Profile;
  IO.CountCheckSites = true;
  T.E = interpret(*T.R.M, IO);
  EXPECT_EQ(T.E.St, ExecResult::Status::Trapped)
      << placementSchemeName(Scheme) << ": " << T.E.FaultMessage;
  return T;
}

TEST(ProfileTrap, NaiveTrapRecordsPartialTripCount) {
  TrappedRun T = runTrapped(PlacementScheme::NI, /*Optimize=*/false);
  const obs::FunctionProfile &FP = T.R.Profile.functions()[0];
  ASSERT_EQ(FP.Loops.size(), 1u);
  const obs::LoopProfile &L = FP.Loops[0];

  // One entry, cut short by the trap: the body ran 11 times (the 11th
  // iteration's own check fired) and the histogram records exactly that
  // partial trip count — not 15, not 0.
  EXPECT_EQ(L.Entries, 1u);
  EXPECT_EQ(L.PartialEntries, 1u);
  EXPECT_EQ(L.Iterations, 11u);
  ASSERT_EQ(L.TripHistogram.size(), 1u);
  EXPECT_EQ(L.TripHistogram.begin()->first, 11u);
  EXPECT_EQ(L.TripHistogram.begin()->second, 1u);

  // Exactly one site trapped, and only the iterations before the trap
  // stored into the array.
  EXPECT_EQ(T.R.Profile.dynTraps(), 1u);
  EXPECT_EQ(T.R.Profile.trappedRuns(), 1u);
  for (const obs::ArrayProfile &A : FP.Arrays)
    if (A.Name == "a") {
      EXPECT_EQ(A.Stores, 10u);
    }
}

TEST(ProfileTrap, TotalsReconcileAcrossAllSchemes) {
  const PlacementScheme Schemes[] = {
      PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
      PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
      PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};

  for (PlacementScheme Scheme : Schemes) {
    const std::string Label = placementSchemeName(Scheme);
    TrappedRun T = runTrapped(Scheme);
    const obs::ExecutionProfile &P = T.R.Profile;

    // Run-level totals: one run, trapped, exactly one dynamic trap, and
    // the profile's dynamic check total is the interpreter's.
    EXPECT_EQ(P.runs(), 1u) << Label;
    EXPECT_EQ(P.trappedRuns(), 1u) << Label;
    EXPECT_EQ(P.dynTraps(), 1u) << Label;
    EXPECT_EQ(P.dynChecks(), T.E.DynChecks) << Label;

    // Per-site reconciliation with the CheckSiteCount record: both paths
    // observed the same executions at the same (func, block, index).
    std::map<std::tuple<std::string, BlockID, uint32_t>, uint64_t> ByKey;
    for (const obs::CheckSiteCount &S : T.E.CheckSites)
      ByKey[{S.Func, S.Block, S.Index}] += S.Count;
    uint64_t SiteTotal = 0;
    for (const obs::FunctionProfile &FP : P.functions())
      for (const obs::CheckSiteProfile &S : FP.Sites) {
        SiteTotal += S.Hits;
        auto It = ByKey.find({FP.Name, S.Block, S.Index});
        uint64_t Counted = It == ByKey.end() ? 0 : It->second;
        EXPECT_EQ(S.Hits, Counted)
            << Label << ": " << FP.Name << " bb" << S.Block << "#"
            << S.Index;
        EXPECT_LE(S.Traps, S.Hits) << Label;
      }
    EXPECT_EQ(SiteTotal, T.E.DynChecks) << Label;

    // Reconciliation with provenance terminal states: the profile's site
    // set is exactly the set of Residualized tags — a check the compiler
    // eliminated, subsumed, or turned into an unconditional Trap never
    // appears as a dynamic site.
    std::set<CheckTag> SiteTags;
    for (const obs::FunctionProfile &FP : P.functions())
      for (const obs::CheckSiteProfile &S : FP.Sites)
        SiteTags.insert(S.Tag);
    std::set<CheckTag> Residual, CompileTimeTrapped;
    for (CheckTag Tag : T.R.Provenance.tags()) {
      const obs::LifecycleEvent *Last = T.R.Provenance.lastEventOf(Tag);
      ASSERT_NE(Last, nullptr) << Label;
      if (Last->Kind == obs::LifecycleKind::Residualized)
        Residual.insert(Tag);
      if (Last->Kind == obs::LifecycleKind::Trapped)
        CompileTimeTrapped.insert(Tag);
    }
    EXPECT_EQ(SiteTags, Residual) << Label;
    EXPECT_EQ(P.residualSites(), Residual.size()) << Label;
    for (CheckTag Tag : CompileTimeTrapped)
      EXPECT_EQ(SiteTags.count(Tag), 0u) << Label;

    // The partial entry made it into some loop's histogram: entries
    // always balance (Σ histogram == entries), trap or no trap.
    for (const obs::FunctionProfile &FP : P.functions())
      for (const obs::LoopProfile &L : FP.Loops) {
        uint64_t HistSum = 0;
        for (const auto &Bin : L.TripHistogram)
          HistSum += Bin.second;
        EXPECT_EQ(HistSum, L.Entries) << Label;
        EXPECT_LE(L.PartialEntries, L.Entries) << Label;
      }
  }
}

TEST(ProfileTrap, TrapEnvelopeStillSchemaValidates) {
  // A trapped run's envelope must still reconcile: the validator checks
  // the advertised totals against the per-function payload.
  TrappedRun T = runTrapped(PlacementScheme::LLS);
  obs::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(T.R.Profile.toEnvelopeJson(), Doc, &Err))
      << Err;
  EXPECT_TRUE(obs::validateProfileDocument(Doc, &Err)) << Err;
}

} // namespace

#include "support/DenseBitVector.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace nascent;

TEST(DenseBitVector, EmptyVector) {
  DenseBitVector V;
  EXPECT_EQ(V.size(), 0u);
  EXPECT_TRUE(V.empty());
  EXPECT_TRUE(V.none());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_EQ(V.findNext(0), DenseBitVector::npos);
}

TEST(DenseBitVector, SetResetTest) {
  DenseBitVector V(130);
  EXPECT_FALSE(V.test(0));
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
}

TEST(DenseBitVector, InitialValueTrue) {
  DenseBitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  EXPECT_TRUE(V.test(69));
}

TEST(DenseBitVector, SetAllRespectsSize) {
  // The unused high bits of the last word must stay clear so count and
  // equality remain exact.
  DenseBitVector V(65);
  V.setAll();
  EXPECT_EQ(V.count(), 65u);
  DenseBitVector W(65, true);
  EXPECT_EQ(V, W);
}

TEST(DenseBitVector, FindNextSkipsWords) {
  DenseBitVector V(256);
  V.set(3);
  V.set(200);
  EXPECT_EQ(V.findNext(0), 3u);
  EXPECT_EQ(V.findNext(4), 200u);
  EXPECT_EQ(V.findNext(201), DenseBitVector::npos);
}

TEST(DenseBitVector, SetAlgebra) {
  DenseBitVector A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(50);
  B.set(99);

  DenseBitVector Or = A;
  Or |= B;
  EXPECT_TRUE(Or.test(1));
  EXPECT_TRUE(Or.test(50));
  EXPECT_TRUE(Or.test(99));
  EXPECT_EQ(Or.count(), 3u);

  DenseBitVector And = A;
  And &= B;
  EXPECT_EQ(And.count(), 1u);
  EXPECT_TRUE(And.test(50));

  DenseBitVector Diff = A;
  Diff.andNot(B);
  EXPECT_EQ(Diff.count(), 1u);
  EXPECT_TRUE(Diff.test(1));
}

TEST(DenseBitVector, ResizePreservesAndClears) {
  DenseBitVector V(64);
  V.set(10);
  V.resize(128);
  EXPECT_TRUE(V.test(10));
  EXPECT_FALSE(V.test(100));
  V.resize(8);
  EXPECT_EQ(V.size(), 8u);
}

TEST(DenseBitVector, ForEachSetBitOrder) {
  DenseBitVector V(300);
  std::vector<size_t> Expected = {0, 63, 64, 128, 299};
  for (size_t B : Expected)
    V.set(B);
  std::vector<size_t> Seen;
  V.forEachSetBit([&](size_t B) { Seen.push_back(B); });
  EXPECT_EQ(Seen, Expected);
}

/// Property sweep: random operations agree with std::set semantics.
class BitVectorRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVectorRandomTest, MatchesReferenceSet) {
  std::mt19937 Rng(GetParam());
  const size_t N = 200;
  DenseBitVector V(N);
  std::set<size_t> Ref;
  for (int Step = 0; Step != 500; ++Step) {
    size_t Bit = Rng() % N;
    if (Rng() % 2) {
      V.set(Bit);
      Ref.insert(Bit);
    } else {
      V.reset(Bit);
      Ref.erase(Bit);
    }
  }
  EXPECT_EQ(V.count(), Ref.size());
  for (size_t B = 0; B != N; ++B)
    EXPECT_EQ(V.test(B), Ref.count(B) != 0) << "bit " << B;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorRandomTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadPool contract tests: results come back through futures in
/// submission order regardless of execution order, exceptions propagate
/// through future::get(), zero workers means inline execution, and the
/// destructor drains the queue before joining. These run under TSan via
/// the check-threads label (-DNASCENT_SANITIZE=thread).
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace nascent;

namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  std::vector<int> Order;
  auto F1 = Pool.submit([&] { Order.push_back(1); return 10; });
  auto F2 = Pool.submit([&] { Order.push_back(2); return 20; });
  // Inline mode executes at submit(), so the side effects are already
  // visible and the futures are ready.
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
  EXPECT_EQ(F1.get(), 10);
  EXPECT_EQ(F2.get(), 20);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder) {
  std::vector<int> Order;
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 32; ++I)
      Pool.submit([&Order, I] { Order.push_back(I); });
  } // destructor drains, then joins
  std::vector<int> Expected(32);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPool, ResultsArriveInSubmissionOrder) {
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Workers);
    EXPECT_EQ(Pool.numWorkers(), Workers);
    std::vector<std::future<int>> Futures;
    for (int I = 0; I != 64; ++I)
      Futures.push_back(Pool.submit([I] { return I * I; }));
    for (int I = 0; I != 64; ++I)
      EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I)
          << "workers=" << Workers;
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  for (unsigned Workers : {0u, 1u, 4u}) {
    ThreadPool Pool(Workers);
    auto Ok = Pool.submit([] { return 7; });
    auto Boom = Pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(Ok.get(), 7);
    EXPECT_THROW(Boom.get(), std::runtime_error) << "workers=" << Workers;
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  // Every submitted task runs even when the pool is destroyed immediately
  // after submission — destruction means "drain then join", not "abort".
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 100; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ThreadPool, WaitBlocksUntilSubmittedWorkFinishes) {
  std::atomic<int> Ran{0};
  ThreadPool Pool(4);
  for (int I = 0; I != 50; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 50);
  // The pool stays usable after wait().
  auto F = Pool.submit([] { return 1; });
  EXPECT_EQ(F.get(), 1);
}

TEST(ThreadPool, ManyTasksAcrossFewWorkers) {
  std::atomic<uint64_t> Sum{0};
  {
    ThreadPool Pool(3);
    for (uint64_t I = 1; I <= 1000; ++I)
      Pool.submit([&Sum, I] { Sum.fetch_add(I, std::memory_order_relaxed); });
  }
  EXPECT_EQ(Sum.load(), 1000u * 1001u / 2);
}

} // namespace

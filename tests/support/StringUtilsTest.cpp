#include "support/StringUtils.h"

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace nascent;

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
  EXPECT_EQ(formatString("%s", "plain"), "plain");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(StringUtils, TextTableLayout) {
  TextTable T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  // Header, separator, two rows.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  // Numeric column right-aligned: " 1" under "value".
  EXPECT_NE(Out.find("     1"), std::string::npos);
}

TEST(Diagnostics, CollectsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLocation(2, 3), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLocation(5, 1), "boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Out = D.render();
  EXPECT_NE(Out.find("2:3: warning: watch out"), std::string::npos);
  EXPECT_NE(Out.find("5:1: error: boom"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(Diagnostics, UnknownLocation) {
  DiagnosticEngine D;
  D.note(SourceLocation(), "context");
  EXPECT_NE(D.render().find("<unknown>: note: context"), std::string::npos);
}

//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness tests: the front end must terminate with diagnostics (never
/// crash, hang, or accept) on arbitrary garbage, truncated programs, and
/// token soup. The parser's recovery paths are the target.
///
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <random>

using namespace nascent;

namespace {

/// Runs the whole front end; the only requirement is termination without
/// a crash (errors expected and fine).
void frontEndSurvives(const std::string &Src) {
  DiagnosticEngine Diags;
  Parser P(Src, Diags);
  auto AST = P.parseProgram();
  ASSERT_NE(AST, nullptr);
  Sema S(*AST, Diags);
  (void)S.run(); // may be null; must not crash
}

TEST(ParserFuzz, EmptyAndWhitespace) {
  frontEndSurvives("");
  frontEndSurvives("   \n\t\n");
  frontEndSurvives("! just a comment\n");
}

TEST(ParserFuzz, TruncatedPrograms) {
  const char *Full = R"(
program p
  integer i, s
  do i = 1, 10
    if (i > 5) then
      s = s + i
    end if
  end do
  print s
end program
)";
  std::string F(Full);
  // Every prefix must be handled gracefully.
  for (size_t Len = 0; Len < F.size(); Len += 7)
    frontEndSurvives(F.substr(0, Len));
}

TEST(ParserFuzz, TokenSoup) {
  std::mt19937 Rng(7);
  const char *Tokens[] = {"program", "end",  "do",    "if",   "then",
                          "else",    "(",    ")",     ",",    "=",
                          "==",      "+",    "*",     "1",    "2.5",
                          "x",       "call", "while", "not",  ":",
                          "integer", "real", "a",     "<=",   "-"};
  for (int Round = 0; Round != 50; ++Round) {
    std::string Src;
    unsigned Len = 5 + Rng() % 60;
    for (unsigned K = 0; K != Len; ++K) {
      Src += Tokens[Rng() % std::size(Tokens)];
      Src += (Rng() % 5 == 0) ? "\n" : " ";
    }
    SCOPED_TRACE(Src);
    frontEndSurvives(Src);
  }
}

TEST(ParserFuzz, RandomBytes) {
  std::mt19937 Rng(11);
  for (int Round = 0; Round != 50; ++Round) {
    std::string Src;
    unsigned Len = Rng() % 200;
    for (unsigned K = 0; K != Len; ++K)
      Src += static_cast<char>(32 + Rng() % 95); // printable ASCII
    SCOPED_TRACE(Src);
    frontEndSurvives(Src);
  }
}

TEST(ParserFuzz, DeepNestingDoesNotOverflow) {
  // Deeply nested ifs exercise recursive descent; depth is kept moderate
  // to stay portable, but far beyond anything in real programs.
  std::string Src = "program p\n  integer x\n";
  const int Depth = 200;
  for (int K = 0; K != Depth; ++K)
    Src += "if (x < " + std::to_string(K) + ") then\n";
  Src += "x = 1\n";
  for (int K = 0; K != Depth; ++K)
    Src += "end if\n";
  Src += "end program\n";
  frontEndSurvives(Src);
}

TEST(ParserFuzz, DeepExpressionNesting) {
  std::string Src = "program p\n  integer x\n  x = ";
  const int Depth = 300;
  for (int K = 0; K != Depth; ++K)
    Src += "(1 + ";
  Src += "2";
  for (int K = 0; K != Depth; ++K)
    Src += ")";
  Src += "\nend program\n";
  frontEndSurvives(Src);
}

TEST(ParserFuzz, MismatchedEnds) {
  frontEndSurvives("program p\n do i = 1, 3\n end if\nend program");
  frontEndSurvives("program p\n if (1 < 2) then\n end do\nend program");
  frontEndSurvives("program p\n end do\n end while\n end if\nend program");
  frontEndSurvives("subroutine s()\nend function");
}

} // namespace

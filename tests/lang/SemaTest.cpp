#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

std::unique_ptr<Module> semaOK(const std::string &Src) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto AST = P.parseProgram();
  EXPECT_FALSE(D.hasErrors()) << D.render();
  Sema S(*AST, D);
  auto M = S.run();
  EXPECT_TRUE(M != nullptr) << D.render();
  return M;
}

void semaFails(const std::string &Src, const std::string &MsgPart) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto AST = P.parseProgram();
  ASSERT_FALSE(D.hasErrors()) << "parse should succeed: " << D.render();
  Sema S(*AST, D);
  auto M = S.run();
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(D.render().find(MsgPart), std::string::npos) << D.render();
}

TEST(Sema, BuildsModuleShells) {
  auto M = semaOK(R"(
program p
  integer n
  call s(n)
end program
subroutine s(x)
  integer x
end subroutine
)");
  EXPECT_EQ(M->entryName(), "p");
  ASSERT_NE(M->function("s"), nullptr);
  EXPECT_EQ(M->function("s")->params().size(), 1u);
  EXPECT_FALSE(M->function("s")->resultType().has_value());
}

TEST(Sema, FunctionResultType) {
  auto M = semaOK(R"(
program p
  real r
  r = f(2.0)
end program
function f(x) : real
  real x
  return x + 1.0
end function
)");
  EXPECT_EQ(M->function("f")->resultType(), ScalarType::Real);
}

TEST(Sema, ArrayArgumentByReference) {
  semaOK(R"(
program p
  real v(8)
  call fill(v)
end program
subroutine fill(a)
  real a(8)
  integer i
  do i = 1, 8
    a(i) = 0.0
  end do
end subroutine
)");
}

TEST(Sema, UndeclaredVariable) {
  semaFails("program p\n x = 1\nend program", "undeclared");
}

TEST(Sema, MissingProgramUnit) {
  semaFails("subroutine s()\nend subroutine", "exactly one 'program'");
}

TEST(Sema, DuplicateDeclaration) {
  semaFails("program p\n integer x\n real x\nend program", "redeclaration");
}

TEST(Sema, AssignToWholeArray) {
  semaFails("program p\n real a(5)\n a = 1.0\nend program", "whole array");
}

TEST(Sema, SubscriptArity) {
  semaFails("program p\n real a(5, 5)\n integer i\n a(i) = 0.0\nend program",
            "rank");
}

TEST(Sema, NonIntegerSubscript) {
  semaFails("program p\n real a(5), r\n a(r) = 0.0\nend program",
            "subscript must be integer");
}

TEST(Sema, LogicalConditionRequired) {
  semaFails("program p\n integer x\n if (x) then\n end if\nend program",
            "must be logical");
}

TEST(Sema, AssignToActiveDoIndex) {
  semaFails(R"(
program p
  integer i
  do i = 1, 3
    i = 5
  end do
end program
)",
            "active do-loop index");
}

TEST(Sema, NestedLoopIndexReuse) {
  semaFails(R"(
program p
  integer i
  do i = 1, 3
    do i = 1, 2
    end do
  end do
end program
)",
            "already in use");
}

TEST(Sema, DoBoundsMayNotUseIndex) {
  semaFails(R"(
program p
  integer i
  do i = 1, i + 3
  end do
end program
)",
            "may not reference the loop index");
}

TEST(Sema, DoIndexMustBeIntegerScalar) {
  semaFails("program p\n real x\n do x = 1, 3\n end do\nend program",
            "integer scalar");
}

TEST(Sema, CallArityMismatch) {
  semaFails(R"(
program p
  call s(1)
end program
subroutine s(a, b)
  integer a, b
end subroutine
)",
            "expects 2");
}

TEST(Sema, ArrayShapeMismatchInCall) {
  semaFails(R"(
program p
  real v(8)
  call use(v)
end program
subroutine use(a)
  real a(9)
end subroutine
)",
            "mismatched bounds");
}

TEST(Sema, WholeArrayArgMustBeVariable) {
  semaFails(R"(
program p
  real v(8)
  call use(v(1))
end program
subroutine use(a)
  real a(8)
end subroutine
)",
            "whole array");
}

TEST(Sema, FunctionCalledAsSubroutine) {
  semaFails(R"(
program p
  call f(1.0)
end program
function f(x) : real
  real x
  return x
end function
)",
            "is a function");
}

TEST(Sema, SubroutineInExpression) {
  semaFails(R"(
program p
  integer x
  x = s(1)
end program
subroutine s(a)
  integer a
end subroutine
)",
            "cannot be used in an expression");
}

TEST(Sema, LogicalArithmeticRejected) {
  semaFails("program p\n logical a, b\n a = a + b\nend program",
            "numeric operator");
}

TEST(Sema, TypePromotionAccepted) {
  // Mixed int/real arithmetic and assignments both ways are Fortran-legal.
  semaOK(R"(
program p
  integer i
  real r
  r = i + 1
  i = r * 2.0
end program
)");
}

TEST(Sema, EmptyArrayDimensionRejected) {
  semaFails("program p\n real a(5:3)\nend program", "empty dimension");
}

TEST(Sema, ParameterMustBeDeclared) {
  semaFails(R"(
program p
  call s(1)
end program
subroutine s(x)
end subroutine
)",
            "is not declared");
}

TEST(Sema, FunctionAndArrayDisambiguation) {
  // g(2) is an array element here, f(2) a call: sema resolves by symbol.
  auto M = semaOK(R"(
program p
  integer g(5), x
  x = g(2) + f(2)
end program
function f(k) : integer
  integer k
  return k * 2
end function
)");
  (void)M;
}

} // namespace

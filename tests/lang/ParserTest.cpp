#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

std::unique_ptr<ProgramAST> parseOK(const std::string &Src) {
  DiagnosticEngine D;
  Parser P(Src, D);
  auto AST = P.parseProgram();
  EXPECT_FALSE(D.hasErrors()) << D.render();
  return AST;
}

void parseFails(const std::string &Src, const std::string &MsgPart) {
  DiagnosticEngine D;
  Parser P(Src, D);
  P.parseProgram();
  EXPECT_TRUE(D.hasErrors()) << "expected a parse error";
  EXPECT_NE(D.render().find(MsgPart), std::string::npos) << D.render();
}

TEST(Parser, MinimalProgram) {
  auto AST = parseOK("program p\nend program");
  ASSERT_EQ(AST->Units.size(), 1u);
  EXPECT_EQ(AST->Units[0]->Kind, UnitKind::Program);
  EXPECT_EQ(AST->Units[0]->Name, "p");
  EXPECT_TRUE(AST->Units[0]->Body.empty());
}

TEST(Parser, Declarations) {
  auto AST = parseOK(R"(
program p
  integer n, m
  real a(10), b(0:9, 2:5)
  logical flag
end program
)");
  const auto &Decls = AST->Units[0]->Decls;
  ASSERT_EQ(Decls.size(), 3u);
  EXPECT_EQ(Decls[0].Ty, ScalarType::Int);
  EXPECT_EQ(Decls[0].Vars.size(), 2u);
  EXPECT_EQ(Decls[1].Vars[0].Dims.size(), 1u);
  EXPECT_EQ(Decls[1].Vars[0].Dims[0], (std::pair<int64_t, int64_t>{1, 10}));
  EXPECT_EQ(Decls[1].Vars[1].Dims[0], (std::pair<int64_t, int64_t>{0, 9}));
  EXPECT_EQ(Decls[1].Vars[1].Dims[1], (std::pair<int64_t, int64_t>{2, 5}));
  EXPECT_EQ(Decls[2].Ty, ScalarType::Bool);
}

TEST(Parser, NegativeArrayBounds) {
  auto AST = parseOK("program p\n real a(-3:3)\nend program");
  EXPECT_EQ(AST->Units[0]->Decls[0].Vars[0].Dims[0],
            (std::pair<int64_t, int64_t>{-3, 3}));
}

TEST(Parser, ExpressionPrecedence) {
  auto AST = parseOK(R"(
program p
  integer x, y
  x = 1 + 2 * 3
  y = -x + 4
end program
)");
  auto &S0 = static_cast<AssignStmt &>(*AST->Units[0]->Body[0]);
  auto &Add = static_cast<BinaryExpr &>(*S0.Value);
  EXPECT_EQ(Add.Op, BinaryOp::Add);
  EXPECT_EQ(Add.LHS->Kind, ExprKind::IntLit);
  auto &Mul = static_cast<BinaryExpr &>(*Add.RHS);
  EXPECT_EQ(Mul.Op, BinaryOp::Mul);

  auto &S1 = static_cast<AssignStmt &>(*AST->Units[0]->Body[1]);
  auto &Add2 = static_cast<BinaryExpr &>(*S1.Value);
  EXPECT_EQ(Add2.LHS->Kind, ExprKind::Unary);
}

TEST(Parser, LogicalPrecedence) {
  // a < b and not c or d parses as ((a<b) and (not c)) or d.
  auto AST = parseOK(R"(
program p
  integer a, b
  logical c, d, r
  r = a < b and not c or d
end program
)");
  auto &S = static_cast<AssignStmt &>(*AST->Units[0]->Body[0]);
  auto &Or = static_cast<BinaryExpr &>(*S.Value);
  EXPECT_EQ(Or.Op, BinaryOp::Or);
  auto &And = static_cast<BinaryExpr &>(*Or.LHS);
  EXPECT_EQ(And.Op, BinaryOp::And);
  auto &Cmp = static_cast<BinaryExpr &>(*And.LHS);
  EXPECT_EQ(Cmp.Op, BinaryOp::Lt);
  EXPECT_EQ(And.RHS->Kind, ExprKind::Unary);
}

TEST(Parser, IfElseifElseDesugaring) {
  auto AST = parseOK(R"(
program p
  integer x
  if (x < 1) then
    x = 1
  elseif (x < 2) then
    x = 2
  else
    x = 3
  end if
end program
)");
  auto &If = static_cast<IfStmt &>(*AST->Units[0]->Body[0]);
  ASSERT_EQ(If.Else.size(), 1u);
  EXPECT_EQ(If.Else[0]->Kind, StmtKind::If);
  auto &Nested = static_cast<IfStmt &>(*If.Else[0]);
  EXPECT_EQ(Nested.Then.size(), 1u);
  EXPECT_EQ(Nested.Else.size(), 1u);
}

TEST(Parser, DoLoopWithStep) {
  auto AST = parseOK(R"(
program p
  integer i, n, s
  do i = 1, n
    s = s + i
  end do
  do i = n, 1, -2
    s = s - i
  end do
end program
)");
  auto &D0 = static_cast<DoStmt &>(*AST->Units[0]->Body[0]);
  EXPECT_EQ(D0.Step, 1);
  auto &D1 = static_cast<DoStmt &>(*AST->Units[0]->Body[1]);
  EXPECT_EQ(D1.Step, -2);
}

TEST(Parser, WhileLoop) {
  auto AST = parseOK(R"(
program p
  integer i
  while (i < 10) do
    i = i + 1
  end while
end program
)");
  auto &W = static_cast<WhileStmt &>(*AST->Units[0]->Body[0]);
  EXPECT_EQ(W.Body.size(), 1u);
}

TEST(Parser, Intrinsics) {
  auto AST = parseOK(R"(
program p
  integer a, b, c
  real r
  a = mod(b, 4)
  a = min(a, b, c)
  a = abs(a)
  r = real(a)
  a = int(r)
  a = max(a, b)
end program
)");
  auto &Body = AST->Units[0]->Body;
  EXPECT_EQ(static_cast<BinaryExpr &>(
                *static_cast<AssignStmt &>(*Body[0]).Value)
                .Op,
            BinaryOp::Mod);
  // min with 3 args folds left into nested Min.
  auto &MinE = static_cast<BinaryExpr &>(
      *static_cast<AssignStmt &>(*Body[1]).Value);
  EXPECT_EQ(MinE.Op, BinaryOp::Min);
  EXPECT_EQ(MinE.LHS->Kind, ExprKind::Binary);
  EXPECT_EQ(static_cast<UnaryExpr &>(
                *static_cast<AssignStmt &>(*Body[2]).Value)
                .Op,
            UnaryOp::Abs);
  EXPECT_EQ(static_cast<UnaryExpr &>(
                *static_cast<AssignStmt &>(*Body[3]).Value)
                .Op,
            UnaryOp::RealCast);
  EXPECT_EQ(static_cast<UnaryExpr &>(
                *static_cast<AssignStmt &>(*Body[4]).Value)
                .Op,
            UnaryOp::IntCast);
}

TEST(Parser, SubroutineAndFunction) {
  auto AST = parseOK(R"(
program p
  call s(1, 2)
end program
subroutine s(a, b)
  integer a, b
end subroutine
function f(x) : real
  real x
  return x * 2.0
end function
)");
  ASSERT_EQ(AST->Units.size(), 3u);
  EXPECT_EQ(AST->Units[1]->Kind, UnitKind::Subroutine);
  EXPECT_EQ(AST->Units[1]->Params.size(), 2u);
  EXPECT_EQ(AST->Units[2]->Kind, UnitKind::Function);
  EXPECT_EQ(AST->Units[2]->ResultTy, ScalarType::Real);
}

TEST(Parser, ArrayAssignAndRef) {
  auto AST = parseOK(R"(
program p
  real a(10, 10)
  integer i, j
  a(i, j + 1) = a(i, j) + 1.0
end program
)");
  auto &S = static_cast<ArrayAssignStmt &>(*AST->Units[0]->Body[0]);
  EXPECT_EQ(S.Indices.size(), 2u);
  EXPECT_EQ(S.Name, "a");
}

TEST(Parser, ErrorMissingThen) {
  parseFails("program p\n integer x\n if (x < 1) x = 2 end if\nend program",
             "'then'");
}

TEST(Parser, ErrorBadUnitStart) {
  parseFails("banana", "expected 'program'");
}

TEST(Parser, ErrorUnterminatedParen) {
  parseFails("program p\n integer x\n x = (1 + 2\nend program", "')'");
}

TEST(Parser, ErrorNonConstantArrayBound) {
  parseFails("program p\n integer n\n real a(n)\nend program",
             "integer constants");
}

TEST(Parser, ErrorVariableStep) {
  parseFails("program p\n integer i, s\n do i = 1, 9, s\n end do\nend program",
             "integer constant");
}

} // namespace

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

std::vector<Token> lexAll(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T);
    if (T.is(TokenKind::Eof))
      break;
  }
  return Out;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Toks = lexAll("program foo end do while");
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwProgram);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "foo");
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwEnd);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwDo);
  EXPECT_EQ(Toks[4].Kind, TokenKind::KwWhile);
}

TEST(Lexer, CaseInsensitive) {
  auto Toks = lexAll("PROGRAM Foo INTEGER");
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwProgram);
  EXPECT_EQ(Toks[1].Text, "foo"); // identifiers fold to lower case
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwInteger);
}

TEST(Lexer, IntegerAndRealLiterals) {
  auto Toks = lexAll("42 3.5 1e3 2.5e-2 7");
  EXPECT_EQ(Toks[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[0].IntValue, 42);
  EXPECT_EQ(Toks[1].Kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(Toks[1].RealValue, 3.5);
  EXPECT_EQ(Toks[2].Kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(Toks[2].RealValue, 1000.0);
  EXPECT_EQ(Toks[3].Kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(Toks[3].RealValue, 0.025);
  EXPECT_EQ(Toks[4].Kind, TokenKind::IntLiteral);
}

TEST(Lexer, NumberFollowedByIdentifierIsNotExponent) {
  // "3e" with no digits after: 'e' starts the next identifier token.
  auto Toks = lexAll("3 elseif");
  EXPECT_EQ(Toks[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwElseif);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto Toks = lexAll("= == /= < <= > >= + - * / ( ) , :");
  TokenKind Expected[] = {
      TokenKind::Assign,  TokenKind::EqEq,      TokenKind::NotEq,
      TokenKind::Less,    TokenKind::LessEq,    TokenKind::Greater,
      TokenKind::GreaterEq, TokenKind::Plus,    TokenKind::Minus,
      TokenKind::Star,    TokenKind::Slash,     TokenKind::LParen,
      TokenKind::RParen,  TokenKind::Comma,     TokenKind::Colon,
      TokenKind::Eof};
  ASSERT_EQ(Toks.size(), std::size(Expected));
  for (size_t K = 0; K != Toks.size(); ++K)
    EXPECT_EQ(Toks[K].Kind, Expected[K]) << "token " << K;
}

TEST(Lexer, CommentsAndLocations) {
  auto Toks = lexAll("a ! whole line ignored\n  b");
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Column, 3u);
}

TEST(Lexer, ErrorToken) {
  auto Toks = lexAll("a # b");
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Error);
  // Recovers and continues.
  EXPECT_EQ(Toks[2].Kind, TokenKind::Identifier);
}

} // namespace

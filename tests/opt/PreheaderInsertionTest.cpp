//===----------------------------------------------------------------------===//
///
/// \file
/// Preheader-insertion tests (LI and LLS): Figure 6 hoisting, guard
/// semantics on zero-trip loops, multi-level re-hoisting, triangular
/// loops, descending loops, and the early-return soundness restriction
/// on loop-limit substitution.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

unsigned countCondChecks(const Module &M) {
  unsigned N = 0;
  for (const Function *F : M.functions())
    for (const auto &BB : *F)
      for (const Instruction &I : BB->instructions())
        if (I.Op == Opcode::CondCheck)
          ++N;
  return N;
}

TEST(PreheaderInsertion, Figure6HoistsBothChecks) {
  const char *Src = R"(
program p
  real a(10)
  integer n, j, k
  n = 4
  k = 2
  do j = 1, 2 * n
    a(k) = a(k) + 1.0
    a(j) = a(j) * 2.0
  end do
  print a(2)
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult LLSRun = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, LLSRun, "LLS fig6");

  // All per-iteration checks disappear; only the hoisted conditional
  // checks execute (upper bounds for k and for the substituted 2n; the
  // constant lower bounds fold at compile time).
  EXPECT_GT(Naive.DynChecks, 8 * 4u);
  EXPECT_LE(LLSRun.DynChecks, 4u);
  EXPECT_EQ(LLSRun.DynChecks, LLSRun.DynCondChecks);
  EXPECT_GT(countCondChecks(*LLS.M), 0u);
}

TEST(PreheaderInsertion, LIHoistsOnlyInvariant) {
  const char *Src = R"(
program p
  real a(10)
  integer n, j, k
  n = 6
  k = 2
  do j = 1, n
    a(k) = a(k) + 1.0
    a(j) = a(j) * 2.0
  end do
  print a(2)
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LI = compileWithScheme(Src, PlacementScheme::LI);
  ExecResult LIRun = interpret(*LI.M);
  expectBehaviorPreserved(Naive, LIRun, "LI");
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult LLSRun = interpret(*LLS.M);
  // LI removes the a(k) checks but keeps the linear a(j) checks; LLS
  // removes both.
  EXPECT_LT(LIRun.DynChecks, Naive.DynChecks);
  EXPECT_LT(LLSRun.DynChecks, LIRun.DynChecks);
}

TEST(PreheaderInsertion, ZeroTripLoopGuardPreventsTrap) {
  // The loop never executes and its body would trap if it did (k = 42
  // out of bounds); the guard on the hoisted check must keep the
  // optimized program trap-free.
  const char *Src = R"(
program p
  real a(10)
  integer n, j, k
  n = 0
  k = 42
  do j = 1, n
    a(k) = 1.0
  end do
  print 7
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ASSERT_EQ(Naive.St, ExecResult::Status::Ok);
  for (PlacementScheme S : {PlacementScheme::LI, PlacementScheme::LLS,
                            PlacementScheme::ALL}) {
    CompileResult R = compileWithScheme(Src, S);
    ExecResult E = interpret(*R.M);
    expectBehaviorPreserved(Naive, E, placementSchemeName(S));
  }
}

TEST(PreheaderInsertion, ZeroTripDoesNotLeakAvailabilityPastLoop) {
  // A zero-trip loop is followed by an access with the same checks; the
  // hoisted conditional check must NOT make the post-loop check
  // "available" (the guard was false, nothing was checked).
  const char *Src = R"(
program p
  real a(10)
  integer n, j, k
  n = 0
  k = 42
  do j = 1, n
    a(k) = 1.0
  end do
  print 1
  a(k) = 2.0
  print 2
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ASSERT_EQ(Naive.St, ExecResult::Status::Trapped);
  for (PlacementScheme S :
       {PlacementScheme::LI, PlacementScheme::LLS, PlacementScheme::ALL}) {
    CompileResult R = compileWithScheme(Src, S);
    ExecResult E = interpret(*R.M);
    EXPECT_EQ(E.St, ExecResult::Status::Trapped)
        << placementSchemeName(S)
        << ": the post-loop violation must still be caught";
    expectBehaviorPreserved(Naive, E, placementSchemeName(S));
  }
}

TEST(PreheaderInsertion, RehoistsThroughRectangularNest) {
  const char *Src = R"(
program p
  real a(40)
  integer n, i, j, s
  n = 6
  s = 0
  do i = 1, n
    do j = 1, n
      s = s + int(a(i + j))
    end do
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS nest");
  // After two levels of substitution the check lands in the outermost
  // preheader: a constant number of dynamic checks, not O(n) or O(n^2).
  EXPECT_LE(E.DynChecks, 4u);
}

TEST(PreheaderInsertion, TriangularLoopKeepsPerOuterChecks) {
  const char *Src = R"(
program p
  real a(40)
  integer n, i, j, s
  n = 8
  s = 0
  do i = 1, n
    do j = 1, i
      s = s + int(a(j))
    end do
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS triangular");
  // The inner guard (1 <= i) varies with the outer loop: the cond-check
  // stays in the inner preheader, executing once per outer iteration
  // instead of once per element.
  EXPECT_LT(E.DynChecks, Naive.DynChecks);
  EXPECT_LE(E.DynChecks, 8u + 2u);
  EXPECT_GE(E.DynChecks, 8u);
}

TEST(PreheaderInsertion, DescendingLoopSubstitutesLowerBound) {
  const char *Src = R"(
program p
  real a(20)
  integer n, i, s
  n = 12
  s = 0
  do i = n, 3, -1
    s = s + int(a(i))
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS descending");
  EXPECT_LE(E.DynChecks, 2u);
}

TEST(PreheaderInsertion, NonUnitStepIsNotSubstituted) {
  // With step 2 the last index value is not affine: substitution of the
  // raw upper bound would be wrong when the bound is not hit exactly.
  // Here i takes values 1,3,...,9 but n = 10 and the array has 9
  // elements: substituting i -> 10 would trap spuriously.
  const char *Src = R"(
program p
  real a(9)
  integer n, i, s
  n = 10
  s = 0
  do i = 1, n, 2
    s = s + int(a(i))
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ASSERT_EQ(Naive.St, ExecResult::Status::Ok);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS step2");
}

TEST(PreheaderInsertion, EarlyReturnBlocksSubstitution) {
  // The subroutine returns from inside the loop before the extreme
  // iteration: substituting the loop limit would check a(12) (out of
  // bounds) although the program never accesses past a(5).
  const char *Src = R"(
program p
  real a(10)
  call walk(a, 12)
  print 3
end program
subroutine walk(a, n)
  real a(10)
  integer n, i
  do i = 1, n
    if (i > 5) then
      return
    end if
    a(i) = 1.0
  end do
end subroutine
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ASSERT_EQ(Naive.St, ExecResult::Status::Ok) << Naive.FaultMessage;
  for (PlacementScheme S :
       {PlacementScheme::LI, PlacementScheme::LLS, PlacementScheme::ALL}) {
    CompileResult R = compileWithScheme(Src, S);
    ExecResult E = interpret(*R.M);
    expectBehaviorPreserved(Naive, E, placementSchemeName(S));
  }
}

TEST(PreheaderInsertion, WhileLoopsAreNotHoisted) {
  // While loops have no affine entry guard: LI/LLS leave their checks
  // alone (the paper's section 3.3 observation).
  const char *Src = R"(
program p
  real a(10)
  integer i, s
  i = 1
  s = 0
  while (i <= 8) do
    s = s + int(a(i))
    i = i + 1
  end while
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS while");
  EXPECT_EQ(countCondChecks(*LLS.M), 0u);
}

TEST(PreheaderInsertion, VariableBoundsStaySymbolic) {
  // Bounds from scalar variables: the guard and substituted check stay
  // symbolic and evaluate correctly for both entered and skipped loops.
  const char *Src = R"(
program p
  real a(30)
  integer lo, hi, i, s
  lo = 3
  hi = 20
  s = 0
  do i = lo, hi
    s = s + int(a(i))
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  expectBehaviorPreserved(Naive, E, "LLS symbolic bounds");
  EXPECT_LE(E.DynChecks, 2u);
}

TEST(PreheaderInsertion, HoistedCheckStillTraps) {
  // The loop would violate the bound at its last iteration; the hoisted
  // substituted check must trap (earlier detection is allowed).
  const char *Src = R"(
program p
  real a(10)
  integer n, i
  n = 12
  print 1
  do i = 1, n
    a(i) = 1.0
  end do
  print 2
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ASSERT_EQ(Naive.St, ExecResult::Status::Trapped);
  CompileResult LLS = compileWithScheme(Src, PlacementScheme::LLS);
  ExecResult E = interpret(*LLS.M);
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  expectBehaviorPreserved(Naive, E, "LLS trap");
  // Detection is earlier: before any store happened.
  EXPECT_LE(E.DynChecks, Naive.DynChecks);
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Interval-analysis tests (the AI extension scheme): interval algebra,
/// static check discharge, loop-index refinement, soundness around
/// unknown values, and the paper's section 5 prediction that compile-time
/// -only elimination removes far fewer checks than the inserting schemes.
///
//===----------------------------------------------------------------------===//

#include "opt/IntervalAnalysis.h"

#include "TestHelpers.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

TEST(Interval, Algebra) {
  Interval A{2, 5}, B{-1, 3};
  EXPECT_EQ(A.add(B), (Interval{1, 8}));
  EXPECT_EQ(A.sub(B), (Interval{-1, 6}));
  EXPECT_EQ(A.negate(), (Interval{-5, -2}));
  EXPECT_EQ(A.mulConst(3), (Interval{6, 15}));
  EXPECT_EQ(A.mulConst(-2), (Interval{-10, -4}));
  EXPECT_EQ(A.hull(B), (Interval{-1, 5}));
  EXPECT_EQ(A.minWith(B), (Interval{-1, 3}));
  EXPECT_EQ(A.maxWith(B), (Interval{2, 5}));
  EXPECT_EQ((Interval{-4, 3}).absValue(), (Interval{0, 4}));
}

TEST(Interval, SaturationAtInfinity) {
  Interval Top = Interval::top();
  EXPECT_TRUE(Top.add(Interval::constant(5)).isTop());
  EXPECT_TRUE(Top.negate().isTop());
  Interval HalfOpen{0, Interval::PosInf};
  Interval Shifted = HalfOpen.add(Interval::constant(10));
  EXPECT_EQ(Shifted.Lo, 10);
  EXPECT_FALSE(Shifted.boundedAbove());
  // Multiplication by a negative constant flips the unbounded side.
  Interval Flipped = HalfOpen.mulConst(-2);
  EXPECT_FALSE(Flipped.boundedBelow());
  EXPECT_EQ(Flipped.Hi, 0);
}

IntervalStats runAI(const std::string &Src, Module **OutM = nullptr,
                    CompileResult *Keep = nullptr) {
  static CompileResult Storage;
  CompileResult &R = Keep ? *Keep : Storage;
  R = compileNaive(Src);
  DiagnosticEngine D;
  IntervalStats S = eliminateChecksByIntervals(*R.M->entry(), D);
  if (OutM)
    *OutM = R.M.get();
  return S;
}

TEST(IntervalAnalysis, DischargesConstantBoundedLoops) {
  // i in [1, 8] and the array has 10 elements: every check discharges.
  Module *M = nullptr;
  CompileResult Keep;
  IntervalStats S = runAI(R"(
program p
  real a(10)
  integer i
  do i = 1, 8
    a(i) = 1.0
  end do
  print a(1)
end program
)",
                          &M, &Keep);
  EXPECT_GT(S.ChecksProvedRedundant, 0u);
  EXPECT_EQ(S.ChecksUnknown, 0u);
  ExecResult E = interpret(*M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok);
  EXPECT_EQ(E.DynChecks, 0u);
}

TEST(IntervalAnalysis, SymbolicBoundsStayUnknown) {
  // n is a runtime value (from a load): checks cannot be discharged.
  CompileResult Keep;
  IntervalStats S = runAI(R"(
program p
  real a(10)
  integer idx(3), n, i
  idx(1) = 8
  n = idx(1)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(1)
end program
)",
                          nullptr, &Keep);
  EXPECT_GT(S.ChecksUnknown, 0u);
}

TEST(IntervalAnalysis, ProvesViolations) {
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::AI;
  CompileResult R = compileSource(R"(
program p
  real a(10)
  integer i
  i = 4
  i = i + 20
  a(i) = 1.0
end program
)",
                                  PO);
  ASSERT_TRUE(R.Success);
  bool Warned = false;
  for (const Diagnostic &D : R.Diags.diagnostics())
    if (D.Message.find("value-range") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
}

TEST(IntervalAnalysis, ModBoundsDischargePeriodicSubscripts) {
  Module *M = nullptr;
  CompileResult Keep;
  IntervalStats S = runAI(R"(
program p
  real a(8)
  integer i, k
  do i = 1, 50
    k = mod(i, 8) + 1
    a(k) = 1.0
  end do
  print a(1)
end program
)",
                          &M, &Keep);
  // mod(i, 8) with i >= 0 lies in [0, 7], so k in [1, 8] discharges both
  // checks on a(k).
  EXPECT_GT(S.ChecksProvedRedundant, 0u);
  ExecResult E = interpret(*M);
  EXPECT_EQ(E.DynChecks, 0u);
}

TEST(IntervalAnalysis, SchemePreservesBehaviorOnSuite) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    ExecResult Naive = interpret(*compileNaive(P.Source).M);
    CompileResult R = compileWithScheme(P.Source, PlacementScheme::AI);
    ExecResult E = interpret(*R.M);
    expectBehaviorPreserved(Naive, E, std::string(P.Name) + "/AI");
  }
}

TEST(IntervalAnalysis, Section5Prediction) {
  // The paper: "we expect the number of checks eliminated by these
  // [compile-time-only] algorithms to be less than algorithms which
  // insert checks." AI must beat nothing and lose clearly to LLS overall.
  double TotalAI = 0, TotalLLS = 0, TotalNaive = 0;
  for (const SuiteProgram &P : benchmarkSuite()) {
    ExecResult Naive = interpret(*compileNaive(P.Source).M);
    ExecResult AI =
        interpret(*compileWithScheme(P.Source, PlacementScheme::AI).M);
    ExecResult LLS =
        interpret(*compileWithScheme(P.Source, PlacementScheme::LLS).M);
    EXPECT_LE(AI.DynChecks, Naive.DynChecks) << P.Name;
    TotalNaive += double(Naive.DynChecks);
    TotalAI += double(AI.DynChecks);
    TotalLLS += double(LLS.DynChecks);
  }
  double AIPct = 100.0 * (TotalNaive - TotalAI) / TotalNaive;
  double LLSPct = 100.0 * (TotalNaive - TotalLLS) / TotalNaive;
  EXPECT_LT(AIPct, LLSPct - 20.0)
      << "compile-time-only elimination should lose clearly to LLS";
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of CheckContext: universe construction from the IR, kill
/// and gen transfer semantics (paper section 3.2), preheader entry facts,
/// and the availability/anticipatability solutions on small CFGs.
///
//===----------------------------------------------------------------------===//

#include "opt/CheckContext.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace nascent;

namespace {

/// Straight-line function:
///   n = 4; Check(n <= 10); t = n + 1 (kills nothing);
///   n = 5 (kills);         Check(n <= 12); ret
struct StraightLine {
  Module M;
  Function *F;
  SymbolID N, T;
  CheckID C10 = InvalidCheck, C12 = InvalidCheck;

  StraightLine() {
    F = M.createFunction("f");
    IRBuilder B(*F);
    N = F->symbols().createScalar("n", ScalarType::Int);
    T = F->symbols().createScalar("t", ScalarType::Int);
    B.setInsertBlock(B.createBlock("entry"));
    B.emitCopy(N, Value::intConst(4));
    B.emitCheck(CheckExpr(LinearExpr::term(N), 10));
    B.emitBinaryTo(T, Opcode::Add, Value::sym(N), Value::intConst(1));
    B.emitCopy(N, Value::intConst(5));
    B.emitCheck(CheckExpr(LinearExpr::term(N), 12));
    B.emitRet();
    F->recomputePreds();
  }
};

TEST(CheckContext, UniverseFromInstructions) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  EXPECT_EQ(Ctx.universe().size(), 2u);
  EXPECT_EQ(Ctx.universe().numFamilies(), 1u); // same range-expression n
  // Instruction ids line up with the Check instructions.
  EXPECT_EQ(Ctx.idOf(0, 0), InvalidCheck); // the copy
  EXPECT_NE(Ctx.idOf(0, 1), InvalidCheck); // Check(n <= 10)
  EXPECT_EQ(Ctx.idOf(0, 2), InvalidCheck); // the add
  EXPECT_NE(Ctx.idOf(0, 4), InvalidCheck); // Check(n <= 12)
}

TEST(CheckContext, KillSemantics) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  size_t U = Ctx.universe().size();

  DenseBitVector Bits(U, true);
  // The add defines t, which no check mentions: kills nothing.
  Ctx.applyKill(S.F->block(0)->instructions()[2], Bits);
  EXPECT_EQ(Bits.count(), U);
  // The copy defines n: kills every check.
  Ctx.applyKill(S.F->block(0)->instructions()[3], Bits);
  EXPECT_EQ(Bits.count(), 0u);
}

TEST(CheckContext, AvailGenClosesOverWeakerChecks) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  CheckID C10 = Ctx.idOf(0, 1);
  CheckID C12 = Ctx.idOf(0, 4);

  DenseBitVector Bits(Ctx.universe().size());
  Ctx.applyAvailGen(0, 1, S.F->block(0)->instructions()[1], Bits);
  EXPECT_TRUE(Bits.test(C10));
  EXPECT_TRUE(Bits.test(C12)) << "a performed check gens weaker members";
}

TEST(CheckContext, AvailGenWithoutImplications) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::None);
  CheckID C10 = Ctx.idOf(0, 1);
  CheckID C12 = Ctx.idOf(0, 4);
  DenseBitVector Bits(Ctx.universe().size());
  Ctx.applyAvailGen(0, 1, S.F->block(0)->instructions()[1], Bits);
  EXPECT_TRUE(Bits.test(C10));
  EXPECT_FALSE(Bits.test(C12));
}

TEST(CheckContext, AvailabilityBlockedByKill) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  DataflowResult Avail = Ctx.solveAvailability();
  CheckID C12 = Ctx.idOf(0, 4);
  // The second check sits after a redefinition of n: nothing is
  // available at the block exit except its own gen (which survives).
  EXPECT_TRUE(Avail.Out[0].test(C12));
  EXPECT_FALSE(Avail.In[0].test(C12));
}

TEST(CheckContext, PreheaderFactsBecomeEntryBits) {
  // Two blocks: entry jumps to body; a fact asserts Check(n <= 10) at
  // the body entry.
  Module M;
  Function *F = M.createFunction("f");
  IRBuilder B(*F);
  SymbolID N = F->symbols().createScalar("n", ScalarType::Int);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Body = B.createBlock("body");
  B.setInsertBlock(Entry);
  B.emitCopy(N, Value::intConst(4));
  B.emitJump(Body->id());
  B.setInsertBlock(Body);
  B.emitCheck(CheckExpr(LinearExpr::term(N), 10));
  B.emitCheck(CheckExpr(LinearExpr::term(N), 12));
  B.emitRet();
  F->recomputePreds();

  std::vector<PreheaderFact> Facts = {
      {Body->id(), CheckExpr(LinearExpr::term(N), 10)}};
  CheckContext Ctx(*F, ImplicationMode::All, Facts);

  CheckID C10 = Ctx.universe().find(CheckExpr(LinearExpr::term(N), 10));
  CheckID C12 = Ctx.universe().find(CheckExpr(LinearExpr::term(N), 12));
  ASSERT_NE(C10, InvalidCheck);
  ASSERT_NE(C12, InvalidCheck);
  // The fact covers the check itself and its weaker family member.
  EXPECT_TRUE(Ctx.genInBits(Body->id()).test(C10));
  EXPECT_TRUE(Ctx.genInBits(Body->id()).test(C12));
  EXPECT_FALSE(Ctx.genInBits(Entry->id()).test(C10));
}

TEST(CheckContext, FactClosureRespectsMode) {
  Module M;
  Function *F = M.createFunction("f");
  IRBuilder B(*F);
  SymbolID N = F->symbols().createScalar("n", ScalarType::Int);
  BasicBlock *Entry = B.createBlock("entry");
  BasicBlock *Body = B.createBlock("body");
  B.setInsertBlock(Entry);
  B.emitJump(Body->id());
  B.setInsertBlock(Body);
  B.emitCheck(CheckExpr(LinearExpr::term(N), 10));
  B.emitCheck(CheckExpr(LinearExpr::term(N), 12));
  B.emitRet();
  F->recomputePreds();

  std::vector<PreheaderFact> Facts = {
      {Body->id(), CheckExpr(LinearExpr::term(N), 10)}};
  // The LLS' mode (cross-family only) must not close over the weaker
  // same-family member.
  CheckContext Ctx(*F, ImplicationMode::CrossFamilyOnly, Facts);
  CheckID C10 = Ctx.universe().find(CheckExpr(LinearExpr::term(N), 10));
  CheckID C12 = Ctx.universe().find(CheckExpr(LinearExpr::term(N), 12));
  EXPECT_TRUE(Ctx.genInBits(Body->id()).test(C10));
  EXPECT_FALSE(Ctx.genInBits(Body->id()).test(C12));
}

TEST(CheckContext, AnticipatabilityGenIsFamilyRestricted) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  DataflowResult Antic = Ctx.solveAnticipatability();
  CheckID C12 = Ctx.idOf(0, 4);
  // n is defined at the top of the block, then checked: at the block
  // entry nothing is anticipatable (the defs kill on the way back).
  EXPECT_FALSE(Antic.In[0].test(C12));
  (void)C12;
}

TEST(CheckContext, LocallyAnticipates) {
  StraightLine S;
  CheckContext Ctx(*S.F, ImplicationMode::All);
  CheckID C10 = Ctx.idOf(0, 1);
  CheckID C12 = Ctx.idOf(0, 4);
  // Check(n<=10) is generated before any kill? No: the block starts with
  // a definition of n, so nothing is locally anticipatable at entry.
  EXPECT_FALSE(Ctx.locallyAnticipates(0, C10));
  EXPECT_FALSE(Ctx.locallyAnticipates(0, C12));
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy-code-motion placement tests (SE and LNI schemes): partial
/// redundancy across branches, down-safety (no insertion where a check is
/// not anticipatable), and the Figure 5 profitability pathology.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

uint64_t staticChecks(const Module &M) { return countStatic(M).Checks; }

/// One-sided branch followed by an unconditional access: the classic
/// partially redundant shape.
const char *PartialSrc = R"(
program p
  real a(10)
  integer i, t, s
  i = 4
  s = 0
  do t = 1, 3
    if (t == 2) then
      s = s + int(a(i))
    end if
    s = s + int(a(i)) * 2
  end do
  print s
end program
)";

TEST(LazyCodeMotion, SEEliminatesPartialRedundancy) {
  ExecResult Naive = interpret(*compileNaive(PartialSrc).M);
  CompileResult SE = compileWithScheme(PartialSrc, PlacementScheme::SE);
  ExecResult SERun = interpret(*SE.M);
  expectBehaviorPreserved(Naive, SERun, "SE");
  // Naive: taken iteration does 4 checks, others 2 -> total 8.
  // SE hoists the checks above the branch: 2 per iteration -> 6.
  EXPECT_EQ(Naive.DynChecks, 8u);
  EXPECT_EQ(SERun.DynChecks, 6u);
}

TEST(LazyCodeMotion, LNIAlsoEliminatesIt) {
  ExecResult Naive = interpret(*compileNaive(PartialSrc).M);
  CompileResult LNI = compileWithScheme(PartialSrc, PlacementScheme::LNI);
  ExecResult LNIRun = interpret(*LNI.M);
  expectBehaviorPreserved(Naive, LNIRun, "LNI");
  EXPECT_LE(LNIRun.DynChecks, Naive.DynChecks);
  EXPECT_EQ(LNIRun.DynChecks, 6u);
}

TEST(LazyCodeMotion, DownSafetyBlocksSpeculation) {
  // The access happens only on one branch and never afterwards: there is
  // no program point above the branch where the check is anticipatable,
  // so SE must not insert anything above it (a hoisted check could trap
  // in an execution that never accesses the array).
  const char *Src = R"(
program p
  real a(10)
  integer i, s
  logical c
  i = 20
  c = i < 15
  s = 0
  if (c) then
    s = int(a(i))
  end if
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  EXPECT_EQ(Naive.St, ExecResult::Status::Ok); // branch not taken
  CompileResult SE = compileWithScheme(Src, PlacementScheme::SE);
  ExecResult SERun = interpret(*SE.M);
  EXPECT_EQ(SERun.St, ExecResult::Status::Ok) << SERun.FaultMessage;
  expectBehaviorPreserved(Naive, SERun, "SE down-safety");
}

TEST(LazyCodeMotion, Figure5Pathology) {
  // SE can add checks on some paths (the else path re-checks with the
  // weaker bound). The paper accepts this; behaviour stays correct.
  const char *Src = R"(
program p
  real a(10)
  integer i, t, x
  i = 3
  x = 0
  do t = 1, 2
    if (i < 3) then
      x = x + int(a(i))
    else
      x = x + int(a(i + 4))
    end if
  end do
  print x
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  CompileResult SE = compileWithScheme(Src, PlacementScheme::SE);
  ExecResult SERun = interpret(*SE.M);
  expectBehaviorPreserved(Naive, SERun, "SE fig5");
  EXPECT_GT(SERun.DynChecks, Naive.DynChecks)
      << "expected the Figure 5 profitability pathology";
}

TEST(LazyCodeMotion, SEAtLeastAsStrongAsNIStatically) {
  // On straight-line redundancy SE includes everything NI does.
  const char *Src = R"(
program p
  real a(10), b(10)
  integer i
  i = 5
  b(i) = a(i) + a(i)
end program
)";
  CompileResult NI = compileWithScheme(Src, PlacementScheme::NI);
  CompileResult SE = compileWithScheme(Src, PlacementScheme::SE);
  EXPECT_LE(staticChecks(*SE.M), staticChecks(*NI.M));
}

TEST(LazyCodeMotion, InsertionUsesRepresentativeOrigin) {
  // Inserted checks keep a meaningful origin for trap messages.
  const char *Src = R"(
program p
  real arr(10)
  integer i, t, s
  i = 11
  s = 0
  do t = 1, 3
    if (t == 2) then
      s = s + int(arr(i))
    end if
    s = s + int(arr(i))
  end do
  print s
end program
)";
  CompileResult SE = compileWithScheme(Src, PlacementScheme::SE);
  ExecResult E = interpret(*SE.M);
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  EXPECT_NE(E.FaultMessage.find("arr"), std::string::npos);
}

} // namespace

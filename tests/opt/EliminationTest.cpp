//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the availability-based elimination (the paper's NI scheme and
/// step 4) and of compile-time check folding (step 5).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

uint64_t staticChecks(const Module &M) { return countStatic(M).Checks; }

TEST(Elimination, IdenticalChecksInBlock) {
  // a(i) accessed twice back to back: the second pair of checks is fully
  // redundant.
  CompileResult Naive = compileNaive(R"(
program p
  real a(10), b(10)
  integer i
  i = 4
  b(i) = a(i)
end program
)");
  CompileResult NI = compileWithScheme(R"(
program p
  real a(10), b(10)
  integer i
  i = 4
  b(i) = a(i)
end program
)",
                                       PlacementScheme::NI);
  EXPECT_EQ(staticChecks(*Naive.M), 4u);
  EXPECT_EQ(staticChecks(*NI.M), 2u);
}

TEST(Elimination, StrongerCheckCoversWeaker) {
  // Figure 1(b): after Check(2n <= 10), Check(2n <= 11) is redundant.
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  n = 4
  a(2 * n) = 0.0
  a(2 * n - 1) = 1.0
end program
)";
  CompileResult NI = compileWithScheme(Src, PlacementScheme::NI);
  // Naive has 4 checks; the weaker upper bound (2n <= 11) dies, the
  // stronger lower bound (-2n <= -6) survives: 3 remain.
  EXPECT_EQ(staticChecks(*NI.M), 3u);
}

TEST(Elimination, NoImplicationModeKeepsWeaker) {
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  n = 4
  a(2 * n) = 0.0
  a(2 * n - 1) = 1.0
end program
)";
  CompileResult NIPrime = compileWithScheme(
      Src, PlacementScheme::NI, CheckSource::PRX, ImplicationMode::None);
  // Without implications only *identical* checks are redundant: all 4
  // distinct checks survive.
  EXPECT_EQ(staticChecks(*NIPrime.M), 4u);
}

TEST(Elimination, KilledByRedefinition) {
  CompileResult NI = compileWithScheme(R"(
program p
  real a(10)
  integer i
  i = 4
  a(i) = 0.0
  i = 5
  a(i) = 1.0
end program
)",
                                       PlacementScheme::NI);
  // The redefinition of i kills the first pair: nothing is redundant.
  EXPECT_EQ(staticChecks(*NI.M), 4u);
}

TEST(Elimination, MergeRequiresBothPaths) {
  CompileResult NI = compileWithScheme(R"(
program p
  real a(10)
  integer i
  logical c
  i = 4
  c = i > 2
  if (c) then
    a(i) = 1.0
  end if
  a(i) = 2.0
end program
)",
                                       PlacementScheme::NI);
  // The post-join access is only checked on the then path: both its
  // checks must survive (partial redundancy is PRE's job, not NI's).
  EXPECT_EQ(staticChecks(*NI.M), 4u);
}

TEST(Elimination, AvailableAcrossMergeFromBothSides) {
  CompileResult NI = compileWithScheme(R"(
program p
  real a(10)
  integer i
  logical c
  i = 4
  c = i > 2
  if (c) then
    a(i) = 1.0
  else
    a(i) = 1.5
  end if
  a(i) = 2.0
end program
)",
                                       PlacementScheme::NI);
  // Both sides perform the checks: the post-join pair is redundant.
  EXPECT_EQ(staticChecks(*NI.M), 4u);
}

TEST(Elimination, CompileTimeTrueChecksFolded) {
  CompileResult NI = compileWithScheme(R"(
program p
  real a(10)
  a(3) = 1.0
  a(7) = 2.0
end program
)",
                                       PlacementScheme::NI);
  EXPECT_EQ(staticChecks(*NI.M), 0u);
  ExecResult E = interpret(*NI.M);
  EXPECT_EQ(E.DynChecks, 0u);
}

TEST(Elimination, CompileTimeViolationBecomesTrap) {
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::NI;
  CompileResult R = compileSource(R"(
program p
  real a(10)
  print 1
  a(11) = 1.0
  print 2
end program
)",
                                  PO);
  ASSERT_TRUE(R.Success);
  // The compiler reports the violation...
  bool Warned = false;
  for (const Diagnostic &D : R.Diags.diagnostics())
    if (D.Message.find("compile time") != std::string::npos)
      Warned = true;
  EXPECT_TRUE(Warned);
  // ...and the program still traps at run time, at the same point.
  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Trapped);
  EXPECT_EQ(E.Output, (std::vector<std::string>{"1"}));
}

TEST(Elimination, StatsReflectWork) {
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::NI;
  CompileResult R = compileOrDie(R"(
program p
  real a(10), b(10)
  integer i
  i = 2
  b(i) = a(i) + a(i)
end program
)",
                                 PO);
  EXPECT_GT(R.Stats.ChecksBefore, R.Stats.ChecksAfter);
  EXPECT_GT(R.Stats.ChecksDeleted, 0u);
  EXPECT_EQ(R.Stats.ChecksInserted, 0u);
  EXPECT_GT(R.Stats.UniverseSize, 0u);
  EXPECT_GE(R.Stats.UniverseSize, R.Stats.NumFamilies);
}

} // namespace

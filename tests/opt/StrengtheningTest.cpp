//===----------------------------------------------------------------------===//
///
/// \file
/// Check-strengthening tests (the paper's CS scheme): each check is
/// replaced by the strongest anticipatable member of its family, turning
/// Figure 1(b) into Figure 1(c).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

uint64_t staticChecks(const Module &M) { return countStatic(M).Checks; }

TEST(Strengthening, Figure1FragmentEndsWithTwoChecks) {
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  n = 4
  a(2 * n) = 0.0
  a(2 * n - 1) = 1.0
end program
)";
  CompileResult CS = compileWithScheme(Src, PlacementScheme::CS);
  EXPECT_EQ(staticChecks(*CS.M), 2u);

  // The surviving lower-bound check is the strengthened (-2n <= -6).
  bool FoundStrengthened = false;
  for (const auto &BB : *CS.M->entry())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Check && I.Check.bound() == -6)
        FoundStrengthened = true;
  EXPECT_TRUE(FoundStrengthened);
}

TEST(Strengthening, RequiresAnticipatability) {
  // The stronger check is conditional: it is NOT anticipatable at the
  // earlier weaker check, so strengthening must not happen (that would
  // introduce a trap on the c-false path).
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  logical c
  n = 4
  c = n > 100
  a(2 * n) = 0.0
  if (c) then
    a(2 * n - 1) = 1.0
  end if
end program
)";
  CompileResult CS = compileWithScheme(Src, PlacementScheme::CS);
  // The early lower check must still be the original (-2n <= -5).
  bool FoundOriginal = false;
  for (const auto &BB : *CS.M->entry())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Check && I.Check.bound() == -5)
        FoundOriginal = true;
  EXPECT_TRUE(FoundOriginal);

  ExecResult Naive = interpret(*compileNaive(Src).M);
  ExecResult Opt = interpret(*CS.M);
  expectBehaviorPreserved(Naive, Opt, "CS");
}

TEST(Strengthening, KillBlocksStrengthening) {
  // n is redefined between the two checks: the later (stronger) check is
  // not anticipatable at the earlier one.
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  n = 4
  a(2 * n) = 0.0
  n = 3
  a(2 * n + 1) = 1.0
end program
)";
  CompileResult CS = compileWithScheme(Src, PlacementScheme::CS);
  CompileResult Naive = compileNaive(Src);
  // Nothing can be strengthened or eliminated across the kill.
  EXPECT_EQ(staticChecks(*CS.M), staticChecks(*Naive.M));
}

TEST(Strengthening, AcrossBlocks) {
  // The stronger check lives in a later block but on every path: CS
  // still strengthens (anticipatability is a global property).
  const char *Src = R"(
program p
  real a(5:10)
  integer n, s
  logical c
  n = 4
  c = n > 1
  a(2 * n) = 0.0
  if (c) then
    s = 1
  else
    s = 2
  end if
  a(2 * n - 1) = 1.0
  print s
end program
)";
  CompileResult CS = compileWithScheme(Src, PlacementScheme::CS);
  bool FoundStrengthened = false;
  for (const auto &BB : *CS.M->entry())
    for (const Instruction &I : BB->instructions())
      if (I.Op == Opcode::Check && I.Check.bound() == -6)
        FoundStrengthened = true;
  EXPECT_TRUE(FoundStrengthened);
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ExecResult Opt = interpret(*CS.M);
  expectBehaviorPreserved(Naive, Opt, "CS across blocks");
}

TEST(Strengthening, TrapsEarlierButEquivalently) {
  // With n = 3, a(2n) = a(6) is fine but a(2n-1) = a(5)... both fine;
  // with n = 8, a(16) violates: both naive and CS must trap, and CS may
  // trap before the first store (earlier detection is explicitly allowed
  // by the paper).
  const char *Src = R"(
program p
  real a(5:10)
  integer n
  n = 8
  print 1
  a(2 * n) = 0.0
  a(2 * n - 1) = 1.0
  print 2
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ExecResult Opt =
      interpret(*compileWithScheme(Src, PlacementScheme::CS).M);
  EXPECT_EQ(Naive.St, ExecResult::Status::Trapped);
  EXPECT_EQ(Opt.St, ExecResult::Status::Trapped);
  expectBehaviorPreserved(Naive, Opt, "CS trap");
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the optimizer directly on hand-built IR (no front end): the
/// paper's Figure 1 fragment constructed with IRBuilder, plus edge cases
/// that are awkward to reach from source (checks without origins, empty
/// functions, pre-existing conditional checks).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

unsigned staticChecks(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F)
    for (const Instruction &I : BB->instructions())
      if (I.isRangeCheck())
        ++N;
  return N;
}

/// Builds the paper's Figure 1 fragment directly:
///   C1: Check(-2n <= -5); C2: Check(2n <= 10); S1: A[2n] = 0
///   C3: Check(-2n <= -6); C4: Check(2n <= 11); S2: A[2n-1] = 1
std::unique_ptr<Module> buildFigure1() {
  auto M = std::make_unique<Module>();
  M->setEntry("fig1");
  Function *F = M->createFunction("fig1");
  IRBuilder B(*F);
  SymbolID N = F->symbols().createScalar("n", ScalarType::Int);
  ArrayShape Shape;
  Shape.Element = ScalarType::Int;
  Shape.Dims = {{5, 10}};
  SymbolID A = F->symbols().createArray("a", Shape);

  B.setInsertBlock(B.createBlock("entry"));
  B.emitCopy(N, Value::intConst(4));
  Value T1 = B.emitBinary(Opcode::Mul, Value::intConst(2), Value::sym(N),
                          ScalarType::Int);
  B.emitCheck(CheckExpr(LinearExpr::term(N, -2), -5)); // C1
  B.emitCheck(CheckExpr(LinearExpr::term(N, 2), 10));  // C2
  B.emitStore(A, {T1}, Value::intConst(0));
  Value T2 = B.emitBinary(Opcode::Sub, T1, Value::intConst(1),
                          ScalarType::Int);
  B.emitCheck(CheckExpr(LinearExpr::term(N, -2), -6)); // C3
  B.emitCheck(CheckExpr(LinearExpr::term(N, 2), 11));  // C4
  B.emitStore(A, {T2}, Value::intConst(1));
  B.emitRet();
  F->recomputePreds();
  return M;
}

TEST(DirectAPI, Figure1ViaIRBuilder) {
  // NI: C4 is redundant after C2.
  auto M1 = buildFigure1();
  DiagnosticEngine D1;
  RangeCheckOptions NI;
  NI.Scheme = PlacementScheme::NI;
  OptimizerStats S1 = optimizeFunction(*M1->entry(), NI, D1);
  EXPECT_EQ(S1.ChecksBefore, 4u);
  EXPECT_EQ(staticChecks(*M1->entry()), 3u);
  EXPECT_EQ(S1.ChecksDeleted, 1u);

  // CS: C1 is additionally strengthened into C3.
  auto M2 = buildFigure1();
  DiagnosticEngine D2;
  RangeCheckOptions CS;
  CS.Scheme = PlacementScheme::CS;
  OptimizerStats S2 = optimizeFunction(*M2->entry(), CS, D2);
  EXPECT_EQ(staticChecks(*M2->entry()), 2u);
  EXPECT_GE(S2.ChecksStrengthened, 1u);

  // Both still execute without trapping (n = 4 is in range).
  ExecResult E1 = interpret(*M1);
  ExecResult E2 = interpret(*M2);
  EXPECT_EQ(E1.St, ExecResult::Status::Ok) << E1.FaultMessage;
  EXPECT_EQ(E2.St, ExecResult::Status::Ok) << E2.FaultMessage;
  EXPECT_EQ(E1.DynChecks, 3u);
  EXPECT_EQ(E2.DynChecks, 2u);
}

TEST(DirectAPI, EmptyFunctionIsFine) {
  Module M;
  M.setEntry("empty");
  Function *F = M.createFunction("empty");
  IRBuilder B(*F);
  B.setInsertBlock(B.createBlock("entry"));
  B.emitRet();
  F->recomputePreds();
  DiagnosticEngine D;
  RangeCheckOptions Opts;
  Opts.Scheme = PlacementScheme::ALL;
  OptimizerStats S = optimizeFunction(*F, Opts, D);
  EXPECT_EQ(S.ChecksBefore, 0u);
  EXPECT_EQ(S.ChecksAfter, 0u);
  EXPECT_EQ(S.UniverseSize, 0u);
}

TEST(DirectAPI, PreexistingCondCheckSurvivesOptimization) {
  // A hand-placed conditional check must pass the verifier and not be
  // treated as a redundancy target.
  Module M;
  M.setEntry("f");
  Function *F = M.createFunction("f");
  IRBuilder B(*F);
  SymbolID N = F->symbols().createScalar("n", ScalarType::Int);
  B.setInsertBlock(B.createBlock("entry"));
  B.emitCopy(N, Value::intConst(3));
  B.emitCondCheck({CheckExpr(LinearExpr::term(N, -1), 0)},
                  CheckExpr(LinearExpr::term(N), 100));
  B.emitCondCheck({CheckExpr(LinearExpr::term(N, -1), 0)},
                  CheckExpr(LinearExpr::term(N), 100));
  B.emitRet();
  F->recomputePreds();

  DiagnosticEngine D;
  RangeCheckOptions Opts;
  Opts.Scheme = PlacementScheme::LLS;
  optimizeFunction(*F, Opts, D);
  DiagnosticEngine VD;
  EXPECT_TRUE(verifyFunction(*F, VD)) << VD.render();
  ExecResult E = interpret(M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok);
  EXPECT_EQ(E.DynCondChecks, 2u);
}

TEST(DirectAPI, ExternallyAssertedImplication) {
  // The CIG's addImplication API (the paper's Figure 4 mechanism) lets a
  // client assert a cross-family fact; the closure then spans families.
  CheckUniverse U;
  SymbolTable Syms;
  SymbolID N = Syms.createScalar("n", ScalarType::Int);
  SymbolID M2 = Syms.createScalar("m", ScalarType::Int);
  CheckID CN = U.intern(CheckExpr(LinearExpr::term(N), 6));
  CheckID CM = U.intern(CheckExpr(LinearExpr::term(M2), 10));
  CheckImplicationGraph CIG(U);
  EXPECT_FALSE(CIG.isAsStrongAs(CN, CM));
  CIG.addImplication(CN, CM);
  EXPECT_TRUE(CIG.isAsStrongAs(CN, CM));
}

} // namespace

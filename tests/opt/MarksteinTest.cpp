//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the MCM extension scheme (the Markstein-Cocke-Markstein
/// restricted preheader insertion the paper proposes comparing against):
/// behaviour preservation, and the expected relationship
/// NI <= MCM <= LLS in eliminated checks.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

TEST(Markstein, HoistsSimpleChecksInStraightLineLoops) {
  // a(i) has a simple (+-1 coefficient) check in the loop body, which is
  // itself an articulation block: MCM hoists like LLS here.
  const char *Src = R"(
program p
  real a(20)
  integer n, i, s
  n = 15
  s = 0
  do i = 1, n
    s = s + int(a(i))
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ExecResult MCM =
      interpret(*compileWithScheme(Src, PlacementScheme::MCM).M);
  expectBehaviorPreserved(Naive, MCM, "MCM");
  EXPECT_LE(MCM.DynChecks, 2u);
}

TEST(Markstein, SkipsChecksInConditionalBlocks) {
  // The access sits in a branch, not an articulation block: MCM leaves it
  // alone while LLS (via anticipatability... also cannot hoist since it
  // is not anticipatable). Compare against a conditional-plus-complex mix
  // where the *complex* subscript separates the two schemes.
  const char *Src = R"(
program p
  real a(60)
  integer n, i, s
  n = 12
  s = 0
  do i = 1, n
    s = s + int(a(2 * i + 3))
  end do
  print s
end program
)";
  ExecResult Naive = interpret(*compileNaive(Src).M);
  ExecResult MCM =
      interpret(*compileWithScheme(Src, PlacementScheme::MCM).M);
  ExecResult LLS =
      interpret(*compileWithScheme(Src, PlacementScheme::LLS).M);
  expectBehaviorPreserved(Naive, MCM, "MCM");
  // The 2*i+3 subscript is not "simple": MCM hoists nothing here.
  EXPECT_EQ(MCM.DynChecks, Naive.DynChecks);
  // LLS handles coefficient-2 subscripts fine.
  EXPECT_LT(LLS.DynChecks, MCM.DynChecks);
}

TEST(Markstein, OrderingAcrossSuite) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    ExecResult Naive = interpret(*compileNaive(P.Source).M);
    ExecResult NI =
        interpret(*compileWithScheme(P.Source, PlacementScheme::NI).M);
    ExecResult MCM =
        interpret(*compileWithScheme(P.Source, PlacementScheme::MCM).M);
    ExecResult LLS =
        interpret(*compileWithScheme(P.Source, PlacementScheme::LLS).M);
    expectBehaviorPreserved(Naive, MCM, std::string(P.Name) + "/MCM");
    EXPECT_LE(MCM.DynChecks, NI.DynChecks) << "MCM adds hoisting to NI";
    EXPECT_LE(LLS.DynChecks, MCM.DynChecks)
        << "LLS subsumes the restricted scheme";
  }
}

TEST(Markstein, SchemeNameRoundTrips) {
  PlacementScheme S;
  ASSERT_TRUE(parsePlacementScheme("MCM", S));
  EXPECT_EQ(S, PlacementScheme::MCM);
  EXPECT_STREQ(placementSchemeName(PlacementScheme::MCM), "MCM");
}

} // namespace

//===----------------------------------------------------------------------===//
///
/// \file
/// The two provenance reconciliation invariants, enforced for every
/// placement scheme over the benchmark suite:
///
///  1. Lifecycle terminal states reconcile exactly with OptimizerStats —
///     every Inserted/Moved/Strengthened/SubsumedBy/Eliminated/Trapped/
///     Residualized total matches the corresponding counter
///     (reconcileCheckProvenance, opt/RangeCheckOptimizer.h).
///  2. A check whose lifecycle ended Eliminated (or SubsumedBy, or
///     Trapped) has zero dynamic executions: only Residualized tags may
///     appear among the interpreter's per-site counts.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "obs/Provenance.h"
#include "suite/Suite.h"

#include "gtest/gtest.h"

#include <map>
#include <sstream>

using namespace nascent;

namespace {

const PlacementScheme AllSchemes[] = {
    PlacementScheme::NI,  PlacementScheme::CS,  PlacementScheme::LNI,
    PlacementScheme::SE,  PlacementScheme::LI,  PlacementScheme::LLS,
    PlacementScheme::ALL, PlacementScheme::MCM, PlacementScheme::AI};

CompileResult compileWithProvenance(const SuiteProgram &P,
                                    PlacementScheme Scheme,
                                    CheckSource Source = CheckSource::PRX) {
  PipelineOptions PO;
  PO.Opt.Scheme = Scheme;
  PO.Source = Source;
  PO.Telemetry.Provenance = true;
  CompileResult R = compileSource(P.Source, PO);
  EXPECT_TRUE(R.Success) << P.Name << ": " << R.Diags.render();
  return R;
}

std::string join(const std::vector<std::string> &Problems) {
  std::ostringstream OS;
  for (const std::string &P : Problems)
    OS << "  " << P << "\n";
  return OS.str();
}

TEST(ProvenanceReconcile, TerminalStatesMatchOptimizerStatsForAllSchemes) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    for (PlacementScheme Scheme : AllSchemes) {
      CompileResult R = compileWithProvenance(P, Scheme);
      if (!R.Success)
        continue;
      std::vector<std::string> Problems =
          reconcileCheckProvenance(R.Provenance, R.Stats);
      EXPECT_TRUE(Problems.empty())
          << P.Name << "/" << placementSchemeName(Scheme) << ":\n"
          << join(Problems);
    }
  }
}

TEST(ProvenanceReconcile, TerminalStatesMatchStatsUnderINXChecks) {
  const SuiteProgram *P = findSuiteProgram("vortex");
  ASSERT_NE(P, nullptr);
  for (PlacementScheme Scheme : AllSchemes) {
    CompileResult R = compileWithProvenance(*P, Scheme, CheckSource::INX);
    if (!R.Success)
      continue;
    std::vector<std::string> Problems =
        reconcileCheckProvenance(R.Provenance, R.Stats);
    EXPECT_TRUE(Problems.empty())
        << placementSchemeName(Scheme) << ":\n"
        << join(Problems);
  }
}

TEST(ProvenanceReconcile, EliminatedChecksNeverExecute) {
  const char *Programs[] = {"vortex", "linpackd", "trfd"};
  for (const char *Name : Programs) {
    const SuiteProgram *P = findSuiteProgram(Name);
    ASSERT_NE(P, nullptr) << Name;
    for (PlacementScheme Scheme : AllSchemes) {
      CompileResult R = compileWithProvenance(*P, Scheme);
      if (!R.Success)
        continue;

      InterpOptions IO;
      IO.CountCheckSites = true;
      ExecResult E = interpret(*R.M, IO);
      ASSERT_NE(E.St, ExecResult::Status::HardFault)
          << Name << "/" << placementSchemeName(Scheme) << ": "
          << E.FaultMessage;

      for (const obs::CheckSiteCount &Site : E.CheckSites) {
        if (Site.Count == 0)
          continue;
        // Every dynamically executed check is a recorded, surviving one.
        ASSERT_NE(Site.Tag, NoCheckTag)
            << Name << "/" << placementSchemeName(Scheme) << " " << Site.Func
            << " block " << Site.Block;
        const obs::LifecycleEvent *Last = R.Provenance.lastEventOf(Site.Tag);
        ASSERT_NE(Last, nullptr)
            << Name << "/" << placementSchemeName(Scheme) << " tag "
            << Site.Tag;
        EXPECT_EQ(Last->Kind, obs::LifecycleKind::Residualized)
            << Name << "/" << placementSchemeName(Scheme) << " tag "
            << Site.Tag << " executed " << Site.Count
            << " times but its lifecycle ended "
            << obs::lifecycleKindName(Last->Kind);
      }
    }
  }
}

} // namespace

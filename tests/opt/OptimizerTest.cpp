//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-optimizer invariants across schemes: the orderings the paper's
/// Table 2 rests on, idempotence, verification of the output IR, and the
/// implication-mode ablation (Table 3's structure).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "ir/Verifier.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace nascent;
using namespace nascent::test;

namespace {

uint64_t dynChecks(const std::string &Src, PlacementScheme S,
                   ImplicationMode Mode = ImplicationMode::All,
                   CheckSource Source = CheckSource::PRX) {
  CompileResult R = compileWithScheme(Src, S, Source, Mode);
  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok) << E.FaultMessage;
  return E.DynChecks;
}

const char *MixedSrc = R"(
program p
  real a(30), b(30)
  integer n, i, j, k, s
  n = 12
  k = 7
  s = 0
  do i = 1, n
    a(i) = a(i) + b(k) * 0.5
    do j = 1, i
      s = s + int(b(j))
    end do
  end do
  print s
end program
)";

TEST(Optimizer, SchemeOrderingOnMixedProgram) {
  CompileResult Naive = compileNaive(MixedSrc);
  uint64_t Base = interpret(*Naive.M).DynChecks;
  uint64_t NI = dynChecks(MixedSrc, PlacementScheme::NI);
  uint64_t CS = dynChecks(MixedSrc, PlacementScheme::CS);
  uint64_t LI = dynChecks(MixedSrc, PlacementScheme::LI);
  uint64_t LLS = dynChecks(MixedSrc, PlacementScheme::LLS);
  uint64_t ALL = dynChecks(MixedSrc, PlacementScheme::ALL);

  EXPECT_LE(NI, Base);
  EXPECT_LE(CS, NI);  // strengthening only helps
  EXPECT_LE(LI, NI);  // hoisting invariants only helps
  EXPECT_LE(LLS, LI); // substitution subsumes invariant hoisting
  EXPECT_LE(ALL, LLS + 4); // ALL may add a few SE placements
  EXPECT_LT(LLS, Base / 4) << "LLS should remove the bulk of the checks";
}

TEST(Optimizer, ImplicationModesOrdering) {
  // With fewer implications, no more checks can be eliminated.
  uint64_t NIAll = dynChecks(MixedSrc, PlacementScheme::NI);
  uint64_t NINone =
      dynChecks(MixedSrc, PlacementScheme::NI, ImplicationMode::None);
  EXPECT_LE(NIAll, NINone);

  uint64_t LLSAll = dynChecks(MixedSrc, PlacementScheme::LLS);
  uint64_t LLSPrime = dynChecks(MixedSrc, PlacementScheme::LLS,
                                ImplicationMode::CrossFamilyOnly);
  EXPECT_LE(LLSAll, LLSPrime);
}

TEST(Optimizer, PrimedUniverseHasFamilyPerCheck) {
  // Arrays of different sizes indexed by the same variable: the upper
  // checks (i <= 20) and (i <= 30) share a family normally.
  const char *Src = R"(
program p
  real a(30), b(20)
  integer i
  i = 5
  a(i) = 0.0
  i = 6
  b(i) = 1.0
end program
)";
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::NI;
  PO.Opt.Implications = ImplicationMode::None;
  CompileResult R = compileOrDie(Src, PO);
  // In the no-implication mode every check is its own family: the
  // paper's explanation for why the primed variants are slower.
  EXPECT_EQ(R.Stats.UniverseSize, R.Stats.NumFamilies);

  PO.Opt.Implications = ImplicationMode::All;
  CompileResult R2 = compileOrDie(Src, PO);
  EXPECT_LT(R2.Stats.NumFamilies, R2.Stats.UniverseSize);
}

TEST(Optimizer, OptimizedIRVerifies) {
  for (const SuiteProgram &P : benchmarkSuite()) {
    for (PlacementScheme S : {PlacementScheme::SE, PlacementScheme::LLS,
                              PlacementScheme::ALL}) {
      CompileResult R = compileWithScheme(P.Source, S);
      DiagnosticEngine D;
      EXPECT_TRUE(verifyModule(*R.M, D))
          << P.Name << "/" << placementSchemeName(S) << ":\n" << D.render();
    }
  }
}

TEST(Optimizer, IdempotentOnSecondRun) {
  // Running the optimizer twice must not change the check counts again
  // (the first run reaches a fixpoint for elimination).
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::LLS;
  CompileResult R = compileOrDie(MixedSrc, PO);
  uint64_t After1 = countStatic(*R.M).Checks;
  DiagnosticEngine D;
  OptimizerStats S2 = optimizeModule(*R.M, PO.Opt, D);
  EXPECT_EQ(S2.ChecksDeleted, 0u);
  EXPECT_EQ(countStatic(*R.M).Checks, After1 + S2.CondChecksInserted * 0);
  ExecResult E = interpret(*R.M);
  EXPECT_EQ(E.St, ExecResult::Status::Ok);
}

TEST(Optimizer, StatsAccounting) {
  PipelineOptions PO;
  PO.Opt.Scheme = PlacementScheme::LLS;
  CompileResult R = compileOrDie(MixedSrc, PO);
  const OptimizerStats &S = R.Stats;
  EXPECT_GT(S.ChecksBefore, S.ChecksAfter);
  EXPECT_GT(S.ChecksDeleted, 0u);
  EXPECT_GT(S.CondChecksInserted, 0u);
}

TEST(Optimizer, AllSchemesOnAllSuitePrograms) {
  // The heavyweight sweep: every scheme preserves the behaviour of every
  // suite program (both check sources).
  for (const SuiteProgram &P : benchmarkSuite()) {
    SCOPED_TRACE(P.Name);
    CompileResult Naive = compileNaive(P.Source);
    ExecResult NaiveRun = interpret(*Naive.M);
    ASSERT_EQ(NaiveRun.St, ExecResult::Status::Ok) << NaiveRun.FaultMessage;
    for (CheckSource Src : {CheckSource::PRX, CheckSource::INX}) {
      for (PlacementScheme S :
           {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
            PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
            PlacementScheme::ALL}) {
        CompileResult Opt = compileWithScheme(P.Source, S, Src);
        ExecResult OptRun = interpret(*Opt.M);
        expectBehaviorPreserved(NaiveRun, OptRun,
                                std::string(P.Name) + "/" +
                                    placementSchemeName(S));
      }
    }
  }
}

TEST(Optimizer, SchemeNamesRoundTrip) {
  for (PlacementScheme S :
       {PlacementScheme::NI, PlacementScheme::CS, PlacementScheme::LNI,
        PlacementScheme::SE, PlacementScheme::LI, PlacementScheme::LLS,
        PlacementScheme::ALL}) {
    PlacementScheme Parsed;
    ASSERT_TRUE(parsePlacementScheme(placementSchemeName(S), Parsed));
    EXPECT_EQ(Parsed, S);
  }
  PlacementScheme Dummy;
  EXPECT_FALSE(parsePlacementScheme("bogus", Dummy));
}

} // namespace

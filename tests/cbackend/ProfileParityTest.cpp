//===----------------------------------------------------------------------===//
///
/// \file
/// The profile parity gate: for every sample program in
/// examples/programs/*.mf (naive and LLS-optimized), the interpreter's
/// ExecutionProfile and the instrumented-C binary's atexit counter dump
/// must agree bit for bit — per-site hits and traps, per-block execution
/// counts, and per-array load/store counts. This is the acceptance
/// contract of docs/profiling.md: both execution paths measure the same
/// dynamic check cost, so either one can back the paper's numbers.
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"

#include "TestHelpers.h"
#include "obs/Profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

using namespace nascent;
using namespace nascent::test;

namespace {

bool haveCC() {
  static int Have = -1;
  if (Have < 0)
    Have = std::system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return Have == 1;
}

/// The counter dump of one instrumented-C run, keyed the way the profile
/// is: sites by (func, block, index), blocks by (func, id), arrays by
/// (func, name).
struct CDump {
  bool Ran = false;
  std::map<std::tuple<std::string, unsigned long, unsigned long>,
           std::pair<uint64_t, uint64_t>>
      Sites; ///< -> (hits, traps)
  std::map<std::tuple<std::string, unsigned long, unsigned long>, uint64_t>
      SiteTags; ///< -> emitted tag
  std::map<std::pair<std::string, unsigned long>, uint64_t> Blocks;
  std::map<std::pair<std::string, std::string>,
           std::pair<uint64_t, uint64_t>>
      Arrays; ///< -> (loads, stores)
};

/// Emits \p M with profile instrumentation, compiles it with the system
/// compiler, runs it, and parses the [nascent-prof*] stderr dump.
CDump compileRunAndDump(const Module &M, const std::string &Tag) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/nck_prof_" + Tag + ".c";
  std::string Bin = Dir + "/nck_prof_" + Tag + ".bin";
  std::string ErrPath = Dir + "/nck_prof_" + Tag + ".err";

  {
    std::ofstream Out(CPath);
    CEmitOptions CO;
    CO.Profile = true;
    Out << emitModuleToC(M, CO);
  }
  std::string Compile = "cc -O1 -o " + Bin + " " + CPath + " 2> " + ErrPath;
  int CC = std::system(Compile.c_str());
  EXPECT_EQ(CC, 0) << "C compilation failed for " << Tag;
  CDump D;
  if (CC != 0)
    return D;

  // Trapping programs exit non-zero; the atexit dump must survive that.
  std::system((Bin + " > /dev/null 2> " + ErrPath).c_str());

  std::ifstream Err(ErrPath);
  std::string Line;
  char Func[256], Name[256];
  while (std::getline(Err, Line)) {
    unsigned long Block, Index;
    unsigned long long A, B, T;
    if (std::sscanf(Line.c_str(),
                    "[nascent-profsite] func=%255s block=%lu index=%lu "
                    "tag=%llu hits=%llu traps=%llu",
                    Func, &Block, &Index, &T, &A, &B) == 6) {
      D.Sites[{Func, Block, Index}] = {A, B};
      D.SiteTags[{Func, Block, Index}] = T;
    } else if (std::sscanf(Line.c_str(),
                           "[nascent-profblock] func=%255s block=%lu "
                           "count=%llu",
                           Func, &Block, &A) == 3) {
      D.Blocks[{Func, Block}] = A;
    } else if (std::sscanf(Line.c_str(),
                           "[nascent-profarray] func=%255s array=%255s "
                           "loads=%llu stores=%llu",
                           Func, Name, &A, &B) == 4) {
      D.Arrays[{Func, Name}] = {A, B};
    }
  }
  D.Ran = !D.Blocks.empty();
  return D;
}

/// The whole contract for one compiled module: interpreter profile ==
/// compiled-C dump, counter for counter.
void expectProfileParity(const Module &M, obs::ExecutionProfile &P,
                         const std::string &Tag) {
  CDump D = compileRunAndDump(M, Tag);
  ASSERT_TRUE(D.Ran) << Tag << ": no profile dump captured";

  size_t Sites = 0, Blocks = 0, Arrays = 0;
  for (const obs::FunctionProfile &FP : P.functions()) {
    for (unsigned long B = 0; B != FP.BlockCounts.size(); ++B) {
      auto It = D.Blocks.find({FP.Name, B});
      ASSERT_NE(It, D.Blocks.end()) << Tag << ": " << FP.Name << " bb" << B;
      EXPECT_EQ(It->second, FP.BlockCounts[B])
          << Tag << ": " << FP.Name << " bb" << B;
      ++Blocks;
    }
    for (const obs::CheckSiteProfile &S : FP.Sites) {
      auto It = D.Sites.find({FP.Name, S.Block, S.Index});
      ASSERT_NE(It, D.Sites.end())
          << Tag << ": " << FP.Name << " bb" << S.Block << "#" << S.Index;
      EXPECT_EQ(It->second.first, S.Hits)
          << Tag << ": hits at " << FP.Name << " bb" << S.Block << "#"
          << S.Index;
      EXPECT_EQ(It->second.second, S.Traps)
          << Tag << ": traps at " << FP.Name << " bb" << S.Block << "#"
          << S.Index;
      uint64_t EmittedTag = D.SiteTags[{FP.Name, S.Block, S.Index}];
      EXPECT_EQ(EmittedTag, S.Tag)
          << Tag << ": tag at " << FP.Name << " bb" << S.Block << "#"
          << S.Index;
      ++Sites;
    }
    for (const obs::ArrayProfile &A : FP.Arrays) {
      auto It = D.Arrays.find({FP.Name, A.Name});
      ASSERT_NE(It, D.Arrays.end()) << Tag << ": " << FP.Name << " "
                                    << A.Name;
      EXPECT_EQ(It->second.first, A.Loads)
          << Tag << ": loads of " << FP.Name << " " << A.Name;
      EXPECT_EQ(It->second.second, A.Stores)
          << Tag << ": stores of " << FP.Name << " " << A.Name;
      ++Arrays;
    }
  }
  // Nothing extra on the C side either: both paths enumerate the same
  // structure.
  EXPECT_EQ(D.Sites.size(), Sites) << Tag;
  EXPECT_EQ(D.Blocks.size(), Blocks) << Tag;
  EXPECT_EQ(D.Arrays.size(), Arrays) << Tag;
}

void expectSourceParity(const std::string &Source, bool Optimize,
                        const std::string &Tag) {
  PipelineOptions PO;
  PO.Optimize = Optimize;
  PO.Opt.Scheme = PlacementScheme::LLS;
  PO.Telemetry.Profile = true;
  CompileResult R = compileOrDie(Source, PO);
  InterpOptions IO;
  IO.Profile = &R.Profile;
  interpret(*R.M, IO);
  expectProfileParity(*R.M, R.Profile, Tag);
}

std::vector<std::pair<std::string, std::string>> samplePrograms() {
  std::vector<std::pair<std::string, std::string>> Out;
  DIR *D = opendir(NASCENT_EXAMPLE_PROGRAMS_DIR);
  if (!D)
    return Out;
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < 4 || Name.substr(Name.size() - 3) != ".mf")
      continue;
    std::ifstream In(std::string(NASCENT_EXAMPLE_PROGRAMS_DIR) + "/" + Name);
    std::stringstream SS;
    SS << In.rdbuf();
    Out.push_back({Name.substr(0, Name.size() - 3), SS.str()});
  }
  closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(ProfileParity, EverySampleProgramNaiveAndOptimized) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler available";
  std::vector<std::pair<std::string, std::string>> Programs =
      samplePrograms();
  ASSERT_FALSE(Programs.empty())
      << "no .mf programs under " << NASCENT_EXAMPLE_PROGRAMS_DIR;
  for (const auto &P : Programs) {
    expectSourceParity(P.second, /*Optimize=*/false, P.first + "_naive");
    expectSourceParity(P.second, /*Optimize=*/true, P.first + "_lls");
  }
}

TEST(ProfileParity, TrappingProgramDumpSurvivesExit) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler available";
  // The trap path: the C binary aborts via nck_trap/exit, yet the atexit
  // dump still fires and its counters — including the trapping site's
  // hit+trap and the partial block counts — match the interpreter.
  expectSourceParity(R"(
program p
  real a(10)
  integer i, n
  n = 15
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
)",
                     /*Optimize=*/false, "trap_naive");
  expectSourceParity(R"(
program p
  real a(10)
  integer i, n
  n = 15
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
)",
                     /*Optimize=*/true, "trap_lls");
}

TEST(ProfileParity, MultiFunctionProgram) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler available";
  // Calls: per-function tables stay separate and recursion-safe frame
  // state on the interpreter side matches the C side's flat counters.
  expectSourceParity(R"(
program p
  real v(8)
  integer i
  do i = 1, 8
    v(i) = real(i)
  end do
  call bump(v)
  call bump(v)
  print total(v)
end program
subroutine bump(v)
  real v(8)
  integer i
  do i = 1, 8
    v(i) = v(i) + 1.0
  end do
end subroutine
function total(v) : real
  real v(8), s
  integer i
  s = 0.0
  do i = 1, 8
    s = s + v(i)
  end do
  return s
end function
)",
                     /*Optimize=*/true, "calls");
}

} // namespace

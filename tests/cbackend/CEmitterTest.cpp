//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumented-C back end tests: the emitted C compiles with the system
/// compiler, and running it produces exactly the interpreter's output and
/// dynamic counters — validating both the back end and, independently,
/// the interpreter (the paper's methodology was precisely "translate to
/// instrumented C, compile, run, count").
///
//===----------------------------------------------------------------------===//

#include "cbackend/CEmitter.h"

#include "TestHelpers.h"
#include "suite/Suite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace nascent;
using namespace nascent::test;

namespace {

bool haveCC() {
  static int Have = -1;
  if (Have < 0)
    Have = std::system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return Have == 1;
}

struct CRun {
  int ExitCode = -1;
  std::vector<std::string> Stdout;
  uint64_t Instrs = 0, Checks = 0, CondChecks = 0;
  bool Trapped = false;
};

/// Emits, compiles, and runs \p M; fails the test on compile errors.
CRun compileAndRunC(const Module &M, const std::string &Tag) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/nck_" + Tag + ".c";
  std::string Bin = Dir + "/nck_" + Tag + ".bin";
  std::string OutPath = Dir + "/nck_" + Tag + ".out";
  std::string ErrPath = Dir + "/nck_" + Tag + ".err";

  {
    std::ofstream Out(CPath);
    Out << emitModuleToC(M);
  }
  std::string Compile = "cc -O1 -o " + Bin + " " + CPath + " 2> " + ErrPath;
  int CC = std::system(Compile.c_str());
  EXPECT_EQ(CC, 0) << "C compilation failed for " << Tag;
  CRun R;
  if (CC != 0)
    return R;

  int Rc = std::system((Bin + " > " + OutPath + " 2> " + ErrPath).c_str());
  R.ExitCode = WEXITSTATUS(Rc);

  std::ifstream In(OutPath);
  std::string Line;
  while (std::getline(In, Line))
    R.Stdout.push_back(Line);

  std::ifstream Err(ErrPath);
  while (std::getline(Err, Line)) {
    if (Line.find("[nascent-trap]") != std::string::npos)
      R.Trapped = true;
    unsigned long long I, C, Q;
    if (std::sscanf(Line.c_str(),
                    "[nascent-counts] instrs=%llu checks=%llu "
                    "condchecks=%llu",
                    &I, &C, &Q) == 3) {
      R.Instrs = I;
      R.Checks = C;
      R.CondChecks = Q;
    }
  }
  return R;
}

void expectMatchesInterpreter(const std::string &Source,
                              const PipelineOptions &PO,
                              const std::string &Tag) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler available";
  CompileResult R = compileOrDie(Source, PO);
  ExecResult E = interpret(*R.M);
  CRun C = compileAndRunC(*R.M, Tag);

  EXPECT_EQ(C.Stdout, E.Output) << Tag;
  EXPECT_EQ(C.Trapped, E.St == ExecResult::Status::Trapped) << Tag;
  if (E.St == ExecResult::Status::Ok) {
    EXPECT_EQ(C.Instrs, E.DynInstrs) << Tag;
    EXPECT_EQ(C.Checks, E.DynChecks) << Tag;
    EXPECT_EQ(C.CondChecks, E.DynCondChecks) << Tag;
  }
}

TEST(CEmitter, ArithmeticAndControlFlow) {
  PipelineOptions PO;
  PO.Optimize = false;
  expectMatchesInterpreter(R"(
program p
  integer i, s
  real r
  s = 0
  do i = 1, 10, 2
    s = s + i * 2
  end do
  r = real(s) / 4.0
  print s
  print r
  print s > 10
end program
)",
                           PO, "arith");
}

TEST(CEmitter, ArraysAndCalls) {
  PipelineOptions PO;
  PO.Optimize = false;
  expectMatchesInterpreter(R"(
program p
  real v(3, 4)
  integer i, j
  do i = 1, 3
    do j = 1, 4
      v(i, j) = real(i * 10 + j)
    end do
  end do
  call scale(v)
  print v(2, 3)
  print total(v)
end program
subroutine scale(v)
  real v(3, 4)
  integer i, j
  do i = 1, 3
    do j = 1, 4
      v(i, j) = v(i, j) * 2.0
    end do
  end do
end subroutine
function total(v) : real
  real v(3, 4), s
  integer i, j
  s = 0.0
  do i = 1, 3
    do j = 1, 4
      s = s + v(i, j)
    end do
  end do
  return s
end function
)",
                           PO, "arrays");
}

TEST(CEmitter, TrapBehaviourMatches) {
  PipelineOptions PO;
  PO.Optimize = false;
  expectMatchesInterpreter(R"(
program p
  real a(5)
  integer i
  print 1
  i = 7
  a(i) = 0.0
  print 2
end program
)",
                           PO, "trap");
}

TEST(CEmitter, OptimizedProgramsMatchToo) {
  for (PlacementScheme S :
       {PlacementScheme::NI, PlacementScheme::SE, PlacementScheme::LLS}) {
    PipelineOptions PO;
    PO.Opt.Scheme = S;
    expectMatchesInterpreter(R"(
program p
  real a(30), b(30)
  integer n, i, k
  n = 20
  k = 7
  do i = 1, n
    a(i) = a(i) + b(k) * 0.5 + b(i)
  end do
  print a(3)
end program
)",
                             PO, std::string("opt") + placementSchemeName(S));
  }
}

TEST(CEmitter, SuiteProgramsMatchEndToEnd) {
  if (!haveCC())
    GTEST_SKIP() << "no system C compiler available";
  // The full methodology check on the whole suite, naive and
  // LLS-optimized: C execution == interpretation, counter for counter.
  for (const SuiteProgram &P : benchmarkSuite()) {
    for (bool Optimize : {false, true}) {
      PipelineOptions PO;
      PO.Optimize = Optimize;
      PO.Opt.Scheme = PlacementScheme::LLS;
      expectMatchesInterpreter(P.Source, PO,
                               std::string(P.Name) +
                                   (Optimize ? "_lls" : "_naive"));
    }
  }
}

TEST(CEmitter, DeterministicOutput) {
  CompileResult R = compileNaive(findSuiteProgram("qcd")->Source);
  std::string A = emitModuleToC(*R.M);
  std::string B = emitModuleToC(*R.M);
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("fn_qcd"), std::string::npos);
  EXPECT_NE(A.find("nck_report"), std::string::npos);
}

} // namespace
